// Type-II machinery on Example C.9: the implication lattices with their
// Möbius functions, the Q_αβ query family, Theorem C.19's inversion
// formula checked against direct model counting, and Theorem C.3's
// #PP2CNF-from-CCP extraction.
//
//   ./typeii_lattice

#include <cstdio>

#include "hardness/ccp.h"
#include "hardness/type2.h"
#include "logic/parser.h"

int main() {
  using namespace gmc;
  Query q = ParseQueryOrDie(
      "Ax (Ay (S1(x,y)) | Ay (S2(x,y))) & Ax Ay (S1(x,y) | S3(x,y)) & "
      "Ay (Ax (S3(x,y)) | Ax (S4(x,y)))");
  std::printf("query (Example C.9): %s\n\n", q.ToString().c_str());

  TypeIIStructure structure = AnalyzeTypeII(q);
  std::printf("left lattice L(G)  (m_bar = %d):\n%s\n", structure.m_bar,
              structure.left_lattice->ToString(q.vocab()).c_str());
  std::printf("right lattice L(H) (n_bar = %d):\n%s\n", structure.n_bar,
              structure.right_lattice->ToString(q.vocab()).c_str());

  std::printf("some Q_ab queries (Eq. 53-55):\n");
  for (int a : {0, 1}) {
    for (int b : {0, 1}) {
      std::printf("  Q[%d,%d] = %s\n", a, b,
                  MakeQueryAlphaBeta(structure, a, b).ToString().c_str());
    }
  }

  // Theorem C.19 on a 2×2 block TID with all tuples at 1/2.
  Tid delta(q.vocab_ptr(), 2, 2, Rational::Half());
  MobiusInversionCheck check = VerifyMobiusInversion(structure, delta);
  std::printf(
      "\nMobius inversion (Thm C.19) on a 2x2 half-probability TID:\n"
      "  direct Pr(Q)        = %s\n  via inversion (%d terms) = %s  [%s]\n",
      check.direct.ToString().c_str(), check.terms,
      check.via_inversion.ToString().c_str(),
      check.direct == check.via_inversion ? "match" : "MISMATCH");

  // Theorem C.3: #PP2CNF from coloring counts.
  BipartiteGraph graph;
  graph.num_u = 2;
  graph.num_v = 2;
  graph.edges = {{0, 0}, {0, 1}, {1, 1}};
  auto counts = ColoringCounts(graph, structure.m_bar, structure.n_bar);
  std::printf(
      "\nCCP(%d,%d) on %s:\n  distinct signatures: %zu\n  #PP2CNF from "
      "counts = %s (brute force %s)\n",
      structure.m_bar, structure.n_bar, graph.ToString().c_str(),
      counts.size(),
      PP2CnfFromColoringCounts(graph, counts, structure.m_bar,
                               structure.n_bar)
          .ToString()
          .c_str(),
      CountPP2Cnf(graph).ToString().c_str());
  return 0;
}
