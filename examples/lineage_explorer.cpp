// Lineage and arithmetization explorer: shows the Boolean-to-algebra bridge
// of §1.6 — block lineages, the arithmetization polynomial, the small
// matrix of Lemma 1.2, and Corollary 3.18's determinant factorization.
//
//   ./lineage_explorer

#include <cstdio>

#include "hardness/small_matrix.h"
#include "lineage/grounder.h"
#include "logic/parser.h"
#include "poly/lemmas.h"
#include "prob/block.h"
#include "wmc/wmc.h"

int main() {
  using namespace gmc;
  Query h1 = ParseQueryOrDie(
      "Ax Ay (R(x) | S(x,y)) & Ax Ay (S(x,y) | T(y))");

  // One (x,y) pair: lineage (R∨S)∧(S∨T), arithmetization rt + s − rst.
  Tid pair(h1.vocab_ptr(), 1, 1, Rational::Half());
  Lineage lineage = Ground(h1, pair);
  std::printf("lineage over one pair: %s\n", lineage.cnf.ToString().c_str());
  Polynomial y = ArithmetizeCnf(lineage.cnf);
  std::printf("arithmetization: %s\n", y.ToString().c_str());
  std::printf("Pr at 1/2,...,1/2 = %s (paper: 5/8)\n\n",
              y.Evaluate({{0, Rational::Half()},
                          {1, Rational::Half()},
                          {2, Rational::Half()}})
                  .ToString()
                  .c_str());

  // The block B_p(u,v) for growing p: lineage sizes and z-values.
  std::printf("%-4s %-10s %-14s %-14s %-14s\n", "p", "#vars", "z00(p)",
              "z01(p)", "z11(p)");
  RationalMatrix a1 = ComputeA1(h1);
  for (int p = 1; p <= 5; ++p) {
    IsolatedBlock block = MakeIsolatedBlock(h1.vocab_ptr(), {p});
    Lineage block_lineage = Ground(h1, block.tid);
    RationalMatrix ap = ComputeAp(a1, p);
    std::printf("%-4d %-10zu %-14s %-14s %-14s\n", p,
                block_lineage.variables.size(),
                ap.At(0, 0).ToString().c_str(),
                ap.At(0, 1).ToString().c_str(),
                ap.At(1, 1).ToString().c_str());
  }

  // Lemma 1.2 / Corollary 3.18: the determinant polynomial factors as
  // c·Π u(1−u); its non-vanishing on (0,1)^N is what makes the gadget work.
  Polynomial det = SmallMatrixDetPolynomial(h1);
  std::printf("\ndet of the small-matrix polynomial (Cor. 3.18 form):\n  %s\n",
              det.ToString().c_str());

  // Lemma 1.1 in action: find a {0,1/2,1} non-root of the determinant.
  auto witness = FindNonRoot(det, Rational(0), Rational::Half(), Rational(1));
  std::printf("Lemma 1.1 non-root witness (variable -> value):\n");
  for (const auto& [var, value] : witness) {
    std::printf("  x%d -> %s\n", var, value.ToString().c_str());
  }
  return 0;
}
