// The headline result, end to end: counting the models of a P2CNF formula
// through a Pr(Q) oracle for an unsafe query (Theorem 3.1's Cook
// reduction), with every intermediate artifact printed.
//
//   ./p2cnf_reduction

#include <cstdio>

#include "core/dichotomy.h"
#include "hardness/small_matrix.h"
#include "logic/parser.h"

int main() {
  using namespace gmc;
  Query h1 = ParseQueryOrDie(
      "Ax Ay (R(x) | S(x,y)) & Ax Ay (S(x,y) | T(y))");
  std::printf("query Q: %s\n", h1.ToString().c_str());
  std::printf("         %s\n\n", Classify(h1).summary.c_str());

  // The one-link small matrix A(1) and the design conditions of Thm 3.14.
  RationalMatrix a1 = ComputeA1(h1);
  std::printf("small matrix A(1):\n%s", a1.ToString().c_str());
  DesignConditionReport design = CheckDesignConditions(a1);
  std::printf("design conditions: %s\n\n", design.ToString().c_str());

  // Φ = (X0|X1)(X1|X2)(X0|X2)(X2|X3): a P2CNF instance.
  P2Cnf phi;
  phi.num_vars = 4;
  phi.edges = {{0, 1}, {1, 2}, {0, 2}, {2, 3}};
  std::printf("Phi = %s  over %d variables\n", phi.ToString().c_str(),
              phi.num_vars);
  std::printf("brute-force #Phi = %s\n\n",
              CountSatisfying(phi).ToString().c_str());

  Type1ReductionResult result = DemonstrateHardness(h1, phi);
  std::printf("reduction: %d oracle calls, big matrix %s, solution %s\n",
              result.oracle_calls,
              result.big_matrix_nonsingular ? "non-singular" : "SINGULAR",
              result.solution_integral ? "integral" : "NON-INTEGRAL");
  std::printf("recovered signature counts #k' (k00, k01+10, k11):\n");
  for (const auto& [signature, count] : result.signature_counts) {
    std::printf("  (%d, %d, %d) -> %s\n", signature[0], signature[1],
                signature[2], count.ToString().c_str());
  }
  std::printf("recovered #Phi = %s  (matches brute force: %s)\n",
              result.model_count.ToString().c_str(),
              result.model_count == CountSatisfying(phi) ? "yes" : "NO");
  return 0;
}
