// Circuit explorer: compile a lineage to d-DNNF, inspect its structure,
// dump it as Graphviz DOT, and run a compile-once / evaluate-many sweep.
//
//   ./circuit_explorer
//
// The DOT for the paper's §1.6 example (three lineage variables, 5/8) is
// printed in full; pipe it into `dot -Tpng` to render.

#include <chrono>
#include <cstdio>

#include "compile/compiler.h"
#include "compile/nnf.h"
#include "lineage/grounder.h"
#include "logic/parser.h"
#include "prob/tid.h"
#include "wmc/wmc.h"

int main() {
  using namespace gmc;

  Query h1 = ParseQueryOrDie(
      "Ax Ay (R(x) | S(x,y)) & Ax Ay (S(x,y) | T(y))");
  const Vocabulary& v = h1.vocab();

  // --- The tiny §1.6 database: compile and show the whole circuit. -------
  Tid tiny(h1.vocab_ptr(), 1, 1);
  tiny.SetUnaryLeft(v.Find("R"), 0, Rational::Half());
  tiny.SetBinary(v.Find("S"), 0, 0, Rational::Half());
  tiny.SetUnaryRight(v.Find("T"), 0, Rational::Half());
  Lineage tiny_lineage = Ground(h1, tiny);

  Compiler compiler;
  NnfCircuit tiny_circuit = compiler.Compile(tiny_lineage);
  std::printf("lineage: %s\n", tiny_lineage.cnf.ToString().c_str());
  std::printf("Pr = %s (paper: 5/8)\n\n",
              tiny_circuit.Evaluate(tiny_lineage.probabilities)
                  .ToString()
                  .c_str());
  std::printf("--- d-DNNF circuit (Graphviz DOT) ---\n%s\n",
              tiny_circuit.ToDot().c_str());

  // --- A bigger database: structure stats and an evaluate-many sweep. ----
  const int domain = 4;
  Tid big(h1.vocab_ptr(), domain, domain);
  for (int u = 0; u < domain; ++u) {
    big.SetUnaryLeft(v.Find("R"), u, Rational::Half());
    big.SetUnaryRight(v.Find("T"), u, Rational::Half());
    for (int w = 0; w < domain; ++w) {
      big.SetBinary(v.Find("S"), u, w, Rational::Half());
    }
  }
  Lineage lineage = Ground(h1, big);

  auto t0 = std::chrono::steady_clock::now();
  NnfCircuit circuit = compiler.Compile(lineage);
  auto t1 = std::chrono::steady_clock::now();

  NnfCircuit::Stats stats = circuit.ComputeStats();
  std::printf("%dx%d database: %zu lineage variables\n", domain, domain,
              lineage.variables.size());
  std::printf("circuit: %zu nodes (%zu var, %zu AND, %zu decision), "
              "%zu edges, depth %d\n",
              stats.num_nodes, stats.var_nodes, stats.and_nodes,
              stats.decision_nodes, stats.edges, stats.depth);
  std::printf("decomposable: %s, deterministic: %s\n",
              circuit.CheckDecomposable() ? "yes" : "no",
              circuit.CheckDeterministic() ? "yes" : "no");

  // Sweep every tuple weight over k/17, k = 1..16 — the interpolation
  // workload. The circuit is compiled once; each point is one linear pass.
  const int points = 16;
  auto t2 = std::chrono::steady_clock::now();
  for (int k = 1; k <= points; ++k) {
    std::vector<Rational> weights(lineage.probabilities.size(),
                                  Rational(k, points + 1));
    Rational pr = circuit.Evaluate(weights);
    if (k == 1 || k == points) {
      std::printf("  Pr at weight %d/%d = %s\n", k, points + 1,
                  pr.ToString().c_str());
    }
  }
  auto t3 = std::chrono::steady_clock::now();

  WmcEngine engine;
  auto t4 = std::chrono::steady_clock::now();
  for (int k = 1; k <= points; ++k) {
    std::vector<Rational> weights(lineage.probabilities.size(),
                                  Rational(k, points + 1));
    engine.Probability(lineage.cnf, weights);
  }
  auto t5 = std::chrono::steady_clock::now();

  auto us = [](auto a, auto b) {
    return std::chrono::duration_cast<std::chrono::microseconds>(b - a)
        .count();
  };
  std::printf("\ncompile once:        %8lld us\n",
              static_cast<long long>(us(t0, t1)));
  std::printf("%d circuit passes:   %8lld us\n", points,
              static_cast<long long>(us(t2, t3)));
  std::printf("%d WmcEngine runs:   %8lld us\n", points,
              static_cast<long long>(us(t4, t5)));
  return 0;
}
