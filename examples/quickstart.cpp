// Quickstart: parse a query, build a probabilistic database, classify the
// query under the dichotomy, and compute its exact probability.
//
//   ./quickstart

#include <cstdio>

#include "core/dichotomy.h"
#include "logic/parser.h"

int main() {
  using namespace gmc;

  // The paper's running example H1 = ∀x∀y(R(x) ∨ S(x,y)) ∧ (S(x,y) ∨ T(y)).
  Query h1 = ParseQueryOrDie(
      "Ax Ay (R(x) | S(x,y)) & Ax Ay (S(x,y) | T(y))");
  std::printf("query: %s\n", h1.ToString().c_str());

  DichotomyReport report = Classify(h1);
  std::printf("dichotomy: %s\n\n", report.summary.c_str());

  // A 1x1 database with all three tuples at probability 1/2 — the paper's
  // §1.6 example, whose probability is 5/8.
  const Vocabulary& v = h1.vocab();
  Tid tiny(h1.vocab_ptr(), 1, 1);
  tiny.SetUnaryLeft(v.Find("R"), 0, Rational::Half());
  tiny.SetBinary(v.Find("S"), 0, 0, Rational::Half());
  tiny.SetUnaryRight(v.Find("T"), 0, Rational::Half());
  GfomcResult tiny_result = Gfomc(h1, tiny);
  std::printf("Pr(H1) on the 1x1 half-probability database = %s (paper: 5/8)\n",
              tiny_result.probability.ToString().c_str());

  // A safe query routes through the lifted PTIME evaluator instead.
  Query safe = ParseQueryOrDie("Ax Ay (R(x) | S(x,y))");
  Tid db(safe.vocab_ptr(), 4, 4);
  const Vocabulary& sv = safe.vocab();
  for (int u = 0; u < 4; ++u) {
    db.SetUnaryLeft(sv.Find("R"), u, Rational(1, 3));
    for (int w = 0; w < 4; ++w) {
      db.SetBinary(sv.Find("S"), u, w, Rational::Half());
    }
  }
  GfomcResult safe_result = Gfomc(safe, db);
  std::printf("Pr(safe query) = %s  [lifted evaluator used: %s]\n",
              safe_result.probability.ToString().c_str(),
              safe_result.used_lifted ? "yes" : "no");
  return 0;
}
