// The zig-zag rewriting of Lemma 2.6 / Appendix A: builds zg(Q) for a
// Type I-I and a Type II-II query, shows the type/length mapping, and
// verifies Lemma A.1's probability equality on a concrete database.
//
//   ./zigzag_rewriting

#include <cstdio>

#include "hardness/zigzag.h"
#include "logic/bipartite.h"
#include "logic/parser.h"
#include "wmc/wmc.h"

int main() {
  using namespace gmc;
  for (const char* text :
       {"Ax Ay (R(x) | S(x,y)) & Ax Ay (S(x,y) | T(y))",
        "Ax (Ay (S1(x,y)) | Ay (S2(x,y))) & Ax Ay (S1(x,y) | S3(x,y)) & "
        "Ay (Ax (S3(x,y)) | Ax (S4(x,y)))"}) {
    Query q = ParseQueryOrDie(text);
    BipartiteAnalysis before = AnalyzeBipartite(q);
    ZigzagQuery zg = MakeZigzagQuery(q);
    BipartiteAnalysis after = AnalyzeBipartite(zg.query);
    std::printf("Q      : %s\n", q.ToString().c_str());
    std::printf("         %s\n", before.ToString().c_str());
    std::printf("zg(Q)  : %s\n", zg.query.ToString().c_str());
    std::printf("         %s   (n = %d branches)\n", after.ToString().c_str(),
                zg.n);

    // Lemma A.1 on a 2×2 database with all uncertain tuples at 1/2 —
    // checked by the recursive engine and by its compiled d-DNNF path.
    Tid delta(zg.query.vocab_ptr(), 2, 2, Rational::Half());
    Tid zg_delta = MakeZigzagTid(zg, delta);
    WmcEngine engine1, engine2;
    Rational lhs = engine1.QueryProbability(zg.query, delta);
    Rational rhs = engine2.QueryProbability(q, zg_delta);
    Rational compiled = engine2.CompiledQueryProbability(q, zg_delta);
    std::printf(
        "Lemma A.1: Pr_D(zg(Q)) = %s, Pr_zg(D)(Q) = %s  [%s; compiled "
        "circuit agrees: %s]\n"
        "          (zg(D): %d left / %d right constants from D's 2x2)\n\n",
        lhs.ToString().c_str(), rhs.ToString().c_str(),
        lhs == rhs ? "match" : "MISMATCH",
        compiled == rhs ? "yes" : "NO", zg_delta.num_left(),
        zg_delta.num_right());
  }
  return 0;
}
