// A tour of the dichotomy on the paper's example queries: classification
// (safe / unsafe, Type I/II, length, finality) for every query shape that
// appears in the text.
//
//   ./dichotomy_tour

#include <cstdio>
#include <vector>

#include "core/dichotomy.h"
#include "logic/parser.h"

int main() {
  using namespace gmc;
  struct Entry {
    const char* label;
    const char* text;
  };
  const std::vector<Entry> queries = {
      {"H0 (Sec. 2)", "Ax Ay (R(x) | S(x,y) | T(y))"},
      {"H1 (Sec. 1.6)",
       "Ax Ay (R(x) | S(x,y)) & Ax Ay (S(x,y) | T(y))"},
      {"chain length 2",
       "Ax Ay (R(x) | S1(x,y)) & Ax Ay (S1(x,y) | S2(x,y)) & "
       "Ax Ay (S2(x,y) | T(y))"},
      {"intro example (Sec. 1.4)",
       "Ax Ay (R(x) | S(x,y) | T(y) | A(x)) & Ay (B(y))"},
      {"Example C.9 (Type II-II)",
       "Ax (Ay (S1(x,y)) | Ay (S2(x,y))) & Ax Ay (S1(x,y) | S3(x,y)) & "
       "Ay (Ax (S3(x,y)) | Ax (S4(x,y)))"},
      {"safe: left only", "Ax Ay (R(x) | S(x,y))"},
      {"safe: disconnected",
       "Ax Ay (R(x) | S1(x,y)) & Ax Ay (S2(x,y) | T(y))"},
      {"safe: middle only", "Ax Ay (S(x,y))"},
      {"non-final unsafe",
       "Ax Ay (R(x) | S1(x,y) | S2(x,y)) & Ax Ay (S1(x,y) | T(y))"},
      {"Type I-II mix",
       "Ax Ay (R(x) | S1(x,y)) & Ax Ay (S1(x,y) | S2(x,y)) & "
       "Ay (Ax (S2(x,y)) | Ax (S3(x,y)))"},
  };
  std::printf("%-28s %s\n", "query", "verdict");
  std::printf("%-28s %s\n", "-----", "-------");
  for (const Entry& entry : queries) {
    Query q = ParseQueryOrDie(entry.text);
    DichotomyReport report = Classify(q);
    std::printf("%-28s %s\n", entry.label, report.summary.c_str());
  }

  // Walk a non-final unsafe query down to a final one (Lemma 2.7).
  Query q = ParseQueryOrDie(
      "Ax Ay (R(x) | S1(x,y) | S2(x,y)) & Ax Ay (S1(x,y) | T(y))");
  std::printf("\nsimplifying to a final query:\n  start: %s\n",
              q.ToString().c_str());
  Query final_query = MakeFinal(q);
  std::printf("  final: %s\n", final_query.ToString().c_str());
  return 0;
}
