#include "compile/circuit_cache.h"

#include <utility>

namespace gmc {

const NnfCircuit& CircuitCache::Get(const Cnf& cnf) {
  if (auto it = circuits_.find(cnf); it != circuits_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.compiles;
  return circuits_.emplace(cnf, compiler_.Compile(cnf)).first->second;
}

Rational CircuitCache::Probability(const Cnf& cnf,
                                   const std::vector<Rational>& probabilities) {
  return Get(cnf).Evaluate(probabilities);
}

Rational CircuitCache::Probability(const Lineage& lineage) {
  if (lineage.is_false) return Rational::Zero();
  return Probability(lineage.cnf, lineage.probabilities);
}

Rational CircuitCache::QueryProbability(const Query& query, const Tid& tid) {
  if (query.IsFalse()) return Rational::Zero();
  if (query.IsTrue()) return Rational::One();
  return Probability(Ground(query, tid));
}

}  // namespace gmc
