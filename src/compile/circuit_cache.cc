#include "compile/circuit_cache.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "store/scrub.h"
#include "util/fault.h"

namespace gmc {

namespace {
std::atomic<bool> g_dyadic_default_enabled{true};
}  // namespace

void CircuitCache::SetDyadicDefaultEnabled(bool enabled) {
  g_dyadic_default_enabled.store(enabled, std::memory_order_relaxed);
}

bool CircuitCache::DyadicDefaultEnabled() {
  return g_dyadic_default_enabled.load(std::memory_order_relaxed);
}

CircuitCache::CircuitCache() { Configure(GmcOptions::FromEnv()); }

void CircuitCache::Configure(const GmcOptions& options) {
  std::lock_guard<std::mutex> lock(options_mu_);
  num_threads_.store(options.num_threads, std::memory_order_relaxed);
  order_.store(options.order, std::memory_order_relaxed);
  dyadic_enabled_.store(options.dyadic_enabled, std::memory_order_relaxed);
  max_resident_bytes_.store(options.max_resident_bytes,
                            std::memory_order_relaxed);
  self_heal_.store(options.store_self_heal, std::memory_order_relaxed);
  const bool store_changed =
      options.store_directory != options_.store_directory ||
      options.store_write_through != options_.store_write_through;
  options_ = options;
  if (store_changed) {
    ApplyStore(options.store_directory, options.store_write_through);
  }
}

GmcOptions CircuitCache::options() const {
  std::lock_guard<std::mutex> lock(options_mu_);
  return options_;
}

void CircuitCache::set_order(OrderHeuristic order) {
  GmcOptions next = options();
  next.order = order;
  Configure(next);
}

void CircuitCache::set_dyadic_enabled(bool enabled) {
  GmcOptions next = options();
  next.dyadic_enabled = enabled;
  Configure(next);
}

void CircuitCache::set_num_threads(int num_threads) {
  GmcOptions next = options();
  next.num_threads = num_threads;
  Configure(next);
}

void CircuitCache::set_store_directory(const std::string& directory,
                                       bool write_through) {
  // Unlike Configure, the direct setter always re-attaches — callers use
  // it to force a fresh directory scan of the same path.
  std::lock_guard<std::mutex> lock(options_mu_);
  options_.store_directory = directory;
  options_.store_write_through = write_through;
  ApplyStore(directory, write_through);
}

void CircuitCache::ApplyStore(const std::string& directory,
                              bool write_through) {
  write_through_.store(write_through, std::memory_order_relaxed);
  std::shared_ptr<const store::CircuitStore> next =
      directory.empty() ? nullptr
                        : std::make_shared<const store::CircuitStore>(directory);
  std::lock_guard<std::mutex> lock(store_mu_);
  store_ = std::move(next);
}

std::string CircuitCache::store_directory() const {
  std::shared_ptr<const store::CircuitStore> s = store();
  return s != nullptr ? s->directory() : std::string();
}

std::shared_ptr<const store::CircuitStore> CircuitCache::store() const {
  std::lock_guard<std::mutex> lock(store_mu_);
  return store_;
}

size_t CircuitCache::SaveTo(const std::string& directory, std::string* error) {
  const store::CircuitStore target(directory);
  const OrderHeuristic order = order_.load(std::memory_order_relaxed);
  size_t saved = 0;
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (const auto& [cnf, entry] : stripe.circuits) {
      std::string save_error;
      if (target.Save(*entry.circuit, cnf, order, &save_error)) {
        ++saved;
      } else if (error != nullptr && error->empty()) {
        *error = save_error;
      }
    }
  }
  return saved;
}

size_t CircuitCache::WarmFrom(const std::string& directory) {
  const store::CircuitStore source(directory);
  size_t inserted = 0;
  for (const std::string& path : source.ListEntries()) {
    store::LoadedCircuit loaded;
    std::string load_error;
    if (!store::LoadCircuit(path, &loaded, &load_error)) {
      stats_.store_rejected.fetch_add(1, std::memory_order_relaxed);
      // Same self-heal as the read-through path: quarantine only what
      // re-validates as durably corrupt (an injected store.read failure
      // must not cost a healthy warm-start entry its place on disk).
      if (self_heal_.load(std::memory_order_relaxed) &&
          store::QuarantineIfCorrupt(path)) {
        stats_.store_quarantined.fetch_add(1, std::memory_order_relaxed);
      }
      continue;
    }
    Stripe& stripe = StripeFor(loaded.cnf);
    std::lock_guard<std::mutex> lock(stripe.mu);
    // Keep an already-cached circuit: it is in use (references from Get
    // stay valid until Clear) and evaluates identically anyway.
    Entry entry;
    entry.circuit =
        std::make_shared<const NnfCircuit>(std::move(loaded.circuit));
    entry.bytes = entry.circuit->MemoryBytes();
    entry.last_used = use_clock_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t bytes = entry.bytes;
    const bool fresh =
        stripe.circuits.try_emplace(loaded.cnf, std::move(entry)).second;
    if (fresh) {
      ++inserted;
      resident_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    }
  }
  // One sweep after the bulk load (protecting nothing: a warm scan has no
  // in-flight entry to shield) so warming a replica against a byte budget
  // ends within it rather than at the full store size.
  const uint64_t max_bytes = max_resident_bytes_.load(std::memory_order_relaxed);
  if (max_bytes > 0 &&
      resident_bytes_.load(std::memory_order_relaxed) > max_bytes) {
    MaybeEvict(max_bytes, use_clock_.load(std::memory_order_relaxed));
  }
  return inserted;
}

CircuitCache::Stripe& CircuitCache::StripeFor(const Cnf& cnf) {
  // The stripe index uses the same 64-bit structural hash as the
  // per-stripe maps; taking the TOP bits keeps the two partitions
  // independent (the map buckets use the low bits). The shift tracks
  // kNumStripes so resizing the array keeps every stripe reachable.
  static_assert((kNumStripes & (kNumStripes - 1)) == 0,
                "stripe count must be a power of two");
  constexpr int kShift = 64 - std::bit_width(kNumStripes - 1);
  return stripes_[CnfHash{}(cnf) >> kShift & (kNumStripes - 1)];
}

const NnfCircuit& CircuitCache::Get(const Cnf& cnf) {
  // Unbudgeted, uncancellable compilation always produces a circuit.
  return *GetOrCompile(cnf, nullptr, nullptr);
}

std::shared_ptr<const NnfCircuit> CircuitCache::GetShared(
    const Cnf& cnf, const CancelToken* cancel) {
  return GetOrCompile(cnf, nullptr, cancel);
}

const NnfCircuit* CircuitCache::TryGet(const Cnf& cnf,
                                       const CompileBudget& budget) {
  if (budget.Unlimited()) return &Get(cnf);
  return GetOrCompile(cnf, &budget, nullptr).get();
}

std::shared_ptr<const NnfCircuit> CircuitCache::TryGetShared(
    const Cnf& cnf, const CompileBudget& budget, const CancelToken* cancel) {
  if (budget.Unlimited()) return GetOrCompile(cnf, nullptr, cancel);
  return GetOrCompile(cnf, &budget, cancel);
}

std::shared_ptr<const NnfCircuit> CircuitCache::GetOrCompile(
    const Cnf& cnf, const CompileBudget* budget, const CancelToken* cancel) {
  Stripe& stripe = StripeFor(cnf);
  // The shared_ptr the caller takes home, and the clock reading the LRU
  // sweep must not evict (the just-inserted entry). Both escape the locked
  // scope: eviction runs after every lock is dropped.
  std::shared_ptr<const NnfCircuit> result;
  uint64_t keep_from = 0;
  // Inserts one freshly produced circuit (compiled or store-loaded) under
  // the stripe lock. The fault point models a lost insert — an allocator
  // or admission failure between compile and publish: the caller still
  // gets ITS circuit (pinned until Clear so legacy references survive),
  // the map just never learns about it and the next lookup recompiles.
  auto publish = [&](NnfCircuit&& circuit) {
    stripe.failed.erase(cnf);
    auto shared = std::make_shared<const NnfCircuit>(std::move(circuit));
    keep_from = use_clock_.fetch_add(1, std::memory_order_relaxed);
    if (fault::ShouldFail(fault::Point::kCacheInsert)) {
      std::lock_guard<std::mutex> pin_lock(pinned_mu_);
      pinned_.push_back(shared);
      result = std::move(shared);
      return;
    }
    Entry entry;
    entry.circuit = shared;
    entry.bytes = shared->MemoryBytes();
    entry.last_used = keep_from;
    resident_bytes_.fetch_add(entry.bytes, std::memory_order_relaxed);
    stripe.circuits.emplace(cnf, std::move(entry));
    result = std::move(shared);
  };
  {
    std::lock_guard<std::mutex> stripe_lock(stripe.mu);
    if (auto it = stripe.circuits.find(cnf); it != stripe.circuits.end()) {
      stats_.hits.fetch_add(1, std::memory_order_relaxed);
      keep_from = use_clock_.fetch_add(1, std::memory_order_relaxed);
      it->second.last_used = keep_from;
      // A hit exits through the shared eviction tail below, not an early
      // return: under a byte budget, pure-hit traffic must also be able
      // to shrink an over-budget cache — eviction pressure cannot depend
      // on the next insert ever happening. The hit entry itself is
      // shielded by its fresh keep_from stamp.
      result = it->second.circuit;
    }
    // Budget-exhaustion memo: a structure that already blew through an
    // equal-or-larger budget is not worth recompiling — fail fast so the
    // router's probe costs one hash lookup on repeat traffic.
    if (result == nullptr && budget != nullptr) {
      if (auto it = stripe.failed.find(cnf); it != stripe.failed.end()) {
        if (!budget->AllowsMoreThan(it->second)) {
          stats_.budget_exhausted.fetch_add(1, std::memory_order_relaxed);
          return nullptr;
        }
      }
    }
    // Read-through: an in-memory miss consults the persistent store (if one
    // is attached) before paying for compilation. A loaded circuit has been
    // checksum-, structure-, and fingerprint-validated AND clause-matched
    // against `cnf`, so it is exactly what the compiler would hand back.
    // Budgets never apply here: loading is linear in the stored circuit.
    // This is also what an EVICTED entry degrades to: a byte-budget drop of
    // a persisted circuit costs one load, never a recompile.
    const std::shared_ptr<const store::CircuitStore> persistent = store();
    if (result == nullptr && persistent != nullptr) {
      NnfCircuit loaded;
      std::string store_error;
      switch (persistent->TryLoad(cnf, &loaded, nullptr, &store_error)) {
        case store::StoreLookup::kLoaded:
          stats_.store_hits.fetch_add(1, std::memory_order_relaxed);
          publish(std::move(loaded));
          break;
        case store::StoreLookup::kMissing:
          stats_.store_misses.fetch_add(1, std::memory_order_relaxed);
          break;
        case store::StoreLookup::kRejected:
          stats_.store_rejected.fetch_add(1, std::memory_order_relaxed);
          // Self-heal: a durably corrupt file is quarantined NOW, so this
          // rejection is the last one it ever causes (the write-through
          // below re-fills the path with a fresh circuit). The probe
          // re-reads the bytes fault-point-free: a transient or injected
          // read failure never quarantines a healthy file.
          if (self_heal_.load(std::memory_order_relaxed) &&
              store::QuarantineIfCorrupt(persistent->PathFor(cnf))) {
            stats_.store_quarantined.fetch_add(1, std::memory_order_relaxed);
          }
          break;
        case store::StoreLookup::kMismatch:
          // A valid circuit for a DIFFERENT CNF (hash collision): counted
          // as a rejection, never quarantined — it may be someone else's
          // good entry.
          stats_.store_rejected.fetch_add(1, std::memory_order_relaxed);
          break;
      }
    }
    if (result == nullptr) {
      // Compile while holding the stripe lock: a second thread racing for
      // the SAME structure waits here instead of compiling twice, and
      // threads on other stripes only serialize on the compiler mutex
      // below (the compiler's sub-formula memo is shared state).
      const OrderHeuristic order = order_.load(std::memory_order_relaxed);
      NnfCircuit compiled;
      NnfCircuit legacy;
      bool have_legacy = false;
      {
        std::lock_guard<std::mutex> compiler_lock(compiler_mu_);
        compiler_.set_order(order);
        const Compiler::Stats before = compiler_.stats();
        if (budget != nullptr) {
          std::optional<NnfCircuit> attempt =
              compiler_.TryCompile(cnf, *budget, cancel);
          if (!attempt.has_value()) {
            // A fired deadline is NOT a budget failure: it says nothing
            // about the instance, so no memo and no exhaustion tick — a
            // later unhurried probe must be free to compile.
            if (cancel != nullptr && cancel->cancelled()) return nullptr;
            // Remember the largest budget this structure has failed under.
            auto [it, fresh] = stripe.failed.try_emplace(cnf, *budget);
            if (!fresh && budget->AllowsMoreThan(it->second)) {
              it->second = *budget;
            }
            stats_.budget_exhausted.fetch_add(1, std::memory_order_relaxed);
            return nullptr;
          }
          compiled = std::move(*attempt);
        } else {
          compiled = compiler_.Compile(cnf, cancel);
          // A cancelled unbudgeted compile hands back a placeholder-laced
          // partial circuit — discard it, cache nothing.
          if (cancel != nullptr && cancel->cancelled()) return nullptr;
        }
        stats_.compiles.fetch_add(1, std::memory_order_relaxed);
        stats_.nodes_before_minimize.fetch_add(
            compiler_.stats().minimize_nodes_before -
                before.minimize_nodes_before,
            std::memory_order_relaxed);
        stats_.nodes_after_minimize.fetch_add(
            compiler_.stats().minimize_nodes_after -
                before.minimize_nodes_after,
            std::memory_order_relaxed);
        if (budget == nullptr && order != OrderHeuristic::kDefault &&
            order_baseline_recording_.load(std::memory_order_relaxed)) {
          // Reference compile under the legacy order, discarded — only its
          // edge count survives, as the denominator of the order payoff.
          // Budgeted probes skip recording: the reference compile would run
          // unbudgeted on a structure suspected of blowing up.
          compiler_.set_order(OrderHeuristic::kDefault);
          legacy = compiler_.Compile(cnf);
          have_legacy = true;
        }
      }
      // Edge accounting happens OUTSIDE the compiler mutex: both circuits
      // are locals, and compiler_mu_ serializes compiles across every
      // stripe, so the O(edges) ComputeStats walks must not lengthen that
      // critical section.
      if (order != OrderHeuristic::kDefault) {
        stats_.ordered_compiles.fetch_add(1, std::memory_order_relaxed);
        const uint64_t edges = compiled.ComputeStats().edges;
        stats_.order_edges.fetch_add(edges, std::memory_order_relaxed);
        if (have_legacy) {
          stats_.recorded_order_edges.fetch_add(edges,
                                                std::memory_order_relaxed);
          stats_.legacy_order_edges.fetch_add(legacy.ComputeStats().edges,
                                              std::memory_order_relaxed);
        }
      }
      publish(std::move(compiled));
      // Write-through AFTER the insert, from the caller's copy: a failed
      // save is a lost cache entry (the next cold process recompiles),
      // never a query failure, so the error is deliberately dropped.
      if (persistent != nullptr &&
          write_through_.load(std::memory_order_relaxed)) {
        std::string save_error;
        persistent->Save(*result, cnf, order, &save_error);
      }
    }
  }
  // LRU sweep outside every lock (it takes stripe locks itself). The
  // freshly published entry is shielded via keep_from; everything older is
  // fair game.
  const uint64_t max_bytes =
      max_resident_bytes_.load(std::memory_order_relaxed);
  if (max_bytes > 0 &&
      resident_bytes_.load(std::memory_order_relaxed) > max_bytes) {
    MaybeEvict(max_bytes, keep_from);
  }
  return result;
}

void CircuitCache::MaybeEvict(uint64_t max_bytes, uint64_t keep_from) {
  // Evict the globally least-recently-used entry, repeatedly, until the
  // footprint fits. Each round locks one stripe at a time (callers hold no
  // stripe lock), so a concurrent hit can bump last_used between the scan
  // and the erase — the re-check under the victim's lock keeps that race
  // harmless: worst case we evict the second-least-recent entry. Entries
  // stamped at or after keep_from are never touched, so the one circuit
  // the triggering caller just published survives its own sweep (a budget
  // smaller than a single circuit degrades to evict-on-next-insert, not to
  // thrash-on-every-lookup).
  const int kMaxRounds = 1024;  // paranoia bound, not a policy
  for (int round = 0; round < kMaxRounds; ++round) {
    if (resident_bytes_.load(std::memory_order_relaxed) <= max_bytes) return;
    size_t victim_stripe = kNumStripes;
    uint64_t victim_used = keep_from;
    Cnf victim_key;
    for (size_t s = 0; s < kNumStripes; ++s) {
      std::lock_guard<std::mutex> lock(stripes_[s].mu);
      for (const auto& [cnf, entry] : stripes_[s].circuits) {
        if (entry.last_used < victim_used) {
          victim_used = entry.last_used;
          victim_stripe = s;
          victim_key = cnf;
        }
      }
    }
    if (victim_stripe == kNumStripes) return;  // nothing evictable remains
    Stripe& stripe = stripes_[victim_stripe];
    std::lock_guard<std::mutex> lock(stripe.mu);
    auto it = stripe.circuits.find(victim_key);
    if (it == stripe.circuits.end()) continue;  // raced with Clear
    if (it->second.last_used >= keep_from) continue;  // hit since the scan
    resident_bytes_.fetch_sub(it->second.bytes, std::memory_order_relaxed);
    stats_.evictions.fetch_add(1, std::memory_order_relaxed);
    // The erase drops the map's reference; an in-flight evaluation that
    // pinned via GetShared keeps the circuit alive until it finishes.
    stripe.circuits.erase(it);
  }
}

Rational CircuitCache::Probability(const Cnf& cnf,
                                   const std::vector<Rational>& probabilities) {
  // GetShared, not Get: the pin keeps the circuit alive through the
  // evaluation even if a concurrent insert evicts this entry.
  return GetShared(cnf)->Evaluate(probabilities);
}

Rational CircuitCache::Probability(const Lineage& lineage) {
  if (lineage.is_false) return Rational::Zero();
  return Probability(lineage.cnf, lineage.probabilities);
}

Rational CircuitCache::QueryProbability(const Query& query, const Tid& tid) {
  if (query.IsFalse()) return Rational::Zero();
  if (query.IsTrue()) return Rational::One();
  return Probability(Ground(query, tid));
}

std::vector<Rational> CircuitCache::ProbabilityBatch(
    const Cnf& cnf, const WeightMatrix& weights, const CancelToken* cancel) {
  const std::shared_ptr<const NnfCircuit> pinned = GetShared(cnf, cancel);
  if (pinned == nullptr) {
    // Deadline fired during the compile: the contract is "well-formed but
    // meaningless" — the caller checks cancel->cancelled() and discards.
    return std::vector<Rational>(
        static_cast<size_t>(weights.num_vectors()));
  }
  const NnfCircuit& circuit = *pinned;
  // The GetShared above accounted one compile or hit; the remaining K − 1
  // vectors are all cache-served evaluations.
  stats_.hits.fetch_add(weights.num_vectors() - 1, std::memory_order_relaxed);
  stats_.batch_passes.fetch_add(1, std::memory_order_relaxed);
  stats_.batched_vectors.fetch_add(weights.num_vectors(),
                                   std::memory_order_relaxed);
  const int num_threads = num_threads_.load(std::memory_order_relaxed);
  // Interpolation sweeps and GFOMC instances have power-of-two weight
  // denominators throughout; those batches take the gcd-free dyadic pass.
  // Both paths return identical reduced Rationals, so callers never see
  // which one ran.
  if (dyadic_enabled() && weights.AllDyadic()) {
    stats_.dyadic_batches.fetch_add(1, std::memory_order_relaxed);
    stats_.dyadic_vectors.fetch_add(weights.num_vectors(),
                                    std::memory_order_relaxed);
    DyadicBatchStats widths;
    std::vector<Rational> result =
        circuit.EvaluateBatchDyadic(weights, num_threads, &widths, cancel);
    stats_.fixed64_vectors.fetch_add(widths.fixed64_vectors,
                                     std::memory_order_relaxed);
    stats_.fixed128_vectors.fetch_add(widths.fixed128_vectors,
                                      std::memory_order_relaxed);
    stats_.bigint_vectors.fetch_add(widths.bigint_vectors,
                                    std::memory_order_relaxed);
    return result;
  }
  return circuit.EvaluateBatch(weights, num_threads, cancel);
}

std::vector<Rational> CircuitCache::ProbabilityBatch(
    const std::vector<Lineage>& lineages) {
  std::vector<Rational> results(lineages.size());
  // Group by CNF structure; each group shares one compiled circuit and one
  // batch pass. std::map-free: the order of groups does not matter because
  // results are written back by input index.
  std::unordered_map<Cnf, std::vector<size_t>, CnfHash, CnfClauseEq> groups;
  for (size_t i = 0; i < lineages.size(); ++i) {
    if (lineages[i].is_false) {
      results[i] = Rational::Zero();
      continue;
    }
    groups[lineages[i].cnf].push_back(i);
  }
  for (const auto& [cnf, members] : groups) {
    // Group equality compares clause lists only, so members can carry more
    // interned-then-orphaned variables than the representative key's
    // num_vars; size the matrix to the widest row (the circuit never reads
    // the orphan columns — its variables all occur in the shared clauses).
    size_t width = static_cast<size_t>(cnf.num_vars);
    for (size_t member : members) {
      width = std::max(width, lineages[member].probabilities.size());
    }
    WeightMatrix weights(static_cast<int>(members.size()),
                         static_cast<int>(width));
    for (size_t m = 0; m < members.size(); ++m) {
      const std::vector<Rational>& row = lineages[members[m]].probabilities;
      for (size_t v = 0; v < row.size(); ++v) {
        weights.Set(static_cast<int>(m), static_cast<int>(v), row[v]);
      }
    }
    std::vector<Rational> values = ProbabilityBatch(cnf, weights);
    for (size_t m = 0; m < members.size(); ++m) {
      results[members[m]] = std::move(values[m]);
    }
  }
  return results;
}

CircuitCache::Stats CircuitCache::stats() const {
  Stats out;
  out.compiles = stats_.compiles.load(std::memory_order_relaxed);
  out.hits = stats_.hits.load(std::memory_order_relaxed);
  out.batch_passes = stats_.batch_passes.load(std::memory_order_relaxed);
  out.batched_vectors =
      stats_.batched_vectors.load(std::memory_order_relaxed);
  out.dyadic_batches = stats_.dyadic_batches.load(std::memory_order_relaxed);
  out.dyadic_vectors = stats_.dyadic_vectors.load(std::memory_order_relaxed);
  out.fixed64_vectors =
      stats_.fixed64_vectors.load(std::memory_order_relaxed);
  out.fixed128_vectors =
      stats_.fixed128_vectors.load(std::memory_order_relaxed);
  out.bigint_vectors = stats_.bigint_vectors.load(std::memory_order_relaxed);
  out.nodes_before_minimize =
      stats_.nodes_before_minimize.load(std::memory_order_relaxed);
  out.nodes_after_minimize =
      stats_.nodes_after_minimize.load(std::memory_order_relaxed);
  out.ordered_compiles =
      stats_.ordered_compiles.load(std::memory_order_relaxed);
  out.order_edges = stats_.order_edges.load(std::memory_order_relaxed);
  out.recorded_order_edges =
      stats_.recorded_order_edges.load(std::memory_order_relaxed);
  out.legacy_order_edges =
      stats_.legacy_order_edges.load(std::memory_order_relaxed);
  out.store_hits = stats_.store_hits.load(std::memory_order_relaxed);
  out.store_misses = stats_.store_misses.load(std::memory_order_relaxed);
  out.store_rejected = stats_.store_rejected.load(std::memory_order_relaxed);
  out.store_quarantined =
      stats_.store_quarantined.load(std::memory_order_relaxed);
  out.budget_exhausted =
      stats_.budget_exhausted.load(std::memory_order_relaxed);
  out.evictions = stats_.evictions.load(std::memory_order_relaxed);
  out.resident_bytes = resident_bytes_.load(std::memory_order_relaxed);
  return out;
}

Compiler::Stats CircuitCache::compiler_stats() const {
  std::lock_guard<std::mutex> lock(compiler_mu_);
  return compiler_.stats();
}

size_t CircuitCache::size() const {
  size_t total = 0;
  for (const Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    total += stripe.circuits.size();
  }
  return total;
}

void CircuitCache::Clear() {
  for (Stripe& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    for (const auto& [cnf, entry] : stripe.circuits) {
      resident_bytes_.fetch_sub(entry.bytes, std::memory_order_relaxed);
    }
    stripe.circuits.clear();
    stripe.failed.clear();
  }
  std::lock_guard<std::mutex> pin_lock(pinned_mu_);
  pinned_.clear();
}

}  // namespace gmc
