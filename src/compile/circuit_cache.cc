#include "compile/circuit_cache.h"

#include <algorithm>
#include <utility>

namespace gmc {

namespace {
bool g_dyadic_default_enabled = true;
}  // namespace

void CircuitCache::SetDyadicDefaultEnabled(bool enabled) {
  g_dyadic_default_enabled = enabled;
}

bool CircuitCache::DyadicDefaultEnabled() { return g_dyadic_default_enabled; }

const NnfCircuit& CircuitCache::Get(const Cnf& cnf) {
  if (auto it = circuits_.find(cnf); it != circuits_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.compiles;
  const Compiler::Stats before = compiler_.stats();
  const NnfCircuit& circuit =
      circuits_.emplace(cnf, compiler_.Compile(cnf)).first->second;
  stats_.nodes_before_minimize +=
      compiler_.stats().minimize_nodes_before - before.minimize_nodes_before;
  stats_.nodes_after_minimize +=
      compiler_.stats().minimize_nodes_after - before.minimize_nodes_after;
  return circuit;
}

Rational CircuitCache::Probability(const Cnf& cnf,
                                   const std::vector<Rational>& probabilities) {
  return Get(cnf).Evaluate(probabilities);
}

Rational CircuitCache::Probability(const Lineage& lineage) {
  if (lineage.is_false) return Rational::Zero();
  return Probability(lineage.cnf, lineage.probabilities);
}

Rational CircuitCache::QueryProbability(const Query& query, const Tid& tid) {
  if (query.IsFalse()) return Rational::Zero();
  if (query.IsTrue()) return Rational::One();
  return Probability(Ground(query, tid));
}

std::vector<Rational> CircuitCache::ProbabilityBatch(
    const Cnf& cnf, const WeightMatrix& weights) {
  const NnfCircuit& circuit = Get(cnf);
  // The Get above accounted one compile or hit; the remaining K − 1 vectors
  // are all cache-served evaluations.
  stats_.hits += weights.num_vectors() - 1;
  ++stats_.batch_passes;
  stats_.batched_vectors += weights.num_vectors();
  // Interpolation sweeps and GFOMC instances have power-of-two weight
  // denominators throughout; those batches take the gcd-free dyadic pass.
  // Both paths return identical reduced Rationals, so callers never see
  // which one ran.
  if (dyadic_enabled_ && weights.AllDyadic()) {
    ++stats_.dyadic_batches;
    stats_.dyadic_vectors += weights.num_vectors();
    return circuit.EvaluateBatchDyadic(weights);
  }
  return circuit.EvaluateBatch(weights);
}

std::vector<Rational> CircuitCache::ProbabilityBatch(
    const std::vector<Lineage>& lineages) {
  std::vector<Rational> results(lineages.size());
  // Group by CNF structure; each group shares one compiled circuit and one
  // batch pass. std::map-free: the order of groups does not matter because
  // results are written back by input index.
  std::unordered_map<Cnf, std::vector<size_t>, CnfHash, CnfClauseEq> groups;
  for (size_t i = 0; i < lineages.size(); ++i) {
    if (lineages[i].is_false) {
      results[i] = Rational::Zero();
      continue;
    }
    groups[lineages[i].cnf].push_back(i);
  }
  for (const auto& [cnf, members] : groups) {
    // Group equality compares clause lists only, so members can carry more
    // interned-then-orphaned variables than the representative key's
    // num_vars; size the matrix to the widest row (the circuit never reads
    // the orphan columns — its variables all occur in the shared clauses).
    size_t width = static_cast<size_t>(cnf.num_vars);
    for (size_t member : members) {
      width = std::max(width, lineages[member].probabilities.size());
    }
    WeightMatrix weights(static_cast<int>(members.size()),
                         static_cast<int>(width));
    for (size_t m = 0; m < members.size(); ++m) {
      const std::vector<Rational>& row = lineages[members[m]].probabilities;
      for (size_t v = 0; v < row.size(); ++v) {
        weights.Set(static_cast<int>(m), static_cast<int>(v), row[v]);
      }
    }
    std::vector<Rational> values = ProbabilityBatch(cnf, weights);
    for (size_t m = 0; m < members.size(); ++m) {
      results[members[m]] = std::move(values[m]);
    }
  }
  return results;
}

}  // namespace gmc
