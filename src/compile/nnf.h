// d-DNNF arithmetic circuits — the knowledge-compilation target.
//
// A grounded lineage compiled once into a smooth-enough circuit can be
// re-evaluated at many tuple-probability settings in one linear bottom-up
// pass each — exactly the workload of the interpolation-based hardness
// reductions, which probe the same gadget lineage at many weight vectors.
//
// Node kinds: constants, variable leaves, decomposable AND (children have
// pairwise disjoint variable supports — the component splits of the
// compiler), and Shannon decision nodes (var ? high : low), which are the
// deterministic ORs: the two branches disagree on the decision variable, so
// their models are disjoint and probabilities add as
//   p(var)·Pr[high] + (1 − p(var))·Pr[low].
// Variables absent from a subcircuit are implicitly marginalized (their
// factor is p + (1 − p) = 1), so no explicit smoothing nodes are needed for
// weighted model counting.
//
// Nodes are hash-consed: structurally identical nodes share one id, and
// children always precede their parents, so ascending id order is a
// topological order — Evaluate and the structural audits are single passes.

#ifndef GMC_COMPILE_NNF_H_
#define GMC_COMPILE_NNF_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "compile/nnf_walk.h"
#include "util/dyadic.h"
#include "util/rational.h"

namespace gmc {

/// Node kinds of the d-DNNF circuit (see the header comment for their
/// semantics).
enum class NnfKind : uint8_t { kFalse, kTrue, kVar, kAnd, kDecision };

/// K weight vectors over V variables — the input of the batched evaluator.
/// Storage is variable-major (the K values of one variable are contiguous),
/// so the per-node inner loops of EvaluateBatch stream one contiguous column
/// instead of striding across K separate vectors. Value type (owns its
/// entries); safe for concurrent reads once filled, mutation (Set) is
/// single-threaded.
class WeightMatrix {
 public:
  /// A K×V matrix of zero weights; fill with Set.
  WeightMatrix(int num_vectors, int num_vars);

  /// Builds from K row vectors (one weight vector per row, all the same
  /// length). Aborts on an empty or ragged input.
  static WeightMatrix FromRows(const std::vector<std::vector<Rational>>& rows);

  int num_vectors() const { return num_vectors_; }
  int num_vars() const { return num_vars_; }

  /// Value of variable `var` in weight vector `k`.
  const Rational& at(int k, int var) const {
    return values_[static_cast<size_t>(var) * num_vectors_ + k];
  }
  void Set(int k, int var, Rational value) {
    values_[static_cast<size_t>(var) * num_vectors_ + k] = std::move(value);
  }

  /// The K contiguous values of one variable.
  const Rational* Column(int var) const {
    return values_.data() + static_cast<size_t>(var) * num_vectors_;
  }

  /// One weight vector, re-assembled (loop-comparison and re-check paths).
  std::vector<Rational> Row(int k) const;

  /// True iff every entry has a power-of-two denominator — the whole batch
  /// qualifies for the dyadic exact path (EvaluateBatchDyadic). One scan,
  /// no allocation.
  bool AllDyadic() const;

 private:
  int num_vectors_ = 0;
  int num_vars_ = 0;
  std::vector<Rational> values_;  // values_[var * num_vectors_ + k]
};

/// One circuit node. Plain data; child ids always point at lower-numbered
/// nodes (ascending id order is a topological order).
struct NnfNode {
  NnfKind kind = NnfKind::kFalse;
  int var = -1;               ///< kVar and kDecision
  int high = -1;              ///< kDecision: branch with var = true
  int low = -1;               ///< kDecision: branch with var = false
  std::vector<int> children;  ///< kAnd (always ≥ 2 after folding)
};

/// Per-call routing report of EvaluateBatchDyadic: how many of the K weight
/// vectors were served by each mantissa width. The three counters sum to K;
/// CircuitCache aggregates them into its stats.
struct DyadicBatchStats {
  int fixed64_vectors = 0;   // raw uint64 mantissa kernel
  int fixed128_vectors = 0;  // two-limb UInt128 mantissa kernel
  int bigint_vectors = 0;    // BigInt Dyadic arena (arbitrary precision)
};

/// One d-DNNF circuit.
///
/// Ownership: plain value type — the nodes live inside the object, copies
/// are deep and independent, and nothing returned by the accessors
/// outlives the circuit.
///
/// Thread safety: construction and mutation (Var/And/Decision/SetRoot/
/// PruneUnreachable) are single-threaded; every evaluation entry point is
/// const and safe to call concurrently from any number of threads (the
/// batch passes additionally parallelize internally over the shared
/// pool, bit-identically at any thread count).
///
/// Exactness: Evaluate, EvaluateBatch, and EvaluateBatchDyadic return
/// exact canonical Rationals — bit-identical to one another on the same
/// weights; EvaluateBatchDouble is the one approximate pass and re-checks
/// itself against the exact evaluator at a configurable stride.
class NnfCircuit {
 public:
  /// Structural summary, computed by ComputeStats in one pass.
  struct Stats {
    size_t num_nodes = 0;
    size_t var_nodes = 0;
    size_t and_nodes = 0;
    size_t decision_nodes = 0;
    size_t edges = 0;
    int depth = 0;  ///< longest root-to-leaf path, 0 for a bare constant
  };

  /// Every circuit owns nodes 0 = FALSE and 1 = TRUE.
  NnfCircuit();

  int False() const { return 0; }
  int True() const { return 1; }

  /// Node constructors. All are hash-consed and constant-folding:
  ///   And: drops TRUE children, collapses to FALSE on any FALSE child,
  ///        sorts children canonically, unwraps singletons;
  ///   Decision: high == low folds the test away, (TRUE, FALSE) is Var(var).
  int Var(int var);
  int And(std::vector<int> children);
  int Decision(int var, int high, int low);

  void SetRoot(int id);
  int root() const { return root_; }
  const std::vector<NnfNode>& nodes() const { return nodes_; }
  size_t num_nodes() const { return nodes_.size(); }
  /// 1 + the largest variable id mentioned (0 for constant circuits).
  int num_vars() const { return num_vars_; }

  /// Weighted model count in one bottom-up pass: the probability that the
  /// circuit is satisfied when variable v is independently true with
  /// probability probabilities[v]. Callable any number of times with
  /// different weight vectors; this is the compile-once / evaluate-many
  /// payoff.
  Rational Evaluate(const std::vector<Rational>& probabilities) const;

  /// Batched weighted model count: all K weight vectors in ONE topological
  /// pass. The scratch arena is a contiguous row-major block (K values per
  /// node), node metadata is decoded once per node instead of once per
  /// (node, vector), and decision complements 1 − p are computed once per
  /// (variable, vector) instead of once per (decision node, vector) — the
  /// interpolation sweeps of the hardness reductions probe hundreds of weight
  /// vectors against one gadget circuit, which is exactly this shape.
  /// Returns the K root values in input order.
  ///
  /// All three batch evaluators are column-parallel: the K weight vectors
  /// are split into contiguous column slices and each slice runs the full
  /// topological pass over its own arena on one worker of the shared pool
  /// (util/parallel.h). Columns never interact — no value depends on
  /// another weight vector — so results are BIT-IDENTICAL at every thread
  /// count. `num_threads`: 0 = process default (DefaultNumThreads, i.e. the
  /// GMC_THREADS knob), 1 = serial, n = at most n slices.
  ///
  /// `cancel` (all four batch evaluators): optional request-deadline token
  /// polled periodically inside every column slice. A pass that finishes
  /// with the token unfired is bit-identical to an uncancelled one; once
  /// it fires the return value is meaningless and the caller must discard
  /// it after checking cancel->cancelled() — see nnf_walk.h.
  std::vector<Rational> EvaluateBatch(const WeightMatrix& weights,
                                      int num_threads = 0,
                                      const CancelToken* cancel =
                                          nullptr) const;

  /// Exact dyadic fast path of EvaluateBatch: the same topological pass over
  /// dyadic (mantissa · 2^-exp) values, so the inner loops are straight
  /// integer streaming — no gcd and no per-operation canonicalization
  /// anywhere. Requires weights.AllDyadic(); aborts otherwise. Results are
  /// bit-identical to EvaluateBatch on the same weights.
  ///
  /// Mantissa width is chosen per batch by a static exponent analysis
  /// (nnf_fixed.cc): circuit values are probabilities, so a node's mantissa
  /// is bounded by 2^E with E the node's exponent under the batch's weight
  /// exponents, computed by one fold over the circuit BEFORE evaluating.
  /// When every node exponent fits, the pass runs on fixed-width mantissas
  /// (uint64 up to 63, two-limb UInt128 up to 127 — branch-free SoA loops,
  /// see util/dyadic_fixed.h) with no per-operation overflow checks at all;
  /// otherwise columns that fit individually run fixed-width one at a time
  /// and only the remainder pays for the BigInt Dyadic arena. `stats`, if
  /// non-null, reports how the K vectors were routed.
  std::vector<Rational> EvaluateBatchDyadic(
      const WeightMatrix& weights, int num_threads = 0,
      DyadicBatchStats* stats = nullptr,
      const CancelToken* cancel = nullptr) const;

  /// Double-precision fast path of EvaluateBatch for sweeps that only need
  /// interpolation-grade inputs: same pass over a double arena, no BigInt
  /// allocation anywhere. If `recheck_stride > 0`, every stride-th weight
  /// vector is additionally evaluated exactly and the double result must
  /// match within `recheck_tolerance` relative error (aborts otherwise) —
  /// the knob that spot-verifies the fast path against the exact one at a
  /// K/stride fraction of the exact cost.
  std::vector<double> EvaluateBatchDouble(const WeightMatrix& weights,
                                          int recheck_stride = 0,
                                          double recheck_tolerance = 1e-9,
                                          int num_threads = 0,
                                          const CancelToken* cancel =
                                              nullptr) const;

  /// Certified fast path: the double-speed arena pass with every flop
  /// outward-rounded, returning per-column enclosures [lo, hi] that
  /// PROVABLY contain the exact answer (see nnf_interval.cc for the
  /// argument). Weights must be probabilities in [0, 1]; aborts otherwise.
  /// The certified tier of RoutingMode::kInterval.
  std::vector<ProbInterval> EvaluateBatchInterval(
      const WeightMatrix& weights, int num_threads = 0,
      const CancelToken* cancel = nullptr) const;

  /// Process-wide A/B knob for the fixed-width dyadic kernels (on by
  /// default). Off forces every dyadic batch through the BigInt arena;
  /// results are bit-identical either way — the knob exists for the
  /// cross-check tests and benchmarks, not for correctness.
  static void SetFixedWidthDefaultEnabled(bool enabled);
  static bool FixedWidthDefaultEnabled();

  /// The flat, pointer-free form of this circuit — the layout the walk
  /// core (nnf_walk.h) evaluates and the circuit store persists. One
  /// linear copy; every evaluation entry point above flattens once and
  /// delegates, so a circuit loaded or mmap-ed from the store runs the
  /// byte-for-byte same walk as this object.
  FlatCircuit Flatten() const;

  /// Rebuilds a circuit from a flat view. TRUSTED input: the view must be
  /// structurally valid (children precede parents, indices in range,
  /// nodes 0/1 the constants) — the store validates before calling; in-
  /// process callers should only feed back Flatten() output. The result
  /// is a fully owning, mutable circuit (hash-consing table rebuilt).
  static NnfCircuit FromFlat(const CircuitWalkView& view);

  /// Order-independent structural fingerprint of the DAG under the root
  /// (see WalkFingerprint): invariant under node renumbering, cheap (one
  /// linear pass), and the save→load round-trip check of the store.
  uint64_t Fingerprint() const;

  Stats ComputeStats() const;

  /// Deterministic estimate of this circuit's resident heap footprint in
  /// bytes (nodes, child vectors, and the hash-consing table), counting
  /// element sizes rather than allocator capacities so the same circuit
  /// always reports the same number — the accounting unit of
  /// CircuitCache's max_resident_bytes eviction.
  size_t MemoryBytes() const;

  /// Structural audits (tests): AND children have pairwise disjoint variable
  /// supports (decomposability); no decision branch mentions its decision
  /// variable (so the Shannon split is a genuine deterministic OR).
  bool CheckDecomposable() const;
  bool CheckDeterministic() const;

  /// Drops nodes unreachable from the root (constant folding can orphan
  /// subcircuits, e.g. component nodes built before a FALSE sibling
  /// collapsed their AND) and renumbers the rest, keeping children before
  /// parents. Evaluate cost is proportional to node count, so the compiler
  /// calls this once per compilation to keep the evaluate-many path lean.
  void PruneUnreachable();

  /// Graphviz dump of the subcircuit reachable from the root.
  std::string ToDot() const;

 private:
  // Hash-consing: returns the existing id of a structurally equal node or
  // appends `node`. Buckets are compared exactly, so sharing is sound even
  // under hash collisions.
  int Intern(NnfNode node);
  // Variable support of every node, as sorted id vectors (audits only).
  std::vector<std::vector<int>> Supports() const;
  // Reachability from the root (constants are always kept).
  std::vector<bool> Reachable() const;

  std::vector<NnfNode> nodes_;
  std::unordered_map<uint64_t, std::vector<int>> unique_;
  int root_ = 0;
  int num_vars_ = 0;
};

}  // namespace gmc

#endif  // GMC_COMPILE_NNF_H_
