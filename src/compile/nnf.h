// d-DNNF arithmetic circuits — the knowledge-compilation target.
//
// A grounded lineage compiled once into a smooth-enough circuit can be
// re-evaluated at many tuple-probability settings in one linear bottom-up
// pass each — exactly the workload of the interpolation-based hardness
// reductions, which probe the same gadget lineage at many weight vectors.
//
// Node kinds: constants, variable leaves, decomposable AND (children have
// pairwise disjoint variable supports — the component splits of the
// compiler), and Shannon decision nodes (var ? high : low), which are the
// deterministic ORs: the two branches disagree on the decision variable, so
// their models are disjoint and probabilities add as
//   p(var)·Pr[high] + (1 − p(var))·Pr[low].
// Variables absent from a subcircuit are implicitly marginalized (their
// factor is p + (1 − p) = 1), so no explicit smoothing nodes are needed for
// weighted model counting.
//
// Nodes are hash-consed: structurally identical nodes share one id, and
// children always precede their parents, so ascending id order is a
// topological order — Evaluate and the structural audits are single passes.

#ifndef GMC_COMPILE_NNF_H_
#define GMC_COMPILE_NNF_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/rational.h"

namespace gmc {

enum class NnfKind : uint8_t { kFalse, kTrue, kVar, kAnd, kDecision };

struct NnfNode {
  NnfKind kind = NnfKind::kFalse;
  int var = -1;               // kVar and kDecision
  int high = -1;              // kDecision: branch with var = true
  int low = -1;               // kDecision: branch with var = false
  std::vector<int> children;  // kAnd (always ≥ 2 after folding)
};

class NnfCircuit {
 public:
  struct Stats {
    size_t num_nodes = 0;
    size_t var_nodes = 0;
    size_t and_nodes = 0;
    size_t decision_nodes = 0;
    size_t edges = 0;
    int depth = 0;  // longest root-to-leaf path, 0 for a bare constant
  };

  // Every circuit owns nodes 0 = FALSE and 1 = TRUE.
  NnfCircuit();

  int False() const { return 0; }
  int True() const { return 1; }

  // Node constructors. All are hash-consed and constant-folding:
  //   And: drops TRUE children, collapses to FALSE on any FALSE child,
  //        sorts children canonically, unwraps singletons;
  //   Decision: high == low folds the test away, (TRUE, FALSE) is Var(var).
  int Var(int var);
  int And(std::vector<int> children);
  int Decision(int var, int high, int low);

  void SetRoot(int id);
  int root() const { return root_; }
  const std::vector<NnfNode>& nodes() const { return nodes_; }
  size_t num_nodes() const { return nodes_.size(); }
  // 1 + the largest variable id mentioned (0 for constant circuits).
  int num_vars() const { return num_vars_; }

  // Weighted model count in one bottom-up pass: the probability that the
  // circuit is satisfied when variable v is independently true with
  // probability probabilities[v]. Callable any number of times with
  // different weight vectors; this is the compile-once / evaluate-many
  // payoff.
  Rational Evaluate(const std::vector<Rational>& probabilities) const;

  Stats ComputeStats() const;

  // Structural audits (tests): AND children have pairwise disjoint variable
  // supports (decomposability); no decision branch mentions its decision
  // variable (so the Shannon split is a genuine deterministic OR).
  bool CheckDecomposable() const;
  bool CheckDeterministic() const;

  // Drops nodes unreachable from the root (constant folding can orphan
  // subcircuits, e.g. component nodes built before a FALSE sibling
  // collapsed their AND) and renumbers the rest, keeping children before
  // parents. Evaluate cost is proportional to node count, so the compiler
  // calls this once per compilation to keep the evaluate-many path lean.
  void PruneUnreachable();

  // Graphviz dump of the subcircuit reachable from the root.
  std::string ToDot() const;

 private:
  // Hash-consing: returns the existing id of a structurally equal node or
  // appends `node`. Buckets are compared exactly, so sharing is sound even
  // under hash collisions.
  int Intern(NnfNode node);
  // Variable support of every node, as sorted id vectors (audits only).
  std::vector<std::vector<int>> Supports() const;
  // Reachability from the root (constants are always kept).
  std::vector<bool> Reachable() const;

  std::vector<NnfNode> nodes_;
  std::unordered_map<uint64_t, std::vector<int>> unique_;
  int root_ = 0;
  int num_vars_ = 0;
};

}  // namespace gmc

#endif  // GMC_COMPILE_NNF_H_
