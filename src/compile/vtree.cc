#include "compile/vtree.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "logic/incidence.h"
#include "util/check.h"

namespace gmc {

const char* OrderHeuristicName(OrderHeuristic order) {
  switch (order) {
    case OrderHeuristic::kDefault:
      return "default";
    case OrderHeuristic::kMinFill:
      return "minfill";
    case OrderHeuristic::kBalanced:
      return "balanced";
  }
  return "default";
}

bool ParseOrderHeuristic(const char* name, OrderHeuristic* out) {
  if (name == nullptr) return false;
  for (OrderHeuristic order :
       {OrderHeuristic::kDefault, OrderHeuristic::kMinFill,
        OrderHeuristic::kBalanced}) {
    if (std::strcmp(name, OrderHeuristicName(order)) == 0) {
      *out = order;
      return true;
    }
  }
  return false;
}

namespace internal {
OrderHeuristic ParseOrderSpec(const char* spec) {
  OrderHeuristic order = OrderHeuristic::kDefault;
  ParseOrderHeuristic(spec, &order);
  return order;
}
}  // namespace internal

namespace {
std::atomic<OrderHeuristic>& DefaultOrderSlot() {
  // Initialized from GMC_ORDER exactly once, before the first read; the
  // std::once_flag (not the atomic) carries the happens-before edge.
  static std::atomic<OrderHeuristic> slot{OrderHeuristic::kDefault};
  static std::once_flag init;
  std::call_once(init, [] {
    slot.store(internal::ParseOrderSpec(std::getenv("GMC_ORDER")),
               std::memory_order_relaxed);
  });
  return slot;
}
}  // namespace

OrderHeuristic DefaultOrderHeuristic() {
  return DefaultOrderSlot().load(std::memory_order_relaxed);
}

void SetDefaultOrderHeuristic(OrderHeuristic order) {
  DefaultOrderSlot().store(order, std::memory_order_relaxed);
}

int Vtree::AddLeaf(int var) {
  GMC_CHECK(var >= 0);
  Node node;
  node.var = var;
  nodes_.push_back(node);
  ++num_leaves_;
  return static_cast<int>(nodes_.size()) - 1;
}

int Vtree::AddInternal(int left, int right) {
  GMC_CHECK(left >= 0 && left < static_cast<int>(nodes_.size()));
  GMC_CHECK(right >= 0 && right < static_cast<int>(nodes_.size()));
  Node node;
  node.left = left;
  node.right = right;
  nodes_.push_back(node);
  return static_cast<int>(nodes_.size()) - 1;
}

Vtree Vtree::FromLinearOrder(int num_vars, const std::vector<int>& order) {
  Vtree vtree;
  vtree.rank_.assign(static_cast<size_t>(num_vars), -1);
  if (order.empty()) return vtree;
  // Build bottom-up so children precede parents: the LAST variable of the
  // order is the deepest leaf, and each earlier variable hangs off the
  // left of a new internal node above it.
  int subtree = -1;
  for (size_t i = order.size(); i-- > 0;) {
    const int var = order[i];
    GMC_CHECK(var >= 0 && var < num_vars);
    GMC_CHECK(vtree.rank_[var] == -1);  // distinct variables
    vtree.rank_[var] = static_cast<int>(i);
    const int leaf = vtree.AddLeaf(var);
    subtree = (subtree == -1) ? leaf : vtree.AddInternal(leaf, subtree);
  }
  vtree.root_ = subtree;
  return vtree;
}

int Vtree::BuildBalanced(const std::vector<std::vector<int>>& adjacency,
                         const std::vector<int>& var_of,
                         std::vector<int> vars, int* next_rank) {
  GMC_CHECK(!vars.empty());
  if (vars.size() == 1) {
    rank_[var_of[vars[0]]] = (*next_rank)++;
    return AddLeaf(var_of[vars[0]]);
  }
  // Split the (BFS-ordered) list at the midpoint. BFS keeps each half
  // geometrically contiguous in the primal graph, so the boundary — the
  // vertex separator we decide first — stays small on path- and
  // grid-shaped gadget lineages.
  const size_t mid = vars.size() / 2;
  std::vector<char> in_b(adjacency.size(), 0);
  for (size_t i = mid; i < vars.size(); ++i) in_b[vars[i]] = 1;
  std::vector<char> in_a(adjacency.size(), 0);
  for (size_t i = 0; i < mid; ++i) in_a[vars[i]] = 1;

  std::vector<int> boundary_a, boundary_b;
  for (size_t i = 0; i < mid; ++i) {
    for (int u : adjacency[vars[i]]) {
      if (in_b[u]) {
        boundary_a.push_back(vars[i]);
        break;
      }
    }
  }
  for (size_t i = mid; i < vars.size(); ++i) {
    for (int u : adjacency[vars[i]]) {
      if (in_a[u]) {
        boundary_b.push_back(vars[i]);
        break;
      }
    }
  }
  // The smaller boundary is the separator (ties toward the left half).
  // Deciding it first disconnects the remainder of its side from the
  // other half, so the compiler's component split fires right after.
  const bool cut_from_a = boundary_a.size() <= boundary_b.size();
  std::vector<int>& cut = cut_from_a ? boundary_a : boundary_b;
  // Rank separators in ascending ORIGINAL variable id, so determinism
  // does not depend on how ids were compacted.
  std::sort(cut.begin(), cut.end(),
            [&var_of](int a, int b) { return var_of[a] < var_of[b]; });
  std::vector<char> in_cut(adjacency.size(), 0);
  for (int v : cut) {
    in_cut[v] = 1;
    rank_[var_of[v]] = (*next_rank)++;
  }
  std::vector<int> left_vars, right_vars;
  for (size_t i = 0; i < mid; ++i) {
    if (!in_cut[vars[i]]) left_vars.push_back(vars[i]);
  }
  for (size_t i = mid; i < vars.size(); ++i) {
    if (!in_cut[vars[i]]) right_vars.push_back(vars[i]);
  }

  int rest;
  if (left_vars.empty()) {
    rest = BuildBalanced(adjacency, var_of, std::move(right_vars), next_rank);
  } else if (right_vars.empty()) {
    rest = BuildBalanced(adjacency, var_of, std::move(left_vars), next_rank);
  } else {
    const int left =
        BuildBalanced(adjacency, var_of, std::move(left_vars), next_rank);
    const int right =
        BuildBalanced(adjacency, var_of, std::move(right_vars), next_rank);
    rest = AddInternal(left, right);
  }
  // The separator variables chain right-linearly above the bisection, in
  // rank order top-down (build bottom-up, so iterate in reverse).
  for (size_t i = cut.size(); i-- > 0;) {
    rest = AddInternal(AddLeaf(var_of[cut[i]]), rest);
  }
  return rest;
}

Vtree Vtree::Build(const Cnf& cnf, OrderHeuristic heuristic) {
  GMC_CHECK(heuristic != OrderHeuristic::kDefault);
  PrimalGraph graph = PrimalGraph::FromClauses(cnf.num_vars, cnf.clauses);
  if (heuristic == OrderHeuristic::kMinFill) {
    // Reverse elimination order: the last variable eliminated sits at the
    // top of the induced tree decomposition, so it is decided FIRST.
    std::vector<int> order = MinFillOrder(graph);
    std::reverse(order.begin(), order.end());
    return FromLinearOrder(cnf.num_vars, order);
  }
  Vtree vtree;
  vtree.rank_.assign(static_cast<size_t>(cnf.num_vars), -1);
  // Compact to dense ids (BFS position = dense id) so the recursion's
  // scratch arrays scale with the occurring variables, not with however
  // many ids the lineage interned.
  const std::vector<int> var_of = BfsOrder(graph);
  if (var_of.empty()) return vtree;
  std::vector<int> dense_of(graph.num_vars, -1);
  for (size_t i = 0; i < var_of.size(); ++i) {
    dense_of[var_of[i]] = static_cast<int>(i);
  }
  std::vector<std::vector<int>> adjacency(var_of.size());
  std::vector<int> vars(var_of.size());
  for (size_t i = 0; i < var_of.size(); ++i) {
    vars[i] = static_cast<int>(i);
    adjacency[i].reserve(graph.adjacency[var_of[i]].size());
    for (int u : graph.adjacency[var_of[i]]) {
      adjacency[i].push_back(dense_of[u]);
    }
  }
  int next_rank = 0;
  vtree.root_ =
      vtree.BuildBalanced(adjacency, var_of, std::move(vars), &next_rank);
  return vtree;
}

bool Vtree::CheckWellFormed() const {
  if (root_ == -1) return nodes_.empty() && num_leaves_ == 0;
  if (root_ != static_cast<int>(nodes_.size()) - 1) return false;
  int leaves_seen = 0;
  std::vector<char> has_leaf(rank_.size(), 0);
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    if (node.IsLeaf()) {
      if (node.left != -1 || node.right != -1) return false;
      if (node.var >= static_cast<int>(rank_.size())) return false;
      if (has_leaf[node.var]) return false;  // one leaf per variable
      has_leaf[node.var] = 1;
      if (rank_[node.var] < 0 || rank_[node.var] >= num_leaves_) return false;
      ++leaves_seen;
    } else {
      // Children precede parents.
      if (node.left < 0 || node.left >= static_cast<int>(i)) return false;
      if (node.right < 0 || node.right >= static_cast<int>(i)) return false;
    }
  }
  if (leaves_seen != num_leaves_) return false;
  // Ranks are a permutation of 0..num_leaves-1 over the leaf variables.
  std::vector<char> rank_used(num_leaves_, 0);
  for (size_t v = 0; v < rank_.size(); ++v) {
    if (has_leaf[v]) {
      if (rank_used[rank_[v]]) return false;
      rank_used[rank_[v]] = 1;
    } else if (rank_[v] != -1) {
      return false;
    }
  }
  return true;
}

}  // namespace gmc
