// Flat, pointer-free circuit walks — the shared evaluation core.
//
// Every evaluation entry point of NnfCircuit (single, batched Rational,
// batched dyadic, batched double) is one bottom-up topological pass over
// the node arena. This header factors those passes out of NnfCircuit into
// free functions over CircuitWalkView, a non-owning view of a circuit in
// FLAT form: fixed-size 16-byte node records plus one contiguous child-id
// pool, no per-node heap state anywhere.
//
// Two producers instantiate the view:
//   * NnfCircuit::Flatten() — one linear copy of the hash-consed nodes,
//     built per evaluation call (O(nodes) against the O(nodes · K)
//     arithmetic it precedes);
//   * store/MappedCircuitView — the SAME record layout read directly from
//     an mmap-ed circuit file, so a persisted circuit is evaluable with
//     zero deserialization and N replicas share one read-only page-cache
//     copy.
// Both run the identical code below, which is what makes save→load→
// evaluate bit-identical to the in-memory result by construction.
//
// Preconditions: the view must be structurally valid — children precede
// parents, indices in range, nodes 0/1 the FALSE/TRUE constants. Flatten
// guarantees this by construction; the store validates before handing out
// views (store/circuit_io.h). The walks do not re-validate.

#ifndef GMC_COMPILE_NNF_WALK_H_
#define GMC_COMPILE_NNF_WALK_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "util/cancel.h"
#include "util/rational.h"

namespace gmc {

class WeightMatrix;
struct DyadicBatchStats;

/// One flat circuit node: a fixed 16-byte record of four 32-bit words.
/// This is both the in-memory walk layout and the on-disk node record of
/// the circuit store (little-endian; see store/circuit_format.h), so a
/// mapped file IS a node arena.
struct FlatNode {
  uint32_t kind = 0;  ///< NnfKind, widened to a fixed-size word
  int32_t var = -1;   ///< kVar and kDecision
  int32_t a = -1;     ///< kDecision: high branch. kAnd: first pool index.
  int32_t b = -1;     ///< kDecision: low branch. kAnd: child count (>= 2).
};
static_assert(sizeof(FlatNode) == 16, "FlatNode is the on-disk record");
static_assert(std::is_trivially_copyable_v<FlatNode>,
              "FlatNode must be memcpy-able");

/// Non-owning view of a flat circuit. Plain pointers + extents; copying
/// the view never copies the circuit. Safe for concurrent walks (all
/// walks are pure readers).
struct CircuitWalkView {
  const FlatNode* nodes = nullptr;
  size_t num_nodes = 0;
  const int32_t* children = nullptr;  ///< kAnd child-id pool
  size_t num_children = 0;
  int32_t root = 0;
  int32_t num_vars = 0;
};

/// Owning flat form (what NnfCircuit::Flatten returns). view() is valid
/// for the lifetime of the object.
struct FlatCircuit {
  std::vector<FlatNode> nodes;
  std::vector<int32_t> children;
  int32_t root = 0;
  int32_t num_vars = 0;

  CircuitWalkView view() const {
    return CircuitWalkView{nodes.data(),    nodes.size(), children.data(),
                           children.size(), root,         num_vars};
  }
};

/// A certified enclosure of one probability: lo <= exact <= hi, both ends
/// finite doubles in [0, 1]. Produced by the directed-rounding interval
/// walk; the width is the walk's honest error report (typically a few ulp
/// per circuit level).
struct ProbInterval {
  double lo = 0.0;
  double hi = 0.0;

  double width() const { return hi - lo; }
  double midpoint() const { return lo + (hi - lo) / 2; }
  bool Contains(double value) const { return lo <= value && value <= hi; }
};

/// The walks. Semantics, exactness, thread behaviour, and parameter
/// meanings are those of the NnfCircuit methods of the same name (nnf.h),
/// which are now thin Flatten-then-delegate wrappers over these.
///
/// `cancel` (optional, every batch walk): the request-deadline token,
/// polled every 64 arena nodes inside each column-parallel slice. A pass
/// that completes with the token unfired is bit-identical to one run with
/// cancel == nullptr; once the token fires, workers abandon their slices
/// and the returned values are MEANINGLESS (well-formed, but partial) —
/// the caller owns the check: test cancel->cancelled() after the pass and
/// discard the result on true. No walk ever returns wrong bits silently;
/// the contract is "finished and exact, or flagged cancelled".
Rational WalkEvaluate(const CircuitWalkView& view,
                      const std::vector<Rational>& probabilities);
std::vector<Rational> WalkEvaluateBatch(const CircuitWalkView& view,
                                        const WeightMatrix& weights,
                                        int num_threads,
                                        const CancelToken* cancel = nullptr);
std::vector<Rational> WalkEvaluateBatchDyadic(
    const CircuitWalkView& view, const WeightMatrix& weights, int num_threads,
    DyadicBatchStats* stats, const CancelToken* cancel = nullptr);
std::vector<double> WalkEvaluateBatchDouble(
    const CircuitWalkView& view, const WeightMatrix& weights,
    int recheck_stride, double recheck_tolerance, int num_threads,
    const CancelToken* cancel = nullptr);
/// Directed-rounding interval pass (nnf_interval.cc): the double arena walk
/// with every flop outward-rounded, so each returned interval PROVABLY
/// contains the exact Rational answer — double speed with a guarantee
/// instead of a spot re-check. Weights must be probabilities in [0, 1]
/// (aborts otherwise); column-parallel and deterministic at every thread
/// count like the other batch walks.
std::vector<ProbInterval> WalkEvaluateBatchInterval(
    const CircuitWalkView& view, const WeightMatrix& weights, int num_threads,
    const CancelToken* cancel = nullptr);

/// Order-independent structural fingerprint: a 64-bit hash of the circuit
/// REACHABLE from the root that is invariant under node renumbering (AND
/// children combine commutatively; a decision's branches stay ordered —
/// high/low are semantically distinct). Equal circuits-as-DAGs hash equal
/// regardless of arena order; save→load round-trips are verified against
/// it (cheap: one linear pass, no sorting).
uint64_t WalkFingerprint(const CircuitWalkView& view);

namespace walk_internal {
/// The BigInt Dyadic arena pass — exact at any exponent, the fallback of
/// the fixed-width routing in nnf_fixed.cc. Exposed here only so the two
/// walk translation units can share it.
std::vector<Rational> WalkEvaluateBatchDyadicBig(
    const CircuitWalkView& view, const WeightMatrix& weights, int num_threads,
    const CancelToken* cancel = nullptr);
/// decides[v] iff some decision node tests v (those variables need
/// complements 1 − p).
std::vector<bool> WalkDecisionVars(const CircuitWalkView& view);
}  // namespace walk_internal

}  // namespace gmc

#endif  // GMC_COMPILE_NNF_WALK_H_
