#include "compile/gmc_options.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "compile/circuit_cache.h"
#include "store/circuit_store.h"
#include "util/parallel.h"

namespace gmc {

namespace {

// Env parsers for FromEnv: unset or malformed values leave *out untouched,
// so the struct defaults always survive a broken environment.
void EnvU64(const char* name, uint64_t* out) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end != nullptr && *end == '\0') *out = parsed;
}

void EnvBool(const char* name, bool* out) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return;
  if (std::strcmp(value, "0") == 0 || std::strcmp(value, "false") == 0 ||
      std::strcmp(value, "off") == 0 || std::strcmp(value, "no") == 0) {
    *out = false;
  } else if (std::strcmp(value, "1") == 0 ||
             std::strcmp(value, "true") == 0 ||
             std::strcmp(value, "on") == 0 || std::strcmp(value, "yes") == 0) {
    *out = true;
  }
}

void EnvUnitDouble(const char* name, double* out) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (end != nullptr && *end == '\0' && parsed > 0.0 && parsed < 1.0) {
    *out = parsed;
  }
}

}  // namespace

bool CompileBudget::AllowsMoreThan(const CompileBudget& other) const {
  // "More" per axis: unlimited (0) beats any finite cap; otherwise larger.
  auto more = [](uint64_t mine, uint64_t theirs) {
    if (mine == theirs) return false;
    if (mine == 0) return true;   // I am unlimited, they are not
    if (theirs == 0) return false;
    return mine > theirs;
  };
  return more(max_nodes, other.max_nodes) ||
         more(max_calls, other.max_calls) ||
         more(max_millis, other.max_millis);
}

CompileBudget DefaultCompileBudget() {
  // Deterministic (no wall-clock cap): the same instance routes to the
  // same tier on every machine. The gadget corpus compiles in a few
  // thousand nodes; a quarter million is an order of magnitude of
  // headroom before the router declares an instance uncompilable.
  CompileBudget budget;
  budget.max_nodes = 1 << 18;   // 262144 circuit nodes
  budget.max_calls = 1 << 21;   // 2M CompileNode invocations
  budget.max_millis = 0;
  return budget;
}

const char* RoutingModeName(RoutingMode mode) {
  switch (mode) {
    case RoutingMode::kExact:
      return "exact";
    case RoutingMode::kAuto:
      return "auto";
    case RoutingMode::kInterval:
      return "interval";
    case RoutingMode::kSample:
      return "sample";
  }
  return "exact";
}

bool ParseRoutingMode(const char* name, RoutingMode* out) {
  if (name == nullptr) return false;
  for (RoutingMode mode : {RoutingMode::kExact, RoutingMode::kAuto,
                           RoutingMode::kInterval, RoutingMode::kSample}) {
    if (std::strcmp(name, RoutingModeName(mode)) == 0) {
      *out = mode;
      return true;
    }
  }
  return false;
}

GmcOptions GmcOptions::FromEnv() {
  GmcOptions options;
  options.order = DefaultOrderHeuristic();              // GMC_ORDER
  options.store_directory = store::DefaultStorePath();  // GMC_STORE
  // GMC_THREADS: num_threads stays 0 — "defer to the process default" is
  // the existing contract, and util/parallel resolves that default from
  // GMC_THREADS (or a SetDefaultNumThreads override) at use time.
  options.num_threads = 0;
  options.dyadic_enabled = CircuitCache::DyadicDefaultEnabled();
  ParseRoutingMode(std::getenv("GMC_ROUTING"), &options.routing_mode);
  EnvU64("GMC_BUDGET_NODES", &options.compile_budget.max_nodes);
  EnvU64("GMC_BUDGET_CALLS", &options.compile_budget.max_calls);
  EnvU64("GMC_BUDGET_MS", &options.compile_budget.max_millis);
  EnvUnitDouble("GMC_EPSILON", &options.epsilon);
  EnvUnitDouble("GMC_DELTA", &options.delta);
  EnvU64("GMC_MAX_SAMPLES", &options.max_samples);
  EnvU64("GMC_SEED", &options.sample_seed);
  uint64_t sample_threads = 0;
  EnvU64("GMC_SAMPLE_THREADS", &sample_threads);
  if (sample_threads > 0) {
    options.sample_threads = static_cast<int>(std::min<uint64_t>(
        sample_threads, static_cast<uint64_t>(internal::kMaxThreads)));
  }
  EnvU64("GMC_PLAN_ENTRIES", &options.sample_plan_entries);
  EnvU64("GMC_DEADLINE_MS", &options.deadline_ms);
  EnvU64("GMC_CACHE_BYTES", &options.max_resident_bytes);
  EnvBool("GMC_STORE_SELF_HEAL", &options.store_self_heal);
  return options;
}

}  // namespace gmc
