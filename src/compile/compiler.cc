#include "compile/compiler.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/check.h"

namespace gmc {

NnfCircuit Compiler::Compile(const Cnf& cnf) {
  NnfCircuit circuit;
  circuit_ = &circuit;
  memo_.clear();
  circuit.SetRoot(CompileNode(cnf));
  circuit_ = nullptr;
  // Constant folding can orphan nodes (a FALSE component collapses its
  // AND); drop them so every Evaluate pass touches live nodes only.
  circuit.PruneUnreachable();
  stats_.minimize_nodes_before += circuit.num_nodes();
  if (minimize_) circuit = minimizer_.Minimize(circuit);
  stats_.minimize_nodes_after += circuit.num_nodes();
  return circuit;
}

NnfCircuit Compiler::Compile(const Lineage& lineage) {
  if (lineage.is_false) {
    NnfCircuit circuit;
    circuit.SetRoot(circuit.False());
    return circuit;
  }
  return Compile(lineage.cnf);
}

int Compiler::CompileNode(const Cnf& cnf) {
  ++stats_.compile_calls;
  if (cnf.clauses.empty()) return circuit_->True();
  for (const auto& clause : cnf.clauses) {
    if (clause.empty()) return circuit_->False();
  }
  if (auto it = memo_.find(cnf); it != memo_.end()) {
    ++stats_.cache_hits;
    return it->second;
  }

  // Connected-component decomposition: disjoint variable sets compile to a
  // decomposable AND. The split and the branch-variable choice below are
  // the same Cnf helpers WmcEngine uses, so the circuit is exactly the
  // memoized trace of one WmcEngine run.
  std::vector<Cnf> parts = cnf.SplitComponents();
  int result;
  if (parts.size() > 1) {
    ++stats_.component_splits;
    std::vector<int> children;
    children.reserve(parts.size());
    for (const Cnf& part : parts) {
      children.push_back(CompileNode(part));
      if (children.back() == circuit_->False()) break;
    }
    result = circuit_->And(std::move(children));
  } else {
    // Shannon expansion on the most frequent variable — a deterministic
    // decision node.
    ++stats_.shannon_branches;
    const int best_var = cnf.MostOccurringVariable();
    GMC_CHECK(best_var >= 0);
    const int high = CompileNode(cnf.Condition(best_var, true));
    const int low = CompileNode(cnf.Condition(best_var, false));
    result = circuit_->Decision(best_var, high, low);
  }
  memo_.emplace(cnf, result);
  return result;
}

}  // namespace gmc
