#include "compile/compiler.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/check.h"

namespace gmc {

NnfCircuit Compiler::Compile(const Cnf& cnf, const CancelToken* cancel) {
  budget_ = nullptr;
  budget_exhausted_ = false;  // never inherit a prior TryCompile's failure
  budget_calls_ = 0;
  budget_token_.reset();
  cancel_ = cancel;
  cancelled_ = false;
  NnfCircuit circuit = CompileImpl(cnf);
  cancel_ = nullptr;
  return circuit;
}

std::optional<NnfCircuit> Compiler::TryCompile(const Cnf& cnf,
                                               const CompileBudget& budget,
                                               const CancelToken* cancel) {
  if (budget.Unlimited()) {
    NnfCircuit circuit = Compile(cnf, cancel);  // resets budget state too
    if (cancelled_) return std::nullopt;
    return circuit;
  }
  budget_ = &budget;
  budget_exhausted_ = false;
  budget_calls_ = 0;
  budget_token_.reset();
  if (budget.max_millis > 0) budget_token_.emplace(budget.max_millis);
  cancel_ = cancel;
  cancelled_ = false;
  NnfCircuit circuit = CompileImpl(cnf);
  budget_ = nullptr;
  cancel_ = nullptr;
  if (cancelled_) return std::nullopt;
  if (budget_exhausted_) {
    ++stats_.budget_exhausted;
    return std::nullopt;
  }
  return circuit;
}

NnfCircuit Compiler::CompileImpl(const Cnf& cnf) {
  rank_.clear();
  if (order_ != OrderHeuristic::kDefault) {
    // One vtree per top-level compilation, over the full CNF: the ranks
    // stay fixed for every sub-formula, so the memo (cleared below) is
    // keyed consistently under the order in force.
    Vtree vtree = Vtree::Build(cnf, order_);
    rank_ = vtree.decision_rank();
    ++stats_.vtree_builds;
  }
  NnfCircuit circuit;
  circuit_ = &circuit;
  memo_.clear();
  circuit.SetRoot(CompileNode(cnf));
  circuit_ = nullptr;
  // A budget-exhausted or cancelled run unwinds with a placeholder root;
  // the circuit is about to be discarded, so skip the post-passes.
  if (cancelled_) {
    ++stats_.cancelled;
    return circuit;
  }
  if (budget_exhausted_) return circuit;
  // Constant folding can orphan nodes (a FALSE component collapses its
  // AND); drop them so every Evaluate pass touches live nodes only.
  circuit.PruneUnreachable();
  stats_.minimize_nodes_before += circuit.num_nodes();
  if (minimize_) circuit = minimizer_.Minimize(circuit);
  stats_.minimize_nodes_after += circuit.num_nodes();
  return circuit;
}

NnfCircuit Compiler::Compile(const Lineage& lineage) {
  if (lineage.is_false) {
    NnfCircuit circuit;
    circuit.SetRoot(circuit.False());
    return circuit;
  }
  return Compile(lineage.cnf);
}

int Compiler::BranchVariable(const Cnf& cnf) const {
  if (rank_.empty()) return cnf.MostOccurringVariable();
  // Vtree dissection: the occurring variable whose dissection point is
  // highest in the tree — i.e. minimum decision rank. Every variable of a
  // sub-CNF occurred in the top-level CNF (conditioning only removes
  // literals), so its rank is always present.
  int best_var = -1;
  for (const auto& clause : cnf.clauses) {
    for (int v : clause) {
      GMC_CHECK(v >= 0 && v < static_cast<int>(rank_.size()));
      GMC_CHECK(rank_[v] >= 0);
      if (best_var == -1 || rank_[v] < rank_[best_var]) best_var = v;
    }
  }
  return best_var;
}

bool Compiler::BudgetSpent() {
  if (budget_exhausted_ || cancelled_) return true;
  ++budget_calls_;
  // The external deadline outranks the budget and applies to unbudgeted
  // compiles too; its clock read shares the budget's every-256 stride.
  if (cancel_ != nullptr &&
      ((budget_calls_ & 255) == 0 ? cancel_->Poll() : cancel_->cancelled())) {
    cancelled_ = true;
    return true;
  }
  if (budget_ == nullptr) return false;
  if ((budget_->max_calls > 0 && budget_calls_ > budget_->max_calls) ||
      (budget_->max_nodes > 0 &&
       circuit_->num_nodes() > budget_->max_nodes)) {
    budget_exhausted_ = true;
  } else if (budget_token_.has_value() && (budget_calls_ & 255) == 0 &&
             budget_token_->Poll()) {
    budget_exhausted_ = true;
  }
  return budget_exhausted_;
}

int Compiler::CompileNode(const Cnf& cnf) {
  ++stats_.compile_calls;
  // Budget gate (TryCompile only): once spent, unwind immediately with a
  // placeholder — the caller discards the whole circuit.
  if (BudgetSpent()) return circuit_->True();
  if (cnf.clauses.empty()) return circuit_->True();
  for (const auto& clause : cnf.clauses) {
    if (clause.empty()) return circuit_->False();
  }
  if (auto it = memo_.find(cnf); it != memo_.end()) {
    ++stats_.cache_hits;
    return it->second;
  }

  // Connected-component decomposition: disjoint variable sets compile to a
  // decomposable AND. The split is the same Cnf helper WmcEngine uses;
  // the branch-variable choice below follows the active order heuristic.
  std::vector<Cnf> parts = cnf.SplitComponents();
  int result;
  if (parts.size() > 1) {
    ++stats_.component_splits;
    std::vector<int> children;
    children.reserve(parts.size());
    for (const Cnf& part : parts) {
      children.push_back(CompileNode(part));
      if (children.back() == circuit_->False()) break;
    }
    result = circuit_->And(std::move(children));
  } else {
    // Shannon expansion — a deterministic decision node.
    ++stats_.shannon_branches;
    const int best_var = BranchVariable(cnf);
    GMC_CHECK(best_var >= 0);
    const int high = CompileNode(cnf.Condition(best_var, true));
    const int low = CompileNode(cnf.Condition(best_var, false));
    result = circuit_->Decision(best_var, high, low);
  }
  // Never memoize under an exhausted budget or a fired deadline: the
  // placeholder results the unwind produces are not the CNF's circuit.
  if (!budget_exhausted_ && !cancelled_) memo_.emplace(cnf, result);
  return result;
}

}  // namespace gmc
