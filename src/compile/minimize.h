// Sweep-and-merge d-DNNF circuit minimization.
//
// The compiler emits nodes in recursion order, so structurally redundant
// shapes survive: ANDs nested inside ANDs (component splits at different
// recursion depths), decision nodes whose branches became equal only after a
// descendant was rewritten, and constant-foldable nodes whose children
// collapsed after the fold that would have caught them. One bottom-up sweep
// rebuilds the reachable subcircuit through the hash-consing constructors —
// children are rewritten first, so every fold and merge cascades upward in a
// single pass:
//
//   - constant folding: TRUE/FALSE children re-fold after child rewrites;
//   - hash-cons re-canonicalization: nodes that became structurally
//     identical under the rewritten children share one id, which in
//     particular merges decision nodes with identical (var, high, low)
//     branch pairs;
//   - AND flattening: a decomposable AND child of a decomposable AND is
//     spliced into its parent (associativity; supports stay disjoint);
//   - common-factor extraction: v ? X∧r1 : X∧r2 becomes X ∧ (v ? r1 : r2),
//     hoisting the conjuncts shared by both branches above the decision —
//     the Shannon expansion re-derives the components untouched by the
//     decision variable in both branches, and the compiler's per-CNF memo
//     cannot see that they coincide; the smaller residual decisions then
//     merge with structural twins via hash-consing (the cascade that makes
//     this a sweep-AND-merge);
//   - dead-node sweep: only nodes reachable from the root are rebuilt.
//
// Every rewrite preserves the computed function, decomposability, and
// determinism, and the output never has more nodes than the input (each
// reachable input node yields at most one output node). Traversal cost is
// linear in node count, so the node savings pay off directly on the
// double-precision batch path; on the exact path BigInt arithmetic
// dominates and the rewrites mostly reshape (rather than reduce) the
// Rational op count, so expect memory wins more than time wins there. The
// compiler runs this pass once per compilation.

#ifndef GMC_COMPILE_MINIMIZE_H_
#define GMC_COMPILE_MINIMIZE_H_

#include <cstdint>

#include "compile/nnf.h"

namespace gmc {

class Minimizer {
 public:
  struct Stats {
    uint64_t nodes_before = 0;  // cumulative across Minimize calls
    uint64_t nodes_after = 0;
    uint64_t merged_nodes = 0;        // hash-cons hits on rebuilt nodes
    uint64_t folded_nodes = 0;        // constructor folds (constants, x?a:a)
    uint64_t flattened_ands = 0;      // nested ANDs spliced into parents
    uint64_t factored_decisions = 0;  // v?X∧r1:X∧r2 → X∧(v?r1:r2) rewrites
  };

  Minimizer() = default;

  // An equivalent circuit with at most as many nodes, in topological order.
  NnfCircuit Minimize(const NnfCircuit& circuit);

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

 private:
  // One bottom-up sweep; `factor` enables the common-factor extraction on
  // decision branches (disabled on the no-growth fallback pass).
  NnfCircuit Rebuild(const NnfCircuit& circuit, bool factor, Stats* delta);

  Stats stats_;
};

}  // namespace gmc

#endif  // GMC_COMPILE_MINIMIZE_H_
