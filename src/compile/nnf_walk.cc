// The Rational / BigInt-dyadic / double walk bodies over CircuitWalkView.
// Ported verbatim (same operations, same order) from the former NnfCircuit
// member templates, so results are bit-identical to every pre-refactor
// release; the fixed-width dyadic kernels and the dyadic routing live in
// nnf_fixed.cc.

#include "compile/nnf_walk.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "compile/nnf.h"
#include "util/check.h"
#include "util/dyadic.h"
#include "util/parallel.h"

namespace gmc {

namespace {

// The arena walk's zero test, uniform across the three value types.
bool IsZeroValue(const Rational& v) { return v.IsZero(); }
bool IsZeroValue(const Dyadic& v) { return v.IsZero(); }
bool IsZeroValue(double v) { return v == 0.0; }

// Columns per parallel slice, at minimum: below this, slice setup (one
// arena allocation per slice) costs more than the columns it covers.
constexpr int64_t kMinColumnsPerSlice = 4;
// Variables per chunk for the parallel conversion/complement preambles.
constexpr int64_t kMinVarsPerChunk = 8;
// Arena nodes between deadline polls (see util/cancel.h): the poll is one
// relaxed load on the common path, so the stride exists only to amortize
// the clock read of the worker that happens to observe expiry first.
constexpr size_t kCancelNodeStride = 64;

// One contiguous row-major arena per slice: within a slice of width
// W = k1 - k0, the W values of node `id` live at value[id * W .. id*W + W).
// A fired cancel token abandons the slice mid-pass: out_roots keeps its
// previous (meaningless) contents and the CALLER discards the batch — see
// the contract in nnf_walk.h.
template <typename Value, typename ColumnFn>
void EvaluateBatchSlice(const CircuitWalkView& view, int k0, int k1,
                        int num_k, ColumnFn column, const Value* complement,
                        const Value& one, Value* out_roots,
                        const CancelToken* cancel) {
  const int num_w = k1 - k0;
  std::vector<Value> value(view.num_nodes * num_w);
  for (size_t id = 0; id < view.num_nodes; ++id) {
    if (cancel != nullptr && (id % kCancelNodeStride) == 0 && cancel->Poll()) {
      return;
    }
    const FlatNode& node = view.nodes[id];
    Value* out = value.data() + id * num_w;
    switch (static_cast<NnfKind>(node.kind)) {
      case NnfKind::kFalse:
        break;  // arena default-constructs to zero
      case NnfKind::kTrue:
        for (int k = 0; k < num_w; ++k) out[k] = one;
        break;
      case NnfKind::kVar: {
        const Value* p = column(node.var) + k0;
        for (int k = 0; k < num_w; ++k) out[k] = p[k];
        break;
      }
      case NnfKind::kAnd: {
        const int32_t* child_ids = view.children + node.a;
        const Value* first =
            value.data() + static_cast<size_t>(child_ids[0]) * num_w;
        for (int k = 0; k < num_w; ++k) out[k] = first[k];
        for (int32_t c = 1; c < node.b; ++c) {
          const Value* child =
              value.data() + static_cast<size_t>(child_ids[c]) * num_w;
          for (int k = 0; k < num_w; ++k) {
            if (IsZeroValue(out[k])) continue;
            out[k] *= child[k];
          }
        }
        break;
      }
      case NnfKind::kDecision: {
        const Value* p = column(node.var) + k0;
        const Value* q =
            complement + static_cast<size_t>(node.var) * num_k + k0;
        const Value* high = value.data() + static_cast<size_t>(node.a) * num_w;
        const Value* low = value.data() + static_cast<size_t>(node.b) * num_w;
        for (int k = 0; k < num_w; ++k) {
          // p·high + q·low through the in-place operators: no allocation
          // beyond the two products for Value types with heap state.
          Value t = p[k];
          t *= high[k];
          Value u = q[k];
          u *= low[k];
          t += u;
          out[k] = std::move(t);
        }
        break;
      }
    }
  }
  Value* root = value.data() + static_cast<size_t>(view.root) * num_w;
  for (int k = 0; k < num_w; ++k) out_roots[k0 + k] = std::move(root[k]);
}

// Parallel driver: splits the K columns into contiguous slices (at most
// `num_threads`; 0 = process default) and runs EvaluateBatchSlice per
// slice. Returns the K root values in input order.
template <typename Value, typename ColumnFn>
std::vector<Value> EvaluateBatchArena(const CircuitWalkView& view, int num_k,
                                      int num_threads, ColumnFn column,
                                      const Value* complement,
                                      const Value& one,
                                      const CancelToken* cancel = nullptr) {
  std::vector<Value> result(num_k);
  ParallelFor(num_k, num_threads, kMinColumnsPerSlice,
              [&](int64_t k0, int64_t k1, int /*chunk*/) {
                EvaluateBatchSlice<Value>(view, static_cast<int>(k0),
                                          static_cast<int>(k1), num_k, column,
                                          complement, one, result.data(),
                                          cancel);
              });
  return result;
}

}  // namespace

namespace walk_internal {

std::vector<bool> WalkDecisionVars(const CircuitWalkView& view) {
  std::vector<bool> decides(static_cast<size_t>(view.num_vars), false);
  for (size_t id = 0; id < view.num_nodes; ++id) {
    const FlatNode& node = view.nodes[id];
    if (static_cast<NnfKind>(node.kind) == NnfKind::kDecision) {
      decides[node.var] = true;
    }
  }
  return decides;
}

std::vector<Rational> WalkEvaluateBatchDyadicBig(const CircuitWalkView& view,
                                                 const WeightMatrix& weights,
                                                 int num_threads,
                                                 const CancelToken* cancel) {
  GMC_CHECK(weights.num_vars() >= view.num_vars);
  const int num_k = weights.num_vectors();
  const int num_vars = view.num_vars;

  // Weight columns converted once, then raised to a per-variable common
  // exponent (batch-level normalization): every add over a column aligns
  // for free and the decision complements share one 2^E. Conversion and
  // complements chunk over variables — disjoint column slices per chunk.
  std::vector<Dyadic> probability(static_cast<size_t>(num_vars) * num_k);
  const std::vector<bool> decides = WalkDecisionVars(view);
  std::vector<Dyadic> complement(static_cast<size_t>(num_vars) * num_k);
  ParallelFor(
      num_vars, num_threads, kMinVarsPerChunk,
      [&](int64_t v0, int64_t v1, int /*chunk*/) {
        for (int64_t v = v0; v < v1; ++v) {
          const Rational* p = weights.Column(static_cast<int>(v));
          Dyadic* out = probability.data() + static_cast<size_t>(v) * num_k;
          for (int k = 0; k < num_k; ++k) {
            std::optional<Dyadic> value = Dyadic::FromRational(p[k]);
            GMC_CHECK_MSG(value.has_value(),
                          "EvaluateBatchDyadic needs all-dyadic weights "
                          "(WeightMatrix::AllDyadic)");
            out[k] = std::move(*value);
          }
          Dyadic::AlignExponents(out, static_cast<size_t>(num_k));
          if (!decides[v]) continue;
          Dyadic* comp = complement.data() + static_cast<size_t>(v) * num_k;
          for (int k = 0; k < num_k; ++k) comp[k] = out[k].OneMinus();
        }
      });

  const Dyadic one = Dyadic::One();
  std::vector<Dyadic> roots = EvaluateBatchArena<Dyadic>(
      view, num_k, num_threads,
      [&probability, num_k](int var) {
        return probability.data() + static_cast<size_t>(var) * num_k;
      },
      complement.data(), one, cancel);
  // Keep the size contract on cancellation (values are discarded anyway)
  // without paying the num_k ToRational conversions.
  if (cancel != nullptr && cancel->cancelled()) {
    return std::vector<Rational>(num_k);
  }
  std::vector<Rational> result;
  result.reserve(num_k);
  for (const Dyadic& root : roots) result.push_back(root.ToRational());
  return result;
}

}  // namespace walk_internal

Rational WalkEvaluate(const CircuitWalkView& view,
                      const std::vector<Rational>& probabilities) {
  GMC_CHECK(static_cast<int32_t>(probabilities.size()) >= view.num_vars);
  std::vector<Rational> value(view.num_nodes);
  for (size_t id = 0; id < view.num_nodes; ++id) {
    const FlatNode& node = view.nodes[id];
    switch (static_cast<NnfKind>(node.kind)) {
      case NnfKind::kFalse:
        value[id] = Rational::Zero();
        break;
      case NnfKind::kTrue:
        value[id] = Rational::One();
        break;
      case NnfKind::kVar:
        value[id] = probabilities[node.var];
        break;
      case NnfKind::kAnd: {
        const int32_t* child_ids = view.children + node.a;
        Rational product = Rational::One();
        for (int32_t c = 0; c < node.b; ++c) {
          product *= value[child_ids[c]];
          if (product.IsZero()) break;
        }
        value[id] = product;
        break;
      }
      case NnfKind::kDecision: {
        const Rational& p = probabilities[node.var];
        value[id] = p * value[node.a] + (Rational::One() - p) * value[node.b];
        break;
      }
    }
  }
  return value[view.root];
}

std::vector<Rational> WalkEvaluateBatch(const CircuitWalkView& view,
                                        const WeightMatrix& weights,
                                        int num_threads,
                                        const CancelToken* cancel) {
  GMC_CHECK(weights.num_vars() >= view.num_vars);
  const int num_k = weights.num_vectors();
  const int num_vars = view.num_vars;

  // Complements 1 − p, computed once per (variable, vector) for exactly the
  // variables that head a decision node. Column layout mirrors the weight
  // matrix. Chunked over variables: each chunk owns a disjoint slice.
  const std::vector<bool> decides = walk_internal::WalkDecisionVars(view);
  std::vector<Rational> complement(static_cast<size_t>(num_vars) * num_k);
  ParallelFor(num_vars, num_threads, kMinVarsPerChunk,
              [&](int64_t v0, int64_t v1, int /*chunk*/) {
                for (int64_t v = v0; v < v1; ++v) {
                  if (!decides[v]) continue;
                  const Rational* p = weights.Column(static_cast<int>(v));
                  Rational* out =
                      complement.data() + static_cast<size_t>(v) * num_k;
                  for (int k = 0; k < num_k; ++k) {
                    out[k] = Rational::One() - p[k];
                  }
                }
              });

  return EvaluateBatchArena<Rational>(
      view, num_k, num_threads,
      [&weights](int var) { return weights.Column(var); }, complement.data(),
      Rational::One(), cancel);
}

std::vector<double> WalkEvaluateBatchDouble(const CircuitWalkView& view,
                                            const WeightMatrix& weights,
                                            int recheck_stride,
                                            double recheck_tolerance,
                                            int num_threads,
                                            const CancelToken* cancel) {
  GMC_CHECK(weights.num_vars() >= view.num_vars);
  const int num_k = weights.num_vectors();
  const int num_vars = view.num_vars;

  // The weight columns, converted once; BigInt never appears in the pass.
  std::vector<double> probability(static_cast<size_t>(num_vars) * num_k);
  const std::vector<bool> decides = walk_internal::WalkDecisionVars(view);
  std::vector<double> complement(static_cast<size_t>(num_vars) * num_k, 0.0);
  ParallelFor(num_vars, num_threads, kMinVarsPerChunk,
              [&](int64_t v0, int64_t v1, int /*chunk*/) {
                for (int64_t v = v0; v < v1; ++v) {
                  const Rational* p = weights.Column(static_cast<int>(v));
                  double* out =
                      probability.data() + static_cast<size_t>(v) * num_k;
                  for (int k = 0; k < num_k; ++k) out[k] = p[k].ToDouble();
                  if (!decides[v]) continue;
                  double* comp =
                      complement.data() + static_cast<size_t>(v) * num_k;
                  for (int k = 0; k < num_k; ++k) comp[k] = 1.0 - out[k];
                }
              });

  std::vector<double> result = EvaluateBatchArena<double>(
      view, num_k, num_threads,
      [&probability, num_k](int var) {
        return probability.data() + static_cast<size_t>(var) * num_k;
      },
      complement.data(), 1.0, cancel);

  if (recheck_stride > 0 && (cancel == nullptr || !cancel->cancelled())) {
    // Re-checks are the expensive half (one exact Evaluate each), and each
    // checks one column independently — chunk them over the pool too. A
    // cancelled main pass skips them (partial values would trip the drift
    // abort on data the caller is about to discard); a cancellation DURING
    // the re-checks only skips the remaining checks — never the abort on a
    // check that already ran against real values.
    const int num_checks = (num_k + recheck_stride - 1) / recheck_stride;
    ParallelFor(num_checks, num_threads, 1,
                [&](int64_t c0, int64_t c1, int /*chunk*/) {
                  for (int64_t c = c0; c < c1; ++c) {
                    if (cancel != nullptr && cancel->Poll()) return;
                    const int k = static_cast<int>(c) * recheck_stride;
                    const double exact =
                        WalkEvaluate(view, weights.Row(k)).ToDouble();
                    const double scale = std::max(1.0, std::abs(exact));
                    GMC_CHECK_MSG(
                        std::abs(result[k] - exact) <=
                            recheck_tolerance * scale,
                        "EvaluateBatchDouble drifted from the exact "
                        "evaluator");
                  }
                });
  }
  return result;
}

uint64_t WalkFingerprint(const CircuitWalkView& view) {
  // Bottom-up structural hashes: a node's hash depends only on its kind,
  // its variable, and its children's HASHES — never on arena ids — so any
  // renumbering of the same DAG fingerprints identically. AND children
  // combine by unordered sum (AND is commutative; the builder's sorted-by-
  // id canonical order is an arena artifact); decision branches combine
  // ordered (high and low are semantically distinct).
  constexpr uint64_t kFnvPrime = 1099511628211ull;
  auto mix = [](uint64_t h, uint64_t word) { return (h ^ word) * kFnvPrime; };
  std::vector<uint64_t> hash(view.num_nodes);
  for (size_t id = 0; id < view.num_nodes; ++id) {
    const FlatNode& node = view.nodes[id];
    uint64_t h = 14695981039346656037ull;
    h = mix(h, static_cast<uint64_t>(node.kind) + 1);
    switch (static_cast<NnfKind>(node.kind)) {
      case NnfKind::kFalse:
      case NnfKind::kTrue:
        break;
      case NnfKind::kVar:
        h = mix(h, static_cast<uint64_t>(node.var) + 1);
        break;
      case NnfKind::kAnd: {
        const int32_t* child_ids = view.children + node.a;
        uint64_t sum = 0;
        for (int32_t c = 0; c < node.b; ++c) {
          sum += hash[child_ids[c]];  // unordered: wrapping sum commutes
        }
        h = mix(h, static_cast<uint64_t>(node.b));
        h = mix(h, sum);
        break;
      }
      case NnfKind::kDecision:
        h = mix(h, static_cast<uint64_t>(node.var) + 1);
        h = mix(h, hash[node.a]);
        h = mix(h, hash[node.b]);
        break;
    }
    hash[id] = h;
  }
  // Only the DAG under the root counts: arenas differing in orphaned
  // nodes (or in nothing but numbering) fingerprint identically.
  uint64_t out = 0x9e3779b97f4a7c15ull;
  out = mix(out, hash[view.root]);
  out = mix(out, static_cast<uint64_t>(view.num_vars));
  return out;
}

}  // namespace gmc
