// The directed-rounding interval walk — the certified fast tier.
//
// Same bottom-up arena pass as WalkEvaluateBatchDouble, but every value is
// an enclosure [lo, hi] and every floating-point operation is outward-
// rounded, so the returned interval PROVABLY contains the exact Rational
// answer on every column. The proof obligations, node by node:
//
//   * Weight leaves: each exact weight p is bracketed by exact comparison —
//     a finite double is a dyadic rational, so converting it back to a
//     Rational is lossless, and lo/hi are nudged with nextafter until
//     lo <= p <= hi holds exactly.
//   * Every flop: under round-to-nearest, fl(x op y) is within half an ulp
//     of x op y, so nextafter(fl(x op y)) in the right direction is a
//     strict outward bound. No fesetround — nextafter is portable, immune
//     to compiler reordering, and keeps the pass thread-agnostic.
//   * Monotonicity: all circuit values are probabilities in [0, 1]
//     (children of a decomposable AND multiply, deterministic decisions
//     convex-combine), so lower bounds propagate through lower bounds and
//     upper through upper — no case split inside the inner loops — and
//     clamping to [0, 1] after each node is sound.
//
// The width of the result is the walk's honest error report: a few ulp per
// circuit level on gadget-scale circuits, orders of magnitude below the
// re-check tolerance the plain double pass runs under.

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "compile/nnf.h"
#include "compile/nnf_walk.h"
#include "util/check.h"
#include "util/parallel.h"

namespace gmc {

namespace {

// Mirrors the slice sizing (and the deadline-poll stride) of nnf_walk.cc.
constexpr int64_t kMinColumnsPerSlice = 4;
constexpr int64_t kMinVarsPerChunk = 8;
constexpr size_t kCancelNodeStride = 64;

double Down(double x) {
  return std::nextafter(x, -std::numeric_limits<double>::infinity());
}
double Up(double x) {
  return std::nextafter(x, std::numeric_limits<double>::infinity());
}
double ClampLo(double x) { return x < 0.0 ? 0.0 : x; }
double ClampHi(double x) { return x > 1.0 ? 1.0 : x; }

// Exact value of a finite double in [0, 1]: every such double is the
// dyadic rational mantissa · 2^(exponent - 53), recovered losslessly.
Rational ExactOfDouble(double d) {
  if (d == 0.0) return Rational::Zero();
  int exponent = 0;
  const double mantissa = std::frexp(d, &exponent);  // d = m · 2^e, m ∈ [½,1)
  const auto scaled = static_cast<int64_t>(std::ldexp(mantissa, 53));
  // d <= 1 forces e <= 1, so the dyadic denominator exponent 53 - e >= 52.
  return Rational::Dyadic(BigInt(scaled), static_cast<uint64_t>(53 - exponent));
}

// The tightest-enough double bracket of an exact probability: ToDouble is
// within one ulp of p, so at most a couple of nextafter steps land on
// lo <= p <= hi (verified by exact Rational comparison, not trusted).
ProbInterval BracketExact(const Rational& p) {
  const double d = p.ToDouble();
  ProbInterval iv{d, d};
  while (iv.lo > 0.0 && ExactOfDouble(iv.lo) > p) iv.lo = Down(iv.lo);
  while (iv.hi < 1.0 && ExactOfDouble(iv.hi) < p) iv.hi = Up(iv.hi);
  iv.lo = ClampLo(iv.lo);
  iv.hi = ClampHi(iv.hi);
  return iv;
}

// One contiguous row-major interval arena per slice — the EvaluateBatchSlice
// shape of nnf_walk.cc with outward rounding at every flop.
void IntervalSlice(const CircuitWalkView& view, int k0, int k1, int num_k,
                   const ProbInterval* probability,
                   const ProbInterval* complement, ProbInterval* out_roots,
                   const CancelToken* cancel) {
  const int num_w = k1 - k0;
  std::vector<ProbInterval> value(view.num_nodes * num_w);
  for (size_t id = 0; id < view.num_nodes; ++id) {
    if (cancel != nullptr && (id % kCancelNodeStride) == 0 && cancel->Poll()) {
      return;  // caller discards the batch — nnf_walk.h cancel contract
    }
    const FlatNode& node = view.nodes[id];
    ProbInterval* out = value.data() + id * num_w;
    switch (static_cast<NnfKind>(node.kind)) {
      case NnfKind::kFalse:
        break;  // arena default-constructs to [0, 0]
      case NnfKind::kTrue:
        for (int k = 0; k < num_w; ++k) out[k] = ProbInterval{1.0, 1.0};
        break;
      case NnfKind::kVar: {
        const ProbInterval* p =
            probability + static_cast<size_t>(node.var) * num_k + k0;
        for (int k = 0; k < num_w; ++k) out[k] = p[k];
        break;
      }
      case NnfKind::kAnd: {
        const int32_t* child_ids = view.children + node.a;
        const ProbInterval* first =
            value.data() + static_cast<size_t>(child_ids[0]) * num_w;
        for (int k = 0; k < num_w; ++k) out[k] = first[k];
        for (int32_t c = 1; c < node.b; ++c) {
          const ProbInterval* child =
              value.data() + static_cast<size_t>(child_ids[c]) * num_w;
          for (int k = 0; k < num_w; ++k) {
            // Nonnegative factors: lo·lo bounds below, hi·hi above.
            out[k].lo = ClampLo(Down(out[k].lo * child[k].lo));
            out[k].hi = ClampHi(Up(out[k].hi * child[k].hi));
          }
        }
        break;
      }
      case NnfKind::kDecision: {
        const ProbInterval* p =
            probability + static_cast<size_t>(node.var) * num_k + k0;
        const ProbInterval* q =
            complement + static_cast<size_t>(node.var) * num_k + k0;
        const ProbInterval* high =
            value.data() + static_cast<size_t>(node.a) * num_w;
        const ProbInterval* low =
            value.data() + static_cast<size_t>(node.b) * num_w;
        for (int k = 0; k < num_w; ++k) {
          const double t_lo = Down(p[k].lo * high[k].lo);
          const double u_lo = Down(q[k].lo * low[k].lo);
          const double t_hi = Up(p[k].hi * high[k].hi);
          const double u_hi = Up(q[k].hi * low[k].hi);
          out[k].lo = ClampLo(Down(t_lo + u_lo));
          out[k].hi = ClampHi(Up(t_hi + u_hi));
        }
        break;
      }
    }
  }
  ProbInterval* root = value.data() + static_cast<size_t>(view.root) * num_w;
  for (int k = 0; k < num_w; ++k) out_roots[k0 + k] = root[k];
}

}  // namespace

std::vector<ProbInterval> WalkEvaluateBatchInterval(
    const CircuitWalkView& view, const WeightMatrix& weights, int num_threads,
    const CancelToken* cancel) {
  GMC_CHECK(weights.num_vars() >= view.num_vars);
  const int num_k = weights.num_vectors();
  const int num_vars = view.num_vars;

  // Weight and complement brackets, computed once per (variable, vector) by
  // exact comparison against the Rational. The complement is bracketed from
  // the exact 1 − p (not from the p bracket), so both enclosures are as
  // tight as a double pair can be. Chunked over variables like the other
  // batch preambles.
  const std::vector<bool> decides = walk_internal::WalkDecisionVars(view);
  std::vector<ProbInterval> probability(static_cast<size_t>(num_vars) * num_k);
  std::vector<ProbInterval> complement(static_cast<size_t>(num_vars) * num_k);
  ParallelFor(num_vars, num_threads, kMinVarsPerChunk,
              [&](int64_t v0, int64_t v1, int /*chunk*/) {
                for (int64_t v = v0; v < v1; ++v) {
                  const Rational* p = weights.Column(static_cast<int>(v));
                  ProbInterval* out =
                      probability.data() + static_cast<size_t>(v) * num_k;
                  for (int k = 0; k < num_k; ++k) {
                    GMC_CHECK_MSG(
                        p[k].sign() >= 0 && p[k] <= Rational::One(),
                        "EvaluateBatchInterval needs probabilities in [0, 1]");
                    out[k] = BracketExact(p[k]);
                  }
                  if (!decides[v]) continue;
                  ProbInterval* comp =
                      complement.data() + static_cast<size_t>(v) * num_k;
                  for (int k = 0; k < num_k; ++k) {
                    comp[k] = BracketExact(Rational::One() - p[k]);
                  }
                }
              });

  std::vector<ProbInterval> result(num_k);
  ParallelFor(num_k, num_threads, kMinColumnsPerSlice,
              [&](int64_t k0, int64_t k1, int /*chunk*/) {
                IntervalSlice(view, static_cast<int>(k0),
                              static_cast<int>(k1), num_k, probability.data(),
                              complement.data(), result.data(), cancel);
              });
  return result;
}

}  // namespace gmc
