// Compile-once / evaluate-many front end over the d-DNNF compiler.
//
// Circuits are cached by the lineage CNF (hashed with Cnf::Hash64,
// compared exactly on the clause lists), so any caller that probes the
// same grounded structure at different
// tuple-probability settings — the Type I interpolation sweep, the Type II
// Möbius inversion's per-block queries, a zig-zag cross-check — pays for
// compilation once and a linear circuit pass per evaluation thereafter.
// Note the key is the CNF alone, not the weights: that is the whole point.

#ifndef GMC_COMPILE_CIRCUIT_CACHE_H_
#define GMC_COMPILE_CIRCUIT_CACHE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "compile/compiler.h"
#include "compile/nnf.h"
#include "lineage/grounder.h"
#include "logic/query.h"
#include "prob/tid.h"
#include "util/rational.h"

namespace gmc {

class CircuitCache {
 public:
  struct Stats {
    uint64_t compiles = 0;
    uint64_t hits = 0;
  };

  CircuitCache() = default;

  // The compiled circuit for `cnf`, compiling on first sight. The reference
  // is invalidated by the next Get/Probability call (rehash may move it).
  const NnfCircuit& Get(const Cnf& cnf);

  // One circuit evaluation; compiles on the first call per CNF structure.
  Rational Probability(const Cnf& cnf,
                       const std::vector<Rational>& probabilities);
  Rational Probability(const Lineage& lineage);
  // Grounds and evaluates: Pr_∆(Q) through the compiled path.
  Rational QueryProbability(const Query& query, const Tid& tid);

  const Stats& stats() const { return stats_; }
  const Compiler::Stats& compiler_stats() const { return compiler_.stats(); }
  size_t size() const { return circuits_.size(); }
  void Clear() { circuits_.clear(); }

 private:
  Compiler compiler_;
  // Lineage CNF -> compiled circuit; hashed via Hash64, compared exactly.
  std::unordered_map<Cnf, NnfCircuit, CnfHash, CnfClauseEq> circuits_;
  Stats stats_;
};

}  // namespace gmc

#endif  // GMC_COMPILE_CIRCUIT_CACHE_H_
