// Compile-once / evaluate-many front end over the d-DNNF compiler.
//
// Circuits are cached by the lineage CNF (hashed with Cnf::Hash64,
// compared exactly on the clause lists), so any caller that probes the
// same grounded structure at different tuple-probability settings — the
// Type I interpolation sweep, the Type II Möbius inversion's per-block
// queries, a zig-zag cross-check — pays for compilation once and a linear
// circuit pass per evaluation thereafter. Note the key is the CNF alone,
// not the weights: that is the whole point.
//
// Thread safety: the cache is safe to share across threads. The memo is
// partitioned into hash stripes, each guarded by its own mutex, so lookups
// for different structures rarely contend; circuits are held by unique_ptr,
// so a returned reference stays valid across concurrent insertions (only
// Clear invalidates, and Clear must not race in-flight evaluations).
// Compilation of a new structure holds its stripe's lock (a second thread
// asking for the same CNF blocks instead of compiling twice) plus the
// compiler mutex (the compiler's sub-formula memo is shared state).
// Stats counters are atomics; stats() returns a coherent-enough snapshot
// for monitoring (counters are incremented independently).

#ifndef GMC_COMPILE_CIRCUIT_CACHE_H_
#define GMC_COMPILE_CIRCUIT_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "compile/compiler.h"
#include "compile/gmc_options.h"
#include "compile/nnf.h"
#include "compile/vtree.h"
#include "lineage/grounder.h"
#include "logic/query.h"
#include "prob/tid.h"
#include "store/circuit_store.h"
#include "util/rational.h"

namespace gmc {

/// Gate for routing repeated-query traffic through the compiled path: the
/// circuit cache is a win for compact, heavily repeated lineages, but
/// compilation is worst-case exponential in lineage size, so larger
/// lineages stay on their caller's native algorithm (the lifted plan for
/// safe queries, the recursive engine for unsafe ones). Shared by
/// SafeEvaluator::EvaluateMany and GfomcSession.
inline constexpr size_t kMaxCompiledLineageVars = 96;

/// Thread-safe compile-once / evaluate-many circuit store. All evaluation
/// entry points are exact (results are canonical reduced Rationals,
/// bit-identical across the dyadic/Rational routing, every order
/// heuristic, and every thread count); ownership of every compiled
/// circuit stays with the cache — references returned by Get are valid
/// until Clear() or destruction.
class CircuitCache {
 public:
  /// Monitoring counters, all cumulative. Snapshot semantics: see stats().
  struct Stats {
    uint64_t compiles = 0;
    uint64_t hits = 0;
    uint64_t batch_passes = 0;      ///< batched passes issued (either path)
    uint64_t batched_vectors = 0;   ///< weight vectors served by those passes
    /// Dyadic routing: batches whose weights all had power-of-two
    /// denominators and therefore took EvaluateBatchDyadic instead of the
    /// Rational EvaluateBatch (see nnf.h; results are bit-identical).
    uint64_t dyadic_batches = 0;
    uint64_t dyadic_vectors = 0;
    /// Width routing inside the dyadic path (see nnf_fixed.cc): vectors
    /// served by the uint64 / UInt128 fixed-width kernels vs the BigInt
    /// Dyadic arena. fixed64 + fixed128 + bigint == dyadic_vectors.
    uint64_t fixed64_vectors = 0;
    uint64_t fixed128_vectors = 0;
    uint64_t bigint_vectors = 0;
    /// Sweep-and-merge payoff across all compiles (mirrors the compiler's
    /// minimize_nodes_before/after, surfaced here because this cache is
    /// the front end repeated-query traffic goes through — except that
    /// the discarded legacy reference compiles of baseline recording are
    /// excluded here but do count in compiler_stats()).
    uint64_t nodes_before_minimize = 0;
    uint64_t nodes_after_minimize = 0;
    /// Vtree-order accounting: compiles that ran under a non-default
    /// OrderHeuristic, and the total edges (after minimization) of the
    /// circuits they produced. While set_order_baseline_recording(true)
    /// pays for the extra reference compilations, each such compile also
    /// adds its ordered edges to recorded_order_edges and the edges the
    /// SAME structure compiles to under the legacy kDefault order to
    /// legacy_order_edges — so recorded_order_edges vs legacy_order_edges
    /// is the per-cache circuit-size payoff of the active order over a
    /// like-for-like structure set, even if recording was toggled mid-run
    /// (order_edges alone also counts unrecorded compiles).
    uint64_t ordered_compiles = 0;
    uint64_t order_edges = 0;
    uint64_t recorded_order_edges = 0;
    uint64_t legacy_order_edges = 0;
    /// Persistent-store traffic (zero unless a store is attached — the
    /// GMC_STORE knob or set_store_directory). A store hit replaces a
    /// compile entirely; a rejected entry means a file was present but
    /// unusable (corrupt, version skew, or a CNF mismatch behind a hash
    /// collision) and the structure was recompiled. store_hits +
    /// store_misses + store_rejected == the compulsory in-memory misses
    /// that consulted the store.
    uint64_t store_hits = 0;
    uint64_t store_misses = 0;
    uint64_t store_rejected = 0;
    /// Self-healing (store_self_heal, the default): rejected entries whose
    /// bytes re-validated as durably corrupt and were moved into the
    /// store's quarantine/ subdirectory (store/scrub.h) — each such file
    /// costs ONE recompile total instead of one per cold process forever.
    /// Valid-but-mismatched files (hash collisions) count store_rejected
    /// but are never quarantined.
    uint64_t store_quarantined = 0;
    /// TryGet probes that came back empty: the compile hit its
    /// CompileBudget (or a memoized earlier failure under an
    /// equal-or-larger budget short-circuited it) and the caller was sent
    /// to the anytime tier.
    uint64_t budget_exhausted = 0;
    /// Memory governance (zero unless max_resident_bytes is set): entries
    /// dropped by the LRU sweep, and the current byte footprint of the
    /// cached circuits (a gauge, not cumulative — NnfCircuit::MemoryBytes
    /// per entry). In-flight evaluations pin evicted circuits alive via
    /// shared_ptr, so resident_bytes tracks what the CACHE retains, not
    /// total process memory.
    uint64_t evictions = 0;
    uint64_t resident_bytes = 0;
  };

  /// A fresh cache adopts the process-wide defaults — one
  /// Configure(GmcOptions::FromEnv()): DefaultOrderHeuristic (the
  /// GMC_ORDER environment knob), DyadicDefaultEnabled, and — when
  /// GMC_STORE names a directory (store::DefaultStorePath) — a persistent
  /// circuit store attached read-through + write-through at that path.
  CircuitCache();

  /// Applies every option this cache understands (num_threads, order,
  /// dyadic_enabled, store_directory + store_write_through; the session-
  /// level routing fields are ignored) in one atomic step. The store is
  /// re-attached only when its directory or write-through flag actually
  /// changed, so re-Configuring with a tweaked unrelated field never
  /// churns the store. The legacy set_* setters below are thin wrappers
  /// over this. Thread-safe.
  void Configure(const GmcOptions& options);
  /// Snapshot of the options currently in force (tweak-one-field-and-
  /// re-Configure is the intended update idiom).
  GmcOptions options() const;

  /// The compiled circuit for `cnf`, compiling on first sight. The
  /// reference stays valid until Clear() or destruction (concurrent Get
  /// calls never move existing circuits) — PROVIDED eviction is off
  /// (max_resident_bytes == 0, the default). With a byte budget set, an
  /// entry can be evicted while a bare reference is outstanding; eviction-
  /// aware callers must use GetShared, which pins the circuit.
  const NnfCircuit& Get(const Cnf& cnf);

  /// Pinning Get: the returned shared_ptr keeps the circuit alive across
  /// any concurrent eviction or Clear — THE lookup for callers running
  /// under max_resident_bytes. `cancel`, if non-null, is threaded into the
  /// compile; a fired token abandons the compile and returns nullptr
  /// WITHOUT caching the partial circuit or memoizing a failure (a
  /// deadline says nothing about the instance — see compiler.h). This is
  /// the only way GetShared returns null.
  std::shared_ptr<const NnfCircuit> GetShared(
      const Cnf& cnf, const CancelToken* cancel = nullptr);

  /// Budgeted Get — the routing probe of the anytime tier. Returns the
  /// circuit if `cnf` is already cached (in memory or in the attached
  /// store; budgets never apply to lookups) or compiles inside `budget`;
  /// nullptr once the compile exhausts it (Stats::budget_exhausted ticks
  /// and the failure is memoized per budget, so re-probing the same
  /// structure only recompiles when offered a strictly larger budget —
  /// see CompileBudget::AllowsMoreThan). An unlimited budget is exactly
  /// Get. Pointer lifetime matches Get's reference (same eviction caveat).
  const NnfCircuit* TryGet(const Cnf& cnf, const CompileBudget& budget);

  /// Pinning TryGet: TryGet's routing semantics with GetShared's lifetime
  /// and cancellation. Null means EITHER budget exhaustion (memoized,
  /// Stats::budget_exhausted ticks) or a fired `cancel` (not memoized, no
  /// stat) — callers under a deadline check cancel->cancelled() to tell
  /// the two apart.
  std::shared_ptr<const NnfCircuit> TryGetShared(
      const Cnf& cnf, const CompileBudget& budget,
      const CancelToken* cancel = nullptr);

  /// One circuit evaluation; compiles on the first call per CNF structure.
  Rational Probability(const Cnf& cnf,
                       const std::vector<Rational>& probabilities);
  Rational Probability(const Lineage& lineage);
  /// Grounds and evaluates: Pr_∆(Q) through the compiled path.
  Rational QueryProbability(const Query& query, const Tid& tid);

  /// Batched evaluate-many: all K weight vectors of one CNF structure in a
  /// single topological circuit pass (NnfCircuit::EvaluateBatch) instead
  /// of K independent walks. The pass itself is column-parallel (see
  /// nnf.h); set_num_threads below bounds the workers it may use.
  /// `cancel`, if non-null, covers both the compile and the batch pass; a
  /// fired token makes the RESULT meaningless (well-formed sizes, garbage
  /// values) — the caller owns the cancelled() check-and-discard, exactly
  /// as with NnfCircuit::EvaluateBatch.
  std::vector<Rational> ProbabilityBatch(const Cnf& cnf,
                                         const WeightMatrix& weights,
                                         const CancelToken* cancel = nullptr);
  /// Mixed-structure form: groups the lineages by CNF structure, compiles
  /// each distinct structure once, and serves every group with one batch
  /// pass over that group's weight vectors. Results come back in input
  /// order, so callers need not know (or care) how the grouping fell out —
  /// gadget sweeps whose grounding folds different certain tuples per
  /// setting still batch within each surviving structure.
  std::vector<Rational> ProbabilityBatch(const std::vector<Lineage>& lineages);

  /// Shannon-order selection for every compile this cache performs from
  /// now on (default: DefaultOrderHeuristic(), i.e. the GMC_ORDER
  /// environment knob). Affects only the SIZE of newly compiled circuits —
  /// results are bit-identical under every heuristic. Structures already
  /// cached keep the circuit they were compiled with (the cache key is the
  /// CNF alone); Clear() first for a clean A/B. Thread-safe. (Legacy
  /// wrapper over Configure, like every set_* below.)
  void set_order(OrderHeuristic order);
  OrderHeuristic order() const {
    return order_.load(std::memory_order_relaxed);
  }

  /// Order-payoff instrumentation (off by default): while enabled, every
  /// compile under a non-default heuristic ALSO compiles the structure
  /// under the legacy kDefault order — the extra circuit is discarded, its
  /// edge count lands in Stats::legacy_order_edges. Roughly doubles
  /// compile cost while on; evaluation traffic is unaffected. For
  /// benchmarks, tests, and production canaries measuring what the active
  /// order buys.
  void set_order_baseline_recording(bool enabled) {
    order_baseline_recording_.store(enabled, std::memory_order_relaxed);
  }
  bool order_baseline_recording() const {
    return order_baseline_recording_.load(std::memory_order_relaxed);
  }

  /// Dyadic routing knob, on by default: batches whose weights are all
  /// dyadic (power-of-two denominators — every interpolation sweep and
  /// GFOMC instance) are served by NnfCircuit::EvaluateBatchDyadic. The
  /// results are bit-identical to the Rational path either way; the knob
  /// exists for cross-checks and A/B benchmarks, not for correctness.
  void set_dyadic_enabled(bool enabled);
  bool dyadic_enabled() const {
    return dyadic_enabled_.load(std::memory_order_relaxed);
  }

  /// Worker bound for this cache's batch passes: 0 (default) defers to the
  /// process default (DefaultNumThreads, i.e. GMC_THREADS), 1 forces
  /// serial, n allows at most n column slices. Results are bit-identical
  /// at every setting.
  void set_num_threads(int num_threads);
  int num_threads() const {
    return num_threads_.load(std::memory_order_relaxed);
  }

  /// Process-wide default for newly constructed caches (per-instance
  /// set_dyadic_enabled overrides). The on/off cross-check tests and the
  /// A/B benchmarks flip this to drive the full caller stack —
  /// Type-I/Type-II reductions, WmcEngine, SafeEvaluator — down either
  /// path; results must be bit-identical both ways.
  static void SetDyadicDefaultEnabled(bool enabled);
  static bool DyadicDefaultEnabled();

  /// Attaches (or, with "", detaches) a persistent circuit store rooted at
  /// `directory`. While attached, every in-memory miss consults the store
  /// before compiling (read-through; hits skip compilation entirely), and
  /// with `write_through` every fresh compile is persisted via an atomic
  /// rename — a lost write is a lost cache entry, never a query failure.
  /// Results are bit-identical with or without a store (loads re-verify by
  /// exact clause comparison and fingerprint). Thread-safe; in-flight Gets
  /// finish against the store they started with.
  void set_store_directory(const std::string& directory,
                           bool write_through = true);
  /// The attached store's directory, or "" when none is attached.
  std::string store_directory() const;

  /// Persists every currently cached circuit into `directory` (which need
  /// not be the attached store — flushing a read-only cache to a fresh
  /// snapshot directory is the replica-priming recipe of docs/SERVING.md).
  /// Returns the number saved; on I/O failure sets *error to the first
  /// failure and keeps going.
  size_t SaveTo(const std::string& directory, std::string* error = nullptr);

  /// Bulk-loads every valid .gmcc entry under `directory` into the
  /// in-memory cache (structures already cached keep their circuit).
  /// Invalid files count into Stats::store_rejected and are skipped.
  /// Returns the number of circuits inserted. Safe to run concurrently
  /// with Get traffic — warm a replica while it serves.
  size_t WarmFrom(const std::string& directory);

  /// Snapshot of the atomic counters (not a reference: counters move under
  /// concurrent traffic).
  Stats stats() const;
  Compiler::Stats compiler_stats() const;
  size_t size() const;
  /// Drops every cached circuit. NOT safe to call while other threads hold
  /// references from Get or are mid-evaluation.
  void Clear();

 private:
  // Hash stripes: 16 is plenty — contention is per distinct structure, and
  // callers batch per structure.
  static constexpr size_t kNumStripes = 16;
  // One cached circuit plus its eviction bookkeeping. shared_ptr (not
  // unique_ptr) so eviction can drop the map entry while in-flight
  // evaluations that pinned via GetShared keep the circuit alive; `bytes`
  // is the MemoryBytes() the entry charged against resident_bytes_, and
  // `last_used` is a global use-clock reading (updated under the stripe
  // lock on every hit) that the LRU sweep compares across stripes.
  struct Entry {
    std::shared_ptr<const NnfCircuit> circuit;
    uint64_t bytes = 0;
    uint64_t last_used = 0;
  };
  struct Stripe {
    mutable std::mutex mu;
    std::unordered_map<Cnf, Entry, CnfHash, CnfClauseEq> circuits;
    // Budget-exhaustion memo: the largest budget each structure has failed
    // under. TryGet consults it to skip recompiling a known blow-up unless
    // the caller offers strictly more on some axis. Cleared by Clear().
    std::unordered_map<Cnf, CompileBudget, CnfHash, CnfClauseEq> failed;
  };
  struct AtomicStats {
    std::atomic<uint64_t> compiles{0};
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> batch_passes{0};
    std::atomic<uint64_t> batched_vectors{0};
    std::atomic<uint64_t> dyadic_batches{0};
    std::atomic<uint64_t> dyadic_vectors{0};
    std::atomic<uint64_t> fixed64_vectors{0};
    std::atomic<uint64_t> fixed128_vectors{0};
    std::atomic<uint64_t> bigint_vectors{0};
    std::atomic<uint64_t> nodes_before_minimize{0};
    std::atomic<uint64_t> nodes_after_minimize{0};
    std::atomic<uint64_t> ordered_compiles{0};
    std::atomic<uint64_t> order_edges{0};
    std::atomic<uint64_t> recorded_order_edges{0};
    std::atomic<uint64_t> legacy_order_edges{0};
    std::atomic<uint64_t> store_hits{0};
    std::atomic<uint64_t> store_misses{0};
    std::atomic<uint64_t> store_rejected{0};
    std::atomic<uint64_t> store_quarantined{0};
    std::atomic<uint64_t> budget_exhausted{0};
    std::atomic<uint64_t> evictions{0};
  };

  Stripe& StripeFor(const Cnf& cnf);
  // Shared body of every lookup. Null iff the budget was spent (memoized)
  // or `cancel` fired (not memoized).
  std::shared_ptr<const NnfCircuit> GetOrCompile(const Cnf& cnf,
                                                 const CompileBudget* budget,
                                                 const CancelToken* cancel);
  // LRU sweep: drops globally least-recently-used entries until
  // resident_bytes_ fits `max_bytes`, never touching entries used at or
  // after `keep_from` (the just-inserted entry's clock reading — evicting
  // it immediately would thrash). Takes stripe locks one at a time;
  // callers must hold NONE.
  void MaybeEvict(uint64_t max_bytes, uint64_t keep_from);
  // (Re-)attaches or detaches the persistent store; the body of the legacy
  // set_store_directory.
  void ApplyStore(const std::string& directory, bool write_through);
  // The attached store (shared_ptr so in-flight Gets survive a concurrent
  // set_store_directory), or nullptr.
  std::shared_ptr<const store::CircuitStore> store() const;

  mutable std::mutex compiler_mu_;  // guards compiler_ (shared memo + stats)
  Compiler compiler_;
  std::array<Stripe, kNumStripes> stripes_;
  AtomicStats stats_;
  mutable std::mutex store_mu_;  // guards store_ (the pointer, not the store)
  std::shared_ptr<const store::CircuitStore> store_;
  std::atomic<bool> write_through_{true};
  std::atomic<bool> self_heal_{true};
  // Memory governance: byte cap (0 = unlimited), current footprint, and
  // the monotone use-clock every hit/insert stamps entries with.
  std::atomic<uint64_t> max_resident_bytes_{0};
  std::atomic<uint64_t> resident_bytes_{0};
  std::atomic<uint64_t> use_clock_{0};
  // Circuits whose cache insertion was suppressed by fault injection
  // (fault::Point::kCacheInsert) are parked here so legacy Get references
  // honor their valid-until-Clear contract even when the map never held
  // the entry. Empty in production (no faults configured).
  mutable std::mutex pinned_mu_;
  std::vector<std::shared_ptr<const NnfCircuit>> pinned_;
  std::atomic<bool> dyadic_enabled_{DyadicDefaultEnabled()};
  std::atomic<int> num_threads_{0};
  std::atomic<OrderHeuristic> order_{DefaultOrderHeuristic()};
  std::atomic<bool> order_baseline_recording_{false};
  // The options last Configured, for options() snapshots and store change
  // detection. The hot paths never touch this — they read the atomics
  // above, which Configure keeps in sync.
  mutable std::mutex options_mu_;
  GmcOptions options_;
};

}  // namespace gmc

#endif  // GMC_COMPILE_CIRCUIT_CACHE_H_
