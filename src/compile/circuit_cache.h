// Compile-once / evaluate-many front end over the d-DNNF compiler.
//
// Circuits are cached by the lineage CNF (hashed with Cnf::Hash64,
// compared exactly on the clause lists), so any caller that probes the
// same grounded structure at different
// tuple-probability settings — the Type I interpolation sweep, the Type II
// Möbius inversion's per-block queries, a zig-zag cross-check — pays for
// compilation once and a linear circuit pass per evaluation thereafter.
// Note the key is the CNF alone, not the weights: that is the whole point.

#ifndef GMC_COMPILE_CIRCUIT_CACHE_H_
#define GMC_COMPILE_CIRCUIT_CACHE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "compile/compiler.h"
#include "compile/nnf.h"
#include "lineage/grounder.h"
#include "logic/query.h"
#include "prob/tid.h"
#include "util/rational.h"

namespace gmc {

// Gate for routing repeated-query traffic through the compiled path: the
// circuit cache is a win for compact, heavily repeated lineages, but
// compilation is worst-case exponential in lineage size, so larger
// lineages stay on their caller's native algorithm (the lifted plan for
// safe queries, the recursive engine for unsafe ones). Shared by
// SafeEvaluator::EvaluateMany and GfomcSession.
inline constexpr size_t kMaxCompiledLineageVars = 96;

class CircuitCache {
 public:
  struct Stats {
    uint64_t compiles = 0;
    uint64_t hits = 0;
    uint64_t batch_passes = 0;      // batched passes issued (either path)
    uint64_t batched_vectors = 0;   // weight vectors served by those passes
    // Dyadic routing: batches whose weights all had power-of-two
    // denominators and therefore took EvaluateBatchDyadic instead of the
    // Rational EvaluateBatch (see nnf.h; results are bit-identical).
    uint64_t dyadic_batches = 0;
    uint64_t dyadic_vectors = 0;
    // Sweep-and-merge payoff across all compiles (mirrors the compiler's
    // minimize_nodes_before/after, surfaced here because this cache is the
    // front end repeated-query traffic goes through).
    uint64_t nodes_before_minimize = 0;
    uint64_t nodes_after_minimize = 0;
  };

  CircuitCache() = default;

  // The compiled circuit for `cnf`, compiling on first sight. The reference
  // is invalidated by the next Get/Probability call (rehash may move it).
  const NnfCircuit& Get(const Cnf& cnf);

  // One circuit evaluation; compiles on the first call per CNF structure.
  Rational Probability(const Cnf& cnf,
                       const std::vector<Rational>& probabilities);
  Rational Probability(const Lineage& lineage);
  // Grounds and evaluates: Pr_∆(Q) through the compiled path.
  Rational QueryProbability(const Query& query, const Tid& tid);

  // Batched evaluate-many: all K weight vectors of one CNF structure in a
  // single topological circuit pass (NnfCircuit::EvaluateBatch) instead of
  // K independent walks.
  std::vector<Rational> ProbabilityBatch(const Cnf& cnf,
                                         const WeightMatrix& weights);
  // Mixed-structure form: groups the lineages by CNF structure, compiles
  // each distinct structure once, and serves every group with one batch
  // pass over that group's weight vectors. Results come back in input
  // order, so callers need not know (or care) how the grouping fell out —
  // gadget sweeps whose grounding folds different certain tuples per
  // setting still batch within each surviving structure.
  std::vector<Rational> ProbabilityBatch(const std::vector<Lineage>& lineages);

  // Dyadic routing knob, on by default: batches whose weights are all
  // dyadic (power-of-two denominators — every interpolation sweep and GFOMC
  // instance) are served by NnfCircuit::EvaluateBatchDyadic. The results
  // are bit-identical to the Rational path either way; the knob exists for
  // cross-checks and A/B benchmarks, not for correctness.
  void set_dyadic_enabled(bool enabled) { dyadic_enabled_ = enabled; }
  bool dyadic_enabled() const { return dyadic_enabled_; }

  // Process-wide default for newly constructed caches (per-instance
  // set_dyadic_enabled overrides). The on/off cross-check tests and the A/B
  // benchmarks flip this to drive the full caller stack — Type-I/Type-II
  // reductions, WmcEngine, SafeEvaluator — down either path; results must
  // be bit-identical both ways.
  static void SetDyadicDefaultEnabled(bool enabled);
  static bool DyadicDefaultEnabled();

  const Stats& stats() const { return stats_; }
  const Compiler::Stats& compiler_stats() const { return compiler_.stats(); }
  size_t size() const { return circuits_.size(); }
  void Clear() { circuits_.clear(); }

 private:
  Compiler compiler_;
  // Lineage CNF -> compiled circuit; hashed via Hash64, compared exactly.
  std::unordered_map<Cnf, NnfCircuit, CnfHash, CnfClauseEq> circuits_;
  Stats stats_;
  bool dyadic_enabled_ = DyadicDefaultEnabled();
};

}  // namespace gmc

#endif  // GMC_COMPILE_CIRCUIT_CACHE_H_
