#include "compile/nnf.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace gmc {

namespace {

uint64_t HashNode(const NnfNode& node) {
  uint64_t h = 14695981039346656037ull;
  auto mix = [&h](uint64_t word) { h = (h ^ word) * 1099511628211ull; };
  mix(static_cast<uint64_t>(node.kind));
  mix(static_cast<uint64_t>(node.var) + 1);
  mix(static_cast<uint64_t>(node.high) + 1);
  mix(static_cast<uint64_t>(node.low) + 1);
  for (int child : node.children) mix(static_cast<uint64_t>(child));
  return h;
}

bool SameNode(const NnfNode& a, const NnfNode& b) {
  return a.kind == b.kind && a.var == b.var && a.high == b.high &&
         a.low == b.low && a.children == b.children;
}

}  // namespace

WeightMatrix::WeightMatrix(int num_vectors, int num_vars)
    : num_vectors_(num_vectors),
      num_vars_(num_vars),
      values_(static_cast<size_t>(num_vectors) * num_vars) {
  GMC_CHECK(num_vectors >= 1 && num_vars >= 0);
}

WeightMatrix WeightMatrix::FromRows(
    const std::vector<std::vector<Rational>>& rows) {
  GMC_CHECK_MSG(!rows.empty(), "WeightMatrix needs at least one row");
  const int num_vars = static_cast<int>(rows[0].size());
  WeightMatrix matrix(static_cast<int>(rows.size()), num_vars);
  for (size_t k = 0; k < rows.size(); ++k) {
    GMC_CHECK_MSG(static_cast<int>(rows[k].size()) == num_vars,
                  "ragged weight rows");
    for (int v = 0; v < num_vars; ++v) {
      matrix.Set(static_cast<int>(k), v, rows[k][v]);
    }
  }
  return matrix;
}

std::vector<Rational> WeightMatrix::Row(int k) const {
  GMC_CHECK(k >= 0 && k < num_vectors_);
  std::vector<Rational> row;
  row.reserve(num_vars_);
  for (int v = 0; v < num_vars_; ++v) row.push_back(at(k, v));
  return row;
}

bool WeightMatrix::AllDyadic() const {
  for (const Rational& value : values_) {
    const BigInt& den = value.denominator();
    if (!den.IsOne() && !den.IsPowerOfTwo()) return false;
  }
  return true;
}

NnfCircuit::NnfCircuit() {
  nodes_.push_back(NnfNode{NnfKind::kFalse, -1, -1, -1, {}});
  nodes_.push_back(NnfNode{NnfKind::kTrue, -1, -1, -1, {}});
}

int NnfCircuit::Intern(NnfNode node) {
  const uint64_t h = HashNode(node);
  std::vector<int>& bucket = unique_[h];
  for (int id : bucket) {
    if (SameNode(nodes_[id], node)) return id;
  }
  const int id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(node));
  bucket.push_back(id);
  return id;
}

int NnfCircuit::Var(int var) {
  GMC_CHECK(var >= 0);
  num_vars_ = std::max(num_vars_, var + 1);
  return Intern(NnfNode{NnfKind::kVar, var, -1, -1, {}});
}

int NnfCircuit::And(std::vector<int> children) {
  std::vector<int> kept;
  kept.reserve(children.size());
  for (int child : children) {
    GMC_CHECK(child >= 0 && child < static_cast<int>(nodes_.size()));
    if (child == False()) return False();
    if (child == True()) continue;
    kept.push_back(child);
  }
  if (kept.empty()) return True();
  // AND is commutative and idempotent; a canonical child order maximizes
  // sharing in the unique table.
  std::sort(kept.begin(), kept.end());
  kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
  if (kept.size() == 1) return kept[0];
  return Intern(NnfNode{NnfKind::kAnd, -1, -1, -1, std::move(kept)});
}

int NnfCircuit::Decision(int var, int high, int low) {
  GMC_CHECK(var >= 0);
  GMC_CHECK(high >= 0 && high < static_cast<int>(nodes_.size()));
  GMC_CHECK(low >= 0 && low < static_cast<int>(nodes_.size()));
  if (high == low) return high;  // the test is irrelevant
  num_vars_ = std::max(num_vars_, var + 1);
  if (high == True() && low == False()) return Var(var);
  return Intern(NnfNode{NnfKind::kDecision, var, high, low, {}});
}

void NnfCircuit::SetRoot(int id) {
  GMC_CHECK(id >= 0 && id < static_cast<int>(nodes_.size()));
  root_ = id;
}

// Every evaluation entry point flattens once (O(nodes), far below the
// O(nodes · K) arithmetic of the pass itself) and delegates to the shared
// walk core — the byte-for-byte same code the circuit store's mmap view
// runs, which is what makes persisted circuits bit-identical to compiled
// ones (nnf_walk.h).

FlatCircuit NnfCircuit::Flatten() const {
  FlatCircuit flat;
  flat.nodes.reserve(nodes_.size());
  for (const NnfNode& node : nodes_) {
    FlatNode out;
    out.kind = static_cast<uint32_t>(node.kind);
    out.var = node.var;
    if (node.kind == NnfKind::kDecision) {
      out.a = node.high;
      out.b = node.low;
    } else if (node.kind == NnfKind::kAnd) {
      out.a = static_cast<int32_t>(flat.children.size());
      out.b = static_cast<int32_t>(node.children.size());
      flat.children.insert(flat.children.end(), node.children.begin(),
                           node.children.end());
    }
    flat.nodes.push_back(out);
  }
  flat.root = root_;
  flat.num_vars = num_vars_;
  return flat;
}

NnfCircuit NnfCircuit::FromFlat(const CircuitWalkView& view) {
  NnfCircuit circuit;
  circuit.nodes_.clear();
  circuit.nodes_.reserve(view.num_nodes);
  for (size_t id = 0; id < view.num_nodes; ++id) {
    const FlatNode& in = view.nodes[id];
    NnfNode node;
    node.kind = static_cast<NnfKind>(in.kind);
    node.var = in.var;
    if (node.kind == NnfKind::kDecision) {
      node.high = in.a;
      node.low = in.b;
    } else if (node.kind == NnfKind::kAnd) {
      node.children.assign(view.children + in.a,
                           view.children + in.a + in.b);
    }
    circuit.nodes_.push_back(std::move(node));
  }
  circuit.root_ = view.root;
  circuit.num_vars_ = view.num_vars;
  // Rebuild the hash-consing table so the circuit stays mutable (same
  // post-condition as PruneUnreachable; constants 0/1 stay untabled).
  for (size_t id = 2; id < circuit.nodes_.size(); ++id) {
    circuit.unique_[HashNode(circuit.nodes_[id])].push_back(
        static_cast<int>(id));
  }
  return circuit;
}

uint64_t NnfCircuit::Fingerprint() const {
  return WalkFingerprint(Flatten().view());
}

Rational NnfCircuit::Evaluate(
    const std::vector<Rational>& probabilities) const {
  return WalkEvaluate(Flatten().view(), probabilities);
}

std::vector<Rational> NnfCircuit::EvaluateBatch(
    const WeightMatrix& weights, int num_threads,
    const CancelToken* cancel) const {
  return WalkEvaluateBatch(Flatten().view(), weights, num_threads, cancel);
}

std::vector<Rational> NnfCircuit::EvaluateBatchDyadic(
    const WeightMatrix& weights, int num_threads, DyadicBatchStats* stats,
    const CancelToken* cancel) const {
  return WalkEvaluateBatchDyadic(Flatten().view(), weights, num_threads,
                                 stats, cancel);
}

std::vector<double> NnfCircuit::EvaluateBatchDouble(
    const WeightMatrix& weights, int recheck_stride, double recheck_tolerance,
    int num_threads, const CancelToken* cancel) const {
  return WalkEvaluateBatchDouble(Flatten().view(), weights, recheck_stride,
                                 recheck_tolerance, num_threads, cancel);
}

std::vector<ProbInterval> NnfCircuit::EvaluateBatchInterval(
    const WeightMatrix& weights, int num_threads,
    const CancelToken* cancel) const {
  return WalkEvaluateBatchInterval(Flatten().view(), weights, num_threads,
                                   cancel);
}

NnfCircuit::Stats NnfCircuit::ComputeStats() const {
  Stats stats;
  stats.num_nodes = nodes_.size();
  std::vector<int> depth(nodes_.size(), 0);
  for (size_t id = 0; id < nodes_.size(); ++id) {
    const NnfNode& node = nodes_[id];
    switch (node.kind) {
      case NnfKind::kFalse:
      case NnfKind::kTrue:
        break;
      case NnfKind::kVar:
        ++stats.var_nodes;
        break;
      case NnfKind::kAnd:
        ++stats.and_nodes;
        stats.edges += node.children.size();
        for (int child : node.children) {
          depth[id] = std::max(depth[id], depth[child] + 1);
        }
        break;
      case NnfKind::kDecision:
        ++stats.decision_nodes;
        stats.edges += 2;
        depth[id] = std::max(depth[node.high], depth[node.low]) + 1;
        break;
    }
  }
  stats.depth = depth[root_];
  return stats;
}

size_t NnfCircuit::MemoryBytes() const {
  // Element counts, not allocator capacities: the estimate must be a pure
  // function of the circuit's structure so eviction accounting balances
  // exactly across insert and erase.
  size_t bytes = sizeof(NnfCircuit) + nodes_.size() * sizeof(NnfNode);
  for (const NnfNode& node : nodes_) {
    bytes += node.children.size() * sizeof(int);
  }
  for (const auto& [hash, bucket] : unique_) {
    // Per-entry map overhead: key + value + one hash-table node's worth of
    // bookkeeping (a fixed nominal 32 bytes — close enough for a budget).
    bytes += sizeof(hash) + sizeof(bucket) + 32;
    bytes += bucket.size() * sizeof(int);
  }
  return bytes;
}

std::vector<std::vector<int>> NnfCircuit::Supports() const {
  std::vector<std::vector<int>> support(nodes_.size());
  auto merge_into = [](std::vector<int>& out, const std::vector<int>& in) {
    std::vector<int> merged;
    merged.reserve(out.size() + in.size());
    std::merge(out.begin(), out.end(), in.begin(), in.end(),
               std::back_inserter(merged));
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    out = std::move(merged);
  };
  for (size_t id = 0; id < nodes_.size(); ++id) {
    const NnfNode& node = nodes_[id];
    switch (node.kind) {
      case NnfKind::kFalse:
      case NnfKind::kTrue:
        break;
      case NnfKind::kVar:
        support[id] = {node.var};
        break;
      case NnfKind::kAnd:
        for (int child : node.children) {
          merge_into(support[id], support[child]);
        }
        break;
      case NnfKind::kDecision:
        merge_into(support[id], support[node.high]);
        merge_into(support[id], support[node.low]);
        merge_into(support[id], {node.var});
        break;
    }
  }
  return support;
}

bool NnfCircuit::CheckDecomposable() const {
  const std::vector<std::vector<int>> support = Supports();
  for (const NnfNode& node : nodes_) {
    if (node.kind != NnfKind::kAnd) continue;
    size_t total = 0;
    std::vector<int> merged;
    for (int child : node.children) {
      total += support[child].size();
      merged.insert(merged.end(), support[child].begin(),
                    support[child].end());
    }
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    if (merged.size() != total) return false;  // some variable was shared
  }
  return true;
}

bool NnfCircuit::CheckDeterministic() const {
  const std::vector<std::vector<int>> support = Supports();
  for (const NnfNode& node : nodes_) {
    if (node.kind != NnfKind::kDecision) continue;
    const std::vector<int>& high = support[node.high];
    const std::vector<int>& low = support[node.low];
    if (std::binary_search(high.begin(), high.end(), node.var)) return false;
    if (std::binary_search(low.begin(), low.end(), node.var)) return false;
  }
  return true;
}

std::vector<bool> NnfCircuit::Reachable() const {
  std::vector<bool> reachable(nodes_.size(), false);
  std::vector<int> stack = {root_};
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    if (reachable[id]) continue;
    reachable[id] = true;
    const NnfNode& node = nodes_[id];
    if (node.kind == NnfKind::kAnd) {
      for (int child : node.children) stack.push_back(child);
    } else if (node.kind == NnfKind::kDecision) {
      stack.push_back(node.high);
      stack.push_back(node.low);
    }
  }
  return reachable;
}

void NnfCircuit::PruneUnreachable() {
  std::vector<bool> reachable = Reachable();
  reachable[0] = reachable[1] = true;  // constants keep their fixed ids
  std::vector<int> remap(nodes_.size(), -1);
  std::vector<NnfNode> kept;
  kept.reserve(nodes_.size());
  for (size_t id = 0; id < nodes_.size(); ++id) {
    if (!reachable[id]) continue;
    remap[id] = static_cast<int>(kept.size());
    kept.push_back(std::move(nodes_[id]));
  }
  // Ascending-id compaction keeps children before parents.
  for (NnfNode& node : kept) {
    if (node.kind == NnfKind::kDecision) {
      node.high = remap[node.high];
      node.low = remap[node.low];
    }
    for (int& child : node.children) child = remap[child];
  }
  nodes_ = std::move(kept);
  root_ = remap[root_];
  unique_.clear();
  for (size_t id = 2; id < nodes_.size(); ++id) {
    unique_[HashNode(nodes_[id])].push_back(static_cast<int>(id));
  }
}

std::string NnfCircuit::ToDot() const {
  std::string out = "digraph nnf {\n  rankdir=BT;\n";
  const std::vector<bool> reachable = Reachable();
  for (size_t id = 0; id < nodes_.size(); ++id) {
    if (!reachable[id]) continue;
    const NnfNode& node = nodes_[id];
    const std::string name = "n" + std::to_string(id);
    switch (node.kind) {
      case NnfKind::kFalse:
        out += "  " + name + " [label=\"0\", shape=box];\n";
        break;
      case NnfKind::kTrue:
        out += "  " + name + " [label=\"1\", shape=box];\n";
        break;
      case NnfKind::kVar:
        out += "  " + name + " [label=\"x" + std::to_string(node.var) +
               "\", shape=box];\n";
        break;
      case NnfKind::kAnd:
        out += "  " + name + " [label=\"AND\"];\n";
        for (int child : node.children) {
          out += "  n" + std::to_string(child) + " -> " + name + ";\n";
        }
        break;
      case NnfKind::kDecision:
        out += "  " + name + " [label=\"x" + std::to_string(node.var) +
               "?\", shape=diamond];\n";
        out += "  n" + std::to_string(node.high) + " -> " + name +
               " [label=\"1\"];\n";
        out += "  n" + std::to_string(node.low) + " -> " + name +
               " [label=\"0\", style=dashed];\n";
        break;
    }
  }
  out += "}\n";
  return out;
}

}  // namespace gmc
