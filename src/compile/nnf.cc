#include "compile/nnf.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/check.h"
#include "util/parallel.h"

namespace gmc {

namespace {

uint64_t HashNode(const NnfNode& node) {
  uint64_t h = 14695981039346656037ull;
  auto mix = [&h](uint64_t word) { h = (h ^ word) * 1099511628211ull; };
  mix(static_cast<uint64_t>(node.kind));
  mix(static_cast<uint64_t>(node.var) + 1);
  mix(static_cast<uint64_t>(node.high) + 1);
  mix(static_cast<uint64_t>(node.low) + 1);
  for (int child : node.children) mix(static_cast<uint64_t>(child));
  return h;
}

bool SameNode(const NnfNode& a, const NnfNode& b) {
  return a.kind == b.kind && a.var == b.var && a.high == b.high &&
         a.low == b.low && a.children == b.children;
}

// The arena walk's zero test, uniform across the three value types.
bool IsZeroValue(const Rational& v) { return v.IsZero(); }
bool IsZeroValue(const Dyadic& v) { return v.IsZero(); }
bool IsZeroValue(double v) { return v == 0.0; }

// Columns per parallel slice, at minimum: below this, slice setup (one
// arena allocation per slice) costs more than the columns it covers.
constexpr int64_t kMinColumnsPerSlice = 4;
// Variables per chunk for the parallel conversion/complement preambles.
constexpr int64_t kMinVarsPerChunk = 8;

}  // namespace

WeightMatrix::WeightMatrix(int num_vectors, int num_vars)
    : num_vectors_(num_vectors),
      num_vars_(num_vars),
      values_(static_cast<size_t>(num_vectors) * num_vars) {
  GMC_CHECK(num_vectors >= 1 && num_vars >= 0);
}

WeightMatrix WeightMatrix::FromRows(
    const std::vector<std::vector<Rational>>& rows) {
  GMC_CHECK_MSG(!rows.empty(), "WeightMatrix needs at least one row");
  const int num_vars = static_cast<int>(rows[0].size());
  WeightMatrix matrix(static_cast<int>(rows.size()), num_vars);
  for (size_t k = 0; k < rows.size(); ++k) {
    GMC_CHECK_MSG(static_cast<int>(rows[k].size()) == num_vars,
                  "ragged weight rows");
    for (int v = 0; v < num_vars; ++v) {
      matrix.Set(static_cast<int>(k), v, rows[k][v]);
    }
  }
  return matrix;
}

std::vector<Rational> WeightMatrix::Row(int k) const {
  GMC_CHECK(k >= 0 && k < num_vectors_);
  std::vector<Rational> row;
  row.reserve(num_vars_);
  for (int v = 0; v < num_vars_; ++v) row.push_back(at(k, v));
  return row;
}

bool WeightMatrix::AllDyadic() const {
  for (const Rational& value : values_) {
    const BigInt& den = value.denominator();
    if (!den.IsOne() && !den.IsPowerOfTwo()) return false;
  }
  return true;
}

NnfCircuit::NnfCircuit() {
  nodes_.push_back(NnfNode{NnfKind::kFalse, -1, -1, -1, {}});
  nodes_.push_back(NnfNode{NnfKind::kTrue, -1, -1, -1, {}});
}

int NnfCircuit::Intern(NnfNode node) {
  const uint64_t h = HashNode(node);
  std::vector<int>& bucket = unique_[h];
  for (int id : bucket) {
    if (SameNode(nodes_[id], node)) return id;
  }
  const int id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::move(node));
  bucket.push_back(id);
  return id;
}

int NnfCircuit::Var(int var) {
  GMC_CHECK(var >= 0);
  num_vars_ = std::max(num_vars_, var + 1);
  return Intern(NnfNode{NnfKind::kVar, var, -1, -1, {}});
}

int NnfCircuit::And(std::vector<int> children) {
  std::vector<int> kept;
  kept.reserve(children.size());
  for (int child : children) {
    GMC_CHECK(child >= 0 && child < static_cast<int>(nodes_.size()));
    if (child == False()) return False();
    if (child == True()) continue;
    kept.push_back(child);
  }
  if (kept.empty()) return True();
  // AND is commutative and idempotent; a canonical child order maximizes
  // sharing in the unique table.
  std::sort(kept.begin(), kept.end());
  kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
  if (kept.size() == 1) return kept[0];
  return Intern(NnfNode{NnfKind::kAnd, -1, -1, -1, std::move(kept)});
}

int NnfCircuit::Decision(int var, int high, int low) {
  GMC_CHECK(var >= 0);
  GMC_CHECK(high >= 0 && high < static_cast<int>(nodes_.size()));
  GMC_CHECK(low >= 0 && low < static_cast<int>(nodes_.size()));
  if (high == low) return high;  // the test is irrelevant
  num_vars_ = std::max(num_vars_, var + 1);
  if (high == True() && low == False()) return Var(var);
  return Intern(NnfNode{NnfKind::kDecision, var, high, low, {}});
}

void NnfCircuit::SetRoot(int id) {
  GMC_CHECK(id >= 0 && id < static_cast<int>(nodes_.size()));
  root_ = id;
}

Rational NnfCircuit::Evaluate(
    const std::vector<Rational>& probabilities) const {
  GMC_CHECK(static_cast<int>(probabilities.size()) >= num_vars_);
  std::vector<Rational> value(nodes_.size());
  for (size_t id = 0; id < nodes_.size(); ++id) {
    const NnfNode& node = nodes_[id];
    switch (node.kind) {
      case NnfKind::kFalse:
        value[id] = Rational::Zero();
        break;
      case NnfKind::kTrue:
        value[id] = Rational::One();
        break;
      case NnfKind::kVar:
        value[id] = probabilities[node.var];
        break;
      case NnfKind::kAnd: {
        Rational product = Rational::One();
        for (int child : node.children) {
          product *= value[child];
          if (product.IsZero()) break;
        }
        value[id] = product;
        break;
      }
      case NnfKind::kDecision: {
        const Rational& p = probabilities[node.var];
        value[id] =
            p * value[node.high] + (Rational::One() - p) * value[node.low];
        break;
      }
    }
  }
  return value[root_];
}

std::vector<bool> NnfCircuit::DecisionVars() const {
  std::vector<bool> decides(static_cast<size_t>(num_vars_), false);
  for (const NnfNode& node : nodes_) {
    if (node.kind == NnfKind::kDecision) decides[node.var] = true;
  }
  return decides;
}

// One contiguous row-major arena per slice: within a slice of width
// W = k1 - k0, the W values of node `id` live at value[id * W .. id*W + W).
template <typename Value, typename ColumnFn>
void NnfCircuit::EvaluateBatchSlice(int k0, int k1, int num_k,
                                    ColumnFn column, const Value* complement,
                                    const Value& one,
                                    Value* out_roots) const {
  const int num_w = k1 - k0;
  std::vector<Value> value(nodes_.size() * num_w);
  for (size_t id = 0; id < nodes_.size(); ++id) {
    const NnfNode& node = nodes_[id];
    Value* out = value.data() + id * num_w;
    switch (node.kind) {
      case NnfKind::kFalse:
        break;  // arena default-constructs to zero
      case NnfKind::kTrue:
        for (int k = 0; k < num_w; ++k) out[k] = one;
        break;
      case NnfKind::kVar: {
        const Value* p = column(node.var) + k0;
        for (int k = 0; k < num_w; ++k) out[k] = p[k];
        break;
      }
      case NnfKind::kAnd: {
        const Value* first = value.data() +
                             static_cast<size_t>(node.children[0]) * num_w;
        for (int k = 0; k < num_w; ++k) out[k] = first[k];
        for (size_t c = 1; c < node.children.size(); ++c) {
          const Value* child =
              value.data() + static_cast<size_t>(node.children[c]) * num_w;
          for (int k = 0; k < num_w; ++k) {
            if (IsZeroValue(out[k])) continue;
            out[k] *= child[k];
          }
        }
        break;
      }
      case NnfKind::kDecision: {
        const Value* p = column(node.var) + k0;
        const Value* q =
            complement + static_cast<size_t>(node.var) * num_k + k0;
        const Value* high =
            value.data() + static_cast<size_t>(node.high) * num_w;
        const Value* low =
            value.data() + static_cast<size_t>(node.low) * num_w;
        for (int k = 0; k < num_w; ++k) {
          // p·high + q·low through the in-place operators: no allocation
          // beyond the two products for Value types with heap state.
          Value t = p[k];
          t *= high[k];
          Value u = q[k];
          u *= low[k];
          t += u;
          out[k] = std::move(t);
        }
        break;
      }
    }
  }
  Value* root = value.data() + static_cast<size_t>(root_) * num_w;
  for (int k = 0; k < num_w; ++k) out_roots[k0 + k] = std::move(root[k]);
}

template <typename Value, typename ColumnFn>
std::vector<Value> NnfCircuit::EvaluateBatchArena(int num_k, int num_threads,
                                                  ColumnFn column,
                                                  const Value* complement,
                                                  const Value& one) const {
  std::vector<Value> result(num_k);
  ParallelFor(num_k, num_threads, kMinColumnsPerSlice,
              [&](int64_t k0, int64_t k1, int /*chunk*/) {
                EvaluateBatchSlice<Value>(static_cast<int>(k0),
                                          static_cast<int>(k1), num_k, column,
                                          complement, one, result.data());
              });
  return result;
}

std::vector<Rational> NnfCircuit::EvaluateBatch(const WeightMatrix& weights,
                                                int num_threads) const {
  GMC_CHECK(weights.num_vars() >= num_vars_);
  const int num_k = weights.num_vectors();

  // Complements 1 − p, computed once per (variable, vector) for exactly the
  // variables that head a decision node. Column layout mirrors the weight
  // matrix. Chunked over variables: each chunk owns a disjoint slice.
  const std::vector<bool> decides = DecisionVars();
  std::vector<Rational> complement(static_cast<size_t>(num_vars_) * num_k);
  ParallelFor(num_vars_, num_threads, kMinVarsPerChunk,
              [&](int64_t v0, int64_t v1, int /*chunk*/) {
                for (int64_t v = v0; v < v1; ++v) {
                  if (!decides[v]) continue;
                  const Rational* p = weights.Column(static_cast<int>(v));
                  Rational* out =
                      complement.data() + static_cast<size_t>(v) * num_k;
                  for (int k = 0; k < num_k; ++k) {
                    out[k] = Rational::One() - p[k];
                  }
                }
              });

  return EvaluateBatchArena<Rational>(
      num_k, num_threads,
      [&weights](int var) { return weights.Column(var); }, complement.data(),
      Rational::One());
}

std::vector<Rational> NnfCircuit::EvaluateBatchDyadicBig(
    const WeightMatrix& weights, int num_threads) const {
  GMC_CHECK(weights.num_vars() >= num_vars_);
  const int num_k = weights.num_vectors();

  // Weight columns converted once, then raised to a per-variable common
  // exponent (batch-level normalization): every add over a column aligns
  // for free and the decision complements share one 2^E. Conversion and
  // complements chunk over variables — disjoint column slices per chunk.
  std::vector<Dyadic> probability(static_cast<size_t>(num_vars_) * num_k);
  const std::vector<bool> decides = DecisionVars();
  std::vector<Dyadic> complement(static_cast<size_t>(num_vars_) * num_k);
  ParallelFor(
      num_vars_, num_threads, kMinVarsPerChunk,
      [&](int64_t v0, int64_t v1, int /*chunk*/) {
        for (int64_t v = v0; v < v1; ++v) {
          const Rational* p = weights.Column(static_cast<int>(v));
          Dyadic* out = probability.data() + static_cast<size_t>(v) * num_k;
          for (int k = 0; k < num_k; ++k) {
            std::optional<Dyadic> value = Dyadic::FromRational(p[k]);
            GMC_CHECK_MSG(value.has_value(),
                          "EvaluateBatchDyadic needs all-dyadic weights "
                          "(WeightMatrix::AllDyadic)");
            out[k] = std::move(*value);
          }
          Dyadic::AlignExponents(out, static_cast<size_t>(num_k));
          if (!decides[v]) continue;
          Dyadic* comp = complement.data() + static_cast<size_t>(v) * num_k;
          for (int k = 0; k < num_k; ++k) comp[k] = out[k].OneMinus();
        }
      });

  const Dyadic one = Dyadic::One();
  std::vector<Dyadic> roots = EvaluateBatchArena<Dyadic>(
      num_k, num_threads,
      [&probability, num_k](int var) {
        return probability.data() + static_cast<size_t>(var) * num_k;
      },
      complement.data(), one);
  std::vector<Rational> result;
  result.reserve(num_k);
  for (const Dyadic& root : roots) result.push_back(root.ToRational());
  return result;
}

std::vector<double> NnfCircuit::EvaluateBatchDouble(
    const WeightMatrix& weights, int recheck_stride, double recheck_tolerance,
    int num_threads) const {
  GMC_CHECK(weights.num_vars() >= num_vars_);
  const int num_k = weights.num_vectors();

  // The weight columns, converted once; BigInt never appears in the pass.
  std::vector<double> probability(static_cast<size_t>(num_vars_) * num_k);
  const std::vector<bool> decides = DecisionVars();
  std::vector<double> complement(static_cast<size_t>(num_vars_) * num_k,
                                 0.0);
  ParallelFor(num_vars_, num_threads, kMinVarsPerChunk,
              [&](int64_t v0, int64_t v1, int /*chunk*/) {
                for (int64_t v = v0; v < v1; ++v) {
                  const Rational* p = weights.Column(static_cast<int>(v));
                  double* out =
                      probability.data() + static_cast<size_t>(v) * num_k;
                  for (int k = 0; k < num_k; ++k) out[k] = p[k].ToDouble();
                  if (!decides[v]) continue;
                  double* comp =
                      complement.data() + static_cast<size_t>(v) * num_k;
                  for (int k = 0; k < num_k; ++k) comp[k] = 1.0 - out[k];
                }
              });

  std::vector<double> result = EvaluateBatchArena<double>(
      num_k, num_threads,
      [&probability, num_k](int var) {
        return probability.data() + static_cast<size_t>(var) * num_k;
      },
      complement.data(), 1.0);

  if (recheck_stride > 0) {
    // Re-checks are the expensive half (one exact Evaluate each), and each
    // checks one column independently — chunk them over the pool too.
    const int num_checks = (num_k + recheck_stride - 1) / recheck_stride;
    ParallelFor(num_checks, num_threads, 1,
                [&](int64_t c0, int64_t c1, int /*chunk*/) {
                  for (int64_t c = c0; c < c1; ++c) {
                    const int k = static_cast<int>(c) * recheck_stride;
                    const double exact = Evaluate(weights.Row(k)).ToDouble();
                    const double scale = std::max(1.0, std::abs(exact));
                    GMC_CHECK_MSG(
                        std::abs(result[k] - exact) <=
                            recheck_tolerance * scale,
                        "EvaluateBatchDouble drifted from the exact "
                        "evaluator");
                  }
                });
  }
  return result;
}

NnfCircuit::Stats NnfCircuit::ComputeStats() const {
  Stats stats;
  stats.num_nodes = nodes_.size();
  std::vector<int> depth(nodes_.size(), 0);
  for (size_t id = 0; id < nodes_.size(); ++id) {
    const NnfNode& node = nodes_[id];
    switch (node.kind) {
      case NnfKind::kFalse:
      case NnfKind::kTrue:
        break;
      case NnfKind::kVar:
        ++stats.var_nodes;
        break;
      case NnfKind::kAnd:
        ++stats.and_nodes;
        stats.edges += node.children.size();
        for (int child : node.children) {
          depth[id] = std::max(depth[id], depth[child] + 1);
        }
        break;
      case NnfKind::kDecision:
        ++stats.decision_nodes;
        stats.edges += 2;
        depth[id] = std::max(depth[node.high], depth[node.low]) + 1;
        break;
    }
  }
  stats.depth = depth[root_];
  return stats;
}

std::vector<std::vector<int>> NnfCircuit::Supports() const {
  std::vector<std::vector<int>> support(nodes_.size());
  auto merge_into = [](std::vector<int>& out, const std::vector<int>& in) {
    std::vector<int> merged;
    merged.reserve(out.size() + in.size());
    std::merge(out.begin(), out.end(), in.begin(), in.end(),
               std::back_inserter(merged));
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    out = std::move(merged);
  };
  for (size_t id = 0; id < nodes_.size(); ++id) {
    const NnfNode& node = nodes_[id];
    switch (node.kind) {
      case NnfKind::kFalse:
      case NnfKind::kTrue:
        break;
      case NnfKind::kVar:
        support[id] = {node.var};
        break;
      case NnfKind::kAnd:
        for (int child : node.children) {
          merge_into(support[id], support[child]);
        }
        break;
      case NnfKind::kDecision:
        merge_into(support[id], support[node.high]);
        merge_into(support[id], support[node.low]);
        merge_into(support[id], {node.var});
        break;
    }
  }
  return support;
}

bool NnfCircuit::CheckDecomposable() const {
  const std::vector<std::vector<int>> support = Supports();
  for (const NnfNode& node : nodes_) {
    if (node.kind != NnfKind::kAnd) continue;
    size_t total = 0;
    std::vector<int> merged;
    for (int child : node.children) {
      total += support[child].size();
      merged.insert(merged.end(), support[child].begin(),
                    support[child].end());
    }
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    if (merged.size() != total) return false;  // some variable was shared
  }
  return true;
}

bool NnfCircuit::CheckDeterministic() const {
  const std::vector<std::vector<int>> support = Supports();
  for (const NnfNode& node : nodes_) {
    if (node.kind != NnfKind::kDecision) continue;
    const std::vector<int>& high = support[node.high];
    const std::vector<int>& low = support[node.low];
    if (std::binary_search(high.begin(), high.end(), node.var)) return false;
    if (std::binary_search(low.begin(), low.end(), node.var)) return false;
  }
  return true;
}

std::vector<bool> NnfCircuit::Reachable() const {
  std::vector<bool> reachable(nodes_.size(), false);
  std::vector<int> stack = {root_};
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    if (reachable[id]) continue;
    reachable[id] = true;
    const NnfNode& node = nodes_[id];
    if (node.kind == NnfKind::kAnd) {
      for (int child : node.children) stack.push_back(child);
    } else if (node.kind == NnfKind::kDecision) {
      stack.push_back(node.high);
      stack.push_back(node.low);
    }
  }
  return reachable;
}

void NnfCircuit::PruneUnreachable() {
  std::vector<bool> reachable = Reachable();
  reachable[0] = reachable[1] = true;  // constants keep their fixed ids
  std::vector<int> remap(nodes_.size(), -1);
  std::vector<NnfNode> kept;
  kept.reserve(nodes_.size());
  for (size_t id = 0; id < nodes_.size(); ++id) {
    if (!reachable[id]) continue;
    remap[id] = static_cast<int>(kept.size());
    kept.push_back(std::move(nodes_[id]));
  }
  // Ascending-id compaction keeps children before parents.
  for (NnfNode& node : kept) {
    if (node.kind == NnfKind::kDecision) {
      node.high = remap[node.high];
      node.low = remap[node.low];
    }
    for (int& child : node.children) child = remap[child];
  }
  nodes_ = std::move(kept);
  root_ = remap[root_];
  unique_.clear();
  for (size_t id = 2; id < nodes_.size(); ++id) {
    unique_[HashNode(nodes_[id])].push_back(static_cast<int>(id));
  }
}

std::string NnfCircuit::ToDot() const {
  std::string out = "digraph nnf {\n  rankdir=BT;\n";
  const std::vector<bool> reachable = Reachable();
  for (size_t id = 0; id < nodes_.size(); ++id) {
    if (!reachable[id]) continue;
    const NnfNode& node = nodes_[id];
    const std::string name = "n" + std::to_string(id);
    switch (node.kind) {
      case NnfKind::kFalse:
        out += "  " + name + " [label=\"0\", shape=box];\n";
        break;
      case NnfKind::kTrue:
        out += "  " + name + " [label=\"1\", shape=box];\n";
        break;
      case NnfKind::kVar:
        out += "  " + name + " [label=\"x" + std::to_string(node.var) +
               "\", shape=box];\n";
        break;
      case NnfKind::kAnd:
        out += "  " + name + " [label=\"AND\"];\n";
        for (int child : node.children) {
          out += "  n" + std::to_string(child) + " -> " + name + ";\n";
        }
        break;
      case NnfKind::kDecision:
        out += "  " + name + " [label=\"x" + std::to_string(node.var) +
               "?\", shape=diamond];\n";
        out += "  n" + std::to_string(node.high) + " -> " + name +
               " [label=\"1\"];\n";
        out += "  n" + std::to_string(node.low) + " -> " + name +
               " [label=\"0\", style=dashed];\n";
        break;
    }
  }
  out += "}\n";
  return out;
}

}  // namespace gmc
