// GmcOptions — the one configuration surface of the evaluation stack.
//
// Every knob added since the batch-evaluation work (threads, Shannon
// order, dyadic routing, persistent store) had been copy-pasted as
// parallel set_* setters across CircuitCache / SafeEvaluator / WmcEngine /
// GfomcSession; the anytime tier would have added five more (ε, δ, compile
// budget, sample cap, routing mode). This header replaces that pattern
// with a single value struct: each class exposes one
// Configure(const GmcOptions&) that applies the fields it understands, the
// legacy setters survive as thin wrappers over Configure, and every
// environment default (GMC_THREADS / GMC_ORDER / GMC_STORE) is resolved in
// exactly one place, GmcOptions::FromEnv().
//
// The struct lives at the compile layer (the lowest consumer is
// CircuitCache) and is plain data — copying is cheap, and a caller can
// snapshot, tweak one field, and re-Configure atomically.

#ifndef GMC_COMPILE_GMC_OPTIONS_H_
#define GMC_COMPILE_GMC_OPTIONS_H_

#include <cstdint>
#include <string>

#include "approx/anytime_defaults.h"
#include "compile/vtree.h"

namespace gmc {

/// Resource caps for one d-DNNF compilation (Compiler::TryCompile). A zero
/// field means "unlimited"; a default-constructed budget allows everything
/// (the legacy Compile behaviour). Node and call caps are deterministic —
/// the same CNF under the same budget always succeeds or always fails —
/// while the wall-clock cap trades that determinism for a hard latency
/// bound; the routing tests pin tier selection with the deterministic caps
/// only.
struct CompileBudget {
  uint64_t max_nodes = 0;   ///< cap on circuit nodes built (0 = unlimited)
  uint64_t max_calls = 0;   ///< cap on CompileNode invocations
  uint64_t max_millis = 0;  ///< wall-clock cap on one Compile call

  bool Unlimited() const {
    return max_nodes == 0 && max_calls == 0 && max_millis == 0;
  }
  /// True iff `other` allows strictly more work on at least one axis — the
  /// retry rule for structures that already exhausted a budget.
  bool AllowsMoreThan(const CompileBudget& other) const;
};

/// The deterministic default budget of RoutingMode::kAuto: generous enough
/// that every gadget-scale circuit in the test corpus compiles, small
/// enough that a blow-up is cut off in well under a second.
CompileBudget DefaultCompileBudget();

/// How GfomcSession routes unsafe queries (safe queries always take the
/// lifted PTIME plan; it is exact and polynomial, so there is nothing to
/// trade away).
enum class RoutingMode : uint8_t {
  /// Legacy two-way behaviour: exact always. Compact lineages compile
  /// (unboundedly), oversized ones fall back to the recursive engine —
  /// worst-case exponential, never approximate. With a finite
  /// compile_budget the checked API reports kBudgetExhausted instead of
  /// recursing past the budget.
  kExact = 0,
  /// Three-way: try a budgeted compile; inside budget → exact circuit
  /// evaluation, past it → the Karp–Luby (ε, δ) sampler. The production
  /// default: large unsafe instances degrade to a certified estimate
  /// instead of an OOM.
  kAuto,
  /// Like kAuto, but instances that do compile are answered with the
  /// directed-rounding interval walk (a certified [lo, hi] enclosure)
  /// instead of the exact BigInt pass — the fast certified tier for
  /// sweeps that need guarantees, not exact rationals.
  kInterval,
  /// Every unsafe instance goes straight to the sampler (no compile
  /// probe) — predictable latency, and the knob the calibration tests and
  /// benchmarks use to pin the sampled tier.
  kSample,
};

/// Stable lowercase name: "exact" / "auto" / "interval" / "sample" — the
/// vocabulary of the EVAL_APPROX wire verb's mode field.
const char* RoutingModeName(RoutingMode mode);
/// Parses a mode name. Returns false and leaves *out untouched on unknown
/// or null input.
bool ParseRoutingMode(const char* name, RoutingMode* out);

/// The unified option set. Field groups, with their consumers:
///   CircuitCache:  num_threads, order, dyadic_enabled, store_directory,
///                  store_write_through
///   SafeEvaluator / WmcEngine: forward the above to their embedded cache
///   GfomcSession:  all of the above plus routing_mode, compile_budget,
///                  epsilon, delta, max_samples, sample_seed,
///                  sample_threads, sample_plan_entries
/// Configure(options) on any of those classes applies the fields that
/// class understands and ignores the rest, so one options value can
/// configure the whole stack.
struct GmcOptions {
  /// Worker bound for batched circuit passes: 0 defers to the process
  /// default (the GMC_THREADS environment variable, else the hardware
  /// thread count), 1 forces serial, n allows at most n column slices.
  /// Results are bit-identical at every setting.
  int num_threads = 0;
  /// Shannon-order heuristic for newly compiled circuits (circuit size
  /// only; results are bit-identical under every heuristic).
  OrderHeuristic order = OrderHeuristic::kDefault;
  /// Dyadic fast-path routing for all-power-of-two-denominator batches
  /// (bit-identical either way; the knob exists for A/B cross-checks).
  bool dyadic_enabled = true;
  /// Persistent circuit store root ("" = no store), read-through on every
  /// compile miss and — when store_write_through — write-through on every
  /// fresh compile.
  std::string store_directory;
  bool store_write_through = true;
  /// Self-healing store reads (on by default): a read-path rejection whose
  /// file is durably corrupt quarantines the file (store/scrub.h) instead
  /// of leaving it to be re-read, re-rejected, and re-compiled by every
  /// cold process forever. Valid-but-mismatched files (hash collisions)
  /// are never quarantined regardless of this flag. GMC_STORE_SELF_HEAL=0
  /// disables (a read-only store mount must not be written to).
  bool store_self_heal = true;

  /// Routing-mode and anytime-tier knobs (GfomcSession only; see
  /// docs/ANYTIME.md for the guarantee semantics).
  RoutingMode routing_mode = RoutingMode::kAuto;
  /// Compile budget for routing probes. Default: DefaultCompileBudget().
  /// kExact ignores it through the legacy (unchecked) entry points.
  CompileBudget compile_budget = DefaultCompileBudget();
  /// Sampler target: with probability >= 1 - delta the estimate is within
  /// epsilon * Pr(lineage fails) <= epsilon of the exact probability.
  /// Defaults shared with KarpLubyParams via approx/anytime_defaults.h
  /// (precedence is documented in approx/karp_luby.h).
  double epsilon = kDefaultSampleEpsilon;
  double delta = kDefaultSampleDelta;
  /// Hard cap on samples per instance (0 = derived from epsilon/delta).
  /// When the cap binds, the answer reports the larger epsilon it actually
  /// achieved — the anytime contract.
  uint64_t max_samples = kDefaultMaxSamples;
  /// Base PRNG seed; per-instance streams derive deterministically from it
  /// and the lineage structure, so fixed-seed runs reproduce exactly.
  uint64_t sample_seed = kDefaultSampleSeed;
  /// Worker bound for the chunk-parallel Karp–Luby sample loop: 0 follows
  /// num_threads (whose own 0 defers to the process default), n caps the
  /// sampler independently of the circuit passes. Results are
  /// bit-identical at every setting — the sampler's substreams are indexed
  /// by sample chunk, never by worker (see approx/karp_luby.h).
  int sample_threads = 0;
  /// Capacity of the session's KarpLubyPlan cache, in plans (0 disables):
  /// same-structure sampled requests reuse one exact disjunct-weight
  /// prefix-sum build instead of paying it per request.
  uint64_t sample_plan_entries = kDefaultSamplePlanEntries;

  /// End-to-end wall-clock deadline per checked request, in milliseconds
  /// (0 = none). One CancelToken armed with this deadline covers grounding,
  /// the compile probe, every arena evaluation pass, and the sampler; when
  /// it fires, EvaluateAnswer returns kDeadlineExceeded (exact tiers) or
  /// the sampler's achieved-ε anytime report (sampled tier). Unlike
  /// compile_budget.max_millis — which stops only the compiler — this
  /// deadline bounds the whole request (GfomcSession only).
  uint64_t deadline_ms = 0;

  /// Byte cap on circuits resident in the CircuitCache (0 = unlimited).
  /// Past the cap the least-recently-used circuits are evicted; in-flight
  /// evaluations hold shared_ptr pins, so eviction frees memory without
  /// ever invalidating a running pass. Evicted-but-persisted circuits
  /// degrade to store read-through hits, not recompiles.
  uint64_t max_resident_bytes = 0;

  /// The process-environment defaults, resolved in one place: GMC_ORDER →
  /// order, GMC_STORE → store_directory, GMC_THREADS → (deliberately) a
  /// num_threads of 0, because 0 already means "defer to the process
  /// default", which util/parallel resolves from GMC_THREADS at use time —
  /// keeping late SetDefaultNumThreads overrides effective. Routing knobs:
  /// GMC_ROUTING (exact/auto/interval/sample), GMC_BUDGET_NODES /
  /// GMC_BUDGET_CALLS / GMC_BUDGET_MS (unsigned; 0 = unlimited),
  /// GMC_EPSILON / GMC_DELTA (decimals strictly in (0, 1)),
  /// GMC_MAX_SAMPLES and GMC_SEED (unsigned), GMC_SAMPLE_THREADS →
  /// sample_threads (positive, clamped to the pool maximum; 0/unset keeps
  /// the num_threads-following default) and GMC_PLAN_ENTRIES →
  /// sample_plan_entries (unsigned; 0 disables the plan cache),
  /// GMC_DEADLINE_MS → deadline_ms and GMC_CACHE_BYTES →
  /// max_resident_bytes (unsigned; 0 = off), GMC_STORE_SELF_HEAL →
  /// store_self_heal (0/false/off to disable). Unset or malformed values
  /// keep the struct defaults. Every default-constructed CircuitCache /
  /// session Configures itself with this value.
  static GmcOptions FromEnv();
};

}  // namespace gmc

#endif  // GMC_COMPILE_GMC_OPTIONS_H_
