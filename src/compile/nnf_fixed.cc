// Fixed-width dyadic batch kernels and the width-routing front end of the
// dyadic walk (WalkEvaluateBatchDyadic, which NnfCircuit::
// EvaluateBatchDyadic and the store's MappedCircuitView both delegate to).
//
// The key invariant (see util/dyadic_fixed.h): every node value of a
// weighted model count over probabilities in [0, 1] is itself a
// probability, so a node holding v = m · 2^-E has 0 <= m <= 2^E. Node
// exponents depend only on the circuit and the per-variable weight
// exponents — NOT on the weights' mantissas — so one bottom-up fold
// (FoldDyadicExponents) bounds every mantissa the pass will ever hold
// BEFORE evaluating. When the bound fits a machine word, the whole batch
// runs on structure-of-arrays mantissa columns:
//
//   * per-node uniform exponents — the alignment shifts of a decision
//     node's two products are the same for all K columns, so the inner
//     loops carry no per-element branches and no per-element overflow
//     checks (the fold already proved overflow impossible);
//   * complements 2^E − m are a branch-free subtract from a hoisted
//     constant;
//   * products and sums are single (uint64) or two-limb (UInt128) integer
//     ops on contiguous arrays — the form compilers auto-vectorize.
//
// Batches whose global bound is too wide are re-examined per column (a
// column's own weight exponents give a private, often much smaller bound):
// columns that fit a fixed width individually run through the fixed kernel
// one at a time, and only the remainder pays for the BigInt Dyadic arena.
// Every path is exact; results are bit-identical across paths, widths, and
// thread counts.

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "compile/nnf.h"
#include "compile/nnf_walk.h"
#include "util/check.h"
#include "util/dyadic_fixed.h"
#include "util/parallel.h"

namespace gmc {

namespace {

std::atomic<bool> g_fixed_width_default_enabled{true};

// Exponent saturation cap: far above any width the fixed kernels accept,
// far below uint64 wraparound even when summed over a whole circuit.
constexpr uint64_t kExponentCap = uint64_t{1} << 32;

constexpr uint64_t kFixed64MaxExponent = 63;
constexpr uint64_t kFixed128MaxExponent = 127;

// Columns per slice for the fixed kernels: cheaper per column than the
// BigInt arena, so slices need more columns to amortize their arena.
constexpr int64_t kMinFixedColumnsPerSlice = 16;
// Deadline-poll stride, mirroring nnf_walk.cc's arena loops.
constexpr size_t kCancelNodeStride = 64;

uint64_t SaturatingAdd(uint64_t a, uint64_t b) {
  return std::min(kExponentCap, std::min(kExponentCap, a) + b);
}

// Exponent of a dyadic Rational's denominator (0 for integers). The
// caller has checked AllDyadic, so the denominator is 1 or a power of two.
uint64_t DenominatorExponent(const Rational& value) {
  const BigInt& den = value.denominator();
  return den.IsOne() ? 0 : den.BitLength() - 1;
}

// ----- word-level ops, uniform across uint64_t and UInt128 ---------------

inline uint64_t WordMul(uint64_t a, uint64_t b) { return a * b; }
inline UInt128 WordMul(UInt128 a, UInt128 b) { return UInt128::Mul(a, b); }
inline uint64_t WordShl(uint64_t a, unsigned s) { return a << s; }
inline UInt128 WordShl(UInt128 a, unsigned s) { return a.Shl(s); }

template <typename M>
M WordFromBigInt(const BigInt& value);
template <>
uint64_t WordFromBigInt<uint64_t>(const BigInt& value) {
  return value.Bits64At(0);
}
template <>
UInt128 WordFromBigInt<UInt128>(const BigInt& value) {
  return UInt128::FromBigInt(value);
}

Rational WordToRational(uint64_t mantissa, uint64_t exponent) {
  if (mantissa == 0) return Rational::Zero();
  const uint64_t strip = std::min(
      static_cast<uint64_t>(std::countr_zero(mantissa)), exponent);
  const uint64_t m = mantissa >> strip;
  // m is odd or the denominator is 1, so the parts are already coprime.
  BigInt numerator(static_cast<int64_t>(m >> 1));
  numerator.ShiftLeftInPlace(1);
  numerator += BigInt(static_cast<int64_t>(m & 1));
  return Rational::FromReducedParts(std::move(numerator),
                                    BigInt(1).ShiftLeft(exponent - strip));
}

Rational WordToRational(UInt128 mantissa, uint64_t exponent) {
  if (mantissa.IsZero()) return Rational::Zero();
  const uint64_t strip =
      std::min(static_cast<uint64_t>(mantissa.CountTrailingZeros()), exponent);
  return Rational::FromReducedParts(
      mantissa.Shr(static_cast<unsigned>(strip)).ToBigInt(),
      BigInt(1).ShiftLeft(exponent - strip));
}

// FoldDyadicExponents propagates per-variable weight exponents bottom-up
// (saturating), filling one exponent per node, and returns the maximum —
// the mantissa-width bound that picks the kernel.
uint64_t FoldDyadicExponents(const CircuitWalkView& view,
                             const std::vector<uint64_t>& var_exp,
                             std::vector<uint64_t>* node_exp) {
  node_exp->assign(view.num_nodes, 0);
  uint64_t max_exp = 0;
  for (size_t id = 0; id < view.num_nodes; ++id) {
    const FlatNode& node = view.nodes[id];
    uint64_t e = 0;
    switch (static_cast<NnfKind>(node.kind)) {
      case NnfKind::kFalse:
      case NnfKind::kTrue:
        break;
      case NnfKind::kVar:
        e = var_exp[node.var];
        break;
      case NnfKind::kAnd: {
        const int32_t* child_ids = view.children + node.a;
        for (int32_t c = 0; c < node.b; ++c) {
          e = SaturatingAdd(e, (*node_exp)[child_ids[c]]);
        }
        break;
      }
      case NnfKind::kDecision:
        e = SaturatingAdd(
            var_exp[node.var],
            std::max((*node_exp)[node.a], (*node_exp)[node.b]));
        break;
    }
    (*node_exp)[id] = e;
    max_exp = std::max(max_exp, e);
  }
  return max_exp;
}

// EvaluateBatchDyadicFixed runs the whole batch on `M` mantissas
// (uint64_t or UInt128) under the folded exponents.
template <typename M>
std::vector<Rational> EvaluateBatchDyadicFixed(
    const CircuitWalkView& view, const WeightMatrix& weights, int num_threads,
    const std::vector<uint64_t>& var_exp,
    const std::vector<uint64_t>& node_exp, const CancelToken* cancel) {
  const int num_k = weights.num_vectors();
  const int num_vars = view.num_vars;

  // SoA weight columns, aligned per variable to var_exp[v], plus the
  // complement columns 2^E − m for decision variables — all branch-free.
  // Variables no node mentions are skipped: the pass never reads them, and
  // their exponents are outside the fold's width guarantee.
  std::vector<bool> used(static_cast<size_t>(num_vars), false);
  for (size_t id = 0; id < view.num_nodes; ++id) {
    const FlatNode& node = view.nodes[id];
    const NnfKind kind = static_cast<NnfKind>(node.kind);
    if (kind == NnfKind::kVar || kind == NnfKind::kDecision) {
      used[node.var] = true;
    }
  }
  std::vector<M> probability(static_cast<size_t>(num_vars) * num_k);
  std::vector<M> complement(static_cast<size_t>(num_vars) * num_k);
  const std::vector<bool> decides = walk_internal::WalkDecisionVars(view);
  ParallelFor(
      num_vars, num_threads, 8,
      [&](int64_t v0, int64_t v1, int /*chunk*/) {
        for (int64_t v = v0; v < v1; ++v) {
          if (!used[v]) continue;
          const Rational* column = weights.Column(static_cast<int>(v));
          const uint64_t target = var_exp[v];
          M* out = probability.data() + static_cast<size_t>(v) * num_k;
          for (int k = 0; k < num_k; ++k) {
            const uint64_t e = DenominatorExponent(column[k]);
            out[k] = WordShl(WordFromBigInt<M>(column[k].numerator()),
                             static_cast<unsigned>(target - e));
          }
          if (!decides[v]) continue;
          const M one_at_e = WordShl(M(1), static_cast<unsigned>(target));
          M* comp = complement.data() + static_cast<size_t>(v) * num_k;
          for (int k = 0; k < num_k; ++k) comp[k] = one_at_e - out[k];
        }
      });

  // The topological pass, column-sliced over the pool. Each slice owns a
  // contiguous nodes × W mantissa arena; exponents are shared per node.
  std::vector<M> roots(num_k);
  ParallelFor(
      num_k, num_threads, kMinFixedColumnsPerSlice,
      [&](int64_t k0_64, int64_t k1_64, int /*chunk*/) {
        const int k0 = static_cast<int>(k0_64);
        const int num_w = static_cast<int>(k1_64 - k0_64);
        std::vector<M> value(view.num_nodes * num_w);
        for (size_t id = 0; id < view.num_nodes; ++id) {
          if (cancel != nullptr && (id % kCancelNodeStride) == 0 &&
              cancel->Poll()) {
            return;  // caller discards the batch — nnf_walk.h contract
          }
          const FlatNode& node = view.nodes[id];
          M* out = value.data() + id * num_w;
          switch (static_cast<NnfKind>(node.kind)) {
            case NnfKind::kFalse:
              break;  // zero-initialized
            case NnfKind::kTrue:
              for (int k = 0; k < num_w; ++k) out[k] = M(1);
              break;
            case NnfKind::kVar: {
              const M* p = probability.data() +
                           static_cast<size_t>(node.var) * num_k + k0;
              for (int k = 0; k < num_w; ++k) out[k] = p[k];
              break;
            }
            case NnfKind::kAnd: {
              const int32_t* child_ids = view.children + node.a;
              const M* first =
                  value.data() + static_cast<size_t>(child_ids[0]) * num_w;
              for (int k = 0; k < num_w; ++k) out[k] = first[k];
              for (int32_t c = 1; c < node.b; ++c) {
                const M* child =
                    value.data() + static_cast<size_t>(child_ids[c]) * num_w;
                for (int k = 0; k < num_w; ++k) {
                  out[k] = WordMul(out[k], child[k]);
                }
              }
              break;
            }
            case NnfKind::kDecision: {
              const M* p = probability.data() +
                           static_cast<size_t>(node.var) * num_k + k0;
              const M* q = complement.data() +
                           static_cast<size_t>(node.var) * num_k + k0;
              const M* high =
                  value.data() + static_cast<size_t>(node.a) * num_w;
              const M* low =
                  value.data() + static_cast<size_t>(node.b) * num_w;
              // Shift amounts are per NODE, not per element: both branch
              // products rise to the node exponent with one uniform shift
              // each (one of the two is always zero).
              const uint64_t ve = var_exp[node.var];
              const unsigned sa = static_cast<unsigned>(
                  node_exp[id] - (ve + node_exp[node.a]));
              const unsigned sb = static_cast<unsigned>(
                  node_exp[id] - (ve + node_exp[node.b]));
              for (int k = 0; k < num_w; ++k) {
                out[k] = WordShl(WordMul(p[k], high[k]), sa) +
                         WordShl(WordMul(q[k], low[k]), sb);
              }
              break;
            }
          }
        }
        const M* root = value.data() + static_cast<size_t>(view.root) * num_w;
        for (int k = 0; k < num_w; ++k) roots[k0 + k] = root[k];
      });

  // Keep the size contract on cancellation (the caller discards) without
  // converting partial mantissas.
  if (cancel != nullptr && cancel->cancelled()) {
    return std::vector<Rational>(num_k);
  }
  const uint64_t root_exp = node_exp[view.root];
  std::vector<Rational> result;
  result.reserve(num_k);
  for (int k = 0; k < num_k; ++k) {
    result.push_back(WordToRational(roots[k], root_exp));
  }
  return result;
}

}  // namespace

void NnfCircuit::SetFixedWidthDefaultEnabled(bool enabled) {
  g_fixed_width_default_enabled.store(enabled, std::memory_order_relaxed);
}

bool NnfCircuit::FixedWidthDefaultEnabled() {
  return g_fixed_width_default_enabled.load(std::memory_order_relaxed);
}

std::vector<Rational> WalkEvaluateBatchDyadic(const CircuitWalkView& view,
                                              const WeightMatrix& weights,
                                              int num_threads,
                                              DyadicBatchStats* stats,
                                              const CancelToken* cancel) {
  GMC_CHECK(weights.num_vars() >= view.num_vars);
  const int num_k = weights.num_vectors();
  const int num_vars = view.num_vars;
  auto report = [stats](int fixed64, int fixed128, int bigint) {
    if (stats == nullptr) return;
    stats->fixed64_vectors += fixed64;
    stats->fixed128_vectors += fixed128;
    stats->bigint_vectors += bigint;
  };

  // The fixed kernels' probability invariant needs weights in [0, 1];
  // anything else (legal for plain WMC) keeps the BigInt arena.
  bool unit_range = NnfCircuit::FixedWidthDefaultEnabled();
  std::vector<uint64_t> var_exp(static_cast<size_t>(num_vars), 0);
  for (int v = 0; v < num_vars && unit_range; ++v) {
    const Rational* column = weights.Column(v);
    for (int k = 0; k < num_k; ++k) {
      const Rational& p = column[k];
      GMC_CHECK_MSG(p.denominator().IsOne() || p.denominator().IsPowerOfTwo(),
                    "EvaluateBatchDyadic needs all-dyadic weights "
                    "(WeightMatrix::AllDyadic)");
      if (p.sign() < 0 || p.denominator() < p.numerator()) {
        unit_range = false;
        break;
      }
      var_exp[v] = std::max(var_exp[v], DenominatorExponent(p));
    }
  }
  if (!unit_range) {
    report(0, 0, num_k);
    return walk_internal::WalkEvaluateBatchDyadicBig(view, weights,
                                                     num_threads, cancel);
  }

  // Width selection: one fold with the batch-wide per-variable exponents.
  std::vector<uint64_t> node_exp;
  const uint64_t bound = FoldDyadicExponents(view, var_exp, &node_exp);
  if (bound <= kFixed64MaxExponent) {
    report(num_k, 0, 0);
    return EvaluateBatchDyadicFixed<uint64_t>(view, weights, num_threads,
                                              var_exp, node_exp, cancel);
  }
  if (bound <= kFixed128MaxExponent) {
    report(0, num_k, 0);
    return EvaluateBatchDyadicFixed<UInt128>(view, weights, num_threads,
                                             var_exp, node_exp, cancel);
  }

  // Too wide as one batch — classify per column: a column's private
  // exponents often fit a fixed width even when the batch-wide max does
  // not (mixed-precision sweeps). This is the per-column fallback: fixed
  // width where the fold proves it safe, BigInt Dyadic for the rest.
  std::vector<uint64_t> col_exp(static_cast<size_t>(num_vars));
  std::vector<uint64_t> col_node_exp;
  std::vector<int> fits64, fits128, needs_big;
  for (int k = 0; k < num_k; ++k) {
    for (int v = 0; v < num_vars; ++v) {
      col_exp[v] = DenominatorExponent(weights.Column(v)[k]);
    }
    const uint64_t col_bound =
        FoldDyadicExponents(view, col_exp, &col_node_exp);
    if (col_bound <= kFixed64MaxExponent) {
      fits64.push_back(k);
    } else if (col_bound <= kFixed128MaxExponent) {
      fits128.push_back(k);
    } else {
      needs_big.push_back(k);
    }
  }
  // Splitting pays only if it diverts real work off the BigInt arena: when
  // most columns need BigInt anyway, the gather/scatter and the sub-batch
  // bookkeeping cost more than the few diverted columns save — run the
  // whole batch on the arena and keep the pass monolithic.
  if ((fits64.size() + fits128.size()) * 4 < static_cast<size_t>(num_k)) {
    report(0, 0, num_k);
    return walk_internal::WalkEvaluateBatchDyadicBig(view, weights,
                                                     num_threads, cancel);
  }
  report(static_cast<int>(fits64.size()), static_cast<int>(fits128.size()),
         static_cast<int>(needs_big.size()));

  // Gather a column subset into a dense sub-batch.
  auto gather = [&](const std::vector<int>& columns) {
    WeightMatrix sub(static_cast<int>(columns.size()), weights.num_vars());
    for (size_t m = 0; m < columns.size(); ++m) {
      for (int v = 0; v < weights.num_vars(); ++v) {
        sub.Set(static_cast<int>(m), v, weights.Column(v)[columns[m]]);
      }
    }
    return sub;
  };
  std::vector<Rational> result(num_k);
  auto scatter = [&](const std::vector<int>& columns,
                     std::vector<Rational> values) {
    for (size_t m = 0; m < columns.size(); ++m) {
      result[columns[m]] = std::move(values[m]);
    }
  };

  // A gathered fixed-width class re-folds with the CLASS's max exponents:
  // usually the class is exponent-homogeneous and one batch suffices; if
  // the joint bound spills anyway, its columns run one at a time (each
  // one's private fold already proved it safe).
  auto run_fixed_class = [&](const std::vector<int>& columns,
                             uint64_t max_exponent) {
    if (columns.empty()) return;
    WeightMatrix sub = gather(columns);
    std::vector<uint64_t> sub_exp(static_cast<size_t>(num_vars), 0);
    for (int v = 0; v < num_vars; ++v) {
      for (size_t m = 0; m < columns.size(); ++m) {
        sub_exp[v] = std::max(sub_exp[v], DenominatorExponent(
                                              weights.Column(v)[columns[m]]));
      }
    }
    std::vector<uint64_t> sub_node_exp;
    const uint64_t sub_bound =
        FoldDyadicExponents(view, sub_exp, &sub_node_exp);
    if (sub_bound <= max_exponent) {
      std::vector<Rational> values =
          max_exponent <= kFixed64MaxExponent
              ? EvaluateBatchDyadicFixed<uint64_t>(view, sub, num_threads,
                                                   sub_exp, sub_node_exp,
                                                   cancel)
              : EvaluateBatchDyadicFixed<UInt128>(view, sub, num_threads,
                                                  sub_exp, sub_node_exp,
                                                  cancel);
      scatter(columns, std::move(values));
      return;
    }
    for (int k : columns) {
      if (cancel != nullptr && cancel->cancelled()) return;
      std::vector<Rational> one = WalkEvaluateBatchDyadic(
          view, gather({k}), num_threads, nullptr, cancel);
      result[k] = std::move(one[0]);
    }
  };
  run_fixed_class(fits64, kFixed64MaxExponent);
  run_fixed_class(fits128, kFixed128MaxExponent);
  if (!needs_big.empty() && (cancel == nullptr || !cancel->cancelled())) {
    scatter(needs_big, walk_internal::WalkEvaluateBatchDyadicBig(
                           view, gather(needs_big), num_threads, cancel));
  }
  return result;
}

}  // namespace gmc
