// Bottom-up exact compiler: monotone CNF → d-DNNF circuit.
//
// The recursion mirrors WmcEngine exactly — connected-component
// decomposition (independent conjuncts per Lemma B.5; the bipartite gadget
// lineages split eagerly once an articulation tuple is conditioned) and
// Shannon expansion on a most-occurring variable — but emits circuit nodes
// instead of a Rational: components become a decomposable AND, Shannon
// branches a deterministic decision node. Sub-formulas are memoized on the
// canonical 64-bit CNF hash (shared with WmcEngine's memo; see
// Cnf::Hash64), so the compiled circuit is a DAG no larger than the trace
// of one WmcEngine run — and every later Evaluate costs a single linear
// pass instead of re-running the recursion.

#ifndef GMC_COMPILE_COMPILER_H_
#define GMC_COMPILE_COMPILER_H_

#include <cstdint>
#include <unordered_map>

#include "compile/minimize.h"
#include "compile/nnf.h"
#include "lineage/boolean_formula.h"
#include "lineage/grounder.h"

namespace gmc {

class Compiler {
 public:
  struct Stats {
    uint64_t compile_calls = 0;
    uint64_t cache_hits = 0;
    uint64_t component_splits = 0;
    uint64_t shannon_branches = 0;
    // Sweep-and-merge totals (cumulative across Compile calls; equal when
    // minimization is disabled).
    uint64_t minimize_nodes_before = 0;
    uint64_t minimize_nodes_after = 0;
  };

  Compiler() = default;

  // Compiles the CNF into a fresh circuit whose root computes it. Exact for
  // every monotone CNF; worst-case exponential circuit size, as #P-hardness
  // demands. The raw circuit then goes through one sweep-and-merge
  // Minimizer pass (see minimize.h) unless disabled below.
  NnfCircuit Compile(const Cnf& cnf);
  // Lineage convenience: an unsatisfiable lineage compiles to the FALSE
  // circuit. Evaluate with lineage.probabilities (or any other weights).
  NnfCircuit Compile(const Lineage& lineage);

  // Post-compile minimization knob (on by default; benchmarks flip it off
  // to measure the pass's payoff in isolation).
  void set_minimize(bool minimize) { minimize_ = minimize; }
  bool minimize() const { return minimize_; }

  const Stats& stats() const { return stats_; }
  const Minimizer::Stats& minimizer_stats() const {
    return minimizer_.stats();
  }
  void ResetStats() {
    stats_ = Stats();
    minimizer_.ResetStats();
  }

 private:
  int CompileNode(const Cnf& cnf);

  NnfCircuit* circuit_ = nullptr;
  // Sub-CNF -> node id; hashed via Hash64, compared exactly (CnfClauseEq).
  std::unordered_map<Cnf, int, CnfHash, CnfClauseEq> memo_;
  Minimizer minimizer_;
  bool minimize_ = true;
  Stats stats_;
};

}  // namespace gmc

#endif  // GMC_COMPILE_COMPILER_H_
