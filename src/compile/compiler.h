// Bottom-up exact compiler: monotone CNF → d-DNNF circuit.
//
// The recursion mirrors WmcEngine — connected-component decomposition
// (independent conjuncts per Lemma B.5; the bipartite gadget lineages
// split eagerly once an articulation tuple is conditioned) and Shannon
// expansion — but emits circuit nodes instead of a Rational: components
// become a decomposable AND, Shannon branches a deterministic decision
// node. Sub-formulas are memoized on the canonical 64-bit CNF hash (shared
// with WmcEngine's memo; see Cnf::Hash64), so the compiled circuit is a
// DAG no larger than the trace of one recursive run — and every later
// Evaluate costs a single linear pass instead of re-running the recursion.
//
// The Shannon branch variable is chosen by the active OrderHeuristic
// (compile/vtree.h): the legacy most-occurring variable under kDefault, or
// top-down vtree dissection under kMinFill / kBalanced — the knob that
// moves circuit SIZE while results stay bit-identical.

#ifndef GMC_COMPILE_COMPILER_H_
#define GMC_COMPILE_COMPILER_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "compile/gmc_options.h"
#include "compile/minimize.h"
#include "compile/nnf.h"
#include "compile/vtree.h"
#include "lineage/boolean_formula.h"
#include "lineage/grounder.h"
#include "util/cancel.h"

namespace gmc {

/// One-CNF-at-a-time d-DNNF compiler.
///
/// Thread safety: NOT thread-safe — the sub-formula memo and the in-flight
/// circuit pointer are per-instance mutable state. CircuitCache wraps one
/// Compiler behind a mutex; use that (or one Compiler per thread) for
/// concurrent compilation.
///
/// Exactness: the emitted circuit computes the CNF exactly for every
/// weight vector (worst-case exponential size, as #P-hardness demands);
/// Compile is deterministic — same CNF, same order heuristic, same
/// minimize setting → structurally identical circuit.
class Compiler {
 public:
  /// Cumulative counters across Compile calls (ResetStats clears).
  struct Stats {
    uint64_t compile_calls = 0;
    uint64_t cache_hits = 0;
    uint64_t component_splits = 0;
    uint64_t shannon_branches = 0;
    /// Vtrees built — one per Compile call under a non-default heuristic.
    uint64_t vtree_builds = 0;
    /// TryCompile calls that hit a CompileBudget cap and returned nullopt
    /// (the routing probes that sent an instance to the anytime tier).
    uint64_t budget_exhausted = 0;
    /// Compilations stopped by an external CancelToken (request deadline).
    /// Distinct from budget_exhausted: a cancelled compile says nothing
    /// about the instance's hardness, so callers must not memoize it as a
    /// budget failure.
    uint64_t cancelled = 0;
    /// Sweep-and-merge totals (cumulative across Compile calls; equal when
    /// minimization is disabled).
    uint64_t minimize_nodes_before = 0;
    uint64_t minimize_nodes_after = 0;
  };

  Compiler() = default;

  /// Compiles the CNF into a fresh circuit whose root computes it. Exact
  /// for every monotone CNF. The raw circuit then goes through one
  /// sweep-and-merge Minimizer pass (see minimize.h) unless disabled
  /// below. The returned circuit is owned by the caller and holds no
  /// reference back into the compiler.
  ///
  /// `cancel` (optional) is the request-deadline token, polled every few
  /// hundred recursion steps. A cancelled run returns a well-formed but
  /// MEANINGLESS circuit — the caller must check cancel->cancelled() after
  /// every pass it shares a token with and discard on true.
  NnfCircuit Compile(const Cnf& cnf, const CancelToken* cancel = nullptr);
  /// Lineage convenience: an unsatisfiable lineage compiles to the FALSE
  /// circuit. Evaluate with lineage.probabilities (or any other weights).
  NnfCircuit Compile(const Lineage& lineage);

  /// Budgeted compilation — the routing probe of the anytime tier. Returns
  /// the circuit iff the whole compilation (node construction, call count,
  /// wall clock) fits inside `budget`; std::nullopt once any cap is hit
  /// (the partial circuit is discarded and Stats::budget_exhausted ticks).
  /// An unlimited budget is exactly Compile: same circuit, bit for bit.
  /// Node/call caps are deterministic; the wall-clock cap is checked every
  /// few hundred recursion steps, so overshoot is bounded but timing-
  /// dependent. A fired `cancel` token also yields std::nullopt, but ticks
  /// Stats::cancelled instead of budget_exhausted — callers distinguish
  /// the two by checking cancel->cancelled().
  std::optional<NnfCircuit> TryCompile(const Cnf& cnf,
                                       const CompileBudget& budget,
                                       const CancelToken* cancel = nullptr);

  /// Shannon-order selection (default kDefault — the legacy
  /// most-occurring-variable heuristic). Non-default orders build one
  /// Vtree per Compile call from the CNF's primal graph and branch by its
  /// dissection; see compile/vtree.h. Affects circuit size only — results
  /// are bit-identical under every setting. Takes effect on the next
  /// Compile call.
  void set_order(OrderHeuristic order) { order_ = order; }
  OrderHeuristic order() const { return order_; }

  /// Post-compile minimization knob (on by default; benchmarks flip it
  /// off to measure the pass's payoff in isolation).
  void set_minimize(bool minimize) { minimize_ = minimize; }
  bool minimize() const { return minimize_; }

  const Stats& stats() const { return stats_; }
  const Minimizer::Stats& minimizer_stats() const {
    return minimizer_.stats();
  }
  void ResetStats() {
    stats_ = Stats();
    minimizer_.ResetStats();
  }

 private:
  /// Shared body of Compile and TryCompile: one full compilation under
  /// whatever budget state the caller set up.
  NnfCircuit CompileImpl(const Cnf& cnf);
  int CompileNode(const Cnf& cnf);
  /// The Shannon branch variable for `cnf` under the active order:
  /// minimum-decision-rank occurring variable when a vtree is in force,
  /// else the legacy most-occurring variable.
  int BranchVariable(const Cnf& cnf) const;
  /// True once the in-flight budget is spent or the external token fired;
  /// flips budget_exhausted_ / cancelled_ so the recursion unwinds without
  /// building further nodes.
  bool BudgetSpent();

  NnfCircuit* circuit_ = nullptr;
  // In-flight budget state (TryCompile only; Compile runs unbudgeted).
  const CompileBudget* budget_ = nullptr;
  bool budget_exhausted_ = false;
  uint64_t budget_calls_ = 0;
  // The budget's own wall-clock cap (max_millis), armed per TryCompile.
  std::optional<CancelToken> budget_token_;
  // External request-deadline token (both entry points); polling it is
  // amortized on the same every-256-calls stride as the budget clock.
  const CancelToken* cancel_ = nullptr;
  bool cancelled_ = false;
  // Sub-CNF -> node id; hashed via Hash64, compared exactly (CnfClauseEq).
  // Cleared at the top of every Compile, so entries never leak across
  // orders — the memo is keyed consistently under whichever order the
  // in-flight compilation runs.
  std::unordered_map<Cnf, int, CnfHash, CnfClauseEq> memo_;
  // Decision ranks of the in-flight vtree (empty under kDefault).
  std::vector<int> rank_;
  Minimizer minimizer_;
  OrderHeuristic order_ = OrderHeuristic::kDefault;
  bool minimize_ = true;
  Stats stats_;
};

}  // namespace gmc

#endif  // GMC_COMPILE_COMPILER_H_
