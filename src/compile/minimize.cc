#include "compile/minimize.h"

#include <algorithm>
#include <iterator>
#include <utility>
#include <vector>

#include "util/check.h"

namespace gmc {

namespace {

// The branch as a set of conjunct ids: an AND contributes its (sorted)
// children, anything else contributes itself.
std::vector<int> ConjunctsOf(const NnfCircuit& circuit, int id) {
  const NnfNode& node = circuit.nodes()[id];
  if (node.kind == NnfKind::kAnd) return node.children;
  return {id};
}

}  // namespace

NnfCircuit Minimizer::Rebuild(const NnfCircuit& circuit, bool factor,
                              Stats* delta) {
  const std::vector<NnfNode>& nodes = circuit.nodes();

  // Dead-node sweep: only nodes reachable from the root are rebuilt. The
  // reference counts feed the factoring rewrite's orphan prediction.
  std::vector<bool> reachable(nodes.size(), false);
  std::vector<int> refs(nodes.size(), 0);
  std::vector<int> stack = {circuit.root()};
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    if (reachable[id]) continue;
    reachable[id] = true;
    const NnfNode& node = nodes[id];
    if (node.kind == NnfKind::kAnd) {
      for (int child : node.children) {
        ++refs[child];
        stack.push_back(child);
      }
    } else if (node.kind == NnfKind::kDecision) {
      ++refs[node.high];
      ++refs[node.low];
      stack.push_back(node.high);
      stack.push_back(node.low);
    }
  }

  // Bottom-up rebuild: ascending id order visits children before parents,
  // so every node is reconstructed over already-rewritten children and the
  // hash-consing constructors fold and merge as the sweep cascades upward.
  NnfCircuit out;
  std::vector<int> remap(nodes.size(), -1);
  remap[circuit.False()] = out.False();
  remap[circuit.True()] = out.True();
  for (size_t id = 2; id < nodes.size(); ++id) {
    if (!reachable[id]) continue;
    const NnfNode& node = nodes[id];
    const size_t count_before = out.num_nodes();
    int rebuilt = -1;
    switch (node.kind) {
      case NnfKind::kFalse:
      case NnfKind::kTrue:
        GMC_CHECK_MSG(false, "constants live at ids 0 and 1 only");
        break;
      case NnfKind::kVar:
        rebuilt = out.Var(node.var);
        break;
      case NnfKind::kAnd: {
        std::vector<int> children;
        children.reserve(node.children.size());
        for (int child : node.children) {
          const int mapped = remap[child];
          if (out.nodes()[mapped].kind == NnfKind::kAnd) {
            // Flatten: splice a decomposable AND child into its parent
            // (associativity; supports stay pairwise disjoint because the
            // child's support is their union). The spliced child is pruned
            // below if nothing else references it.
            ++delta->flattened_ands;
            const std::vector<int> inner = out.nodes()[mapped].children;
            children.insert(children.end(), inner.begin(), inner.end());
          } else {
            children.push_back(mapped);
          }
        }
        rebuilt = out.And(std::move(children));
        break;
      }
      case NnfKind::kDecision: {
        const int high = remap[node.high];
        const int low = remap[node.low];
        if (factor && high != low) {
          // Common-factor extraction:  v ? X∧r1 : X∧r2  =  X ∧ (v ? r1 : r2).
          // The conjuncts X shared by both branches hoist above the
          // decision; the residual decision is smaller and often merges
          // with a structural twin the compiler's per-CNF memo could not
          // see (different sub-CNFs, identical circuits). Decomposability
          // and determinism survive: X was disjoint from the residuals in
          // the original ANDs and cannot mention the decision variable.
          const std::vector<int> s1 = ConjunctsOf(out, high);
          const std::vector<int> s2 = ConjunctsOf(out, low);
          std::vector<int> shared;
          std::set_intersection(s1.begin(), s1.end(), s2.begin(), s2.end(),
                                std::back_inserter(shared));
          if (!shared.empty()) {
            std::vector<int> r1, r2;
            std::set_difference(s1.begin(), s1.end(), shared.begin(),
                                shared.end(), std::back_inserter(r1));
            std::set_difference(s2.begin(), s2.end(), shared.begin(),
                                shared.end(), std::back_inserter(r2));
            // Only rewrite when the node arithmetic cannot lose: the new
            // cluster (decision + hoisted AND + any residual AND of size
            // ≥ 2) must fit within what dissolving this decision and its
            // single-parent branch ANDs frees up. Hash-consing can only
            // shrink the "added" side further; the final prune deletes the
            // freed nodes.
            const int added = 2 + (r1.size() >= 2 ? 1 : 0) +
                              (r2.size() >= 2 ? 1 : 0);
            const int removed =
                1 +
                (out.nodes()[high].kind == NnfKind::kAnd &&
                         refs[node.high] == 1
                     ? 1
                     : 0) +
                (out.nodes()[low].kind == NnfKind::kAnd && refs[node.low] == 1
                     ? 1
                     : 0);
            if (added <= removed) {
              const int residual = out.Decision(node.var, out.And(r1),
                                                out.And(r2));
              shared.push_back(residual);
              rebuilt = out.And(std::move(shared));
              ++delta->factored_decisions;
            }
          }
        }
        if (rebuilt < 0) {
          rebuilt = out.Decision(node.var, high, low);
        }
        break;
      }
    }
    if (out.num_nodes() == count_before) {
      if (out.nodes()[rebuilt].kind == node.kind) {
        ++delta->merged_nodes;  // hash-cons hit on a structural twin
      } else {
        ++delta->folded_nodes;  // constructor fold (constant, x?a:a, ...)
      }
    }
    remap[id] = rebuilt;
  }
  out.SetRoot(remap[circuit.root()]);
  // Rewrites orphan nodes (a spliced AND no other parent shares, the
  // branches of a factored decision); drop them so every Evaluate pass
  // touches live nodes only.
  out.PruneUnreachable();
  return out;
}

NnfCircuit Minimizer::Minimize(const NnfCircuit& circuit) {
  Stats delta;
  NnfCircuit out = Rebuild(circuit, /*factor=*/true, &delta);
  if (out.num_nodes() > circuit.num_nodes()) {
    // The factoring guard reasons about single-parent orphans locally;
    // adversarial sharing can still defeat it. The plain canonical rebuild
    // provably never grows (each reachable input node yields at most one
    // output node), so fall back to it — minimization must never make a
    // circuit slower to evaluate.
    delta = Stats();
    out = Rebuild(circuit, /*factor=*/false, &delta);
  }
  GMC_CHECK(out.num_nodes() <= circuit.num_nodes());
  stats_.nodes_before += circuit.num_nodes();
  stats_.nodes_after += out.num_nodes();
  stats_.merged_nodes += delta.merged_nodes;
  stats_.folded_nodes += delta.folded_nodes;
  stats_.flattened_ands += delta.flattened_ands;
  stats_.factored_decisions += delta.factored_decisions;
  return out;
}

}  // namespace gmc
