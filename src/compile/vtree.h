// Vtree-guided variable orders for the d-DNNF compiler.
//
// The compiler's circuit SIZE — not its correctness — is at the mercy of
// the Shannon-expansion variable order: deciding the variables of a small
// vertex separator first makes the residual CNF fall apart into connected
// components (decomposable ANDs) instead of deep decision chains. This is
// the classic vtree/dtree lever of the knowledge-compilation literature
// (d-DNNF, SDD). A Vtree here is a full binary tree whose leaves are the
// CNF's variables; its top-down dissection induces the decision order the
// compiler follows: at every Shannon step, branch on the occurring
// variable whose dissection point is highest in the tree.
//
// Two constructions, both built from the CNF's primal graph
// (logic/incidence.h):
//   kMinFill   — reverse min-fill elimination order (the treewidth
//                heuristic), realized as a right-linear vtree; degrades to
//                min-degree ("dtree-style") on dense/huge graphs.
//   kBalanced  — recursive balanced bisection of the clause–variable
//                incidence structure: split the BFS-ordered variables in
//                half, decide the smaller boundary (a vertex separator)
//                first, recurse on the halves.
// kDefault keeps the legacy most-occurring-variable heuristic and builds
// no vtree at all.
//
// Everything here is deterministic: same CNF + same heuristic → same
// vtree, same ranks, same circuit. Evaluation results are bit-identical
// under every heuristic (only the circuit's shape moves); the order-
// invariance tests pin this.

#ifndef GMC_COMPILE_VTREE_H_
#define GMC_COMPILE_VTREE_H_

#include <cstdint>
#include <vector>

#include "lineage/boolean_formula.h"

namespace gmc {

/// Which Shannon-expansion order the compiler uses. kDefault is the legacy
/// most-occurring-variable choice; kMinFill and kBalanced build a Vtree
/// from the CNF's primal graph and follow its dissection.
enum class OrderHeuristic : uint8_t { kDefault = 0, kMinFill, kBalanced };

/// Stable lowercase name of a heuristic: "default" / "minfill" /
/// "balanced" — the vocabulary of the GMC_ORDER environment knob.
const char* OrderHeuristicName(OrderHeuristic order);

/// Parses a heuristic name (the GMC_ORDER vocabulary above). Returns false
/// and leaves *out untouched on unknown or null input.
bool ParseOrderHeuristic(const char* name, OrderHeuristic* out);

/// Process-wide default heuristic for newly constructed CircuitCaches:
/// the GMC_ORDER environment variable (read once; unknown values mean
/// kDefault), unless SetDefaultOrderHeuristic overrode it. Thread-safe.
OrderHeuristic DefaultOrderHeuristic();
/// Overrides the process default (tests and whole-process A/B runs;
/// per-instance CircuitCache::set_order takes precedence as usual).
void SetDefaultOrderHeuristic(OrderHeuristic order);

namespace internal {
/// GMC_ORDER parser, exposed for tests: kDefault on null, empty, or
/// unknown input.
OrderHeuristic ParseOrderSpec(const char* spec);
}  // namespace internal

/// A vtree: full binary tree over the occurring variables of one CNF,
/// plus the decision ranks its dissection induces. Value type — no
/// internal sharing; safe to copy and to read concurrently. Building is
/// polynomial (min-fill dominates at O(n²·d²) worst case, far below the
/// compilation it steers) and entirely deterministic.
class Vtree {
 public:
  /// Tree node: a leaf holds `var` >= 0 and no children; an internal node
  /// holds var == -1 and two valid child indices. Children always precede
  /// parents in nodes().
  struct Node {
    int var = -1;
    int left = -1;
    int right = -1;
    bool IsLeaf() const { return var >= 0; }
  };

  /// Builds the vtree for `cnf` under `heuristic` (must not be kDefault —
  /// the legacy order has no vtree). Constant CNFs yield an empty tree
  /// (root() == -1, no ranks).
  static Vtree Build(const Cnf& cnf, OrderHeuristic heuristic);

  /// Right-linear vtree realizing a linear decision order: order[0] is
  /// decided first. Exposed for tests and for callers with a precomputed
  /// order; `order` must name distinct variables in [0, num_vars).
  static Vtree FromLinearOrder(int num_vars, const std::vector<int>& order);

  /// Root node index, or -1 for the empty tree.
  int root() const { return root_; }
  const std::vector<Node>& nodes() const { return nodes_; }
  /// Number of variable leaves (== number of occurring variables).
  int num_leaves() const { return num_leaves_; }

  /// Per-variable decision rank: rank 0 is decided first; -1 for
  /// variables without a leaf (non-occurring). Ranks are a permutation of
  /// 0..num_leaves()-1. The compiler branches on the minimum-rank
  /// occurring variable of every sub-CNF — top-down vtree dissection.
  const std::vector<int>& decision_rank() const { return rank_; }

  /// Structural audit (tests): every occurring variable has exactly one
  /// leaf, internal nodes have two valid children, children precede
  /// parents, and ranks are a permutation.
  bool CheckWellFormed() const;

 private:
  int AddLeaf(int var);
  int AddInternal(int left, int right);
  /// Recursive balanced-bisection builder over a BFS-ordered variable
  /// subset, in COMPACTED id space (dense ids 0..num_leaves-1, so the
  /// per-call scratch is O(occurring), not O(id space)); `var_of` maps a
  /// dense id back to the original variable for leaves and ranks. Assigns
  /// ranks to separators first. Returns the subtree root.
  int BuildBalanced(const std::vector<std::vector<int>>& adjacency,
                    const std::vector<int>& var_of, std::vector<int> vars,
                    int* next_rank);

  std::vector<Node> nodes_;
  std::vector<int> rank_;
  int root_ = -1;
  int num_leaves_ = 0;
};

}  // namespace gmc

#endif  // GMC_COMPILE_VTREE_H_
