// Public façade: the dichotomy, end to end.
//
// * Classify(Q): the static analysis of Theorem 2.2 — safe queries are
//   PTIME, unsafe ones #P-hard even with probabilities in {0, 1/2, 1}.
// * Gfomc(Q, ∆): one-call probability evaluation. Safe queries route to the
//   lifted PTIME evaluator; unsafe ones fall back to exact (worst-case
//   exponential) weighted model counting, as the dichotomy promises nothing
//   better.
// * GfomcSession: the repeated-query front end. Holds the evaluators (and
//   the CircuitCaches inside them) across calls, so probing the same query
//   at many probability assignments compiles each grounded lineage once and
//   pays a linear circuit pass afterwards; surfaces compile/hit counters.
// * DemonstrateHardness(Q, Φ): constructive witness of #P-hardness for
//   unsafe Type I-I queries — simplifies Q to a final query (Def. 2.8) if
//   needed, then runs the Cook reduction of §3 to count Φ's models through
//   a Pr(Q) oracle.

#ifndef GMC_CORE_DICHOTOMY_H_
#define GMC_CORE_DICHOTOMY_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "approx/karp_luby.h"
#include "compile/gmc_options.h"
#include "compile/nnf_walk.h"
#include "hardness/reduction_type1.h"
#include "logic/bipartite.h"
#include "logic/query.h"
#include "prob/tid.h"
#include "safe/safe_eval.h"
#include "wmc/wmc.h"

namespace gmc {

struct DichotomyReport {
  BipartiteAnalysis analysis;
  bool is_final = false;
  // Human-readable verdict, e.g.
  // "unsafe (length 1, type I-I): GFOMC is #P-hard; final".
  std::string summary;
};

DichotomyReport Classify(const Query& query);

struct GfomcResult {
  Rational probability;
  // True if the lifted PTIME algorithm was used (query safe); false means
  // the exact WMC fallback ran (query unsafe — expected exponential).
  bool used_lifted = false;
};

GfomcResult Gfomc(const Query& query, const Tid& tid);

struct GmcAnswer;
struct GmcStatus;

/// Checked one-shot form of Gfomc: validates inputs, applies `options`, and
/// routes through a throwaway GfomcSession (see
/// GfomcSession::EvaluateAnswer). Repeated-query traffic should hold a
/// session instead — the one-shot form recompiles everything every call.
GmcStatus GfomcChecked(const Query& query, const Tid& tid,
                       const GmcOptions& options, GmcAnswer* answer);

/// Which evaluation tier produced an answer — the three-way routing's
/// receipt. The first three are exact; the last two are the certified
/// anytime tiers (see docs/ANYTIME.md).
enum class AnswerTier : uint8_t {
  kLifted = 0,         ///< safe query, lifted PTIME plan (exact)
  kCompiledExact,      ///< d-DNNF circuit pass (exact)
  kRecursiveExact,     ///< recursive WMC fallback (exact)
  kCertifiedInterval,  ///< directed-rounding enclosure [lo, hi]
  kSampled,            ///< Karp–Luby (ε, δ) estimate
};
/// Stable lowercase name ("lifted" / "compiled" / "recursive" /
/// "interval" / "sampled") — the wire vocabulary of EVAL_APPROX replies.
const char* AnswerTierName(AnswerTier tier);

/// One routed answer: exactly one of the three payloads is meaningful,
/// selected by `tier`.
struct GmcAnswer {
  AnswerTier tier = AnswerTier::kCompiledExact;
  /// Exact tiers (kLifted / kCompiledExact / kRecursiveExact).
  Rational exact;
  /// kCertifiedInterval: a guaranteed enclosure of the exact probability.
  ProbInterval interval;
  /// kSampled: with probability >= 1 - delta, |estimate - exact| <=
  /// epsilon. `epsilon` is the certificate actually achieved (it exceeds
  /// the configured target when max_samples bound — the anytime contract).
  double estimate = 0.0;
  double epsilon = 0.0;
  double delta = 0.0;
  uint64_t samples = 0;

  bool IsExact() const { return tier <= AnswerTier::kRecursiveExact; }
  /// A point estimate regardless of tier: the exact value, the interval
  /// midpoint, or the sampled estimate.
  double PointEstimate() const;
};

/// Typed error surface of the checked session entry points — the
/// replacement for abort-on-bad-input at the public boundary. The
/// pre-validation mirrors (and is shared with) gmc_serve's wire checks:
/// untrusted inputs must never reach a GMC_CHECK abort.
enum class GmcStatusCode : uint8_t {
  kOk = 0,
  kInvalidWeight,    ///< a tuple probability outside [0, 1]
  kInvalidOptions,   ///< epsilon/delta outside (0, 1)
  kBudgetExhausted,  ///< RoutingMode::kExact refused an over-budget instance
  /// The request's end-to-end deadline (GmcOptions::deadline_ms) fired
  /// before an answer was produced. Distinct from kBudgetExhausted: a
  /// deadline says nothing about the instance's hardness, so nothing is
  /// memoized and an unhurried retry is free to succeed. The sampled tier
  /// never reports this — a deadline there degrades to the achieved-ε
  /// anytime certificate instead (see approx/karp_luby.h).
  kDeadlineExceeded,
};
struct GmcStatus {
  GmcStatusCode code = GmcStatusCode::kOk;
  std::string message;  ///< empty on success, human-readable otherwise

  bool ok() const { return code == GmcStatusCode::kOk; }
  static GmcStatus Ok() { return GmcStatus{}; }
  static GmcStatus Error(GmcStatusCode code, std::string message) {
    return GmcStatus{code, std::move(message)};
  }
};

/// Every probability of `tid` (the default and each explicit tuple) is in
/// [0, 1]. This is the session-level mirror of serve.cc's parse-time
/// validation; Rational's own invariants already exclude zero
/// denominators.
GmcStatus ValidateTid(const Tid& tid);

/// The pure tier-selection rules, factored out of the session so the
/// routing pins are testable without evaluators: given the configured mode
/// and whether the budgeted compile probe produced a circuit, which tier
/// answers an UNSAFE instance? (Safe queries always take the lifted or
/// compiled-safe path; safety is PTIME exact, so there is nothing to
/// trade.)
class RoutingPolicy {
 public:
  explicit RoutingPolicy(const GmcOptions& options) : options_(options) {}

  RoutingMode mode() const { return options_.routing_mode; }
  const CompileBudget& budget() const { return options_.compile_budget; }
  /// kSample skips the compile probe entirely.
  bool WantsCompileProbe() const {
    return options_.routing_mode != RoutingMode::kSample;
  }
  /// The tier when the probe produced a circuit: kCompiledExact, except
  /// kInterval mode answers with the certified enclosure.
  AnswerTier TierForCompiled() const {
    return options_.routing_mode == RoutingMode::kInterval
               ? AnswerTier::kCertifiedInterval
               : AnswerTier::kCompiledExact;
  }
  /// The tier when the probe exhausted its budget (or was skipped):
  /// kSampled for the anytime modes. kExact mode has no anytime fallback —
  /// an unlimited budget recurses exactly (kRecursiveExact), a finite one
  /// refuses with kBudgetExhausted (never an unbounded algorithm behind a
  /// bounded-work request); ExhaustedIsError distinguishes the two.
  AnswerTier TierForExhausted() const {
    return options_.routing_mode == RoutingMode::kExact
               ? AnswerTier::kRecursiveExact
               : AnswerTier::kSampled;
  }
  bool ExhaustedIsError() const {
    return options_.routing_mode == RoutingMode::kExact &&
           !options_.compile_budget.Unlimited();
  }

 private:
  GmcOptions options_;
};

// Stateful GFOMC evaluation for repeated-query traffic. One-shot Gfomc()
// rebuilds its evaluators — and loses their compiled circuits — on every
// call; a session keeps the SafeEvaluator and WmcEngine (each backed by a
// CircuitCache) alive, so a workload that probes one query at many
// probability assignments compiles each distinct grounded lineage once.
// Unsafe queries with compact lineages go through the compiled path too;
// oversized lineages fall back to the recursive engine (compilation is
// worst-case exponential, same as recursion, but the recursive engine's
// memo is cheaper when nothing is reused).
//
// Thread safety: a session may be shared across request threads. Calls
// serialize on a session mutex (the evaluators' per-call scratch state —
// the recursive engine's memo, the lifted plan's counters — is not
// concurrency-safe); throughput within each call comes from the
// column-parallel batch passes underneath (set_num_threads), and the
// embedded CircuitCaches are themselves striped-lock thread-safe, so
// sessions sharing nothing but a cache never contend.
class GfomcSession {
 public:
  struct Stats {
    uint64_t queries = 0;
    uint64_t safe_lifted = 0;        // safe, answered by the PTIME plan
    uint64_t safe_compiled = 0;      // safe GFOMC instances, circuit cache
    uint64_t unsafe_compiled = 0;    // unsafe, compact lineage → circuits
    uint64_t unsafe_recursive = 0;   // unsafe, oversized → recursive WMC
    // Anytime-tier traffic (EvaluateAnswers only; the legacy entry points
    // are always exact): answers served as certified intervals, answers
    // served by the (ε, δ) sampler, compile probes that hit their budget,
    // and checked calls rejected by validation.
    uint64_t anytime_interval = 0;
    uint64_t anytime_sampled = 0;
    uint64_t budget_exhausted = 0;
    uint64_t invalid_requests = 0;
    // Checked calls that returned kDeadlineExceeded (the configured
    // deadline_ms fired before an exact or certified answer existed).
    uint64_t deadline_exceeded = 0;
    // Aggregated over both embedded CircuitCaches: how often a grounded
    // lineage compiled vs was served from cache — the repeated-query win.
    uint64_t circuit_compiles = 0;
    uint64_t circuit_hits = 0;
    // Persistent-store traffic, aggregated the same way (zero unless a
    // store is attached; see CircuitCache::Stats and docs/SERVING.md).
    uint64_t store_hits = 0;
    uint64_t store_misses = 0;
    uint64_t store_rejected = 0;
    // Rejected entries the self-healing read path quarantined (see
    // CircuitCache::Stats::store_quarantined and store/scrub.h).
    uint64_t store_quarantined = 0;
    // Memory governance, aggregated over both caches (zero unless
    // max_resident_bytes is set): LRU evictions, and the current resident
    // circuit bytes (a gauge).
    uint64_t evictions = 0;
    uint64_t resident_bytes = 0;
    // Karp–Luby plan-cache traffic (the sampled tier's per-instance
    // setup): a hit reuses another request's exact disjunct-weight prefix
    // sums instead of rebuilding them (see KarpLubyPlanCache).
    uint64_t plan_hits = 0;
    uint64_t plan_misses = 0;
    // Checked EvaluateAnswers calls in which the sampler answered at
    // least one instance — with serve's coalescing, N same-round sampled
    // requests surface here as ONE batch (vs anytime_sampled counting N).
    uint64_t sampler_batches = 0;
  };

  GfomcResult Evaluate(const Query& query, const Tid& tid);
  // Batched form: safe queries use SafeEvaluator::EvaluateMany (grouped
  // batched circuit passes); unsafe ones group compact lineages through
  // WmcEngine::CompiledProbabilityBatch. Results in input order. Always
  // EXACT and bit-identical to every pre-anytime release (these legacy
  // entry points never route to the approximate tiers, whatever the
  // configured routing_mode); inputs are trusted (GMC_CHECK aborts on bad
  // weights) — use EvaluateAnswers for the checked, routed surface.
  std::vector<GfomcResult> EvaluateMany(const Query& query,
                                        const std::vector<Tid>& tids);

  // The checked, three-way-routed surface. Validates every Tid (and the
  // configured epsilon/delta) up front — invalid inputs come back as a
  // typed GmcStatus, never an abort — then routes each instance: safe →
  // lifted/compiled exact; unsafe → budgeted compile probe (exact circuit
  // pass or certified interval on success, Karp–Luby (ε, δ) estimate once
  // the budget is exhausted), per the configured RoutingMode (see
  // RoutingPolicy and docs/ANYTIME.md). On failure *answers is left
  // untouched; on success it holds one GmcAnswer per tid, in input order.
  GmcStatus EvaluateAnswers(const Query& query, const std::vector<Tid>& tids,
                            std::vector<GmcAnswer>* answers);
  GmcStatus EvaluateAnswer(const Query& query, const Tid& tid,
                           GmcAnswer* answer);

  // One-call configuration (see compile/gmc_options.h): applies the
  // cache-level fields to BOTH embedded caches and keeps the session-level
  // routing fields (routing_mode, compile_budget, epsilon, delta,
  // max_samples, sample_seed) for EvaluateAnswers. New sessions start from
  // GmcOptions::FromEnv(). The set_* setters below are thin wrappers.
  void Configure(const GmcOptions& options);
  GmcOptions options() const;

  // Worker bound for this session's batched circuit passes, applied to
  // both embedded caches: 0 (the default) defers to the process default —
  // the GMC_THREADS environment variable, else the hardware thread count
  // (util/parallel.h) — 1 forces serial, n allows at most n column slices
  // per pass. Results are bit-identical at every setting.
  void set_num_threads(int num_threads);

  // Shannon-order heuristic for every circuit this session compiles,
  // applied to both embedded caches (new sessions start from the GMC_ORDER
  // environment knob via DefaultOrderHeuristic). Circuit size only —
  // probabilities are bit-identical under every setting.
  void set_order(OrderHeuristic order);

  // Persistent circuit store for both embedded caches (see
  // CircuitCache::set_store_directory): read-through on every compile
  // miss, write-through for every fresh compile. New sessions start from
  // the GMC_STORE environment knob; this overrides per session. Results
  // are bit-identical with or without a store.
  void set_store_directory(const std::string& directory,
                           bool write_through = true);
  // Flushes every circuit both caches hold into `directory` (the graceful-
  // shutdown hook of gmc_serve and the replica-priming recipe of
  // docs/SERVING.md). Returns the number persisted; first I/O failure
  // lands in *error, the rest still save.
  size_t SaveCircuitsTo(const std::string& directory,
                        std::string* error = nullptr) {
    return safe_.SaveCircuitsTo(directory, error) +
           engine_.SaveCircuitsTo(directory, error);
  }
  // Bulk warm start: loads every valid persisted circuit into both caches
  // before traffic arrives (safe to run while serving). Returns the
  // number of circuits now resident that came from the directory.
  size_t WarmCircuitsFrom(const std::string& directory) {
    return safe_.WarmCircuitsFrom(directory) +
           engine_.WarmCircuitsFrom(directory);
  }

  // Counters above plus live compile/hit totals from the embedded caches.
  Stats stats() const;

 private:
  // EvaluateAnswers helper: routes one unsafe grounded lineage per the
  // policy. Requires mu_ held; returns non-OK only when the policy refuses
  // (kExact with a finite, exhausted budget) or `cancel` fires before an
  // answer exists (kDeadlineExceeded; the sampled tier instead degrades to
  // its achieved-ε report). `cancel` may be null (no deadline configured).
  GmcStatus RouteUnsafe(const Lineage& lineage, const RoutingPolicy& policy,
                        const CancelToken* cancel, GmcAnswer* answer);

  mutable std::mutex mu_;  // serializes Evaluate/EvaluateMany/stats
  SafeEvaluator safe_;
  WmcEngine engine_;
  // Cached per-instance sampler setup, keyed by (cnf, probabilities) —
  // same-structure sampled requests (one serve coalescing round, or a
  // probability sweep re-hitting one lineage) build the exact disjunct-
  // weight prefix sums once. Capacity follows sample_plan_entries.
  KarpLubyPlanCache sample_plans_;
  Stats counters_;
  // The session-level routing fields; the cache-level fields live in the
  // embedded caches (kept in sync by Configure). Starts from FromEnv(),
  // matching the caches' own constructors.
  GmcOptions options_ = GmcOptions::FromEnv();
};

// Runs #P2CNF ≤P FOMC(Q) for an unsafe Type I-I query `query` (it is first
// simplified to a final query if needed, per Lemma 2.7) and returns the
// reduction's result on `phi`; aborts if `query` is safe or not Type I-I.
Type1ReductionResult DemonstrateHardness(const Query& query,
                                         const P2Cnf& phi,
                                         Oracle* oracle = nullptr);

}  // namespace gmc

#endif  // GMC_CORE_DICHOTOMY_H_
