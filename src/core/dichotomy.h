// Public façade: the dichotomy, end to end.
//
// * Classify(Q): the static analysis of Theorem 2.2 — safe queries are
//   PTIME, unsafe ones #P-hard even with probabilities in {0, 1/2, 1}.
// * Gfomc(Q, ∆): one-call probability evaluation. Safe queries route to the
//   lifted PTIME evaluator; unsafe ones fall back to exact (worst-case
//   exponential) weighted model counting, as the dichotomy promises nothing
//   better.
// * GfomcSession: the repeated-query front end. Holds the evaluators (and
//   the CircuitCaches inside them) across calls, so probing the same query
//   at many probability assignments compiles each grounded lineage once and
//   pays a linear circuit pass afterwards; surfaces compile/hit counters.
// * DemonstrateHardness(Q, Φ): constructive witness of #P-hardness for
//   unsafe Type I-I queries — simplifies Q to a final query (Def. 2.8) if
//   needed, then runs the Cook reduction of §3 to count Φ's models through
//   a Pr(Q) oracle.

#ifndef GMC_CORE_DICHOTOMY_H_
#define GMC_CORE_DICHOTOMY_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "hardness/reduction_type1.h"
#include "logic/bipartite.h"
#include "logic/query.h"
#include "prob/tid.h"
#include "safe/safe_eval.h"
#include "wmc/wmc.h"

namespace gmc {

struct DichotomyReport {
  BipartiteAnalysis analysis;
  bool is_final = false;
  // Human-readable verdict, e.g.
  // "unsafe (length 1, type I-I): GFOMC is #P-hard; final".
  std::string summary;
};

DichotomyReport Classify(const Query& query);

struct GfomcResult {
  Rational probability;
  // True if the lifted PTIME algorithm was used (query safe); false means
  // the exact WMC fallback ran (query unsafe — expected exponential).
  bool used_lifted = false;
};

GfomcResult Gfomc(const Query& query, const Tid& tid);

// Stateful GFOMC evaluation for repeated-query traffic. One-shot Gfomc()
// rebuilds its evaluators — and loses their compiled circuits — on every
// call; a session keeps the SafeEvaluator and WmcEngine (each backed by a
// CircuitCache) alive, so a workload that probes one query at many
// probability assignments compiles each distinct grounded lineage once.
// Unsafe queries with compact lineages go through the compiled path too;
// oversized lineages fall back to the recursive engine (compilation is
// worst-case exponential, same as recursion, but the recursive engine's
// memo is cheaper when nothing is reused).
//
// Thread safety: a session may be shared across request threads. Calls
// serialize on a session mutex (the evaluators' per-call scratch state —
// the recursive engine's memo, the lifted plan's counters — is not
// concurrency-safe); throughput within each call comes from the
// column-parallel batch passes underneath (set_num_threads), and the
// embedded CircuitCaches are themselves striped-lock thread-safe, so
// sessions sharing nothing but a cache never contend.
class GfomcSession {
 public:
  struct Stats {
    uint64_t queries = 0;
    uint64_t safe_lifted = 0;        // safe, answered by the PTIME plan
    uint64_t safe_compiled = 0;      // safe GFOMC instances, circuit cache
    uint64_t unsafe_compiled = 0;    // unsafe, compact lineage → circuits
    uint64_t unsafe_recursive = 0;   // unsafe, oversized → recursive WMC
    // Aggregated over both embedded CircuitCaches: how often a grounded
    // lineage compiled vs was served from cache — the repeated-query win.
    uint64_t circuit_compiles = 0;
    uint64_t circuit_hits = 0;
    // Persistent-store traffic, aggregated the same way (zero unless a
    // store is attached; see CircuitCache::Stats and docs/SERVING.md).
    uint64_t store_hits = 0;
    uint64_t store_misses = 0;
    uint64_t store_rejected = 0;
  };

  GfomcResult Evaluate(const Query& query, const Tid& tid);
  // Batched form: safe queries use SafeEvaluator::EvaluateMany (grouped
  // batched circuit passes); unsafe ones group compact lineages through
  // WmcEngine::CompiledProbabilityBatch. Results in input order.
  std::vector<GfomcResult> EvaluateMany(const Query& query,
                                        const std::vector<Tid>& tids);

  // Worker bound for this session's batched circuit passes, applied to
  // both embedded caches: 0 (the default) defers to the process default —
  // the GMC_THREADS environment variable, else the hardware thread count
  // (util/parallel.h) — 1 forces serial, n allows at most n column slices
  // per pass. Results are bit-identical at every setting.
  void set_num_threads(int num_threads) {
    safe_.set_num_threads(num_threads);
    engine_.set_num_threads(num_threads);
  }

  // Shannon-order heuristic for every circuit this session compiles,
  // applied to both embedded caches (new sessions start from the GMC_ORDER
  // environment knob via DefaultOrderHeuristic). Circuit size only —
  // probabilities are bit-identical under every setting.
  void set_order(OrderHeuristic order) {
    safe_.set_order(order);
    engine_.set_order(order);
  }

  // Persistent circuit store for both embedded caches (see
  // CircuitCache::set_store_directory): read-through on every compile
  // miss, write-through for every fresh compile. New sessions start from
  // the GMC_STORE environment knob; this overrides per session. Results
  // are bit-identical with or without a store.
  void set_store_directory(const std::string& directory,
                           bool write_through = true) {
    safe_.set_store_directory(directory, write_through);
    engine_.set_store_directory(directory, write_through);
  }
  // Flushes every circuit both caches hold into `directory` (the graceful-
  // shutdown hook of gmc_serve and the replica-priming recipe of
  // docs/SERVING.md). Returns the number persisted; first I/O failure
  // lands in *error, the rest still save.
  size_t SaveCircuitsTo(const std::string& directory,
                        std::string* error = nullptr) {
    return safe_.SaveCircuitsTo(directory, error) +
           engine_.SaveCircuitsTo(directory, error);
  }
  // Bulk warm start: loads every valid persisted circuit into both caches
  // before traffic arrives (safe to run while serving). Returns the
  // number of circuits now resident that came from the directory.
  size_t WarmCircuitsFrom(const std::string& directory) {
    return safe_.WarmCircuitsFrom(directory) +
           engine_.WarmCircuitsFrom(directory);
  }

  // Counters above plus live compile/hit totals from the embedded caches.
  Stats stats() const;

 private:
  mutable std::mutex mu_;  // serializes Evaluate/EvaluateMany/stats
  SafeEvaluator safe_;
  WmcEngine engine_;
  Stats counters_;
};

// Runs #P2CNF ≤P FOMC(Q) for an unsafe Type I-I query `query` (it is first
// simplified to a final query if needed, per Lemma 2.7) and returns the
// reduction's result on `phi`; aborts if `query` is safe or not Type I-I.
Type1ReductionResult DemonstrateHardness(const Query& query,
                                         const P2Cnf& phi,
                                         Oracle* oracle = nullptr);

}  // namespace gmc

#endif  // GMC_CORE_DICHOTOMY_H_
