// Public façade: the dichotomy, end to end.
//
// * Classify(Q): the static analysis of Theorem 2.2 — safe queries are
//   PTIME, unsafe ones #P-hard even with probabilities in {0, 1/2, 1}.
// * Gfomc(Q, ∆): one-call probability evaluation. Safe queries route to the
//   lifted PTIME evaluator; unsafe ones fall back to exact (worst-case
//   exponential) weighted model counting, as the dichotomy promises nothing
//   better.
// * DemonstrateHardness(Q, Φ): constructive witness of #P-hardness for
//   unsafe Type I-I queries — simplifies Q to a final query (Def. 2.8) if
//   needed, then runs the Cook reduction of §3 to count Φ's models through
//   a Pr(Q) oracle.

#ifndef GMC_CORE_DICHOTOMY_H_
#define GMC_CORE_DICHOTOMY_H_

#include <string>

#include "hardness/reduction_type1.h"
#include "logic/bipartite.h"
#include "logic/query.h"
#include "prob/tid.h"
#include "safe/safe_eval.h"

namespace gmc {

struct DichotomyReport {
  BipartiteAnalysis analysis;
  bool is_final = false;
  // Human-readable verdict, e.g.
  // "unsafe (length 1, type I-I): GFOMC is #P-hard; final".
  std::string summary;
};

DichotomyReport Classify(const Query& query);

struct GfomcResult {
  Rational probability;
  // True if the lifted PTIME algorithm was used (query safe); false means
  // the exact WMC fallback ran (query unsafe — expected exponential).
  bool used_lifted = false;
};

GfomcResult Gfomc(const Query& query, const Tid& tid);

// Runs #P2CNF ≤P FOMC(Q) for an unsafe Type I-I query `query` (it is first
// simplified to a final query if needed, per Lemma 2.7) and returns the
// reduction's result on `phi`; aborts if `query` is safe or not Type I-I.
Type1ReductionResult DemonstrateHardness(const Query& query,
                                         const P2Cnf& phi,
                                         Oracle* oracle = nullptr);

}  // namespace gmc

#endif  // GMC_CORE_DICHOTOMY_H_
