#include "core/dichotomy.h"

#include <utility>

#include "approx/karp_luby.h"
#include "lineage/grounder.h"
#include "util/check.h"
#include "wmc/wmc.h"

namespace gmc {

DichotomyReport Classify(const Query& query) {
  DichotomyReport report;
  report.analysis = AnalyzeBipartite(query);
  if (report.analysis.safe) {
    report.summary = "safe: PQE/GFOMC computable in PTIME (lifted)";
    return report;
  }
  report.is_final = IsFinal(query);
  report.summary = "unsafe (length " +
                   std::to_string(report.analysis.length) + ", type " +
                   PartTypeName(report.analysis.left_type) + "-" +
                   PartTypeName(report.analysis.right_type) +
                   "): GFOMC is #P-hard (Theorem 2.2)";
  if (report.is_final) report.summary += "; final (Def. 2.8)";
  return report;
}

GfomcResult Gfomc(const Query& query, const Tid& tid) {
  GfomcSession session;
  return session.Evaluate(query, tid);
}

const char* AnswerTierName(AnswerTier tier) {
  switch (tier) {
    case AnswerTier::kLifted:
      return "lifted";
    case AnswerTier::kCompiledExact:
      return "compiled";
    case AnswerTier::kRecursiveExact:
      return "recursive";
    case AnswerTier::kCertifiedInterval:
      return "interval";
    case AnswerTier::kSampled:
      return "sampled";
  }
  return "unknown";
}

double GmcAnswer::PointEstimate() const {
  switch (tier) {
    case AnswerTier::kCertifiedInterval:
      return interval.midpoint();
    case AnswerTier::kSampled:
      return estimate;
    default:
      return exact.ToDouble();
  }
}

namespace {

bool IsProbability(const Rational& p) {
  return p.sign() >= 0 && p <= Rational::One();
}

}  // namespace

GmcStatus ValidateTid(const Tid& tid) {
  if (!IsProbability(tid.default_probability())) {
    return GmcStatus::Error(GmcStatusCode::kInvalidWeight,
                            "default probability outside [0, 1]");
  }
  for (const auto& [key, probability] : tid.explicit_tuples()) {
    if (!IsProbability(probability)) {
      return GmcStatus::Error(
          GmcStatusCode::kInvalidWeight,
          "tuple probability outside [0, 1] (symbol " +
              std::to_string(key.symbol) + ", constants " +
              std::to_string(key.left) + "," + std::to_string(key.right) +
              ")");
    }
  }
  return GmcStatus::Ok();
}

GmcStatus GfomcChecked(const Query& query, const Tid& tid,
                       const GmcOptions& options, GmcAnswer* answer) {
  GfomcSession session;
  session.Configure(options);
  return session.EvaluateAnswer(query, tid, answer);
}

GfomcResult GfomcSession::Evaluate(const Query& query, const Tid& tid) {
  return std::move(EvaluateMany(query, {tid})[0]);
}

std::vector<GfomcResult> GfomcSession::EvaluateMany(
    const Query& query, const std::vector<Tid>& tids) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.queries += tids.size();
  std::vector<GfomcResult> results(tids.size());
  // Safe branch. EvaluateMany (not Evaluate) so GFOMC instances route
  // through the SafeEvaluator's circuit cache and repeated assignments hit
  // compiled circuits; general weights fall back to the lifted plan inside.
  const int compiled_before = safe_.stats().compiled_assignments;
  if (auto safe = safe_.EvaluateMany(query, tids); safe.has_value()) {
    const bool compiled =
        safe_.stats().compiled_assignments > compiled_before;
    for (size_t i = 0; i < tids.size(); ++i) {
      results[i].probability = std::move((*safe)[i]);
      results[i].used_lifted = true;
    }
    if (compiled) {
      counters_.safe_compiled += tids.size();
    } else {
      counters_.safe_lifted += tids.size();
    }
    return results;
  }
  // Unsafe (constant queries were answered by the safe branch above):
  // ground everything, serve the compact lineages with grouped batched
  // circuit passes, and the oversized ones recursively.
  std::vector<Lineage> lineages;
  std::vector<size_t> batched_index;
  lineages.reserve(tids.size());
  for (size_t i = 0; i < tids.size(); ++i) {
    results[i].used_lifted = false;
    Lineage lineage = Ground(query, tids[i]);
    if (!lineage.is_false &&
        lineage.variables.size() > kMaxCompiledLineageVars) {
      ++counters_.unsafe_recursive;
      results[i].probability = engine_.Probability(lineage);
      continue;
    }
    ++counters_.unsafe_compiled;
    lineages.push_back(std::move(lineage));
    batched_index.push_back(i);
  }
  if (!lineages.empty()) {
    std::vector<Rational> values =
        engine_.CompiledProbabilityBatch(lineages);
    for (size_t m = 0; m < batched_index.size(); ++m) {
      results[batched_index[m]].probability = std::move(values[m]);
    }
  }
  return results;
}

void GfomcSession::Configure(const GmcOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  safe_.Configure(options);
  engine_.Configure(options);
  sample_plans_.set_max_entries(options.sample_plan_entries);
}

GmcOptions GfomcSession::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

void GfomcSession::set_num_threads(int num_threads) {
  GmcOptions next = options();
  next.num_threads = num_threads;
  Configure(next);
}

void GfomcSession::set_order(OrderHeuristic order) {
  GmcOptions next = options();
  next.order = order;
  Configure(next);
}

void GfomcSession::set_store_directory(const std::string& directory,
                                       bool write_through) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    options_.store_directory = directory;
    options_.store_write_through = write_through;
  }
  // Through the caches' own setters (not Configure) so a repeated call with
  // the same directory still forces a fresh scan — the legacy contract.
  safe_.set_store_directory(directory, write_through);
  engine_.set_store_directory(directory, write_through);
}

GmcStatus GfomcSession::EvaluateAnswer(const Query& query, const Tid& tid,
                                       GmcAnswer* answer) {
  std::vector<GmcAnswer> answers;
  GmcStatus status = EvaluateAnswers(query, {tid}, &answers);
  if (status.ok()) *answer = std::move(answers[0]);
  return status;
}

GmcStatus GfomcSession::EvaluateAnswers(const Query& query,
                                        const std::vector<Tid>& tids,
                                        std::vector<GmcAnswer>* answers) {
  std::lock_guard<std::mutex> lock(mu_);
  // Pre-validation: every failure mode of the evaluators' GMC_CHECKs is
  // caught here and typed, so untrusted inputs never reach an abort.
  const RoutingPolicy policy(options_);
  if (!(options_.epsilon > 0.0 && options_.epsilon < 1.0 &&
        options_.delta > 0.0 && options_.delta < 1.0)) {
    ++counters_.invalid_requests;
    return GmcStatus::Error(GmcStatusCode::kInvalidOptions,
                            "epsilon and delta must be in (0, 1)");
  }
  for (size_t i = 0; i < tids.size(); ++i) {
    if (GmcStatus status = ValidateTid(tids[i]); !status.ok()) {
      ++counters_.invalid_requests;
      status.message = "tid " + std::to_string(i) + ": " + status.message;
      return status;
    }
  }

  counters_.queries += tids.size();
  // One deadline token per checked call, shared by every instance the call
  // evaluates: compile, circuit passes, and sampling all poll it. 0 ms
  // means no deadline — the token stays null and every poll site reduces
  // to one pointer comparison.
  const CancelToken deadline(options_.deadline_ms);
  const CancelToken* cancel =
      options_.deadline_ms > 0 ? &deadline : nullptr;
  std::vector<GmcAnswer> routed(tids.size());
  // Safe branch, exactly as EvaluateMany: safety is PTIME exact, so the
  // anytime tiers never apply — there is nothing to trade away (and the
  // lifted plan is polynomial, so the deadline has nothing to interrupt).
  const int compiled_before = safe_.stats().compiled_assignments;
  if (auto safe = safe_.EvaluateMany(query, tids); safe.has_value()) {
    const bool compiled =
        safe_.stats().compiled_assignments > compiled_before;
    for (size_t i = 0; i < tids.size(); ++i) {
      routed[i].tier =
          compiled ? AnswerTier::kCompiledExact : AnswerTier::kLifted;
      routed[i].exact = std::move((*safe)[i]);
    }
    if (compiled) {
      counters_.safe_compiled += tids.size();
    } else {
      counters_.safe_lifted += tids.size();
    }
    *answers = std::move(routed);
    return GmcStatus::Ok();
  }
  // Unsafe: ground and route each instance through the policy. Instances
  // the sampler answers share this session's plan cache, so a batch of
  // same-structure tids pays one plan build — the coalesced-round win the
  // sampler_batches counter makes observable.
  const uint64_t sampled_before = counters_.anytime_sampled;
  for (size_t i = 0; i < tids.size(); ++i) {
    const Lineage lineage = Ground(query, tids[i]);
    if (GmcStatus status = RouteUnsafe(lineage, policy, cancel, &routed[i]);
        !status.ok()) {
      status.message = "tid " + std::to_string(i) + ": " + status.message;
      return status;
    }
  }
  if (counters_.anytime_sampled > sampled_before) ++counters_.sampler_batches;
  *answers = std::move(routed);
  return GmcStatus::Ok();
}

GmcStatus GfomcSession::RouteUnsafe(const Lineage& lineage,
                                    const RoutingPolicy& policy,
                                    const CancelToken* cancel,
                                    GmcAnswer* answer) {
  if (lineage.is_false || lineage.cnf.HasEmptyClause()) {
    // Some ground clause is unsatisfiable: exactly 0, every mode.
    answer->tier = AnswerTier::kCompiledExact;
    answer->exact = Rational::Zero();
    ++counters_.unsafe_compiled;
    return GmcStatus::Ok();
  }
  auto deadline_error = [this] {
    ++counters_.deadline_exceeded;
    return GmcStatus::Error(
        GmcStatusCode::kDeadlineExceeded,
        "deadline exceeded before an answer was produced (nothing is "
        "memoized; retrying without a deadline may succeed)");
  };
  if (cancel != nullptr && cancel->Poll()) return deadline_error();
  // kExact with an unlimited budget reproduces the legacy routing verbatim:
  // the var-count gate picks circuits or recursion, both exact.
  if (policy.mode() == RoutingMode::kExact && policy.budget().Unlimited()) {
    if (lineage.variables.size() > kMaxCompiledLineageVars) {
      // The recursive engine has no cancellation points — the entry check
      // above is the deadline's only purchase on this tier.
      answer->tier = AnswerTier::kRecursiveExact;
      answer->exact = engine_.Probability(lineage);
      ++counters_.unsafe_recursive;
      return GmcStatus::Ok();
    }
    // Unlimited budget: only a fired deadline can make this null.
    const std::shared_ptr<const NnfCircuit> circuit =
        engine_.TryGetCircuitShared(lineage.cnf, CompileBudget{}, cancel);
    if (circuit == nullptr) return deadline_error();
    const WeightMatrix weights =
        WeightMatrix::FromRows({lineage.probabilities});
    answer->exact =
        circuit->EvaluateBatch(weights, options_.num_threads, cancel)[0];
    if (cancel != nullptr && cancel->cancelled()) return deadline_error();
    answer->tier = AnswerTier::kCompiledExact;
    ++counters_.unsafe_compiled;
    return GmcStatus::Ok();
  }
  // Budgeted compile probe (skipped by kSample). Under a budget the var
  // gate is retired: the budget itself bounds compile work, which is a
  // sharper admission test than counting variables. The shared_ptr pins
  // the circuit across any concurrent eviction for the passes below.
  const std::shared_ptr<const NnfCircuit> circuit =
      policy.WantsCompileProbe()
          ? engine_.TryGetCircuitShared(lineage.cnf, policy.budget(), cancel)
          : nullptr;
  // A null probe result is ambiguous until the token is consulted: budget
  // exhaustion falls through to the anytime tiers, a fired deadline is the
  // typed error (nothing memoized, nothing counted as exhausted).
  if (circuit == nullptr && cancel != nullptr && cancel->cancelled() &&
      policy.WantsCompileProbe()) {
    return deadline_error();
  }
  if (circuit != nullptr) {
    const WeightMatrix weights =
        WeightMatrix::FromRows({lineage.probabilities});
    if (policy.TierForCompiled() == AnswerTier::kCertifiedInterval) {
      answer->interval =
          circuit->EvaluateBatchInterval(weights, options_.num_threads,
                                         cancel)[0];
      if (cancel != nullptr && cancel->cancelled()) return deadline_error();
      answer->tier = AnswerTier::kCertifiedInterval;
      ++counters_.anytime_interval;
    } else {
      answer->exact =
          circuit->EvaluateBatch(weights, options_.num_threads, cancel)[0];
      if (cancel != nullptr && cancel->cancelled()) return deadline_error();
      answer->tier = AnswerTier::kCompiledExact;
      ++counters_.unsafe_compiled;
    }
    return GmcStatus::Ok();
  }
  if (policy.WantsCompileProbe()) ++counters_.budget_exhausted;
  if (policy.ExhaustedIsError()) {
    return GmcStatus::Error(
        GmcStatusCode::kBudgetExhausted,
        "compile budget exhausted and RoutingMode::kExact has no anytime "
        "fallback (raise the budget or switch to kAuto)");
  }
  // (ε, δ) sampler — the anytime floor. The per-instance seed mixes the
  // session seed with the lineage structure, so fixed-seed runs reproduce
  // per instance regardless of batch order. A deadline firing mid-sampling
  // degrades to the achieved-ε anytime report, never an error — samples
  // already drawn are not thrown away (see approx/karp_luby.h).
  KarpLubyParams params;
  params.epsilon = options_.epsilon;
  params.delta = options_.delta;
  params.max_samples = options_.max_samples;
  params.cancel = cancel;
  // sample_threads caps the sampler's workers independently of the
  // circuit passes; 0 falls through to num_threads (whose 0 defers to
  // the process default inside the sampler). Bit-identical either way.
  params.num_threads = options_.sample_threads != 0 ? options_.sample_threads
                                                    : options_.num_threads;
  params.seed = approx_internal::SplitMix64(options_.sample_seed ^
                                            lineage.cnf.Hash64())
                    .Next();
  // lineage.is_false was handled at entry, so the plan covers every
  // remaining case; same-structure requests share one build via the cache.
  const std::shared_ptr<const KarpLubyPlan> plan =
      sample_plans_.Get(lineage.cnf, lineage.probabilities);
  const KarpLubyResult sampled = KarpLubyEstimate(*plan, params);
  answer->tier = AnswerTier::kSampled;
  answer->estimate = sampled.estimate;
  answer->epsilon = sampled.epsilon;
  answer->delta = sampled.delta;
  answer->samples = sampled.samples;
  ++counters_.anytime_sampled;
  return GmcStatus::Ok();
}

GfomcSession::Stats GfomcSession::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = counters_;
  out.circuit_compiles = safe_.circuits().stats().compiles +
                         engine_.circuits().stats().compiles;
  out.circuit_hits =
      safe_.circuits().stats().hits + engine_.circuits().stats().hits;
  out.store_hits = safe_.circuits().stats().store_hits +
                   engine_.circuits().stats().store_hits;
  out.store_misses = safe_.circuits().stats().store_misses +
                     engine_.circuits().stats().store_misses;
  out.store_rejected = safe_.circuits().stats().store_rejected +
                       engine_.circuits().stats().store_rejected;
  out.store_quarantined = safe_.circuits().stats().store_quarantined +
                          engine_.circuits().stats().store_quarantined;
  out.evictions = safe_.circuits().stats().evictions +
                  engine_.circuits().stats().evictions;
  out.resident_bytes = safe_.circuits().stats().resident_bytes +
                       engine_.circuits().stats().resident_bytes;
  const KarpLubyPlanCache::Stats plans = sample_plans_.stats();
  out.plan_hits = plans.hits;
  out.plan_misses = plans.misses;
  return out;
}

Type1ReductionResult DemonstrateHardness(const Query& query,
                                         const P2Cnf& phi, Oracle* oracle) {
  BipartiteAnalysis analysis = AnalyzeBipartite(query);
  GMC_CHECK_MSG(!analysis.safe,
                "safe queries are PTIME; there is no hardness to show");
  GMC_CHECK_MSG(analysis.left_type == PartType::kTypeI &&
                    analysis.right_type == PartType::kTypeI,
                "the executable reduction covers Type I-I queries");
  Query target = IsFinal(query) ? query : MakeFinal(query);
  Type1Reduction reduction(target);
  return reduction.Run(phi, oracle);
}

}  // namespace gmc
