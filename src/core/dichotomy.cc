#include "core/dichotomy.h"

#include "util/check.h"
#include "wmc/wmc.h"

namespace gmc {

DichotomyReport Classify(const Query& query) {
  DichotomyReport report;
  report.analysis = AnalyzeBipartite(query);
  if (report.analysis.safe) {
    report.summary = "safe: PQE/GFOMC computable in PTIME (lifted)";
    return report;
  }
  report.is_final = IsFinal(query);
  report.summary = "unsafe (length " +
                   std::to_string(report.analysis.length) + ", type " +
                   PartTypeName(report.analysis.left_type) + "-" +
                   PartTypeName(report.analysis.right_type) +
                   "): GFOMC is #P-hard (Theorem 2.2)";
  if (report.is_final) report.summary += "; final (Def. 2.8)";
  return report;
}

GfomcResult Gfomc(const Query& query, const Tid& tid) {
  GfomcResult result;
  SafeEvaluator evaluator;
  if (auto lifted = evaluator.Evaluate(query, tid); lifted.has_value()) {
    result.probability = *lifted;
    result.used_lifted = true;
    return result;
  }
  WmcEngine engine;
  result.probability = engine.QueryProbability(query, tid);
  result.used_lifted = false;
  return result;
}

Type1ReductionResult DemonstrateHardness(const Query& query,
                                         const P2Cnf& phi, Oracle* oracle) {
  BipartiteAnalysis analysis = AnalyzeBipartite(query);
  GMC_CHECK_MSG(!analysis.safe,
                "safe queries are PTIME; there is no hardness to show");
  GMC_CHECK_MSG(analysis.left_type == PartType::kTypeI &&
                    analysis.right_type == PartType::kTypeI,
                "the executable reduction covers Type I-I queries");
  Query target = IsFinal(query) ? query : MakeFinal(query);
  Type1Reduction reduction(target);
  return reduction.Run(phi, oracle);
}

}  // namespace gmc
