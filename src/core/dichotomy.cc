#include "core/dichotomy.h"

#include <utility>

#include "lineage/grounder.h"
#include "util/check.h"
#include "wmc/wmc.h"

namespace gmc {

DichotomyReport Classify(const Query& query) {
  DichotomyReport report;
  report.analysis = AnalyzeBipartite(query);
  if (report.analysis.safe) {
    report.summary = "safe: PQE/GFOMC computable in PTIME (lifted)";
    return report;
  }
  report.is_final = IsFinal(query);
  report.summary = "unsafe (length " +
                   std::to_string(report.analysis.length) + ", type " +
                   PartTypeName(report.analysis.left_type) + "-" +
                   PartTypeName(report.analysis.right_type) +
                   "): GFOMC is #P-hard (Theorem 2.2)";
  if (report.is_final) report.summary += "; final (Def. 2.8)";
  return report;
}

GfomcResult Gfomc(const Query& query, const Tid& tid) {
  GfomcSession session;
  return session.Evaluate(query, tid);
}

GfomcResult GfomcSession::Evaluate(const Query& query, const Tid& tid) {
  return std::move(EvaluateMany(query, {tid})[0]);
}

std::vector<GfomcResult> GfomcSession::EvaluateMany(
    const Query& query, const std::vector<Tid>& tids) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.queries += tids.size();
  std::vector<GfomcResult> results(tids.size());
  // Safe branch. EvaluateMany (not Evaluate) so GFOMC instances route
  // through the SafeEvaluator's circuit cache and repeated assignments hit
  // compiled circuits; general weights fall back to the lifted plan inside.
  const int compiled_before = safe_.stats().compiled_assignments;
  if (auto safe = safe_.EvaluateMany(query, tids); safe.has_value()) {
    const bool compiled =
        safe_.stats().compiled_assignments > compiled_before;
    for (size_t i = 0; i < tids.size(); ++i) {
      results[i].probability = std::move((*safe)[i]);
      results[i].used_lifted = true;
    }
    if (compiled) {
      counters_.safe_compiled += tids.size();
    } else {
      counters_.safe_lifted += tids.size();
    }
    return results;
  }
  // Unsafe (constant queries were answered by the safe branch above):
  // ground everything, serve the compact lineages with grouped batched
  // circuit passes, and the oversized ones recursively.
  std::vector<Lineage> lineages;
  std::vector<size_t> batched_index;
  lineages.reserve(tids.size());
  for (size_t i = 0; i < tids.size(); ++i) {
    results[i].used_lifted = false;
    Lineage lineage = Ground(query, tids[i]);
    if (!lineage.is_false &&
        lineage.variables.size() > kMaxCompiledLineageVars) {
      ++counters_.unsafe_recursive;
      results[i].probability = engine_.Probability(lineage);
      continue;
    }
    ++counters_.unsafe_compiled;
    lineages.push_back(std::move(lineage));
    batched_index.push_back(i);
  }
  if (!lineages.empty()) {
    std::vector<Rational> values =
        engine_.CompiledProbabilityBatch(lineages);
    for (size_t m = 0; m < batched_index.size(); ++m) {
      results[batched_index[m]].probability = std::move(values[m]);
    }
  }
  return results;
}

GfomcSession::Stats GfomcSession::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out = counters_;
  out.circuit_compiles = safe_.circuits().stats().compiles +
                         engine_.circuits().stats().compiles;
  out.circuit_hits =
      safe_.circuits().stats().hits + engine_.circuits().stats().hits;
  out.store_hits = safe_.circuits().stats().store_hits +
                   engine_.circuits().stats().store_hits;
  out.store_misses = safe_.circuits().stats().store_misses +
                     engine_.circuits().stats().store_misses;
  out.store_rejected = safe_.circuits().stats().store_rejected +
                       engine_.circuits().stats().store_rejected;
  return out;
}

Type1ReductionResult DemonstrateHardness(const Query& query,
                                         const P2Cnf& phi, Oracle* oracle) {
  BipartiteAnalysis analysis = AnalyzeBipartite(query);
  GMC_CHECK_MSG(!analysis.safe,
                "safe queries are PTIME; there is no hardness to show");
  GMC_CHECK_MSG(analysis.left_type == PartType::kTypeI &&
                    analysis.right_type == PartType::kTypeI,
                "the executable reduction covers Type I-I queries");
  Query target = IsFinal(query) ? query : MakeFinal(query);
  Type1Reduction reduction(target);
  return reduction.Run(phi, oracle);
}

}  // namespace gmc
