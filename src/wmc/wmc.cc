#include "wmc/wmc.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace gmc {

Rational WmcEngine::Probability(const Cnf& cnf,
                                const std::vector<Rational>& probabilities) {
  GMC_CHECK(static_cast<int>(probabilities.size()) >= cnf.num_vars);
  for (const auto& clause : cnf.clauses) {
    if (clause.empty()) return Rational::Zero();
  }
  probabilities_ = &probabilities;
  // The cache is keyed on variable ids whose weights live in
  // `probabilities`, so it cannot be reused across weight vectors.
  cache_.clear();
  Rational out = Recurse(cnf);
  probabilities_ = nullptr;
  return out;
}

Rational WmcEngine::Probability(const Lineage& lineage) {
  if (lineage.is_false) return Rational::Zero();
  return Probability(lineage.cnf, lineage.probabilities);
}

Rational WmcEngine::QueryProbability(const Query& query, const Tid& tid) {
  if (query.IsFalse()) return Rational::Zero();
  if (query.IsTrue()) return Rational::One();
  return Probability(Ground(query, tid));
}

Rational WmcEngine::CompiledProbability(
    const Cnf& cnf, const std::vector<Rational>& probabilities) {
  GMC_CHECK(static_cast<int>(probabilities.size()) >= cnf.num_vars);
  return circuits_.Probability(cnf, probabilities);
}

Rational WmcEngine::CompiledProbability(const Lineage& lineage) {
  return circuits_.Probability(lineage);
}

Rational WmcEngine::CompiledQueryProbability(const Query& query,
                                             const Tid& tid) {
  return circuits_.QueryProbability(query, tid);
}

std::vector<Rational> WmcEngine::CompiledProbabilityBatch(
    const Cnf& cnf, const WeightMatrix& weights) {
  GMC_CHECK(weights.num_vars() >= cnf.num_vars);
  return circuits_.ProbabilityBatch(cnf, weights);
}

std::vector<Rational> WmcEngine::CompiledProbabilityBatch(
    const std::vector<Lineage>& lineages) {
  return circuits_.ProbabilityBatch(lineages);
}

Rational WmcEngine::Recurse(const Cnf& cnf) {
  ++stats_.recursive_calls;
  if (cnf.clauses.empty()) return Rational::One();
  for (const auto& clause : cnf.clauses) {
    if (clause.empty()) return Rational::Zero();
  }
  if (auto it = cache_.find(cnf); it != cache_.end()) {
    ++stats_.cache_hits;
    return it->second;
  }

  // Connected-component decomposition: disjoint variable sets are
  // independent, so the probability is the product over components.
  std::vector<Cnf> parts = cnf.SplitComponents();
  Rational result;
  if (parts.size() > 1) {
    ++stats_.component_splits;
    result = Rational::One();
    for (Cnf& part : parts) {
      result *= Recurse(part);
      if (result.IsZero()) break;
    }
  } else {
    // Shannon expansion on the most frequent variable.
    ++stats_.shannon_branches;
    const int best_var = cnf.MostOccurringVariable();
    GMC_CHECK(best_var >= 0);
    const Rational& p = (*probabilities_)[best_var];
    Rational high = Recurse(cnf.Condition(best_var, true));
    Rational low = Recurse(cnf.Condition(best_var, false));
    result = p * high + (Rational::One() - p) * low;
  }
  cache_.emplace(cnf, result);
  return result;
}

}  // namespace gmc
