#include "wmc/brute_force.h"

#include <algorithm>

#include "util/check.h"

namespace gmc {

namespace {

// Evaluates the CNF under the assignment encoded by `mask` over used_vars.
bool Satisfies(const Cnf& cnf, const std::vector<int>& used_vars,
               uint64_t mask) {
  std::vector<bool> value(cnf.num_vars, false);
  for (size_t i = 0; i < used_vars.size(); ++i) {
    value[used_vars[i]] = (mask >> i) & 1;
  }
  for (const auto& clause : cnf.clauses) {
    bool satisfied = false;
    for (int v : clause) {
      if (value[v]) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

}  // namespace

Rational BruteForceProbability(const Cnf& cnf,
                               const std::vector<Rational>& probabilities) {
  const std::vector<int> used = cnf.UsedVariables();
  GMC_CHECK_MSG(used.size() <= 30, "brute force limited to 30 variables");
  for (const auto& clause : cnf.clauses) {
    if (clause.empty()) return Rational::Zero();
  }
  Rational total = Rational::Zero();
  const uint64_t limit = uint64_t{1} << used.size();
  for (uint64_t mask = 0; mask < limit; ++mask) {
    if (!Satisfies(cnf, used, mask)) continue;
    Rational world = Rational::One();
    for (size_t i = 0; i < used.size(); ++i) {
      const Rational& p = probabilities[used[i]];
      world *= ((mask >> i) & 1) ? p : Rational::One() - p;
    }
    total += world;
  }
  return total;
}

Rational BruteForceProbability(const Lineage& lineage) {
  if (lineage.is_false) return Rational::Zero();
  return BruteForceProbability(lineage.cnf, lineage.probabilities);
}

Rational BruteForceQueryProbability(const Query& query, const Tid& tid) {
  if (query.IsFalse()) return Rational::Zero();
  if (query.IsTrue()) return Rational::One();
  return BruteForceProbability(Ground(query, tid));
}

BigInt BruteForceModelCount(const Cnf& cnf) {
  const std::vector<int> used = cnf.UsedVariables();
  GMC_CHECK_MSG(used.size() <= 30, "brute force limited to 30 variables");
  BigInt count(0);
  const uint64_t limit = uint64_t{1} << used.size();
  for (uint64_t mask = 0; mask < limit; ++mask) {
    if (Satisfies(cnf, used, mask)) count += BigInt(1);
  }
  return count;
}

}  // namespace gmc
