// Exact weighted model counting for monotone CNF.
//
// This is the Pr(Q) oracle used throughout: Pr(Q) = WMC(Φ_∆(Q)) with the
// lineage variables weighted by their tuple probabilities (§2). The engine
// combines (a) connected-component decomposition — independent AND per
// Theorem 3.4's reasoning, (b) Shannon expansion on a most-occurring
// variable, and (c) memoization keyed on the canonical sub-formula. On the
// paper's path-shaped gadget lineages, component splits after conditioning
// an articulation tuple keep the recursion effectively linear (bench E15).
//
// WMC on monotone CNF is #P-hard in general (that is the paper's point), so
// worst-case exponential behaviour is expected; the engine is exact always.

#ifndef GMC_WMC_WMC_H_
#define GMC_WMC_WMC_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "compile/circuit_cache.h"
#include "lineage/grounder.h"
#include "logic/query.h"
#include "prob/tid.h"
#include "util/rational.h"

namespace gmc {

class WmcEngine {
 public:
  struct Stats {
    uint64_t recursive_calls = 0;
    uint64_t cache_hits = 0;
    uint64_t component_splits = 0;
    uint64_t shannon_branches = 0;
  };

  WmcEngine() = default;

  // Probability that the CNF is satisfied when variable v is independently
  // true with probability probabilities[v].
  Rational Probability(const Cnf& cnf,
                       const std::vector<Rational>& probabilities);
  Rational Probability(const Lineage& lineage);
  // Grounds and counts: Pr_∆(Q).
  Rational QueryProbability(const Query& query, const Tid& tid);

  // Knowledge-compilation path (src/compile/): the formula is compiled to a
  // d-DNNF circuit on first sight and every call afterwards is one linear
  // circuit pass. Unlike the recursive path, whose memo dies with the
  // weight vector, compiled circuits are reused across weight vectors —
  // prefer this whenever the same lineage is evaluated more than once.
  Rational CompiledProbability(const Cnf& cnf,
                               const std::vector<Rational>& probabilities);
  Rational CompiledProbability(const Lineage& lineage);
  Rational CompiledQueryProbability(const Query& query, const Tid& tid);

  // Batched compiled path: all K weight vectors in one topological circuit
  // pass (NnfCircuit::EvaluateBatch) instead of K walks — the preferred
  // entry point for interpolation sweeps and any other workload that knows
  // its whole weight set up front. The lineage form groups by CNF
  // structure and batches within each group.
  std::vector<Rational> CompiledProbabilityBatch(const Cnf& cnf,
                                                 const WeightMatrix& weights);
  std::vector<Rational> CompiledProbabilityBatch(
      const std::vector<Lineage>& lineages);

  const Stats& stats() const { return stats_; }
  const CircuitCache& circuits() const { return circuits_; }
  void ResetStats() { stats_ = Stats(); }
  void ClearCache() { cache_.clear(); }

  // One-call configuration (see compile/gmc_options.h): forwards the
  // cache-level fields to the embedded CircuitCache. The recursive path
  // has no knobs; routing fields are the session's business and are
  // ignored here. The set_* setters below are the legacy wrappers.
  void Configure(const GmcOptions& options) { circuits_.Configure(options); }
  GmcOptions options() const { return circuits_.options(); }

  // Budgeted compiled-path probe for the anytime router: the circuit if
  // `cnf` is cached or compiles inside `budget`, nullptr once the budget
  // is exhausted (see CircuitCache::TryGet). Pointer valid until the
  // cache is cleared.
  const NnfCircuit* TryGetCircuit(const Cnf& cnf, const CompileBudget& budget) {
    return circuits_.TryGet(cnf, budget);
  }

  // Pinning, cancellable probe (see CircuitCache::TryGetShared): the
  // shared_ptr keeps the circuit alive across eviction, and a non-null
  // `cancel` turns the compile into a deadline-bounded attempt — null with
  // cancel->cancelled() set means the deadline fired (not memoized), null
  // otherwise means the budget was exhausted (memoized).
  std::shared_ptr<const NnfCircuit> TryGetCircuitShared(
      const Cnf& cnf, const CompileBudget& budget,
      const CancelToken* cancel = nullptr) {
    return circuits_.TryGetShared(cnf, budget, cancel);
  }

  // Worker bound for the embedded circuit cache's batch passes (see
  // CircuitCache::set_num_threads); 0 defers to the process default
  // (GMC_THREADS / DefaultNumThreads). Results are identical either way.
  void set_num_threads(int num_threads) {
    circuits_.set_num_threads(num_threads);
  }

  // Shannon-order heuristic for the compiled path (see
  // CircuitCache::set_order / compile/vtree.h); affects circuit size only,
  // never results. The recursive path always uses the legacy heuristic.
  void set_order(OrderHeuristic order) { circuits_.set_order(order); }

  // Persistent-store plumbing for the embedded cache (see
  // CircuitCache::set_store_directory / SaveTo / WarmFrom): warm starts
  // and write-through for the compiled path. Results are bit-identical
  // with or without a store.
  void set_store_directory(const std::string& directory,
                           bool write_through = true) {
    circuits_.set_store_directory(directory, write_through);
  }
  size_t SaveCircuitsTo(const std::string& directory,
                        std::string* error = nullptr) {
    return circuits_.SaveTo(directory, error);
  }
  size_t WarmCircuitsFrom(const std::string& directory) {
    return circuits_.WarmFrom(directory);
  }

 private:
  Rational Recurse(const Cnf& cnf);

  const std::vector<Rational>* probabilities_ = nullptr;
  // Memo for the in-flight weight vector: hashed with the allocation-free
  // Cnf::Hash64, compared exactly (CnfClauseEq), so hits never allocate
  // and collisions never corrupt the exact result.
  std::unordered_map<Cnf, Rational, CnfHash, CnfClauseEq> cache_;
  CircuitCache circuits_;
  Stats stats_;
};

}  // namespace gmc

#endif  // GMC_WMC_WMC_H_
