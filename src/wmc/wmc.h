// Exact weighted model counting for monotone CNF.
//
// This is the Pr(Q) oracle used throughout: Pr(Q) = WMC(Φ_∆(Q)) with the
// lineage variables weighted by their tuple probabilities (§2). The engine
// combines (a) connected-component decomposition — independent AND per
// Theorem 3.4's reasoning, (b) Shannon expansion on a most-occurring
// variable, and (c) memoization keyed on the canonical sub-formula. On the
// paper's path-shaped gadget lineages, component splits after conditioning
// an articulation tuple keep the recursion effectively linear (bench E15).
//
// WMC on monotone CNF is #P-hard in general (that is the paper's point), so
// worst-case exponential behaviour is expected; the engine is exact always.

#ifndef GMC_WMC_WMC_H_
#define GMC_WMC_WMC_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "lineage/grounder.h"
#include "logic/query.h"
#include "prob/tid.h"
#include "util/rational.h"

namespace gmc {

class WmcEngine {
 public:
  struct Stats {
    uint64_t recursive_calls = 0;
    uint64_t cache_hits = 0;
    uint64_t component_splits = 0;
    uint64_t shannon_branches = 0;
  };

  WmcEngine() = default;

  // Probability that the CNF is satisfied when variable v is independently
  // true with probability probabilities[v].
  Rational Probability(const Cnf& cnf,
                       const std::vector<Rational>& probabilities);
  Rational Probability(const Lineage& lineage);
  // Grounds and counts: Pr_∆(Q).
  Rational QueryProbability(const Query& query, const Tid& tid);

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }
  void ClearCache() { cache_.clear(); }

 private:
  Rational Recurse(const Cnf& cnf);

  const std::vector<Rational>* probabilities_ = nullptr;
  std::unordered_map<std::string, Rational> cache_;
  Stats stats_;
};

}  // namespace gmc

#endif  // GMC_WMC_WMC_H_
