// Brute-force reference implementations: exhaustive enumeration over all
// assignments / possible worlds. Exponential; used only to validate the WMC
// engine, the lifted evaluator, and the reductions on small instances.

#ifndef GMC_WMC_BRUTE_FORCE_H_
#define GMC_WMC_BRUTE_FORCE_H_

#include <vector>

#include "lineage/grounder.h"
#include "logic/query.h"
#include "prob/tid.h"
#include "util/bigint.h"
#include "util/rational.h"

namespace gmc {

// Pr(cnf) by enumerating all 2^|used vars| assignments.
Rational BruteForceProbability(const Cnf& cnf,
                               const std::vector<Rational>& probabilities);
Rational BruteForceProbability(const Lineage& lineage);

// Pr_∆(Q) via grounding + enumeration.
Rational BruteForceQueryProbability(const Query& query, const Tid& tid);

// Number of satisfying assignments of a monotone CNF (unweighted).
BigInt BruteForceModelCount(const Cnf& cnf);

}  // namespace gmc

#endif  // GMC_WMC_BRUTE_FORCE_H_
