#include "prob/block.h"

#include "util/check.h"

namespace gmc {

PathBlock AddPathBlock(Tid* tid, ConstantId u, ConstantId v, int p) {
  GMC_CHECK(tid != nullptr);
  GMC_CHECK_MSG(p >= 1, "path blocks need p >= 1");
  GMC_CHECK(u >= 0 && u < tid->num_left());
  GMC_CHECK(v >= 0 && v < tid->num_left());
  GMC_CHECK_MSG(u != v, "block endpoints must be distinct");

  PathBlock block;
  block.u = u;
  block.v = v;
  block.p = p;
  block.lefts.push_back(u);
  for (int k = 1; k <= p - 1; ++k) {
    block.lefts.push_back(tid->AddLeft());  // r_k
  }
  block.lefts.push_back(v);
  for (int k = 1; k <= p; ++k) {
    block.rights.push_back(tid->AddRight());  // t_k
  }

  const Vocabulary& vocab = tid->vocab();
  const Rational half = Rational::Half();
  for (SymbolId s = 0; s < vocab.size(); ++s) {
    switch (vocab.kind(s)) {
      case SymbolKind::kUnaryLeft:
        for (ConstantId r : block.lefts) tid->SetUnaryLeft(s, r, half);
        break;
      case SymbolKind::kUnaryRight:
        for (ConstantId t : block.rights) tid->SetUnaryRight(s, t, half);
        break;
      case SymbolKind::kBinary:
        // Path edges: r_{k-1} − t_k and r_k − t_k for k = 1..p
        // (r_0 = u, r_p = v), i.e. S(u,t_1), S(r_k,t_k), S(r_k,t_{k+1}),
        // S(v,t_p) — the 2p edges of §3.3.
        for (int k = 1; k <= p; ++k) {
          tid->SetBinary(s, block.lefts[k - 1], block.rights[k - 1], half);
          tid->SetBinary(s, block.lefts[k], block.rights[k - 1], half);
        }
        break;
    }
  }
  return block;
}

IsolatedBlock MakeIsolatedBlock(std::shared_ptr<const Vocabulary> vocab,
                                const std::vector<int>& branch_lengths) {
  GMC_CHECK(!branch_lengths.empty());
  IsolatedBlock out(std::move(vocab));
  ConstantId u = out.tid.AddLeft();
  ConstantId v = out.tid.AddLeft();
  for (int p : branch_lengths) {
    out.paths.push_back(AddPathBlock(&out.tid, u, v, p));
  }
  return out;
}

Tid MakeBlockTidForGraph(std::shared_ptr<const Vocabulary> vocab,
                         int num_vertices,
                         const std::vector<std::pair<int, int>>& edges,
                         int p1, int p2) {
  Tid tid(std::move(vocab), num_vertices, 0);
  for (const auto& [i, j] : edges) {
    GMC_CHECK(i >= 0 && i < num_vertices && j >= 0 && j < num_vertices);
    AddPathBlock(&tid, i, j, p1);
    AddPathBlock(&tid, i, j, p2);
  }
  return tid;
}

}  // namespace gmc
