// Tuple-independent probabilistic databases (TIDs) over bipartite domains.
//
// A TID ∆ = (Dom, p) assigns a probability to every ground tuple over the
// vocabulary (§2). Domains here are bipartite: `num_left` constants ranged
// over by x and `num_right` constants ranged over by y. Following the
// paper's constructions ("Otherwise, Pr(S(a,b)) = 1"), tuples not explicitly
// assigned a probability take a configurable default, which is 1 for the
// hardness gadgets (so unmentioned atoms are simply true) — use 0 to model
// the classic "absent tuples are false" convention.

#ifndef GMC_PROB_TID_H_
#define GMC_PROB_TID_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "logic/symbol.h"
#include "util/rational.h"

namespace gmc {

using ConstantId = int32_t;

// A ground tuple: R(left), T(right), or S(left, right).
struct TupleKey {
  SymbolId symbol = -1;
  ConstantId left = -1;   // -1 for right-unary symbols
  ConstantId right = -1;  // -1 for left-unary symbols

  bool operator==(const TupleKey&) const = default;
};

struct TupleKeyHash {
  size_t operator()(const TupleKey& key) const {
    size_t h = static_cast<size_t>(key.symbol) * 0x9e3779b97f4a7c15ull;
    h ^= (static_cast<size_t>(key.left) + 0x9e3779b9u) + (h << 6) + (h >> 2);
    h ^= (static_cast<size_t>(key.right) + 0x85ebca6bu) + (h << 6) + (h >> 2);
    return h;
  }
};

class Tid {
 public:
  Tid(std::shared_ptr<const Vocabulary> vocab, int num_left, int num_right,
      Rational default_probability = Rational::One());

  const Vocabulary& vocab() const { return *vocab_; }
  std::shared_ptr<const Vocabulary> vocab_ptr() const { return vocab_; }
  int num_left() const { return num_left_; }
  int num_right() const { return num_right_; }
  const Rational& default_probability() const { return default_probability_; }

  // Domain growth (returns the new constant's id).
  ConstantId AddLeft() { return num_left_++; }
  ConstantId AddRight() { return num_right_++; }

  // Probability assignment. Keys must be well-formed for the symbol's kind
  // and constants must be in range (checked).
  void Set(const TupleKey& key, const Rational& probability);
  void SetUnaryLeft(SymbolId symbol, ConstantId u, const Rational& p);
  void SetUnaryRight(SymbolId symbol, ConstantId v, const Rational& p);
  void SetBinary(SymbolId symbol, ConstantId u, ConstantId v,
                 const Rational& p);

  const Rational& Probability(const TupleKey& key) const;

  // Explicitly assigned tuples (everything else has the default).
  const std::unordered_map<TupleKey, Rational, TupleKeyHash>& explicit_tuples()
      const {
    return tuples_;
  }

  // Total number of ground tuples over the current domain.
  int64_t NumGroundTuples() const;

  // True if all probabilities (including the default) lie in {0, 1/2, 1} —
  // the GFOMC setting; or {1/2, 1} — the FOMC (model counting) setting of
  // §2 for ∀CNF.
  bool IsGfomcInstance() const;
  bool IsFomcInstance() const;

  std::string DebugString() const;

 private:
  void CheckKey(const TupleKey& key) const;

  std::shared_ptr<const Vocabulary> vocab_;
  int num_left_ = 0;
  int num_right_ = 0;
  Rational default_probability_;
  std::unordered_map<TupleKey, Rational, TupleKeyHash> tuples_;
};

}  // namespace gmc

#endif  // GMC_PROB_TID_H_
