#include "prob/tid.h"

#include <utility>

#include "util/check.h"

namespace gmc {

Tid::Tid(std::shared_ptr<const Vocabulary> vocab, int num_left, int num_right,
         Rational default_probability)
    : vocab_(std::move(vocab)),
      num_left_(num_left),
      num_right_(num_right),
      default_probability_(std::move(default_probability)) {
  GMC_CHECK(vocab_ != nullptr);
  GMC_CHECK(num_left_ >= 0 && num_right_ >= 0);
  GMC_CHECK(default_probability_ >= Rational::Zero() &&
            default_probability_ <= Rational::One());
}

void Tid::CheckKey(const TupleKey& key) const {
  GMC_CHECK(key.symbol >= 0 && key.symbol < vocab_->size());
  switch (vocab_->kind(key.symbol)) {
    case SymbolKind::kUnaryLeft:
      GMC_CHECK(key.left >= 0 && key.left < num_left_ && key.right == -1);
      break;
    case SymbolKind::kUnaryRight:
      GMC_CHECK(key.right >= 0 && key.right < num_right_ && key.left == -1);
      break;
    case SymbolKind::kBinary:
      GMC_CHECK(key.left >= 0 && key.left < num_left_ && key.right >= 0 &&
                key.right < num_right_);
      break;
  }
}

void Tid::Set(const TupleKey& key, const Rational& probability) {
  CheckKey(key);
  GMC_CHECK_MSG(probability >= Rational::Zero() &&
                    probability <= Rational::One(),
                "probability out of [0, 1]");
  tuples_[key] = probability;
}

void Tid::SetUnaryLeft(SymbolId symbol, ConstantId u, const Rational& p) {
  Set(TupleKey{symbol, u, -1}, p);
}

void Tid::SetUnaryRight(SymbolId symbol, ConstantId v, const Rational& p) {
  Set(TupleKey{symbol, -1, v}, p);
}

void Tid::SetBinary(SymbolId symbol, ConstantId u, ConstantId v,
                    const Rational& p) {
  Set(TupleKey{symbol, u, v}, p);
}

const Rational& Tid::Probability(const TupleKey& key) const {
  auto it = tuples_.find(key);
  return it == tuples_.end() ? default_probability_ : it->second;
}

int64_t Tid::NumGroundTuples() const {
  int64_t total = 0;
  for (SymbolId id = 0; id < vocab_->size(); ++id) {
    switch (vocab_->kind(id)) {
      case SymbolKind::kUnaryLeft:
        total += num_left_;
        break;
      case SymbolKind::kUnaryRight:
        total += num_right_;
        break;
      case SymbolKind::kBinary:
        total += static_cast<int64_t>(num_left_) * num_right_;
        break;
    }
  }
  return total;
}

namespace {

bool InSet(const Rational& p, bool allow_zero) {
  if (p == Rational::Zero()) return allow_zero;
  return p == Rational::Half() || p == Rational::One();
}

}  // namespace

bool Tid::IsGfomcInstance() const {
  if (!InSet(default_probability_, /*allow_zero=*/true)) return false;
  for (const auto& [key, p] : tuples_) {
    if (!InSet(p, /*allow_zero=*/true)) return false;
  }
  return true;
}

bool Tid::IsFomcInstance() const {
  if (!InSet(default_probability_, /*allow_zero=*/false)) return false;
  for (const auto& [key, p] : tuples_) {
    if (!InSet(p, /*allow_zero=*/false)) return false;
  }
  return true;
}

std::string Tid::DebugString() const {
  std::string out = "Tid(left=" + std::to_string(num_left_) +
                    ", right=" + std::to_string(num_right_) +
                    ", default=" + default_probability_.ToString() + ")\n";
  for (const auto& [key, p] : tuples_) {
    out += "  " + vocab_->name(key.symbol) + "(";
    if (key.left >= 0) out += "u" + std::to_string(key.left);
    if (key.left >= 0 && key.right >= 0) out += ",";
    if (key.right >= 0) out += "v" + std::to_string(key.right);
    out += ") = " + p.ToString() + "\n";
  }
  return out;
}

}  // namespace gmc
