// The gadget databases of the hardness proof (§3.3, Fig. 1).
//
// A path block B_p(u,v) is the bipartite TID over the path
//     u = r_0 − t_1 − r_1 − … − r_{p−1} − t_p − r_p = v
// where all unary tuples in the block and all binary tuples on the 2p path
// edges have probability 1/2, and everything else keeps probability 1. Both
// endpoints u, v are left constants carrying R-atoms.
//
// A composite block B_{p1,p2}(u,v) is two disjoint path blocks in parallel
// between the same endpoints, giving y_ab(p) = y_ab(p1)·y_ab(p2) (Eq. 25).
//
// A block TID for a graph G(U, E) places one composite block per edge and
// the trivial all-probability-1 block on non-edges (§3.1), yielding
// Theorem 3.4's factorized probability.

#ifndef GMC_PROB_BLOCK_H_
#define GMC_PROB_BLOCK_H_

#include <memory>
#include <utility>
#include <vector>

#include "prob/tid.h"

namespace gmc {

// Handles to a path block's constants inside some TID.
struct PathBlock {
  ConstantId u = -1;  // left endpoint (= lefts.front())
  ConstantId v = -1;  // left endpoint (= lefts.back())
  int p = 0;
  std::vector<ConstantId> lefts;   // r_0 … r_p (endpoints included)
  std::vector<ConstantId> rights;  // t_1 … t_p
};

// Adds the internal constants and probability-1/2 tuples of B_p(u,v) to
// `tid`, between existing left constants u and v. Every unary-left symbol is
// set to 1/2 on all block left constants (including the endpoints), every
// unary-right symbol to 1/2 on all block right constants, and every binary
// symbol to 1/2 on the 2p path edges.
PathBlock AddPathBlock(Tid* tid, ConstantId u, ConstantId v, int p);

// A TID containing exactly one block between two fresh endpoints.
struct IsolatedBlock {
  IsolatedBlock(std::shared_ptr<const Vocabulary> vocab)
      : tid(std::move(vocab), 0, 0) {}
  Tid tid;
  std::vector<PathBlock> paths;  // one per parallel branch
  ConstantId u() const { return paths.front().u; }
  ConstantId v() const { return paths.front().v; }
};

IsolatedBlock MakeIsolatedBlock(std::shared_ptr<const Vocabulary> vocab,
                                const std::vector<int>& branch_lengths);

// Block-disjoint TID for a directed graph on `num_vertices` left endpoints:
// one composite block B_{p1,p2}(u_i, u_j) per edge (i, j). Vertices are the
// left constants 0..num_vertices-1.
Tid MakeBlockTidForGraph(std::shared_ptr<const Vocabulary> vocab,
                         int num_vertices,
                         const std::vector<std::pair<int, int>>& edges,
                         int p1, int p2);

}  // namespace gmc

#endif  // GMC_PROB_BLOCK_H_
