// The "small matrix" A(p) of §3.3 and its design conditions.
//
// For a final Type-I query Q, z_ab(p) is the probability of the block
// lineage Y^(p)(u,v) with R(u), R(v) fixed to a, b and every other tuple at
// probability 1/2 (Eq. 20). The matrix A(p) = [[z00, z01], [z10, z11]](p)
// obeys the transfer-matrix identity A(p) = A(1)^p / 2^{p−1} (Lemma 3.19),
// and Theorem 3.14 shows z_i(p) = a_i λ1^p + b_i λ2^p with the three
// conditions (22)–(24) that make the big matrix non-singular.
//
// Everything here is exact rational arithmetic; the eigenvalues themselves
// (typically irrational) are only exposed as double diagnostics, while the
// conditions are verified exactly via 2×2 determinant identities
// (Lemma C.35: det[[z_i(p), z_j(p)], [z_i(p+1), z_j(p+1)]] =
//  λ1^p λ2^p (λ2−λ1)(a_i b_j − a_j b_i)).

#ifndef GMC_HARDNESS_SMALL_MATRIX_H_
#define GMC_HARDNESS_SMALL_MATRIX_H_

#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "logic/query.h"
#include "poly/polynomial.h"

namespace gmc {

// A(1): z_ab(1) computed by exact WMC over the one-link block B_1(u,v).
RationalMatrix ComputeA1(const Query& query);

// A(p) = A(1)^p / 2^{p-1} (Lemma 3.19).
RationalMatrix ComputeAp(const RationalMatrix& a1, int p);

// A(p) computed directly: WMC over the isolated block B_p(u,v) with R(u),
// R(v) conditioned — the definition, used to validate Lemma 3.19 (E5).
RationalMatrix ComputeApDirect(const Query& query, int p);

// The determinant polynomial f_A of Eq. (28): det of the small matrix of
// the arithmetization of Y^(1)(u,v) w.r.t. the R(u), R(v) variables.
// Theorem 3.16 / Corollary 3.18: for final queries f_A = c·Π u_i(1−u_i).
Polynomial SmallMatrixDetPolynomial(const Query& query);

// Design-condition report for Theorem 3.14 (E7/E8).
struct DesignConditionReport {
  bool det_a1_nonzero = false;          // Theorem 3.16 at 1/2,…,1/2
  bool ordering_holds = false;          // Prop 3.20: z00 < z01 = z10 < z11
  bool symmetric = false;               // z01 == z10
  bool pairwise_independent = false;    // (24): a_i b_j ≠ a_j b_i, all i ≠ j
  bool eigen_conditions = false;        // (22): λ1 ≠ ±λ2, both non-zero
  double lambda1 = 0.0, lambda2 = 0.0;  // diagnostics only

  bool AllHold() const {
    return det_a1_nonzero && ordering_holds && symmetric &&
           pairwise_independent && eigen_conditions;
  }
  std::string ToString() const;
};

DesignConditionReport CheckDesignConditions(const RationalMatrix& a1);

// z-values for p = 1..max_p as rows {z00, z01_10, z11} via Lemma 3.19.
std::vector<std::vector<Rational>> ZSeries(const RationalMatrix& a1,
                                           int max_p);

}  // namespace gmc

#endif  // GMC_HARDNESS_SMALL_MATRIX_H_
