// The Coloring Count Problem CCP(m, n) of Definition C.2 and its link to
// #PP2CNF (Theorem C.3) — the source problem of the Type-II reduction.
//
// For a bipartite graph (U, V, E) a coloring assigns one of m colors to
// each U-node and one of n colors to each V-node; its signature counts, for
// every color pair (α, β), the edges colored (α, β) plus the per-side color
// tallies k_{α,1̂}, k_{1̂,β}. CCP asks for the number of colorings of every
// signature. Theorem C.3: an oracle for CCP(m, n), m, n ≥ 2, recovers
// #PP2CNF — restrict to colorings using colors {1, 2} only, read color 1 as
// false, and sum the counts of signatures with k_{1,1} = 0.

#ifndef GMC_HARDNESS_CCP_H_
#define GMC_HARDNESS_CCP_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/bigint.h"

namespace gmc {

struct BipartiteGraph {
  int num_u = 0;
  int num_v = 0;
  std::vector<std::pair<int, int>> edges;  // (u, v)

  static BipartiteGraph Random(int num_u, int num_v, int num_edges,
                               uint64_t seed);
  std::string ToString() const;
};

// #PP2CNF: satisfying assignments of ∧_{(u,v)∈E}(X_u ∨ Y_v), brute force.
BigInt CountPP2Cnf(const BipartiteGraph& graph);

// A coloring signature, flattened row-major over ([m]∪{1̂}) × ([n]∪{1̂});
// index (α, β) ↦ α·(n+1)+β with α = m and β = n playing 1̂ (so the k_{1̂,1̂}
// cell is always 0).
using ColoringSignature = std::vector<int>;

int SignatureIndex(int alpha, int beta, int n);

// All coloring counts of CCP(m, n) by exhaustive enumeration (m^|U| · n^|V|
// colorings; for validation only). Zero-count signatures are omitted.
std::map<ColoringSignature, BigInt> ColoringCounts(
    const BipartiteGraph& graph, int m, int n);

// Theorem C.3's extraction: #PP2CNF from the CCP(m, n) counts.
BigInt PP2CnfFromColoringCounts(
    const BipartiteGraph& graph,
    const std::map<ColoringSignature, BigInt>& counts, int m, int n);

}  // namespace gmc

#endif  // GMC_HARDNESS_CCP_H_
