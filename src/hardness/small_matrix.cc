#include "hardness/small_matrix.h"

#include <array>
#include <utility>

#include "lineage/grounder.h"
#include "poly/lemmas.h"
#include "prob/block.h"
#include "util/check.h"
#include "util/quadratic.h"
#include "wmc/wmc.h"

namespace gmc {

namespace {

struct BlockLineage {
  Lineage lineage;
  int var_ru = -1;
  int var_rv = -1;
};

// Grounds the query over the isolated block with the given branch lengths
// and locates the lineage variables of R(u), R(v).
BlockLineage GroundIsolatedBlock(const Query& query,
                                 const std::vector<int>& branch_lengths) {
  const std::vector<SymbolId> left_unaries =
      query.vocab().IdsOfKind(SymbolKind::kUnaryLeft);
  GMC_CHECK_MSG(left_unaries.size() == 1,
                "Type-I block analysis expects exactly one R symbol");
  const SymbolId r_symbol = left_unaries[0];

  IsolatedBlock block = MakeIsolatedBlock(query.vocab_ptr(), branch_lengths);
  BlockLineage out;
  out.lineage = Ground(query, block.tid);
  GMC_CHECK_MSG(!out.lineage.is_false, "block lineage is unsatisfiable");
  out.var_ru = out.lineage.VarOf(TupleKey{r_symbol, block.u(), -1});
  out.var_rv = out.lineage.VarOf(TupleKey{r_symbol, block.v(), -1});
  GMC_CHECK_MSG(out.var_ru >= 0 && out.var_rv >= 0,
                "R(u)/R(v) do not occur in the block lineage");
  return out;
}

}  // namespace

RationalMatrix ComputeApDirect(const Query& query, int p) {
  BlockLineage block = GroundIsolatedBlock(query, {p});
  WmcEngine engine;
  RationalMatrix out(2, 2);
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      Cnf conditioned = block.lineage.cnf.Condition(block.var_ru, a == 1)
                            .Condition(block.var_rv, b == 1);
      out.At(a, b) = engine.Probability(conditioned,
                                        block.lineage.probabilities);
    }
  }
  return out;
}

RationalMatrix ComputeA1(const Query& query) {
  return ComputeApDirect(query, 1);
}

RationalMatrix ComputeAp(const RationalMatrix& a1, int p) {
  GMC_CHECK(p >= 1);
  // Lemma 3.19: A(p) = A(1)^p / 2^{p-1}.
  return a1.Pow(static_cast<uint64_t>(p))
      .ScaledBy(Rational::Half().Pow(p - 1));
}

Polynomial SmallMatrixDetPolynomial(const Query& query) {
  BlockLineage block = GroundIsolatedBlock(query, {1});
  Polynomial y = ArithmetizeCnf(block.lineage.cnf);
  return SmallMatrix(y, block.var_ru, block.var_rv).Determinant();
}

std::string DesignConditionReport::ToString() const {
  std::string out;
  auto flag = [&out](const char* name, bool value) {
    out += std::string(name) + "=" + (value ? "yes" : "NO") + " ";
  };
  flag("det(A1)!=0", det_a1_nonzero);
  flag("z00<z01=z10<z11", ordering_holds && symmetric);
  flag("eigen(22)", eigen_conditions);
  flag("pairwise(23)(24)", pairwise_independent);
  out += "lambda1=" + std::to_string(lambda1) +
         " lambda2=" + std::to_string(lambda2);
  return out;
}

DesignConditionReport CheckDesignConditions(const RationalMatrix& a1) {
  GMC_CHECK(a1.rows() == 2 && a1.cols() == 2);
  DesignConditionReport report;
  const Rational z00 = a1.At(0, 0), z01 = a1.At(0, 1);
  const Rational z10 = a1.At(1, 0), z11 = a1.At(1, 1);

  report.symmetric = z01 == z10;
  report.ordering_holds = Rational::Zero() < z00 && z00 < z01 && z01 < z11 &&
                          z11 <= Rational::One();
  const Rational det = z00 * z11 - z01 * z10;
  report.det_a1_nonzero = !det.IsZero();

  // Exact spectral analysis in ℚ(√disc): λ = (tr ± √disc)/2.
  const Rational trace = z00 + z11;
  const Rational disc = trace * trace - Rational(4) * det;
  GMC_CHECK_MSG(disc >= Rational::Zero(),
                "symmetric matrix must have real eigenvalues");
  using Q = QuadraticNumber;
  const Q root = Q::Root(disc);
  const Q half = Q::FromRational(Rational::Half(), disc);
  const Q lambda1 = (Q::FromRational(trace, disc) - root) * half;
  const Q lambda2 = (Q::FromRational(trace, disc) + root) * half;
  report.lambda1 = lambda1.ToDouble();
  report.lambda2 = lambda2.ToDouble();
  report.eigen_conditions = lambda1.Sign() != 0 && lambda2.Sign() != 0 &&
                            (lambda1 - lambda2).Sign() != 0 &&
                            (lambda1 + lambda2).Sign() != 0;

  if (!report.det_a1_nonzero || !report.eigen_conditions) return report;

  // Spectral projectors: A^p = λ1^p E1 + λ2^p E2 with
  // E1 = (A − λ2 I)/(λ1 − λ2), E2 = (A − λ1 I)/(λ2 − λ1). Entry (r,c) of Ei
  // gives the coefficient of λi^p in z_rc(p) (up to the uniform 1/2^{p-1}
  // scaling, which cancels from every condition below).
  const Q denom1 = lambda1 - lambda2;
  const Q denom2 = lambda2 - lambda1;
  std::array<std::array<Q, 2>, 2> e1, e2;
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      Q entry = Q::FromRational(a1.At(r, c), disc);
      Q diag1 = r == c ? lambda2 : Q::FromRational(Rational::Zero(), disc);
      Q diag2 = r == c ? lambda1 : Q::FromRational(Rational::Zero(), disc);
      e1[r][c] = (entry - diag1) / denom1;
      e2[r][c] = (entry - diag2) / denom2;
    }
  }
  // Conditions (23) and (24) over i ∈ {00, 10, 11} (z01 = z10): bᵢ ≠ 0 and
  // aᵢbⱼ ≠ aⱼbᵢ, where aᵢ = E1 entry, bᵢ = E2 entry (λ2 is the larger).
  const std::array<std::pair<int, int>, 3> indices = {
      std::make_pair(0, 0), std::make_pair(1, 0), std::make_pair(1, 1)};
  bool ok = true;
  for (const auto& [r, c] : indices) {
    if (e2[r][c].Sign() == 0) ok = false;
  }
  for (size_t i = 0; i < indices.size() && ok; ++i) {
    for (size_t j = i + 1; j < indices.size() && ok; ++j) {
      const auto& [ri, ci] = indices[i];
      const auto& [rj, cj] = indices[j];
      Q lhs = e1[ri][ci] * e2[rj][cj];
      Q rhs = e1[rj][cj] * e2[ri][ci];
      if ((lhs - rhs).Sign() == 0) ok = false;
    }
  }
  report.pairwise_independent = ok;
  return report;
}

std::vector<std::vector<Rational>> ZSeries(const RationalMatrix& a1,
                                           int max_p) {
  GMC_CHECK(max_p >= 1);
  std::vector<std::vector<Rational>> out;
  RationalMatrix ap = a1;
  for (int p = 1; p <= max_p; ++p) {
    GMC_CHECK_MSG(ap.At(0, 1) == ap.At(1, 0),
                  "blocks must be symmetric (Prop 3.20)");
    out.push_back({ap.At(0, 0), ap.At(0, 1), ap.At(1, 1)});
    ap = (ap * a1).ScaledBy(Rational::Half());  // A(p+1) = A(p)·A(1)/2
  }
  return out;
}

}  // namespace gmc
