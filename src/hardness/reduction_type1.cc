#include "hardness/reduction_type1.h"

#include <utility>
#include <vector>

#include "hardness/big_matrix.h"
#include "lineage/grounder.h"
#include "logic/bipartite.h"
#include "prob/block.h"
#include "util/check.h"
#include "wmc/wmc.h"

namespace gmc {

std::vector<Rational> Oracle::ProbabilityBatch(const Query& query,
                                               const std::vector<Tid>& tids) {
  std::vector<Rational> results;
  results.reserve(tids.size());
  for (const Tid& tid : tids) results.push_back(Probability(query, tid));
  return results;
}

Rational WmcOracle::Probability(const Query& query, const Tid& tid) {
  ++calls_;
  WmcEngine engine;
  return engine.QueryProbability(query, tid);
}

Rational CompiledOracle::Probability(const Query& query, const Tid& tid) {
  ++calls_;
  return cache_.QueryProbability(query, tid);
}

std::vector<Rational> CompiledOracle::ProbabilityBatch(
    const Query& query, const std::vector<Tid>& tids) {
  calls_ += static_cast<int>(tids.size());
  if (query.IsFalse()) {
    return std::vector<Rational>(tids.size(), Rational::Zero());
  }
  if (query.IsTrue()) {
    return std::vector<Rational>(tids.size(), Rational::One());
  }
  std::vector<Lineage> lineages;
  lineages.reserve(tids.size());
  for (const Tid& tid : tids) lineages.push_back(Ground(query, tid));
  return cache_.ProbabilityBatch(lineages);
}

Rational FactorizedOracle::Probability(const Query& query, const Tid& tid) {
  (void)query;
  (void)tid;
  GMC_CHECK_MSG(false,
                "FactorizedOracle needs block structure; use "
                "GraphProbability (the reduction does this internally)");
  return Rational::Zero();
}

Rational FactorizedOracle::GraphProbability(
    const P2Cnf& phi, const std::vector<Rational>& y) {
  ++calls_;
  GMC_CHECK(y.size() == 3);  // {y00, y01(=y10), y11}
  const int n = phi.num_vars;
  GMC_CHECK_MSG(n <= 25, "factorized oracle limited to 25 vertices");
  Rational total = Rational::Zero();
  const uint64_t limit = uint64_t{1} << n;
  for (uint64_t theta = 0; theta < limit; ++theta) {
    Rational world = Rational::One();
    for (const auto& [i, j] : phi.edges) {
      const int a = (theta >> i) & 1;
      const int b = (theta >> j) & 1;
      world *= y[a + b];  // y00, y01=y10, or y11 by the number of ones
      if (world.IsZero()) break;
    }
    total += world;
  }
  return total * Rational::Half().Pow(n);
}

Type1Reduction::Type1Reduction(const Query& query)
    : query_(query), a1_(ComputeA1(query)) {
  BipartiteAnalysis analysis = AnalyzeBipartite(query);
  GMC_CHECK_MSG(!analysis.safe,
                "Type1Reduction requires an unsafe query (safe queries are "
                "in PTIME; there is nothing to reduce to)");
  GMC_CHECK_MSG(analysis.left_type == PartType::kTypeI &&
                    analysis.right_type == PartType::kTypeI,
                "Type1Reduction requires a Type I-I query");
}

Tid Type1Reduction::BuildTid(const P2Cnf& phi, int p1, int p2) const {
  return MakeBlockTidForGraph(query_.vocab_ptr(), phi.num_vars, phi.edges,
                              p1, p2);
}

Type1ReductionResult Type1Reduction::Run(const P2Cnf& phi, Oracle* oracle) {
  const int m = phi.num_clauses();
  const int n = phi.num_vars;
  GMC_CHECK_MSG(m >= 1, "the reduction needs at least one clause");

  Type1ReductionResult result;
  result.design_report = CheckDesignConditions(a1_);
  GMC_CHECK_MSG(result.design_report.AllHold(),
                "design conditions (22)-(24) failed; is the query final?");

  // z-series for p = 1..m+1 (Lemma 3.19) and the symmetric big matrix
  // (Theorem 3.6, multiset-row form — see big_matrix.h).
  const std::vector<std::vector<Rational>> z_series = ZSeries(a1_, m + 1);
  SymmetricBigMatrix big = BuildSymmetricBigMatrix(z_series, m);

  // Right-hand side: 2^n · Pr_∆(Q), one oracle call per multiset {p1, p2}.
  // All TIDs are known up front, so the oracle sees them as one batch —
  // structure-aware oracles (CompiledOracle) collapse the whole sweep into
  // one circuit pass per distinct gadget lineage.
  const Rational two_pow_n = Rational(BigInt(1).ShiftLeft(n), BigInt(1));
  std::vector<Rational> rhs(big.matrix.rows());
  if (oracle != nullptr) {
    std::vector<Tid> tids;
    tids.reserve(big.row_params.size());
    for (const auto& [p1, p2] : big.row_params) {
      tids.push_back(BuildTid(phi, p1, p2));
    }
    std::vector<Rational> probabilities =
        oracle->ProbabilityBatch(query_, tids);
    GMC_CHECK_MSG(probabilities.size() == tids.size(),
                  "oracle returned the wrong number of batch results");
    result.oracle_calls = oracle->calls();
    for (size_t row = 0; row < probabilities.size(); ++row) {
      rhs[row] = probabilities[row] * two_pow_n;
    }
  } else {
    FactorizedOracle factorized;
    for (size_t row = 0; row < big.row_params.size(); ++row) {
      const auto& [p1, p2] = big.row_params[row];
      std::vector<Rational> y = {z_series[p1 - 1][0] * z_series[p2 - 1][0],
                                 z_series[p1 - 1][1] * z_series[p2 - 1][1],
                                 z_series[p1 - 1][2] * z_series[p2 - 1][2]};
      rhs[row] = factorized.GraphProbability(phi, y) * two_pow_n;
      result.oracle_calls = factorized.calls();
    }
  }

  // Exact solve; non-singularity is Theorem 3.6's guarantee, re-checked
  // here on every run.
  std::optional<std::vector<Rational>> solution = big.matrix.Solve(rhs);
  result.big_matrix_nonsingular = solution.has_value();
  GMC_CHECK_MSG(result.big_matrix_nonsingular,
                "big matrix singular (contradicts Theorem 3.6)");

  // Decode the recovered signature counts; #Φ sums those with k00 = 0.
  result.solution_integral = true;
  result.model_count = BigInt(0);
  for (size_t c = 0; c < big.col_signatures.size(); ++c) {
    const Rational& value = (*solution)[c];
    if (!value.IsInteger() || value.sign() < 0) {
      result.solution_integral = false;
    }
    if (value.IsZero()) continue;
    const auto& signature = big.col_signatures[c];
    result.signature_counts[signature] = value.numerator();
    if (signature[0] == 0) result.model_count += value.numerator();
  }
  return result;
}

}  // namespace gmc
