#include "hardness/zigzag.h"

#include <algorithm>
#include <string>

#include "logic/bipartite.h"
#include "util/check.h"

namespace gmc {

namespace {

// Branch copies of a set of binary symbols.
std::vector<SymbolId> CopyOf(const ZigzagQuery& zigzag,
                             const std::vector<SymbolId>& symbols,
                             int branch) {
  std::vector<SymbolId> out;
  out.reserve(symbols.size());
  for (SymbolId s : symbols) {
    out.push_back(zigzag.binary_copies.at(s)[branch - 1]);
  }
  return out;
}

}  // namespace

ZigzagQuery MakeZigzagQuery(const Query& query) {
  BipartiteAnalysis analysis = AnalyzeBipartite(query);
  GMC_CHECK_MSG(!analysis.safe, "zg(Q) is defined for unsafe queries");

  ZigzagQuery out{Query(query.vocab_ptr()), 0, query, {}, -1, {}, -1, -1};

  // n = 2 for Type I right parts; otherwise max(3, widest right clause).
  int n = 2;
  if (analysis.right_type != PartType::kTypeI) {
    n = 3;
    for (const Clause& clause : query.clauses()) {
      if (clause.IsRightClause() && clause.base() == Side::kRight) {
        n = std::max(n, clause.NumSubclauses());
      }
    }
  }
  out.n = n;

  // Fresh vocabulary.
  auto zg_vocab = std::make_shared<Vocabulary>();
  const Vocabulary& vocab = query.vocab();
  for (SymbolId s : query.Symbols()) {
    const std::string& name = vocab.name(s);
    switch (vocab.kind(s)) {
      case SymbolKind::kBinary: {
        std::vector<SymbolId> copies;
        for (int i = 1; i <= n; ++i) {
          copies.push_back(zg_vocab->Add(name + "_" + std::to_string(i),
                                         SymbolKind::kBinary));
        }
        out.binary_copies[s] = std::move(copies);
        break;
      }
      case SymbolKind::kUnaryLeft: {
        GMC_CHECK_MSG(out.r_original == -1, "more than one R symbol");
        out.r_original = s;
        for (int i = 1; i <= n; ++i) {
          SymbolKind kind = i == 1   ? SymbolKind::kUnaryLeft
                            : i == n ? SymbolKind::kUnaryRight
                                     : SymbolKind::kBinary;
          out.r_copies.push_back(
              zg_vocab->Add(name + "_" + std::to_string(i), kind));
        }
        break;
      }
      case SymbolKind::kUnaryRight: {
        GMC_CHECK_MSG(out.t_original == -1, "more than one T symbol");
        out.t_original = s;
        out.t12 = zg_vocab->Add(name + "_12", SymbolKind::kBinary);
        break;
      }
    }
  }

  // Clause translation (Eqs. 38–45).
  std::vector<Clause> clauses;
  for (const Clause& clause : query.clauses()) {
    const bool is_left = clause.IsLeftClause();
    const bool is_right = clause.IsRightClause();
    GMC_CHECK_MSG(!(is_left && is_right),
                  "H0-shaped clauses are excluded (handled separately in "
                  "the paper)");
    if (is_left && clause.HasUnaryOfSide(Side::kLeft)) {
      // Type I left: R(x) ∨ S_J(x,y) — one clause per branch (38)-(39).
      GMC_CHECK(clause.NumSubclauses() == 1);
      const std::vector<SymbolId>& j_set = clause.subclauses()[0].binaries;
      for (int i = 1; i <= n; ++i) {
        std::vector<SymbolId> s_copy = CopyOf(out, j_set, i);
        if (i == 1) {
          clauses.push_back(
              Clause(Side::kLeft, {out.r_copies[0]}, {Subclause{s_copy, {}}}));
        } else if (i == n) {
          clauses.push_back(Clause(Side::kLeft, {},
                                   {Subclause{s_copy, {out.r_copies[n - 1]}}}));
        } else {
          s_copy.push_back(out.r_copies[i - 1]);  // R^(i) is binary
          clauses.push_back(
              Clause(Side::kLeft, {}, {Subclause{s_copy, {}}}));
        }
      }
    } else if (is_left) {
      // Type II left (40)-(41).
      for (int i = 1; i <= n; ++i) {
        if (i == 1 || i == n) {
          std::vector<Subclause> subs;
          for (const Subclause& sub : clause.subclauses()) {
            subs.push_back(Subclause{CopyOf(out, sub.binaries, i), {}});
          }
          clauses.push_back(Clause(i == 1 ? Side::kLeft : Side::kRight, {},
                                   std::move(subs)));
        } else {
          std::vector<SymbolId> merged;
          for (const Subclause& sub : clause.subclauses()) {
            std::vector<SymbolId> copy = CopyOf(out, sub.binaries, i);
            merged.insert(merged.end(), copy.begin(), copy.end());
          }
          clauses.push_back(
              Clause(Side::kLeft, {}, {Subclause{merged, {}}}));
        }
      }
    } else if (is_right && clause.HasUnaryOfSide(Side::kRight) &&
               clause.NumSubclauses() == 1) {
      // Type I right: S_J ∨ T(y) → two middle clauses (43)-(44).
      GMC_CHECK(n == 2);
      const std::vector<SymbolId>& j_set = clause.subclauses()[0].binaries;
      for (int i = 1; i <= 2; ++i) {
        std::vector<SymbolId> s_copy = CopyOf(out, j_set, i);
        s_copy.push_back(out.t12);
        clauses.push_back(Clause(Side::kLeft, {}, {Subclause{s_copy, {}}}));
      }
    } else if (is_right && clause.base() == Side::kRight) {
      // Type II right: one middle clause per φ : [ℓ] → [n] (45).
      const int ell = clause.NumSubclauses();
      std::vector<int> phi(ell, 1);
      while (true) {
        std::vector<SymbolId> merged;
        for (int i = 0; i < ell; ++i) {
          std::vector<SymbolId> copy =
              CopyOf(out, clause.subclauses()[i].binaries, phi[i]);
          merged.insert(merged.end(), copy.begin(), copy.end());
        }
        clauses.push_back(Clause(Side::kLeft, {}, {Subclause{merged, {}}}));
        int pos = ell - 1;
        while (pos >= 0 && phi[pos] == n) phi[pos--] = 1;
        if (pos < 0) break;
        ++phi[pos];
      }
    } else {
      // Middle clause: n branch copies (42). Pure-unary clauses (outside
      // Def. 2.3) are not supported here.
      GMC_CHECK_MSG(clause.IsMiddleClause(),
                    "unsupported clause shape for zg()");
      const std::vector<SymbolId>& j_set = clause.subclauses()[0].binaries;
      for (int i = 1; i <= n; ++i) {
        clauses.push_back(
            Clause(Side::kLeft, {}, {Subclause{CopyOf(out, j_set, i), {}}}));
      }
    }
  }
  out.query = Query(zg_vocab, std::move(clauses));
  return out;
}

Tid MakeZigzagTid(const ZigzagQuery& zigzag, const Tid& delta) {
  const int n = zigzag.n;
  const int v1 = delta.num_left();
  const int v2 = delta.num_right();
  // Left constants of zg(∆): the V1 constants, then the V2 constants, then
  // the dead-end branches f^(i)_uv (i = 2..n-1). Right constants: e_uv.
  const int num_left = v1 + v2 + v1 * v2 * (n - 2);
  const int num_right = v1 * v2;
  Tid out(zigzag.original.vocab_ptr(), num_left, num_right,
          Rational::One());
  auto f_constant = [&](int u, int v, int i) {
    return v1 + v2 + (u * v2 + v) * (n - 2) + (i - 2);
  };
  auto e_constant = [&](int u, int v) { return u * v2 + v; };

  auto set_if_uncertain = [&out](const TupleKey& key, const Rational& p) {
    if (!p.IsOne()) out.Set(key, p);
  };

  if (zigzag.r_original != -1) {
    for (int u = 0; u < v1; ++u) {
      set_if_uncertain(
          TupleKey{zigzag.r_original, u, -1},
          delta.Probability(TupleKey{zigzag.r_copies[0], u, -1}));
    }
    for (int v = 0; v < v2; ++v) {
      set_if_uncertain(
          TupleKey{zigzag.r_original, v1 + v, -1},
          delta.Probability(TupleKey{zigzag.r_copies[n - 1], -1, v}));
    }
    for (int u = 0; u < v1; ++u) {
      for (int v = 0; v < v2; ++v) {
        for (int i = 2; i <= n - 1; ++i) {
          set_if_uncertain(
              TupleKey{zigzag.r_original, f_constant(u, v, i), -1},
              delta.Probability(TupleKey{zigzag.r_copies[i - 1], u, v}));
        }
      }
    }
  }
  if (zigzag.t_original != -1) {
    for (int u = 0; u < v1; ++u) {
      for (int v = 0; v < v2; ++v) {
        set_if_uncertain(TupleKey{zigzag.t_original, -1, e_constant(u, v)},
                         delta.Probability(TupleKey{zigzag.t12, u, v}));
      }
    }
  }
  for (const auto& [original, copies] : zigzag.binary_copies) {
    for (int u = 0; u < v1; ++u) {
      for (int v = 0; v < v2; ++v) {
        const int e = e_constant(u, v);
        set_if_uncertain(TupleKey{original, u, e},
                         delta.Probability(TupleKey{copies[0], u, v}));
        set_if_uncertain(TupleKey{original, v1 + v, e},
                         delta.Probability(TupleKey{copies[n - 1], u, v}));
        for (int i = 2; i <= n - 1; ++i) {
          set_if_uncertain(TupleKey{original, f_constant(u, v, i), e},
                           delta.Probability(TupleKey{copies[i - 1], u, v}));
        }
      }
    }
  }
  return out;
}

}  // namespace gmc
