#include "hardness/type2.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

#include "compile/circuit_cache.h"
#include "lineage/grounder.h"
#include "logic/bipartite.h"
#include "util/check.h"
#include "wmc/wmc.h"

namespace gmc {

namespace {

// Middle-clause-only query from a symbol CNF: ∀x∀y F(x,y).
std::vector<Clause> MiddleClausesOf(const SymbolCnf& formula) {
  std::vector<Clause> out;
  for (const auto& clause : formula.clauses) {
    out.push_back(Clause(Side::kLeft, {}, {Subclause{clause, {}}}));
  }
  return out;
}

}  // namespace

TypeIIStructure AnalyzeTypeII(const Query& query) {
  BipartiteAnalysis analysis = AnalyzeBipartite(query);
  GMC_CHECK_MSG(!analysis.safe, "Type II analysis expects an unsafe query");
  GMC_CHECK_MSG(analysis.left_type == PartType::kTypeII &&
                    analysis.right_type == PartType::kTypeII,
                "query is not of type II-II");

  TypeIIStructure out{query, SymbolCnf{}, {}, {}, nullptr, nullptr, 0, 0};

  std::vector<const Clause*> left_clauses, right_clauses;
  std::vector<std::vector<SymbolId>> middle_clauses;
  for (const Clause& clause : query.clauses()) {
    if (clause.IsLeftClause()) {
      left_clauses.push_back(&clause);
    } else if (clause.IsRightClause()) {
      right_clauses.push_back(&clause);
    } else {
      GMC_CHECK(clause.IsMiddleClause());
      middle_clauses.push_back(clause.subclauses()[0].binaries);
    }
  }
  out.middle = SymbolCnf::FromClauses(std::move(middle_clauses));

  // Distribute ∧ over ∨ (CNF→DNF across clauses) to get the Gᵢ of Eq. (47).
  auto distribute = [](const std::vector<const Clause*>& clauses) {
    std::vector<SymbolCnf> formulas;
    if (clauses.empty()) return formulas;
    std::vector<size_t> choice(clauses.size(), 0);
    while (true) {
      std::vector<std::vector<SymbolId>> picked;
      for (size_t c = 0; c < clauses.size(); ++c) {
        picked.push_back(clauses[c]->subclauses()[choice[c]].binaries);
      }
      formulas.push_back(SymbolCnf::FromClauses(std::move(picked)));
      size_t pos = 0;
      while (pos < choice.size()) {
        if (++choice[pos] <
            static_cast<size_t>(clauses[pos]->NumSubclauses())) {
          break;
        }
        choice[pos] = 0;
        ++pos;
      }
      if (pos == choice.size()) break;
    }
    std::sort(formulas.begin(), formulas.end());
    formulas.erase(std::unique(formulas.begin(), formulas.end()),
                   formulas.end());
    return formulas;
  };

  for (const SymbolCnf& g : distribute(left_clauses)) {
    out.left_formulas.push_back(SymbolCnf::And(g, out.middle));
  }
  for (const SymbolCnf& h : distribute(right_clauses)) {
    out.right_formulas.push_back(SymbolCnf::And(out.middle, h));
  }
  GMC_CHECK(!out.left_formulas.empty() && !out.right_formulas.empty());
  out.left_lattice =
      std::make_unique<ImplicationLattice>(out.left_formulas);
  out.right_lattice =
      std::make_unique<ImplicationLattice>(out.right_formulas);
  out.m_bar = static_cast<int>(out.left_lattice->StrictSupport().size());
  out.n_bar = static_cast<int>(out.right_lattice->StrictSupport().size());
  return out;
}

Query MakeQueryAlphaBeta(const TypeIIStructure& structure, int alpha,
                         int beta) {
  const auto& left = structure.left_lattice->elements();
  const auto& right = structure.right_lattice->elements();
  GMC_CHECK(alpha >= 0 && alpha < static_cast<int>(left.size()));
  GMC_CHECK(beta >= 0 && beta < static_cast<int>(right.size()));
  if (alpha == 0 && beta == 0) return structure.query;  // Q_1̂1̂ ≡ Q
  if (alpha > 0 && beta > 0) {
    // Eq. (54): ∀x∀y(G_α ∧ C ∧ H_β); both lattice formulas already include
    // C, so their conjunction is exactly the right CNF.
    SymbolCnf conj =
        SymbolCnf::And(left[alpha].formula, right[beta].formula);
    return Query(structure.query.vocab_ptr(), MiddleClausesOf(conj));
  }
  // Eq. (55): Q ∧ the grounded-side formula.
  std::vector<Clause> clauses = structure.query.clauses();
  const SymbolCnf& extra =
      alpha > 0 ? left[alpha].formula : right[beta].formula;
  for (Clause& c : MiddleClausesOf(extra)) clauses.push_back(std::move(c));
  return Query(structure.query.vocab_ptr(), std::move(clauses));
}

bool CheckInvertibility(const TypeIIStructure& structure) {
  // Order: α ≤ α′ in Lˆ iff subset(α′) ⊆ subset(α); 1̂ (index 0, subset ∅)
  // is the top.
  const auto& left = structure.left_lattice->elements();
  const auto& right = structure.right_lattice->elements();
  auto leq = [](uint32_t a, uint32_t b) {  // element a ≤ element b
    return (b & a) == b;                   // subset(b) ⊆ subset(a)
  };
  for (int a1 = 0; a1 < static_cast<int>(left.size()); ++a1) {
    for (int b1 = 0; b1 < static_cast<int>(right.size()); ++b1) {
      Query q1 = MakeQueryAlphaBeta(structure, a1, b1);
      for (int a2 = 0; a2 < static_cast<int>(left.size()); ++a2) {
        for (int b2 = 0; b2 < static_cast<int>(right.size()); ++b2) {
          Query q2 = MakeQueryAlphaBeta(structure, a2, b2);
          if (!Query::Implies(q1, q2)) continue;
          if (!leq(left[a1].subset, left[a2].subset) ||
              !leq(right[b1].subset, right[b2].subset)) {
            return false;
          }
        }
      }
    }
  }
  return true;
}

MobiusInversionCheck VerifyMobiusInversion(const TypeIIStructure& structure,
                                           const Tid& delta) {
  MobiusInversionCheck out;
  WmcEngine engine;
  out.direct = engine.QueryProbability(structure.query, delta);

  const Vocabulary& vocab = structure.query.vocab();
  const int nu = delta.num_left();
  const int nv = delta.num_right();
  const std::vector<int> l0g = structure.left_lattice->StrictSupport();
  const std::vector<int> l0h = structure.right_lattice->StrictSupport();

  // Per-block probabilities Pr(Y_αβ(u,v)): the block is the single pair
  // (u,v) with delta's probabilities. Every (α, β, u, v) combination the
  // inversion sum can touch is known up front, so all blocks are grounded
  // first and handed to the circuit cache as one batch — each distinct
  // lineage structure (typically one per (α, β)) compiles once and its
  // blocks are served by a single batched circuit pass instead of one walk
  // per block.
  CircuitCache circuits;
  std::map<std::tuple<int, int, int, int>, Rational> block_probability;
  {
    // The pair TID depends only on (u, v); build the nu·nv of them once
    // instead of once per (α, β).
    std::vector<Tid> pair_tids;
    pair_tids.reserve(static_cast<size_t>(nu) * nv);
    for (int u = 0; u < nu; ++u) {
      for (int v = 0; v < nv; ++v) {
        Tid pair_tid(structure.query.vocab_ptr(), 1, 1, Rational::One());
        for (SymbolId s = 0; s < vocab.size(); ++s) {
          if (vocab.kind(s) != SymbolKind::kBinary) continue;
          pair_tid.SetBinary(s, 0, 0, delta.Probability(TupleKey{s, u, v}));
        }
        pair_tids.push_back(std::move(pair_tid));
      }
    }
    // One batch per (α, β): lineage structure is shared within an (α, β)
    // and rarely across them, so this keeps the single-pass-per-structure
    // win while holding only nu·nv grounded lineages alive at a time.
    for (int a : l0g) {
      for (int b : l0h) {
        const Query q_ab = MakeQueryAlphaBeta(structure, a, b);
        std::vector<Lineage> lineages;
        lineages.reserve(pair_tids.size());
        for (const Tid& pair_tid : pair_tids) {
          lineages.push_back(Ground(q_ab, pair_tid));
        }
        std::vector<Rational> values = circuits.ProbabilityBatch(lineages);
        for (int u = 0; u < nu; ++u) {
          for (int v = 0; v < nv; ++v) {
            block_probability.emplace(std::make_tuple(u, v, a, b),
                                      std::move(values[u * nv + v]));
          }
        }
      }
    }
  }
  auto y = [&](int u, int v, int a, int b) {
    return block_probability.at(std::make_tuple(u, v, a, b));
  };

  // Σ over σ : U → L0(G), τ : V → L0(H) (odometers over support indices).
  Rational total = Rational::Zero();
  std::vector<size_t> sigma(nu, 0);
  while (true) {
    std::vector<size_t> tau(nv, 0);
    while (true) {
      ++out.terms;
      Rational term = Rational::One();
      for (int u = 0; u < nu; ++u) {
        term *= Rational(
            structure.left_lattice->elements()[l0g[sigma[u]]].mobius);
      }
      for (int v = 0; v < nv; ++v) {
        term *= Rational(
            structure.right_lattice->elements()[l0h[tau[v]]].mobius);
      }
      for (int u = 0; u < nu && !term.IsZero(); ++u) {
        for (int v = 0; v < nv && !term.IsZero(); ++v) {
          term *= y(u, v, l0g[sigma[u]], l0h[tau[v]]);
        }
      }
      total += term;
      int pos = nv - 1;
      while (pos >= 0 && tau[pos] == l0h.size() - 1) tau[pos--] = 0;
      if (pos < 0) break;
      ++tau[pos];
    }
    int pos = nu - 1;
    while (pos >= 0 && sigma[pos] == l0g.size() - 1) sigma[pos--] = 0;
    if (pos < 0) break;
    ++sigma[pos];
  }
  // (−1)^{|U|+|V|}.
  if ((nu + nv) % 2 == 1) total = -total;
  out.via_inversion = total;
  out.circuit_compiles = static_cast<int>(circuits.stats().compiles);
  out.circuit_hits = static_cast<int>(circuits.stats().hits);
  out.batch_passes = static_cast<int>(circuits.stats().batch_passes);
  return out;
}

}  // namespace gmc
