#include "hardness/ccp.h"

#include <random>
#include <set>

#include "util/check.h"

namespace gmc {

BipartiteGraph BipartiteGraph::Random(int num_u, int num_v, int num_edges,
                                      uint64_t seed) {
  GMC_CHECK(num_u >= 1 && num_v >= 1);
  GMC_CHECK(num_edges <= num_u * num_v);
  std::mt19937_64 rng(seed);
  BipartiteGraph out;
  out.num_u = num_u;
  out.num_v = num_v;
  std::set<std::pair<int, int>> seen;
  while (static_cast<int>(out.edges.size()) < num_edges) {
    int u = static_cast<int>(rng() % num_u);
    int v = static_cast<int>(rng() % num_v);
    if (!seen.insert({u, v}).second) continue;
    out.edges.emplace_back(u, v);
  }
  return out;
}

std::string BipartiteGraph::ToString() const {
  std::string out = "U=" + std::to_string(num_u) +
                    " V=" + std::to_string(num_v) + " E={";
  for (size_t i = 0; i < edges.size(); ++i) {
    if (i > 0) out += ",";
    out += "(" + std::to_string(edges[i].first) + "," +
           std::to_string(edges[i].second) + ")";
  }
  return out + "}";
}

BigInt CountPP2Cnf(const BipartiteGraph& graph) {
  GMC_CHECK_MSG(graph.num_u + graph.num_v <= 25,
                "brute force limited to 25 variables");
  BigInt count(0);
  const uint64_t limit = uint64_t{1} << (graph.num_u + graph.num_v);
  for (uint64_t mask = 0; mask < limit; ++mask) {
    bool satisfied = true;
    for (const auto& [u, v] : graph.edges) {
      const bool xu = (mask >> u) & 1;
      const bool yv = (mask >> (graph.num_u + v)) & 1;
      if (!xu && !yv) {
        satisfied = false;
        break;
      }
    }
    if (satisfied) count += BigInt(1);
  }
  return count;
}

int SignatureIndex(int alpha, int beta, int n) {
  return alpha * (n + 1) + beta;
}

std::map<ColoringSignature, BigInt> ColoringCounts(
    const BipartiteGraph& graph, int m, int n) {
  GMC_CHECK(m >= 2 && n >= 2);
  // Enumerate all colorings (odometers over σ and τ).
  double work = 1;
  for (int i = 0; i < graph.num_u; ++i) work *= m;
  for (int i = 0; i < graph.num_v; ++i) work *= n;
  GMC_CHECK_MSG(work <= 4e7, "coloring enumeration too large");

  std::map<ColoringSignature, BigInt> counts;
  std::vector<int> sigma(graph.num_u, 0);
  while (true) {
    std::vector<int> tau(graph.num_v, 0);
    while (true) {
      ColoringSignature signature((m + 1) * (n + 1), 0);
      for (const auto& [u, v] : graph.edges) {
        ++signature[SignatureIndex(sigma[u], tau[v], n)];
      }
      for (int u = 0; u < graph.num_u; ++u) {
        ++signature[SignatureIndex(sigma[u], n, n)];  // k_{α,1̂}
      }
      for (int v = 0; v < graph.num_v; ++v) {
        ++signature[SignatureIndex(m, tau[v], n)];  // k_{1̂,β}
      }
      auto [it, inserted] = counts.emplace(signature, BigInt(1));
      if (!inserted) it->second += BigInt(1);
      int pos = graph.num_v - 1;
      while (pos >= 0 && tau[pos] == n - 1) tau[pos--] = 0;
      if (pos < 0) break;
      ++tau[pos];
    }
    int pos = graph.num_u - 1;
    while (pos >= 0 && sigma[pos] == m - 1) sigma[pos--] = 0;
    if (pos < 0) break;
    ++sigma[pos];
  }
  return counts;
}

BigInt PP2CnfFromColoringCounts(
    const BipartiteGraph& graph,
    const std::map<ColoringSignature, BigInt>& counts, int m, int n) {
  // Valid colorings use colors {0, 1} (paper's {1, 2}); color 0 = false.
  // Satisfying ⟺ no edge colored (0, 0).
  BigInt total(0);
  for (const auto& [signature, count] : counts) {
    bool valid = true;
    for (int alpha = 0; alpha <= m && valid; ++alpha) {
      for (int beta = 0; beta <= n && valid; ++beta) {
        const int value = signature[SignatureIndex(alpha, beta, n)];
        if (value == 0) continue;
        const bool alpha_high = alpha >= 2 && alpha < m;
        const bool beta_high = beta >= 2 && beta < n;
        if (alpha_high || beta_high) valid = false;        // extra colors
        if (alpha == 0 && beta == 0) valid = false;        // violated clause
      }
    }
    if (valid) total += count;
  }
  (void)graph;
  return total;
}

}  // namespace gmc
