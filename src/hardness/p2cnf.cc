#include "hardness/p2cnf.h"

#include <algorithm>
#include <random>
#include <set>
#include <utility>

#include "util/check.h"

namespace gmc {

P2Cnf P2Cnf::Random(int num_vars, int num_edges, uint64_t seed) {
  GMC_CHECK(num_vars >= 2);
  GMC_CHECK(num_edges <= num_vars * (num_vars - 1) / 2);
  std::mt19937_64 rng(seed);
  P2Cnf out;
  out.num_vars = num_vars;
  std::set<std::pair<int, int>> seen;
  while (static_cast<int>(out.edges.size()) < num_edges) {
    int i = static_cast<int>(rng() % num_vars);
    int j = static_cast<int>(rng() % num_vars);
    if (i == j) continue;
    auto undirected = std::minmax(i, j);
    if (!seen.insert({undirected.first, undirected.second}).second) continue;
    out.edges.emplace_back(i, j);
  }
  return out;
}

std::string P2Cnf::ToString() const {
  std::string out;
  for (size_t e = 0; e < edges.size(); ++e) {
    if (e > 0) out += " & ";
    out += "(X" + std::to_string(edges[e].first) + " | X" +
           std::to_string(edges[e].second) + ")";
  }
  return out.empty() ? "TRUE" : out;
}

BigInt CountSatisfying(const P2Cnf& phi) {
  GMC_CHECK_MSG(phi.num_vars <= 25, "brute force limited to 25 variables");
  BigInt count(0);
  const uint64_t limit = uint64_t{1} << phi.num_vars;
  for (uint64_t mask = 0; mask < limit; ++mask) {
    bool satisfied = true;
    for (const auto& [i, j] : phi.edges) {
      if (((mask >> i) & 1) == 0 && ((mask >> j) & 1) == 0) {
        satisfied = false;
        break;
      }
    }
    if (satisfied) count += BigInt(1);
  }
  return count;
}

std::map<Signature, BigInt> SignatureCounts(const P2Cnf& phi) {
  GMC_CHECK_MSG(phi.num_vars <= 25, "brute force limited to 25 variables");
  std::map<Signature, BigInt> counts;
  const uint64_t limit = uint64_t{1} << phi.num_vars;
  for (uint64_t mask = 0; mask < limit; ++mask) {
    Signature signature = {0, 0, 0};
    for (const auto& [i, j] : phi.edges) {
      const int a = (mask >> i) & 1;
      const int b = (mask >> j) & 1;
      if (a == 0 && b == 0) {
        ++signature[0];
      } else if (a == 1 && b == 1) {
        ++signature[2];
      } else {
        ++signature[1];
      }
    }
    auto [it, inserted] = counts.emplace(signature, BigInt(1));
    if (!inserted) it->second += BigInt(1);
  }
  return counts;
}

}  // namespace gmc
