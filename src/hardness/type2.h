// Type-II query machinery (Appendix C): lattice structure, the queries
// Q_αβ, their invertibility (Lemma C.10), and the Möbius inversion formula
// over block-disjoint TIDs (Theorem C.19 / Corollary C.20).
//
// A Type II-II query is rewritten as Q = ∀x(∨ᵢ∀y Gᵢ) ∧ ∀x∀y C ∧
// ∀y(∨ⱼ∀x Hⱼ) (Eqs. 46–49) by distributing its left and right clauses. The
// left lattice is the implication lattice of {Gᵢ ∧ C}, the right lattice of
// {C ∧ Hⱼ}; their strict supports have sizes m̄, n̄ ∈ [3, 2^m − 1] for
// unsafe queries. The reduction of §C.4 then recovers CCP(m̄, n̄) counts
// from Pr(Q) on block TIDs; this module provides those combinatorial
// pieces plus an executable check of the inversion formula itself.

#ifndef GMC_HARDNESS_TYPE2_H_
#define GMC_HARDNESS_TYPE2_H_

#include <memory>
#include <vector>

#include "logic/query.h"
#include "prob/tid.h"
#include "safe/lattice.h"
#include "util/rational.h"

namespace gmc {

struct TypeIIStructure {
  Query query;
  SymbolCnf middle;                       // C(x,y)
  std::vector<SymbolCnf> left_formulas;   // Gᵢ ∧ C
  std::vector<SymbolCnf> right_formulas;  // C ∧ Hⱼ
  std::unique_ptr<ImplicationLattice> left_lattice;
  std::unique_ptr<ImplicationLattice> right_lattice;
  int m_bar = 0;  // |L0(G)|
  int n_bar = 0;  // |L0(H)|
};

// Decomposes an unsafe Type II-II query per Eqs. (46)–(49) and builds both
// lattices.
TypeIIStructure AnalyzeTypeII(const Query& query);

// The query ∀x∀y Q_αβ(x,y) of Eqs. (53)–(55), where `alpha`/`beta` index
// elements of the left/right lattices (0 = 1̂).
Query MakeQueryAlphaBeta(const TypeIIStructure& structure, int alpha,
                         int beta);

// Lemma C.10 check: the map (α, β) ↦ Q_αβ is order-reflecting — an
// implication Q_{α1β1} ⇒ Q_{α2β2} forces α1 ≤ α2 and β1 ≤ β2. Returns true
// if it holds for all pairs over the strict supports. (The paper proves it
// for queries of length ≥ 5.)
bool CheckInvertibility(const TypeIIStructure& structure);

// Theorem C.19 / Corollary C.20 on a concrete block-disjoint TID: every
// (u, v) pair is its own elementary block (all binary tuples between u and
// v, probabilities from `delta`). Returns Pr(Q) computed directly by WMC
// and via the Möbius inversion sum
//   Σ_{σ,τ} Πᵤ µ(σ(u)) Πᵥ µ(τ(v)) Π_{u,v} Pr(Y_{σ(u)τ(v)}(u,v)).
//
// The per-block probabilities go through the knowledge-compilation cache:
// Y_αβ has one lineage structure per (α, β), evaluated at each block's
// weights, so circuits compile once per (α, β) — and because all blocks
// are known before the sum starts, each structure's blocks are served by a
// single batched circuit pass (`batch_passes`) rather than one walk per
// block (`circuit_compiles` / `circuit_hits` report the sharing actually
// achieved).
struct MobiusInversionCheck {
  Rational direct;
  Rational via_inversion;
  int terms = 0;
  int circuit_compiles = 0;
  int circuit_hits = 0;
  int batch_passes = 0;
};

MobiusInversionCheck VerifyMobiusInversion(const TypeIIStructure& structure,
                                           const Tid& delta);

}  // namespace gmc

#endif  // GMC_HARDNESS_TYPE2_H_
