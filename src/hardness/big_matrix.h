// The "big matrix" M of Theorem 3.6.
//
// Rows are indexed by parameter vectors p = (p1, …, ph) ∈ {1..m+1}^h, and
// columns by exponent vectors k = (k1, …, kh) ∈ {0..m}^h with
// k0 := m − (k1 + … + kh) (possibly negative, giving a rational negative
// power of y0 — exactly the normalization used in the paper's proof). Entry:
//
//     M_{p,k} = Π_{i=0..h} y_i(p)^{k_i},   y_i(p) = Π_j z_i(p_j).
//
// REPRODUCTION NOTE. As literally transcribed, this matrix is singular
// whenever the same value set {1..m+1} is used on every coordinate of p:
// y_i(p) is symmetric under permutations of (p1,…,ph), so rows p and σ(p)
// coincide (Lemma 3.12 needs the per-coordinate value sets A_i to make all
// rows distinct, e.g. pairwise disjoint). The system the reduction actually
// solves is the *symmetric* one: one equation per multiset {p1 ≤ … ≤ ph}
// and one unknown per feasible undirected signature — both C(m+h, h) many,
// matching Eq. (10)'s unknowns #k′ exactly. BuildSymmetricBigMatrix builds
// that square system (for h = 2); its non-singularity is re-verified
// exactly at run time by the solver on every reduction.

#ifndef GMC_HARDNESS_BIG_MATRIX_H_
#define GMC_HARDNESS_BIG_MATRIX_H_

#include <array>
#include <utility>
#include <vector>

#include "linalg/matrix.h"

namespace gmc {

// z_series[p-1][i] = z_i(p) for p = 1..m+1 and i = 0..h (h+1 value kinds).
// Returns the (m+1)^h × (m+1)^h matrix described above (singular by row
// symmetry when h > 1; kept as the literal Theorem 3.6 object for study).
RationalMatrix BuildBigMatrix(
    const std::vector<std::vector<Rational>>& z_series, int m, int h);

// Row index of p = (p1, …, ph), each in 1..m+1; column index of
// k = (k1, …, kh), each in 0..m.
int BigMatrixRowIndex(const std::vector<int>& p, int m);
int BigMatrixColIndex(const std::vector<int>& k, int m);

// The square system of the Type-I reduction (h = 2): rows are multisets
// {p1 ≤ p2} ⊆ {1..m+1}, columns are feasible undirected signatures
// (k00, k01_10, k11) with all parts ≥ 0 summing to m. Both number
// C(m+2, 2) = (m+1)(m+2)/2.
struct SymmetricBigMatrix {
  RationalMatrix matrix;
  std::vector<std::pair<int, int>> row_params;       // (p1, p2), p1 ≤ p2
  std::vector<std::array<int, 3>> col_signatures;    // (k00, k01_10, k11)
};

SymmetricBigMatrix BuildSymmetricBigMatrix(
    const std::vector<std::vector<Rational>>& z_series, int m);

}  // namespace gmc

#endif  // GMC_HARDNESS_BIG_MATRIX_H_
