// The Cook reduction #P2CNF ≤P FOMC_bi(Q) for final Type-I queries
// (Theorem 3.1) — executable end to end.
//
// Given a final Type-I query Q and a P2CNF Φ with m clauses over n
// variables, the reduction:
//   1. computes the small matrix A(1) of Q's one-link block exactly and the
//      z-series z_ab(p) = (A(1)^p / 2^{p-1})_ab for p = 1..m+1 (Lemma 3.19);
//   2. for each multiset {p1 ≤ p2} ⊆ {1..m+1} (C(m+2,2) oracle calls;
//      permuted parameters give the same block TID up to isomorphism),
//      builds the block-disjoint TID ∆_{p1,p2} (one composite block per
//      clause of Φ) and queries the FOMC oracle for Pr_∆(Q) — all
//      probabilities are in {1/2, 1}, so this is model counting, not just
//      generalized model counting;
//   3. solves the big-matrix system (Theorem 3.6) exactly, recovering every
//      undirected signature count #k′ of Φ;
//   4. returns #Φ = Σ_{k′ : k00 = 0} #k′.
//
// The oracle can be the honest exact WMC engine (no structure assumed) or
// the Theorem 3.4 factorized evaluator (exponential only in n); both give
// identical answers and are cross-checked in tests.

#ifndef GMC_HARDNESS_REDUCTION_TYPE1_H_
#define GMC_HARDNESS_REDUCTION_TYPE1_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "compile/circuit_cache.h"
#include "hardness/p2cnf.h"
#include "hardness/small_matrix.h"
#include "linalg/matrix.h"
#include "logic/query.h"
#include "prob/tid.h"
#include "util/rational.h"

namespace gmc {

// The Pr(Q) oracle interface the reduction consults. The paper's point is
// that *no* polynomial-time oracle exists unless FP = #P; these
// implementations are exact but may take exponential time.
class Oracle {
 public:
  virtual ~Oracle() = default;
  virtual Rational Probability(const Query& query, const Tid& tid) = 0;
  // Batched form: Pr(Q) for every TID, in input order. The base
  // implementation loops over Probability; oracles that can exploit shared
  // lineage structure (CompiledOracle) override it to compile each distinct
  // structure once and evaluate all weight vectors per structure in one
  // circuit pass. Each TID still counts as one oracle call — the reduction
  // complexity accounting is unchanged.
  virtual std::vector<Rational> ProbabilityBatch(const Query& query,
                                                 const std::vector<Tid>& tids);
  virtual std::string name() const = 0;
  int calls() const { return calls_; }

 protected:
  int calls_ = 0;
};

// Exact weighted model counting of the full lineage; assumes nothing about
// the TID's structure.
class WmcOracle : public Oracle {
 public:
  Rational Probability(const Query& query, const Tid& tid) override;
  std::string name() const override { return "wmc"; }
};

// Knowledge-compilation oracle (src/compile/): grounds the lineage, compiles
// it to a d-DNNF circuit keyed on the canonical CNF, and evaluates the
// circuit with the TID's weights. Gadget databases that share lineage
// structure — interpolation sweeps that vary only tuple probabilities —
// compile once and pay a linear circuit pass per call afterwards.
class CompiledOracle : public Oracle {
 public:
  Rational Probability(const Query& query, const Tid& tid) override;
  // Grounds every TID, groups the lineages by CNF structure, and serves
  // each group with a single batched circuit pass — the interpolation
  // sweep's C(m+2,2) probes collapse into one EvaluateBatch per distinct
  // gadget structure.
  std::vector<Rational> ProbabilityBatch(const Query& query,
                                         const std::vector<Tid>& tids) override;
  std::string name() const override { return "d-dnnf"; }

  const CircuitCache& cache() const { return cache_; }

 private:
  CircuitCache cache_;
};

// Theorem 3.4: Pr_∆(Q) = 2^{-n} Σ_θ Π_{(u,v)∈E} y_{θ(u)θ(v)}; valid for
// block-disjoint TIDs built by this reduction. Exponential in n only.
class FactorizedOracle : public Oracle {
 public:
  // `z_series[p-1] = {z00, z01, z11}(p)`, shared with the reduction.
  Rational Probability(const Query& query, const Tid& tid) override;
  std::string name() const override { return "theorem-3.4"; }

  // Out-of-band block structure (the generic Probability() above aborts; the
  // reduction calls this directly).
  Rational GraphProbability(const P2Cnf& phi,
                            const std::vector<Rational>& y00_y01_y11);
};

struct Type1ReductionResult {
  BigInt model_count;                          // recovered #Φ
  std::map<Signature, BigInt> signature_counts;  // recovered #k′
  int oracle_calls = 0;
  bool big_matrix_nonsingular = false;
  // All solution entries were non-negative integers, zero at infeasible
  // signatures — internal consistency of Theorem 3.6's solve.
  bool solution_integral = false;
  DesignConditionReport design_report;
};

class Type1Reduction {
 public:
  // `query` must be an unsafe Type-I bipartite query (finality gives the
  // design-condition guarantees; the checks are re-verified at run time).
  explicit Type1Reduction(const Query& query);

  const Query& query() const { return query_; }

  // Runs the full reduction. If `oracle` is null, uses the Theorem 3.4
  // factorized evaluation (fast path); otherwise consults `oracle` once per
  // (p1, p2) pair on the actual TID.
  Type1ReductionResult Run(const P2Cnf& phi, Oracle* oracle = nullptr);

  // The TID ∆_{p1,p2} the reduction sends to the oracle (exposed for tests
  // and benchmarks).
  Tid BuildTid(const P2Cnf& phi, int p1, int p2) const;

 private:
  Query query_;
  RationalMatrix a1_;
};

}  // namespace gmc

#endif  // GMC_HARDNESS_REDUCTION_TYPE1_H_
