#include "hardness/big_matrix.h"

#include "util/check.h"

namespace gmc {

int BigMatrixRowIndex(const std::vector<int>& p, int m) {
  int index = 0;
  for (int pj : p) {
    GMC_CHECK(pj >= 1 && pj <= m + 1);
    index = index * (m + 1) + (pj - 1);
  }
  return index;
}

int BigMatrixColIndex(const std::vector<int>& k, int m) {
  int index = 0;
  for (int ki : k) {
    GMC_CHECK(ki >= 0 && ki <= m);
    index = index * (m + 1) + ki;
  }
  return index;
}

RationalMatrix BuildBigMatrix(
    const std::vector<std::vector<Rational>>& z_series, int m, int h) {
  GMC_CHECK(h >= 1 && m >= 1);
  GMC_CHECK(static_cast<int>(z_series.size()) >= m + 1);
  const int num_kinds = h + 1;
  for (const auto& row : z_series) {
    GMC_CHECK(static_cast<int>(row.size()) == num_kinds);
  }
  int size = 1;
  for (int j = 0; j < h; ++j) size *= (m + 1);
  RationalMatrix matrix(size, size);

  // Odometers over p ∈ {1..m+1}^h (rows) and k ∈ {0..m}^h (columns).
  std::vector<int> p(h, 1);
  while (true) {
    // y_i(p) = Π_j z_i(p_j).
    std::vector<Rational> y(num_kinds, Rational::One());
    for (int i = 0; i < num_kinds; ++i) {
      for (int j = 0; j < h; ++j) y[i] *= z_series[p[j] - 1][i];
    }
    GMC_CHECK_MSG(!y[0].IsZero(), "y0(p) must be non-zero");
    const int row = BigMatrixRowIndex(p, m);

    std::vector<int> k(h, 0);
    while (true) {
      int k_sum = 0;
      for (int ki : k) k_sum += ki;
      // k0 = m − Σk may be negative; y0^{k0} is then a genuine rational.
      Rational entry = y[0].Pow(m - k_sum);
      for (int i = 0; i < h; ++i) entry *= y[i + 1].Pow(k[i]);
      matrix.At(row, BigMatrixColIndex(k, m)) = entry;
      // Advance k.
      int pos = h - 1;
      while (pos >= 0 && k[pos] == m) k[pos--] = 0;
      if (pos < 0) break;
      ++k[pos];
    }
    // Advance p.
    int pos = h - 1;
    while (pos >= 0 && p[pos] == m + 1) p[pos--] = 1;
    if (pos < 0) break;
    ++p[pos];
  }
  return matrix;
}

SymmetricBigMatrix BuildSymmetricBigMatrix(
    const std::vector<std::vector<Rational>>& z_series, int m) {
  GMC_CHECK(m >= 1);
  GMC_CHECK(static_cast<int>(z_series.size()) >= m + 1);
  for (const auto& row : z_series) {
    GMC_CHECK(static_cast<int>(row.size()) == 3);  // z00, z01=z10, z11
  }
  SymmetricBigMatrix out{RationalMatrix(1, 1), {}, {}};
  for (int p1 = 1; p1 <= m + 1; ++p1) {
    for (int p2 = p1; p2 <= m + 1; ++p2) {
      out.row_params.emplace_back(p1, p2);
    }
  }
  for (int k00 = m; k00 >= 0; --k00) {
    for (int k1 = 0; k1 <= m - k00; ++k1) {
      out.col_signatures.push_back({k00, k1, m - k00 - k1});
    }
  }
  const int size = static_cast<int>(out.row_params.size());
  GMC_CHECK(size == static_cast<int>(out.col_signatures.size()));
  out.matrix = RationalMatrix(size, size);
  for (int r = 0; r < size; ++r) {
    const auto& [p1, p2] = out.row_params[r];
    const Rational y0 = z_series[p1 - 1][0] * z_series[p2 - 1][0];
    const Rational y1 = z_series[p1 - 1][1] * z_series[p2 - 1][1];
    const Rational y2 = z_series[p1 - 1][2] * z_series[p2 - 1][2];
    for (int c = 0; c < size; ++c) {
      const auto& [k00, k1, k11] = out.col_signatures[c];
      out.matrix.At(r, c) = y0.Pow(k00) * y1.Pow(k1) * y2.Pow(k11);
    }
  }
  return out;
}

}  // namespace gmc
