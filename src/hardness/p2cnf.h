// Positive 2CNF instances and their (brute-force) counting problems.
//
// #P2CNF — count satisfying assignments of Φ = ∧_{(i,j)∈E}(X_i ∨ X_j) — is
// the #P-hard source problem of the Type-I reduction (§3). The *signature*
// of an assignment records how many clauses have 0, 1 (either side), or 2
// true variables (Eq. 2–3); the reduction recovers all undirected signature
// counts #k′ and reads off #Φ = Σ_{k′: k00=0} #k′.
//
// #PP2CNF (bipartite variable sets, Provan & Ball) is the source problem of
// the Type-II reduction; see hardness/ccp.h.

#ifndef GMC_HARDNESS_P2CNF_H_
#define GMC_HARDNESS_P2CNF_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/bigint.h"

namespace gmc {

struct P2Cnf {
  int num_vars = 0;
  // Clauses (X_i ∨ X_j); i ≠ j, at most one orientation per pair.
  std::vector<std::pair<int, int>> edges;

  int num_clauses() const { return static_cast<int>(edges.size()); }

  // Random instance with distinct edges (no isolated checking of
  // connectivity; duplicates and self-loops are avoided).
  static P2Cnf Random(int num_vars, int num_edges, uint64_t seed);

  std::string ToString() const;
};

// Undirected signature (k00, k01+k10, k11); entries sum to |E|.
using Signature = std::array<int, 3>;

// Brute-force #Φ (2^n enumeration; n ≤ 25).
BigInt CountSatisfying(const P2Cnf& phi);

// Brute-force undirected signature counts #k′ (Eq. 3). Keys with zero count
// are omitted.
std::map<Signature, BigInt> SignatureCounts(const P2Cnf& phi);

}  // namespace gmc

#endif  // GMC_HARDNESS_P2CNF_H_
