// The zig-zag rewriting of Appendix A (Lemma 2.6, Fig. 2).
//
// Given an unsafe bipartite query Q of type A−B and length k, zg(Q) is an
// unsafe bipartite query of type A−A and length ≥ 2k over a fresh
// vocabulary of n branch copies per symbol, together with a polynomial-time
// database mapping ∆ ↦ zg(∆) such that
//
//     Pr_∆(zg(Q)) = Pr_{zg(∆)}(Q)              (Lemma A.1)
//
// with identical probability values — hence GFOMC_bi(zg(Q)) ≤Pm
// GFOMC_bi(Q). This is how the main theorem turns hardness of Type I-I /
// Type II-II *final* queries into hardness of every unsafe query: the
// rewriting doubles length and aligns the left/right types.

#ifndef GMC_HARDNESS_ZIGZAG_H_
#define GMC_HARDNESS_ZIGZAG_H_

#include <map>
#include <memory>
#include <vector>

#include "logic/query.h"
#include "prob/tid.h"

namespace gmc {

struct ZigzagQuery {
  // zg(Q), over the fresh vocabulary zg(R).
  Query query;
  // Branch fan-out: 2 when Q's right part is Type I, else max(3, widest
  // right clause).
  int n = 0;

  // Original query/vocabulary (the target of the reduction).
  Query original;

  // Vocabulary correspondence. Binary S ↦ S^(1..n) (all binary);
  // unary-left R ↦ R^(1) (unary-left), R^(2..n-1) (binary), R^(n)
  // (unary-right); unary-right T ↦ T^(12) (binary).
  std::map<SymbolId, std::vector<SymbolId>> binary_copies;
  SymbolId r_original = -1;
  std::vector<SymbolId> r_copies;
  SymbolId t_original = -1;
  SymbolId t12 = -1;
};

// Builds zg(Q). `query` must be an unsafe bipartite query.
ZigzagQuery MakeZigzagQuery(const Query& query);

// The database mapping: a bipartite TID ∆ over zg(R) becomes the TID zg(∆)
// over the original vocabulary, with the same multiset of probability
// values (Appendix A's 1-to-1 tuple correspondence; everything else gets
// probability 1).
Tid MakeZigzagTid(const ZigzagQuery& zigzag, const Tid& delta);

}  // namespace gmc

#endif  // GMC_HARDNESS_ZIGZAG_H_
