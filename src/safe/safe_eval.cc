#include "safe/safe_eval.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "lineage/grounder.h"
#include "logic/bipartite.h"
#include "safe/lattice.h"
#include "util/check.h"

namespace gmc {

namespace {

// A clause of a safe component viewed from the evaluation side: a
// disjunction of unary atoms over the base constant plus ∀-quantified
// binary-only subclauses over the other side.
struct ClauseView {
  std::vector<SymbolId> base_unaries;
  std::vector<std::vector<SymbolId>> subclauses;  // binary symbol sets
};

ClauseView ViewFrom(const Clause& clause, Side side) {
  ClauseView view;
  if (clause.base() == side) {
    view.base_unaries = clause.base_unaries();
    for (const Subclause& sub : clause.subclauses()) {
      GMC_CHECK_MSG(sub.inner_unaries.empty(),
                    "opposite-side unary in a clause of a safe component");
      view.subclauses.push_back(sub.binaries);
    }
    return view;
  }
  // Rebase a prenex-simple clause to the other side:
  // ∀x∀y(S_J(x,y) ∨ T(y)) = ∀y(T(y) ∨ ∀x S_J(x,y)).
  GMC_CHECK_MSG(clause.NumSubclauses() <= 1,
                "multi-subclause clause cannot be rebased");
  GMC_CHECK_MSG(clause.base_unaries().empty(),
                "clause has unaries on both sides of a safe component");
  if (clause.NumSubclauses() == 1) {
    const Subclause& sub = clause.subclauses()[0];
    view.base_unaries = sub.inner_unaries;
    view.subclauses.push_back(sub.binaries);
  }
  return view;
}

// Pr of the monotone CNF `formula` over the binary tuples at one (left,
// right) pair, by enumeration over the uncertain symbols.
Rational PairProbability(const SymbolCnf& formula, const Tid& tid,
                         ConstantId left, ConstantId right) {
  // Partition symbols: certain-true satisfies its clauses; certain-false
  // drops; the rest are enumerated.
  std::vector<SymbolId> uncertain;
  std::vector<std::vector<SymbolId>> active;
  for (const auto& clause : formula.clauses) {
    bool satisfied = false;
    std::vector<SymbolId> lits;
    for (SymbolId s : clause) {
      const Rational& p = tid.Probability(TupleKey{s, left, right});
      if (p.IsOne()) {
        satisfied = true;
        break;
      }
      if (!p.IsZero()) lits.push_back(s);
    }
    if (satisfied) continue;
    if (lits.empty()) return Rational::Zero();
    active.push_back(std::move(lits));
  }
  if (active.empty()) return Rational::One();
  for (const auto& clause : active) {
    uncertain.insert(uncertain.end(), clause.begin(), clause.end());
  }
  std::sort(uncertain.begin(), uncertain.end());
  uncertain.erase(std::unique(uncertain.begin(), uncertain.end()),
                  uncertain.end());
  GMC_CHECK_MSG(uncertain.size() <= 20, "too many symbols at one pair");
  Rational total = Rational::Zero();
  const uint32_t limit = uint32_t{1} << uncertain.size();
  for (uint32_t mask = 0; mask < limit; ++mask) {
    bool satisfied = true;
    for (const auto& clause : active) {
      bool clause_sat = false;
      for (SymbolId s : clause) {
        const size_t index =
            std::lower_bound(uncertain.begin(), uncertain.end(), s) -
            uncertain.begin();
        if (mask & (uint32_t{1} << index)) {
          clause_sat = true;
          break;
        }
      }
      if (!clause_sat) {
        satisfied = false;
        break;
      }
    }
    if (!satisfied) continue;
    Rational world = Rational::One();
    for (size_t i = 0; i < uncertain.size(); ++i) {
      const Rational& p =
          tid.Probability(TupleKey{uncertain[i], left, right});
      world *= (mask & (uint32_t{1} << i)) ? p : Rational::One() - p;
    }
    total += world;
  }
  return total;
}

}  // namespace

std::optional<Rational> SafeEvaluator::Evaluate(const Query& query,
                                                const Tid& tid) {
  // Per-call fields only; the EvaluateMany routing counters are cumulative.
  stats_.components = 0;
  stats_.lattices_built = 0;
  stats_.max_lattice_size = 0;
  if (query.IsFalse()) return Rational::Zero();
  if (query.IsTrue()) return Rational::One();
  BipartiteAnalysis analysis = AnalyzeBipartite(query);
  if (!analysis.safe) return std::nullopt;

  const std::vector<int> component_of = query.ClauseComponents();
  int num_components = 0;
  for (int c : component_of) num_components = std::max(num_components, c + 1);
  stats_.components = num_components;

  Rational total = Rational::One();
  for (int component = 0; component < num_components; ++component) {
    std::vector<const Clause*> clauses;
    bool has_right = false;
    for (size_t i = 0; i < component_of.size(); ++i) {
      if (component_of[i] != component) continue;
      clauses.push_back(&query.clauses()[i]);
      has_right |= query.clauses()[i].IsRightClause();
    }
    // A safe component lacks left or right clauses; evaluate from the side
    // that anchors every clause. (Right clauses present ⇒ no left clauses.)
    const Side side = has_right ? Side::kRight : Side::kLeft;
    std::vector<ClauseView> views;
    for (const Clause* clause : clauses) views.push_back(ViewFrom(*clause, side));

    const int num_base =
        side == Side::kLeft ? tid.num_left() : tid.num_right();
    const int num_inner =
        side == Side::kLeft ? tid.num_right() : tid.num_left();
    auto unary_key = [&side](SymbolId s, ConstantId b) {
      return side == Side::kLeft ? TupleKey{s, b, -1} : TupleKey{s, -1, b};
    };

    Rational component_probability = Rational::One();
    for (ConstantId b = 0; b < num_base && !component_probability.IsZero();
         ++b) {
      // Uncertain unary tuples at b, across all clauses of the component.
      std::vector<SymbolId> uncertain_unaries;
      std::vector<bool> certainly_satisfied(views.size(), false);
      for (size_t c = 0; c < views.size(); ++c) {
        for (SymbolId s : views[c].base_unaries) {
          const Rational& p = tid.Probability(unary_key(s, b));
          if (p.IsOne()) certainly_satisfied[c] = true;
          if (!p.IsZero() && !p.IsOne()) uncertain_unaries.push_back(s);
        }
      }
      std::sort(uncertain_unaries.begin(), uncertain_unaries.end());
      uncertain_unaries.erase(
          std::unique(uncertain_unaries.begin(), uncertain_unaries.end()),
          uncertain_unaries.end());
      GMC_CHECK_MSG(uncertain_unaries.size() <= 16,
                    "too many unary symbols at one constant");

      Rational base_probability = Rational::Zero();
      const uint32_t limit = uint32_t{1} << uncertain_unaries.size();
      for (uint32_t mask = 0; mask < limit; ++mask) {
        Rational weight = Rational::One();
        for (size_t i = 0; i < uncertain_unaries.size(); ++i) {
          const Rational& p =
              tid.Probability(unary_key(uncertain_unaries[i], b));
          weight *= (mask & (uint32_t{1} << i)) ? p : Rational::One() - p;
        }
        // Surviving clauses under this unary assignment.
        std::vector<const ClauseView*> surviving;
        bool branch_false = false;
        for (size_t c = 0; c < views.size(); ++c) {
          if (certainly_satisfied[c]) continue;
          bool satisfied = false;
          for (SymbolId s : views[c].base_unaries) {
            auto it = std::lower_bound(uncertain_unaries.begin(),
                                       uncertain_unaries.end(), s);
            if (it != uncertain_unaries.end() && *it == s &&
                (mask & (uint32_t{1}
                         << (it - uncertain_unaries.begin())))) {
              satisfied = true;
              break;
            }
          }
          if (satisfied) continue;
          if (views[c].subclauses.empty()) {
            branch_false = true;  // pure unary clause, all atoms false
            break;
          }
          surviving.push_back(&views[c]);
        }
        if (branch_false) continue;
        if (surviving.empty()) {
          base_probability += weight;
          continue;
        }
        // Distribute ∧_c ∨_ℓ into the G_i of Eq. (47): one conjunction per
        // choice of subclause per clause.
        std::vector<SymbolCnf> disjuncts;
        std::vector<size_t> choice(surviving.size(), 0);
        while (true) {
          std::vector<std::vector<SymbolId>> picked;
          for (size_t c = 0; c < surviving.size(); ++c) {
            picked.push_back(surviving[c]->subclauses[choice[c]]);
          }
          disjuncts.push_back(SymbolCnf::FromClauses(std::move(picked)));
          size_t pos = 0;
          while (pos < choice.size()) {
            if (++choice[pos] < surviving[pos]->subclauses.size()) break;
            choice[pos] = 0;
            ++pos;
          }
          if (pos == choice.size()) break;
        }
        std::sort(disjuncts.begin(), disjuncts.end());
        disjuncts.erase(std::unique(disjuncts.begin(), disjuncts.end()),
                        disjuncts.end());

        auto forall_inner = [&](const SymbolCnf& g) {
          Rational product = Rational::One();
          for (ConstantId v = 0; v < num_inner && !product.IsZero(); ++v) {
            const ConstantId left = side == Side::kLeft ? b : v;
            const ConstantId right = side == Side::kLeft ? v : b;
            product *= PairProbability(g, tid, left, right);
          }
          return product;
        };

        Rational branch;
        if (disjuncts.size() == 1) {
          branch = forall_inner(disjuncts[0]);
        } else {
          // Möbius inversion: Pr(∨ᵢ ∀y Gᵢ) = −Σ_{α<1̂} µ(α)·Pr(∀y G_α).
          ImplicationLattice lattice(disjuncts);
          ++stats_.lattices_built;
          stats_.max_lattice_size =
              std::max(stats_.max_lattice_size,
                       static_cast<int>(lattice.elements().size()));
          branch = Rational::Zero();
          for (int index : lattice.StrictSupport()) {
            const LatticeElement& element = lattice.elements()[index];
            branch -= Rational(element.mobius) *
                      forall_inner(element.formula);
          }
        }
        base_probability += weight * branch;
      }
      component_probability *= base_probability;
    }
    total *= component_probability;
  }
  return total;
}

std::optional<std::vector<Rational>> SafeEvaluator::EvaluateMany(
    const Query& query, const std::vector<Tid>& tids) {
  if (query.IsFalse()) {
    return std::vector<Rational>(tids.size(), Rational::Zero());
  }
  if (query.IsTrue()) {
    return std::vector<Rational>(tids.size(), Rational::One());
  }
  BipartiteAnalysis analysis = AnalyzeBipartite(query);
  if (!analysis.safe) return std::nullopt;

  bool all_gfomc = !tids.empty();
  for (const Tid& tid : tids) all_gfomc = all_gfomc && tid.IsGfomcInstance();

  // Safety guarantees a PTIME lifted plan, not a small circuit: compiling
  // the grounded lineage is worst-case exponential even for safe queries.
  // The compiled path is a cache win for the small, heavily repeated
  // gadget-style lineages, so gate it on lineage size (grounding itself is
  // polynomial; the constant is shared with GfomcSession — see
  // circuit_cache.h) and keep the lifted algorithm as the asymptotic
  // contract.
  std::vector<Lineage> lineages;
  if (all_gfomc) {
    lineages.reserve(tids.size());
    for (const Tid& tid : tids) {
      lineages.push_back(Ground(query, tid));
      if (lineages.back().variables.size() > kMaxCompiledLineageVars) {
        all_gfomc = false;
        lineages.clear();
        break;
      }
    }
  }

  std::vector<Rational> results;
  if (all_gfomc) {
    // GFOMC instances ({0, 1/2, 1} probabilities) ground to compact shared
    // lineages — the certain tuples fold away — so route through the
    // circuit cache: one compile per distinct grounded lineage, one batched
    // circuit pass per structure.
    results = circuits_.ProbabilityBatch(lineages);
    stats_.compiled_assignments += static_cast<int>(tids.size());
  } else {
    results.reserve(tids.size());
    for (const Tid& tid : tids) {
      std::optional<Rational> value = Evaluate(query, tid);
      GMC_CHECK(value.has_value());  // safety was established above
      results.push_back(std::move(*value));
      ++stats_.lifted_assignments;
    }
  }
  return results;
}

}  // namespace gmc
