#include "safe/lattice.h"

#include <algorithm>
#include <map>

#include "util/check.h"

namespace gmc {

SymbolCnf SymbolCnf::FromClauses(
    std::vector<std::vector<SymbolId>> clauses) {
  SymbolCnf out;
  out.clauses = std::move(clauses);
  out.Minimize();
  return out;
}

SymbolCnf SymbolCnf::And(const SymbolCnf& a, const SymbolCnf& b) {
  SymbolCnf out;
  out.clauses = a.clauses;
  out.clauses.insert(out.clauses.end(), b.clauses.begin(), b.clauses.end());
  out.Minimize();
  return out;
}

void SymbolCnf::Minimize() {
  for (auto& clause : clauses) {
    std::sort(clause.begin(), clause.end());
    clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
  }
  std::sort(clauses.begin(), clauses.end(),
            [](const std::vector<SymbolId>& a, const std::vector<SymbolId>& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  clauses.erase(std::unique(clauses.begin(), clauses.end()), clauses.end());
  std::vector<std::vector<SymbolId>> kept;
  for (const auto& clause : clauses) {
    bool subsumed = false;
    for (const auto& keeper : kept) {
      if (std::includes(clause.begin(), clause.end(), keeper.begin(),
                        keeper.end())) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) kept.push_back(clause);
  }
  clauses = std::move(kept);
  std::sort(clauses.begin(), clauses.end());
}

bool SymbolCnf::Implies(const SymbolCnf& f, const SymbolCnf& g) {
  for (const auto& target : g.clauses) {
    bool covered = false;
    for (const auto& source : f.clauses) {
      if (std::includes(target.begin(), target.end(), source.begin(),
                        source.end())) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

std::string SymbolCnf::ToString(const Vocabulary& vocab) const {
  if (clauses.empty()) return "TRUE";
  std::string out;
  for (size_t i = 0; i < clauses.size(); ++i) {
    if (i > 0) out += " & ";
    out += "(";
    for (size_t j = 0; j < clauses[i].size(); ++j) {
      if (j > 0) out += "|";
      out += vocab.name(clauses[i][j]);
    }
    out += ")";
  }
  return out;
}

ImplicationLattice::ImplicationLattice(std::vector<SymbolCnf> formulas)
    : formulas_(std::move(formulas)) {
  const int m = static_cast<int>(formulas_.size());
  GMC_CHECK_MSG(m >= 1 && m <= 20, "lattice limited to 20 formulas");
  // Compute the closure of every subset; collect distinct closed sets.
  std::map<uint32_t, SymbolCnf> closed;  // closed subset -> F_α
  const uint32_t limit = uint32_t{1} << m;
  for (uint32_t alpha = 1; alpha < limit; ++alpha) {
    SymbolCnf conjunction;
    for (int i = 0; i < m; ++i) {
      if (alpha & (uint32_t{1} << i)) {
        conjunction = SymbolCnf::And(conjunction, formulas_[i]);
      }
    }
    uint32_t closure = 0;
    for (int i = 0; i < m; ++i) {
      if (SymbolCnf::Implies(conjunction, formulas_[i])) {
        closure |= uint32_t{1} << i;
      }
    }
    GMC_CHECK((closure & alpha) == alpha);
    closed.emplace(closure, conjunction);
  }
  // Order: 1̂ = ∅ first, then by increasing cardinality (any linear
  // extension of < works for the Möbius recursion; α < β iff β ⊊ α).
  elements_.push_back(LatticeElement{0, SymbolCnf{}, 1});
  std::vector<std::pair<uint32_t, SymbolCnf>> rest(closed.begin(),
                                                   closed.end());
  std::sort(rest.begin(), rest.end(),
            [](const auto& a, const auto& b) {
              int pa = __builtin_popcount(a.first);
              int pb = __builtin_popcount(b.first);
              if (pa != pb) return pa < pb;
              return a.first < b.first;
            });
  for (auto& [subset, formula] : rest) {
    elements_.push_back(LatticeElement{subset, std::move(formula), 0});
  }
  // µ(α) = −Σ_{β>α} µ(β), β > α ⟺ β ⊊ α (with 1̂ = ∅ above everything).
  for (size_t i = 1; i < elements_.size(); ++i) {
    int64_t sum = 0;
    for (size_t j = 0; j < i; ++j) {
      const uint32_t a = elements_[i].subset;
      const uint32_t b = elements_[j].subset;
      if ((b & a) == b && b != a) sum += elements_[j].mobius;
    }
    elements_[i].mobius = -sum;
  }
}

std::vector<int> ImplicationLattice::StrictSupport() const {
  std::vector<int> out;
  for (size_t i = 1; i < elements_.size(); ++i) {
    if (elements_[i].mobius != 0) out.push_back(static_cast<int>(i));
  }
  return out;
}

int64_t ImplicationLattice::MobiusSum() const {
  int64_t sum = 0;
  for (const auto& element : elements_) sum += element.mobius;
  return sum;
}

std::string ImplicationLattice::ToString(const Vocabulary& vocab) const {
  std::string out;
  for (const auto& element : elements_) {
    out += "{";
    for (int i = 0; i < num_formulas(); ++i) {
      if (element.subset & (uint32_t{1} << i)) {
        out += std::to_string(i + 1);
      }
    }
    out += "} mu=" + std::to_string(element.mobius) + "  " +
           element.formula.ToString(vocab) + "\n";
  }
  return out;
}

}  // namespace gmc
