// Lifted (PTIME) evaluation of safe bipartite queries — the tractable side
// of the dichotomy (Theorem 2.1 / the two observations before Def. 2.4).
//
// A safe bipartite query decomposes into symbol-disjoint components each
// missing left or right clauses. A component with no right clauses is
// evaluated as Pr = Π_u Pr(G(u)) (the groundings G(u) touch disjoint
// tuples, hence are independent); each Pr(G(u)) Shannon-expands over the
// unary tuples at u and then applies Möbius' inversion over the implication
// lattice of the ∀y-subclause conjunctions (§C.2), with each lattice term
// factoring as Π_v over inner constants. Components with no left clauses
// are evaluated mirror-image. Everything is exact and polynomial in the
// domain size (exponential only in the fixed query size).

#ifndef GMC_SAFE_SAFE_EVAL_H_
#define GMC_SAFE_SAFE_EVAL_H_

#include <optional>
#include <string>
#include <vector>

#include "compile/circuit_cache.h"
#include "logic/query.h"
#include "prob/tid.h"
#include "util/rational.h"

namespace gmc {

class SafeEvaluator {
 public:
  struct Stats {
    int components = 0;
    int lattices_built = 0;
    int max_lattice_size = 0;
    // EvaluateMany accounting: how many assignments went through the
    // compiled (CircuitCache-backed) path vs the lifted per-TID algorithm.
    int compiled_assignments = 0;
    int lifted_assignments = 0;
  };

  // Pr_∆(Q) for a safe query; std::nullopt if the query is unsafe
  // (Def. 2.4), in which case no PTIME algorithm exists unless FP = #P.
  std::optional<Rational> Evaluate(const Query& query, const Tid& tid);

  // Repeated probability assignments over one query: Pr_∆(Q) for every TID,
  // in input order; std::nullopt if the query is unsafe. When every TID is
  // a GFOMC instance (Tid::IsGfomcInstance — probabilities in {0, 1/2, 1}),
  // grounding folds all certain tuples away and the assignments share
  // compact lineage structure, so they route through a CircuitCache:
  // each distinct grounded lineage compiles once and its assignments are
  // served by one batched circuit pass. The compiled route is gated on
  // lineage size — safety promises a PTIME lifted plan, not a small
  // circuit, so oversized lineages and general-weight TIDs fall back to
  // the lifted per-TID algorithm, which remains the asymptotic contract.
  std::optional<std::vector<Rational>> EvaluateMany(
      const Query& query, const std::vector<Tid>& tids);

  const Stats& stats() const { return stats_; }
  const CircuitCache& circuits() const { return circuits_; }

  // One-call configuration (see compile/gmc_options.h): forwards the
  // cache-level fields to the embedded CircuitCache; the session-level
  // routing fields don't apply to the lifted plan (safe queries are PTIME
  // exact — there is nothing to trade away) and are ignored. The set_*
  // setters below are the legacy per-field wrappers.
  void Configure(const GmcOptions& options) { circuits_.Configure(options); }
  GmcOptions options() const { return circuits_.options(); }

  // Worker bound for the embedded circuit cache's batch passes (see
  // CircuitCache::set_num_threads); 0 defers to the process default
  // (GMC_THREADS / DefaultNumThreads). Results are identical either way.
  void set_num_threads(int num_threads) {
    circuits_.set_num_threads(num_threads);
  }

  // Shannon-order heuristic for the compiled route (see
  // CircuitCache::set_order / compile/vtree.h); circuit size only, never
  // results. The lifted per-TID algorithm is unaffected.
  void set_order(OrderHeuristic order) { circuits_.set_order(order); }

  // Persistent-store plumbing for the embedded cache (see
  // CircuitCache::set_store_directory / SaveTo / WarmFrom): warm starts
  // and write-through for the compiled route. Results are bit-identical
  // with or without a store.
  void set_store_directory(const std::string& directory,
                           bool write_through = true) {
    circuits_.set_store_directory(directory, write_through);
  }
  size_t SaveCircuitsTo(const std::string& directory,
                        std::string* error = nullptr) {
    return circuits_.SaveTo(directory, error);
  }
  size_t WarmCircuitsFrom(const std::string& directory) {
    return circuits_.WarmFrom(directory);
  }

 private:
  Stats stats_;
  CircuitCache circuits_;
};

}  // namespace gmc

#endif  // GMC_SAFE_SAFE_EVAL_H_
