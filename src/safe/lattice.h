// The implication lattice and Möbius function of Definition C.6.
//
// Given CNF formulas F = {F1, …, Fm} over relation symbols (one generic
// (x,y) pair), the lattice Lˆ(F) consists of the closed subsets α ⊆ [m]
// under logical closure ᾱ = {i : F_α ⇒ F_i}, ordered by reverse inclusion
// with top element 1̂ = ∅. The Möbius function µ(1̂) = 1,
// µ(α) = −Σ_{β>α} µ(β) drives both the lifted (PTIME) evaluation of safe
// Type-II query parts (Möbius' inversion, §C.2) and the Type-II hardness
// machinery (Theorem C.19).
//
// Monotone CNF implication is clause subsumption: F ⇒ G iff every clause of
// G contains some clause of F — exact for the positive fragment.

#ifndef GMC_SAFE_LATTICE_H_
#define GMC_SAFE_LATTICE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "logic/symbol.h"

namespace gmc {

// A monotone CNF over symbols at one generic (x,y) pair.
struct SymbolCnf {
  std::vector<std::vector<SymbolId>> clauses;  // each sorted; list sorted

  static SymbolCnf FromClauses(std::vector<std::vector<SymbolId>> clauses);
  static SymbolCnf And(const SymbolCnf& a, const SymbolCnf& b);

  // Canonicalizes: sorts, dedupes, removes subsumed clauses.
  void Minimize();

  bool IsTrue() const { return clauses.empty(); }
  // f ⇒ g for monotone CNFs.
  static bool Implies(const SymbolCnf& f, const SymbolCnf& g);

  bool operator==(const SymbolCnf& other) const = default;
  bool operator<(const SymbolCnf& other) const { return clauses < other.clauses; }

  std::string ToString(const Vocabulary& vocab) const;
};

struct LatticeElement {
  uint32_t subset = 0;   // closed subset of [m], bit i ↔ F_{i+1}
  SymbolCnf formula;     // F_α (minimized conjunction); F_1̂ is NOT stored
                         // as a CNF (it is the disjunction of the inputs)
  int64_t mobius = 0;    // µ(α)
};

// Lˆ(F) with its Möbius function. The top element 1̂ (empty subset) is
// always elements()[0] with µ = 1.
class ImplicationLattice {
 public:
  // At most 20 formulas (subset enumeration is 2^m).
  explicit ImplicationLattice(std::vector<SymbolCnf> formulas);

  const std::vector<LatticeElement>& elements() const { return elements_; }
  int num_formulas() const { return static_cast<int>(formulas_.size()); }

  // Indices into elements() of the strict support L0 = {α < 1̂ : µ(α) ≠ 0}.
  std::vector<int> StrictSupport() const;

  // Σ_{α} µ(α) over all elements is 0 when the lattice has > 1 element
  // (a standard Möbius identity, used as a self-check in tests).
  int64_t MobiusSum() const;

  std::string ToString(const Vocabulary& vocab) const;

 private:
  std::vector<SymbolCnf> formulas_;
  std::vector<LatticeElement> elements_;
};

}  // namespace gmc

#endif  // GMC_SAFE_LATTICE_H_
