// Small square matrices of polynomials.
//
// Used for the "small matrix" of Lemma 1.2 / Eq. (1) and for the chained
// 2×2 transfer matrices of Definition C.29 (the zig-zag block's z-matrices).

#ifndef GMC_POLY_POLY_MATRIX_H_
#define GMC_POLY_POLY_MATRIX_H_

#include <vector>

#include "poly/polynomial.h"

namespace gmc {

class PolyMatrix {
 public:
  PolyMatrix(int rows, int cols);
  static PolyMatrix Identity(int n);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  Polynomial& At(int r, int c);
  const Polynomial& At(int r, int c) const;

  PolyMatrix operator*(const PolyMatrix& other) const;
  PolyMatrix operator+(const PolyMatrix& other) const;
  PolyMatrix ScaledBy(const Rational& factor) const;

  // Determinant by cofactor expansion (intended for n ≤ 4).
  Polynomial Determinant() const;

  // Entry-wise partial evaluation.
  PolyMatrix SubstituteValue(int var, const Rational& value) const;

 private:
  int rows_;
  int cols_;
  std::vector<Polynomial> entries_;  // row-major
};

}  // namespace gmc

#endif  // GMC_POLY_POLY_MATRIX_H_
