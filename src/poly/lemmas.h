// The two algebraic lemmas of §1 made executable.
//
// Lemma 1.1: a multivariate polynomial f ≢ 0 of degree ≤ 2 in each variable
// has a non-root with all coordinates in any three distinct constants
// {c1, c2, c3} — the paper instantiates these as {0, 1/2, 1}, which is why
// unsafe queries stay hard under the GFOMC probability restriction.
//
// Lemma 1.2: for the arithmetization y of a Boolean formula Y and two
// variables r, t, the 2×2 "small matrix" (y with r,t set to 00/01/10/11) is
// singular as a polynomial identity iff Y disconnects r from t.

#ifndef GMC_POLY_LEMMAS_H_
#define GMC_POLY_LEMMAS_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "lineage/boolean_formula.h"
#include "poly/poly_matrix.h"
#include "poly/polynomial.h"

namespace gmc {

// The multilinear polynomial agreeing with the monotone CNF on {0,1}^n —
// equivalently Pr(cnf) as a function of the variable probabilities.
// Computed by Shannon expansion with component decomposition; intended for
// small formulas (single gadget links).
Polynomial ArithmetizeCnf(const Cnf& cnf);

// Lemma 1.1 witness: an assignment θ of all of f's variables with values in
// {c1,c2,c3} such that f[θ] ≠ 0. Aborts if f ≡ 0 or some degree exceeds 2
// (the lemma's preconditions). The constants must be pairwise distinct.
std::unordered_map<int, Rational> FindNonRoot(const Polynomial& f,
                                              const Rational& c1,
                                              const Rational& c2,
                                              const Rational& c3);

// Eq. (1): the small matrix [[y00, y01], [y10, y11]] of y w.r.t. r, t.
PolyMatrix SmallMatrix(const Polynomial& y, int var_r, int var_t);

// Lemma 1.2 test: det(small matrix) ≡ 0.
bool SmallMatrixSingular(const Polynomial& y, int var_r, int var_t);

}  // namespace gmc

#endif  // GMC_POLY_LEMMAS_H_
