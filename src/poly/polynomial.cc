#include "poly/polynomial.h"

#include <algorithm>

#include "util/check.h"

namespace gmc {

Polynomial Polynomial::Constant(Rational value) {
  Polynomial out;
  if (!value.IsZero()) out.terms_[{}] = std::move(value);
  return out;
}

Polynomial Polynomial::Variable(int var) {
  Polynomial out;
  out.terms_[{{var, 1}}] = Rational::One();
  return out;
}

Polynomial Polynomial::OneMinusVariable(int var) {
  Polynomial out;
  out.terms_[{}] = Rational::One();
  out.terms_[{{var, 1}}] = Rational(-1);
  return out;
}

bool Polynomial::IsConstant() const {
  return terms_.empty() || (terms_.size() == 1 && terms_.begin()->first.empty());
}

Rational Polynomial::ConstantTerm() const {
  auto it = terms_.find({});
  return it == terms_.end() ? Rational::Zero() : it->second;
}

void Polynomial::Insert(const Monomial& monomial,
                        const Rational& coefficient) {
  if (coefficient.IsZero()) return;
  auto [it, inserted] = terms_.emplace(monomial, coefficient);
  if (!inserted) {
    it->second += coefficient;
    if (it->second.IsZero()) terms_.erase(it);
  }
}

Polynomial Polynomial::operator+(const Polynomial& other) const {
  Polynomial out = *this;
  for (const auto& [monomial, coefficient] : other.terms_) {
    out.Insert(monomial, coefficient);
  }
  return out;
}

Polynomial Polynomial::operator-() const {
  Polynomial out;
  for (const auto& [monomial, coefficient] : terms_) {
    out.terms_[monomial] = -coefficient;
  }
  return out;
}

Polynomial Polynomial::operator-(const Polynomial& other) const {
  return *this + (-other);
}

Polynomial Polynomial::operator*(const Polynomial& other) const {
  Polynomial out;
  for (const auto& [ma, ca] : terms_) {
    for (const auto& [mb, cb] : other.terms_) {
      // Merge the two sorted exponent lists.
      Monomial merged;
      merged.reserve(ma.size() + mb.size());
      size_t i = 0, j = 0;
      while (i < ma.size() || j < mb.size()) {
        if (j == mb.size() || (i < ma.size() && ma[i].first < mb[j].first)) {
          merged.push_back(ma[i++]);
        } else if (i == ma.size() || mb[j].first < ma[i].first) {
          merged.push_back(mb[j++]);
        } else {
          merged.emplace_back(ma[i].first, ma[i].second + mb[j].second);
          ++i;
          ++j;
        }
      }
      out.Insert(merged, ca * cb);
    }
  }
  return out;
}

Polynomial Polynomial::ScaledBy(const Rational& factor) const {
  if (factor.IsZero()) return Polynomial();
  Polynomial out;
  for (const auto& [monomial, coefficient] : terms_) {
    out.terms_[monomial] = coefficient * factor;
  }
  return out;
}

Polynomial Polynomial::SubstituteValue(int var, const Rational& value) const {
  Polynomial out;
  for (const auto& [monomial, coefficient] : terms_) {
    Rational coeff = coefficient;
    Monomial reduced;
    reduced.reserve(monomial.size());
    for (const auto& [v, e] : monomial) {
      if (v == var) {
        coeff *= value.Pow(e);
      } else {
        reduced.emplace_back(v, e);
      }
    }
    out.Insert(reduced, coeff);
  }
  return out;
}

Polynomial Polynomial::SubstituteVariable(int var, int new_var) const {
  Polynomial out;
  for (const auto& [monomial, coefficient] : terms_) {
    int moved_exponent = 0;
    Monomial reduced;
    reduced.reserve(monomial.size());
    for (const auto& [v, e] : monomial) {
      if (v == var) {
        moved_exponent = e;
      } else {
        reduced.push_back({v, e});
      }
    }
    if (moved_exponent > 0) {
      bool merged = false;
      for (auto& [v, e] : reduced) {
        if (v == new_var) {
          e += moved_exponent;
          merged = true;
          break;
        }
      }
      if (!merged) {
        reduced.push_back({new_var, moved_exponent});
        std::sort(reduced.begin(), reduced.end());
      }
    }
    out.Insert(reduced, coefficient);
  }
  return out;
}

Rational Polynomial::Evaluate(
    const std::unordered_map<int, Rational>& assignment) const {
  Rational total = Rational::Zero();
  for (const auto& [monomial, coefficient] : terms_) {
    Rational term = coefficient;
    for (const auto& [v, e] : monomial) {
      auto it = assignment.find(v);
      const Rational value = it == assignment.end() ? Rational::Zero()
                                                    : it->second;
      term *= value.Pow(e);
      if (term.IsZero()) break;
    }
    total += term;
  }
  return total;
}

int Polynomial::DegreeIn(int var) const {
  int best = 0;
  for (const auto& [monomial, coefficient] : terms_) {
    for (const auto& [v, e] : monomial) {
      if (v == var) best = std::max(best, e);
    }
  }
  return best;
}

int Polynomial::MaxVariableDegree() const {
  int best = 0;
  for (const auto& [monomial, coefficient] : terms_) {
    for (const auto& [v, e] : monomial) best = std::max(best, e);
  }
  return best;
}

std::vector<int> Polynomial::Variables() const {
  std::vector<int> out;
  for (const auto& [monomial, coefficient] : terms_) {
    for (const auto& [v, e] : monomial) out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string Polynomial::ToString() const {
  if (terms_.empty()) return "0";
  std::string out;
  bool first = true;
  for (const auto& [monomial, coefficient] : terms_) {
    if (!first) out += " + ";
    first = false;
    out += coefficient.ToString();
    for (const auto& [v, e] : monomial) {
      out += "*x" + std::to_string(v);
      if (e > 1) out += "^" + std::to_string(e);
    }
  }
  return out;
}

}  // namespace gmc
