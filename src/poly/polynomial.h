// Sparse multivariate polynomials over ℚ.
//
// The arithmetization of a Boolean formula Y (§1.6) is the multilinear
// polynomial y agreeing with Y on {0,1}^n — equivalently, the formula for
// Pr(Y) in the tuple probabilities. Products of arithmetizations (e.g. the
// determinant y00·y11 − y01·y10 of Lemma 1.2) have degree up to 2 per
// variable, which is exactly the class Lemma 1.1 applies to.

#ifndef GMC_POLY_POLYNOMIAL_H_
#define GMC_POLY_POLYNOMIAL_H_

#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/rational.h"

namespace gmc {

// A monomial: sorted (variable, exponent>0) pairs; empty means the constant
// monomial 1.
using Monomial = std::vector<std::pair<int, int>>;

class Polynomial {
 public:
  Polynomial() = default;  // zero

  static Polynomial Constant(Rational value);
  static Polynomial Variable(int var);
  // 1 - x_var.
  static Polynomial OneMinusVariable(int var);

  bool IsZero() const { return terms_.empty(); }
  bool IsConstant() const;
  // The constant term (0 if absent).
  Rational ConstantTerm() const;

  Polynomial operator+(const Polynomial& other) const;
  Polynomial operator-(const Polynomial& other) const;
  Polynomial operator*(const Polynomial& other) const;
  Polynomial operator-() const;
  Polynomial& operator+=(const Polynomial& o) { return *this = *this + o; }
  Polynomial& operator-=(const Polynomial& o) { return *this = *this - o; }
  Polynomial& operator*=(const Polynomial& o) { return *this = *this * o; }
  Polynomial ScaledBy(const Rational& factor) const;

  bool operator==(const Polynomial& other) const {
    return terms_ == other.terms_;
  }

  // Partial evaluation x_var := value.
  Polynomial SubstituteValue(int var, const Rational& value) const;
  // Variable renaming x_var := x_new_var (merging exponents if present).
  Polynomial SubstituteVariable(int var, int new_var) const;

  // Full evaluation; missing variables default to 0.
  Rational Evaluate(const std::unordered_map<int, Rational>& assignment) const;

  // Degree of x_var (0 if absent); maximum degree over all variables.
  int DegreeIn(int var) const;
  int MaxVariableDegree() const;

  // Sorted list of variables that occur.
  std::vector<int> Variables() const;

  const std::map<Monomial, Rational>& terms() const { return terms_; }

  std::string ToString() const;

 private:
  void Insert(const Monomial& monomial, const Rational& coefficient);

  std::map<Monomial, Rational> terms_;  // no zero coefficients stored
};

}  // namespace gmc

#endif  // GMC_POLY_POLYNOMIAL_H_
