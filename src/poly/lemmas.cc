#include "poly/lemmas.h"

#include <algorithm>
#include <string>

#include "util/check.h"

namespace gmc {

namespace {

Polynomial ArithmetizeRecurse(const Cnf& cnf,
                              std::unordered_map<std::string, Polynomial>*
                                  cache) {
  if (cnf.clauses.empty()) return Polynomial::Constant(Rational::One());
  for (const auto& clause : cnf.clauses) {
    if (clause.empty()) return Polynomial();
  }
  const std::string key = cnf.CacheKey();
  if (auto it = cache->find(key); it != cache->end()) return it->second;

  std::vector<int> component = cnf.ClauseComponents();
  int num_components = 0;
  for (int c : component) num_components = std::max(num_components, c + 1);
  Polynomial result;
  if (num_components > 1) {
    result = Polynomial::Constant(Rational::One());
    std::vector<Cnf> parts(num_components);
    for (auto& part : parts) part.num_vars = cnf.num_vars;
    for (size_t i = 0; i < cnf.clauses.size(); ++i) {
      parts[component[i]].clauses.push_back(cnf.clauses[i]);
    }
    for (const Cnf& part : parts) {
      result *= ArithmetizeRecurse(part, cache);
    }
  } else {
    // Shannon on the most frequent variable.
    std::unordered_map<int, int> counts;
    for (const auto& clause : cnf.clauses) {
      for (int v : clause) ++counts[v];
    }
    int best_var = -1, best_count = -1;
    for (const auto& [v, c] : counts) {
      if (c > best_count || (c == best_count && v < best_var)) {
        best_var = v;
        best_count = c;
      }
    }
    Polynomial high = ArithmetizeRecurse(cnf.Condition(best_var, true), cache);
    Polynomial low = ArithmetizeRecurse(cnf.Condition(best_var, false), cache);
    result = Polynomial::Variable(best_var) * high +
             Polynomial::OneMinusVariable(best_var) * low;
  }
  cache->emplace(key, result);
  return result;
}

}  // namespace

Polynomial ArithmetizeCnf(const Cnf& cnf) {
  std::unordered_map<std::string, Polynomial> cache;
  return ArithmetizeRecurse(cnf, &cache);
}

std::unordered_map<int, Rational> FindNonRoot(const Polynomial& f,
                                              const Rational& c1,
                                              const Rational& c2,
                                              const Rational& c3) {
  GMC_CHECK_MSG(!f.IsZero(), "Lemma 1.1 requires f not identically zero");
  GMC_CHECK_MSG(c1 != c2 && c1 != c3 && c2 != c3,
                "Lemma 1.1 requires three distinct constants");
  GMC_CHECK_MSG(f.MaxVariableDegree() <= 2,
                "Lemma 1.1 requires degree <= 2 per variable");
  std::unordered_map<int, Rational> assignment;
  Polynomial current = f;
  // Eliminate variables one at a time. A degree-≤2 polynomial in x_n over
  // the ring of remaining variables has at most two roots among any three
  // distinct constants, so some substitution keeps the rest non-zero.
  for (int var : f.Variables()) {
    bool found = false;
    for (const Rational& c : {c1, c2, c3}) {
      Polynomial next = current.SubstituteValue(var, c);
      if (!next.IsZero()) {
        assignment[var] = c;
        current = std::move(next);
        found = true;
        break;
      }
    }
    GMC_CHECK_MSG(found, "no non-root value found (violates Lemma 1.1)");
  }
  GMC_CHECK(current.IsConstant() && !current.IsZero());
  return assignment;
}

PolyMatrix SmallMatrix(const Polynomial& y, int var_r, int var_t) {
  PolyMatrix out(2, 2);
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      out.At(a, b) = y.SubstituteValue(var_r, Rational(a))
                         .SubstituteValue(var_t, Rational(b));
    }
  }
  return out;
}

bool SmallMatrixSingular(const Polynomial& y, int var_r, int var_t) {
  return SmallMatrix(y, var_r, var_t).Determinant().IsZero();
}

}  // namespace gmc
