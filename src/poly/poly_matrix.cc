#include "poly/poly_matrix.h"

#include "util/check.h"

namespace gmc {

PolyMatrix::PolyMatrix(int rows, int cols)
    : rows_(rows), cols_(cols), entries_(rows * cols) {
  GMC_CHECK(rows > 0 && cols > 0);
}

PolyMatrix PolyMatrix::Identity(int n) {
  PolyMatrix out(n, n);
  for (int i = 0; i < n; ++i) {
    out.At(i, i) = Polynomial::Constant(Rational::One());
  }
  return out;
}

Polynomial& PolyMatrix::At(int r, int c) {
  GMC_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return entries_[r * cols_ + c];
}

const Polynomial& PolyMatrix::At(int r, int c) const {
  GMC_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return entries_[r * cols_ + c];
}

PolyMatrix PolyMatrix::operator*(const PolyMatrix& other) const {
  GMC_CHECK(cols_ == other.rows_);
  PolyMatrix out(rows_, other.cols_);
  for (int i = 0; i < rows_; ++i) {
    for (int j = 0; j < other.cols_; ++j) {
      Polynomial sum;
      for (int k = 0; k < cols_; ++k) {
        sum += At(i, k) * other.At(k, j);
      }
      out.At(i, j) = std::move(sum);
    }
  }
  return out;
}

PolyMatrix PolyMatrix::operator+(const PolyMatrix& other) const {
  GMC_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  PolyMatrix out(rows_, cols_);
  for (int i = 0; i < rows_ * cols_; ++i) {
    out.entries_[i] = entries_[i] + other.entries_[i];
  }
  return out;
}

PolyMatrix PolyMatrix::ScaledBy(const Rational& factor) const {
  PolyMatrix out(rows_, cols_);
  for (int i = 0; i < rows_ * cols_; ++i) {
    out.entries_[i] = entries_[i].ScaledBy(factor);
  }
  return out;
}

Polynomial PolyMatrix::Determinant() const {
  GMC_CHECK(rows_ == cols_);
  if (rows_ == 1) return At(0, 0);
  if (rows_ == 2) {
    return At(0, 0) * At(1, 1) - At(0, 1) * At(1, 0);
  }
  Polynomial det;
  for (int j = 0; j < cols_; ++j) {
    PolyMatrix minor(rows_ - 1, cols_ - 1);
    for (int r = 1; r < rows_; ++r) {
      int cc = 0;
      for (int c = 0; c < cols_; ++c) {
        if (c == j) continue;
        minor.At(r - 1, cc++) = At(r, c);
      }
    }
    Polynomial term = At(0, j) * minor.Determinant();
    if (j % 2 == 0) {
      det += term;
    } else {
      det -= term;
    }
  }
  return det;
}

PolyMatrix PolyMatrix::SubstituteValue(int var, const Rational& value) const {
  PolyMatrix out(rows_, cols_);
  for (int i = 0; i < rows_ * cols_; ++i) {
    out.entries_[i] = entries_[i].SubstituteValue(var, value);
  }
  return out;
}

}  // namespace gmc
