// ∀CNF queries: conjunctions of universally quantified clauses (duals of
// UCQs, §2). A query is kept *reduced*: every clause minimized and no clause
// redundant (no homomorphism from another clause into it), matching the
// standing assumption of the paper.

#ifndef GMC_LOGIC_QUERY_H_
#define GMC_LOGIC_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "logic/clause.h"
#include "logic/symbol.h"

namespace gmc {

class Query {
 public:
  // An empty (trivially true) query over the given vocabulary.
  explicit Query(std::shared_ptr<const Vocabulary> vocab);
  Query(std::shared_ptr<const Vocabulary> vocab, std::vector<Clause> clauses);

  const Vocabulary& vocab() const { return *vocab_; }
  std::shared_ptr<const Vocabulary> vocab_ptr() const { return vocab_; }
  const std::vector<Clause>& clauses() const { return clauses_; }

  // True if the query is the constant TRUE (no clauses) / FALSE (a clause
  // became empty under substitution).
  bool IsTrue() const { return !is_false_ && clauses_.empty(); }
  bool IsFalse() const { return is_false_; }

  // All symbols occurring in the query, sorted.
  std::vector<SymbolId> Symbols() const;

  // Q[S := value], reduced (Lemma 2.7's rewriting).
  Query Substitute(SymbolId symbol, bool value) const;

  // Partition of clauses into connected components of the "shares a symbol"
  // graph; component(i) is the component index of clauses()[i].
  std::vector<int> ClauseComponents() const;

  // Syntactic implication: every clause of `weaker` is implied (via a clause
  // homomorphism) by some clause of `stronger`. Sound for ∀CNF; complete on
  // reduced queries of this fragment.
  static bool Implies(const Query& stronger, const Query& weaker);
  static bool Equivalent(const Query& a, const Query& b);

  std::string ToString() const;

 private:
  // Removes redundant clauses (Ci → Cj homomorphism makes Cj redundant).
  void Reduce();

  std::shared_ptr<const Vocabulary> vocab_;
  std::vector<Clause> clauses_;
  bool is_false_ = false;
};

}  // namespace gmc

#endif  // GMC_LOGIC_QUERY_H_
