// Relational vocabulary for the bipartite ∀CNF fragment.
//
// The paper (§2) works over vocabularies with unary symbols R(x), T(y) and
// binary symbols S_j(x, y). Domains are bipartite: left constants (ranged
// over by x) and right constants (ranged over by y). A unary symbol applies
// to exactly one side; a binary symbol always takes (left, right) in that
// order. The zig-zag construction of Appendix A also stays inside this
// fragment (its R^(i) copies for 1 < i < n are binary).

#ifndef GMC_LOGIC_SYMBOL_H_
#define GMC_LOGIC_SYMBOL_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace gmc {

// Index of a relation symbol within a Vocabulary.
using SymbolId = int32_t;

enum class SymbolKind : uint8_t {
  kUnaryLeft,   // R(x): applies to left-domain constants
  kUnaryRight,  // T(y): applies to right-domain constants
  kBinary,      // S(x, y)
};

struct Symbol {
  std::string name;
  SymbolKind kind;
};

// An append-only registry of relation symbols. Queries and TIDs hold
// SymbolIds into a shared Vocabulary.
class Vocabulary {
 public:
  Vocabulary() = default;

  // Registers a new symbol; aborts if the name is already taken.
  SymbolId Add(const std::string& name, SymbolKind kind);
  // Returns the existing id, or adds the symbol if absent. Aborts if the
  // name exists with a different kind.
  SymbolId AddOrGet(const std::string& name, SymbolKind kind);

  // Returns the id for `name`, or -1 if absent.
  SymbolId Find(const std::string& name) const;

  const Symbol& symbol(SymbolId id) const { return symbols_.at(id); }
  const std::string& name(SymbolId id) const { return symbols_.at(id).name; }
  SymbolKind kind(SymbolId id) const { return symbols_.at(id).kind; }
  bool IsBinary(SymbolId id) const {
    return kind(id) == SymbolKind::kBinary;
  }
  bool IsUnary(SymbolId id) const { return !IsBinary(id); }

  int size() const { return static_cast<int>(symbols_.size()); }

  // All ids of a given kind, in registration order.
  std::vector<SymbolId> IdsOfKind(SymbolKind kind) const;

 private:
  std::vector<Symbol> symbols_;
  std::unordered_map<std::string, SymbolId> by_name_;
};

}  // namespace gmc

#endif  // GMC_LOGIC_SYMBOL_H_
