// Clause–variable incidence structure, as a graph.
//
// The Shannon-expansion order of the d-DNNF compiler is a graph problem in
// disguise: deciding the variables of a small vertex separator first makes
// the residual formula fall apart into connected components, which compile
// to decomposable AND nodes instead of deep decision chains. This header
// extracts the *primal graph* of a clause set (variables adjacent iff they
// co-occur in some clause) and computes the two classic elimination orders
// the vtree layer (compile/vtree.h) builds its dissections from.
//
// The functions here take raw clause lists rather than a Cnf, so logic/
// stays below lineage/ in the layering — the compiler hands in
// cnf.num_vars / cnf.clauses directly.

#ifndef GMC_LOGIC_INCIDENCE_H_
#define GMC_LOGIC_INCIDENCE_H_

#include <cstddef>
#include <vector>

namespace gmc {

/// The primal (a.k.a. variable-interaction) graph of a clause set:
/// vertices are variables 0..num_vars-1, and u ~ v iff some clause
/// contains both. Adjacency lists are sorted and deduplicated; variables
/// that occur in no clause have empty lists. Plain value type — no
/// internal sharing, safe to copy and to read from many threads.
struct PrimalGraph {
  int num_vars = 0;
  std::vector<std::vector<int>> adjacency;
  /// occurs[v] iff v appears in at least one clause — distinct from having
  /// neighbors: a variable whose only occurrences are unit clauses is
  /// isolated in the graph but still part of every elimination order.
  std::vector<char> occurs;

  /// Builds the graph from a clause list over variables 0..num_vars-1.
  /// Cost is O(sum of clause-length squared) — clauses are cliques.
  static PrimalGraph FromClauses(int num_vars,
                                 const std::vector<std::vector<int>>& clauses);

  /// Number of undirected edges.
  size_t NumEdges() const;

  /// Variables with at least one clause occurrence, sorted ascending.
  std::vector<int> UsedVariables() const;
};

/// Min-fill elimination order over the used variables of `graph`: greedily
/// eliminates the variable whose removal adds the fewest fill edges among
/// its remaining neighbors, connecting those neighbors into a clique.
/// The classic treewidth heuristic — REVERSING this order yields the
/// top-down decision order the vtree layer uses. Deterministic: ties break
/// toward the smallest variable id. Falls back to MinDegreeOrder (below)
/// when the graph is too large or too dense for the quadratic adjacency
/// matrix the fill counting needs (> kMinFillMaxVars vertices), so callers
/// always get an order in one call.
std::vector<int> MinFillOrder(const PrimalGraph& graph);

/// Largest vertex count MinFillOrder handles before degrading to
/// min-degree (the fill computation keeps an n×n adjacency matrix).
inline constexpr int kMinFillMaxVars = 2048;

/// Min-degree elimination order over the used variables: the cheap
/// dtree-style fallback for dense or very large instances — eliminates a
/// minimum-degree variable each round and connects its neighbors, but
/// never counts fill edges, so it runs in near-linear time on bounded
/// degree graphs. Deterministic (smallest id on ties).
std::vector<int> MinDegreeOrder(const PrimalGraph& graph);

/// Breadth-first ordering of the used variables: each connected component
/// is traversed from its smallest-id vertex with neighbors visited in
/// ascending order, components emitted largest first (smallest root id on
/// ties). The balanced-bisection vtree splits this order at the midpoint —
/// BFS layers make the two halves geometrically contiguous in the graph,
/// which keeps the cut small on the path-shaped gadget lineages.
std::vector<int> BfsOrder(const PrimalGraph& graph);

}  // namespace gmc

#endif  // GMC_LOGIC_INCIDENCE_H_
