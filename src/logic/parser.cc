#include "logic/parser.h"

#include <cctype>
#include <utility>
#include <vector>

#include "util/check.h"

namespace gmc {
namespace {

enum class TokenKind {
  kIdent,   // names, 'forall', 'x', 'y', 'Ax', 'Ay'
  kLParen,
  kRParen,
  kComma,
  kPipe,
  kAmp,
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  size_t pos;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Token Next() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= text_.size()) return {TokenKind::kEnd, "", pos_};
    const size_t start = pos_;
    const char c = text_[pos_];
    switch (c) {
      case '(':
        ++pos_;
        return {TokenKind::kLParen, "(", start};
      case ')':
        ++pos_;
        return {TokenKind::kRParen, ")", start};
      case ',':
        ++pos_;
        return {TokenKind::kComma, ",", start};
      case '|':
        ++pos_;
        return {TokenKind::kPipe, "|", start};
      case '&':
        ++pos_;
        return {TokenKind::kAmp, "&", start};
      default:
        break;
    }
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      size_t end = pos_;
      while (end < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[end])) ||
              text_[end] == '_')) {
        ++end;
      }
      Token t{TokenKind::kIdent, text_.substr(pos_, end - pos_), start};
      pos_ = end;
      return t;
    }
    return {TokenKind::kEnd, std::string(1, c), start};  // caught as error
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

struct ParsedAtom {
  std::string name;
  bool has_x = false;
  bool has_y = false;
};

class Parser {
 public:
  Parser(const std::string& text, std::shared_ptr<Vocabulary> vocab)
      : lexer_(text), vocab_(std::move(vocab)) {
    Advance();
  }

  std::optional<Query> Parse(std::string* error) {
    std::vector<Clause> clauses;
    while (true) {
      std::optional<Clause> clause = ParseSentence();
      if (!clause.has_value()) {
        *error = error_;
        return std::nullopt;
      }
      clauses.push_back(std::move(*clause));
      if (token_.kind == TokenKind::kAmp) {
        Advance();
        continue;
      }
      break;
    }
    if (token_.kind != TokenKind::kEnd) {
      *error = "unexpected trailing input at position " +
               std::to_string(token_.pos);
      return std::nullopt;
    }
    return Query(vocab_, std::move(clauses));
  }

 private:
  void Advance() { token_ = lexer_.Next(); }

  bool Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " at position " + std::to_string(token_.pos);
    }
    return false;
  }

  // Parses an optional quantifier token; returns 'x', 'y', or 0 when the
  // next token is not a quantifier. 'Ax' / 'Ay' / 'forall x' / 'forall y'.
  char TryQuantifier() {
    if (token_.kind != TokenKind::kIdent) return 0;
    if (token_.text == "Ax") {
      Advance();
      return 'x';
    }
    if (token_.text == "Ay") {
      Advance();
      return 'y';
    }
    if (token_.text == "forall") {
      Advance();
      if (token_.kind == TokenKind::kIdent &&
          (token_.text == "x" || token_.text == "y")) {
        char v = token_.text[0];
        Advance();
        return v;
      }
      Fail("expected variable after 'forall'");
      return 0;
    }
    return 0;
  }

  bool ParseAtom(ParsedAtom* atom) {
    if (token_.kind != TokenKind::kIdent) return Fail("expected atom name");
    atom->name = token_.text;
    Advance();
    if (token_.kind != TokenKind::kLParen) return Fail("expected '('");
    Advance();
    for (int i = 0; i < 2; ++i) {
      if (token_.kind != TokenKind::kIdent ||
          (token_.text != "x" && token_.text != "y")) {
        return Fail("expected variable 'x' or 'y'");
      }
      if (token_.text == "x") {
        if (atom->has_x) return Fail("duplicate variable in atom");
        atom->has_x = true;
      } else {
        if (atom->has_y) return Fail("duplicate variable in atom");
        atom->has_y = true;
      }
      Advance();
      if (token_.kind == TokenKind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    if (token_.kind != TokenKind::kRParen) return Fail("expected ')'");
    Advance();
    return true;
  }

  // Resolves an atom to a symbol id, inferring its kind; -1 on conflict.
  SymbolId ResolveSymbol(const ParsedAtom& atom) {
    SymbolKind kind;
    if (atom.has_x && atom.has_y) {
      kind = SymbolKind::kBinary;
    } else if (atom.has_x) {
      kind = SymbolKind::kUnaryLeft;
    } else {
      kind = SymbolKind::kUnaryRight;
    }
    SymbolId existing = vocab_->Find(atom.name);
    if (existing >= 0) {
      if (vocab_->kind(existing) != kind) {
        Fail("symbol '" + atom.name + "' used with inconsistent arguments");
        return -1;
      }
      return existing;
    }
    return vocab_->Add(atom.name, kind);
  }

  // sentence := quant* '(' body ')'
  std::optional<Clause> ParseSentence() {
    bool saw_x = false, saw_y = false;
    char first = 0;
    while (true) {
      char q = TryQuantifier();
      if (q == 0) break;
      if (first == 0) first = q;
      if (q == 'x') saw_x = true;
      if (q == 'y') saw_y = true;
    }
    if (!error_.empty()) return std::nullopt;
    if (token_.kind != TokenKind::kLParen) {
      Fail("expected '(' after quantifier prefix");
      return std::nullopt;
    }
    Advance();
    // The base variable: the first outer quantifier; when only one variable
    // is quantified outside, that one. Default to x.
    const char base_var = first == 0 ? 'x' : first;
    const Side base_side = base_var == 'x' ? Side::kLeft : Side::kRight;

    std::vector<SymbolId> base_unaries;
    std::vector<Subclause> subclauses;
    // Flat atoms over both variables accumulate into one implicit subclause
    // (the prenex-simple form ∀x∀y(...)).
    Subclause flat;
    bool flat_used = false;

    while (true) {
      char q = TryQuantifier();
      if (!error_.empty()) return std::nullopt;
      if (q != 0) {
        // Inner-quantified subclause: quant '(' atom ('|' atom)* ')'.
        if ((q == 'x') == (base_var == 'x')) {
          Fail("inner quantifier must bind the other variable");
          return std::nullopt;
        }
        if (token_.kind != TokenKind::kLParen) {
          Fail("expected '(' after inner quantifier");
          return std::nullopt;
        }
        Advance();
        Subclause sub;
        while (true) {
          ParsedAtom atom;
          if (!ParseAtom(&atom)) return std::nullopt;
          SymbolId id = ResolveSymbol(atom);
          if (id < 0) return std::nullopt;
          if (atom.has_x && atom.has_y) {
            sub.binaries.push_back(id);
          } else if ((atom.has_x && q == 'x') || (atom.has_y && q == 'y')) {
            sub.inner_unaries.push_back(id);
          } else {
            Fail("unary atom over the outer variable inside a subclause");
            return std::nullopt;
          }
          if (token_.kind == TokenKind::kPipe) {
            Advance();
            continue;
          }
          break;
        }
        if (token_.kind != TokenKind::kRParen) {
          Fail("expected ')' closing subclause");
          return std::nullopt;
        }
        Advance();
        subclauses.push_back(std::move(sub));
      } else {
        ParsedAtom atom;
        if (!ParseAtom(&atom)) return std::nullopt;
        SymbolId id = ResolveSymbol(atom);
        if (id < 0) return std::nullopt;
        if (atom.has_x && atom.has_y) {
          if (!saw_x || !saw_y) {
            Fail("binary atom mentions an unquantified variable");
            return std::nullopt;
          }
          flat.binaries.push_back(id);
          flat_used = true;
        } else if ((atom.has_x && base_var == 'x') ||
                   (atom.has_y && base_var == 'y')) {
          base_unaries.push_back(id);
        } else {
          // Unary over the non-base variable inside a prenex-simple clause.
          if (!(saw_x && saw_y)) {
            Fail("unary atom over an unquantified variable");
            return std::nullopt;
          }
          flat.inner_unaries.push_back(id);
          flat_used = true;
        }
      }
      if (token_.kind == TokenKind::kPipe) {
        Advance();
        continue;
      }
      break;
    }
    if (token_.kind != TokenKind::kRParen) {
      Fail("expected ')' closing clause");
      return std::nullopt;
    }
    Advance();
    if (flat_used) {
      if (!subclauses.empty()) {
        Fail("cannot mix prenex binary atoms with inner-quantified "
             "subclauses in one clause");
        return std::nullopt;
      }
      subclauses.push_back(std::move(flat));
    }
    return Clause(base_side, std::move(base_unaries), std::move(subclauses));
  }

  Lexer lexer_;
  std::shared_ptr<Vocabulary> vocab_;
  Token token_{TokenKind::kEnd, "", 0};
  std::string error_;
};

}  // namespace

std::optional<Query> ParseQuery(const std::string& text,
                                std::shared_ptr<Vocabulary> vocab,
                                std::string* error) {
  Parser parser(text, std::move(vocab));
  return parser.Parse(error);
}

Query ParseQueryOrDie(const std::string& text) {
  return ParseQueryOrDie(text, std::make_shared<Vocabulary>());
}

Query ParseQueryOrDie(const std::string& text,
                      std::shared_ptr<Vocabulary> vocab) {
  std::string error;
  std::optional<Query> query = ParseQuery(text, std::move(vocab), &error);
  GMC_CHECK_MSG(query.has_value(), error.c_str());
  return *query;
}

}  // namespace gmc
