#include "logic/incidence.h"

#include <algorithm>
#include <queue>

#include "util/check.h"

namespace gmc {

PrimalGraph PrimalGraph::FromClauses(
    int num_vars, const std::vector<std::vector<int>>& clauses) {
  PrimalGraph graph;
  graph.num_vars = num_vars;
  graph.adjacency.assign(static_cast<size_t>(num_vars), {});
  graph.occurs.assign(static_cast<size_t>(num_vars), 0);
  for (const auto& clause : clauses) {
    for (size_t i = 0; i < clause.size(); ++i) {
      GMC_CHECK(clause[i] >= 0 && clause[i] < num_vars);
      graph.occurs[clause[i]] = 1;
      for (size_t j = i + 1; j < clause.size(); ++j) {
        graph.adjacency[clause[i]].push_back(clause[j]);
        graph.adjacency[clause[j]].push_back(clause[i]);
      }
    }
  }
  for (auto& neighbors : graph.adjacency) {
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                    neighbors.end());
  }
  return graph;
}

size_t PrimalGraph::NumEdges() const {
  size_t twice = 0;
  for (const auto& neighbors : adjacency) twice += neighbors.size();
  return twice / 2;
}

std::vector<int> PrimalGraph::UsedVariables() const {
  std::vector<int> used;
  for (int v = 0; v < num_vars; ++v) {
    if (occurs[v]) used.push_back(v);
  }
  return used;
}

namespace {

// Shared elimination loop: `count_fill` toggles between min-fill (count
// missing neighbor pairs via an adjacency matrix) and min-degree. The
// eliminated variable's remaining neighbors are connected into a clique so
// later rounds see the induced graph, exactly as treewidth heuristics
// prescribe.
std::vector<int> EliminationOrder(const PrimalGraph& graph, bool count_fill) {
  const int n = graph.num_vars;
  // Working adjacency as sets-in-sorted-vectors plus, for fill counting, a
  // flat n×n membership matrix (only built when needed — that is the size
  // limit kMinFillMaxVars protects).
  std::vector<std::vector<int>> adj = graph.adjacency;
  std::vector<char> matrix;
  if (count_fill) {
    matrix.assign(static_cast<size_t>(n) * n, 0);
    for (int v = 0; v < n; ++v) {
      for (int u : adj[v]) matrix[static_cast<size_t>(v) * n + u] = 1;
    }
  }
  auto connected = [&](int a, int b) {
    return matrix[static_cast<size_t>(a) * n + b] != 0;
  };

  std::vector<char> eliminated(n, 0);
  std::vector<int> order;
  std::vector<int> remaining = graph.UsedVariables();
  order.reserve(remaining.size());
  while (!remaining.empty()) {
    int best = -1;
    long best_score = -1;
    long best_degree = -1;
    for (int v : remaining) {
      long degree = 0;
      for (int u : adj[v]) {
        if (!eliminated[u]) ++degree;
      }
      long score;
      if (count_fill) {
        // Fill edges: pairs of live neighbors not already adjacent.
        score = 0;
        const auto& nv = adj[v];
        for (size_t i = 0; i < nv.size(); ++i) {
          if (eliminated[nv[i]]) continue;
          for (size_t j = i + 1; j < nv.size(); ++j) {
            if (eliminated[nv[j]]) continue;
            if (!connected(nv[i], nv[j])) ++score;
          }
        }
      } else {
        score = degree;
      }
      // Primary: fewest fill edges (resp. lowest degree). Tie-break:
      // LOWEST live degree — eliminating a low-degree simplicial vertex
      // keeps separators small — then smallest id for determinism.
      if (best == -1 || score < best_score ||
          (score == best_score && degree < best_degree)) {
        best = v;
        best_score = score;
        best_degree = degree;
      }
    }
    order.push_back(best);
    eliminated[best] = 1;
    // Connect the live neighborhood of `best` into a clique.
    std::vector<int> live;
    for (int u : adj[best]) {
      if (!eliminated[u]) live.push_back(u);
    }
    for (size_t i = 0; i < live.size(); ++i) {
      for (size_t j = i + 1; j < live.size(); ++j) {
        const int a = live[i], b = live[j];
        const bool already =
            count_fill ? connected(a, b)
                       : std::binary_search(adj[a].begin(), adj[a].end(), b);
        if (already) continue;
        adj[a].insert(std::lower_bound(adj[a].begin(), adj[a].end(), b), b);
        adj[b].insert(std::lower_bound(adj[b].begin(), adj[b].end(), a), a);
        if (count_fill) {
          matrix[static_cast<size_t>(a) * n + b] = 1;
          matrix[static_cast<size_t>(b) * n + a] = 1;
        }
      }
    }
    remaining.erase(std::find(remaining.begin(), remaining.end(), best));
  }
  return order;
}

}  // namespace

std::vector<int> MinFillOrder(const PrimalGraph& graph) {
  // The density gate counts OCCURRING variables, not the id space: lineage
  // CNFs can intern ids far beyond the variables their clauses mention,
  // and only occurring variables enter the fill matrix.
  std::vector<int> used = graph.UsedVariables();
  if (used.size() > static_cast<size_t>(kMinFillMaxVars)) {
    return MinDegreeOrder(graph);
  }
  if (graph.num_vars <= kMinFillMaxVars) {
    return EliminationOrder(graph, /*count_fill=*/true);
  }
  // Sparse occurrence over a huge id space: compact to dense ids so the
  // fill matrix stays used², order, and map back.
  std::vector<int> dense_of(graph.num_vars, -1);
  for (size_t i = 0; i < used.size(); ++i) dense_of[used[i]] = static_cast<int>(i);
  PrimalGraph compact;
  compact.num_vars = static_cast<int>(used.size());
  compact.adjacency.resize(used.size());
  compact.occurs.assign(used.size(), 1);
  for (size_t i = 0; i < used.size(); ++i) {
    for (int u : graph.adjacency[used[i]]) {
      compact.adjacency[i].push_back(dense_of[u]);
    }
  }
  std::vector<int> order = EliminationOrder(compact, /*count_fill=*/true);
  for (int& v : order) v = used[v];
  return order;
}

std::vector<int> MinDegreeOrder(const PrimalGraph& graph) {
  return EliminationOrder(graph, /*count_fill=*/false);
}

std::vector<int> BfsOrder(const PrimalGraph& graph) {
  const int n = graph.num_vars;
  std::vector<char> visited(n, 0);
  // One BFS order per component, rooted at the component's smallest id.
  std::vector<std::vector<int>> components;
  for (int root = 0; root < n; ++root) {
    if (visited[root] || !graph.occurs[root]) continue;
    std::vector<int> component;
    std::queue<int> frontier;
    frontier.push(root);
    visited[root] = 1;
    while (!frontier.empty()) {
      const int v = frontier.front();
      frontier.pop();
      component.push_back(v);
      for (int u : graph.adjacency[v]) {  // sorted → deterministic
        if (!visited[u]) {
          visited[u] = 1;
          frontier.push(u);
        }
      }
    }
    components.push_back(std::move(component));
  }
  std::stable_sort(components.begin(), components.end(),
                   [](const std::vector<int>& a, const std::vector<int>& b) {
                     return a.size() > b.size();
                   });
  std::vector<int> order;
  for (const auto& component : components) {
    order.insert(order.end(), component.begin(), component.end());
  }
  return order;
}

}  // namespace gmc
