// Static analysis of bipartite queries: the syntactic side of the dichotomy.
//
// Implements Definition 2.3 (clause shapes and Type I/II classification),
// Definition 2.4 (a bipartite query is unsafe iff a left clause and a right
// clause are connected by a shared-symbol path; its length is the minimal
// such path length), and Definition 2.8 (a *final* query is an unsafe query
// such that every substitution Q[S := 0] / Q[S := 1] is safe).

#ifndef GMC_LOGIC_BIPARTITE_H_
#define GMC_LOGIC_BIPARTITE_H_

#include <string>
#include <vector>

#include "logic/query.h"

namespace gmc {

enum class PartType {
  kNone,    // no clauses on this side
  kTypeI,   // unary-anchored (R(x) / T(y)) clauses
  kTypeII,  // multi-subclause clauses, no unary on this side
  kMixed,   // both shapes present (outside Def. 2.3)
};

const char* PartTypeName(PartType type);

struct BipartiteAnalysis {
  // Def. 2.4: safe iff no left clause is connected to a right clause.
  bool safe = true;
  // Minimal left-to-right path length k (number of edges in C0,…,Ck);
  // -1 when safe. A clause that is simultaneously left and right (as in H0)
  // yields length 0.
  int length = -1;
  // Witness path of clause indices C0,…,Ck (empty when safe).
  std::vector<int> witness_path;
  PartType left_type = PartType::kNone;
  PartType right_type = PartType::kNone;
  // True if every clause matches one of the five shapes of Def. 2.3
  // exactly (left/middle/right of Type I/II).
  bool conforms_def23 = true;

  std::string ToString() const;
};

BipartiteAnalysis AnalyzeBipartite(const Query& query);

// Shorthands.
bool IsSafe(const Query& query);

// Def. 2.8. Requires the query to be unsafe; checks all 2·|symbols|
// substitutions for safety.
bool IsFinal(const Query& query);

// If Q is unsafe but not final, returns one simplification Q[S := v] that is
// still unsafe (used to walk any unsafe query down to a final one, as in the
// proof of Theorem 2.2). Identity when Q is final or safe.
Query SimplifyTowardsFinal(const Query& query);

// Iterates SimplifyTowardsFinal until final (or safe, which cannot happen
// for unsafe inputs by Lemma 2.7(3)).
Query MakeFinal(const Query& query);

}  // namespace gmc

#endif  // GMC_LOGIC_BIPARTITE_H_
