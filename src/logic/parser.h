// Text syntax for ∀CNF queries.
//
// Grammar (ASCII; '&' separates clauses, '|' separates disjuncts):
//
//   query    := sentence ('&' sentence)*
//   sentence := quant* '(' body ')'
//   quant    := 'Ax' | 'Ay' | 'forall' ('x'|'y')
//   body     := disjunct ('|' disjunct)*
//   disjunct := atom | quant '(' atom ('|' atom)* ')'
//   atom     := name '(' ('x' | 'y' | 'x,y') ')'
//
// Examples (matching the paper):
//   H0:  "Ax Ay (R(x) | S(x,y) | T(y))"
//   H1:  "Ax Ay (R(x) | S(x,y)) & Ax Ay (S(x,y) | T(y))"
//   Type II left clause:  "Ax (Ay (S1(x,y)) | Ay (S2(x,y)))"
//
// Symbol kinds are inferred from usage: name(x) is a left unary, name(y) a
// right unary, name(x,y) binary. Reusing a name at a different kind is an
// error.

#ifndef GMC_LOGIC_PARSER_H_
#define GMC_LOGIC_PARSER_H_

#include <memory>
#include <optional>
#include <string>

#include "logic/query.h"

namespace gmc {

// Parses `text` into a query, registering symbols in `vocab` (which may
// already contain symbols, e.g. when several queries must share one
// vocabulary). Returns std::nullopt and sets *error on malformed input.
std::optional<Query> ParseQuery(const std::string& text,
                                std::shared_ptr<Vocabulary> vocab,
                                std::string* error);

// Convenience for tests and examples: parses over a fresh vocabulary and
// aborts on error.
Query ParseQueryOrDie(const std::string& text);

// As above but parses into an existing vocabulary.
Query ParseQueryOrDie(const std::string& text,
                      std::shared_ptr<Vocabulary> vocab);

}  // namespace gmc

#endif  // GMC_LOGIC_PARSER_H_
