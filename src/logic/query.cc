#include "logic/query.h"

#include <algorithm>
#include <functional>
#include <iterator>
#include <utility>

#include "util/check.h"

namespace gmc {

Query::Query(std::shared_ptr<const Vocabulary> vocab)
    : vocab_(std::move(vocab)) {
  GMC_CHECK(vocab_ != nullptr);
}

Query::Query(std::shared_ptr<const Vocabulary> vocab,
             std::vector<Clause> clauses)
    : vocab_(std::move(vocab)), clauses_(std::move(clauses)) {
  GMC_CHECK(vocab_ != nullptr);
  Reduce();
}

void Query::Reduce() {
  // Cj is redundant when some other kept clause maps homomorphically into it
  // (Ci ⇒ Cj, so the conjunction keeps the stronger Ci). For mutually
  // equivalent clauses the first one wins.
  std::vector<bool> removed(clauses_.size(), false);
  for (size_t j = 0; j < clauses_.size(); ++j) {
    for (size_t i = 0; i < clauses_.size(); ++i) {
      if (i == j || removed[i] || removed[j]) continue;
      if (!Clause::HomomorphismExists(clauses_[i], clauses_[j])) continue;
      // Ci ⇒ Cj. Drop Cj unless they are equivalent and j comes first.
      if (Clause::HomomorphismExists(clauses_[j], clauses_[i]) && j < i) {
        continue;
      }
      removed[j] = true;
      break;
    }
  }
  std::vector<Clause> kept;
  for (size_t i = 0; i < clauses_.size(); ++i) {
    if (!removed[i]) kept.push_back(std::move(clauses_[i]));
  }
  clauses_ = std::move(kept);
}

std::vector<SymbolId> Query::Symbols() const {
  std::vector<SymbolId> out;
  for (const Clause& c : clauses_) {
    std::vector<SymbolId> symbols = c.Symbols();
    out.insert(out.end(), symbols.begin(), symbols.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Query Query::Substitute(SymbolId symbol, bool value) const {
  Query out(vocab_);
  if (is_false_) {
    out.is_false_ = true;
    return out;
  }
  std::vector<Clause> clauses;
  for (const Clause& c : clauses_) {
    Clause copy = c;
    switch (copy.Substitute(symbol, value)) {
      case SubstituteOutcome::kTrue:
        break;  // clause is valid; drop it
      case SubstituteOutcome::kFalse:
        out.is_false_ = true;
        return out;
      case SubstituteOutcome::kClause:
        clauses.push_back(std::move(copy));
        break;
    }
  }
  out.clauses_ = std::move(clauses);
  out.Reduce();
  return out;
}

std::vector<int> Query::ClauseComponents() const {
  const int n = static_cast<int>(clauses_.size());
  std::vector<int> parent(n);
  for (int i = 0; i < n; ++i) parent[i] = i;
  std::vector<int> rank(n, 0);
  std::function<int(int)> find = [&](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (rank[a] < rank[b]) std::swap(a, b);
    parent[b] = a;
    if (rank[a] == rank[b]) ++rank[a];
  };
  std::vector<std::vector<SymbolId>> symbols(n);
  for (int i = 0; i < n; ++i) symbols[i] = clauses_[i].Symbols();
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      std::vector<SymbolId> shared;
      std::set_intersection(symbols[i].begin(), symbols[i].end(),
                            symbols[j].begin(), symbols[j].end(),
                            std::back_inserter(shared));
      if (!shared.empty()) unite(i, j);
    }
  }
  std::vector<int> component(n, -1);
  int next = 0;
  for (int i = 0; i < n; ++i) {
    int root = find(i);
    if (component[root] == -1) component[root] = next++;
    component[i] = component[root];
  }
  return component;
}

bool Query::Implies(const Query& stronger, const Query& weaker) {
  if (stronger.IsFalse()) return true;
  if (weaker.IsFalse()) return false;
  for (const Clause& target : weaker.clauses_) {
    bool covered = false;
    for (const Clause& source : stronger.clauses_) {
      if (Clause::HomomorphismExists(source, target)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

bool Query::Equivalent(const Query& a, const Query& b) {
  return Implies(a, b) && Implies(b, a);
}

std::string Query::ToString() const {
  if (is_false_) return "FALSE";
  if (clauses_.empty()) return "TRUE";
  std::string out;
  for (size_t i = 0; i < clauses_.size(); ++i) {
    if (i > 0) out += " & ";
    out += clauses_[i].ToString(*vocab_);
  }
  return out;
}

}  // namespace gmc
