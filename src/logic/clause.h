// Universally quantified clauses of the bipartite ∀CNF fragment (Def. 2.3).
//
// A clause has a *base* variable (left side x, or right side y) and consists
// of a disjunction of (a) unary atoms over the base variable and (b)
// subclauses, each carrying its own inner universally-quantified variable of
// the opposite side:
//
//     ∀b ( A1(b) ∨ … ∨ Ak(b) ∨ ∀i1 D1(b,i1) ∨ … ∨ ∀im Dm(b,im) )
//
// where each D is a disjunction of binary atoms over (b, i) and unary atoms
// over i. This uniformly represents every clause shape in the paper:
//   * Type I left    ∀x∀y(R(x) ∨ S_J(x,y))      — base x, one subclause
//   * middle         ∀x∀y S_J(x,y)               — base x, one subclause
//   * Type I right   ∀y∀x(S_J(x,y) ∨ T(y))      — canonicalized to base x
//   * Type II left   ∀x(∨_ℓ ∀y S_{J_ℓ}(x,y))    — base x, m > 1 subclauses
//   * Type II right  ∀y(∨_ℓ ∀x S_{J_ℓ}(x,y))    — base y, m > 1 subclauses
//   * H0's clause    ∀x∀y(R(x) ∨ S(x,y) ∨ T(y)) — base x, unary + subclause
// plus the generalized left clauses with several unary symbols produced by
// the shattering step (Appendix C, Claim 1).
//
// Clauses are kept in a canonical, minimized form: symbol lists sorted,
// subclauses deduplicated and subsumption-free (a subclause that implies a
// sibling is removed, per the clause-minimization convention of §2), and
// clauses with at most one subclause are re-based to the left side.

#ifndef GMC_LOGIC_CLAUSE_H_
#define GMC_LOGIC_CLAUSE_H_

#include <string>
#include <vector>

#include "logic/symbol.h"

namespace gmc {

enum class Side : uint8_t { kLeft, kRight };

inline Side Opposite(Side s) {
  return s == Side::kLeft ? Side::kRight : Side::kLeft;
}

// One disjunct of the form ∀i ( ⋁_{S∈binaries} S(b,i) ∨ ⋁_{U∈inner} U(i) ).
struct Subclause {
  std::vector<SymbolId> binaries;        // sorted, unique
  std::vector<SymbolId> inner_unaries;   // sorted, unique

  bool Empty() const { return binaries.empty() && inner_unaries.empty(); }
  // Component-wise subset test: does *this imply `other` (pointwise)?
  bool SubsetOf(const Subclause& other) const;
  bool operator==(const Subclause& other) const = default;
  bool operator<(const Subclause& other) const;
};

// Result of substituting a symbol with false/true inside a clause.
enum class SubstituteOutcome : uint8_t {
  kClause,  // clause survives (possibly smaller)
  kTrue,    // clause became valid — drop it from the query
  kFalse,   // clause became unsatisfiable — the whole query is false
};

class Clause {
 public:
  Clause() = default;
  Clause(Side base, std::vector<SymbolId> base_unaries,
         std::vector<Subclause> subclauses);

  Side base() const { return base_; }
  const std::vector<SymbolId>& base_unaries() const { return base_unaries_; }
  const std::vector<Subclause>& subclauses() const { return subclauses_; }

  // All distinct symbols occurring anywhere in the clause, sorted.
  std::vector<SymbolId> Symbols() const;
  bool HasSymbol(SymbolId id) const;
  // True if some unary symbol of the given side occurs (as base or inner).
  bool HasUnaryOfSide(Side side) const;

  // Classification per Def. 2.3 (on the canonical form).
  bool IsLeftClause() const;    // contains a left unary, or ≥2 left subclauses
  bool IsRightClause() const;   // mirror image
  bool IsMiddleClause() const;  // binary-only single subclause
  // Number of subclauses (1 for prenex-simple clauses).
  int NumSubclauses() const { return static_cast<int>(subclauses_.size()); }

  // Replaces `symbol` by the constant `value` and re-normalizes.
  SubstituteOutcome Substitute(SymbolId symbol, bool value);

  // Is there a homomorphism `from` → `to` (a side-respecting variable map
  // sending every atom of `from` to an atom of `to`)? Witnesses logical
  // implication ∀(from) ⇒ ∀(to).
  static bool HomomorphismExists(const Clause& from, const Clause& to);

  // Logical equivalence via homomorphisms both ways (clauses are minimized).
  static bool Equivalent(const Clause& a, const Clause& b);

  bool operator==(const Clause& other) const = default;

  // Renders in ASCII, e.g. "Ax Ay (R(x) | S(x,y) | T(y))" or
  // "Ax (Ay (S1(x,y)) | Ay (S2(x,y)))".
  std::string ToString(const Vocabulary& vocab) const;

 private:
  // Sorts, dedupes, removes subsumed subclauses, re-bases simple clauses.
  void Normalize();

  Side base_ = Side::kLeft;
  std::vector<SymbolId> base_unaries_;
  std::vector<Subclause> subclauses_;
};

}  // namespace gmc

#endif  // GMC_LOGIC_CLAUSE_H_
