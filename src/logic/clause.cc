#include "logic/clause.h"

#include <algorithm>

#include "util/check.h"

namespace gmc {

namespace {

void SortUnique(std::vector<SymbolId>* ids) {
  std::sort(ids->begin(), ids->end());
  ids->erase(std::unique(ids->begin(), ids->end()), ids->end());
}

bool Contains(const std::vector<SymbolId>& ids, SymbolId id) {
  return std::binary_search(ids.begin(), ids.end(), id);
}

bool IsSubset(const std::vector<SymbolId>& a, const std::vector<SymbolId>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

bool Erase(std::vector<SymbolId>* ids, SymbolId id) {
  auto it = std::lower_bound(ids->begin(), ids->end(), id);
  if (it != ids->end() && *it == id) {
    ids->erase(it);
    return true;
  }
  return false;
}

}  // namespace

bool Subclause::SubsetOf(const Subclause& other) const {
  return IsSubset(binaries, other.binaries) &&
         IsSubset(inner_unaries, other.inner_unaries);
}

bool Subclause::operator<(const Subclause& other) const {
  if (binaries != other.binaries) return binaries < other.binaries;
  return inner_unaries < other.inner_unaries;
}

Clause::Clause(Side base, std::vector<SymbolId> base_unaries,
               std::vector<Subclause> subclauses)
    : base_(base),
      base_unaries_(std::move(base_unaries)),
      subclauses_(std::move(subclauses)) {
  Normalize();
}

void Clause::Normalize() {
  SortUnique(&base_unaries_);
  for (Subclause& sub : subclauses_) {
    SortUnique(&sub.binaries);
    SortUnique(&sub.inner_unaries);
  }
  // A subclause that (pointwise) implies a sibling is absorbed by it:
  // ∀i D(b,i) ∨ ∀i D'(b,i) ≡ ∀i D'(b,i) whenever D ⊆ D'. Remove strict
  // subsets and duplicates.
  std::sort(subclauses_.begin(), subclauses_.end());
  subclauses_.erase(std::unique(subclauses_.begin(), subclauses_.end()),
                    subclauses_.end());
  std::vector<bool> removed(subclauses_.size(), false);
  for (size_t i = 0; i < subclauses_.size(); ++i) {
    if (removed[i]) continue;
    for (size_t j = 0; j < subclauses_.size(); ++j) {
      if (i == j || removed[j]) continue;
      if (subclauses_[i].SubsetOf(subclauses_[j])) {
        removed[i] = true;
        break;
      }
    }
  }
  std::vector<Subclause> kept;
  for (size_t i = 0; i < subclauses_.size(); ++i) {
    if (!removed[i]) kept.push_back(std::move(subclauses_[i]));
  }
  subclauses_ = std::move(kept);

  // Canonical base: prenex-simple clauses (≤ 1 subclause) are based on the
  // left, so that syntactically different but equivalent forms compare equal
  // (∀y∀x(S ∨ T(y)) vs ∀x∀y(S ∨ T(y))). Pure-unary clauses keep the side of
  // their unaries.
  if (base_ == Side::kRight && subclauses_.size() == 1) {
    Subclause sub = std::move(subclauses_[0]);
    std::vector<SymbolId> new_base = std::move(sub.inner_unaries);
    sub.inner_unaries = std::move(base_unaries_);
    base_unaries_ = std::move(new_base);
    subclauses_[0] = std::move(sub);
    base_ = Side::kLeft;
  } else if (base_ == Side::kRight && subclauses_.empty() &&
             base_unaries_.empty()) {
    base_ = Side::kLeft;  // canonical empty (false) clause
  }
}

std::vector<SymbolId> Clause::Symbols() const {
  std::vector<SymbolId> out = base_unaries_;
  for (const Subclause& sub : subclauses_) {
    out.insert(out.end(), sub.binaries.begin(), sub.binaries.end());
    out.insert(out.end(), sub.inner_unaries.begin(), sub.inner_unaries.end());
  }
  SortUnique(&out);
  return out;
}

bool Clause::HasSymbol(SymbolId id) const {
  if (Contains(base_unaries_, id)) return true;
  for (const Subclause& sub : subclauses_) {
    if (Contains(sub.binaries, id) || Contains(sub.inner_unaries, id)) {
      return true;
    }
  }
  return false;
}

bool Clause::HasUnaryOfSide(Side side) const {
  if (base_ == side && !base_unaries_.empty()) return true;
  if (Opposite(base_) == side) {
    for (const Subclause& sub : subclauses_) {
      if (!sub.inner_unaries.empty()) return true;
    }
  }
  return false;
}

bool Clause::IsLeftClause() const {
  if (HasUnaryOfSide(Side::kLeft)) return true;
  return base_ == Side::kLeft && subclauses_.size() > 1;
}

bool Clause::IsRightClause() const {
  if (HasUnaryOfSide(Side::kRight)) return true;
  return base_ == Side::kRight && subclauses_.size() > 1;
}

bool Clause::IsMiddleClause() const {
  return base_unaries_.empty() && subclauses_.size() == 1 &&
         subclauses_[0].inner_unaries.empty();
}

SubstituteOutcome Clause::Substitute(SymbolId symbol, bool value) {
  if (value) {
    // symbol := true. Any disjunct containing it makes the clause valid.
    if (Contains(base_unaries_, symbol)) return SubstituteOutcome::kTrue;
    for (const Subclause& sub : subclauses_) {
      if (Contains(sub.binaries, symbol) ||
          Contains(sub.inner_unaries, symbol)) {
        return SubstituteOutcome::kTrue;
      }
    }
    return SubstituteOutcome::kClause;
  }
  // symbol := false. Remove every occurrence; empty subclauses are false
  // disjuncts and disappear; an empty clause is false.
  Erase(&base_unaries_, symbol);
  std::vector<Subclause> kept;
  for (Subclause& sub : subclauses_) {
    Erase(&sub.binaries, symbol);
    Erase(&sub.inner_unaries, symbol);
    if (!sub.Empty()) kept.push_back(std::move(sub));
  }
  subclauses_ = std::move(kept);
  if (base_unaries_.empty() && subclauses_.empty()) {
    return SubstituteOutcome::kFalse;
  }
  Normalize();
  return SubstituteOutcome::kClause;
}

bool Clause::HomomorphismExists(const Clause& from, const Clause& to) {
  // A homomorphism maps the base variable of `from` either to the base
  // variable of `to` (same side) or to the inner variable of one subclause
  // of `to` (opposite side); inner variables of `from` then map to inner
  // variables of `to`, resp. collapse onto the base of `to`. See clause.h.
  if (from.base_ == to.base_) {
    if (!IsSubset(from.base_unaries_, to.base_unaries_)) return false;
    for (const Subclause& s : from.subclauses_) {
      bool found = false;
      for (const Subclause& t : to.subclauses_) {
        if (s.SubsetOf(t)) {
          found = true;
          break;
        }
      }
      if (!found) return false;
    }
    return true;
  }
  // Opposite sides: base(from) ↦ inner var of some subclause t0 of `to`;
  // every inner var of `from` ↦ base(to).
  for (const Subclause& t0 : to.subclauses_) {
    if (!IsSubset(from.base_unaries_, t0.inner_unaries)) continue;
    bool ok = true;
    for (const Subclause& s : from.subclauses_) {
      if (!IsSubset(s.binaries, t0.binaries) ||
          !IsSubset(s.inner_unaries, to.base_unaries_)) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

bool Clause::Equivalent(const Clause& a, const Clause& b) {
  return HomomorphismExists(a, b) && HomomorphismExists(b, a);
}

std::string Clause::ToString(const Vocabulary& vocab) const {
  const char* base_var = base_ == Side::kLeft ? "x" : "y";
  const char* inner_var = base_ == Side::kLeft ? "y" : "x";
  auto binary_atom = [&](SymbolId s) {
    return vocab.name(s) + "(x,y)";  // binary atoms are always (x, y)
  };
  std::string out = "A";
  out += base_var;
  out += " ";
  const bool simple = subclauses_.size() <= 1;
  if (simple && subclauses_.size() == 1) {
    out += "A";
    out += inner_var;
    out += " ";
  }
  out += "(";
  bool first = true;
  auto append = [&out, &first](const std::string& text) {
    if (!first) out += " | ";
    first = false;
    out += text;
  };
  for (SymbolId s : base_unaries_) {
    append(vocab.name(s) + "(" + base_var + ")");
  }
  for (const Subclause& sub : subclauses_) {
    std::string part;
    if (!simple) {
      part += "A";
      part += inner_var;
      part += " (";
    }
    bool sub_first = true;
    auto sub_append = [&part, &sub_first](const std::string& text) {
      if (!sub_first) part += " | ";
      sub_first = false;
      part += text;
    };
    for (SymbolId s : sub.binaries) sub_append(binary_atom(s));
    for (SymbolId s : sub.inner_unaries) {
      sub_append(vocab.name(s) + "(" + std::string(inner_var) + ")");
    }
    if (!simple) part += ")";
    append(part);
  }
  out += ")";
  return out;
}

}  // namespace gmc
