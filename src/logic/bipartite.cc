#include "logic/bipartite.h"

#include <algorithm>
#include <deque>
#include <iterator>

#include "util/check.h"

namespace gmc {

namespace {

// Adjacency by shared symbols.
std::vector<std::vector<int>> ClauseGraph(const Query& query) {
  const auto& clauses = query.clauses();
  const int n = static_cast<int>(clauses.size());
  std::vector<std::vector<SymbolId>> symbols(n);
  for (int i = 0; i < n; ++i) symbols[i] = clauses[i].Symbols();
  std::vector<std::vector<int>> adjacency(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      std::vector<SymbolId> shared;
      std::set_intersection(symbols[i].begin(), symbols[i].end(),
                            symbols[j].begin(), symbols[j].end(),
                            std::back_inserter(shared));
      if (!shared.empty()) {
        adjacency[i].push_back(j);
        adjacency[j].push_back(i);
      }
    }
  }
  return adjacency;
}

// Matches a clause against the five shapes of Def. 2.3 (or H0's shape,
// which is outside it).
bool MatchesDef23(const Clause& c) {
  const bool has_base_unary = !c.base_unaries().empty();
  bool any_inner_unary = false;
  bool all_binary_nonempty = true;
  for (const Subclause& sub : c.subclauses()) {
    if (!sub.inner_unaries.empty()) any_inner_unary = true;
    if (sub.binaries.empty()) all_binary_nonempty = false;
  }
  const int k = c.NumSubclauses();
  if (k == 0) return false;  // pure unary clause: not a Def 2.3 shape
  if (k == 1) {
    const Subclause& sub = c.subclauses()[0];
    if (sub.binaries.empty()) return false;
    if (has_base_unary && any_inner_unary) return false;  // H0-like
    return true;  // left I / middle / right I
  }
  // Type II (left or right): no unaries anywhere, all subclauses binary.
  return !has_base_unary && !any_inner_unary && all_binary_nonempty;
}

}  // namespace

const char* PartTypeName(PartType type) {
  switch (type) {
    case PartType::kNone:
      return "none";
    case PartType::kTypeI:
      return "I";
    case PartType::kTypeII:
      return "II";
    case PartType::kMixed:
      return "mixed";
  }
  return "?";
}

std::string BipartiteAnalysis::ToString() const {
  std::string out = safe ? "safe" : "unsafe";
  if (!safe) {
    out += " (length " + std::to_string(length) + ", type " +
           PartTypeName(left_type) + "-" + PartTypeName(right_type) + ")";
  }
  if (!conforms_def23) out += " [outside Def 2.3 shapes]";
  return out;
}

BipartiteAnalysis AnalyzeBipartite(const Query& query) {
  BipartiteAnalysis out;
  if (query.IsFalse() || query.IsTrue()) return out;
  const auto& clauses = query.clauses();
  const int n = static_cast<int>(clauses.size());

  std::vector<bool> is_left(n), is_right(n);
  bool left_unary = false, left_multi = false;
  bool right_unary = false, right_multi = false;
  for (int i = 0; i < n; ++i) {
    is_left[i] = clauses[i].IsLeftClause();
    is_right[i] = clauses[i].IsRightClause();
    if (is_left[i]) {
      if (clauses[i].HasUnaryOfSide(Side::kLeft)) {
        left_unary = true;
      } else {
        left_multi = true;
      }
    }
    if (is_right[i]) {
      if (clauses[i].HasUnaryOfSide(Side::kRight)) {
        right_unary = true;
      } else {
        right_multi = true;
      }
    }
    if (!MatchesDef23(clauses[i])) out.conforms_def23 = false;
  }
  auto part_type = [](bool unary, bool multi) {
    if (unary && multi) return PartType::kMixed;
    if (unary) return PartType::kTypeI;
    if (multi) return PartType::kTypeII;
    return PartType::kNone;
  };
  out.left_type = part_type(left_unary, left_multi);
  out.right_type = part_type(right_unary, right_multi);

  // BFS from all left clauses simultaneously to the nearest right clause.
  std::vector<std::vector<int>> adjacency = ClauseGraph(query);
  std::vector<int> dist(n, -1), pred(n, -1);
  std::deque<int> frontier;
  for (int i = 0; i < n; ++i) {
    if (is_left[i]) {
      dist[i] = 0;
      frontier.push_back(i);
    }
  }
  int best = -1, best_dist = -1;
  for (int i = 0; i < n; ++i) {
    if (is_left[i] && is_right[i]) {
      best = i;
      best_dist = 0;
      break;
    }
  }
  while (best == -1 && !frontier.empty()) {
    int cur = frontier.front();
    frontier.pop_front();
    if (is_right[cur]) {
      best = cur;
      best_dist = dist[cur];
      break;
    }
    for (int next : adjacency[cur]) {
      if (dist[next] == -1) {
        dist[next] = dist[cur] + 1;
        pred[next] = cur;
        frontier.push_back(next);
      }
    }
  }
  if (best != -1) {
    out.safe = false;
    out.length = best_dist;
    for (int cur = best; cur != -1; cur = pred[cur]) {
      out.witness_path.push_back(cur);
    }
    std::reverse(out.witness_path.begin(), out.witness_path.end());
  }
  return out;
}

bool IsSafe(const Query& query) { return AnalyzeBipartite(query).safe; }

bool IsFinal(const Query& query) {
  BipartiteAnalysis analysis = AnalyzeBipartite(query);
  if (analysis.safe) return false;
  for (SymbolId s : query.Symbols()) {
    if (!IsSafe(query.Substitute(s, false))) return false;
    if (!IsSafe(query.Substitute(s, true))) return false;
  }
  return true;
}

Query SimplifyTowardsFinal(const Query& query) {
  if (IsSafe(query)) return query;
  for (SymbolId s : query.Symbols()) {
    for (bool value : {false, true}) {
      Query simplified = query.Substitute(s, value);
      if (!IsSafe(simplified)) return simplified;
    }
  }
  return query;  // already final
}

Query MakeFinal(const Query& query) {
  Query current = query;
  GMC_CHECK_MSG(!IsSafe(current), "MakeFinal requires an unsafe query");
  while (!IsFinal(current)) {
    Query next = SimplifyTowardsFinal(current);
    GMC_CHECK_MSG(next.ToString() != current.ToString(),
                  "simplification made no progress");
    current = next;
  }
  return current;
}

}  // namespace gmc
