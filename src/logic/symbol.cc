#include "logic/symbol.h"

#include "util/check.h"

namespace gmc {

SymbolId Vocabulary::Add(const std::string& name, SymbolKind kind) {
  GMC_CHECK_MSG(by_name_.find(name) == by_name_.end(),
                "duplicate symbol name");
  SymbolId id = static_cast<SymbolId>(symbols_.size());
  symbols_.push_back(Symbol{name, kind});
  by_name_[name] = id;
  return id;
}

SymbolId Vocabulary::AddOrGet(const std::string& name, SymbolKind kind) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    GMC_CHECK_MSG(symbols_[it->second].kind == kind,
                  "symbol re-registered with a different kind");
    return it->second;
  }
  return Add(name, kind);
}

SymbolId Vocabulary::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : it->second;
}

std::vector<SymbolId> Vocabulary::IdsOfKind(SymbolKind kind) const {
  std::vector<SymbolId> out;
  for (SymbolId id = 0; id < size(); ++id) {
    if (symbols_[id].kind == kind) out.push_back(id);
  }
  return out;
}

}  // namespace gmc
