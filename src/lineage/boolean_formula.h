// Monotone CNF formulas — the shape of every ∀CNF lineage.
//
// Positive ∀CNF queries ground to monotone (negation-free) CNFs, which have
// a unique minimal clause representation (no clause contains another). On
// minimized monotone CNFs, syntactic structure matches semantics exactly:
// connectivity of the clause/variable graph is the unique factorization into
// independent conjuncts (Lemma B.5), which Lemma 1.2's algebraic test is
// validated against.

#ifndef GMC_LINEAGE_BOOLEAN_FORMULA_H_
#define GMC_LINEAGE_BOOLEAN_FORMULA_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gmc {

// A monotone CNF over variables 0..num_vars-1. Clauses are sorted vectors of
// distinct variable ids. An empty clause list means TRUE; any empty clause
// means FALSE.
struct Cnf {
  int num_vars = 0;
  std::vector<std::vector<int>> clauses;

  bool IsTrue() const { return clauses.empty(); }
  bool HasEmptyClause() const;

  // Adds a clause (sorted and deduped). Aborts on out-of-range variables.
  void AddClause(std::vector<int> clause);

  // Removes clauses that are supersets of other clauses, yielding the
  // canonical minimal form of the monotone function. Also sorts the clause
  // list for canonical comparison.
  void RemoveSubsumed();

  // Conditions on var := value. For value=true removes satisfied clauses;
  // for value=false removes the literal (possibly creating empty clauses).
  Cnf Condition(int var, bool value) const;

  // Variables that actually occur, sorted.
  std::vector<int> UsedVariables() const;

  // Component index per clause under the shares-a-variable relation.
  std::vector<int> ClauseComponents() const;

  // True if all clauses are in a single connected component and the formula
  // depends on at least one variable. (Constant formulas count as
  // connected-trivially.)
  bool IsConnected() const;

  // Definition B.2: does the (minimized) formula disconnect variable sets
  // `u` and `v`, i.e. factor as F1 ∧ F2 with u only in F1 and v only in F2?
  // Exact on minimized monotone CNFs via component decomposition.
  bool Disconnects(const std::vector<int>& u, const std::vector<int>& v) const;

  // Canonical byte-string key (used by the polynomial-lemma cache).
  // Variables keep their global ids, so equal keys mean equal formulas over
  // the same tuples.
  std::string CacheKey() const;

  // 64-bit FNV-1a hash of the same canonical byte stream as CacheKey(),
  // computed without allocating. Hash function for CnfHash below.
  uint64_t Hash64() const;

  // Splits the formula into its connected components (one sub-CNF per
  // component of ClauseComponents(), each over the full variable range).
  // A connected or constant formula yields a single part.
  std::vector<Cnf> SplitComponents() const;

  // The variable occurring in the most clauses (smallest id on ties) — the
  // shared Shannon-branching heuristic of WmcEngine and the d-DNNF
  // compiler. Returns -1 for constant formulas.
  int MostOccurringVariable() const;

  std::string ToString() const;
};

// Hash and equality functors for CNF-keyed tables (the WMC memo, the
// compiler's sub-formula memo, the circuit cache). Hashing is the
// allocation-free Hash64; equality compares the clause lists exactly, so a
// hash collision costs one extra probe, never a wrong result — the exact
// arithmetic the hardness reductions rely on is preserved. (Keys are
// inserted only on cache misses, so the allocation churn of the old
// per-call string keys is still gone from the hot path.)
struct CnfHash {
  size_t operator()(const Cnf& cnf) const {
    return static_cast<size_t>(cnf.Hash64());
  }
};

struct CnfClauseEq {
  bool operator()(const Cnf& a, const Cnf& b) const {
    return a.clauses == b.clauses;
  }
};

}  // namespace gmc

#endif  // GMC_LINEAGE_BOOLEAN_FORMULA_H_
