// Monotone CNF formulas — the shape of every ∀CNF lineage.
//
// Positive ∀CNF queries ground to monotone (negation-free) CNFs, which have
// a unique minimal clause representation (no clause contains another). On
// minimized monotone CNFs, syntactic structure matches semantics exactly:
// connectivity of the clause/variable graph is the unique factorization into
// independent conjuncts (Lemma B.5), which Lemma 1.2's algebraic test is
// validated against.

#ifndef GMC_LINEAGE_BOOLEAN_FORMULA_H_
#define GMC_LINEAGE_BOOLEAN_FORMULA_H_

#include <string>
#include <vector>

namespace gmc {

// A monotone CNF over variables 0..num_vars-1. Clauses are sorted vectors of
// distinct variable ids. An empty clause list means TRUE; any empty clause
// means FALSE.
struct Cnf {
  int num_vars = 0;
  std::vector<std::vector<int>> clauses;

  bool IsTrue() const { return clauses.empty(); }
  bool HasEmptyClause() const;

  // Adds a clause (sorted and deduped). Aborts on out-of-range variables.
  void AddClause(std::vector<int> clause);

  // Removes clauses that are supersets of other clauses, yielding the
  // canonical minimal form of the monotone function. Also sorts the clause
  // list for canonical comparison.
  void RemoveSubsumed();

  // Conditions on var := value. For value=true removes satisfied clauses;
  // for value=false removes the literal (possibly creating empty clauses).
  Cnf Condition(int var, bool value) const;

  // Variables that actually occur, sorted.
  std::vector<int> UsedVariables() const;

  // Component index per clause under the shares-a-variable relation.
  std::vector<int> ClauseComponents() const;

  // True if all clauses are in a single connected component and the formula
  // depends on at least one variable. (Constant formulas count as
  // connected-trivially.)
  bool IsConnected() const;

  // Definition B.2: does the (minimized) formula disconnect variable sets
  // `u` and `v`, i.e. factor as F1 ∧ F2 with u only in F1 and v only in F2?
  // Exact on minimized monotone CNFs via component decomposition.
  bool Disconnects(const std::vector<int>& u, const std::vector<int>& v) const;

  // Canonical byte-string key (used by the WMC cache). Variables keep their
  // global ids, so equal keys mean equal formulas over the same tuples.
  std::string CacheKey() const;

  std::string ToString() const;
};

}  // namespace gmc

#endif  // GMC_LINEAGE_BOOLEAN_FORMULA_H_
