#include "lineage/grounder.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace gmc {

int Lineage::VarOf(const TupleKey& key) const {
  auto it = var_ids.find(key);
  return it == var_ids.end() ? -1 : it->second;
}

Grounder::Grounder(const Tid* tid) : tid_(tid) { GMC_CHECK(tid != nullptr); }

int Grounder::VarFor(const TupleKey& key, const Rational& p) {
  auto it = lineage_.var_ids.find(key);
  if (it != lineage_.var_ids.end()) return it->second;
  const int id = static_cast<int>(lineage_.variables.size());
  lineage_.var_ids[key] = id;
  lineage_.variables.push_back(key);
  lineage_.probabilities.push_back(p);
  return id;
}

void Grounder::AddClause(const Clause& clause,
                         std::optional<ConstantId> only_base) {
  if (lineage_.is_false) return;
  const int num_base =
      clause.base() == Side::kLeft ? tid_->num_left() : tid_->num_right();
  if (only_base.has_value()) {
    GMC_CHECK(*only_base >= 0 && *only_base < num_base);
    GroundAt(clause, *only_base);
    return;
  }
  for (ConstantId b = 0; b < num_base; ++b) {
    GroundAt(clause, b);
    if (lineage_.is_false) return;
  }
}

void Grounder::AddQuery(const Query& query) {
  GMC_CHECK_MSG(!query.IsFalse(), "grounding a FALSE query");
  for (const Clause& clause : query.clauses()) AddClause(clause);
}

void Grounder::GroundAt(const Clause& clause, ConstantId base) {
  const Side base_side = clause.base();
  const int num_inner =
      base_side == Side::kLeft ? tid_->num_right() : tid_->num_left();

  auto unary_key = [&](SymbolId s, Side side, ConstantId c) {
    return side == Side::kLeft ? TupleKey{s, c, -1} : TupleKey{s, -1, c};
  };
  auto binary_key = [&](SymbolId s, ConstantId inner) {
    return base_side == Side::kLeft ? TupleKey{s, base, inner}
                                    : TupleKey{s, inner, base};
  };

  // Base unary literals.
  std::vector<int> unary_lits;
  for (SymbolId s : clause.base_unaries()) {
    TupleKey key = unary_key(s, base_side, base);
    const Rational& p = tid_->Probability(key);
    if (p.IsOne()) return;  // clause satisfied at this base constant
    if (p.IsZero()) continue;
    unary_lits.push_back(VarFor(key, p));
  }

  // Ground each subclause into its list of per-inner-constant disjunctions.
  // A subclause whose event is false disappears as a disjunct; one whose
  // event is true satisfies the whole clause.
  std::vector<std::vector<std::vector<int>>> surviving_subclauses;
  for (const Subclause& sub : clause.subclauses()) {
    std::vector<std::vector<int>> conjuncts;
    bool subclause_false = false;
    for (ConstantId i = 0; i < num_inner && !subclause_false; ++i) {
      std::vector<int> lits;
      bool conjunct_true = false;
      for (SymbolId s : sub.binaries) {
        TupleKey key = binary_key(s, i);
        const Rational& p = tid_->Probability(key);
        if (p.IsOne()) {
          conjunct_true = true;
          break;
        }
        if (!p.IsZero()) lits.push_back(VarFor(key, p));
      }
      if (!conjunct_true) {
        for (SymbolId s : sub.inner_unaries) {
          TupleKey key = unary_key(s, Opposite(base_side), i);
          const Rational& p = tid_->Probability(key);
          if (p.IsOne()) {
            conjunct_true = true;
            break;
          }
          if (!p.IsZero()) lits.push_back(VarFor(key, p));
        }
      }
      if (conjunct_true) continue;
      if (lits.empty()) {
        subclause_false = true;
        break;
      }
      conjuncts.push_back(std::move(lits));
    }
    if (subclause_false) continue;
    if (conjuncts.empty()) return;  // ∀i event is vacuously true
    surviving_subclauses.push_back(std::move(conjuncts));
  }

  if (surviving_subclauses.empty()) {
    if (unary_lits.empty()) {
      lineage_.is_false = true;
      return;
    }
    lineage_.cnf.clauses.push_back(std::move(unary_lits));
    return;
  }

  // Distribute the disjunction of conjunctions into CNF: one output clause
  // per choice of conjunct from each surviving subclause.
  std::vector<size_t> choice(surviving_subclauses.size(), 0);
  while (true) {
    std::vector<int> out = unary_lits;
    for (size_t s = 0; s < surviving_subclauses.size(); ++s) {
      const auto& lits = surviving_subclauses[s][choice[s]];
      out.insert(out.end(), lits.begin(), lits.end());
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    lineage_.cnf.clauses.push_back(std::move(out));
    // Next choice vector.
    size_t pos = 0;
    while (pos < choice.size()) {
      if (++choice[pos] < surviving_subclauses[pos].size()) break;
      choice[pos] = 0;
      ++pos;
    }
    if (pos == choice.size()) break;
  }
}

Lineage Grounder::Take(bool minimize) {
  lineage_.cnf.num_vars = static_cast<int>(lineage_.variables.size());
  if (lineage_.is_false) {
    lineage_.cnf.clauses = {{}};
    return std::move(lineage_);
  }
  if (minimize) lineage_.cnf.RemoveSubsumed();
  return std::move(lineage_);
}

Lineage Ground(const Query& query, const Tid& tid, bool minimize) {
  Grounder grounder(&tid);
  grounder.AddQuery(query);
  return grounder.Take(minimize);
}

}  // namespace gmc
