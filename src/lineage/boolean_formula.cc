#include "lineage/boolean_formula.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "util/check.h"

namespace gmc {

bool Cnf::HasEmptyClause() const {
  for (const auto& clause : clauses) {
    if (clause.empty()) return true;
  }
  return false;
}

void Cnf::AddClause(std::vector<int> clause) {
  std::sort(clause.begin(), clause.end());
  clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
  for (int v : clause) GMC_CHECK(v >= 0 && v < num_vars);
  clauses.push_back(std::move(clause));
}

void Cnf::RemoveSubsumed() {
  // Sort by length so potential subsumers come first.
  std::sort(clauses.begin(), clauses.end(),
            [](const std::vector<int>& a, const std::vector<int>& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  clauses.erase(std::unique(clauses.begin(), clauses.end()), clauses.end());
  std::vector<std::vector<int>> kept;
  for (const auto& clause : clauses) {
    bool subsumed = false;
    for (const auto& keeper : kept) {
      if (std::includes(clause.begin(), clause.end(), keeper.begin(),
                        keeper.end())) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) kept.push_back(clause);
  }
  clauses = std::move(kept);
  std::sort(clauses.begin(), clauses.end());
}

Cnf Cnf::Condition(int var, bool value) const {
  Cnf out;
  out.num_vars = num_vars;
  for (const auto& clause : clauses) {
    const bool contains =
        std::binary_search(clause.begin(), clause.end(), var);
    if (contains && value) continue;  // clause satisfied
    if (!contains) {
      out.clauses.push_back(clause);
      continue;
    }
    std::vector<int> reduced;
    reduced.reserve(clause.size() - 1);
    for (int v : clause) {
      if (v != var) reduced.push_back(v);
    }
    out.clauses.push_back(std::move(reduced));
  }
  return out;
}

std::vector<int> Cnf::UsedVariables() const {
  std::vector<int> out;
  for (const auto& clause : clauses) {
    out.insert(out.end(), clause.begin(), clause.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<int> Cnf::ClauseComponents() const {
  const int n = static_cast<int>(clauses.size());
  std::vector<int> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  std::vector<int> find_stack;
  auto find = [&parent](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  // Union clauses sharing a variable: track the first clause seen per var.
  std::vector<int> first_clause(num_vars, -1);
  for (int i = 0; i < n; ++i) {
    for (int v : clauses[i]) {
      if (first_clause[v] == -1) {
        first_clause[v] = i;
      } else {
        int a = find(first_clause[v]);
        int b = find(i);
        if (a != b) parent[b] = a;
      }
    }
  }
  std::vector<int> component(n, -1);
  int next = 0;
  for (int i = 0; i < n; ++i) {
    int root = find(i);
    if (component[root] == -1) component[root] = next++;
    component[i] = component[root];
  }
  return component;
}

std::vector<Cnf> Cnf::SplitComponents() const {
  std::vector<int> component = ClauseComponents();
  int num_components = 0;
  for (int c : component) num_components = std::max(num_components, c + 1);
  std::vector<Cnf> parts(std::max(num_components, 1));
  for (auto& part : parts) part.num_vars = num_vars;
  for (size_t i = 0; i < clauses.size(); ++i) {
    parts[component[i]].clauses.push_back(clauses[i]);
  }
  return parts;
}

int Cnf::MostOccurringVariable() const {
  std::unordered_map<int, int> counts;
  for (const auto& clause : clauses) {
    for (int v : clause) ++counts[v];
  }
  int best_var = -1, best_count = -1;
  for (const auto& [v, c] : counts) {
    if (c > best_count || (c == best_count && v < best_var)) {
      best_var = v;
      best_count = c;
    }
  }
  return best_var;
}

bool Cnf::IsConnected() const {
  if (clauses.empty()) return true;
  std::vector<int> component = ClauseComponents();
  for (int c : component) {
    if (c != 0) return false;
  }
  return true;
}

bool Cnf::Disconnects(const std::vector<int>& u,
                      const std::vector<int>& v) const {
  std::vector<int> component = ClauseComponents();
  const int n = static_cast<int>(clauses.size());
  // For each component, check whether it touches u and whether it touches v.
  int num_components = 0;
  for (int c : component) num_components = std::max(num_components, c + 1);
  std::vector<bool> touches_u(num_components, false);
  std::vector<bool> touches_v(num_components, false);
  for (int i = 0; i < n; ++i) {
    for (int var : clauses[i]) {
      if (std::find(u.begin(), u.end(), var) != u.end()) {
        touches_u[component[i]] = true;
      }
      if (std::find(v.begin(), v.end(), var) != v.end()) {
        touches_v[component[i]] = true;
      }
    }
  }
  for (int c = 0; c < num_components; ++c) {
    if (touches_u[c] && touches_v[c]) return false;
  }
  return true;
}

std::string Cnf::CacheKey() const {
  std::string out;
  out.reserve(clauses.size() * 8);
  for (const auto& clause : clauses) {
    for (int v : clause) {
      out.append(reinterpret_cast<const char*>(&v), sizeof(v));
    }
    const int separator = -1;
    out.append(reinterpret_cast<const char*>(&separator), sizeof(separator));
  }
  return out;
}

uint64_t Cnf::Hash64() const {
  uint64_t h = 14695981039346656037ull;  // FNV offset basis
  auto mix = [&h](uint32_t word) {
    h = (h ^ word) * 1099511628211ull;  // FNV prime
  };
  for (const auto& clause : clauses) {
    for (int v : clause) mix(static_cast<uint32_t>(v));
    mix(0xffffffffu);  // clause separator (never a variable id)
  }
  return h;
}

std::string Cnf::ToString() const {
  if (clauses.empty()) return "TRUE";
  std::string out;
  for (size_t i = 0; i < clauses.size(); ++i) {
    if (i > 0) out += " & ";
    out += "(";
    for (size_t j = 0; j < clauses[i].size(); ++j) {
      if (j > 0) out += "|";
      out += "x" + std::to_string(clauses[i][j]);
    }
    if (clauses[i].empty()) out += "FALSE";
    out += ")";
  }
  return out;
}

}  // namespace gmc
