// Lineage computation: grounding a ∀CNF query over a TID into monotone CNF.
//
// Implements Φ_∆(Q) from §2 (footnote 4). Tuples with probability exactly 1
// or 0 are folded away during grounding (true/false constants), so lineage
// variables are exactly the "uncertain" tuples — this is what makes the
// paper's gadget databases, whose bulk has probability 1, tractable.
//
// Type II clauses ∀b(∨_ℓ ∀i D_ℓ(b,i)) are disjunctions of conjunctions after
// grounding; they are converted to CNF by distribution (the blow-up is
// |Dom|^m for m subclauses, polynomial for fixed queries, per §C.4).

#ifndef GMC_LINEAGE_GROUNDER_H_
#define GMC_LINEAGE_GROUNDER_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "lineage/boolean_formula.h"
#include "logic/query.h"
#include "prob/tid.h"

namespace gmc {

// A grounded query: CNF over lineage variables plus their tuple identities
// and probabilities.
struct Lineage {
  Cnf cnf;
  std::vector<TupleKey> variables;      // var id -> tuple
  std::vector<Rational> probabilities;  // var id -> probability in (0, 1)
  std::unordered_map<TupleKey, int, TupleKeyHash> var_ids;
  // True if some ground clause is unsatisfiable (so Pr(Q) = 0).
  bool is_false = false;

  // Lineage variable of a tuple, or -1 if the tuple was folded away.
  int VarOf(const TupleKey& key) const;
};

// Incremental lineage builder; lets callers ground a query plus extra
// clauses pinned to particular constants (needed by the Type II machinery,
// which grounds G_α(u) at a single u — Eq. (53)).
class Grounder {
 public:
  explicit Grounder(const Tid* tid);

  // Grounds ∀b clause(b) over all base constants, or only at `only_base`.
  void AddClause(const Clause& clause,
                 std::optional<ConstantId> only_base = std::nullopt);
  void AddQuery(const Query& query);

  // Finalizes: optionally removes subsumed clauses (canonical minimal CNF).
  Lineage Take(bool minimize = true);

 private:
  // Grounds one (clause, base constant) pair into zero or more CNF clauses.
  void GroundAt(const Clause& clause, ConstantId base);
  int VarFor(const TupleKey& key, const Rational& p);

  const Tid* tid_;
  Lineage lineage_;
};

// One-shot convenience: the lineage Φ_∆(Q).
Lineage Ground(const Query& query, const Tid& tid, bool minimize = true);

}  // namespace gmc

#endif  // GMC_LINEAGE_GROUNDER_H_
