#include "serve/serve.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

namespace gmc {
namespace serve {

namespace {

// A hostile client must not be able to buffer unbounded bytes server-side;
// one line (one request) comfortably fits well below this.
constexpr size_t kMaxLineBytes = 1 << 20;

bool AllDigits(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

// Small non-negative integer ("0".."999999999"), for domain sizes and
// constant ids. Bounded length so no overflow path exists at all.
bool ParseSmallInt(const std::string& token, int* out) {
  if (!AllDigits(token) || token.size() > 9) return false;
  *out = std::stoi(token);
  return true;
}

std::vector<std::string> SplitWords(const std::string& line) {
  std::vector<std::string> words;
  std::istringstream in(line);
  std::string word;
  while (in >> word) words.push_back(std::move(word));
  return words;
}

}  // namespace

namespace internal {

bool ParseProbability(const std::string& token, Rational* out) {
  const size_t slash = token.find('/');
  std::string num = token.substr(0, slash);
  std::string den =
      slash == std::string::npos ? "1" : token.substr(slash + 1);
  // Digit-only and length-capped: FromString is safe to call afterwards
  // (it aborts on malformed input, which must never be reachable from the
  // socket), and 18 digits keep the magnitudes tame.
  if (!AllDigits(num) || !AllDigits(den) || num.size() > 18 ||
      den.size() > 18) {
    return false;
  }
  // The zero-denominator check must come BEFORE the division: Rational's
  // operator/ aborts on a zero divisor, and these bytes are untrusted.
  Rational denominator = Rational::FromString(den);
  if (denominator.IsZero()) return false;
  Rational value = Rational::FromString(num) / denominator;
  if (value > Rational::One()) return false;
  return (*out = std::move(value), true);
}

}  // namespace internal

GmcServer::GmcServer(Query query, GmcServerOptions options)
    : query_(std::move(query)), options_(std::move(options)) {}

GmcServer::~GmcServer() { Stop(); }

bool GmcServer::Start(std::string* error) {
  if (running_.load(std::memory_order_acquire)) {
    if (error != nullptr) *error = "server already running";
    return false;
  }

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.empty() ||
      options_.socket_path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) {
      *error = "socket path empty or too long for sockaddr_un";
    }
    return false;
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) {
      *error = std::string("socket: ") + std::strerror(errno);
    }
    return false;
  }
  ::unlink(options_.socket_path.c_str());  // stale socket from a crash
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 64) != 0) {
    if (error != nullptr) {
      *error = "bind/listen(" + options_.socket_path +
               "): " + std::strerror(errno);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  session_.set_num_threads(options_.num_threads);
  if (!options_.store_directory.empty()) {
    session_.set_store_directory(options_.store_directory);
    if (options_.warm_start) {
      session_.WarmCircuitsFrom(options_.store_directory);
    }
  }

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread(&GmcServer::AcceptLoop, this);
  batch_thread_ = std::thread(&GmcServer::BatchLoop, this);
  return true;
}

void GmcServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);

  // Unblock accept() (on Linux a SHUT_RDWR on the listening socket wakes
  // it with EINVAL), then the per-connection readers, then the batch loop
  // — in dependency order, joining at each stage so no producer survives
  // its consumer.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    for (const auto& conn : connections_) {
      std::lock_guard<std::mutex> write_lock(conn->write_mu);
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
    for (std::thread& reader : readers_) {
      if (reader.joinable()) reader.join();
    }
    readers_.clear();
    connections_.clear();
  }
  queue_cv_.notify_all();
  if (batch_thread_.joinable()) batch_thread_.join();  // drains the queue

  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(options_.socket_path.c_str());

  // Belt-and-braces flush: write-through already persisted every compile,
  // but a final SaveCircuitsTo also covers circuits that entered the
  // caches by other roads (e.g. a WarmFrom from a different directory).
  if (!options_.store_directory.empty()) {
    session_.SaveCircuitsTo(options_.store_directory);
  }
}

void GmcServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listening socket shut down (Stop) or broken
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    stats_.connections.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> write_lock(conn->write_mu);
      const std::string hello = "HELLO gmc_serve 1\n";
      (void)!::send(fd, hello.data(), hello.size(), MSG_NOSIGNAL);
    }
    std::lock_guard<std::mutex> lock(threads_mu_);
    connections_.push_back(conn);
    readers_.emplace_back(&GmcServer::ReaderLoop, this, conn);
  }
}

void GmcServer::ReaderLoop(std::shared_ptr<Connection> conn) {
  std::string buffer;
  char chunk[4096];
  bool close_connection = false;
  while (!close_connection) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF, error, or Stop()'s shutdown
    buffer.append(chunk, static_cast<size_t>(n));
    if (buffer.size() > kMaxLineBytes) break;  // hostile line length
    size_t pos;
    while ((pos = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      HandleLine(conn, line, &close_connection);
      if (close_connection) break;
    }
  }
  // The reader is the only closer; writers take write_mu and check fd, so
  // the descriptor can never be reused under a concurrent send.
  std::lock_guard<std::mutex> write_lock(conn->write_mu);
  if (conn->fd >= 0) {
    ::shutdown(conn->fd, SHUT_RDWR);
    ::close(conn->fd);
    conn->fd = -1;
  }
}

void GmcServer::HandleLine(const std::shared_ptr<Connection>& conn,
                           const std::string& line, bool* close_connection) {
  const std::vector<std::string> words = SplitWords(line);
  if (words.empty()) return;

  auto reply = [&](const std::string& text) {
    std::lock_guard<std::mutex> write_lock(conn->write_mu);
    if (conn->fd < 0) return;
    const std::string out = text + "\n";
    size_t off = 0;
    while (off < out.size()) {
      const ssize_t n =
          ::send(conn->fd, out.data() + off, out.size() - off, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return;
      off += static_cast<size_t>(n);
    }
  };

  if (words[0] == "QUIT") {
    reply("BYE");
    *close_connection = true;
    return;
  }
  if (words[0] == "STATS") {
    reply(StatsLine());
    return;
  }
  if (words[0] != "EVAL") {
    stats_.parse_errors.fetch_add(1, std::memory_order_relaxed);
    reply("ERR - PARSE unknown command '" + words[0] + "'");
    return;
  }

  const std::string id = words.size() > 1 ? words[1] : "-";
  auto parse_error = [&](const std::string& detail) {
    stats_.parse_errors.fetch_add(1, std::memory_order_relaxed);
    reply("ERR " + id + " PARSE " + detail);
  };

  if (words.size() < 5) {
    parse_error("want: EVAL <id> <num_left> <num_right> <default_p> ...");
    return;
  }
  int num_left = 0;
  int num_right = 0;
  if (!ParseSmallInt(words[2], &num_left) ||
      !ParseSmallInt(words[3], &num_right) ||
      num_left > options_.max_domain || num_right > options_.max_domain) {
    parse_error("domain sides must be integers in [0, " +
                std::to_string(options_.max_domain) + "]");
    return;
  }
  Rational default_p = Rational::One();
  if (!internal::ParseProbability(words[4], &default_p)) {
    parse_error("default probability must be a rational in [0, 1]");
    return;
  }

  Tid tid(query_.vocab_ptr(), num_left, num_right, default_p);
  for (size_t w = 5; w < words.size(); ++w) {
    // Tuple assignment: Name(u)=p or Name(u,v)=p.
    const std::string& token = words[w];
    const size_t lparen = token.find('(');
    const size_t rparen = token.find(')', lparen == std::string::npos
                                              ? std::string::npos
                                              : lparen + 1);
    if (lparen == std::string::npos || rparen == std::string::npos ||
        rparen + 1 >= token.size() || token[rparen + 1] != '=') {
      parse_error("bad tuple assignment '" + token + "'");
      return;
    }
    const std::string name = token.substr(0, lparen);
    const std::string args = token.substr(lparen + 1, rparen - lparen - 1);
    Rational p = Rational::Zero();
    if (!internal::ParseProbability(token.substr(rparen + 2), &p)) {
      parse_error("bad probability in '" + token + "'");
      return;
    }
    const SymbolId symbol = query_.vocab().Find(name);
    if (symbol < 0) {
      parse_error("unknown symbol '" + name + "'");
      return;
    }
    const size_t comma = args.find(',');
    int u = 0;
    int v = 0;
    const bool unary = comma == std::string::npos;
    if (unary ? !ParseSmallInt(args, &u)
              : (!ParseSmallInt(args.substr(0, comma), &u) ||
                 !ParseSmallInt(args.substr(comma + 1), &v))) {
      parse_error("bad constants in '" + token + "'");
      return;
    }
    // Range-check BEFORE touching the Tid: its setters abort on bad keys,
    // and untrusted bytes must never reach an abort.
    switch (query_.vocab().kind(symbol)) {
      case SymbolKind::kUnaryLeft:
        if (!unary || u >= num_left) {
          parse_error("'" + token + "': want one left constant < " +
                      std::to_string(num_left));
          return;
        }
        tid.SetUnaryLeft(symbol, u, p);
        break;
      case SymbolKind::kUnaryRight:
        if (!unary || u >= num_right) {
          parse_error("'" + token + "': want one right constant < " +
                      std::to_string(num_right));
          return;
        }
        tid.SetUnaryRight(symbol, u, p);
        break;
      case SymbolKind::kBinary:
        if (unary || u >= num_left || v >= num_right) {
          parse_error("'" + token + "': want constants < " +
                      std::to_string(num_left) + "," +
                      std::to_string(num_right));
          return;
        }
        tid.SetBinary(symbol, u, v, p);
        break;
    }
  }

  // Admission control: bounded queue, shed (typed, immediate) past the
  // limit. The check and the push are one critical section, so the bound
  // holds exactly under concurrent readers.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_.load(std::memory_order_acquire) ||
        pending_.size() >= options_.max_pending) {
      stats_.shed.fetch_add(1, std::memory_order_relaxed);
      reply("ERR " + id + " SHED queue full (limit " +
            std::to_string(options_.max_pending) + ")");
      return;
    }
    stats_.requests.fetch_add(1, std::memory_order_relaxed);
    pending_.push_back(PendingEval{id, std::move(tid), conn});
  }
  queue_cv_.notify_one();
}

void GmcServer::BatchLoop() {
  while (true) {
    std::vector<PendingEval> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] {
        return stopping_.load(std::memory_order_acquire) || !pending_.empty();
      });
      batch.swap(pending_);
    }
    if (batch.empty()) {
      if (stopping_.load(std::memory_order_acquire)) return;
      continue;  // spurious wakeup
    }
    RunBatch(std::move(batch));
  }
}

void GmcServer::RunBatch(std::vector<PendingEval> batch) {
  stats_.batches.fetch_add(1, std::memory_order_relaxed);
  stats_.batched_requests.fetch_add(batch.size(), std::memory_order_relaxed);
  uint64_t seen = stats_.max_batch.load(std::memory_order_relaxed);
  while (seen < batch.size() && !stats_.max_batch.compare_exchange_weak(
                                    seen, batch.size(),
                                    std::memory_order_relaxed)) {
  }

  // The coalescing payoff: the WHOLE drained queue goes through ONE
  // EvaluateMany call — requests sharing a grounded lineage structure are
  // answered by one batched circuit pass over a multi-column WeightMatrix
  // instead of one walk each.
  std::vector<Tid> tids;
  tids.reserve(batch.size());
  for (const PendingEval& eval : batch) tids.push_back(eval.tid);
  const std::vector<GfomcResult> results = session_.EvaluateMany(query_, tids);

  for (size_t i = 0; i < batch.size(); ++i) {
    const std::shared_ptr<Connection>& conn = batch[i].conn;
    std::lock_guard<std::mutex> write_lock(conn->write_mu);
    if (conn->fd < 0) continue;  // client already gone
    const std::string out = "OK " + batch[i].id + " " +
                            results[i].probability.ToString() +
                            " lifted=" + (results[i].used_lifted ? "1" : "0") +
                            "\n";
    size_t off = 0;
    while (off < out.size()) {
      const ssize_t n =
          ::send(conn->fd, out.data() + off, out.size() - off, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      off += static_cast<size_t>(n);
    }
    stats_.responses.fetch_add(1, std::memory_order_relaxed);
  }
}

GmcServer::Stats GmcServer::stats() const {
  Stats out;
  out.connections = stats_.connections.load(std::memory_order_relaxed);
  out.requests = stats_.requests.load(std::memory_order_relaxed);
  out.responses = stats_.responses.load(std::memory_order_relaxed);
  out.shed = stats_.shed.load(std::memory_order_relaxed);
  out.parse_errors = stats_.parse_errors.load(std::memory_order_relaxed);
  out.batches = stats_.batches.load(std::memory_order_relaxed);
  out.batched_requests =
      stats_.batched_requests.load(std::memory_order_relaxed);
  out.max_batch = stats_.max_batch.load(std::memory_order_relaxed);
  return out;
}

std::string GmcServer::StatsLine() const {
  const Stats s = stats();
  const GfomcSession::Stats q = session_.stats();
  std::ostringstream out;
  out << "STATS connections=" << s.connections << " requests=" << s.requests
      << " responses=" << s.responses << " shed=" << s.shed
      << " parse_errors=" << s.parse_errors << " batches=" << s.batches
      << " batched_requests=" << s.batched_requests
      << " max_batch=" << s.max_batch << " queries=" << q.queries
      << " circuit_compiles=" << q.circuit_compiles
      << " circuit_hits=" << q.circuit_hits << " store_hits=" << q.store_hits
      << " store_misses=" << q.store_misses
      << " store_rejected=" << q.store_rejected;
  return out.str();
}

}  // namespace serve
}  // namespace gmc
