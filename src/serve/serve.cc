#include "serve/serve.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <iomanip>
#include <sstream>
#include <thread>
#include <utility>

#include "store/scrub.h"
#include "util/fault.h"

namespace gmc {
namespace serve {

namespace {

// A hostile client must not be able to buffer unbounded bytes server-side;
// one line (one request) comfortably fits well below this.
constexpr size_t kMaxLineBytes = 1 << 20;

bool AllDigits(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

// Small non-negative integer ("0".."999999999"), for domain sizes and
// constant ids. Bounded length so no overflow path exists at all.
bool ParseSmallInt(const std::string& token, int* out) {
  if (!AllDigits(token) || token.size() > 9) return false;
  *out = std::stoi(token);
  return true;
}

std::vector<std::string> SplitWords(const std::string& line) {
  std::vector<std::string> words;
  std::istringstream in(line);
  std::string word;
  while (in >> word) words.push_back(std::move(word));
  return words;
}

}  // namespace

namespace internal {

bool ParseProbability(const std::string& token, Rational* out) {
  const size_t slash = token.find('/');
  std::string num = token.substr(0, slash);
  std::string den =
      slash == std::string::npos ? "1" : token.substr(slash + 1);
  // Digit-only and length-capped: FromString is safe to call afterwards
  // (it aborts on malformed input, which must never be reachable from the
  // socket), and 18 digits keep the magnitudes tame.
  if (!AllDigits(num) || !AllDigits(den) || num.size() > 18 ||
      den.size() > 18) {
    return false;
  }
  // The zero-denominator check must come BEFORE the division: Rational's
  // operator/ aborts on a zero divisor, and these bytes are untrusted.
  Rational denominator = Rational::FromString(den);
  if (denominator.IsZero()) return false;
  Rational value = Rational::FromString(num) / denominator;
  if (value > Rational::One()) return false;
  return (*out = std::move(value), true);
}

}  // namespace internal

GmcServer::GmcServer(Query query, GmcServerOptions options)
    : query_(std::move(query)), options_(std::move(options)) {}

GmcServer::~GmcServer() { Stop(); }

bool GmcServer::Start(std::string* error) {
  if (running_.load(std::memory_order_acquire)) {
    if (error != nullptr) *error = "server already running";
    return false;
  }

  // Every send below passes MSG_NOSIGNAL, but that only covers send(2):
  // any other descriptor write to a vanished peer (now or in future code)
  // would still raise SIGPIPE and kill the process. A server must treat a
  // disconnecting client as an error code, never as a fatal signal.
  std::signal(SIGPIPE, SIG_IGN);

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.empty() ||
      options_.socket_path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) {
      *error = "socket path empty or too long for sockaddr_un";
    }
    return false;
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    if (error != nullptr) {
      *error = std::string("socket: ") + std::strerror(errno);
    }
    return false;
  }
  ::unlink(options_.socket_path.c_str());  // stale socket from a crash
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, std::max(1, options_.listen_backlog)) != 0) {
    if (error != nullptr) {
      *error = "bind/listen(" + options_.socket_path +
               "): " + std::strerror(errno);
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }

  session_.set_num_threads(options_.num_threads);
  if (!options_.store_directory.empty()) {
    // Recovery BEFORE attach/warm: quarantine torn or corrupt entries and
    // sweep dead writers' temp files, so the warm start below only ever
    // sees a healthy directory (and its counters stay organic).
    const store::ScrubReport scrub =
        store::ScrubStore(options_.store_directory);
    stats_.scrubbed.fetch_add(scrub.scanned, std::memory_order_relaxed);
    stats_.quarantined.fetch_add(scrub.quarantined,
                                 std::memory_order_relaxed);
    stats_.scrub_orphans.fetch_add(scrub.orphan_tmps_removed,
                                   std::memory_order_relaxed);
    session_.set_store_directory(options_.store_directory);
    if (options_.warm_start) {
      session_.WarmCircuitsFrom(options_.store_directory);
    }
  }

  // The governor's capacity defaults to the admission limit: "the queue
  // is half full" is the natural meaning of signal 0.5 here.
  OverloadOptions overload = options_.overload;
  if (overload.capacity == 0) {
    overload.capacity = options_.max_pending > 0 ? options_.max_pending : 1;
  }
  governor_.Configure(overload);

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread(&GmcServer::AcceptLoop, this);
  batch_thread_ = std::thread(&GmcServer::BatchLoop, this);
  return true;
}

void GmcServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);

  // Unblock accept() (on Linux a SHUT_RDWR on the listening socket wakes
  // it with EINVAL), then the per-connection readers, then the batch loop
  // — in dependency order, joining at each stage so no producer survives
  // its consumer.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    for (const Reader& reader : readers_) {
      std::lock_guard<std::mutex> write_lock(reader.conn->write_mu);
      if (reader.conn->fd >= 0) ::shutdown(reader.conn->fd, SHUT_RDWR);
    }
    for (Reader& reader : readers_) {
      if (reader.thread.joinable()) reader.thread.join();
    }
    readers_.clear();
  }
  queue_cv_.notify_all();
  if (batch_thread_.joinable()) batch_thread_.join();  // drains the queue

  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(options_.socket_path.c_str());

  // Belt-and-braces flush: write-through already persisted every compile,
  // but a final SaveCircuitsTo also covers circuits that entered the
  // caches by other roads (e.g. a WarmFrom from a different directory).
  if (!options_.store_directory.empty()) {
    session_.SaveCircuitsTo(options_.store_directory);
  }
}

void GmcServer::ReapFinishedReaders() {
  std::lock_guard<std::mutex> lock(threads_mu_);
  for (size_t i = 0; i < readers_.size();) {
    if (!readers_[i].conn->done.load(std::memory_order_acquire)) {
      ++i;
      continue;
    }
    // done is set as ReaderLoop's last act, so this join returns almost
    // immediately — it only waits out the thread's epilogue.
    if (readers_[i].thread.joinable()) readers_[i].thread.join();
    readers_[i] = std::move(readers_.back());
    readers_.pop_back();
  }
}

void GmcServer::AcceptLoop() {
  // Transient-failure backoff: EMFILE/ENFILE (fd exhaustion — very much a
  // condition a loaded server hits and must outlive), ECONNABORTED (the
  // peer gave up while queued), EAGAIN, ENOMEM/ENOBUFS. The old loop
  // exited on ANY of these, silently killing accept forever while the
  // rest of the server looked healthy. Now: bounded exponential backoff
  // and retry; the only exit is shutdown.
  uint64_t backoff_ms = 1;
  constexpr uint64_t kMaxBackoffMs = 100;
  auto backoff = [&] {
    stats_.accept_retries.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min(backoff_ms * 2, kMaxBackoffMs);
  };
  while (!stopping_.load(std::memory_order_acquire)) {
    // Reap between accepts: connection churn must not grow readers_
    // without bound while the server runs (Stop used to be the only
    // cleanup point).
    ReapFinishedReaders();
    // Fault point: a transient accept failure. Fired BEFORE the real
    // accept so an injected failure never consumes (and drops) an actual
    // client connection — it aliases ECONNABORTED exactly.
    if (fault::ShouldFail(fault::Point::kServeAccept)) {
      backoff();
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) return;
      if (errno == EINTR) continue;
      // Transient or unknown: either way, dying here would be strictly
      // worse than retrying (the listening socket itself only goes bad at
      // shutdown, which the check above catches — including after Stop's
      // SHUT_RDWR makes accept fail with EINVAL).
      backoff();
      continue;
    }
    backoff_ms = 1;  // a successful accept resets the backoff ladder
    const size_t active =
        active_connections_.load(std::memory_order_relaxed);
    if (options_.max_connections > 0 &&
        active >= options_.max_connections) {
      // Greeting-then-close: the one line this client gets is a typed
      // BUSY with a backoff hint, never a silent RST or an unbounded
      // reader thread.
      stats_.busy_rejected.fetch_add(1, std::memory_order_relaxed);
      const std::string busy =
          "ERR - BUSY retry_after_ms=" +
          std::to_string(governor_.retry_after_ms()) +
          " server at connection limit (" +
          std::to_string(options_.max_connections) + ")\n";
      (void)!::send(fd, busy.data(), busy.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    stats_.connections.fetch_add(1, std::memory_order_relaxed);
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> write_lock(conn->write_mu);
      const std::string hello = "HELLO gmc_serve 1\n";
      (void)!::send(fd, hello.data(), hello.size(), MSG_NOSIGNAL);
    }
    std::lock_guard<std::mutex> lock(threads_mu_);
    Reader reader;
    reader.conn = conn;
    reader.thread = std::thread(&GmcServer::ReaderLoop, this, conn);
    readers_.push_back(std::move(reader));
  }
}

void GmcServer::ReaderLoop(std::shared_ptr<Connection> conn) {
  std::string buffer;
  char chunk[4096];
  bool close_connection = false;
  // A rejected input stream (over-long line, NUL byte) gets ONE typed
  // error before the close: the framing itself is untrustworthy from that
  // byte on, so nothing after it is parsed.
  auto reject_input = [&](const std::string& detail) {
    stats_.oversize_lines.fetch_add(1, std::memory_order_relaxed);
    SendLine(conn, "ERR - INVALID " + detail);
    close_connection = true;
  };
  while (!close_connection) {
    // Block in poll, never in a bare recv: read_idle_ms bounds how long
    // an abandoned client may hold this thread. Stop()'s shutdown() makes
    // the descriptor readable (EOF), so the poll wakes for it too.
    if (options_.read_idle_ms > 0) {
      pollfd pfd{};
      pfd.fd = conn->fd;
      pfd.events = POLLIN;
      const int ready =
          ::poll(&pfd, 1, static_cast<int>(options_.read_idle_ms));
      if (ready < 0 && errno == EINTR) continue;
      if (ready == 0) {  // idle past the bound
        stats_.idle_disconnects.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      if (ready < 0) break;
    }
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF, error, or Stop()'s shutdown
    if (std::memchr(chunk, '\0', static_cast<size_t>(n)) != nullptr) {
      reject_input("NUL byte in input");
      break;
    }
    buffer.append(chunk, static_cast<size_t>(n));
    size_t pos;
    while ((pos = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      if (line.size() > kMaxLineBytes) {
        reject_input("line exceeds " + std::to_string(kMaxLineBytes) +
                     " bytes");
        break;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      HandleLine(conn, line, &close_connection);
      if (close_connection) break;
    }
    // An unterminated partial line past the cap is hostile too — reject
    // it now instead of buffering toward an unbounded allocation.
    if (!close_connection && buffer.size() > kMaxLineBytes) {
      reject_input("line exceeds " + std::to_string(kMaxLineBytes) +
                   " bytes");
    }
  }
  // The reader is the only closer; writers take write_mu and check fd, so
  // the descriptor can never be reused under a concurrent send.
  {
    std::lock_guard<std::mutex> write_lock(conn->write_mu);
    if (conn->fd >= 0) {
      ::shutdown(conn->fd, SHUT_RDWR);
      ::close(conn->fd);
      conn->fd = -1;
    }
  }
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
  // Last act: mark reapable. The release pairs with ReapFinishedReaders'
  // acquire, so the reaper joins a thread that is provably past its fd
  // teardown.
  conn->done.store(true, std::memory_order_release);
}

void GmcServer::SendLine(const std::shared_ptr<Connection>& conn,
                         const std::string& text) {
  std::lock_guard<std::mutex> write_lock(conn->write_mu);
  if (conn->fd < 0) return;  // client already gone
  // Fault point: the peer vanished mid-send. The reply is simply lost —
  // identical to a real dead socket — and the caller's counters still
  // tick, exactly as they would for an undetected half-open peer.
  if (fault::ShouldFail(fault::Point::kSocketWrite)) return;
  const std::string out = text + "\n";
  size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::send(conn->fd, out.data() + off, out.size() - off,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Socket buffer full: give the peer write_timeout_ms to drain, then
      // treat it as dead and drop the remainder — one stalled client must
      // never wedge the batch loop for everyone else.
      pollfd pfd{};
      pfd.fd = conn->fd;
      pfd.events = POLLOUT;
      const int timeout = options_.write_timeout_ms == 0
                              ? -1
                              : static_cast<int>(options_.write_timeout_ms);
      const int ready = ::poll(&pfd, 1, timeout);
      if (ready < 0 && errno == EINTR) continue;
      if (ready <= 0) return;  // timed out or failed: peer is dead to us
      continue;
    }
    return;  // hard send error: peer gone
  }
}

void GmcServer::HandleLine(const std::shared_ptr<Connection>& conn,
                           const std::string& line, bool* close_connection) {
  const std::vector<std::string> words = SplitWords(line);
  if (words.empty()) return;

  auto reply = [&](const std::string& text) { SendLine(conn, text); };

  if (words[0] == "QUIT") {
    reply("BYE");
    *close_connection = true;
    return;
  }
  if (words[0] == "STATS") {
    reply(StatsLine());
    return;
  }
  if (words[0] == "HEALTH") {
    stats_.health_requests.fetch_add(1, std::memory_order_relaxed);
    reply(HealthLine());
    return;
  }
  const bool approx = words[0] == "EVAL_APPROX";
  if (words[0] != "EVAL" && !approx) {
    stats_.parse_errors.fetch_add(1, std::memory_order_relaxed);
    reply("ERR - PARSE unknown command '" + words[0] + "'");
    return;
  }

  const std::string id = words.size() > 1 ? words[1] : "-";
  auto parse_error = [&](const std::string& detail) {
    stats_.parse_errors.fetch_add(1, std::memory_order_relaxed);
    reply("ERR " + id + " PARSE " + detail);
  };

  PendingEval eval{id, Tid(query_.vocab_ptr(), 0, 0), conn};
  size_t first = 2;  // index of <num_left> in `words`
  // Optional end-to-end deadline, directly after <id> on both verbs.
  if (words.size() > first && words[first].rfind("deadline=", 0) == 0) {
    int deadline_ms = 0;
    if (!ParseSmallInt(words[first].substr(9), &deadline_ms)) {
      parse_error("deadline must be a non-negative integer (milliseconds)");
      return;
    }
    eval.deadline_ms = static_cast<uint64_t>(deadline_ms);
    ++first;
  }
  if (approx) {
    eval.approx = true;
    if (words.size() < first + 6) {
      parse_error(
          "want: EVAL_APPROX <id> [deadline=<ms>] <mode> <eps> <delta> "
          "<num_left> <num_right> <default_p> ...");
      return;
    }
    if (!ParseRoutingMode(words[first].c_str(), &eval.mode)) {
      parse_error("mode must be auto, exact, interval, or sample");
      return;
    }
    // eps and delta ride the same non-aborting rational parser as the
    // probabilities, then must land strictly inside (0, 1).
    Rational eps = Rational::Zero();
    Rational delta = Rational::Zero();
    if (!internal::ParseProbability(words[first + 1], &eps) ||
        !internal::ParseProbability(words[first + 2], &delta) ||
        eps.IsZero() || delta.IsZero() || eps == Rational::One() ||
        delta == Rational::One()) {
      parse_error("eps and delta must be rationals strictly in (0, 1)");
      return;
    }
    eval.epsilon = eps.ToDouble();
    eval.delta = delta.ToDouble();
    first += 3;
  } else if (words.size() < first + 3) {
    parse_error(
        "want: EVAL <id> [deadline=<ms>] <num_left> <num_right> "
        "<default_p> ...");
    return;
  }

  std::string detail;
  std::optional<Tid> tid = ParseTidSpec(words, first, &detail);
  if (!tid.has_value()) {
    parse_error(detail);
    return;
  }
  eval.tid = std::move(*tid);

  // Admission control: bounded queue, shed (typed, immediate, with a
  // pressure-scaled backoff hint) past the limit. The check and the push
  // are one critical section, so the bound holds exactly under concurrent
  // readers. Every SHED reply carries retry_after_ms — a shed client
  // knows WHEN a retry is worth attempting, not just that it lost.
  auto shed = [&](const std::string& detail) {
    stats_.shed.fetch_add(1, std::memory_order_relaxed);
    reply("ERR " + id + " SHED retry_after_ms=" +
          std::to_string(governor_.retry_after_ms()) + " " + detail);
  };
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      shed("shutting down");
      return;
    }
    if (pending_.size() >= options_.max_pending) {
      governor_.RecordQueueDepth(pending_.size());
      shed("queue full (limit " + std::to_string(options_.max_pending) +
           ")");
      return;
    }
    // Cross-client fairness: one connection pipelining requests may hold
    // at most max_inflight_per_connection queue+work slots; past that ITS
    // traffic sheds while other clients' still flows.
    if (options_.max_inflight_per_connection > 0 &&
        conn->inflight.load(std::memory_order_relaxed) >=
            options_.max_inflight_per_connection) {
      shed("per-connection limit (" +
           std::to_string(options_.max_inflight_per_connection) + ")");
      return;
    }
    stats_.requests.fetch_add(1, std::memory_order_relaxed);
    if (approx) {
      stats_.approx_requests.fetch_add(1, std::memory_order_relaxed);
    }
    conn->inflight.fetch_add(1, std::memory_order_relaxed);
    eval.enqueued = std::chrono::steady_clock::now();
    pending_.push_back(std::move(eval));
    governor_.RecordQueueDepth(pending_.size());
  }
  queue_cv_.notify_one();
}

std::optional<Tid> GmcServer::ParseTidSpec(
    const std::vector<std::string>& words, size_t first,
    std::string* detail) {
  if (words.size() < first + 3) {
    return (*detail = "want: <num_left> <num_right> <default_p> ...",
            std::nullopt);
  }
  int num_left = 0;
  int num_right = 0;
  if (!ParseSmallInt(words[first], &num_left) ||
      !ParseSmallInt(words[first + 1], &num_right) ||
      num_left > options_.max_domain || num_right > options_.max_domain) {
    return (*detail = "domain sides must be integers in [0, " +
                      std::to_string(options_.max_domain) + "]",
            std::nullopt);
  }
  Rational default_p = Rational::One();
  if (!internal::ParseProbability(words[first + 2], &default_p)) {
    return (*detail = "default probability must be a rational in [0, 1]",
            std::nullopt);
  }

  Tid tid(query_.vocab_ptr(), num_left, num_right, default_p);
  for (size_t w = first + 3; w < words.size(); ++w) {
    // Tuple assignment: Name(u)=p or Name(u,v)=p.
    const std::string& token = words[w];
    const size_t lparen = token.find('(');
    const size_t rparen = token.find(')', lparen == std::string::npos
                                              ? std::string::npos
                                              : lparen + 1);
    if (lparen == std::string::npos || rparen == std::string::npos ||
        rparen + 1 >= token.size() || token[rparen + 1] != '=') {
      return (*detail = "bad tuple assignment '" + token + "'",
              std::nullopt);
    }
    const std::string name = token.substr(0, lparen);
    const std::string args = token.substr(lparen + 1, rparen - lparen - 1);
    Rational p = Rational::Zero();
    if (!internal::ParseProbability(token.substr(rparen + 2), &p)) {
      return (*detail = "bad probability in '" + token + "'", std::nullopt);
    }
    const SymbolId symbol = query_.vocab().Find(name);
    if (symbol < 0) {
      return (*detail = "unknown symbol '" + name + "'", std::nullopt);
    }
    const size_t comma = args.find(',');
    int u = 0;
    int v = 0;
    const bool unary = comma == std::string::npos;
    if (unary ? !ParseSmallInt(args, &u)
              : (!ParseSmallInt(args.substr(0, comma), &u) ||
                 !ParseSmallInt(args.substr(comma + 1), &v))) {
      return (*detail = "bad constants in '" + token + "'", std::nullopt);
    }
    // Range-check BEFORE touching the Tid: its setters abort on bad keys,
    // and untrusted bytes must never reach an abort.
    switch (query_.vocab().kind(symbol)) {
      case SymbolKind::kUnaryLeft:
        if (!unary || u >= num_left) {
          return (*detail = "'" + token + "': want one left constant < " +
                            std::to_string(num_left),
                  std::nullopt);
        }
        tid.SetUnaryLeft(symbol, u, p);
        break;
      case SymbolKind::kUnaryRight:
        if (!unary || u >= num_right) {
          return (*detail = "'" + token + "': want one right constant < " +
                            std::to_string(num_right),
                  std::nullopt);
        }
        tid.SetUnaryRight(symbol, u, p);
        break;
      case SymbolKind::kBinary:
        if (unary || u >= num_left || v >= num_right) {
          return (*detail = "'" + token + "': want constants < " +
                            std::to_string(num_left) + "," +
                            std::to_string(num_right),
                  std::nullopt);
        }
        tid.SetBinary(symbol, u, v, p);
        break;
    }
  }
  return tid;
}

void GmcServer::BatchLoop() {
  while (true) {
    std::vector<PendingEval> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] {
        return stopping_.load(std::memory_order_acquire) || !pending_.empty();
      });
      batch.swap(pending_);
    }
    if (batch.empty()) {
      if (stopping_.load(std::memory_order_acquire)) return;
      continue;  // spurious wakeup
    }
    RunBatch(std::move(batch));
  }
}

namespace {

// Shortest decimal that round-trips (the wire carries doubles for the
// approximate tiers; exact tiers stay rational).
std::string FormatDouble(double value) {
  std::ostringstream out;
  out << std::setprecision(17) << value;
  return out.str();
}

}  // namespace

void GmcServer::RunBatch(std::vector<PendingEval> batch) {
  stats_.batches.fetch_add(1, std::memory_order_relaxed);
  stats_.batched_requests.fetch_add(batch.size(), std::memory_order_relaxed);
  uint64_t seen = stats_.max_batch.load(std::memory_order_relaxed);
  while (seen < batch.size() && !stats_.max_batch.compare_exchange_weak(
                                    seen, batch.size(),
                                    std::memory_order_relaxed)) {
  }

  // Feed the governor: each request's time-in-queue updates the wait EWMA,
  // and the whole batch counts as in-flight work until the batch ends.
  // Both signals feed the SAME pressure level the admission path consults,
  // so a slow evaluator raises pressure even when the queue looks short.
  const auto now = std::chrono::steady_clock::now();
  for (const PendingEval& eval : batch) {
    const double waited_ms =
        std::chrono::duration<double, std::milli>(now - eval.enqueued)
            .count();
    governor_.RecordQueueWait(waited_ms);
  }
  governor_.BeginWork(batch.size());
  const auto work_started = std::chrono::steady_clock::now();

  auto write_line = [&](const PendingEval& eval, const std::string& text,
                        bool is_ok) {
    SendLine(eval.conn, text);
    eval.conn->inflight.fetch_sub(1, std::memory_order_relaxed);
    if (is_ok) {
      stats_.responses.fetch_add(1, std::memory_order_relaxed);
    } else {
      stats_.eval_errors.fetch_add(1, std::memory_order_relaxed);
    }
  };

  // The coalescing payoff: every legacy EVAL in the drained queue goes
  // through ONE EvaluateMany call — requests sharing a grounded lineage
  // structure are answered by one batched circuit pass over a multi-column
  // WeightMatrix instead of one walk each. Deadline'd EVALs are excluded:
  // one deadline must bound ONE request, not abort a whole coalesced
  // round, so they run below as single checked evaluations.
  std::vector<Tid> tids;
  std::vector<size_t> exact_index;
  tids.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].approx || batch[i].deadline_ms > 0) continue;
    tids.push_back(batch[i].tid);
    exact_index.push_back(i);
  }
  if (!tids.empty()) {
    const std::vector<GfomcResult> results =
        session_.EvaluateMany(query_, tids);
    for (size_t m = 0; m < exact_index.size(); ++m) {
      const PendingEval& eval = batch[exact_index[m]];
      write_line(eval,
                 "OK " + eval.id + " " + results[m].probability.ToString() +
                     " lifted=" + (results[m].used_lifted ? "1" : "0"),
                 /*is_ok=*/true);
    }
  }

  // Brownout: under pressure, auto-routed requests degrade to the cheaper
  // certified tiers (exact → interval → sample). An EXPLICIT mode is a
  // contract and passes through untouched — the server may shed it, never
  // silently weaken it. DegradeForPressure enforces exactly that. The
  // effective route is resolved ONCE per request here so the sampled-tier
  // grouping below and the singles loop agree on it (and the degraded
  // counter cannot double-count).
  std::vector<RoutingMode> effective(batch.size(), RoutingMode::kAuto);
  for (size_t i = 0; i < batch.size(); ++i) {
    if (!batch[i].approx) continue;
    effective[i] = DegradeForPressure(batch[i].mode, governor_.level());
    if (effective[i] != batch[i].mode) {
      stats_.degraded.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // One reply formatter for every EVAL_APPROX answer, shared by the
  // grouped and single paths so the two are byte-identical by construction.
  auto format_approx_reply = [](const PendingEval& eval,
                                const GmcAnswer& answer) {
    switch (answer.tier) {
      case AnswerTier::kCertifiedInterval:
        return "OK " + eval.id + " INTERVAL " +
               FormatDouble(answer.interval.lo) + " " +
               FormatDouble(answer.interval.hi) + " tier=interval";
      case AnswerTier::kSampled:
        return "OK " + eval.id + " ESTIMATE " +
               FormatDouble(answer.estimate) +
               " eps=" + FormatDouble(answer.epsilon) +
               " delta=" + FormatDouble(answer.delta) +
               " samples=" + std::to_string(answer.samples) +
               " tier=sampled";
      default:
        return "OK " + eval.id + " EXACT " + answer.exact.ToString() +
               " tier=" + AnswerTierName(answer.tier);
    }
  };

  const GmcOptions base = session_.options();
  bool reconfigured = false;

  // Sampled-tier coalescing: EVAL_APPROX requests whose effective route is
  // the sampler — and that carry no deadline — group by (eps, delta) and
  // run as ONE EvaluateAnswers call per group, so same-structure requests
  // in one round share one Karp–Luby plan build (the session's plan cache)
  // and one batched sample pass. Grouping is safe exactly here: kSample
  // never returns BUDGET or TIMEOUT (no compile probe, no deadline), and
  // the inputs were parse-validated at admission, so one group-wide status
  // suffices — on the unexpected !ok every member gets the same typed
  // INVALID the single path would produce. Deadline'd requests stay
  // single: one deadline must bound ONE request, not abort a group.
  std::vector<size_t> sampled;
  std::vector<char> grouped(batch.size(), 0);
  for (size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].approx && effective[i] == RoutingMode::kSample &&
        batch[i].deadline_ms == 0) {
      sampled.push_back(i);
    }
  }
  for (size_t g = 0; g < sampled.size(); ++g) {
    if (grouped[sampled[g]]) continue;
    std::vector<size_t> members;
    for (size_t h = g; h < sampled.size(); ++h) {
      const size_t i = sampled[h];
      if (grouped[i]) continue;
      if (batch[i].epsilon == batch[sampled[g]].epsilon &&
          batch[i].delta == batch[sampled[g]].delta) {
        members.push_back(i);
        grouped[i] = 1;
      }
    }
    stats_.approx_batches.fetch_add(1, std::memory_order_relaxed);
    uint64_t largest = stats_.max_approx_batch.load(std::memory_order_relaxed);
    while (largest < members.size() &&
           !stats_.max_approx_batch.compare_exchange_weak(
               largest, members.size(), std::memory_order_relaxed)) {
    }
    GmcOptions opts = base;
    opts.routing_mode = RoutingMode::kSample;
    opts.epsilon = batch[members[0]].epsilon;
    opts.delta = batch[members[0]].delta;
    opts.deadline_ms = 0;
    session_.Configure(opts);
    reconfigured = true;
    std::vector<Tid> group_tids;
    group_tids.reserve(members.size());
    for (const size_t i : members) group_tids.push_back(batch[i].tid);
    std::vector<GmcAnswer> answers;
    const GmcStatus status =
        session_.EvaluateAnswers(query_, group_tids, &answers);
    for (size_t m = 0; m < members.size(); ++m) {
      const PendingEval& eval = batch[members[m]];
      if (!status.ok()) {
        write_line(eval, "ERR " + eval.id + " INVALID " + status.message,
                   /*is_ok=*/false);
      } else {
        write_line(eval, format_approx_reply(eval, answers[m]),
                   /*is_ok=*/true);
      }
    }
  }

  // Remaining EVAL_APPROX requests (exact/interval routes, or deadline'd)
  // and deadline'd legacy EVALs carry per-request knobs, so each runs as
  // one checked EvaluateAnswer with the session temporarily configured for
  // it (this function is the only config writer; the base is restored
  // after). A deadline'd legacy EVAL maps onto mode=exact with an
  // unlimited compile budget: the same always-exact semantics as the
  // coalesced path, interruptible by the deadline alone.
  for (size_t i = 0; i < batch.size(); ++i) {
    const PendingEval& eval = batch[i];
    if (grouped[i]) continue;
    if (!eval.approx && eval.deadline_ms == 0) continue;
    GmcOptions opts = base;
    if (eval.approx) {
      opts.routing_mode = effective[i];
      opts.epsilon = eval.epsilon;
      opts.delta = eval.delta;
    } else {
      opts.routing_mode = RoutingMode::kExact;
      opts.compile_budget = CompileBudget{};
    }
    opts.deadline_ms = eval.deadline_ms;
    session_.Configure(opts);
    reconfigured = true;
    GmcAnswer answer;
    const GmcStatus status = session_.EvaluateAnswer(query_, eval.tid, &answer);
    if (!status.ok()) {
      const char* kind = "INVALID";
      if (status.code == GmcStatusCode::kBudgetExhausted) kind = "BUDGET";
      if (status.code == GmcStatusCode::kDeadlineExceeded) {
        kind = "TIMEOUT";
        stats_.timeouts.fetch_add(1, std::memory_order_relaxed);
      }
      write_line(eval, "ERR " + eval.id + " " + kind + " " + status.message,
                 /*is_ok=*/false);
      continue;
    }
    if (!eval.approx) {
      // Deadline'd legacy EVAL: reply in the legacy EVAL shape so clients
      // need not care which internal path served them.
      write_line(eval,
                 "OK " + eval.id + " " + answer.exact.ToString() + " lifted=" +
                     (answer.tier == AnswerTier::kLifted ? "1" : "0"),
                 /*is_ok=*/true);
      continue;
    }
    write_line(eval, format_approx_reply(eval, answer), /*is_ok=*/true);
  }
  if (reconfigured) session_.Configure(base);

  // Feed the governor the batch's per-request evaluation cost: under a
  // RED-tier downshift the sampler drains the queue fast enough that the
  // depth and wait signals collapse; without this feed the level would
  // flap back to GREEN and the expensive tier would return (the work term
  // in serve/overload.h).
  const double batch_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - work_started)
                              .count();
  governor_.RecordWorkCost(batch_ms / static_cast<double>(batch.size()));

  governor_.EndWork(batch.size());
  {
    // Depth sample at batch end: pressure decays promptly once the queue
    // drains instead of waiting for the next admission to refresh it.
    std::lock_guard<std::mutex> lock(queue_mu_);
    governor_.RecordQueueDepth(pending_.size());
  }
}

GmcServer::Stats GmcServer::stats() const {
  Stats out;
  out.connections = stats_.connections.load(std::memory_order_relaxed);
  out.requests = stats_.requests.load(std::memory_order_relaxed);
  out.approx_requests =
      stats_.approx_requests.load(std::memory_order_relaxed);
  out.responses = stats_.responses.load(std::memory_order_relaxed);
  out.shed = stats_.shed.load(std::memory_order_relaxed);
  out.parse_errors = stats_.parse_errors.load(std::memory_order_relaxed);
  out.eval_errors = stats_.eval_errors.load(std::memory_order_relaxed);
  out.batches = stats_.batches.load(std::memory_order_relaxed);
  out.batched_requests =
      stats_.batched_requests.load(std::memory_order_relaxed);
  out.max_batch = stats_.max_batch.load(std::memory_order_relaxed);
  out.timeouts = stats_.timeouts.load(std::memory_order_relaxed);
  out.idle_disconnects =
      stats_.idle_disconnects.load(std::memory_order_relaxed);
  out.oversize_lines = stats_.oversize_lines.load(std::memory_order_relaxed);
  out.accept_retries = stats_.accept_retries.load(std::memory_order_relaxed);
  out.busy_rejected = stats_.busy_rejected.load(std::memory_order_relaxed);
  out.degraded = stats_.degraded.load(std::memory_order_relaxed);
  out.health_requests =
      stats_.health_requests.load(std::memory_order_relaxed);
  out.scrubbed = stats_.scrubbed.load(std::memory_order_relaxed);
  out.quarantined = stats_.quarantined.load(std::memory_order_relaxed);
  out.scrub_orphans = stats_.scrub_orphans.load(std::memory_order_relaxed);
  out.approx_batches = stats_.approx_batches.load(std::memory_order_relaxed);
  out.max_approx_batch =
      stats_.max_approx_batch.load(std::memory_order_relaxed);
  return out;
}

GmcServer::StatsSnapshot GmcServer::snapshot() const {
  StatsSnapshot snap;
  snap.server = stats();
  snap.session = session_.stats();
  for (int p = 0; p < static_cast<int>(fault::Point::kNumPoints); ++p) {
    snap.faults_injected +=
        fault::InjectedCount(static_cast<fault::Point>(p));
  }
  return snap;
}

std::string GmcServer::StatsSnapshot::ToLine() const {
  std::ostringstream out;
  out << "STATS connections=" << server.connections
      << " requests=" << server.requests
      << " approx_requests=" << server.approx_requests
      << " responses=" << server.responses << " shed=" << server.shed
      << " parse_errors=" << server.parse_errors
      << " eval_errors=" << server.eval_errors
      << " batches=" << server.batches
      << " batched_requests=" << server.batched_requests
      << " max_batch=" << server.max_batch
      << " timeouts=" << server.timeouts
      << " idle_disconnects=" << server.idle_disconnects
      << " oversize_lines=" << server.oversize_lines
      << " accept_retries=" << server.accept_retries
      << " busy_rejected=" << server.busy_rejected
      << " degraded=" << server.degraded
      << " health_requests=" << server.health_requests
      << " scrubbed=" << server.scrubbed
      << " quarantined=" << server.quarantined
      << " scrub_orphans=" << server.scrub_orphans
      << " approx_batches=" << server.approx_batches
      << " max_approx_batch=" << server.max_approx_batch
      << " queries=" << session.queries
      << " safe_lifted=" << session.safe_lifted
      << " safe_compiled=" << session.safe_compiled
      << " unsafe_compiled=" << session.unsafe_compiled
      << " unsafe_recursive=" << session.unsafe_recursive
      << " anytime_interval=" << session.anytime_interval
      << " anytime_sampled=" << session.anytime_sampled
      << " budget_exhausted=" << session.budget_exhausted
      << " invalid_requests=" << session.invalid_requests
      << " circuit_compiles=" << session.circuit_compiles
      << " circuit_hits=" << session.circuit_hits
      << " store_hits=" << session.store_hits
      << " store_misses=" << session.store_misses
      << " store_rejected=" << session.store_rejected
      << " store_quarantined=" << session.store_quarantined
      << " deadline_exceeded=" << session.deadline_exceeded
      << " evictions=" << session.evictions
      << " resident_bytes=" << session.resident_bytes
      << " plan_hits=" << session.plan_hits
      << " plan_misses=" << session.plan_misses
      << " sampler_batches=" << session.sampler_batches
      << " faults_injected=" << faults_injected;
  return out.str();
}

std::string GmcServer::StatsLine() const { return snapshot().ToLine(); }

std::string GmcServer::HealthLine() {
  // One machine-parseable line a load balancer or operator can poll
  // cheaply: no mutex on the hot counters, one short queue_mu_ hold for
  // the depth (the only non-atomic input).
  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    depth = pending_.size();
  }
  const GfomcSession::Stats session = session_.stats();
  std::ostringstream out;
  out << "HEALTH pressure=" << PressureName(governor_.level())
      << " queue=" << depth << " inflight=" << governor_.inflight()
      << " connections="
      << active_connections_.load(std::memory_order_relaxed)
      << " wait_ewma_ms=" << std::setprecision(4)
      << governor_.wait_ewma_ms()
      << " store=" << (options_.store_directory.empty() ? "none" : "attached")
      << " scrubbed=" << stats_.scrubbed.load(std::memory_order_relaxed)
      << " quarantined="
      << (stats_.quarantined.load(std::memory_order_relaxed) +
          session.store_quarantined);
  return out.str();
}

}  // namespace serve
}  // namespace gmc
