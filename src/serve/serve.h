// gmc_serve's engine: a long-lived serving tier over GfomcSession.
//
// One GmcServer owns one query and one GfomcSession and answers tuple-
// probability evaluations over a Unix-domain stream socket. The design
// goals, in order:
//
//   1. Compile once, serve forever: the session's CircuitCaches persist
//      across requests, and with a store directory attached the server
//      warm-starts from disk (WarmCircuitsFrom) and write-throughs every
//      fresh compile — a restarted or replicated server re-serves in
//      milliseconds what first cost a compilation.
//   2. Coalesce concurrent load: requests land in a bounded queue; a
//      single batch loop drains the WHOLE queue each round and answers it
//      with ONE GfomcSession::EvaluateMany call, so K concurrent requests
//      against the same lineage structure cost one topological circuit
//      pass over a K-column WeightMatrix instead of K walks.
//   3. Shed, don't stall: past the admission limit a request is refused
//      immediately with a typed SHED error — the client can retry or
//      fail over; the queue never grows without bound.
//
// Wire protocol (UTF-8 lines, '\n'-terminated, over AF_UNIX SOCK_STREAM):
//
//   server → client on connect:
//     HELLO gmc_serve 1
//   client → server:
//     EVAL <id> [deadline=<ms>] <num_left> <num_right> <default_p>
//          [<tuple>=<p> ...]
//         one evaluation: a TID over a num_left × num_right bipartite
//         domain, unassigned tuples at <default_p>; tuples are
//         R(u), T(v), or S(u,v) with symbol names from the server's
//         query, probabilities are non-negative rationals "a/b" or "a"
//         in [0, 1]. <id> is an opaque token echoed in the response.
//         The optional deadline token bounds the request end to end; a
//         request that cannot finish in time answers ERR TIMEOUT instead
//         of stalling the connection (deadline'd EVALs skip the coalesced
//         batch pass and run as single checked exact evaluations).
//     EVAL_APPROX <id> [deadline=<ms>] <mode> <eps> <delta>
//                 <num_left> <num_right> <default_p> [<tuple>=<p> ...]
//         the checked, three-way-routed evaluation (GfomcSession::
//         EvaluateAnswer; see docs/ANYTIME.md). <mode> is auto, exact,
//         interval, or sample; <eps> and <delta> are rationals strictly
//         inside (0, 1) with the (ε, δ) semantics of the sampled tier.
//         The TID tail is identical to EVAL's.
//     STATS        one-line server + session counter dump
//     QUIT         server answers BYE and closes the connection
//   server → client:
//     OK <id> <probability> lifted=<0|1>                      (EVAL)
//     OK <id> EXACT <probability> tier=<t>                    (EVAL_APPROX)
//         t ∈ {lifted, compiled, recursive}; <probability> is the exact
//         rational, bit-identical to what EVAL would answer.
//     OK <id> INTERVAL <lo> <hi> tier=interval                (EVAL_APPROX)
//         a guaranteed enclosure: lo <= Pr <= hi.
//     OK <id> ESTIMATE <p> eps=<e> delta=<d> samples=<n> tier=sampled
//         |p − Pr| <= e with probability >= 1 − d; e is the certificate
//         actually achieved (it exceeds the requested eps when the
//         sample cap bound — the anytime contract).
//     ERR <id> SHED <detail>     admission control refused the request
//     ERR <id> PARSE <detail>    malformed request (nothing evaluated)
//     ERR <id> INVALID <detail>  EVAL_APPROX inputs failed validation,
//                                or the input line itself was rejected
//                                (over-long line, embedded NUL byte)
//     ERR <id> BUDGET <detail>   mode=exact refused an over-budget
//                                instance (no anytime fallback)
//     ERR <id> TIMEOUT <detail>  the request's deadline=<ms> fired before
//                                an answer was produced (nothing is
//                                memoized; retrying without a deadline
//                                may succeed)
//
// Every malformed input yields an ERR line, never a crash or an abort —
// the socket is a process boundary and its bytes are untrusted. A line
// that exceeds the length cap or carries a NUL byte gets one typed
// ERR - INVALID reply and then the connection is closed: the framing
// itself is no longer trustworthy, so no further bytes are parsed.
//
// Thread model: one accept thread, one reader thread per connection, one
// batch loop. Responses are written under a per-connection mutex, so OK
// lines from the batch loop and ERR lines from the reader interleave as
// whole lines. Start()/Stop() bracket the lifetime; Stop() drains the
// queue, answers everything in flight, flushes the write-through store,
// and joins every thread (also run by the destructor).

#ifndef GMC_SERVE_SERVE_H_
#define GMC_SERVE_SERVE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/dichotomy.h"
#include "logic/query.h"
#include "prob/tid.h"
#include "util/rational.h"

namespace gmc {
namespace serve {

struct GmcServerOptions {
  /// Filesystem path of the listening socket (unlinked and rebound on
  /// Start, unlinked again on Stop). Must fit sockaddr_un (~100 bytes).
  std::string socket_path;
  /// Admission limit: EVALs arriving while this many are already queued
  /// are shed with a typed error instead of enqueued.
  size_t max_pending = 64;
  /// Largest accepted per-request domain side — a line of text must not
  /// be able to demand an arbitrarily large grounding.
  int max_domain = 256;
  /// Worker bound for the session's batch passes (GfomcSession::
  /// set_num_threads semantics; 0 = process default).
  int num_threads = 0;
  /// Optional circuit store: attached read-through + write-through on
  /// Start, warm-started from (if warm_start) and flushed to on Stop.
  std::string store_directory;
  bool warm_start = true;
  /// Per-connection read idle timeout in milliseconds (0 = never): a
  /// connection that sends no bytes for this long is closed, so an
  /// abandoned client cannot hold a reader thread forever. Poll-based —
  /// the reader blocks in poll(2), never in a bare recv.
  uint64_t read_idle_ms = 0;
  /// Per-reply write timeout in milliseconds (0 = block forever): a peer
  /// that stops draining its socket gets this long before the remainder
  /// of the reply is dropped — exactly the dead-peer behaviour — so one
  /// stalled client can never wedge the batch loop for everyone else.
  uint64_t write_timeout_ms = 5000;
};

class GmcServer {
 public:
  /// Serving-layer counters (the session's evaluation counters live in
  /// session_stats()). max_batch is the largest single coalesced round —
  /// >1 proves concurrent requests shared one batch pass.
  struct Stats {
    uint64_t connections = 0;
    uint64_t requests = 0;    ///< well-formed EVALs admitted to the queue
    uint64_t approx_requests = 0;  ///< the EVAL_APPROX share of `requests`
    uint64_t responses = 0;   ///< OK lines written
    uint64_t shed = 0;        ///< EVALs refused by admission control
    uint64_t parse_errors = 0;
    uint64_t eval_errors = 0;  ///< ERR INVALID + ERR BUDGET lines written
    uint64_t batches = 0;     ///< coalesced rounds executed
    uint64_t batched_requests = 0;  ///< EVALs those rounds served
    uint64_t max_batch = 0;
    uint64_t timeouts = 0;          ///< ERR TIMEOUT lines written
    uint64_t idle_disconnects = 0;  ///< connections closed by read_idle_ms
    uint64_t oversize_lines = 0;    ///< lines rejected (length cap / NUL)
  };

  /// One coherent picture of the whole serving stack, taken in a single
  /// call: the serving-layer counters plus the session's evaluation/tier/
  /// cache/store counters. STATS lines and the docs/SERVING.md key list
  /// are both generated from this one struct, so they cannot drift apart.
  struct StatsSnapshot {
    Stats server;
    GfomcSession::Stats session;
    /// Fault-injection crossings that fired process-wide (all points
    /// summed; zero unless GMC_FAULT is active) — lets an operator see at
    /// a glance whether observed errors are injected or organic.
    uint64_t faults_injected = 0;
    /// The STATS wire line: every field above as "key=value", in struct
    /// order, single space separated, prefixed "STATS".
    std::string ToLine() const;
  };
  StatsSnapshot snapshot() const;

  GmcServer(Query query, GmcServerOptions options);
  ~GmcServer();  // runs Stop()

  GmcServer(const GmcServer&) = delete;
  GmcServer& operator=(const GmcServer&) = delete;

  /// Binds, listens, warm-starts, and spawns the serving threads. False
  /// with *error on socket failure (nothing left running).
  bool Start(std::string* error);

  /// Graceful shutdown: stops accepting, unblocks readers, answers every
  /// queued request, flushes the store, joins all threads. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  const std::string& socket_path() const { return options_.socket_path; }

  Stats stats() const;
  GfomcSession::Stats session_stats() const { return session_.stats(); }

 private:
  struct Connection {
    int fd = -1;
    std::mutex write_mu;
  };
  struct PendingEval {
    std::string id;
    Tid tid;
    std::shared_ptr<Connection> conn;
    // EVAL_APPROX extras; `approx` false means the legacy exact EVAL path.
    bool approx = false;
    RoutingMode mode = RoutingMode::kAuto;
    double epsilon = 0.05;
    double delta = 0.01;
    // End-to-end deadline for this one request (0 = none); see the
    // deadline=<ms> wire token. Deadline'd requests run as single checked
    // evaluations, never inside the coalesced EvaluateMany pass.
    uint64_t deadline_ms = 0;
  };

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Connection> conn);
  void BatchLoop();
  void HandleLine(const std::shared_ptr<Connection>& conn,
                  const std::string& line, bool* close_connection);
  // The shared TID tail parser of EVAL and EVAL_APPROX:
  // words[first..] = <num_left> <num_right> <default_p> [<tuple>=<p> ...].
  // nullopt with *detail set on malformed input (nothing is evaluated).
  std::optional<Tid> ParseTidSpec(const std::vector<std::string>& words,
                                  size_t first, std::string* detail);
  void RunBatch(std::vector<PendingEval> batch);
  // The one reply writer: whole-line send under the connection's write
  // mutex, bounded by options_.write_timeout_ms, instrumented with the
  // socket.write fault point.
  void SendLine(const std::shared_ptr<Connection>& conn,
                const std::string& text);
  std::string StatsLine() const;

  Query query_;
  GmcServerOptions options_;
  GfomcSession session_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::vector<PendingEval> pending_;

  std::mutex threads_mu_;
  std::thread accept_thread_;
  std::thread batch_thread_;
  std::vector<std::thread> readers_;
  std::vector<std::shared_ptr<Connection>> connections_;

  struct AtomicStats {
    std::atomic<uint64_t> connections{0};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> approx_requests{0};
    std::atomic<uint64_t> responses{0};
    std::atomic<uint64_t> shed{0};
    std::atomic<uint64_t> parse_errors{0};
    std::atomic<uint64_t> eval_errors{0};
    std::atomic<uint64_t> batches{0};
    std::atomic<uint64_t> batched_requests{0};
    std::atomic<uint64_t> max_batch{0};
    std::atomic<uint64_t> timeouts{0};
    std::atomic<uint64_t> idle_disconnects{0};
    std::atomic<uint64_t> oversize_lines{0};
  };
  mutable AtomicStats stats_;
};

namespace internal {
/// Non-aborting "a" / "a/b" probability parser (socket input is
/// untrusted; Rational::FromString aborts). Accepts only canonical
/// non-negative rationals with value in [0, 1].
bool ParseProbability(const std::string& token, Rational* out);
}  // namespace internal

}  // namespace serve
}  // namespace gmc

#endif  // GMC_SERVE_SERVE_H_
