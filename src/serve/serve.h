// gmc_serve's engine: a long-lived serving tier over GfomcSession.
//
// One GmcServer owns one query and one GfomcSession and answers tuple-
// probability evaluations over a Unix-domain stream socket. The design
// goals, in order:
//
//   1. Compile once, serve forever: the session's CircuitCaches persist
//      across requests, and with a store directory attached the server
//      warm-starts from disk (WarmCircuitsFrom) and write-throughs every
//      fresh compile — a restarted or replicated server re-serves in
//      milliseconds what first cost a compilation.
//   2. Coalesce concurrent load: requests land in a bounded queue; a
//      single batch loop drains the WHOLE queue each round and answers it
//      with ONE GfomcSession::EvaluateMany call, so K concurrent requests
//      against the same lineage structure cost one topological circuit
//      pass over a K-column WeightMatrix instead of K walks. Sampled-tier
//      EVAL_APPROX traffic coalesces the same way: requests in one round
//      whose effective route is the sampler (and that carry no deadline)
//      are grouped by (eps, delta) and answered with ONE
//      GfomcSession::EvaluateAnswers call per group, so same-structure
//      requests share one Karp–Luby plan build (plan_hits in STATS) —
//      with answers byte-identical to serial single-request serving.
//   3. Shed, don't stall: past the admission limit a request is refused
//      immediately with a typed SHED error carrying a retry_after_ms
//      backoff hint — the client can retry or fail over; the queue never
//      grows without bound.
//   4. Degrade by tier, not by dropping: a LoadGovernor (serve/overload.h)
//      folds queue depth, queue-wait EWMA, and in-flight work into a
//      hysteresis-banded pressure level (GREEN/YELLOW/RED). Auto-routed
//      EVAL_APPROX requests downshift exact → interval → sample as
//      pressure rises; explicit-mode requests are never silently
//      downgraded (the tier= field in OK replies keeps degradation
//      observable). Per-connection in-flight caps keep one aggressive
//      client from starving the rest.
//   5. Recover, don't limp: with a store attached, Start() runs a scrub
//      pass (store/scrub.h) that quarantines torn/corrupt entries and
//      removes dead writers' temp files before warm-starting, and the
//      session's caches self-heal on every read-path rejection.
//
// Wire protocol (UTF-8 lines, '\n'-terminated, over AF_UNIX SOCK_STREAM):
//
//   server → client on connect:
//     HELLO gmc_serve 1
//   client → server:
//     EVAL <id> [deadline=<ms>] <num_left> <num_right> <default_p>
//          [<tuple>=<p> ...]
//         one evaluation: a TID over a num_left × num_right bipartite
//         domain, unassigned tuples at <default_p>; tuples are
//         R(u), T(v), or S(u,v) with symbol names from the server's
//         query, probabilities are non-negative rationals "a/b" or "a"
//         in [0, 1]. <id> is an opaque token echoed in the response.
//         The optional deadline token bounds the request end to end; a
//         request that cannot finish in time answers ERR TIMEOUT instead
//         of stalling the connection (deadline'd EVALs skip the coalesced
//         batch pass and run as single checked exact evaluations).
//     EVAL_APPROX <id> [deadline=<ms>] <mode> <eps> <delta>
//                 <num_left> <num_right> <default_p> [<tuple>=<p> ...]
//         the checked, three-way-routed evaluation (GfomcSession::
//         EvaluateAnswer; see docs/ANYTIME.md). <mode> is auto, exact,
//         interval, or sample; <eps> and <delta> are rationals strictly
//         inside (0, 1) with the (ε, δ) semantics of the sampled tier.
//         The TID tail is identical to EVAL's.
//     STATS        one-line server + session counter dump
//     HEALTH       one-line liveness probe, no evaluation cost:
//                    HEALTH pressure=<green|yellow|red> queue=<n>
//                           inflight=<n> connections=<n>
//                           wait_ewma_ms=<x> store=<attached|none>
//                           scrubbed=<n> quarantined=<n>
//                  supervisors poll this instead of paying for an EVAL.
//     QUIT         server answers BYE and closes the connection
//   server → client:
//     OK <id> <probability> lifted=<0|1>                      (EVAL)
//     OK <id> EXACT <probability> tier=<t>                    (EVAL_APPROX)
//         t ∈ {lifted, compiled, recursive}; <probability> is the exact
//         rational, bit-identical to what EVAL would answer.
//     OK <id> INTERVAL <lo> <hi> tier=interval                (EVAL_APPROX)
//         a guaranteed enclosure: lo <= Pr <= hi.
//     OK <id> ESTIMATE <p> eps=<e> delta=<d> samples=<n> tier=sampled
//         |p − Pr| <= e with probability >= 1 − d; e is the certificate
//         actually achieved (it exceeds the requested eps when the
//         sample cap bound — the anytime contract).
//     ERR <id> SHED retry_after_ms=<n> <detail>
//                                admission control refused the request;
//                                <n> is the backoff hint (scaled by the
//                                pressure level) after which a retry is
//                                worth attempting
//     ERR - BUSY retry_after_ms=<n> <detail>
//                                sent as the GREETING (instead of HELLO)
//                                when the server is at max_connections;
//                                the connection is then closed
//     ERR <id> PARSE <detail>    malformed request (nothing evaluated)
//     ERR <id> INVALID <detail>  EVAL_APPROX inputs failed validation,
//                                or the input line itself was rejected
//                                (over-long line, embedded NUL byte)
//     ERR <id> BUDGET <detail>   mode=exact refused an over-budget
//                                instance (no anytime fallback)
//     ERR <id> TIMEOUT <detail>  the request's deadline=<ms> fired before
//                                an answer was produced (nothing is
//                                memoized; retrying without a deadline
//                                may succeed)
//
// Every malformed input yields an ERR line, never a crash or an abort —
// the socket is a process boundary and its bytes are untrusted. A line
// that exceeds the length cap or carries a NUL byte gets one typed
// ERR - INVALID reply and then the connection is closed: the framing
// itself is no longer trustworthy, so no further bytes are parsed.
//
// Thread model: one accept thread, one reader thread per connection, one
// batch loop. Responses are written under a per-connection mutex, so OK
// lines from the batch loop and ERR lines from the reader interleave as
// whole lines. Start()/Stop() bracket the lifetime; Stop() drains the
// queue, answers everything in flight, flushes the write-through store,
// and joins every thread (also run by the destructor).

#ifndef GMC_SERVE_SERVE_H_
#define GMC_SERVE_SERVE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <chrono>

#include "core/dichotomy.h"
#include "logic/query.h"
#include "prob/tid.h"
#include "serve/overload.h"
#include "util/rational.h"

namespace gmc {
namespace serve {

struct GmcServerOptions {
  /// Filesystem path of the listening socket (unlinked and rebound on
  /// Start, unlinked again on Stop). Must fit sockaddr_un (~100 bytes).
  std::string socket_path;
  /// Admission limit: EVALs arriving while this many are already queued
  /// are shed with a typed error instead of enqueued.
  size_t max_pending = 64;
  /// Largest accepted per-request domain side — a line of text must not
  /// be able to demand an arbitrarily large grounding.
  int max_domain = 256;
  /// Worker bound for the session's batch passes (GfomcSession::
  /// set_num_threads semantics; 0 = process default).
  int num_threads = 0;
  /// Optional circuit store: attached read-through + write-through on
  /// Start, warm-started from (if warm_start) and flushed to on Stop.
  std::string store_directory;
  bool warm_start = true;
  /// Per-connection read idle timeout in milliseconds (0 = never): a
  /// connection that sends no bytes for this long is closed, so an
  /// abandoned client cannot hold a reader thread forever. Poll-based —
  /// the reader blocks in poll(2), never in a bare recv.
  uint64_t read_idle_ms = 0;
  /// Per-reply write timeout in milliseconds (0 = block forever): a peer
  /// that stops draining its socket gets this long before the remainder
  /// of the reply is dropped — exactly the dead-peer behaviour — so one
  /// stalled client can never wedge the batch loop for everyone else.
  uint64_t write_timeout_ms = 5000;
  /// listen(2) backlog for the accepting socket (the --backlog flag).
  int listen_backlog = 64;
  /// Connection cap (0 = unlimited): a client accepted past it receives a
  /// typed "ERR - BUSY retry_after_ms=<n> ..." greeting instead of HELLO
  /// and is closed — reader threads stay bounded no matter how many
  /// clients pile on. The GMC_MAX_CONNECTIONS env default and
  /// --max-connections flag plumb through tools/gmc_serve.
  size_t max_connections = 0;
  /// Cross-client fairness cap (0 = unlimited): one connection may have
  /// at most this many admitted-but-unanswered requests; past it, its
  /// requests shed with retry_after_ms while other clients' traffic still
  /// flows — one pipelining client cannot fill the whole queue.
  uint64_t max_inflight_per_connection = 0;
  /// Brownout governor knobs (serve/overload.h). A zero capacity is
  /// filled from max_pending at Start.
  OverloadOptions overload;
};

class GmcServer {
 public:
  /// Serving-layer counters (the session's evaluation counters live in
  /// session_stats()). max_batch is the largest single coalesced round —
  /// >1 proves concurrent requests shared one batch pass.
  struct Stats {
    uint64_t connections = 0;
    uint64_t requests = 0;    ///< well-formed EVALs admitted to the queue
    uint64_t approx_requests = 0;  ///< the EVAL_APPROX share of `requests`
    uint64_t responses = 0;   ///< OK lines written
    uint64_t shed = 0;        ///< EVALs refused by admission control
    uint64_t parse_errors = 0;
    uint64_t eval_errors = 0;  ///< ERR INVALID + ERR BUDGET lines written
    uint64_t batches = 0;     ///< coalesced rounds executed
    uint64_t batched_requests = 0;  ///< EVALs those rounds served
    uint64_t max_batch = 0;
    uint64_t timeouts = 0;          ///< ERR TIMEOUT lines written
    uint64_t idle_disconnects = 0;  ///< connections closed by read_idle_ms
    uint64_t oversize_lines = 0;    ///< lines rejected (length cap / NUL)
    uint64_t accept_retries = 0;    ///< transient accept failures retried
    uint64_t busy_rejected = 0;     ///< connections refused at the cap
    uint64_t degraded = 0;     ///< auto requests downshifted by pressure
    uint64_t health_requests = 0;   ///< HEALTH lines answered
    uint64_t scrubbed = 0;          ///< store entries the startup scrub scanned
    uint64_t quarantined = 0;       ///< entries the startup scrub quarantined
    uint64_t scrub_orphans = 0;     ///< dead-writer temp files it removed
    /// Sampled-tier coalescing: (eps, delta) groups answered with one
    /// EvaluateAnswers call each, and the largest such group — >1 proves
    /// concurrent sampled requests shared one Karp–Luby plan build.
    uint64_t approx_batches = 0;
    uint64_t max_approx_batch = 0;
  };

  /// One coherent picture of the whole serving stack, taken in a single
  /// call: the serving-layer counters plus the session's evaluation/tier/
  /// cache/store counters. STATS lines and the docs/SERVING.md key list
  /// are both generated from this one struct, so they cannot drift apart.
  struct StatsSnapshot {
    Stats server;
    GfomcSession::Stats session;
    /// Fault-injection crossings that fired process-wide (all points
    /// summed; zero unless GMC_FAULT is active) — lets an operator see at
    /// a glance whether observed errors are injected or organic.
    uint64_t faults_injected = 0;
    /// The STATS wire line: every field above as "key=value", in struct
    /// order, single space separated, prefixed "STATS".
    std::string ToLine() const;
  };
  StatsSnapshot snapshot() const;

  GmcServer(Query query, GmcServerOptions options);
  ~GmcServer();  // runs Stop()

  GmcServer(const GmcServer&) = delete;
  GmcServer& operator=(const GmcServer&) = delete;

  /// Binds, listens, warm-starts, and spawns the serving threads. False
  /// with *error on socket failure (nothing left running).
  bool Start(std::string* error);

  /// Graceful shutdown: stops accepting, unblocks readers, answers every
  /// queued request, flushes the store, joins all threads. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  const std::string& socket_path() const { return options_.socket_path; }

  Stats stats() const;
  GfomcSession::Stats session_stats() const { return session_.stats(); }

 private:
  struct Connection {
    int fd = -1;
    std::mutex write_mu;
    /// Admitted-but-unanswered requests from this connection (the
    /// max_inflight_per_connection fairness cap); incremented under the
    /// queue lock at admission, decremented as each reply is written.
    std::atomic<uint64_t> inflight{0};
    /// Set by ReaderLoop on exit — the reap signal: AcceptLoop joins the
    /// reader thread and drops the connection entry between accepts, so
    /// neither vector grows with connection churn.
    std::atomic<bool> done{false};
  };
  /// One reader thread and the connection it serves, reaped together.
  struct Reader {
    std::thread thread;
    std::shared_ptr<Connection> conn;
  };
  struct PendingEval {
    std::string id;
    Tid tid;
    std::shared_ptr<Connection> conn;
    // EVAL_APPROX extras; `approx` false means the legacy exact EVAL path.
    bool approx = false;
    RoutingMode mode = RoutingMode::kAuto;
    double epsilon = 0.05;
    double delta = 0.01;
    // End-to-end deadline for this one request (0 = none); see the
    // deadline=<ms> wire token. Deadline'd requests run as single checked
    // evaluations, never inside the coalesced EvaluateMany pass.
    uint64_t deadline_ms = 0;
    // Admission time: the governor folds (drain − enqueued) into its
    // queue-wait EWMA, the signal that catches cheap-queue-expensive-work
    // overload a depth limit alone misses.
    std::chrono::steady_clock::time_point enqueued;
  };

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Connection> conn);
  void BatchLoop();
  // Joins reader threads whose connection is done and drops their entries
  // (threads_mu_ must NOT be held). Called between accepts and in Stop.
  void ReapFinishedReaders();
  void HandleLine(const std::shared_ptr<Connection>& conn,
                  const std::string& line, bool* close_connection);
  // The shared TID tail parser of EVAL and EVAL_APPROX:
  // words[first..] = <num_left> <num_right> <default_p> [<tuple>=<p> ...].
  // nullopt with *detail set on malformed input (nothing is evaluated).
  std::optional<Tid> ParseTidSpec(const std::vector<std::string>& words,
                                  size_t first, std::string* detail);
  void RunBatch(std::vector<PendingEval> batch);
  // The one reply writer: whole-line send under the connection's write
  // mutex, bounded by options_.write_timeout_ms, instrumented with the
  // socket.write fault point.
  void SendLine(const std::shared_ptr<Connection>& conn,
                const std::string& text);
  std::string StatsLine() const;
  std::string HealthLine();

  Query query_;
  GmcServerOptions options_;
  GfomcSession session_;
  LoadGovernor governor_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::vector<PendingEval> pending_;

  std::mutex threads_mu_;
  std::thread accept_thread_;
  std::thread batch_thread_;
  std::vector<Reader> readers_;
  // Live (accepted, not yet reaped) connections — the max_connections
  // check and the HEALTH line read this instead of walking readers_.
  std::atomic<size_t> active_connections_{0};

  struct AtomicStats {
    std::atomic<uint64_t> connections{0};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> approx_requests{0};
    std::atomic<uint64_t> responses{0};
    std::atomic<uint64_t> shed{0};
    std::atomic<uint64_t> parse_errors{0};
    std::atomic<uint64_t> eval_errors{0};
    std::atomic<uint64_t> batches{0};
    std::atomic<uint64_t> batched_requests{0};
    std::atomic<uint64_t> max_batch{0};
    std::atomic<uint64_t> timeouts{0};
    std::atomic<uint64_t> idle_disconnects{0};
    std::atomic<uint64_t> oversize_lines{0};
    std::atomic<uint64_t> accept_retries{0};
    std::atomic<uint64_t> busy_rejected{0};
    std::atomic<uint64_t> degraded{0};
    std::atomic<uint64_t> health_requests{0};
    std::atomic<uint64_t> scrubbed{0};
    std::atomic<uint64_t> quarantined{0};
    std::atomic<uint64_t> scrub_orphans{0};
    std::atomic<uint64_t> approx_batches{0};
    std::atomic<uint64_t> max_approx_batch{0};
  };
  mutable AtomicStats stats_;
};

namespace internal {
/// Non-aborting "a" / "a/b" probability parser (socket input is
/// untrusted; Rational::FromString aborts). Accepts only canonical
/// non-negative rationals with value in [0, 1].
bool ParseProbability(const std::string& token, Rational* out);
}  // namespace internal

}  // namespace serve
}  // namespace gmc

#endif  // GMC_SERVE_SERVE_H_
