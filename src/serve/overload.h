// Adaptive overload control ("brownout") for the serving tier.
//
// The dichotomy makes real traffic an unpredictable mix: the same wire
// verb can cost a lifted PTIME plan, a compiled circuit pass, or a #P-hard
// blow-up. A fixed admission limit therefore sheds blindly — it cannot
// tell "momentarily busy" from "melting down". This header adds the
// missing signal: a LoadGovernor that folds queue depth, queue-wait EWMA,
// and in-flight work into one normalized load signal and drives a
// hysteresis-banded pressure level
//
//     GREEN  — serve everything at the requested tier
//     YELLOW — auto-routed requests downshift to the certified interval
//              tier (guaranteed enclosures at double-batch speed)
//     RED    — auto-routed requests downshift to the (ε, δ) sampler
//              (bounded latency, certified estimate)
//
// so the server degrades BY TIER under pressure instead of degrading by
// dropping. Two invariants the serve layer builds on:
//
//   * Explicit-mode requests are never silently downgraded — only
//     RoutingMode::kAuto moves (DegradeForPressure is the whole policy,
//     a pure function, unit-tested as a table). Degradation stays
//     observable either way: every OK reply already reports tier=.
//   * Requests that cannot be served at all get a typed
//     "ERR <id> SHED retry_after_ms=<n>" with a backoff hint scaled by
//     the pressure level — never a silent drop.
//
// Hysteresis: each level has an ENTER threshold and a lower EXIT
// threshold on the load signal. The level steps up as soon as an enter
// band is met and steps down only after the signal falls below the band's
// exit threshold, so a signal oscillating around one threshold cannot
// flap the level (and with it the answer tier) request to request.
// Formally, for signal s and current level cur:
//
//     next = max(EnterLevel(s), min(cur, SustainLevel(s)))
//
// where EnterLevel is the highest level whose enter threshold s meets and
// SustainLevel the highest level whose exit threshold s still meets. The
// update is deterministic — a given feed sequence produces the same level
// sequence on every run, which is what the state-machine tests pin.
//
// Thread model: every feed and every read is lock-free (relaxed atomics;
// the EWMA folds via a CAS loop). The dormant cost of consulting level()
// on the hot admission path is one relaxed load — bench_robust gates it
// alongside the fault-point budget.

#ifndef GMC_SERVE_OVERLOAD_H_
#define GMC_SERVE_OVERLOAD_H_

#include <atomic>
#include <cstdint>

#include "compile/gmc_options.h"

namespace gmc {
namespace serve {

enum class Pressure : int { kGreen = 0, kYellow = 1, kRed = 2 };

/// Stable lowercase name: "green" / "yellow" / "red" — the vocabulary of
/// the HEALTH wire verb's pressure field.
const char* PressureName(Pressure level);

/// The governor's knobs. The load signal is normalized:
///
///   signal = max((queue_depth + inflight) / capacity,
///                wait_ewma_ms / wait_budget_ms,
///                work_ewma_ms / wait_budget_ms)
///
/// so "the queue is deep", "requests sit in the queue too long" (the
/// cheap-queue-expensive-work case a depth limit alone misses), and
/// "each request COSTS too much to evaluate" can all raise pressure. The
/// third term exists for the RED-tier blind spot: once auto traffic has
/// been downshifted to the sampler, the batch loop drains the queue fast
/// enough that depth and wait both collapse — without a per-request work
/// cost feed the signal would drop, the level would flap back to GREEN,
/// and the expensive tier would return. Thresholds are fractions of that
/// signal; exits must be at or below their enters (Configure clamps them
/// there).
struct OverloadOptions {
  /// Queue slots the depth term is normalized against (>= 1; the serve
  /// layer fills this from max_pending when left 0).
  uint64_t capacity = 64;
  /// Queue-wait EWMA that by itself saturates the signal at 1.0.
  uint64_t wait_budget_ms = 250;
  /// EWMA smoothing factor in (0, 1]: ewma' = (1-a)*ewma + a*sample.
  double ewma_alpha = 0.2;
  /// Hysteresis bands, as fractions of the normalized signal.
  double yellow_enter = 0.50;
  double yellow_exit = 0.25;
  double red_enter = 0.90;
  double red_exit = 0.60;
  /// SHED backoff hint at GREEN; YELLOW doubles it, RED quadruples it.
  uint64_t base_retry_after_ms = 25;
};

class LoadGovernor {
 public:
  LoadGovernor() { Configure(OverloadOptions{}); }
  explicit LoadGovernor(const OverloadOptions& options) { Configure(options); }

  /// Installs (sanitized) options and resets the level to GREEN. NOT safe
  /// against concurrent feeds — configure before serving starts.
  void Configure(const OverloadOptions& options);
  const OverloadOptions& options() const { return options_; }

  /// Feed: the queue depth observed at an admission or drain boundary.
  /// Recomputes the pressure level.
  void RecordQueueDepth(uint64_t depth);
  /// Feed: one request's time spent queued, folded into the EWMA.
  /// Recomputes the pressure level.
  void RecordQueueWait(uint64_t wait_ms);
  /// Feed: the average per-request evaluation cost of one drained batch
  /// (the serve loop feeds batch_ms / batch_size), folded into its own
  /// EWMA and normalized against wait_budget_ms — a request whose WORK
  /// alone eats the whole wait budget saturates the signal even when the
  /// queue stays empty. Recomputes the pressure level.
  void RecordWorkCost(double cost_ms);
  /// In-flight tracking: requests handed to the evaluation session and not
  /// yet answered count toward the depth term (the queue empties the
  /// moment a batch drains it — without this term a huge drained batch
  /// would read as zero load).
  void BeginWork(uint64_t n) {
    inflight_.fetch_add(n, std::memory_order_relaxed);
  }
  void EndWork(uint64_t n) {
    inflight_.fetch_sub(n, std::memory_order_relaxed);
  }

  Pressure level() const {
    return static_cast<Pressure>(level_.load(std::memory_order_relaxed));
  }
  /// The SHED backoff hint at the current level (base << level).
  uint64_t retry_after_ms() const;
  double wait_ewma_ms() const;
  double work_ewma_ms() const;
  uint64_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  /// Level changes since Configure — the flap counter the hysteresis
  /// tests pin (a banded governor transitions O(load swings), not
  /// O(requests)).
  uint64_t transitions() const {
    return transitions_.load(std::memory_order_relaxed);
  }

 private:
  void Recompute(uint64_t depth);

  OverloadOptions options_;
  std::atomic<uint64_t> inflight_{0};
  // EWMAs in micro-milliseconds (ms * 1024) so the CAS loops run on
  // integers; precision far below anything the bands can resolve.
  std::atomic<uint64_t> ewma_fixed_{0};       // queue wait
  std::atomic<uint64_t> work_fixed_{0};       // per-request work cost
  std::atomic<int> level_{0};
  std::atomic<uint64_t> transitions_{0};
};

/// The whole degradation policy: only kAuto moves (YELLOW → kInterval,
/// RED → kSample); every explicit mode — and kAuto at GREEN — passes
/// through untouched. Pure function, so the brownout ladder is testable
/// as a table without a server.
RoutingMode DegradeForPressure(RoutingMode requested, Pressure level);

}  // namespace serve
}  // namespace gmc

#endif  // GMC_SERVE_OVERLOAD_H_
