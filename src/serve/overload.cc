#include "serve/overload.h"

#include <algorithm>

namespace gmc {
namespace serve {

namespace {

constexpr double kEwmaScale = 1024.0;  // fixed-point: stored = ms * 1024

int EnterLevel(double signal, const OverloadOptions& o) {
  if (signal >= o.red_enter) return static_cast<int>(Pressure::kRed);
  if (signal >= o.yellow_enter) return static_cast<int>(Pressure::kYellow);
  return static_cast<int>(Pressure::kGreen);
}

int SustainLevel(double signal, const OverloadOptions& o) {
  if (signal >= o.red_exit) return static_cast<int>(Pressure::kRed);
  if (signal >= o.yellow_exit) return static_cast<int>(Pressure::kYellow);
  return static_cast<int>(Pressure::kGreen);
}

}  // namespace

const char* PressureName(Pressure level) {
  switch (level) {
    case Pressure::kGreen:
      return "green";
    case Pressure::kYellow:
      return "yellow";
    case Pressure::kRed:
      return "red";
  }
  return "?";
}

void LoadGovernor::Configure(const OverloadOptions& options) {
  options_ = options;
  // Sanitize rather than reject: these arrive from flags and env, and a
  // governor must never be the thing that refuses to start the server.
  if (options_.capacity == 0) options_.capacity = 1;
  if (options_.wait_budget_ms == 0) options_.wait_budget_ms = 1;
  if (!(options_.ewma_alpha > 0.0) || options_.ewma_alpha > 1.0) {
    options_.ewma_alpha = 0.2;
  }
  // An exit above its enter would make the band un-leavable upward (the
  // level would enter and immediately sustain forever); clamp to the
  // enter so a degenerate config degrades to no hysteresis, not to flap.
  options_.yellow_exit = std::min(options_.yellow_exit, options_.yellow_enter);
  options_.red_exit = std::min(options_.red_exit, options_.red_enter);
  inflight_.store(0, std::memory_order_relaxed);
  ewma_fixed_.store(0, std::memory_order_relaxed);
  work_fixed_.store(0, std::memory_order_relaxed);
  level_.store(static_cast<int>(Pressure::kGreen), std::memory_order_relaxed);
  transitions_.store(0, std::memory_order_relaxed);
}

void LoadGovernor::RecordQueueDepth(uint64_t depth) { Recompute(depth); }

void LoadGovernor::RecordQueueWait(uint64_t wait_ms) {
  const uint64_t sample =
      static_cast<uint64_t>(static_cast<double>(wait_ms) * kEwmaScale);
  uint64_t seen = ewma_fixed_.load(std::memory_order_relaxed);
  uint64_t next;
  do {
    next = static_cast<uint64_t>((1.0 - options_.ewma_alpha) *
                                     static_cast<double>(seen) +
                                 options_.ewma_alpha *
                                     static_cast<double>(sample));
  } while (!ewma_fixed_.compare_exchange_weak(seen, next,
                                              std::memory_order_relaxed));
  Recompute(0);
}

void LoadGovernor::RecordWorkCost(double cost_ms) {
  const uint64_t sample =
      static_cast<uint64_t>(std::max(cost_ms, 0.0) * kEwmaScale);
  uint64_t seen = work_fixed_.load(std::memory_order_relaxed);
  uint64_t next;
  do {
    next = static_cast<uint64_t>((1.0 - options_.ewma_alpha) *
                                     static_cast<double>(seen) +
                                 options_.ewma_alpha *
                                     static_cast<double>(sample));
  } while (!work_fixed_.compare_exchange_weak(seen, next,
                                              std::memory_order_relaxed));
  Recompute(0);
}

void LoadGovernor::Recompute(uint64_t depth) {
  const double occupancy =
      static_cast<double>(depth + inflight_.load(std::memory_order_relaxed)) /
      static_cast<double>(options_.capacity);
  const double wait = wait_ewma_ms() /
                      static_cast<double>(options_.wait_budget_ms);
  const double work = work_ewma_ms() /
                      static_cast<double>(options_.wait_budget_ms);
  const double signal = std::max({occupancy, wait, work});
  // Hysteresis step: rise to any met enter band immediately, fall only
  // once the current band's exit no longer holds. The CAS keeps the
  // transition count honest under concurrent feeds; a lost race just
  // means the other feed's (equally valid) level won.
  int cur = level_.load(std::memory_order_relaxed);
  for (;;) {
    const int next = std::max(EnterLevel(signal, options_),
                              std::min(cur, SustainLevel(signal, options_)));
    if (next == cur) return;
    if (level_.compare_exchange_weak(cur, next, std::memory_order_relaxed)) {
      transitions_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}

uint64_t LoadGovernor::retry_after_ms() const {
  return options_.base_retry_after_ms
         << level_.load(std::memory_order_relaxed);
}

double LoadGovernor::wait_ewma_ms() const {
  return static_cast<double>(ewma_fixed_.load(std::memory_order_relaxed)) /
         kEwmaScale;
}

double LoadGovernor::work_ewma_ms() const {
  return static_cast<double>(work_fixed_.load(std::memory_order_relaxed)) /
         kEwmaScale;
}

RoutingMode DegradeForPressure(RoutingMode requested, Pressure level) {
  if (requested != RoutingMode::kAuto) return requested;  // never silently
  switch (level) {
    case Pressure::kGreen:
      return RoutingMode::kAuto;
    case Pressure::kYellow:
      return RoutingMode::kInterval;
    case Pressure::kRed:
      return RoutingMode::kSample;
  }
  return requested;
}

}  // namespace serve
}  // namespace gmc
