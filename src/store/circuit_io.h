// Save / load / mmap for the on-disk circuit format (circuit_format.h).
//
// Three ways to get a circuit across a process boundary:
//   * SaveCircuit — atomically writes one circuit (plus the CNF it was
//     compiled from) to a file: temp file in the target directory, fsync,
//     rename, so readers never observe a half-written store entry.
//   * LoadCircuit — reads, validates (checksum + full structural bounds
//     check), and materializes an owning NnfCircuit. The expensive step a
//     warm start replaces is COMPILATION; this is one linear decode.
//   * MappedCircuitView — mmap(PROT_READ) of the same file, validated the
//     same way, evaluable IN PLACE through the shared walk core with zero
//     deserialization. N replicas mapping one store directory share a
//     single page-cache copy of every circuit.
//
// Every reader rejects — with a clean error string, no UB, no partial
// state — truncated files, flipped bits anywhere (checksum), version or
// magic mismatches, and structurally invalid arenas (out-of-range child
// ids, children not preceding parents, bad kinds/roots/counts). In debug
// builds, loads additionally re-fingerprint the decoded circuit against
// the header (NnfCircuit::Fingerprint round-trip check).

#ifndef GMC_STORE_CIRCUIT_IO_H_
#define GMC_STORE_CIRCUIT_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "compile/nnf.h"
#include "compile/nnf_walk.h"
#include "compile/vtree.h"
#include "lineage/boolean_formula.h"

namespace gmc {
namespace store {

/// A validated circuit image decoded from a file (LoadCircuit) — the
/// circuit, the CNF it answers, and the provenance the header carries.
struct LoadedCircuit {
  NnfCircuit circuit;
  Cnf cnf;
  OrderHeuristic order = OrderHeuristic::kDefault;
  uint64_t cnf_hash = 0;
  uint64_t fingerprint = 0;
};

/// Serializes `circuit` (compiled from `cnf` under `order`) into the
/// format's byte image. Deterministic: same circuit + CNF → same bytes.
std::vector<uint8_t> EncodeCircuit(const NnfCircuit& circuit, const Cnf& cnf,
                                   OrderHeuristic order);

/// Validates and decodes a byte image. Returns false (with *error set, out
/// untouched beyond scratch) on ANY malformation; never aborts on bad
/// bytes — corrupt stores must degrade to recompilation, not crashes.
bool DecodeCircuit(const uint8_t* data, size_t size, LoadedCircuit* out,
                   std::string* error);

/// Atomic save: writes the encoded image to `<path>.tmp.<pid>` in the
/// destination directory, fsyncs, then renames over `path`. Returns false
/// with *error on any I/O failure (the temp file is unlinked).
bool SaveCircuit(const NnfCircuit& circuit, const Cnf& cnf,
                 OrderHeuristic order, const std::string& path,
                 std::string* error);

/// Reads + validates + materializes. See LoadedCircuit.
bool LoadCircuit(const std::string& path, LoadedCircuit* out,
                 std::string* error);

/// A read-only mmap of one store file, validated on open and evaluable in
/// place: view() points straight into the mapping, so EvaluateBatch{,
/// Dyadic,Double} walk the file's pages with zero copies — the walk code
/// is the same the in-memory circuit runs, hence bit-identical results.
///
/// Move-only RAII (the mapping unmaps on destruction); the view and
/// everything it points at die with the object. Thread safety: const
/// after Open, safe for concurrent evaluation from any number of threads.
class MappedCircuitView {
 public:
  MappedCircuitView() = default;
  ~MappedCircuitView();
  MappedCircuitView(MappedCircuitView&& other) noexcept;
  MappedCircuitView& operator=(MappedCircuitView&& other) noexcept;
  MappedCircuitView(const MappedCircuitView&) = delete;
  MappedCircuitView& operator=(const MappedCircuitView&) = delete;

  /// Maps and validates `path`. On failure returns false with *error set
  /// and leaves the object empty (ok() == false).
  bool Open(const std::string& path, std::string* error);

  bool ok() const { return data_ != nullptr; }
  /// The circuit, as a walk view into the mapping. Requires ok().
  const CircuitWalkView& view() const { return view_; }

  uint64_t cnf_hash() const { return cnf_hash_; }
  uint64_t fingerprint() const { return fingerprint_; }
  OrderHeuristic order() const { return order_; }
  size_t file_size() const { return size_; }

  /// The source CNF, decoded from the embedded section (exact-match
  /// verification of store hits; one allocation per clause). Requires ok().
  Cnf DecodeCnf() const;

  /// Evaluation, straight off the mapping (see compile/nnf_walk.h for
  /// semantics — these are the same walks NnfCircuit delegates to).
  Rational Evaluate(const std::vector<Rational>& probabilities) const;
  std::vector<Rational> EvaluateBatch(const WeightMatrix& weights,
                                      int num_threads = 0) const;
  std::vector<Rational> EvaluateBatchDyadic(
      const WeightMatrix& weights, int num_threads = 0,
      DyadicBatchStats* stats = nullptr) const;
  std::vector<double> EvaluateBatchDouble(const WeightMatrix& weights,
                                          int recheck_stride = 0,
                                          double recheck_tolerance = 1e-9,
                                          int num_threads = 0) const;

 private:
  void Reset();

  const uint8_t* data_ = nullptr;  // mmap base; non-null iff ok()
  size_t size_ = 0;
  CircuitWalkView view_;
  uint64_t cnf_hash_ = 0;
  uint64_t fingerprint_ = 0;
  OrderHeuristic order_ = OrderHeuristic::kDefault;
  const int32_t* clause_lengths_ = nullptr;
  const int32_t* clause_vars_ = nullptr;
  int32_t num_clauses_ = 0;
  int32_t cnf_num_vars_ = 0;
  size_t num_clause_vars_ = 0;
};

}  // namespace store
}  // namespace gmc

#endif  // GMC_STORE_CIRCUIT_IO_H_
