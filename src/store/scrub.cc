#include "store/scrub.h"

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <vector>

#include "store/circuit_format.h"
#include "store/circuit_io.h"
#include "store/circuit_store.h"
#include "util/fault.h"

namespace gmc {
namespace store {

namespace {

std::string DirName(const std::string& path) {
  const size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

std::string BaseName(const std::string& path) {
  const size_t slash = path.rfind('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

// Reads the whole file. False on any I/O failure (treated as transient by
// callers: only bytes we actually READ can prove durable corruption).
bool ReadAll(const std::string& path, std::vector<uint8_t>* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return false;
  }
  out->resize(static_cast<size_t>(st.st_size));
  size_t off = 0;
  while (off < out->size()) {
    const ssize_t n =
        ::read(fd, out->data() + off, out->size() - off);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ::close(fd);
      return false;
    }
    off += static_cast<size_t>(n);
  }
  ::close(fd);
  return true;
}

// Validates `path`'s bytes with the read path's own decoder, fault-point
// free. Returns true when the file is durably invalid and fills *reason;
// false when healthy OR unreadable (unreadable is transient, not corrupt).
bool DurablyInvalid(const std::string& path, std::string* reason) {
  std::vector<uint8_t> bytes;
  if (!ReadAll(path, &bytes)) return false;
  LoadedCircuit decoded;
  std::string error;
  if (DecodeCircuit(bytes.data(), bytes.size(), &decoded, &error)) {
    return false;
  }
  *reason = error;
  return true;
}

// A SaveCircuit temp name is "<final>.tmp.<pid>.<counter>"; extracts the
// writer pid. False on any other shape (not ours to judge — keep it).
bool ParseTempWriterPid(const std::string& name, pid_t* pid) {
  const size_t tag = name.rfind(".tmp.");
  if (tag == std::string::npos) return false;
  const size_t pid_start = tag + 5;
  const size_t pid_end = name.find('.', pid_start);
  if (pid_end == std::string::npos || pid_end == pid_start) return false;
  long value = 0;
  for (size_t i = pid_start; i < pid_end; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + (name[i] - '0');
    if (value > 4194304 * 16) return false;  // way past any pid_max
  }
  // The counter tail must be digits too, or this is not a SaveCircuit temp.
  if (pid_end + 1 >= name.size()) return false;
  for (size_t i = pid_end + 1; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
  }
  *pid = static_cast<pid_t>(value);
  return true;
}

}  // namespace

bool QuarantineFile(const std::string& path, const std::string& reason,
                    std::string* error) {
  const std::string quarantine_dir =
      DirName(path) + "/" + kQuarantineDirName;
  std::string mkdir_error;
  if (!EnsureDirectory(quarantine_dir, &mkdir_error)) {
    if (error != nullptr) *error = mkdir_error;
    return false;
  }
  const std::string target = quarantine_dir + "/" + BaseName(path);
  // Fault point: the quarantine move is itself an I/O operation on a
  // possibly sick filesystem. A fired point aliases a failed rename — the
  // file stays where it is and the read path keeps degrading it to a
  // miss, the pre-scrub backstop.
  if (fault::ShouldFail(fault::Point::kStoreScrub) ||
      ::rename(path.c_str(), target.c_str()) != 0) {
    if (error != nullptr) {
      *error = "rename(" + path + " -> " + target +
               "): " + std::strerror(errno);
    }
    return false;
  }
  // The reason file is best-effort forensics: its loss never un-does the
  // quarantine (the move above is the part correctness needs).
  const std::string reason_path = target + ".reason";
  const int fd =
      ::open(reason_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    const std::string text = reason + "\n";
    size_t off = 0;
    while (off < text.size()) {
      const ssize_t n = ::write(fd, text.data() + off, text.size() - off);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;
      off += static_cast<size_t>(n);
    }
    ::close(fd);
  }
  return true;
}

bool QuarantineIfCorrupt(const std::string& path) {
  std::string reason;
  if (!DurablyInvalid(path, &reason)) return false;
  return QuarantineFile(path, reason, nullptr);
}

ScrubReport ScrubStore(const std::string& directory) {
  ScrubReport report;
  DIR* dir = ::opendir(directory.c_str());
  if (dir == nullptr) return report;
  const size_t ext_len = std::strlen(kFileExtension);
  std::vector<std::string> entries;
  std::vector<std::string> temps;
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    if (name.size() > ext_len &&
        name.compare(name.size() - ext_len, ext_len, kFileExtension) == 0) {
      entries.push_back(name);
    } else if (name.find(".tmp.") != std::string::npos) {
      temps.push_back(name);
    }
  }
  ::closedir(dir);

  for (const std::string& name : entries) {
    const std::string path = directory + "/" + name;
    ++report.scanned;
    std::string reason;
    if (!DurablyInvalid(path, &reason)) {
      ++report.healthy;
      continue;
    }
    if (QuarantineFile(path, reason, nullptr)) {
      ++report.quarantined;
    } else {
      ++report.quarantine_failures;
    }
  }

  for (const std::string& name : temps) {
    const std::string path = directory + "/" + name;
    pid_t writer = 0;
    if (!ParseTempWriterPid(name, &writer)) {
      ++report.orphan_tmps_kept;  // not a SaveCircuit temp; not ours
      continue;
    }
    // kill(pid, 0): 0 or EPERM mean the writer (or at least SOME process
    // with that pid) is alive — a concurrent replica mid-save must keep
    // its temp file. Only a provably dead writer's debris is removed.
    if (::kill(writer, 0) == 0 || errno == EPERM) {
      ++report.orphan_tmps_kept;
      continue;
    }
    if (::unlink(path.c_str()) == 0) {
      ++report.orphan_tmps_removed;
    } else {
      ++report.orphan_tmps_kept;
    }
  }
  return report;
}

}  // namespace store
}  // namespace gmc
