#include "store/circuit_io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>
#include <utility>

#include "store/circuit_format.h"
#include "util/check.h"
#include "util/fault.h"

namespace gmc {
namespace store {

namespace {

// Bounded retry policy for TRANSIENT I/O errors. EINTR retries immediately
// and never consumes an attempt (a signal is not a resource problem);
// EAGAIN and ENOSPC back off exponentially — 1, 4, 16 ms plus a
// deterministic per-process jitter so N replicas hammering one full disk
// don't retry in lockstep — for up to three attempts before the error is
// surfaced to the caller as permanent. Everything else fails immediately:
// retrying EIO or EBADF only hides real bugs.
class TransientRetry {
 public:
  bool ShouldRetry(int err) {
    if (err == EINTR) return true;
    if (err != EAGAIN && err != ENOSPC) return false;
    if (attempts_ >= kMaxAttempts) return false;
    const uint64_t base_us = 1000ull << (2 * attempts_);
    // splitmix64 finalizer of (pid, attempt): deterministic for a process,
    // decorrelated across processes — no wall clock, no global RNG.
    uint64_t z = (static_cast<uint64_t>(::getpid()) << 8) |
                 static_cast<uint64_t>(attempts_);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    const uint64_t jitter_us = (z ^ (z >> 31)) % 500;
    std::this_thread::sleep_for(
        std::chrono::microseconds(base_us + jitter_us));
    ++attempts_;
    return true;
  }

 private:
  static constexpr int kMaxAttempts = 3;
  int attempts_ = 0;
};

// One decoded-and-validated image: typed pointers into the caller's bytes.
// Produced only by ValidateImage; every field is safe to walk afterwards.
struct ParsedImage {
  FileHeader header;
  CircuitWalkView view;
  const int32_t* clause_lengths = nullptr;
  const int32_t* clause_vars = nullptr;
  size_t num_clause_vars = 0;
};

bool Fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

// The full admission check for untrusted bytes, in widening order: sizes
// before sections, checksum before structure, structure before the
// fingerprint walk. Nothing here aborts, reads out of bounds, or trusts a
// header field it has not yet proven consistent — a corrupt store entry
// must cost a recompile, never a crash.
bool ValidateImage(const uint8_t* data, size_t size, ParsedImage* out,
                   std::string* error) {
  if (size < sizeof(FileHeader)) {
    return Fail(error, "file smaller than the header (" +
                           std::to_string(size) + " bytes)");
  }
  FileHeader h;
  std::memcpy(&h, data, sizeof(h));
  if (std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0) {
    return Fail(error, "bad magic (not a circuit store file)");
  }
  if (h.version != kFormatVersion) {
    return Fail(error, "format version " + std::to_string(h.version) +
                           " (this build reads only version " +
                           std::to_string(kFormatVersion) + ")");
  }
  if (ChecksumFile(data, size) != h.checksum) {
    return Fail(error, "checksum mismatch (file corrupt or truncated)");
  }
  if (h.order_tag > static_cast<uint32_t>(OrderHeuristic::kBalanced)) {
    return Fail(error, "unknown order heuristic tag " +
                           std::to_string(h.order_tag));
  }

  // Section extents. All arithmetic stays in size_t with divide-side bounds
  // so no multiplication can wrap.
  size_t avail = size - sizeof(FileHeader);
  if (h.num_nodes < 2 || h.num_nodes > avail / sizeof(FlatNode)) {
    return Fail(error, "node count " + std::to_string(h.num_nodes) +
                           " inconsistent with file size");
  }
  if (h.num_nodes > static_cast<uint64_t>(INT32_MAX)) {
    return Fail(error, "node count exceeds the id space");
  }
  avail -= static_cast<size_t>(h.num_nodes) * sizeof(FlatNode);
  if (h.num_children > avail / sizeof(int32_t) ||
      h.num_children > static_cast<uint64_t>(INT32_MAX)) {
    return Fail(error, "child pool length " + std::to_string(h.num_children) +
                           " inconsistent with file size");
  }
  avail -= static_cast<size_t>(h.num_children) * sizeof(int32_t);
  if (h.num_clauses < 0 ||
      static_cast<uint64_t>(h.num_clauses) > avail / sizeof(int32_t)) {
    return Fail(error, "clause count inconsistent with file size");
  }
  avail -= static_cast<size_t>(h.num_clauses) * sizeof(int32_t);
  if (avail % sizeof(int32_t) != 0) {
    return Fail(error, "trailing bytes after the clause sections");
  }
  const size_t num_clause_vars = avail / sizeof(int32_t);

  if (h.root < 0 || static_cast<uint64_t>(h.root) >= h.num_nodes) {
    return Fail(error, "root id out of range");
  }
  if (h.circuit_num_vars < 0 || h.cnf_num_vars < 0) {
    return Fail(error, "negative variable count");
  }
  if (h.reserved != 0) {
    return Fail(error, "nonzero reserved field");
  }

  const FlatNode* nodes =
      reinterpret_cast<const FlatNode*>(data + sizeof(FileHeader));
  const int32_t* children = reinterpret_cast<const int32_t*>(
      data + sizeof(FileHeader) +
      static_cast<size_t>(h.num_nodes) * sizeof(FlatNode));
  const int32_t* clause_lengths =
      children + static_cast<size_t>(h.num_children);
  const int32_t* clause_vars =
      clause_lengths + static_cast<size_t>(h.num_clauses);

  // Per-node structural audit: kinds valid, every edge points strictly
  // downward (children precede parents — the walks' one precondition), AND
  // pool slices in range. After this loop a bottom-up walk cannot read an
  // uninitialized or out-of-range arena slot.
  if (nodes[0].kind != static_cast<uint32_t>(NnfKind::kFalse) ||
      nodes[1].kind != static_cast<uint32_t>(NnfKind::kTrue)) {
    return Fail(error, "nodes 0/1 are not the FALSE/TRUE constants");
  }
  const int32_t num_nodes = static_cast<int32_t>(h.num_nodes);
  for (int32_t id = 2; id < num_nodes; ++id) {
    const FlatNode& n = nodes[id];
    // Range-check the raw word first: NnfKind has a narrower underlying
    // type, so casting an oversized kind would silently truncate.
    if (n.kind > static_cast<uint32_t>(NnfKind::kDecision)) {
      return Fail(error, "node " + std::to_string(id) + ": unknown kind " +
                             std::to_string(n.kind));
    }
    switch (static_cast<NnfKind>(n.kind)) {
      case NnfKind::kVar:
        if (n.var < 0 || n.var >= h.circuit_num_vars) {
          return Fail(error, "node " + std::to_string(id) +
                                 ": variable id out of range");
        }
        break;
      case NnfKind::kDecision:
        if (n.var < 0 || n.var >= h.circuit_num_vars) {
          return Fail(error, "node " + std::to_string(id) +
                                 ": decision variable out of range");
        }
        if (n.a < 0 || n.a >= id || n.b < 0 || n.b >= id) {
          return Fail(error, "node " + std::to_string(id) +
                                 ": decision branch not a predecessor");
        }
        break;
      case NnfKind::kAnd: {
        if (n.b < 2) {
          return Fail(error, "node " + std::to_string(id) +
                                 ": AND with fewer than 2 children");
        }
        if (n.a < 0 ||
            static_cast<uint64_t>(n.a) + static_cast<uint64_t>(n.b) >
                h.num_children) {
          return Fail(error, "node " + std::to_string(id) +
                                 ": child slice outside the pool");
        }
        for (int32_t j = 0; j < n.b; ++j) {
          const int32_t child = children[n.a + j];
          if (child < 0 || child >= id) {
            return Fail(error, "node " + std::to_string(id) +
                                   ": child not a predecessor");
          }
        }
        break;
      }
      default:  // kFalse / kTrue
        return Fail(error, "node " + std::to_string(id) +
                               ": duplicate constant node");
    }
  }

  // Clause sections: lengths non-negative and summing to the var section,
  // every variable id in the CNF's range.
  uint64_t sum = 0;
  for (int32_t c = 0; c < h.num_clauses; ++c) {
    if (clause_lengths[c] < 0) {
      return Fail(error, "negative clause length");
    }
    sum += static_cast<uint64_t>(clause_lengths[c]);
  }
  if (sum != num_clause_vars) {
    return Fail(error, "clause lengths do not sum to the variable section");
  }
  for (size_t i = 0; i < num_clause_vars; ++i) {
    if (clause_vars[i] < 0 || clause_vars[i] >= h.cnf_num_vars) {
      return Fail(error, "clause variable id out of range");
    }
  }

  CircuitWalkView view{nodes,
                       static_cast<size_t>(h.num_nodes),
                       children,
                       static_cast<size_t>(h.num_children),
                       h.root,
                       h.circuit_num_vars};
  // Structure is now proven; the fingerprint walk is safe. It re-derives
  // the order-independent hash and pins it to the header — the save→load
  // round-trip check, run on EVERY read path (one linear pass, cheap next
  // to the checksum scan above).
  if (WalkFingerprint(view) != h.fingerprint) {
    return Fail(error, "fingerprint mismatch (encoder/decoder drift)");
  }

  out->header = h;
  out->view = view;
  out->clause_lengths = clause_lengths;
  out->clause_vars = clause_vars;
  out->num_clause_vars = num_clause_vars;
  return true;
}

Cnf DecodeCnfSections(int32_t cnf_num_vars, int32_t num_clauses,
                      const int32_t* clause_lengths,
                      const int32_t* clause_vars) {
  Cnf cnf;
  cnf.num_vars = cnf_num_vars;
  cnf.clauses.reserve(static_cast<size_t>(num_clauses));
  const int32_t* cursor = clause_vars;
  for (int32_t c = 0; c < num_clauses; ++c) {
    cnf.clauses.emplace_back(cursor, cursor + clause_lengths[c]);
    cursor += clause_lengths[c];
  }
  return cnf;
}

}  // namespace

std::vector<uint8_t> EncodeCircuit(const NnfCircuit& circuit, const Cnf& cnf,
                                   OrderHeuristic order) {
  const FlatCircuit flat = circuit.Flatten();

  size_t num_clause_vars = 0;
  for (const auto& clause : cnf.clauses) num_clause_vars += clause.size();

  FileHeader h{};
  std::memcpy(h.magic, kMagic, sizeof(kMagic));
  h.version = kFormatVersion;
  h.order_tag = static_cast<uint32_t>(order);
  h.cnf_hash = cnf.Hash64();
  h.fingerprint = WalkFingerprint(flat.view());
  h.num_nodes = flat.nodes.size();
  h.num_children = flat.children.size();
  h.root = flat.root;
  h.circuit_num_vars = flat.num_vars;
  h.cnf_num_vars = cnf.num_vars;
  h.num_clauses = static_cast<int32_t>(cnf.clauses.size());

  const size_t total =
      sizeof(FileHeader) + flat.nodes.size() * sizeof(FlatNode) +
      (flat.children.size() + cnf.clauses.size() + num_clause_vars) *
          sizeof(int32_t);
  std::vector<uint8_t> bytes(total);
  uint8_t* cursor = bytes.data();
  std::memcpy(cursor, &h, sizeof(h));
  cursor += sizeof(h);
  std::memcpy(cursor, flat.nodes.data(), flat.nodes.size() * sizeof(FlatNode));
  cursor += flat.nodes.size() * sizeof(FlatNode);
  if (!flat.children.empty()) {  // empty vector data() may be null (UB)
    std::memcpy(cursor, flat.children.data(),
                flat.children.size() * sizeof(int32_t));
  }
  cursor += flat.children.size() * sizeof(int32_t);
  for (const auto& clause : cnf.clauses) {
    const int32_t len = static_cast<int32_t>(clause.size());
    std::memcpy(cursor, &len, sizeof(len));
    cursor += sizeof(len);
  }
  for (const auto& clause : cnf.clauses) {
    for (int var : clause) {
      const int32_t v = static_cast<int32_t>(var);
      std::memcpy(cursor, &v, sizeof(v));
      cursor += sizeof(v);
    }
  }
  GMC_CHECK(cursor == bytes.data() + total);

  const uint64_t checksum = ChecksumFile(bytes.data(), bytes.size());
  std::memcpy(bytes.data() + offsetof(FileHeader, checksum), &checksum,
              sizeof(checksum));
  return bytes;
}

bool DecodeCircuit(const uint8_t* data, size_t size, LoadedCircuit* out,
                   std::string* error) {
  ParsedImage image;
  if (!ValidateImage(data, size, &image, error)) return false;
  out->circuit = NnfCircuit::FromFlat(image.view);
  out->cnf = DecodeCnfSections(image.header.cnf_num_vars,
                               image.header.num_clauses, image.clause_lengths,
                               image.clause_vars);
  out->order = static_cast<OrderHeuristic>(image.header.order_tag);
  out->cnf_hash = image.header.cnf_hash;
  out->fingerprint = image.header.fingerprint;
#ifndef NDEBUG
  // Debug builds double-check that the rebuilt OWNING circuit fingerprints
  // identically — this exercises FromFlat + Flatten, not just the bytes.
  GMC_CHECK_MSG(out->circuit.Fingerprint() == out->fingerprint,
                "store load round-trip drifted");
#endif
  return true;
}

bool SaveCircuit(const NnfCircuit& circuit, const Cnf& cnf,
                 OrderHeuristic order, const std::string& path,
                 std::string* error) {
  if (fault::ShouldFail(fault::Point::kStoreWrite)) {
    return Fail(error, "fault injection: store.write");
  }
  const std::vector<uint8_t> bytes = EncodeCircuit(circuit, cnf, order);

  // Unique temp name per (process, call) so concurrent writers of the same
  // entry never interleave; the rename is atomic, so readers only ever see
  // complete files.
  static std::atomic<uint64_t> counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(counter.fetch_add(1));

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) {
    return Fail(error, "open(" + tmp + "): " + std::strerror(errno));
  }
  TransientRetry retry;
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (retry.ShouldRetry(errno)) continue;
      const std::string msg = std::strerror(errno);
      ::close(fd);
      ::unlink(tmp.c_str());
      return Fail(error, "write(" + tmp + "): " + msg);
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0 || ::close(fd) != 0) {
    const std::string msg = std::strerror(errno);
    ::unlink(tmp.c_str());
    return Fail(error, "fsync(" + tmp + "): " + msg);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string msg = std::strerror(errno);
    ::unlink(tmp.c_str());
    return Fail(error, "rename(" + tmp + " -> " + path + "): " + msg);
  }
  return true;
}

bool LoadCircuit(const std::string& path, LoadedCircuit* out,
                 std::string* error) {
  if (fault::ShouldFail(fault::Point::kStoreRead)) {
    return Fail(error, "fault injection: store.read");
  }
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Fail(error, "open(" + path + "): " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const std::string msg = std::strerror(errno);
    ::close(fd);
    return Fail(error, "fstat(" + path + "): " + msg);
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(st.st_size));
  TransientRetry retry;
  size_t got = 0;
  while (got < bytes.size()) {
    const ssize_t n = ::read(fd, bytes.data() + got, bytes.size() - got);
    if (n < 0 && retry.ShouldRetry(errno)) continue;
    if (n <= 0) {
      ::close(fd);
      return Fail(error, "read(" + path + "): short read");
    }
    got += static_cast<size_t>(n);
  }
  ::close(fd);
  std::string decode_error;
  if (!DecodeCircuit(bytes.data(), bytes.size(), out, &decode_error)) {
    return Fail(error, path + ": " + decode_error);
  }
  return true;
}

MappedCircuitView::~MappedCircuitView() { Reset(); }

MappedCircuitView::MappedCircuitView(MappedCircuitView&& other) noexcept {
  *this = std::move(other);
}

MappedCircuitView& MappedCircuitView::operator=(
    MappedCircuitView&& other) noexcept {
  if (this == &other) return *this;
  Reset();
  data_ = other.data_;
  size_ = other.size_;
  view_ = other.view_;
  cnf_hash_ = other.cnf_hash_;
  fingerprint_ = other.fingerprint_;
  order_ = other.order_;
  clause_lengths_ = other.clause_lengths_;
  clause_vars_ = other.clause_vars_;
  num_clauses_ = other.num_clauses_;
  cnf_num_vars_ = other.cnf_num_vars_;
  num_clause_vars_ = other.num_clause_vars_;
  other.data_ = nullptr;
  other.size_ = 0;
  other.view_ = CircuitWalkView{};
  return *this;
}

void MappedCircuitView::Reset() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
    data_ = nullptr;
    size_ = 0;
    view_ = CircuitWalkView{};
  }
}

bool MappedCircuitView::Open(const std::string& path, std::string* error) {
  Reset();
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Fail(error, "open(" + path + "): " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const std::string msg = std::strerror(errno);
    ::close(fd);
    return Fail(error, "fstat(" + path + "): " + msg);
  }
  if (st.st_size <= 0) {
    ::close(fd);
    return Fail(error, path + ": empty file");
  }
  const size_t size = static_cast<size_t>(st.st_size);
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (base == MAP_FAILED) {
    return Fail(error, "mmap(" + path + "): " + std::strerror(errno));
  }

  ParsedImage image;
  std::string validate_error;
  if (!ValidateImage(static_cast<const uint8_t*>(base), size, &image,
                     &validate_error)) {
    ::munmap(base, size);
    return Fail(error, path + ": " + validate_error);
  }

  data_ = static_cast<const uint8_t*>(base);
  size_ = size;
  view_ = image.view;
  cnf_hash_ = image.header.cnf_hash;
  fingerprint_ = image.header.fingerprint;
  order_ = static_cast<OrderHeuristic>(image.header.order_tag);
  clause_lengths_ = image.clause_lengths;
  clause_vars_ = image.clause_vars;
  num_clauses_ = image.header.num_clauses;
  cnf_num_vars_ = image.header.cnf_num_vars;
  num_clause_vars_ = image.num_clause_vars;
  return true;
}

Cnf MappedCircuitView::DecodeCnf() const {
  GMC_CHECK(ok());
  return DecodeCnfSections(cnf_num_vars_, num_clauses_, clause_lengths_,
                           clause_vars_);
}

Rational MappedCircuitView::Evaluate(
    const std::vector<Rational>& probabilities) const {
  GMC_CHECK(ok());
  return WalkEvaluate(view_, probabilities);
}

std::vector<Rational> MappedCircuitView::EvaluateBatch(
    const WeightMatrix& weights, int num_threads) const {
  GMC_CHECK(ok());
  return WalkEvaluateBatch(view_, weights, num_threads);
}

std::vector<Rational> MappedCircuitView::EvaluateBatchDyadic(
    const WeightMatrix& weights, int num_threads,
    DyadicBatchStats* stats) const {
  GMC_CHECK(ok());
  return WalkEvaluateBatchDyadic(view_, weights, num_threads, stats);
}

std::vector<double> MappedCircuitView::EvaluateBatchDouble(
    const WeightMatrix& weights, int recheck_stride, double recheck_tolerance,
    int num_threads) const {
  GMC_CHECK(ok());
  return WalkEvaluateBatchDouble(view_, weights, recheck_stride,
                                 recheck_tolerance, num_threads);
}

}  // namespace store
}  // namespace gmc
