// A directory of compiled circuits, keyed by CNF hash — the persistence
// layer behind CircuitCache's warm starts.
//
// One file per circuit, named <Cnf::Hash64 as 16 hex digits>.gmcc. The
// hash only NAMES the file; correctness never rests on it — TryLoad
// verifies a candidate by exact clause-list comparison against the
// requested CNF (the same equality the in-memory cache uses), so a hash
// collision or a stale file degrades to a miss, never a wrong circuit.
//
// The store is a cache, not a database: every failure mode (missing file,
// corrupt bytes, version mismatch, clause mismatch) is reported as a
// typed non-fatal result and the caller recompiles. Writers go through
// SaveCircuit's temp-file + atomic-rename, so concurrent readers,
// writers, and WarmFrom scans never observe partial files.
//
// Thread safety: immutable after construction (a directory string), so
// all methods are safe to call concurrently.

#ifndef GMC_STORE_CIRCUIT_STORE_H_
#define GMC_STORE_CIRCUIT_STORE_H_

#include <string>
#include <vector>

#include "compile/nnf.h"
#include "compile/vtree.h"
#include "lineage/boolean_formula.h"
#include "store/circuit_io.h"

namespace gmc {
namespace store {

/// Outcome of a read-through probe. kMissing is the cold-cache case.
/// kRejected means the file's BYTES are invalid (corruption, torn write,
/// version skew) — a self-healing cache may quarantine it (store/scrub.h).
/// kMismatch means the bytes are a perfectly valid circuit for a
/// DIFFERENT CNF (a 64-bit hash collision, or a file hand-renamed into
/// place) — it must never be quarantined: it may be someone else's valid
/// entry. Both count as rejections in CircuitCache::Stats.
enum class StoreLookup { kLoaded, kMissing, kRejected, kMismatch };

class CircuitStore {
 public:
  /// A store rooted at `directory`. The directory is created (with
  /// parents) on the first Save, not here — constructing a store for a
  /// directory that never materializes is free.
  explicit CircuitStore(std::string directory);

  const std::string& directory() const { return directory_; }

  /// The file path `cnf`'s circuit would live at.
  std::string PathFor(const Cnf& cnf) const;

  /// Probes the store for `cnf`'s circuit. kLoaded fills *circuit (and
  /// *order if non-null) after verifying the file's embedded CNF matches
  /// `cnf` clause-for-clause. kMissing: no file. kRejected: file present
  /// but invalid. kMismatch: valid file for a different CNF. *error says
  /// why for both rejection kinds.
  StoreLookup TryLoad(const Cnf& cnf, NnfCircuit* circuit,
                      OrderHeuristic* order, std::string* error) const;

  /// Write-through: persists one compiled circuit (atomic rename; see
  /// circuit_io.h). Creates the store directory if needed. Returns false
  /// with *error on I/O failure — callers treat that as a lost cache
  /// write, never as a query failure.
  bool Save(const NnfCircuit& circuit, const Cnf& cnf, OrderHeuristic order,
            std::string* error) const;

  /// Every .gmcc path currently in the store directory (unvalidated —
  /// WarmFrom validates as it loads). Missing directory yields an empty
  /// list.
  std::vector<std::string> ListEntries() const;

 private:
  std::string directory_;
};

/// The GMC_STORE environment knob, read once per process (mirrors
/// GMC_ORDER's plumbing in compile/vtree.h): the store directory newly
/// constructed CircuitCaches attach read-through + write-through, or ""
/// for no store. SetDefaultStorePath overrides it (tests).
std::string DefaultStorePath();
void SetDefaultStorePath(const std::string& path);

/// mkdir -p. Returns false with *error on failure (EEXIST is success).
bool EnsureDirectory(const std::string& path, std::string* error);

}  // namespace store
}  // namespace gmc

#endif  // GMC_STORE_CIRCUIT_STORE_H_
