#include "store/circuit_store.h"

#include <dirent.h>
#include <sys/stat.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <utility>

#include "store/circuit_format.h"

namespace gmc {
namespace store {

namespace {

std::string HashFileName(uint64_t hash) {
  static const char kHex[] = "0123456789abcdef";
  std::string name(16, '0');
  for (int i = 15; i >= 0; --i) {
    name[i] = kHex[hash & 0xf];
    hash >>= 4;
  }
  return name + kFileExtension;
}

// Process-wide default store directory: GMC_STORE, read once, overridable
// for tests. Same shape as the GMC_ORDER plumbing (compile/vtree.cc).
std::mutex g_default_store_mu;
std::string* g_default_store_path = nullptr;
bool g_default_store_initialized = false;

}  // namespace

std::string DefaultStorePath() {
  std::lock_guard<std::mutex> lock(g_default_store_mu);
  if (!g_default_store_initialized) {
    const char* env = std::getenv("GMC_STORE");
    g_default_store_path = new std::string(env != nullptr ? env : "");
    g_default_store_initialized = true;
  }
  return *g_default_store_path;
}

void SetDefaultStorePath(const std::string& path) {
  std::lock_guard<std::mutex> lock(g_default_store_mu);
  if (g_default_store_path == nullptr) {
    g_default_store_path = new std::string(path);
  } else {
    *g_default_store_path = path;
  }
  g_default_store_initialized = true;
}

bool EnsureDirectory(const std::string& path, std::string* error) {
  if (path.empty()) {
    if (error != nullptr) *error = "empty store directory";
    return false;
  }
  // mkdir -p: create each prefix in turn; EEXIST at any level is fine.
  for (size_t pos = 1; pos <= path.size(); ++pos) {
    if (pos != path.size() && path[pos] != '/') continue;
    const std::string prefix = path.substr(0, pos);
    if (prefix.empty()) continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      if (error != nullptr) {
        *error = "mkdir(" + prefix + "): " + std::strerror(errno);
      }
      return false;
    }
  }
  return true;
}

CircuitStore::CircuitStore(std::string directory)
    : directory_(std::move(directory)) {}

std::string CircuitStore::PathFor(const Cnf& cnf) const {
  return directory_ + "/" + HashFileName(cnf.Hash64());
}

StoreLookup CircuitStore::TryLoad(const Cnf& cnf, NnfCircuit* circuit,
                                  OrderHeuristic* order,
                                  std::string* error) const {
  const std::string path = PathFor(cnf);
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    if (error != nullptr) *error = "no store entry";
    return StoreLookup::kMissing;
  }
  LoadedCircuit loaded;
  if (!LoadCircuit(path, &loaded, error)) {
    return StoreLookup::kRejected;
  }
  // The hash named the file; the CLAUSES decide the hit. A 64-bit
  // collision (or a file hand-renamed into place) lands here and falls
  // back to compilation.
  if (!(CnfClauseEq{}(loaded.cnf, cnf))) {
    if (error != nullptr) {
      *error = path + ": embedded CNF does not match the requested formula";
    }
    return StoreLookup::kMismatch;
  }
  *circuit = std::move(loaded.circuit);
  if (order != nullptr) *order = loaded.order;
  return StoreLookup::kLoaded;
}

bool CircuitStore::Save(const NnfCircuit& circuit, const Cnf& cnf,
                        OrderHeuristic order, std::string* error) const {
  if (!EnsureDirectory(directory_, error)) return false;
  return SaveCircuit(circuit, cnf, order, PathFor(cnf), error);
}

std::vector<std::string> CircuitStore::ListEntries() const {
  std::vector<std::string> paths;
  DIR* dir = ::opendir(directory_.c_str());
  if (dir == nullptr) return paths;
  const size_t ext_len = std::strlen(kFileExtension);
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name.size() <= ext_len ||
        name.compare(name.size() - ext_len, ext_len, kFileExtension) != 0) {
      continue;
    }
    paths.push_back(directory_ + "/" + name);
  }
  ::closedir(dir);
  return paths;
}

}  // namespace store
}  // namespace gmc
