// The on-disk circuit format: a versioned, little-endian, arena-laid-out
// d-DNNF container (".gmcc" files of the circuit store).
//
// Design goals, in order:
//   1. A loaded file IS an evaluable circuit: the node section uses the
//      exact FlatNode record the walk core (compile/nnf_walk.h) consumes,
//      so an mmap-ed file evaluates with zero deserialization and N
//      replicas share one read-only page-cache copy.
//   2. Corruption is detected, never executed: a full-file checksum plus
//      per-node bounds validation run before any walk touches the data.
//   3. Self-describing: the grounded CNF the circuit was compiled from is
//      embedded verbatim, so (a) a store hit is verified by EXACT clause
//      comparison — the 64-bit key hash only names the file, it never
//      decides correctness — and (b) a cold cache can warm itself from a
//      directory with no other input.
//
// Layout (all integers little-endian; offsets in bytes):
//
//   offset  size  field
//   ------  ----  -----------------------------------------------------
//        0     8  magic "gmccirc\0"
//        8     4  format version (currently 1)
//       12     4  order heuristic tag (OrderHeuristic; informational)
//       16     8  Cnf::Hash64 of the source CNF (names the store file)
//       24     8  circuit fingerprint (WalkFingerprint; round-trip check)
//       32     8  num_nodes        (N)
//       40     8  num_children     (C — kAnd child-id pool length)
//       48     4  root node id
//       52     4  num_vars of the circuit
//       56     4  num_vars of the source CNF
//       60     4  num_clauses of the source CNF (M)
//       64     8  reserved (zero)
//       72     8  checksum: FNV-1a over every other byte of the file
//       80   16N  node records (FlatNode: kind u32, var i32, a i32, b i32)
//    +16N    4C  child-id pool (i32 each)
//     +4C    4M  clause lengths (i32 each)
//        +  4ΣL  clause variable ids, clause by clause, sorted within
//
// Versioning policy: the magic never changes; `version` bumps on ANY
// layout change, and readers reject every version they were not built
// for — no in-place migration, a mismatched file is simply recompiled
// (the store is a cache, not a database). See docs/SERVING.md for the
// compatibility contract.
//
// The format is defined little-endian. Big-endian hosts would need a
// byte-swapping reader, which nothing targets today; the static_assert
// makes the assumption loud instead of silently corrupt.

#ifndef GMC_STORE_CIRCUIT_FORMAT_H_
#define GMC_STORE_CIRCUIT_FORMAT_H_

#include <bit>
#include <cstddef>
#include <cstdint>

namespace gmc {
namespace store {

static_assert(std::endian::native == std::endian::little,
              "the circuit store format is little-endian; add a swapping "
              "reader before enabling it on big-endian hosts");

inline constexpr char kMagic[8] = {'g', 'm', 'c', 'c', 'i', 'r', 'c', '\0'};
inline constexpr uint32_t kFormatVersion = 1;
/// Store file extension (files are named <hash64-hex>.gmcc).
inline constexpr char kFileExtension[] = ".gmcc";

/// The fixed-size file header. Trivially copyable, laid out exactly as the
/// table above (static_asserts below pin every offset).
struct FileHeader {
  char magic[8];
  uint32_t version;
  uint32_t order_tag;
  uint64_t cnf_hash;
  uint64_t fingerprint;
  uint64_t num_nodes;
  uint64_t num_children;
  int32_t root;
  int32_t circuit_num_vars;
  int32_t cnf_num_vars;
  int32_t num_clauses;
  uint64_t reserved;
  uint64_t checksum;
};

static_assert(sizeof(FileHeader) == 80, "header layout drifted");
static_assert(offsetof(FileHeader, version) == 8);
static_assert(offsetof(FileHeader, order_tag) == 12);
static_assert(offsetof(FileHeader, cnf_hash) == 16);
static_assert(offsetof(FileHeader, fingerprint) == 24);
static_assert(offsetof(FileHeader, num_nodes) == 32);
static_assert(offsetof(FileHeader, num_children) == 40);
static_assert(offsetof(FileHeader, root) == 48);
static_assert(offsetof(FileHeader, circuit_num_vars) == 52);
static_assert(offsetof(FileHeader, cnf_num_vars) == 56);
static_assert(offsetof(FileHeader, num_clauses) == 60);
static_assert(offsetof(FileHeader, reserved) == 64);
static_assert(offsetof(FileHeader, checksum) == 72);

/// FNV-1a over a byte range — the file checksum primitive. The checksum
/// field itself is skipped by ChecksumFile below, never by this.
inline uint64_t Fnv1a(const uint8_t* data, size_t size,
                      uint64_t seed = 14695981039346656037ull) {
  uint64_t h = seed;
  for (size_t i = 0; i < size; ++i) {
    h = (h ^ data[i]) * 1099511628211ull;
  }
  return h;
}

/// Checksum of a whole file image with the 8 checksum bytes themselves
/// excluded (so the field can live inside the region it protects).
inline uint64_t ChecksumFile(const uint8_t* data, size_t size) {
  constexpr size_t kBegin = offsetof(FileHeader, checksum);
  constexpr size_t kEnd = kBegin + sizeof(uint64_t);
  uint64_t h = Fnv1a(data, kBegin);
  return Fnv1a(data + kEnd, size - kEnd, h);
}

}  // namespace store
}  // namespace gmc

#endif  // GMC_STORE_CIRCUIT_FORMAT_H_
