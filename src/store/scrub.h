// Crash-safe store recovery: scrub and quarantine for .gmcc directories.
//
// SaveCircuit's temp-file + fsync + rename protocol means a crash can
// leave exactly two kinds of debris in a store directory:
//
//   * orphaned ".tmp.<pid>.<counter>" files — a writer died between open
//     and rename; the bytes are garbage and the final path was never
//     touched, and
//   * invalid ".gmcc" files — torn by a filesystem without atomic rename,
//     flipped by bit rot, or stale after a format-version bump.
//
// Before this layer, an invalid entry degraded to a per-read miss: every
// cold process re-read, re-rejected, and re-compiled, forever — the
// corruption was survived but never REPAIRED. ScrubStore is the repair:
// it validates every entry with the same circuit_io validation the read
// path trusts (magic, version, checksum, structural bounds, fingerprint),
// moves invalid files into "<directory>/quarantine/" next to a
// "<name>.reason" text file saying why (an operator can inspect or
// restore them; nothing is silently deleted), and removes orphaned temp
// files whose writing process is gone. CircuitStore consumers run it at
// startup; CircuitCache additionally quarantines on every read-path
// rejection (QuarantineIfCorrupt), so one bad file costs one recompile
// total — self-healing instead of degrade-to-miss.
//
// Two deliberate safety properties:
//
//   * QuarantineIfCorrupt re-reads and re-validates WITHOUT the
//     store.read fault point: an injected (or genuinely transient) read
//     failure must never quarantine a healthy file. Only bytes that are
//     durably invalid move.
//   * Orphan removal checks writer liveness (kill(pid, 0) on the pid
//     embedded in the temp name): a concurrent replica mid-save keeps its
//     temp file.
//
// The quarantine move itself carries the store.scrub fault point; a
// failed move leaves the file in place (counted, and the read path keeps
// degrading it to a miss — the pre-scrub behaviour is the backstop).

#ifndef GMC_STORE_SCRUB_H_
#define GMC_STORE_SCRUB_H_

#include <cstdint>
#include <string>

namespace gmc {
namespace store {

/// Name of the quarantine subdirectory under a store root.
inline constexpr char kQuarantineDirName[] = "quarantine";

/// One scrub pass's outcome, all counters cumulative over that pass.
struct ScrubReport {
  uint64_t scanned = 0;      ///< .gmcc entries examined
  uint64_t healthy = 0;      ///< entries that validated clean
  uint64_t quarantined = 0;  ///< invalid entries moved to quarantine/
  /// Invalid entries whose quarantine move failed (store.scrub fault or
  /// real I/O failure) — left in place; reads degrade them to misses.
  uint64_t quarantine_failures = 0;
  uint64_t orphan_tmps_removed = 0;  ///< dead-writer temp files unlinked
  uint64_t orphan_tmps_kept = 0;     ///< live-writer (or unparsable) temps
};

/// Full recovery pass over `directory` (no-op on a missing directory):
/// validates every .gmcc entry, quarantines invalid ones, removes
/// dead-writer temp files. Idempotent — a second pass over a healthy
/// directory quarantines nothing. Safe to run while readers are active
/// (reads of a just-moved file degrade to a miss, the pre-scrub path).
ScrubReport ScrubStore(const std::string& directory);

/// Moves one file into its directory's quarantine/ subdir and writes a
/// sibling "<name>.reason" file containing `reason`. Returns false with
/// *error (if non-null) when the move fails — the store.scrub fault
/// point's failure mode — leaving the file in place.
bool QuarantineFile(const std::string& path, const std::string& reason,
                    std::string* error = nullptr);

/// Read-path self-heal: re-reads `path` and re-validates the bytes
/// (bypassing the store.read fault point — a transient or injected read
/// failure must never quarantine a healthy file), quarantining only on
/// durable invalidity. True iff the file was actually quarantined.
bool QuarantineIfCorrupt(const std::string& path);

}  // namespace store
}  // namespace gmc

#endif  // GMC_STORE_SCRUB_H_
