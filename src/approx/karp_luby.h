// Karp–Luby importance sampling over monotone CNF lineages — the (ε, δ)
// tier of the three-way router.
//
// For a monotone lineage CNF F over independent tuple variables, the
// FAILURE event ¬F is a monotone DNF: ¬F = ∨_i D_i with one disjunct per
// clause, D_i = ∧_{v ∈ clause_i} ¬v, of weight w_i = Π (1 − p_v). The
// classical Karp–Luby estimator samples from the weighted union instead of
// the whole cube:
//
//   1. draw a disjunct i with probability w_i / W,  W = Σ_j w_j;
//   2. draw an assignment conditioned on D_i (clause_i's variables false,
//      every other variable independently true with its own p_v);
//   3. score a success iff i is the MINIMAL satisfied disjunct.
//
// The success probability is exactly μ / W with μ = Pr(¬F), and
// μ ≥ max_i w_i ≥ W / m bounds it below by 1/m, so the multiplicative
// Chernoff bound gives: after N = ⌈3 m ln(2/δ) / ε²⌉ samples, the estimate
// μ̂ = W · (successes / N) satisfies |μ̂ − μ| ≤ ε·μ ≤ ε with probability at
// least 1 − δ — a relative guarantee on the failure probability, hence an
// additive ε guarantee on Pr(F) = 1 − μ. Polynomial in the lineage for
// every ε, δ: this is an FPRAS, which is what makes the tier principled
// rather than a heuristic.
//
// Exactness of the per-sample randomness: every Bernoulli and categorical
// draw is decided by comparing a lazily refined dyadic uniform against the
// exact Rational weights (util/rational.h) — 64 fresh bits per refinement,
// refinement probability 2^-64 per comparison — so the sampling
// distribution is exactly the one the analysis above assumes; no floating-
// point bias anywhere. Doubles appear only in the reported estimate.
//
// Anytime contract: when max_samples caps N below the target, the sampler
// still runs and reports the LARGER epsilon it actually achieved at that
// sample count (same δ) — a weaker certificate, never a silent lie.

#ifndef GMC_APPROX_KARP_LUBY_H_
#define GMC_APPROX_KARP_LUBY_H_

#include <cstdint>
#include <vector>

#include "lineage/boolean_formula.h"
#include "lineage/grounder.h"
#include "util/cancel.h"
#include "util/rational.h"

namespace gmc {

/// Sampler knobs. The defaults mirror GmcOptions; GfomcSession forwards
/// its configured values and derives `seed` per instance from the base
/// seed and the lineage hash, so fixed-seed runs reproduce exactly.
struct KarpLubyParams {
  double epsilon = 0.05;  ///< target additive error on Pr(F), in (0, 1)
  double delta = 0.01;    ///< failure probability, in (0, 1)
  /// Hard cap on samples (0 = none): the anytime knob. When it binds, the
  /// result reports the epsilon actually achieved at the capped count.
  uint64_t max_samples = 1 << 20;
  uint64_t seed = 0x9e3779b97f4a7c15ull;
  /// Optional request-deadline token, polled every few samples. A fired
  /// deadline stops the loop at however many samples were drawn and
  /// certifies the epsilon THAT count buys — the same anytime degradation
  /// as a binding max_samples, never an error (the one tier where a
  /// deadline costs certificate strength instead of the answer).
  const CancelToken* cancel = nullptr;
};

/// One sampling run's outcome.
struct KarpLubyResult {
  double estimate = 0.0;  ///< point estimate of Pr(F = true)
  /// The additive epsilon certified at `delta`: the target when the sample
  /// budget sufficed, the larger achieved value when max_samples bound,
  /// 0 for instances answered exactly.
  double epsilon = 0.0;
  double delta = 0.0;
  uint64_t samples = 0;
  uint64_t successes = 0;
  /// W = Σ_i Π_{v ∈ clause_i} (1 − p_v), the union bound on the failure
  /// probability (diagnostics; 0 for trivially-true instances).
  double failure_weight = 0.0;
  /// True when the instance was resolved exactly without sampling (no
  /// clauses, an empty clause, a single clause, or zero failure weight):
  /// `estimate` is then exact and `epsilon` is 0.
  bool exact = false;
};

/// Runs the estimator on one lineage CNF with per-variable marginals
/// `probabilities` (index = variable id; all entries must be in [0, 1] and
/// the vector at least cnf.num_vars long — aborts otherwise, so callers
/// validate first). Deterministic given (cnf, probabilities, params).
KarpLubyResult KarpLubyEstimate(const Cnf& cnf,
                                const std::vector<Rational>& probabilities,
                                const KarpLubyParams& params);

/// Lineage convenience: an unsatisfiable lineage is exactly 0.
KarpLubyResult KarpLubyEstimate(const Lineage& lineage,
                                const KarpLubyParams& params);

/// The sample count the (ε, δ) target demands for `num_clauses` disjuncts:
/// ⌈3 m ln(2/δ) / ε²⌉. Exposed for the calibration tests and the session's
/// cost accounting.
uint64_t KarpLubySampleTarget(uint64_t num_clauses, double epsilon,
                              double delta);

namespace approx_internal {

/// splitmix64 — the per-instance PRNG stream. Deterministic, seedable,
/// passes BigCrush as a 64-bit mixer; quality is ample for Monte Carlo
/// sampling (this is a certified estimator, not an adversarial setting).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// An exact uniform draw over [0, 1), materialized lazily: each comparison
/// against an exact Rational consumes just enough 64-bit chunks to decide
/// it (one, except with probability 2^-64 per extra chunk). Each draw is
/// independent; construct one per decision.
class LazyUniform {
 public:
  explicit LazyUniform(SplitMix64* rng) : rng_(rng) {}

  /// True iff the draw is < threshold. Exact; threshold must be in [0, 1].
  bool LessThan(const Rational& threshold);

  /// The index i of the first prefix sum exceeding draw · total, i.e. a
  /// categorical sample with probabilities (prefix[i+1] − prefix[i]) /
  /// total. `prefix` has size m + 1, prefix[0] == 0, prefix[m] == total,
  /// nondecreasing, total > 0. Exact.
  size_t Categorical(const std::vector<Rational>& prefix,
                     const Rational& total);

 private:
  void Refine();

  SplitMix64* rng_;
  Rational low_;          // the bits drawn so far, as low_ <= draw < high_
  uint64_t bits_ = 0;     // draw resolution: high_ - low_ == 2^-bits_
};

}  // namespace approx_internal

}  // namespace gmc

#endif  // GMC_APPROX_KARP_LUBY_H_
