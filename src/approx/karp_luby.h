// Karp–Luby importance sampling over monotone CNF lineages — the (ε, δ)
// tier of the three-way router.
//
// For a monotone lineage CNF F over independent tuple variables, the
// FAILURE event ¬F is a monotone DNF: ¬F = ∨_i D_i with one disjunct per
// clause, D_i = ∧_{v ∈ clause_i} ¬v, of weight w_i = Π (1 − p_v). The
// classical Karp–Luby estimator samples from the weighted union instead of
// the whole cube:
//
//   1. draw a disjunct i with probability w_i / W,  W = Σ_j w_j;
//   2. draw an assignment conditioned on D_i (clause_i's variables false,
//      every other variable independently true with its own p_v);
//   3. score a success iff i is the MINIMAL satisfied disjunct.
//
// The success probability is exactly μ / W with μ = Pr(¬F), and
// μ ≥ max_i w_i ≥ W / m bounds it below by 1/m, so the multiplicative
// Chernoff bound gives: after N = ⌈3 m ln(2/δ) / ε²⌉ samples, the estimate
// μ̂ = W · (successes / N) satisfies |μ̂ − μ| ≤ ε·μ ≤ ε with probability at
// least 1 − δ — a relative guarantee on the failure probability, hence an
// additive ε guarantee on Pr(F) = 1 − μ. Polynomial in the lineage for
// every ε, δ: this is an FPRAS, which is what makes the tier principled
// rather than a heuristic.
//
// Exactness of the per-sample randomness: every Bernoulli and categorical
// draw is decided by comparing a lazily refined dyadic uniform against the
// exact Rational weights (util/rational.h) — 64 fresh bits per refinement,
// refinement probability 2^-64 per comparison — so the sampling
// distribution is exactly the one the analysis above assumes; no floating-
// point bias anywhere. Doubles appear only in the reported estimate.
//
// Anytime contract: when max_samples caps N below the target, the sampler
// still runs and reports the LARGER epsilon it actually achieved at that
// sample count (same δ) — a weaker certificate, never a silent lie.
//
// Parallelism and determinism: the sample index space is cut into
// fixed-size chunks (kSamplesPerChunk), chunk c draws from its own
// splitmix64 substream seeded `params.seed ^ c`, and workers claim chunks
// from a shared counter. Chunk boundaries and substreams depend only on
// (seed, target) — never on the worker count or the schedule — and the
// caller reduces the per-chunk counts in chunk-index order, so a fixed
// seed is bit-reproducible at EVERY thread count (the same contract the
// batch evaluators honor, pinned by the reproducibility matrix in
// tests/approx_test.cc). A fired deadline truncates the reduction to the
// contiguous prefix of completed chunks (plus the partial chunk that
// observed the deadline), which keeps even cancelled runs thread-count-
// invariant when the token was fired before sampling began.
//
// Setup reuse: the per-instance work that dominates short runs — copying
// the CNF, the exact disjunct weights, their prefix sums — is factored
// into a KarpLubyPlan. Build one with BuildKarpLubyPlan (or share them
// through a KarpLubyPlanCache, as GfomcSession does) and run
// KarpLubyEstimate(plan, params) any number of times: same-structure
// requests in one serve coalescing round pay for one plan, not N.
//
// Default precedence (see approx/anytime_defaults.h for the shared
// constants): a default-constructed KarpLubyParams equals a
// default-constructed GmcOptions field for field. For configured runs
// GmcOptions::FromEnv() is the single source of truth — GfomcSession
// forwards its configured epsilon/delta/max_samples/seed/threads into the
// params it builds per request — and an explicitly set KarpLubyParams
// field overrides everything for that one call.

#ifndef GMC_APPROX_KARP_LUBY_H_
#define GMC_APPROX_KARP_LUBY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "approx/anytime_defaults.h"
#include "lineage/boolean_formula.h"
#include "lineage/grounder.h"
#include "util/cancel.h"
#include "util/rational.h"

namespace gmc {

/// Sampler knobs. The defaults mirror GmcOptions (both sides read
/// approx/anytime_defaults.h; see the precedence note in the header
/// comment); GfomcSession forwards its configured values and derives
/// `seed` per instance from the base seed and the lineage hash, so
/// fixed-seed runs reproduce exactly.
struct KarpLubyParams {
  double epsilon = kDefaultSampleEpsilon;  ///< target additive error
  double delta = kDefaultSampleDelta;      ///< failure probability
  /// Hard cap on samples (0 = none): the anytime knob. When it binds, the
  /// result reports the epsilon actually achieved at the capped count.
  uint64_t max_samples = kDefaultMaxSamples;
  uint64_t seed = kDefaultSampleSeed;
  /// Worker bound for the chunk-parallel sample loop: 0 defers to the
  /// process default (GMC_THREADS, else the hardware count), 1 forces
  /// serial, n allows at most n workers. Results are bit-identical at
  /// every setting — chunking is by sample index, never by worker.
  int num_threads = 0;
  /// Optional request-deadline token, polled inside every chunk and before
  /// each chunk claim. A fired deadline stops the loop at however many
  /// samples the kept chunk prefix drew and certifies the epsilon THAT
  /// count buys — the same anytime degradation as a binding max_samples,
  /// never an error (the one tier where a deadline costs certificate
  /// strength instead of the answer).
  const CancelToken* cancel = nullptr;
};

/// One sampling run's outcome.
struct KarpLubyResult {
  double estimate = 0.0;  ///< point estimate of Pr(F = true)
  /// The additive epsilon certified at `delta`: the target when the sample
  /// budget sufficed, the larger achieved value when max_samples bound,
  /// 0 for instances answered exactly.
  double epsilon = 0.0;
  double delta = 0.0;
  uint64_t samples = 0;
  uint64_t successes = 0;
  /// W = Σ_i Π_{v ∈ clause_i} (1 − p_v), the union bound on the failure
  /// probability (diagnostics; 0 for trivially-true instances).
  double failure_weight = 0.0;
  /// True when the instance was resolved exactly without sampling (no
  /// clauses, an empty clause, a single clause, or zero failure weight):
  /// `estimate` is then exact and `epsilon` is 0.
  bool exact = false;
};

/// The reusable per-instance setup of a sampling run: the formula, the
/// marginals, and the exact disjunct-weight prefix sums that dominate
/// setup cost for short runs. Immutable once built, so one shared_ptr can
/// back any number of concurrent KarpLubyEstimate calls.
struct KarpLubyPlan {
  Cnf cnf;
  std::vector<Rational> probabilities;
  /// prefix[0] = 0, prefix[i + 1] = prefix[i] + w_i, prefix[m] = W. Size
  /// m + 1 (size 1 for a clause-free formula). Exact.
  std::vector<Rational> prefix;

  size_t num_clauses() const { return cnf.clauses.size(); }
  const Rational& total_weight() const { return prefix.back(); }
};

/// Builds the plan for one (cnf, probabilities) instance. Same input
/// contract as KarpLubyEstimate below (probabilities indexed by variable
/// id, all in [0, 1], size >= cnf.num_vars — aborts otherwise, so callers
/// validate first).
std::shared_ptr<const KarpLubyPlan> BuildKarpLubyPlan(
    const Cnf& cnf, const std::vector<Rational>& probabilities);

/// Runs the estimator against a prebuilt plan — the batched entry point:
/// amortize one BuildKarpLubyPlan across every same-structure request.
/// Deterministic given (plan, params).
KarpLubyResult KarpLubyEstimate(const KarpLubyPlan& plan,
                                const KarpLubyParams& params);

/// Convenience one-shot form: builds a throwaway plan and runs it.
/// Bit-identical to the plan form for the same inputs.
KarpLubyResult KarpLubyEstimate(const Cnf& cnf,
                                const std::vector<Rational>& probabilities,
                                const KarpLubyParams& params);

/// Lineage convenience: an unsatisfiable lineage is exactly 0.
KarpLubyResult KarpLubyEstimate(const Lineage& lineage,
                                const KarpLubyParams& params);

/// The sample count the (ε, δ) target demands for `num_clauses` disjuncts:
/// ⌈3 m ln(2/δ) / ε²⌉. Exposed for the calibration tests and the session's
/// cost accounting.
uint64_t KarpLubySampleTarget(uint64_t num_clauses, double epsilon,
                              double delta);

/// A small LRU cache of KarpLubyPlans keyed by (cnf, probabilities) —
/// structure alone is NOT enough, because the disjunct weights depend on
/// the marginals. GfomcSession holds one so the EVAL_APPROX coalescing
/// round in serve.cc pays one plan build for N same-structure requests;
/// hits/misses surface through GfomcSession::Stats (plan_hits /
/// plan_misses) and the STATS wire line.
///
/// Probes verify full key equality (exact Rational comparison), so a hash
/// collision costs one rebuild, never a wrong plan. The approx.plan fault
/// point (util/fault.h) aliases "the cached plan was lost": a fired
/// crossing skips both the lookup and the insert, forcing a rebuild whose
/// result is identical — self-healing by construction.
///
/// Thread-safe (one mutex; plan builds run outside it only on the fault
/// path — cached builds are cheap enough that holding it is simpler).
class KarpLubyPlanCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  /// The cached plan for (cnf, probabilities), building and inserting on a
  /// miss. Never returns null.
  std::shared_ptr<const KarpLubyPlan> Get(
      const Cnf& cnf, const std::vector<Rational>& probabilities);

  /// Capacity in plans; 0 disables caching (every Get builds fresh).
  /// Shrinking evicts least-recently-used entries immediately.
  void set_max_entries(uint64_t max_entries);

  Stats stats() const;
  void Clear();  ///< drops every entry and zeroes the stats

 private:
  struct Entry {
    std::shared_ptr<const KarpLubyPlan> plan;
    uint64_t last_used = 0;
  };

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Entry> entries_;
  uint64_t max_entries_ = kDefaultSamplePlanEntries;
  uint64_t clock_ = 0;
  Stats stats_;
};

namespace approx_internal {

/// The fixed sample-chunk size of the parallel loop. Chunk count and
/// substream seeds depend only on (target, seed) — the thread-count-
/// invariance anchor. Small enough that modest targets still spread over
/// the pool, large enough that the claim counter stays cold.
inline constexpr uint64_t kSamplesPerChunk = 1024;

/// splitmix64 — the per-instance PRNG stream. Deterministic, seedable,
/// passes BigCrush as a 64-bit mixer; quality is ample for Monte Carlo
/// sampling (this is a certified estimator, not an adversarial setting).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// An exact uniform draw over [0, 1), materialized lazily: each comparison
/// against an exact Rational consumes just enough 64-bit chunks to decide
/// it (one, except with probability 2^-64 per extra chunk). Each draw is
/// independent; construct one per decision.
class LazyUniform {
 public:
  explicit LazyUniform(SplitMix64* rng) : rng_(rng) {}

  /// True iff the draw is < threshold. Exact; threshold must be in [0, 1].
  bool LessThan(const Rational& threshold);

  /// The index i of the first prefix sum exceeding draw · total, i.e. a
  /// categorical sample with probabilities (prefix[i+1] − prefix[i]) /
  /// total. `prefix` has size m + 1, prefix[0] == 0, prefix[m] == total,
  /// nondecreasing, total > 0. Exact.
  size_t Categorical(const std::vector<Rational>& prefix,
                     const Rational& total);

 private:
  void Refine();

  SplitMix64* rng_;
  Rational low_;          // the bits drawn so far, as low_ <= draw < high_
  uint64_t bits_ = 0;     // draw resolution: high_ - low_ == 2^-bits_
};

}  // namespace approx_internal

}  // namespace gmc

#endif  // GMC_APPROX_KARP_LUBY_H_
