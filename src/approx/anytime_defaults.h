// The anytime tier's default knobs, in exactly one place.
//
// Two structs expose the sampler's configuration — KarpLubyParams (the
// direct sampler API) and GmcOptions (the session/env surface) — and
// before this header each duplicated the literals, so a tweak to one
// could silently strand the other (max_samples = 1 << 20 had already been
// copy-pasted). Both now default from these constants; the PRECEDENCE is
// documented in approx/karp_luby.h (GmcOptions::FromEnv overrides per
// process, GfomcSession forwards its configured values per request, and a
// caller-constructed KarpLubyParams overrides everything for that call).
//
// Deliberately dependency-free (<cstdint> only): gmc_options.h lives at
// the compile layer and must not pull the sampler in.

#ifndef GMC_APPROX_ANYTIME_DEFAULTS_H_
#define GMC_APPROX_ANYTIME_DEFAULTS_H_

#include <cstdint>

namespace gmc {

/// Target additive error on Pr(F), in (0, 1).
inline constexpr double kDefaultSampleEpsilon = 0.05;
/// Certificate failure probability, in (0, 1).
inline constexpr double kDefaultSampleDelta = 0.01;
/// Hard cap on samples per instance (0 = none); when it binds, the result
/// reports the larger epsilon the capped count actually buys.
inline constexpr uint64_t kDefaultMaxSamples = uint64_t{1} << 20;
/// Base PRNG seed (the golden-ratio splitmix64 increment — an arbitrary
/// but recognizable constant); per-instance streams derive from it.
inline constexpr uint64_t kDefaultSampleSeed = 0x9e3779b97f4a7c15ull;
/// Capacity of a session's KarpLubyPlan cache, in plans (0 disables).
inline constexpr uint64_t kDefaultSamplePlanEntries = 64;

}  // namespace gmc

#endif  // GMC_APPROX_ANYTIME_DEFAULTS_H_
