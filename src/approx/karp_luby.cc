#include "approx/karp_luby.h"

#include <algorithm>
#include <cmath>

#include "util/bigint.h"
#include "util/check.h"

namespace gmc {

namespace approx_internal {

namespace {

// A uint64 as a BigInt (the int64_t constructor can't hold the top bit).
BigInt BigIntFromU64(uint64_t value) {
  BigInt big(static_cast<int64_t>(value >> 32));
  big.ShiftLeftInPlace(32);
  big += BigInt(static_cast<int64_t>(value & 0xffffffffull));
  return big;
}

}  // namespace

void LazyUniform::Refine() {
  // Append 64 fresh bits: the draw's enclosing dyadic interval narrows
  // from [low_, low_ + 2^-bits_) to width 2^-(bits_ + 64).
  const uint64_t chunk = rng_->Next();
  bits_ += 64;
  low_ += Rational::Dyadic(BigIntFromU64(chunk), bits_);
}

bool LazyUniform::LessThan(const Rational& threshold) {
  while (true) {
    // draw ∈ [low_, high_) with high_ = low_ + 2^-bits_.
    if (bits_ > 0) {
      const Rational high = low_ + Rational::Dyadic(BigInt(1), bits_);
      if (high <= threshold) return true;   // draw < high ≤ t
      if (threshold <= low_) return false;  // draw ≥ low ≥ t
    } else if (threshold >= Rational::One()) {
      return true;  // draw < 1 ≤ t, no bits needed
    } else if (threshold.sign() <= 0) {
      return false;
    }
    Refine();  // t strictly inside the interval: need more bits
  }
}

size_t LazyUniform::Categorical(const std::vector<Rational>& prefix,
                                const Rational& total) {
  GMC_CHECK(prefix.size() >= 2 && total.sign() > 0);
  // The sample is the index whose [prefix[i], prefix[i+1]) bucket contains
  // draw · total. Refine until the draw's interval, scaled by total, fits
  // inside one bucket. upper_bound on the nondecreasing prefix keeps each
  // probe logarithmic.
  auto bucket_of = [&](const Rational& scaled) {
    const auto it =
        std::upper_bound(prefix.begin() + 1, prefix.end() - 1, scaled);
    return static_cast<size_t>(it - prefix.begin()) - 1;
  };
  while (true) {
    if (bits_ > 0) {
      const Rational scaled_low = low_ * total;
      const Rational scaled_high =
          (low_ + Rational::Dyadic(BigInt(1), bits_)) * total;
      const size_t lo_bucket = bucket_of(scaled_low);
      // The interval is half-open, so its supremum landing exactly on a
      // boundary still belongs to the lower bucket.
      if (scaled_high <= prefix[lo_bucket + 1]) return lo_bucket;
    }
    Refine();
  }
}

}  // namespace approx_internal

uint64_t KarpLubySampleTarget(uint64_t num_clauses, double epsilon,
                              double delta) {
  GMC_CHECK(epsilon > 0.0 && epsilon < 1.0 && delta > 0.0 && delta < 1.0);
  if (num_clauses == 0) return 0;
  const double target = std::ceil(3.0 * static_cast<double>(num_clauses) *
                                  std::log(2.0 / delta) /
                                  (epsilon * epsilon));
  return static_cast<uint64_t>(target);
}

KarpLubyResult KarpLubyEstimate(const Cnf& cnf,
                                const std::vector<Rational>& probabilities,
                                const KarpLubyParams& params) {
  GMC_CHECK(static_cast<int>(probabilities.size()) >= cnf.num_vars);
  KarpLubyResult result;
  result.delta = params.delta;

  // Trivial instances are answered exactly — the sampler's guarantee
  // would be vacuous and the router's tests pin these corners.
  if (cnf.IsTrue()) {
    result.estimate = 1.0;
    result.exact = true;
    return result;
  }
  if (cnf.HasEmptyClause()) {
    result.estimate = 0.0;
    result.exact = true;
    return result;
  }

  // Disjunct weights w_i = Π_{v ∈ clause_i} (1 − p_v), their prefix sums,
  // and W — all exact.
  const size_t m = cnf.clauses.size();
  std::vector<Rational> prefix(m + 1, Rational::Zero());
  for (size_t i = 0; i < m; ++i) {
    Rational weight = Rational::One();
    for (int v : cnf.clauses[i]) {
      GMC_CHECK_MSG(
          probabilities[v].sign() >= 0 && probabilities[v] <= Rational::One(),
          "KarpLubyEstimate needs probabilities in [0, 1]");
      weight *= Rational::One() - probabilities[v];
      if (weight.IsZero()) break;
    }
    prefix[i + 1] = prefix[i] + weight;
  }
  const Rational& total = prefix[m];
  result.failure_weight = total.ToDouble();

  if (total.IsZero()) {
    // Every disjunct has zero weight: the lineage fails with probability 0.
    result.estimate = 1.0;
    result.exact = true;
    return result;
  }
  if (m == 1) {
    // One disjunct: μ = w_0 exactly, nothing to sample.
    result.estimate = (Rational::One() - total).ToDouble();
    result.exact = true;
    return result;
  }

  uint64_t target = KarpLubySampleTarget(m, params.epsilon, params.delta);
  result.epsilon = params.epsilon;
  if (params.max_samples > 0 && target > params.max_samples) {
    // Anytime: run what the cap allows and certify the epsilon that count
    // actually buys (invert N = 3m ln(2/δ)/ε²).
    target = params.max_samples;
    result.epsilon = std::sqrt(3.0 * static_cast<double>(m) *
                               std::log(2.0 / params.delta) /
                               static_cast<double>(target));
  }

  approx_internal::SplitMix64 rng(params.seed);
  std::vector<char> assigned(cnf.num_vars);   // sampled this round?
  std::vector<char> value(cnf.num_vars);      // the sampled truth value
  uint64_t successes = 0;
  uint64_t drawn = 0;
  for (uint64_t n = 0; n < target; ++n) {
    // A fired deadline degrades to the anytime report below — the samples
    // already drawn stay valid (each is i.i.d.; stopping is oblivious to
    // their outcomes, so no bias). Poll every 64 samples, and never before
    // the first: one sample always completes, keeping μ̂ well-defined.
    if (params.cancel != nullptr && n > 0 && (n & 63) == 0 &&
        params.cancel->Poll()) {
      break;
    }
    // 1. Disjunct i ∝ w_i.
    approx_internal::LazyUniform pick(&rng);
    const size_t i = pick.Categorical(prefix, total);
    // 2. Assignment conditioned on D_i: clause_i's variables are false;
    //    everything else is sampled lazily on first read in step 3 —
    //    variables in no earlier clause never consume randomness. To keep
    //    the stream deterministic per sample, reset the scratch marks.
    std::fill(assigned.begin(), assigned.end(), 0);
    for (int v : cnf.clauses[i]) {
      assigned[v] = 1;
      value[v] = 0;
    }
    auto is_true = [&](int v) {
      if (!assigned[v]) {
        assigned[v] = 1;
        approx_internal::LazyUniform draw(&rng);
        value[v] = draw.LessThan(probabilities[v]) ? 1 : 0;
      }
      return value[v] != 0;
    };
    // 3. Success iff no EARLIER disjunct is also satisfied (all-false).
    bool minimal = true;
    for (size_t j = 0; j < i && minimal; ++j) {
      bool clause_all_false = true;
      for (int v : cnf.clauses[j]) {
        if (is_true(v)) {
          clause_all_false = false;
          break;
        }
      }
      if (clause_all_false) minimal = false;
    }
    if (minimal) ++successes;
    ++drawn;
  }
  if (drawn < target) {
    // Deadline fired mid-run: certify the epsilon the drawn count buys,
    // exactly as a binding max_samples would (invert N = 3m ln(2/δ)/ε²).
    result.epsilon = std::sqrt(3.0 * static_cast<double>(m) *
                               std::log(2.0 / params.delta) /
                               static_cast<double>(drawn));
  }

  // μ̂ = W · successes / N, computed exactly before the one rounding into
  // the reported double.
  const Rational mu_hat =
      total * Rational(static_cast<int64_t>(successes)) /
      Rational(static_cast<int64_t>(drawn));
  result.estimate = (Rational::One() - mu_hat).ToDouble();
  result.samples = drawn;
  result.successes = successes;
  return result;
}

KarpLubyResult KarpLubyEstimate(const Lineage& lineage,
                                const KarpLubyParams& params) {
  if (lineage.is_false) {
    KarpLubyResult result;
    result.delta = params.delta;
    result.estimate = 0.0;
    result.exact = true;
    return result;
  }
  return KarpLubyEstimate(lineage.cnf, lineage.probabilities, params);
}

}  // namespace gmc
