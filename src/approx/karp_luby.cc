#include "approx/karp_luby.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "util/bigint.h"
#include "util/check.h"
#include "util/fault.h"
#include "util/parallel.h"

namespace gmc {

namespace approx_internal {

namespace {

// A uint64 as a BigInt (the int64_t constructor can't hold the top bit).
BigInt BigIntFromU64(uint64_t value) {
  BigInt big(static_cast<int64_t>(value >> 32));
  big.ShiftLeftInPlace(32);
  big += BigInt(static_cast<int64_t>(value & 0xffffffffull));
  return big;
}

}  // namespace

void LazyUniform::Refine() {
  // Append 64 fresh bits: the draw's enclosing dyadic interval narrows
  // from [low_, low_ + 2^-bits_) to width 2^-(bits_ + 64).
  const uint64_t chunk = rng_->Next();
  bits_ += 64;
  low_ += Rational::Dyadic(BigIntFromU64(chunk), bits_);
}

bool LazyUniform::LessThan(const Rational& threshold) {
  while (true) {
    // draw ∈ [low_, high_) with high_ = low_ + 2^-bits_.
    if (bits_ > 0) {
      const Rational high = low_ + Rational::Dyadic(BigInt(1), bits_);
      if (high <= threshold) return true;   // draw < high ≤ t
      if (threshold <= low_) return false;  // draw ≥ low ≥ t
    } else if (threshold >= Rational::One()) {
      return true;  // draw < 1 ≤ t, no bits needed
    } else if (threshold.sign() <= 0) {
      return false;
    }
    Refine();  // t strictly inside the interval: need more bits
  }
}

size_t LazyUniform::Categorical(const std::vector<Rational>& prefix,
                                const Rational& total) {
  GMC_CHECK(prefix.size() >= 2 && total.sign() > 0);
  // The sample is the index whose [prefix[i], prefix[i+1]) bucket contains
  // draw · total. Refine until the draw's interval, scaled by total, fits
  // inside one bucket. upper_bound on the nondecreasing prefix keeps each
  // probe logarithmic.
  auto bucket_of = [&](const Rational& scaled) {
    const auto it =
        std::upper_bound(prefix.begin() + 1, prefix.end() - 1, scaled);
    return static_cast<size_t>(it - prefix.begin()) - 1;
  };
  while (true) {
    if (bits_ > 0) {
      const Rational scaled_low = low_ * total;
      const Rational scaled_high =
          (low_ + Rational::Dyadic(BigInt(1), bits_)) * total;
      const size_t lo_bucket = bucket_of(scaled_low);
      // The interval is half-open, so its supremum landing exactly on a
      // boundary still belongs to the lower bucket.
      if (scaled_high <= prefix[lo_bucket + 1]) return lo_bucket;
    }
    Refine();
  }
}

}  // namespace approx_internal

uint64_t KarpLubySampleTarget(uint64_t num_clauses, double epsilon,
                              double delta) {
  GMC_CHECK(epsilon > 0.0 && epsilon < 1.0 && delta > 0.0 && delta < 1.0);
  if (num_clauses == 0) return 0;
  const double target = std::ceil(3.0 * static_cast<double>(num_clauses) *
                                  std::log(2.0 / delta) /
                                  (epsilon * epsilon));
  return static_cast<uint64_t>(target);
}

std::shared_ptr<const KarpLubyPlan> BuildKarpLubyPlan(
    const Cnf& cnf, const std::vector<Rational>& probabilities) {
  GMC_CHECK(static_cast<int>(probabilities.size()) >= cnf.num_vars);
  auto plan = std::make_shared<KarpLubyPlan>();
  plan->cnf = cnf;
  plan->probabilities = probabilities;
  // Disjunct weights w_i = Π_{v ∈ clause_i} (1 − p_v), their prefix sums,
  // and W — all exact.
  const size_t m = cnf.clauses.size();
  plan->prefix.assign(m + 1, Rational::Zero());
  for (size_t i = 0; i < m; ++i) {
    Rational weight = Rational::One();
    for (int v : cnf.clauses[i]) {
      GMC_CHECK_MSG(
          probabilities[v].sign() >= 0 && probabilities[v] <= Rational::One(),
          "BuildKarpLubyPlan needs probabilities in [0, 1]");
      weight *= Rational::One() - probabilities[v];
      if (weight.IsZero()) break;
    }
    plan->prefix[i + 1] = plan->prefix[i] + weight;
  }
  return plan;
}

namespace {

// Per-chunk tallies, written only by the chunk's owning worker and read by
// the caller after the pool joins; `completed` distinguishes a chunk that
// drew its full range from one a fired deadline cut short (or that never
// started), which is what the ordered prefix reduction truncates on.
struct ChunkTally {
  uint64_t drawn = 0;
  uint64_t successes = 0;
  bool completed = false;
};

// Draws samples [begin, end) of the global index space into `tally`,
// from the chunk's own substream. Returns false iff the deadline fired
// mid-chunk (the tally then holds a valid partial count). The substream
// seed is the instance seed XOR the CHUNK index — not the worker index
// directly, which would tie the stream to the schedule; a "worker" in the
// determinism contract is the logical owner of one fixed chunk.
bool SampleChunk(const KarpLubyPlan& plan, const KarpLubyParams& params,
                 uint64_t chunk, uint64_t begin, uint64_t end,
                 std::vector<char>* assigned_scratch,
                 std::vector<char>* value_scratch, ChunkTally* tally) {
  const Cnf& cnf = plan.cnf;
  const Rational& total = plan.total_weight();
  std::vector<char>& assigned = *assigned_scratch;
  std::vector<char>& value = *value_scratch;
  approx_internal::SplitMix64 rng(params.seed ^ chunk);
  for (uint64_t n = begin; n < end; ++n) {
    // A fired deadline degrades to the anytime report — the samples
    // already drawn stay valid (each is i.i.d.; stopping is oblivious to
    // their outcomes, so no bias). Poll every 64 samples of THIS chunk,
    // and never before its first: chunk 0 always completes one sample,
    // keeping μ̂ well-defined, and the poll cadence is a pure function of
    // the chunk-local index, not of which worker runs the chunk.
    const uint64_t local = n - begin;
    if (params.cancel != nullptr && local > 0 && (local & 63) == 0 &&
        params.cancel->Poll()) {
      return false;
    }
    // 1. Disjunct i ∝ w_i.
    approx_internal::LazyUniform pick(&rng);
    const size_t i = pick.Categorical(plan.prefix, total);
    // 2. Assignment conditioned on D_i: clause_i's variables are false;
    //    everything else is sampled lazily on first read in step 3 —
    //    variables in no earlier clause never consume randomness. To keep
    //    the stream deterministic per sample, reset the scratch marks.
    std::fill(assigned.begin(), assigned.end(), 0);
    for (int v : cnf.clauses[i]) {
      assigned[v] = 1;
      value[v] = 0;
    }
    auto is_true = [&](int v) {
      if (!assigned[v]) {
        assigned[v] = 1;
        approx_internal::LazyUniform draw(&rng);
        value[v] = draw.LessThan(plan.probabilities[v]) ? 1 : 0;
      }
      return value[v] != 0;
    };
    // 3. Success iff no EARLIER disjunct is also satisfied (all-false).
    bool minimal = true;
    for (size_t j = 0; j < i && minimal; ++j) {
      bool clause_all_false = true;
      for (int v : cnf.clauses[j]) {
        if (is_true(v)) {
          clause_all_false = false;
          break;
        }
      }
      if (clause_all_false) minimal = false;
    }
    if (minimal) ++tally->successes;
    ++tally->drawn;
  }
  tally->completed = true;
  return true;
}

}  // namespace

KarpLubyResult KarpLubyEstimate(const KarpLubyPlan& plan,
                                const KarpLubyParams& params) {
  const Cnf& cnf = plan.cnf;
  KarpLubyResult result;
  result.delta = params.delta;

  // Trivial instances are answered exactly — the sampler's guarantee
  // would be vacuous and the router's tests pin these corners.
  if (cnf.IsTrue()) {
    result.estimate = 1.0;
    result.exact = true;
    return result;
  }
  if (cnf.HasEmptyClause()) {
    result.estimate = 0.0;
    result.exact = true;
    return result;
  }

  const size_t m = plan.num_clauses();
  const Rational& total = plan.total_weight();
  result.failure_weight = total.ToDouble();

  if (total.IsZero()) {
    // Every disjunct has zero weight: the lineage fails with probability 0.
    result.estimate = 1.0;
    result.exact = true;
    return result;
  }
  if (m == 1) {
    // One disjunct: μ = w_0 exactly, nothing to sample.
    result.estimate = (Rational::One() - total).ToDouble();
    result.exact = true;
    return result;
  }

  uint64_t target = KarpLubySampleTarget(m, params.epsilon, params.delta);
  result.epsilon = params.epsilon;
  if (params.max_samples > 0 && target > params.max_samples) {
    // Anytime: run what the cap allows and certify the epsilon that count
    // actually buys (invert N = 3m ln(2/δ)/ε²).
    target = params.max_samples;
    result.epsilon = std::sqrt(3.0 * static_cast<double>(m) *
                               std::log(2.0 / params.delta) /
                               static_cast<double>(target));
  }

  // The chunked, thread-count-invariant sample loop (see the header
  // comment): chunk c owns global sample indices [c·K, (c+1)·K) and its
  // own substream; workers claim chunks from a shared counter, so the
  // SCHEDULE is dynamic but every per-chunk computation — and the ordered
  // reduction below — is a pure function of (plan, seed, target).
  const uint64_t chunk_size = approx_internal::kSamplesPerChunk;
  const uint64_t num_chunks = (target + chunk_size - 1) / chunk_size;
  std::vector<ChunkTally> tallies(num_chunks);
  std::atomic<uint64_t> next_chunk{0};
  const int requested = params.num_threads > 0 ? params.num_threads
                                               : DefaultNumThreads();
  const int workers = static_cast<int>(
      std::min<uint64_t>(static_cast<uint64_t>(std::max(requested, 1)),
                         num_chunks));
  auto drain_chunks = [&](int) {
    // Scratch is per worker, reused across the chunks it claims — the
    // sample body resets it per draw, so reuse cannot leak state.
    std::vector<char> assigned(cnf.num_vars);  // sampled this round?
    std::vector<char> value(cnf.num_vars);     // the sampled truth value
    for (;;) {
      const uint64_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      // Deadline check BEFORE starting a claimed chunk — except chunk 0,
      // which always runs so at least one sample exists. Chunks the fired
      // token skips stay !completed and the prefix reduction discards
      // everything at and past the first of them, so a token fired before
      // sampling began yields the same truncation at every thread count.
      if (c > 0 && params.cancel != nullptr && params.cancel->Poll()) {
        return;
      }
      const uint64_t begin = c * chunk_size;
      const uint64_t end = std::min(target, begin + chunk_size);
      if (!SampleChunk(plan, params, c, begin, end, &assigned, &value,
                       &tallies[c])) {
        return;  // deadline fired mid-chunk; partial tally kept
      }
    }
  };
  if (workers <= 1) {
    drain_chunks(0);
  } else {
    ThreadPool::Shared().Run(workers, drain_chunks);
  }

  // Ordered reduction, the determinism anchor: sum chunk tallies in chunk-
  // index order and keep only the contiguous prefix of completed chunks
  // plus the first incomplete one's partial draws. Later chunks a racing
  // worker happened to finish are discarded — the kept set is then a
  // prefix of the sample index space, chosen obliviously to the sample
  // outcomes, so the estimator stays unbiased and a pre-fired token
  // truncates identically at every thread count.
  uint64_t successes = 0;
  uint64_t drawn = 0;
  for (uint64_t c = 0; c < num_chunks; ++c) {
    drawn += tallies[c].drawn;
    successes += tallies[c].successes;
    if (!tallies[c].completed) break;
  }
  if (drawn < target) {
    // Deadline fired mid-run: certify the epsilon the drawn count buys,
    // exactly as a binding max_samples would (invert N = 3m ln(2/δ)/ε²).
    result.epsilon = std::sqrt(3.0 * static_cast<double>(m) *
                               std::log(2.0 / params.delta) /
                               static_cast<double>(drawn));
  }

  // μ̂ = W · successes / N, computed exactly before the one rounding into
  // the reported double.
  const Rational mu_hat =
      total * Rational(static_cast<int64_t>(successes)) /
      Rational(static_cast<int64_t>(drawn));
  result.estimate = (Rational::One() - mu_hat).ToDouble();
  result.samples = drawn;
  result.successes = successes;
  return result;
}

KarpLubyResult KarpLubyEstimate(const Cnf& cnf,
                                const std::vector<Rational>& probabilities,
                                const KarpLubyParams& params) {
  return KarpLubyEstimate(*BuildKarpLubyPlan(cnf, probabilities), params);
}

KarpLubyResult KarpLubyEstimate(const Lineage& lineage,
                                const KarpLubyParams& params) {
  if (lineage.is_false) {
    KarpLubyResult result;
    result.delta = params.delta;
    result.estimate = 0.0;
    result.exact = true;
    return result;
  }
  return KarpLubyEstimate(lineage.cnf, lineage.probabilities, params);
}

namespace {

// Order-free fold for the plan-cache key (seed the cnf hash, fold each
// marginal's hash in sequence — boost::hash_combine's recipe widened).
uint64_t HashCombine(uint64_t h, uint64_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ull + (h << 12) + (h >> 4));
}

}  // namespace

std::shared_ptr<const KarpLubyPlan> KarpLubyPlanCache::Get(
    const Cnf& cnf, const std::vector<Rational>& probabilities) {
  // Key over structure AND weights: two TIDs sharing a lineage but not its
  // marginals must not share disjunct weights.
  uint64_t key = cnf.Hash64();
  for (const Rational& p : probabilities) {
    key = HashCombine(key, static_cast<uint64_t>(p.Hash()));
  }
  // approx.plan aliases "the cached plan was lost": a fired crossing skips
  // the lookup and the insert, so the plan rebuilds below — identical
  // results, just the setup cost paid again (self-healing, which the
  // faults CI job exercises across the whole suite).
  const bool dropped = fault::ShouldFail(fault::Point::kApproxPlan);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!dropped && max_entries_ > 0) {
      const auto it = entries_.find(key);
      // Exact-equality probe: a 64-bit collision costs one rebuild below,
      // never a wrong plan.
      if (it != entries_.end() &&
          it->second.plan->cnf.num_vars == cnf.num_vars &&
          it->second.plan->cnf.clauses == cnf.clauses &&
          it->second.plan->probabilities == probabilities) {
        ++stats_.hits;
        it->second.last_used = ++clock_;
        return it->second.plan;
      }
    }
    ++stats_.misses;
  }
  std::shared_ptr<const KarpLubyPlan> plan =
      BuildKarpLubyPlan(cnf, probabilities);
  if (!dropped) {
    std::lock_guard<std::mutex> lock(mu_);
    if (max_entries_ > 0) {
      if (entries_.size() >= max_entries_ &&
          entries_.find(key) == entries_.end()) {
        auto victim = entries_.begin();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
          if (it->second.last_used < victim->second.last_used) victim = it;
        }
        entries_.erase(victim);
        ++stats_.evictions;
      }
      Entry& entry = entries_[key];
      entry.plan = plan;
      entry.last_used = ++clock_;
    }
  }
  return plan;
}

void KarpLubyPlanCache::set_max_entries(uint64_t max_entries) {
  std::lock_guard<std::mutex> lock(mu_);
  max_entries_ = max_entries;
  while (entries_.size() > max_entries_) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_used < victim->second.last_used) victim = it;
    }
    entries_.erase(victim);
    ++stats_.evictions;
  }
}

KarpLubyPlanCache::Stats KarpLubyPlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void KarpLubyPlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  stats_ = Stats{};
  clock_ = 0;
}

}  // namespace gmc
