// Exact rational numbers over BigInt.
//
// Every probability in this library is a Rational: tuple probabilities,
// lineage probabilities, polynomial coefficients, and the entries of the
// "big matrix" solved by the hardness reductions. Values are kept in lowest
// terms with a positive denominator, so equality is structural.

#ifndef GMC_UTIL_RATIONAL_H_
#define GMC_UTIL_RATIONAL_H_

#include <cstdint>
#include <string>

#include "util/bigint.h"

namespace gmc {

class Rational {
 public:
  // Zero.
  Rational() : numerator_(0), denominator_(1) {}
  // NOLINTNEXTLINE(google-explicit-constructor): integers embed exactly.
  Rational(int64_t value) : numerator_(value), denominator_(1) {}
  Rational(int64_t numerator, int64_t denominator);
  Rational(BigInt numerator, BigInt denominator);

  static Rational FromBigInt(BigInt value);
  // Builds a rational from parts that are ALREADY in lowest terms with a
  // positive denominator — the caller's invariant (debug-checked only).
  // Exists so the dyadic exact path can convert mantissa·2^-exp results
  // without re-running gcd: stripping the common factors of two is enough.
  static Rational FromReducedParts(BigInt numerator, BigInt denominator);
  // p / 2^k — the dyadic values produced by {0, 1/2, 1}-probability TIDs.
  static Rational Dyadic(BigInt numerator, uint64_t log2_denominator);
  // Parses "a/b" or "a". Aborts on malformed input.
  static Rational FromString(const std::string& text);

  static Rational Zero() { return Rational(0); }
  static Rational One() { return Rational(1); }
  static Rational Half() { return Rational(1, 2); }

  const BigInt& numerator() const { return numerator_; }
  const BigInt& denominator() const { return denominator_; }

  bool IsZero() const { return numerator_.IsZero(); }
  bool IsOne() const { return numerator_.IsOne() && denominator_.IsOne(); }
  bool IsInteger() const { return denominator_.IsOne(); }
  int sign() const { return numerator_.sign(); }

  Rational operator-() const;
  Rational operator+(const Rational& other) const;
  Rational operator-(const Rational& other) const;
  Rational operator*(const Rational& other) const;
  // Aborts on division by zero.
  Rational operator/(const Rational& other) const;

  // In-place forms: mutate the existing numerator/denominator buffers (no
  // temporary Rational) and skip the gcd entirely when one side is integral
  // — adding an integer to a reduced fraction, or scaling by an integer
  // coprime to the denominator, cannot introduce a common factor.
  Rational& operator+=(const Rational& other);
  Rational& operator-=(const Rational& other);
  Rational& operator*=(const Rational& other);
  Rational& operator/=(const Rational& other);

  // *this raised to an integer power; negative exponents require *this != 0.
  Rational Pow(int64_t exponent) const;

  Rational Inverse() const;
  Rational Abs() const;

  bool operator==(const Rational& other) const;
  bool operator!=(const Rational& other) const { return !(*this == other); }
  bool operator<(const Rational& other) const;
  bool operator<=(const Rational& other) const { return !(other < *this); }
  bool operator>(const Rational& other) const { return other < *this; }
  bool operator>=(const Rational& other) const { return !(*this < other); }

  // "a/b", or "a" when the denominator is 1.
  std::string ToString() const;
  double ToDouble() const;

  size_t Hash() const;

 private:
  void Reduce();
  // Shared body of += / -=: *this ± other, in place.
  void AddImpl(const Rational& other, bool subtract);

  BigInt numerator_;
  BigInt denominator_;  // invariant: > 0, gcd(|num|, den) == 1
};

}  // namespace gmc

#endif  // GMC_UTIL_RATIONAL_H_
