#include "util/quadratic.h"

#include <cmath>
#include <utility>

#include "util/check.h"

namespace gmc {

QuadraticNumber::QuadraticNumber(Rational a, Rational b, Rational d)
    : a_(std::move(a)), b_(std::move(b)), d_(std::move(d)) {
  GMC_CHECK_MSG(d_ >= Rational::Zero(), "radicand must be non-negative");
  if (d_.IsZero()) {
    b_ = Rational::Zero();  // √0 contributes nothing
    return;
  }
  // Fold perfect-square radicands into the rational part so that zero and
  // equality tests stay coefficient-wise exact.
  if (d_.numerator().IsPerfectSquare() && d_.denominator().IsPerfectSquare()) {
    Rational root(d_.numerator().ISqrt(), d_.denominator().ISqrt());
    a_ += b_ * root;
    b_ = Rational::Zero();
  }
}

QuadraticNumber QuadraticNumber::FromRational(Rational a, Rational d) {
  return QuadraticNumber(std::move(a), Rational::Zero(), std::move(d));
}

QuadraticNumber QuadraticNumber::Root(Rational d) {
  return QuadraticNumber(Rational::Zero(), Rational::One(), std::move(d));
}

void QuadraticNumber::AlignRadicand(const QuadraticNumber& other) {
  // Numbers with b == 0 are plain rationals and may adopt any radicand.
  if (d_ == other.d_) return;
  if (b_.IsZero()) {
    d_ = other.d_;
    return;
  }
  GMC_CHECK_MSG(other.b_.IsZero(), "mixed radicands in quadratic arithmetic");
}

QuadraticNumber QuadraticNumber::operator+(const QuadraticNumber& o) const {
  QuadraticNumber lhs = *this, rhs = o;
  lhs.AlignRadicand(rhs);
  rhs.AlignRadicand(lhs);
  return QuadraticNumber(lhs.a_ + rhs.a_, lhs.b_ + rhs.b_, lhs.d_);
}

QuadraticNumber QuadraticNumber::operator-(const QuadraticNumber& o) const {
  return *this + (-o);
}

QuadraticNumber QuadraticNumber::operator-() const {
  return QuadraticNumber(-a_, -b_, d_);
}

QuadraticNumber QuadraticNumber::operator*(const QuadraticNumber& o) const {
  QuadraticNumber lhs = *this, rhs = o;
  lhs.AlignRadicand(rhs);
  rhs.AlignRadicand(lhs);
  // (a1 + b1√d)(a2 + b2√d) = a1a2 + b1b2·d + (a1b2 + a2b1)√d.
  return QuadraticNumber(lhs.a_ * rhs.a_ + lhs.b_ * rhs.b_ * lhs.d_,
                         lhs.a_ * rhs.b_ + lhs.b_ * rhs.a_, lhs.d_);
}

QuadraticNumber QuadraticNumber::Conjugate() const {
  return QuadraticNumber(a_, -b_, d_);
}

Rational QuadraticNumber::Norm() const { return a_ * a_ - d_ * b_ * b_; }

QuadraticNumber QuadraticNumber::operator/(const QuadraticNumber& o) const {
  GMC_CHECK_MSG(!o.IsZero(), "division by zero quadratic number");
  QuadraticNumber lhs = *this, rhs = o;
  lhs.AlignRadicand(rhs);
  rhs.AlignRadicand(lhs);
  // x / y = x·conj(y) / Norm(y).
  const Rational norm = rhs.Norm();
  GMC_CHECK_MSG(!norm.IsZero(), "zero norm (d is a perfect square of b/a?)");
  QuadraticNumber numerator = lhs * rhs.Conjugate();
  return QuadraticNumber(numerator.a_ / norm, numerator.b_ / norm, lhs.d_);
}

QuadraticNumber QuadraticNumber::Pow(uint64_t exponent) const {
  QuadraticNumber result = FromRational(Rational::One(), d_);
  QuadraticNumber base = *this;
  while (exponent > 0) {
    if (exponent & 1) result = result * base;
    base = base * base;
    exponent >>= 1;
  }
  return result;
}

bool QuadraticNumber::operator==(const QuadraticNumber& other) const {
  // a1 + b1√d = a2 + b2√d iff equal coefficients, unless √d is rational —
  // we treat d as an opaque radicand, which is exact whenever d is not a
  // perfect square; for perfect squares callers should not use this class.
  if (b_.IsZero() && other.b_.IsZero()) return a_ == other.a_;
  return a_ == other.a_ && b_ == other.b_ && d_ == other.d_;
}

int QuadraticNumber::Sign() const {
  // sign(a + b√d), d ≥ 0, exactly:
  if (b_.IsZero()) return a_.sign();
  if (a_.IsZero()) return d_.IsZero() ? 0 : b_.sign();
  if (a_.sign() > 0 && b_.sign() > 0) return 1;
  if (a_.sign() < 0 && b_.sign() < 0) return -1;
  // Opposite signs: compare a² with d·b².
  const Rational lhs = a_ * a_;
  const Rational rhs = d_ * b_ * b_;
  if (lhs == rhs) return 0;
  const bool a_dominates = lhs > rhs;
  return a_dominates ? a_.sign() : b_.sign();
}

double QuadraticNumber::ToDouble() const {
  return a_.ToDouble() + b_.ToDouble() * std::sqrt(d_.ToDouble());
}

std::string QuadraticNumber::ToString() const {
  if (b_.IsZero()) return a_.ToString();
  return a_.ToString() + " + " + b_.ToString() + "*sqrt(" + d_.ToString() +
         ")";
}

}  // namespace gmc
