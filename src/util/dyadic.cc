#include "util/dyadic.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace gmc {

Dyadic::Dyadic(BigInt mantissa, uint64_t exponent)
    : mantissa_(std::move(mantissa)), exponent_(exponent) {}

std::optional<Dyadic> Dyadic::FromRational(const Rational& value) {
  const BigInt& den = value.denominator();
  if (den.IsOne()) return Dyadic(value.numerator(), 0);
  if (!den.IsPowerOfTwo()) return std::nullopt;
  return Dyadic(value.numerator(), den.BitLength() - 1);
}

Rational Dyadic::ToRational() const {
  if (mantissa_.IsZero()) return Rational::Zero();
  const uint64_t strip = std::min(mantissa_.TrailingZeroBits(), exponent_);
  BigInt numerator = mantissa_.ShiftRight(strip);
  const uint64_t exponent = exponent_ - strip;
  // Mantissa now odd or exponent zero: the parts are coprime, so the
  // canonical Rational needs no gcd.
  return Rational::FromReducedParts(std::move(numerator),
                                    BigInt(1).ShiftLeft(exponent));
}

Dyadic Dyadic::operator-() const {
  Dyadic out = *this;
  out.mantissa_ = -out.mantissa_;
  return out;
}

Dyadic Dyadic::OneMinus() const {
  Dyadic out;
  out.exponent_ = exponent_;
  out.mantissa_ = BigInt(1).ShiftLeft(exponent_);
  out.mantissa_ -= mantissa_;
  return out;
}

Dyadic& Dyadic::operator+=(const Dyadic& other) {
  if (exponent_ == other.exponent_) {
    mantissa_ += other.mantissa_;
  } else if (exponent_ < other.exponent_) {
    mantissa_.ShiftLeftInPlace(other.exponent_ - exponent_);
    exponent_ = other.exponent_;
    mantissa_ += other.mantissa_;
  } else {
    mantissa_ += other.mantissa_.ShiftLeft(exponent_ - other.exponent_);
  }
  return *this;
}

Dyadic& Dyadic::operator-=(const Dyadic& other) {
  if (exponent_ == other.exponent_) {
    mantissa_ -= other.mantissa_;
  } else if (exponent_ < other.exponent_) {
    mantissa_.ShiftLeftInPlace(other.exponent_ - exponent_);
    exponent_ = other.exponent_;
    mantissa_ -= other.mantissa_;
  } else {
    mantissa_ -= other.mantissa_.ShiftLeft(exponent_ - other.exponent_);
  }
  return *this;
}

Dyadic& Dyadic::operator*=(const Dyadic& other) {
  mantissa_ *= other.mantissa_;
  exponent_ = mantissa_.IsZero() ? 0 : exponent_ + other.exponent_;
  return *this;
}

Dyadic Dyadic::operator+(const Dyadic& other) const {
  Dyadic out = *this;
  out += other;
  return out;
}

Dyadic Dyadic::operator-(const Dyadic& other) const {
  Dyadic out = *this;
  out -= other;
  return out;
}

Dyadic Dyadic::operator*(const Dyadic& other) const {
  Dyadic out = *this;
  out *= other;
  return out;
}

Dyadic Dyadic::MulAdd(const Dyadic& a, const Dyadic& b, const Dyadic& c,
                      const Dyadic& d) {
  Dyadic out = a;
  out *= b;
  Dyadic t = c;
  t *= d;
  out += t;
  return out;
}

void Dyadic::Normalize() {
  if (mantissa_.IsZero()) {
    exponent_ = 0;
    return;
  }
  const uint64_t strip = std::min(mantissa_.TrailingZeroBits(), exponent_);
  if (strip == 0) return;
  mantissa_.ShiftRightInPlace(strip);
  exponent_ -= strip;
}

void Dyadic::AlignExponents(Dyadic* values, size_t count) {
  uint64_t max_exponent = 0;
  for (size_t i = 0; i < count; ++i) {
    max_exponent = std::max(max_exponent, values[i].exponent_);
  }
  for (size_t i = 0; i < count; ++i) {
    Dyadic& v = values[i];
    if (v.exponent_ == max_exponent) continue;
    v.mantissa_.ShiftLeftInPlace(max_exponent - v.exponent_);
    v.exponent_ = max_exponent;
  }
}

bool Dyadic::operator==(const Dyadic& other) const {
  if (exponent_ == other.exponent_) return mantissa_ == other.mantissa_;
  if (sign() != other.sign()) return false;
  if (exponent_ < other.exponent_) {
    return mantissa_.ShiftLeft(other.exponent_ - exponent_) ==
           other.mantissa_;
  }
  return mantissa_ == other.mantissa_.ShiftLeft(exponent_ - other.exponent_);
}

std::string Dyadic::ToString() const { return ToRational().ToString(); }

double Dyadic::ToDouble() const { return ToRational().ToDouble(); }

}  // namespace gmc
