// Fixed-width dyadic numbers: uint64 / 128-bit mantissas for the batched
// exact evaluation kernels.
//
// The BigInt-mantissa Dyadic (util/dyadic.h) makes the exact batch pass
// gcd-free, but every operation still walks a heap-capable limb vector
// through out-of-line calls. The circuit values of a weighted model count
// are PROBABILITIES, though, and that makes a stronger representation
// sound: a value v in [0, 1] held as v = m · 2^-E has a NON-NEGATIVE
// mantissa m <= 2^E, so once the per-node exponent E is known, the
// mantissa's width is known a priori. The batched evaluator exploits this
// by folding per-variable weight exponents over the circuit ONCE per batch
// (nnf_fixed.cc): when every node exponent fits 63 (resp. 127) bits, the
// whole pass runs on raw uint64 (resp. two-limb UInt128) mantissa arrays —
// contiguous SoA columns, uniform per-node shift amounts, no branches, no
// per-element overflow checks, nothing that blocks auto-vectorization.
//
// This header provides the two-limb unsigned integer the 128-bit kernel
// streams, plus Dyadic64/Dyadic128 — scalar fixed-width dyadics with
// overflow-CHECKED operations. The scalar types are the reference
// semantics for the kernels (tests pit both against the BigInt Dyadic) and
// the building block for callers that stream values one at a time and want
// the cheap representation with a per-operation fallback instead of the
// batch-level exponent analysis.
//
// Exactness contract: identical to Dyadic — every value is exactly
// mantissa · 2^-exponent, and ToRational produces the canonical reduced
// Rational. Operations that WOULD overflow report failure and leave the
// destination untouched; they never round.

#ifndef GMC_UTIL_DYADIC_FIXED_H_
#define GMC_UTIL_DYADIC_FIXED_H_

#include <bit>
#include <cstdint>
#include <optional>
#include <utility>

#include "util/bigint.h"
#include "util/check.h"
#include "util/dyadic.h"
#include "util/rational.h"

namespace gmc {

// x * y as a full 128-bit product, split into (low, high) 64-bit halves.
inline void Mul64To128(uint64_t x, uint64_t y, uint64_t* lo, uint64_t* hi) {
#ifdef __SIZEOF_INT128__
  const unsigned __int128 p =
      static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(y);
  *lo = static_cast<uint64_t>(p);
  *hi = static_cast<uint64_t>(p >> 64);
#else
  const uint64_t x0 = x & 0xffffffffu, x1 = x >> 32;
  const uint64_t y0 = y & 0xffffffffu, y1 = y >> 32;
  const uint64_t p00 = x0 * y0;
  const uint64_t p01 = x0 * y1;
  const uint64_t p10 = x1 * y0;
  const uint64_t p11 = x1 * y1;
  const uint64_t mid = (p00 >> 32) + (p01 & 0xffffffffu) + (p10 & 0xffffffffu);
  *lo = (p00 & 0xffffffffu) | (mid << 32);
  *hi = p11 + (p01 >> 32) + (p10 >> 32) + (mid >> 32);
#endif
}

// Unsigned 128-bit integer as an explicit pair of uint64 limbs — the
// mantissa word of the 128-bit batch kernel. Only the operations that
// kernel streams are provided; Mul wraps modulo 2^128 (the kernel's
// exponent analysis guarantees products fit), MulChecked detects overflow
// for the scalar Dyadic128 type.
struct UInt128 {
  uint64_t lo = 0;
  uint64_t hi = 0;

  constexpr UInt128() = default;
  constexpr UInt128(uint64_t low) : lo(low) {}  // NOLINT: same value set
  constexpr UInt128(uint64_t low, uint64_t high) : lo(low), hi(high) {}

  bool IsZero() const { return (lo | hi) == 0; }

  friend UInt128 operator+(UInt128 a, UInt128 b) {
    UInt128 out;
    out.lo = a.lo + b.lo;
    out.hi = a.hi + b.hi + (out.lo < a.lo ? 1 : 0);
    return out;
  }
  friend UInt128 operator-(UInt128 a, UInt128 b) {
    UInt128 out;
    out.lo = a.lo - b.lo;
    out.hi = a.hi - b.hi - (a.lo < b.lo ? 1 : 0);
    return out;
  }
  UInt128& operator+=(UInt128 other) { return *this = *this + other; }
  UInt128& operator*=(UInt128 other) { return *this = Mul(*this, other); }
  friend bool operator==(UInt128 a, UInt128 b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
  friend bool operator!=(UInt128 a, UInt128 b) { return !(a == b); }
  friend bool operator<(UInt128 a, UInt128 b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }
  friend bool operator<=(UInt128 a, UInt128 b) { return !(b < a); }

  // a * b modulo 2^128. Both operands having a non-zero high limb means
  // the product cannot fit (>= 2^128); the kernel's exponent bound rules
  // that out, so the a.hi * b.hi word is structurally zero.
  static UInt128 Mul(UInt128 a, UInt128 b) {
    GMC_DCHECK(a.hi == 0 || b.hi == 0);
    UInt128 out;
    uint64_t carry;
    Mul64To128(a.lo, b.lo, &out.lo, &carry);
    out.hi = carry + a.lo * b.hi + a.hi * b.lo;
    return out;
  }

  // a * b if it fits 128 bits; false (out untouched) on overflow.
  static bool MulChecked(UInt128 a, UInt128 b, UInt128* out) {
    if (a.hi != 0 && b.hi != 0) return false;
    // One operand is a bare uint64 at this point; fold the cross term.
    const uint64_t small = a.hi == 0 ? a.lo : b.lo;
    const uint64_t big_hi = a.hi == 0 ? b.hi : a.hi;
    const uint64_t big_lo = a.hi == 0 ? b.lo : a.lo;
    uint64_t lo, carry, cross_lo, cross_hi;
    Mul64To128(small, big_lo, &lo, &carry);
    Mul64To128(small, big_hi, &cross_lo, &cross_hi);
    if (cross_hi != 0) return false;
    const uint64_t hi = carry + cross_lo;
    if (hi < carry) return false;
    out->lo = lo;
    out->hi = hi;
    return true;
  }

  // *this << shift for shift in [0, 128); bits shifted past 2^128 are
  // dropped (the kernel's exponent analysis rules that out).
  UInt128 Shl(unsigned shift) const {
    if (shift == 0) return *this;
    UInt128 out;
    if (shift >= 64) {
      out.hi = lo << (shift - 64);
    } else {
      out.hi = (hi << shift) | (lo >> (64 - shift));
      out.lo = lo << shift;
    }
    return out;
  }
  UInt128 Shr(unsigned shift) const {
    if (shift == 0) return *this;
    UInt128 out;
    if (shift >= 64) {
      out.lo = hi >> (shift - 64);
    } else {
      out.lo = (lo >> shift) | (hi << (64 - shift));
      out.hi = hi >> shift;
    }
    return out;
  }

  // Number of bits (0 for zero) / trailing zero bits (0 for zero).
  unsigned BitLength() const {
    if (hi != 0) return 128 - std::countl_zero(hi);
    return lo == 0 ? 0 : 64 - std::countl_zero(lo);
  }
  unsigned CountTrailingZeros() const {
    if (lo != 0) return std::countr_zero(lo);
    if (hi != 0) return 64 + std::countr_zero(hi);
    return 0;
  }

  static UInt128 FromBigInt(const BigInt& value) {
    GMC_DCHECK(value.sign() >= 0 && value.BitLength() <= 128);
    return UInt128(value.Bits64At(0), value.Bits64At(64));
  }
  BigInt ToBigInt() const {
    // Assembled high-to-low in 32-bit chunks; each embeds exactly in the
    // int64 constructor.
    BigInt out(static_cast<int64_t>(hi >> 32));
    out.ShiftLeftInPlace(32);
    out += BigInt(static_cast<int64_t>(hi & 0xffffffffu));
    out.ShiftLeftInPlace(32);
    out += BigInt(static_cast<int64_t>(lo >> 32));
    out.ShiftLeftInPlace(32);
    out += BigInt(static_cast<int64_t>(lo & 0xffffffffu));
    return out;
  }
};

// Scalar dyadic with a single uint64 mantissa: value = mantissa · 2^-exp,
// non-negative only (circuit values are probabilities). All mutating
// operations are overflow-checked: they return false and leave *this
// untouched when the result would not fit — the caller's cue to fall back
// to the BigInt Dyadic.
struct Dyadic64 {
  static constexpr uint64_t kMaxExponent = 63;

  uint64_t mantissa = 0;
  uint64_t exponent = 0;

  static Dyadic64 Zero() { return {}; }
  static Dyadic64 One() { return {1, 0}; }

  // Exact conversion; nullopt unless `value` is a non-negative dyadic whose
  // reduced mantissa and exponent both fit.
  static std::optional<Dyadic64> FromRational(const Rational& value) {
    const std::optional<Dyadic> wide = Dyadic::FromRational(value);
    if (!wide.has_value() || wide->sign() < 0) return std::nullopt;
    if (wide->exponent() > kMaxExponent) return std::nullopt;
    if (wide->mantissa().BitLength() > 64) return std::nullopt;
    return Dyadic64{wide->mantissa().Bits64At(0), wide->exponent()};
  }

  bool IsZero() const { return mantissa == 0; }

  // *this * other; false on mantissa or exponent overflow.
  bool MulAssign(const Dyadic64& other) {
    uint64_t lo, hi;
    Mul64To128(mantissa, other.mantissa, &lo, &hi);
    if (hi != 0) return false;
    const uint64_t exp = exponent + other.exponent;
    if (exp < exponent) return false;  // exponent wrapped
    mantissa = lo;
    exponent = mantissa == 0 ? 0 : exp;
    return true;
  }

  // *this + other, aligning to the larger exponent; false on overflow.
  bool AddAssign(const Dyadic64& other) {
    if (other.mantissa == 0) return true;
    if (mantissa == 0) {
      *this = other;
      return true;
    }
    uint64_t a = mantissa, b = other.mantissa;
    uint64_t exp = exponent;
    if (exponent < other.exponent) {
      const uint64_t shift = other.exponent - exponent;
      if (shift > 63 || (a >> (64 - shift)) != 0) return false;
      a <<= shift;
      exp = other.exponent;
    } else if (exponent > other.exponent) {
      const uint64_t shift = exponent - other.exponent;
      if (shift > 63 || (b >> (64 - shift)) != 0) return false;
      b <<= shift;
    }
    const uint64_t sum = a + b;
    if (sum < a) return false;
    mantissa = sum;
    exponent = exp;
    return true;
  }

  // 1 - *this at this exponent; false if *this > 1 (the complement would
  // be negative) or the exponent is out of range.
  bool OneMinusAssign() {
    if (exponent > kMaxExponent) return false;
    const uint64_t one = uint64_t{1} << exponent;
    if (mantissa > one) return false;
    mantissa = one - mantissa;
    return true;
  }

  Dyadic ToDyadic() const {
    // The mantissa may exceed int64; feed it through the top bit.
    BigInt m(static_cast<int64_t>(mantissa >> 1));
    m.ShiftLeftInPlace(1);
    m += BigInt(static_cast<int64_t>(mantissa & 1));
    return Dyadic(std::move(m), exponent);
  }
  Rational ToRational() const { return ToDyadic().ToRational(); }
  double ToDouble() const { return ToDyadic().ToDouble(); }
};

// Scalar dyadic with a two-limb UInt128 mantissa; same contract as
// Dyadic64, one width up.
struct Dyadic128 {
  static constexpr uint64_t kMaxExponent = 127;

  UInt128 mantissa;
  uint64_t exponent = 0;

  static Dyadic128 Zero() { return {}; }
  static Dyadic128 One() { return {UInt128(1), 0}; }

  static std::optional<Dyadic128> FromRational(const Rational& value) {
    const std::optional<Dyadic> wide = Dyadic::FromRational(value);
    if (!wide.has_value() || wide->sign() < 0) return std::nullopt;
    if (wide->exponent() > kMaxExponent) return std::nullopt;
    if (wide->mantissa().BitLength() > 128) return std::nullopt;
    return Dyadic128{UInt128::FromBigInt(wide->mantissa()),
                     wide->exponent()};
  }

  bool IsZero() const { return mantissa.IsZero(); }

  bool MulAssign(const Dyadic128& other) {
    UInt128 product;
    if (!UInt128::MulChecked(mantissa, other.mantissa, &product)) {
      return false;
    }
    const uint64_t exp = exponent + other.exponent;
    if (exp < exponent) return false;
    mantissa = product;
    exponent = mantissa.IsZero() ? 0 : exp;
    return true;
  }

  bool AddAssign(const Dyadic128& other) {
    if (other.IsZero()) return true;
    if (IsZero()) {
      *this = other;
      return true;
    }
    UInt128 a = mantissa, b = other.mantissa;
    uint64_t exp = exponent;
    if (exponent < other.exponent) {
      const uint64_t shift = other.exponent - exponent;
      if (shift > 127 || a.BitLength() + shift > 128) return false;
      a = a.Shl(static_cast<unsigned>(shift));
      exp = other.exponent;
    } else if (exponent > other.exponent) {
      const uint64_t shift = exponent - other.exponent;
      if (shift > 127 || b.BitLength() + shift > 128) return false;
      b = b.Shl(static_cast<unsigned>(shift));
    }
    const UInt128 sum = a + b;
    if (sum < a) return false;  // carried past 2^128
    mantissa = sum;
    exponent = exp;
    return true;
  }

  bool OneMinusAssign() {
    if (exponent > kMaxExponent) return false;
    const UInt128 one = UInt128(1).Shl(static_cast<unsigned>(exponent));
    if (one < mantissa) return false;
    mantissa = one - mantissa;
    return true;
  }

  Dyadic ToDyadic() const { return Dyadic(mantissa.ToBigInt(), exponent); }
  Rational ToRational() const { return ToDyadic().ToRational(); }
  double ToDouble() const { return ToDyadic().ToDouble(); }
};

}  // namespace gmc

#endif  // GMC_UTIL_DYADIC_FIXED_H_
