#include "util/fault.h"

#include <atomic>
#include <cstdlib>
#include <mutex>

namespace gmc {
namespace fault {

namespace {

constexpr int kNumPoints = static_cast<int>(Point::kNumPoints);

// SplitMix64 finalizer — the same mixer the sampler uses for its seeds.
// Full-avalanche, so consecutive crossing indices land anywhere in [0,2^64).
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

struct State {
  // `enabled` is the one hot-path load; everything below it is only read
  // after `enabled` is observed true. Rates are fixed-point in 2^-32 so
  // the fire decision is an integer compare, and are written only under
  // config_mu (with all counters quiescent in practice: Configure happens
  // in test setup / process init, not mid-traffic).
  std::atomic<bool> enabled{false};
  std::atomic<uint64_t> threshold[kNumPoints];  // fire iff hash32 < this
  std::atomic<uint64_t> seed{0};
  std::atomic<uint64_t> crossings[kNumPoints];
  std::atomic<uint64_t> injected[kNumPoints];
  std::mutex config_mu;
};

State& GetState() {
  static State* state = new State();  // leaked: points outlive static dtors
  return *state;
}

std::once_flag& EnvOnce() {
  static std::once_flag once;
  return once;
}

bool ConfigureImpl(const std::string& spec, std::string* error);

// First ShouldFail installs GMC_FAULT; an explicit Configure consumes the
// flag instead, so a test's spec is never clobbered by a late env install.
// The env path must call ConfigureImpl, NOT the public Configure: the
// public entry point consumes EnvOnce itself, and re-entering call_once on
// the flag currently being run is a deadlock.
void MaybeInstallEnvSpec() {
  std::call_once(EnvOnce(), [] {
    const char* env = std::getenv("GMC_FAULT");
    if (env != nullptr && env[0] != '\0') {
      (void)ConfigureImpl(env, nullptr);  // malformed env spec = disabled
    }
  });
}

void ZeroCountersLocked(State& s) {
  for (int i = 0; i < kNumPoints; ++i) {
    s.crossings[i].store(0, std::memory_order_relaxed);
    s.injected[i].store(0, std::memory_order_relaxed);
  }
}

bool ParsePoint(const std::string& name, int* out) {
  for (int i = 0; i < kNumPoints; ++i) {
    if (name == PointName(static_cast<Point>(i))) {
      *out = i;
      return true;
    }
  }
  return false;
}

// Strict decimal in [0, 1]: digits, optional fraction. No strtod — its
// locale sensitivity and hex/inf forms have no place in an operator knob.
bool ParseRate(const std::string& text, uint64_t* threshold) {
  if (text.empty()) return false;
  uint64_t integer = 0;
  size_t i = 0;
  for (; i < text.size() && text[i] != '.'; ++i) {
    if (text[i] < '0' || text[i] > '9') return false;
    integer = integer * 10 + static_cast<uint64_t>(text[i] - '0');
    if (integer > 1) return false;
  }
  // Fixed-point fraction in 2^-32, accumulated digit by digit.
  uint64_t fraction = 0;  // numerator over `scale`
  uint64_t scale = 1;
  if (i < text.size()) {
    if (text[i] != '.' || i + 1 == text.size()) return false;
    for (++i; i < text.size(); ++i) {
      if (text[i] < '0' || text[i] > '9') return false;
      if (scale >= 1000000000ull) continue;  // 9 digits of rate is plenty
      fraction = fraction * 10 + static_cast<uint64_t>(text[i] - '0');
      scale *= 10;
    }
  }
  if (integer == 1 && fraction != 0) return false;
  *threshold = integer == 1 ? (1ull << 32)
                            : ((fraction << 32) + scale - 1) / scale;
  return true;
}

// The spec parser + installer, shared by the public Configure and the
// GMC_FAULT env install (which must bypass the EnvOnce consumption).
bool ConfigureImpl(const std::string& spec, std::string* error) {
  uint64_t thresholds[kNumPoints] = {};
  uint64_t seed = 0;
  size_t start = 0;
  while (start <= spec.size() && !spec.empty()) {
    size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(start, end - start);
    start = end + 1;
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string::npos) {
      if (error != nullptr) *error = "missing '=' in '" + item + "'";
      return false;
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "seed") {
      seed = 0;
      if (value.empty() || value.size() > 19) {
        if (error != nullptr) *error = "bad seed '" + value + "'";
        return false;
      }
      for (char c : value) {
        if (c < '0' || c > '9') {
          if (error != nullptr) *error = "bad seed '" + value + "'";
          return false;
        }
        seed = seed * 10 + static_cast<uint64_t>(c - '0');
      }
      continue;
    }
    int point = 0;
    if (!ParsePoint(key, &point)) {
      if (error != nullptr) *error = "unknown fault point '" + key + "'";
      return false;
    }
    if (!ParseRate(value, &thresholds[point])) {
      if (error != nullptr) {
        *error = "rate for '" + key + "' must be a decimal in [0, 1]";
      }
      return false;
    }
    if (start > spec.size()) break;
  }

  State& s = GetState();
  std::lock_guard<std::mutex> lock(s.config_mu);
  bool any = false;
  for (int i = 0; i < kNumPoints; ++i) {
    s.threshold[i].store(thresholds[i], std::memory_order_relaxed);
    any = any || thresholds[i] > 0;
  }
  s.seed.store(seed, std::memory_order_relaxed);
  ZeroCountersLocked(s);
  s.enabled.store(any, std::memory_order_release);
  return true;
}

}  // namespace

const char* PointName(Point point) {
  switch (point) {
    case Point::kStoreRead:
      return "store.read";
    case Point::kStoreWrite:
      return "store.write";
    case Point::kCacheInsert:
      return "cache.insert";
    case Point::kSocketWrite:
      return "socket.write";
    case Point::kServeAccept:
      return "serve.accept";
    case Point::kStoreScrub:
      return "store.scrub";
    case Point::kApproxPlan:
      return "approx.plan";
    case Point::kNumPoints:
      break;
  }
  return "?";
}

bool Configure(const std::string& spec, std::string* error) {
  std::call_once(EnvOnce(), [] {});  // explicit config wins over GMC_FAULT
  return ConfigureImpl(spec, error);
}

bool ShouldFail(Point point) {
  MaybeInstallEnvSpec();
  State& s = GetState();
  if (!s.enabled.load(std::memory_order_relaxed)) return false;
  const int i = static_cast<int>(point);
  const uint64_t n = s.crossings[i].fetch_add(1, std::memory_order_relaxed);
  const uint64_t threshold = s.threshold[i].load(std::memory_order_relaxed);
  if (threshold == 0) return false;
  // Pure function of (seed, point, crossing index): run-to-run and
  // machine-to-machine reproducible for a fixed per-point call sequence.
  const uint64_t h = Mix(s.seed.load(std::memory_order_relaxed) ^
                         (static_cast<uint64_t>(i) << 56) ^ n);
  if ((h >> 32) >= threshold) return false;
  s.injected[i].fetch_add(1, std::memory_order_relaxed);
  return true;
}

uint64_t InjectedCount(Point point) {
  return GetState()
      .injected[static_cast<int>(point)]
      .load(std::memory_order_relaxed);
}

uint64_t CrossingCount(Point point) {
  return GetState()
      .crossings[static_cast<int>(point)]
      .load(std::memory_order_relaxed);
}

void Reset() {
  std::call_once(EnvOnce(), [] {});  // a Reset must stay reset
  State& s = GetState();
  std::lock_guard<std::mutex> lock(s.config_mu);
  for (int i = 0; i < kNumPoints; ++i) {
    s.threshold[i].store(0, std::memory_order_relaxed);
  }
  s.seed.store(0, std::memory_order_relaxed);
  ZeroCountersLocked(s);
  s.enabled.store(false, std::memory_order_release);
}

}  // namespace fault
}  // namespace gmc
