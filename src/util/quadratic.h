// Exact arithmetic in the real quadratic field ℚ(√d).
//
// The eigenvalues λ1, λ2 of the small matrix A(1) (Lemma 3.21) are roots of
// a rational quadratic and generally irrational, but they live in ℚ(√disc).
// Representing numbers as a + b·√d with a, b ∈ ℚ lets the library verify
// Theorem 3.14's conditions (22)–(24) — λ1 ≠ ±λ2 ≠ 0, b_i ≠ 0,
// a_i·b_j ≠ a_j·b_i — exactly rather than in floating point.

#ifndef GMC_UTIL_QUADRATIC_H_
#define GMC_UTIL_QUADRATIC_H_

#include <string>

#include "util/rational.h"

namespace gmc {

// A number a + b√d for a fixed non-negative square-free-ish radicand d
// (d need not be square-free; d = 0 degenerates to ℚ). All operands of a
// binary operation must share the same d (checked).
class QuadraticNumber {
 public:
  QuadraticNumber() : a_(0), b_(0), d_(0) {}
  QuadraticNumber(Rational a, Rational b, Rational d);

  static QuadraticNumber FromRational(Rational a, Rational d);
  // √d itself.
  static QuadraticNumber Root(Rational d);

  const Rational& rational_part() const { return a_; }
  const Rational& root_part() const { return b_; }
  const Rational& radicand() const { return d_; }

  bool IsZero() const { return a_.IsZero() && b_.IsZero(); }
  bool IsRational() const { return b_.IsZero(); }

  QuadraticNumber operator+(const QuadraticNumber& other) const;
  QuadraticNumber operator-(const QuadraticNumber& other) const;
  QuadraticNumber operator*(const QuadraticNumber& other) const;
  QuadraticNumber operator/(const QuadraticNumber& other) const;
  QuadraticNumber operator-() const;
  QuadraticNumber Conjugate() const;  // a − b√d
  // Norm a² − d·b² (rational).
  Rational Norm() const;
  QuadraticNumber Pow(uint64_t exponent) const;

  bool operator==(const QuadraticNumber& other) const;
  bool operator!=(const QuadraticNumber& other) const {
    return !(*this == other);
  }

  // Sign of the real value a + b√d (d ≥ 0), computed exactly.
  int Sign() const;
  bool operator<(const QuadraticNumber& other) const {
    return (*this - other).Sign() < 0;
  }

  double ToDouble() const;
  std::string ToString() const;

 private:
  void AlignRadicand(const QuadraticNumber& other);

  Rational a_;
  Rational b_;
  Rational d_;
};

}  // namespace gmc

#endif  // GMC_UTIL_QUADRATIC_H_
