#include "util/bigint.h"

#include <algorithm>
#include <cctype>

#include "util/check.h"

namespace gmc {

namespace {

constexpr uint64_t kBase = uint64_t{1} << 32;
constexpr size_t kKaratsubaThreshold = 32;  // limbs

void TrimZeros(std::vector<uint32_t>* limbs) {
  while (!limbs->empty() && limbs->back() == 0) limbs->pop_back();
}

// Shifts a magnitude left by `s` bits, 0 <= s < 32, appending a limb if
// needed.
std::vector<uint32_t> ShiftLeftSmall(const std::vector<uint32_t>& a, int s) {
  if (s == 0) return a;
  std::vector<uint32_t> out(a.size() + 1, 0);
  uint32_t carry = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    out[i] = (a[i] << s) | carry;
    carry = static_cast<uint32_t>(static_cast<uint64_t>(a[i]) >> (32 - s));
  }
  out[a.size()] = carry;
  TrimZeros(&out);
  return out;
}

std::vector<uint32_t> ShiftRightSmall(const std::vector<uint32_t>& a, int s) {
  if (s == 0) {
    std::vector<uint32_t> out = a;
    TrimZeros(&out);
    return out;
  }
  std::vector<uint32_t> out(a.size(), 0);
  uint32_t carry = 0;
  for (size_t i = a.size(); i-- > 0;) {
    out[i] = (a[i] >> s) | carry;
    carry = a[i] << (32 - s);
  }
  TrimZeros(&out);
  return out;
}

}  // namespace

BigInt::BigInt(int64_t value) {
  if (value == 0) return;
  sign_ = value > 0 ? 1 : -1;
  // Careful with INT64_MIN: negate in unsigned space.
  uint64_t magnitude =
      value > 0 ? static_cast<uint64_t>(value)
                : ~static_cast<uint64_t>(value) + 1;  // two's complement abs
  limbs_.push_back(static_cast<uint32_t>(magnitude & 0xffffffffu));
  if (magnitude >> 32) limbs_.push_back(static_cast<uint32_t>(magnitude >> 32));
}

void BigInt::Normalize() {
  TrimZeros(&limbs_);
  if (limbs_.empty()) sign_ = 0;
}

int BigInt::CompareMagnitude(const std::vector<uint32_t>& a,
                             const std::vector<uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<uint32_t> BigInt::AddMagnitude(const std::vector<uint32_t>& a,
                                           const std::vector<uint32_t>& b) {
  const std::vector<uint32_t>& longer = a.size() >= b.size() ? a : b;
  const std::vector<uint32_t>& shorter = a.size() >= b.size() ? b : a;
  std::vector<uint32_t> out(longer.size() + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < longer.size(); ++i) {
    uint64_t sum = carry + longer[i] + (i < shorter.size() ? shorter[i] : 0);
    out[i] = static_cast<uint32_t>(sum & 0xffffffffu);
    carry = sum >> 32;
  }
  out[longer.size()] = static_cast<uint32_t>(carry);
  TrimZeros(&out);
  return out;
}

std::vector<uint32_t> BigInt::SubMagnitude(const std::vector<uint32_t>& a,
                                           const std::vector<uint32_t>& b) {
  GMC_DCHECK(CompareMagnitude(a, b) >= 0);
  std::vector<uint32_t> out(a.size(), 0);
  int64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a[i]) -
                   (i < b.size() ? static_cast<int64_t>(b[i]) : 0) - borrow;
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out[i] = static_cast<uint32_t>(diff);
  }
  GMC_DCHECK(borrow == 0);
  TrimZeros(&out);
  return out;
}

std::vector<uint32_t> BigInt::MulSchoolbook(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<uint32_t> out(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    uint64_t ai = a[i];
    for (size_t j = 0; j < b.size(); ++j) {
      uint64_t cur = out[i + j] + ai * b[j] + carry;
      out[i + j] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    size_t k = i + b.size();
    while (carry) {
      uint64_t cur = out[k] + carry;
      out[k] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  TrimZeros(&out);
  return out;
}

std::vector<uint32_t> BigInt::MulKaratsuba(const std::vector<uint32_t>& a,
                                           const std::vector<uint32_t>& b) {
  if (a.size() < kKaratsubaThreshold || b.size() < kKaratsubaThreshold) {
    return MulSchoolbook(a, b);
  }
  const size_t half = std::max(a.size(), b.size()) / 2;
  auto lower = [half](const std::vector<uint32_t>& x) {
    std::vector<uint32_t> out(x.begin(),
                              x.begin() + std::min(half, x.size()));
    TrimZeros(&out);
    return out;
  };
  auto upper = [half](const std::vector<uint32_t>& x) {
    if (x.size() <= half) return std::vector<uint32_t>{};
    std::vector<uint32_t> out(x.begin() + half, x.end());
    TrimZeros(&out);
    return out;
  };
  std::vector<uint32_t> a0 = lower(a), a1 = upper(a);
  std::vector<uint32_t> b0 = lower(b), b1 = upper(b);
  std::vector<uint32_t> z0 = MulKaratsuba(a0, b0);
  std::vector<uint32_t> z2 = MulKaratsuba(a1, b1);
  std::vector<uint32_t> sum_a = AddMagnitude(a0, a1);
  std::vector<uint32_t> sum_b = AddMagnitude(b0, b1);
  std::vector<uint32_t> z1 = MulKaratsuba(sum_a, sum_b);
  z1 = SubMagnitude(z1, AddMagnitude(z0, z2));
  // result = z2 << (2*half limbs) + z1 << (half limbs) + z0. The product of
  // an m-limb and an n-limb magnitude has at most m + n limbs, so this buffer
  // bounds all carry propagation.
  std::vector<uint32_t> out(a.size() + b.size(), 0);
  auto accumulate = [&out](const std::vector<uint32_t>& x, size_t offset) {
    uint64_t carry = 0;
    for (size_t i = 0; i < x.size(); ++i) {
      uint64_t cur = static_cast<uint64_t>(out[offset + i]) + x[i] + carry;
      out[offset + i] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    size_t k = offset + x.size();
    while (carry) {
      GMC_DCHECK(k < out.size());
      uint64_t cur = static_cast<uint64_t>(out[k]) + carry;
      out[k] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  };
  accumulate(z0, 0);
  accumulate(z1, half);
  accumulate(z2, 2 * half);
  TrimZeros(&out);
  return out;
}

std::vector<uint32_t> BigInt::MulMagnitude(const std::vector<uint32_t>& a,
                                           const std::vector<uint32_t>& b) {
  if (a.size() >= kKaratsubaThreshold && b.size() >= kKaratsubaThreshold) {
    return MulKaratsuba(a, b);
  }
  return MulSchoolbook(a, b);
}

// Knuth TAOCP vol. 2, Algorithm 4.3.1 D.
void BigInt::DivModMagnitude(const std::vector<uint32_t>& u_in,
                             const std::vector<uint32_t>& v_in,
                             std::vector<uint32_t>* quotient,
                             std::vector<uint32_t>* remainder) {
  GMC_CHECK_MSG(!v_in.empty(), "division by zero");
  if (CompareMagnitude(u_in, v_in) < 0) {
    quotient->clear();
    *remainder = u_in;
    TrimZeros(remainder);
    return;
  }
  if (v_in.size() == 1) {
    // Single-limb fast path.
    const uint64_t d = v_in[0];
    std::vector<uint32_t> q(u_in.size(), 0);
    uint64_t rem = 0;
    for (size_t i = u_in.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | u_in[i];
      q[i] = static_cast<uint32_t>(cur / d);
      rem = cur % d;
    }
    TrimZeros(&q);
    *quotient = std::move(q);
    remainder->clear();
    if (rem) remainder->push_back(static_cast<uint32_t>(rem));
    return;
  }
  // Normalize so that the top limb of v has its high bit set.
  int shift = 0;
  {
    uint32_t top = v_in.back();
    while ((top & 0x80000000u) == 0) {
      top <<= 1;
      ++shift;
    }
  }
  std::vector<uint32_t> u = ShiftLeftSmall(u_in, shift);
  std::vector<uint32_t> v = ShiftLeftSmall(v_in, shift);
  const size_t n = v.size();
  const size_t m = u.size() - n;  // u.size() >= n because |u| >= |v|
  u.resize(u_in.size() + 1 + (u.size() - u_in.size() ? 0 : 0), 0);
  // Ensure u has m + n + 1 limbs.
  u.resize(m + n + 1, 0);
  std::vector<uint32_t> q(m + 1, 0);
  const uint64_t v1 = v[n - 1];
  const uint64_t v2 = v[n - 2];
  for (size_t j = m + 1; j-- > 0;) {
    const uint64_t numerator =
        (static_cast<uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    uint64_t qhat = numerator / v1;
    uint64_t rhat = numerator % v1;
    while (qhat >= kBase ||
           qhat * v2 > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += v1;
      if (rhat >= kBase) break;
    }
    // Multiply and subtract: u[j..j+n] -= qhat * v.
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      uint64_t product = qhat * v[i] + carry;
      carry = product >> 32;
      int64_t diff = static_cast<int64_t>(u[i + j]) -
                     static_cast<int64_t>(product & 0xffffffffu) - borrow;
      if (diff < 0) {
        diff += static_cast<int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<uint32_t>(diff);
    }
    int64_t diff = static_cast<int64_t>(u[j + n]) -
                   static_cast<int64_t>(carry) - borrow;
    if (diff < 0) {
      // qhat was one too large: add v back.
      diff += static_cast<int64_t>(kBase);
      u[j + n] = static_cast<uint32_t>(diff);
      --qhat;
      uint64_t carry2 = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t sum = static_cast<uint64_t>(u[i + j]) + v[i] + carry2;
        u[i + j] = static_cast<uint32_t>(sum & 0xffffffffu);
        carry2 = sum >> 32;
      }
      u[j + n] = static_cast<uint32_t>(u[j + n] + carry2);
    } else {
      u[j + n] = static_cast<uint32_t>(diff);
    }
    q[j] = static_cast<uint32_t>(qhat);
  }
  TrimZeros(&q);
  *quotient = std::move(q);
  u.resize(n);
  *remainder = ShiftRightSmall(u, shift);
  TrimZeros(remainder);
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  out.sign_ = -out.sign_;
  return out;
}

BigInt BigInt::Abs() const {
  BigInt out = *this;
  if (out.sign_ < 0) out.sign_ = 1;
  return out;
}

bool BigInt::IsPowerOfTwo() const {
  if (sign_ == 0) return false;
  for (size_t i = 0; i + 1 < limbs_.size(); ++i) {
    if (limbs_[i] != 0) return false;
  }
  uint32_t top = limbs_.back();
  return (top & (top - 1)) == 0;
}

BigInt BigInt::operator+(const BigInt& other) const {
  if (sign_ == 0) return other;
  if (other.sign_ == 0) return *this;
  BigInt out;
  if (sign_ == other.sign_) {
    out.sign_ = sign_;
    out.limbs_ = AddMagnitude(limbs_, other.limbs_);
  } else {
    int cmp = CompareMagnitude(limbs_, other.limbs_);
    if (cmp == 0) return BigInt();
    if (cmp > 0) {
      out.sign_ = sign_;
      out.limbs_ = SubMagnitude(limbs_, other.limbs_);
    } else {
      out.sign_ = other.sign_;
      out.limbs_ = SubMagnitude(other.limbs_, limbs_);
    }
  }
  out.Normalize();
  return out;
}

BigInt BigInt::operator-(const BigInt& other) const { return *this + (-other); }

BigInt BigInt::operator*(const BigInt& other) const {
  if (sign_ == 0 || other.sign_ == 0) return BigInt();
  BigInt out;
  out.sign_ = sign_ * other.sign_;
  out.limbs_ = MulMagnitude(limbs_, other.limbs_);
  out.Normalize();
  return out;
}

void BigInt::DivMod(const BigInt& numerator, const BigInt& denominator,
                    BigInt* quotient, BigInt* remainder) {
  GMC_CHECK_MSG(!denominator.IsZero(), "division by zero");
  BigInt q, r;
  DivModMagnitude(numerator.limbs_, denominator.limbs_, &q.limbs_, &r.limbs_);
  q.sign_ = q.limbs_.empty() ? 0 : numerator.sign_ * denominator.sign_;
  r.sign_ = r.limbs_.empty() ? 0 : numerator.sign_;
  if (quotient != nullptr) *quotient = std::move(q);
  if (remainder != nullptr) *remainder = std::move(r);
}

BigInt BigInt::operator/(const BigInt& other) const {
  BigInt q;
  DivMod(*this, other, &q, nullptr);
  return q;
}

BigInt BigInt::operator%(const BigInt& other) const {
  BigInt r;
  DivMod(*this, other, nullptr, &r);
  return r;
}

BigInt BigInt::ShiftLeft(uint64_t bits) const {
  if (IsZero() || bits == 0) {
    BigInt out = *this;
    return out;
  }
  const size_t limb_shift = static_cast<size_t>(bits / 32);
  const int small = static_cast<int>(bits % 32);
  BigInt out;
  out.sign_ = sign_;
  out.limbs_.assign(limb_shift, 0);
  std::vector<uint32_t> shifted = ShiftLeftSmall(limbs_, small);
  out.limbs_.insert(out.limbs_.end(), shifted.begin(), shifted.end());
  out.Normalize();
  return out;
}

BigInt BigInt::ShiftRight(uint64_t bits) const {
  if (IsZero() || bits == 0) return *this;
  const size_t limb_shift = static_cast<size_t>(bits / 32);
  if (limb_shift >= limbs_.size()) return BigInt();
  const int small = static_cast<int>(bits % 32);
  BigInt out;
  out.sign_ = sign_;
  out.limbs_.assign(limbs_.begin() + limb_shift, limbs_.end());
  out.limbs_ = ShiftRightSmall(out.limbs_, small);
  out.Normalize();
  return out;
}

BigInt BigInt::Gcd(const BigInt& a_in, const BigInt& b_in) {
  BigInt a = a_in.Abs();
  BigInt b = b_in.Abs();
  if (a.IsZero()) return b;
  if (b.IsZero()) return a;
  // Binary (Stein) GCD: strips common factors of two, then subtract-and-shift.
  uint64_t common_twos = 0;
  auto trailing_zero_bits = [](const BigInt& x) -> uint64_t {
    uint64_t count = 0;
    for (size_t i = 0; i < x.limbs_.size(); ++i) {
      if (x.limbs_[i] == 0) {
        count += 32;
      } else {
        uint32_t limb = x.limbs_[i];
        while ((limb & 1) == 0) {
          limb >>= 1;
          ++count;
        }
        break;
      }
    }
    return count;
  };
  uint64_t za = trailing_zero_bits(a);
  uint64_t zb = trailing_zero_bits(b);
  common_twos = std::min(za, zb);
  a = a.ShiftRight(za);
  b = b.ShiftRight(zb);
  while (true) {
    int cmp = CompareMagnitude(a.limbs_, b.limbs_);
    if (cmp == 0) break;
    if (cmp < 0) std::swap(a, b);
    a = a - b;
    a = a.ShiftRight(trailing_zero_bits(a));
  }
  return a.ShiftLeft(common_twos);
}

BigInt BigInt::Pow(uint64_t exponent) const {
  BigInt result(1);
  BigInt base = *this;
  while (exponent > 0) {
    if (exponent & 1) result *= base;
    base *= base;
    exponent >>= 1;
  }
  return result;
}

uint64_t BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  uint64_t bits = (limbs_.size() - 1) * 32ull;
  uint32_t top = limbs_.back();
  while (top) {
    top >>= 1;
    ++bits;
  }
  return bits;
}

BigInt BigInt::ISqrt() const {
  GMC_CHECK_MSG(sign_ >= 0, "ISqrt of negative number");
  if (IsZero()) return BigInt(0);
  // Newton's method with a power-of-two seed above the true root.
  BigInt x = BigInt(1).ShiftLeft(BitLength() / 2 + 1);
  while (true) {
    BigInt next = (x + *this / x).ShiftRight(1);
    if (next >= x) break;
    x = next;
  }
  return x;
}

bool BigInt::IsPerfectSquare() const {
  if (sign_ < 0) return false;
  BigInt root = ISqrt();
  return root * root == *this;
}

bool BigInt::operator==(const BigInt& other) const {
  return sign_ == other.sign_ && limbs_ == other.limbs_;
}

bool BigInt::operator<(const BigInt& other) const {
  if (sign_ != other.sign_) return sign_ < other.sign_;
  int cmp = CompareMagnitude(limbs_, other.limbs_);
  return sign_ >= 0 ? cmp < 0 : cmp > 0;
}

BigInt BigInt::FromDecimal(const std::string& text) {
  GMC_CHECK_MSG(!text.empty(), "empty decimal string");
  size_t pos = 0;
  int sign = 1;
  if (text[0] == '-') {
    sign = -1;
    pos = 1;
  } else if (text[0] == '+') {
    pos = 1;
  }
  GMC_CHECK_MSG(pos < text.size(), "decimal string has no digits");
  BigInt out;
  size_t i = pos;
  while (i < text.size()) {
    size_t take = std::min<size_t>(9, text.size() - i);
    uint64_t chunk = 0;
    for (size_t k = 0; k < take; ++k) {
      GMC_CHECK_MSG(std::isdigit(static_cast<unsigned char>(text[i + k])),
                    "non-digit in decimal string");
      chunk = chunk * 10 + static_cast<uint64_t>(text[i + k] - '0');
    }
    out = out * BigInt(10).Pow(take) + BigInt(static_cast<int64_t>(chunk));
    i += take;
  }
  if (sign < 0) out = -out;
  return out;
}

std::string BigInt::ToString() const {
  if (IsZero()) return "0";
  std::vector<uint32_t> mag = limbs_;
  std::string digits;
  // Repeatedly divide by 1e9 and emit 9-digit groups.
  while (!mag.empty()) {
    uint64_t rem = 0;
    for (size_t i = mag.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | mag[i];
      mag[i] = static_cast<uint32_t>(cur / 1000000000ull);
      rem = cur % 1000000000ull;
    }
    TrimZeros(&mag);
    for (int k = 0; k < 9; ++k) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (sign_ < 0) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

double BigInt::ToDouble() const {
  double out = 0.0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    out = out * 4294967296.0 + static_cast<double>(limbs_[i]);
  }
  return sign_ < 0 ? -out : out;
}

int64_t BigInt::ToInt64() const {
  GMC_CHECK_MSG(limbs_.size() <= 2, "BigInt out of int64 range");
  uint64_t magnitude = 0;
  if (limbs_.size() >= 1) magnitude = limbs_[0];
  if (limbs_.size() == 2) magnitude |= static_cast<uint64_t>(limbs_[1]) << 32;
  if (sign_ >= 0) {
    GMC_CHECK_MSG(magnitude <= static_cast<uint64_t>(INT64_MAX),
                  "BigInt out of int64 range");
    return static_cast<int64_t>(magnitude);
  }
  GMC_CHECK_MSG(magnitude <= static_cast<uint64_t>(INT64_MAX) + 1,
                "BigInt out of int64 range");
  return -static_cast<int64_t>(magnitude - 1) - 1;
}

size_t BigInt::Hash() const {
  size_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<uint64_t>(sign_ + 1));
  for (uint32_t limb : limbs_) mix(limb);
  return h;
}

}  // namespace gmc
