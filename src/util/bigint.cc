#include "util/bigint.h"

#include <algorithm>
#include <bit>
#include <cctype>

#include "util/check.h"

namespace gmc {

namespace {

using internal::LimbVec;

constexpr uint64_t kBase = uint64_t{1} << 32;
constexpr size_t kKaratsubaThreshold = 32;  // limbs

// The word-parallel loops below read limb pairs as one 64-bit word; that is
// only a straight memcpy on little-endian targets (every platform this
// library builds for), so big-endian falls back to the scalar loops.
constexpr bool kLittleEndian = std::endian::native == std::endian::little;

uint64_t LoadPair(const uint32_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

void StorePair(uint32_t* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }

// Shifts a magnitude left by `s` bits, 0 <= s < 32, appending a limb if
// needed.
LimbVec ShiftLeftSmall(const LimbVec& a, int s) {
  if (s == 0) return a;
  LimbVec out;
  out.resize(a.size() + 1);
  uint32_t carry = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    out[i] = (a[i] << s) | carry;
    carry = static_cast<uint32_t>(static_cast<uint64_t>(a[i]) >> (32 - s));
  }
  out[a.size()] = carry;
  out.TrimZeros();
  return out;
}

LimbVec ShiftRightSmall(const LimbVec& a, int s) {
  if (s == 0) {
    LimbVec out = a;
    out.TrimZeros();
    return out;
  }
  LimbVec out;
  out.resize(a.size());
  uint32_t carry = 0;
  for (size_t i = a.size(); i-- > 0;) {
    out[i] = (a[i] >> s) | carry;
    carry = a[i] << (32 - s);
  }
  out.TrimZeros();
  return out;
}

// a += b on magnitudes, in place; `b` must not alias `a`'s buffer (the
// callers special-case self-aliasing before getting here). The inner loop
// consumes two limbs per iteration through 64-bit accumulators.
void AddMagnitudeInPlace(LimbVec* a, const LimbVec& b) {
  if (b.size() > a->size()) a->resize(b.size());
  uint32_t* ad = a->data();
  const uint32_t* bd = b.data();
  const size_t bn = b.size();
  uint64_t carry = 0;
  size_t i = 0;
  if (kLittleEndian) {
    for (; i + 2 <= bn; i += 2) {
      const uint64_t av = LoadPair(ad + i);
      const uint64_t bv = LoadPair(bd + i);
      const uint64_t with_carry = av + carry;  // carry ∈ {0, 1}
      const uint64_t sum = with_carry + bv;
      carry = (with_carry < av ? 1 : 0) | (sum < bv ? 1 : 0);
      StorePair(ad + i, sum);
    }
  }
  for (; i < bn; ++i) {
    const uint64_t sum = carry + ad[i] + bd[i];
    ad[i] = static_cast<uint32_t>(sum);
    carry = sum >> 32;
  }
  const size_t an = a->size();
  for (; carry && i < an; ++i) {
    const uint64_t sum = carry + ad[i];
    ad[i] = static_cast<uint32_t>(sum);
    carry = sum >> 32;
  }
  if (carry) a->push_back(static_cast<uint32_t>(carry));
}

// a -= b on magnitudes, in place; requires |a| >= |b| and no aliasing.
void SubMagnitudeInPlace(LimbVec* a, const LimbVec& b) {
  uint32_t* ad = a->data();
  const uint32_t* bd = b.data();
  const size_t bn = b.size();
  uint64_t borrow = 0;
  size_t i = 0;
  if (kLittleEndian) {
    for (; i + 2 <= bn; i += 2) {
      const uint64_t av = LoadPair(ad + i);
      const uint64_t bv = LoadPair(bd + i);
      const uint64_t without_borrow = av - bv;  // borrow ∈ {0, 1}
      const uint64_t diff = without_borrow - borrow;
      borrow = (av < bv ? 1 : 0) | (without_borrow < borrow ? 1 : 0);
      StorePair(ad + i, diff);
    }
  }
  for (; i < bn; ++i) {
    const uint64_t bi = static_cast<uint64_t>(bd[i]) + borrow;
    const uint64_t ai = ad[i];
    ad[i] = static_cast<uint32_t>(ai - bi);
    borrow = ai < bi ? 1 : 0;
  }
  const size_t an = a->size();
  for (; borrow && i < an; ++i) {
    if (ad[i] != 0) {
      --ad[i];
      borrow = 0;
    } else {
      ad[i] = 0xffffffffu;
    }
  }
  GMC_DCHECK(borrow == 0);
  a->TrimZeros();
}

// a = b - a on magnitudes, in place; requires |b| >= |a| and no aliasing.
void SubReverseInPlace(LimbVec* a, const LimbVec& b) {
  const size_t bn = b.size();
  a->resize(bn);  // zero-fills the high limbs a lacks
  uint32_t* ad = a->data();
  const uint32_t* bd = b.data();
  uint64_t borrow = 0;
  size_t i = 0;
  if (kLittleEndian) {
    for (; i + 2 <= bn; i += 2) {
      const uint64_t bv = LoadPair(bd + i);
      const uint64_t av = LoadPair(ad + i);
      const uint64_t without_borrow = bv - av;
      const uint64_t diff = without_borrow - borrow;
      borrow = (bv < av ? 1 : 0) | (without_borrow < borrow ? 1 : 0);
      StorePair(ad + i, diff);
    }
  }
  for (; i < bn; ++i) {
    const uint64_t ai = static_cast<uint64_t>(ad[i]) + borrow;
    const uint64_t bi = bd[i];
    ad[i] = static_cast<uint32_t>(bi - ai);
    borrow = bi < ai ? 1 : 0;
  }
  GMC_DCHECK(borrow == 0);
  a->TrimZeros();
}

// Out-of-place magnitude add (Karatsuba internals).
LimbVec AddMagnitude(const LimbVec& a, const LimbVec& b) {
  LimbVec out = a.size() >= b.size() ? a : b;
  AddMagnitudeInPlace(&out, a.size() >= b.size() ? b : a);
  return out;
}

// a *= m on magnitudes, in place (single-limb multiplier, the sweep-mantissa
// common case); m != 0.
void MulSmallInPlace(LimbVec* a, uint32_t m) {
  uint32_t* ad = a->data();
  const size_t an = a->size();
  uint64_t carry = 0;
  for (size_t i = 0; i < an; ++i) {
    const uint64_t cur = static_cast<uint64_t>(ad[i]) * m + carry;
    ad[i] = static_cast<uint32_t>(cur);
    carry = cur >> 32;
  }
  if (carry) a->push_back(static_cast<uint32_t>(carry));
}

uint64_t TrailingZeroBitsOf(const LimbVec& limbs) {
  uint64_t count = 0;
  for (size_t i = 0; i < limbs.size(); ++i) {
    if (limbs[i] == 0) {
      count += 32;
    } else {
      count += static_cast<uint64_t>(std::countr_zero(limbs[i]));
      break;
    }
  }
  return count;
}

}  // namespace

BigInt::BigInt(int64_t value) {
  if (value == 0) return;
  sign_ = value > 0 ? 1 : -1;
  // Careful with INT64_MIN: negate in unsigned space.
  uint64_t magnitude =
      value > 0 ? static_cast<uint64_t>(value)
                : ~static_cast<uint64_t>(value) + 1;  // two's complement abs
  limbs_.push_back(static_cast<uint32_t>(magnitude & 0xffffffffu));
  if (magnitude >> 32) limbs_.push_back(static_cast<uint32_t>(magnitude >> 32));
}

void BigInt::Normalize() {
  limbs_.TrimZeros();
  if (limbs_.empty()) sign_ = 0;
}

int BigInt::CompareMagnitude(const LimbVec& a, const LimbVec& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

BigInt::LimbVec BigInt::MulSchoolbook(const LimbVec& a, const LimbVec& b) {
  if (a.empty() || b.empty()) return {};
  LimbVec out;
  out.resize(a.size() + b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    const uint64_t ai = a[i];
    uint32_t* row = out.data() + i;
    const uint32_t* bd = b.data();
    const size_t bn = b.size();
    for (size_t j = 0; j < bn; ++j) {
      const uint64_t cur = row[j] + ai * bd[j] + carry;
      row[j] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    size_t k = bn;
    while (carry) {
      const uint64_t cur = row[k] + carry;
      row[k] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  out.TrimZeros();
  return out;
}

BigInt::LimbVec BigInt::MulKaratsuba(const LimbVec& a, const LimbVec& b) {
  if (a.size() < kKaratsubaThreshold || b.size() < kKaratsubaThreshold) {
    return MulSchoolbook(a, b);
  }
  const size_t half = std::max(a.size(), b.size()) / 2;
  auto lower = [half](const LimbVec& x) {
    LimbVec out;
    const size_t n = std::min(half, x.size());
    out.resize(n);
    std::memcpy(out.data(), x.data(), n * sizeof(uint32_t));
    out.TrimZeros();
    return out;
  };
  auto upper = [half](const LimbVec& x) {
    LimbVec out;
    if (x.size() <= half) return out;
    const size_t n = x.size() - half;
    out.resize(n);
    std::memcpy(out.data(), x.data() + half, n * sizeof(uint32_t));
    out.TrimZeros();
    return out;
  };
  LimbVec a0 = lower(a), a1 = upper(a);
  LimbVec b0 = lower(b), b1 = upper(b);
  LimbVec z0 = MulKaratsuba(a0, b0);
  LimbVec z2 = MulKaratsuba(a1, b1);
  LimbVec sum_a = AddMagnitude(a0, a1);
  LimbVec sum_b = AddMagnitude(b0, b1);
  LimbVec z1 = MulKaratsuba(sum_a, sum_b);
  SubMagnitudeInPlace(&z1, AddMagnitude(z0, z2));
  // result = z2 << (2*half limbs) + z1 << (half limbs) + z0. The product of
  // an m-limb and an n-limb magnitude has at most m + n limbs, so this buffer
  // bounds all carry propagation.
  LimbVec out;
  out.resize(a.size() + b.size());
  auto accumulate = [&out](const LimbVec& x, size_t offset) {
    uint64_t carry = 0;
    for (size_t i = 0; i < x.size(); ++i) {
      const uint64_t cur =
          static_cast<uint64_t>(out[offset + i]) + x[i] + carry;
      out[offset + i] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    size_t k = offset + x.size();
    while (carry) {
      GMC_DCHECK(k < out.size());
      const uint64_t cur = static_cast<uint64_t>(out[k]) + carry;
      out[k] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  };
  accumulate(z0, 0);
  accumulate(z1, half);
  accumulate(z2, 2 * half);
  out.TrimZeros();
  return out;
}

BigInt::LimbVec BigInt::MulMagnitude(const LimbVec& a, const LimbVec& b) {
  if (a.size() >= kKaratsubaThreshold && b.size() >= kKaratsubaThreshold) {
    return MulKaratsuba(a, b);
  }
  return MulSchoolbook(a, b);
}

// Knuth TAOCP vol. 2, Algorithm 4.3.1 D.
void BigInt::DivModMagnitude(const LimbVec& u_in, const LimbVec& v_in,
                             LimbVec* quotient, LimbVec* remainder) {
  GMC_CHECK_MSG(!v_in.empty(), "division by zero");
  if (CompareMagnitude(u_in, v_in) < 0) {
    quotient->clear();
    *remainder = u_in;
    remainder->TrimZeros();
    return;
  }
  if (v_in.size() == 1) {
    // Single-limb fast path.
    const uint64_t d = v_in[0];
    LimbVec q;
    q.resize(u_in.size());
    uint64_t rem = 0;
    for (size_t i = u_in.size(); i-- > 0;) {
      const uint64_t cur = (rem << 32) | u_in[i];
      q[i] = static_cast<uint32_t>(cur / d);
      rem = cur % d;
    }
    q.TrimZeros();
    *quotient = std::move(q);
    remainder->clear();
    if (rem) remainder->push_back(static_cast<uint32_t>(rem));
    return;
  }
  // Normalize so that the top limb of v has its high bit set.
  int shift = 0;
  {
    uint32_t top = v_in.back();
    while ((top & 0x80000000u) == 0) {
      top <<= 1;
      ++shift;
    }
  }
  LimbVec u = ShiftLeftSmall(u_in, shift);
  LimbVec v = ShiftLeftSmall(v_in, shift);
  const size_t n = v.size();
  const size_t m = u.size() - n;  // u.size() >= n because |u| >= |v|
  u.resize(m + n + 1);
  LimbVec q;
  q.resize(m + 1);
  const uint64_t v1 = v[n - 1];
  const uint64_t v2 = v[n - 2];
  for (size_t j = m + 1; j-- > 0;) {
    const uint64_t numerator =
        (static_cast<uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    uint64_t qhat = numerator / v1;
    uint64_t rhat = numerator % v1;
    while (qhat >= kBase ||
           qhat * v2 > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += v1;
      if (rhat >= kBase) break;
    }
    // Multiply and subtract: u[j..j+n] -= qhat * v.
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t product = qhat * v[i] + carry;
      carry = product >> 32;
      int64_t diff = static_cast<int64_t>(u[i + j]) -
                     static_cast<int64_t>(product & 0xffffffffu) - borrow;
      if (diff < 0) {
        diff += static_cast<int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<uint32_t>(diff);
    }
    int64_t diff = static_cast<int64_t>(u[j + n]) -
                   static_cast<int64_t>(carry) - borrow;
    if (diff < 0) {
      // qhat was one too large: add v back.
      diff += static_cast<int64_t>(kBase);
      u[j + n] = static_cast<uint32_t>(diff);
      --qhat;
      uint64_t carry2 = 0;
      for (size_t i = 0; i < n; ++i) {
        const uint64_t sum = static_cast<uint64_t>(u[i + j]) + v[i] + carry2;
        u[i + j] = static_cast<uint32_t>(sum & 0xffffffffu);
        carry2 = sum >> 32;
      }
      u[j + n] = static_cast<uint32_t>(u[j + n] + carry2);
    } else {
      u[j + n] = static_cast<uint32_t>(diff);
    }
    q[j] = static_cast<uint32_t>(qhat);
  }
  q.TrimZeros();
  *quotient = std::move(q);
  u.resize(n);
  *remainder = ShiftRightSmall(u, shift);
  remainder->TrimZeros();
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  out.sign_ = -out.sign_;
  return out;
}

BigInt BigInt::Abs() const {
  BigInt out = *this;
  if (out.sign_ < 0) out.sign_ = 1;
  return out;
}

bool BigInt::IsPowerOfTwo() const {
  if (sign_ == 0) return false;
  for (size_t i = 0; i + 1 < limbs_.size(); ++i) {
    if (limbs_[i] != 0) return false;
  }
  uint32_t top = limbs_.back();
  return (top & (top - 1)) == 0;
}

void BigInt::AddSigned(const BigInt& other, int other_sign) {
  const int osign = other.sign_ * other_sign;
  if (osign == 0) return;
  if (sign_ == 0) {
    limbs_ = other.limbs_;
    sign_ = osign;
    return;
  }
  if (this == &other) {
    // a += a doubles; a -= a zeroes. (AddMagnitudeInPlace may reallocate,
    // so the aliased buffer cannot be used as the second operand.)
    if (osign == sign_) {
      ShiftLeftInPlace(1);
    } else {
      limbs_.clear();
      sign_ = 0;
    }
    return;
  }
  if (sign_ == osign) {
    AddMagnitudeInPlace(&limbs_, other.limbs_);
    return;
  }
  const int cmp = CompareMagnitude(limbs_, other.limbs_);
  if (cmp == 0) {
    limbs_.clear();
    sign_ = 0;
  } else if (cmp > 0) {
    SubMagnitudeInPlace(&limbs_, other.limbs_);
  } else {
    SubReverseInPlace(&limbs_, other.limbs_);
    sign_ = osign;
  }
}

BigInt& BigInt::operator+=(const BigInt& other) {
  AddSigned(other, 1);
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& other) {
  AddSigned(other, -1);
  return *this;
}

BigInt& BigInt::operator*=(const BigInt& other) {
  if (sign_ == 0) return *this;
  if (other.sign_ == 0) {
    limbs_.clear();
    sign_ = 0;
    return *this;
  }
  if (other.limbs_.size() == 1) {
    MulSmallInPlace(&limbs_, other.limbs_[0]);  // safe even when aliased
    sign_ *= other.sign_;
    return *this;
  }
  sign_ *= other.sign_;
  limbs_ = MulMagnitude(limbs_, other.limbs_);
  return *this;
}

BigInt BigInt::operator+(const BigInt& other) const {
  if (sign_ == 0) return other;
  BigInt out = *this;
  out.AddSigned(other, 1);
  return out;
}

BigInt BigInt::operator-(const BigInt& other) const {
  BigInt out = *this;
  out.AddSigned(other, -1);
  return out;
}

BigInt BigInt::operator*(const BigInt& other) const {
  BigInt out = *this;
  out *= other;
  return out;
}

void BigInt::DivMod(const BigInt& numerator, const BigInt& denominator,
                    BigInt* quotient, BigInt* remainder) {
  GMC_CHECK_MSG(!denominator.IsZero(), "division by zero");
  BigInt q, r;
  DivModMagnitude(numerator.limbs_, denominator.limbs_, &q.limbs_, &r.limbs_);
  q.sign_ = q.limbs_.empty() ? 0 : numerator.sign_ * denominator.sign_;
  r.sign_ = r.limbs_.empty() ? 0 : numerator.sign_;
  if (quotient != nullptr) *quotient = std::move(q);
  if (remainder != nullptr) *remainder = std::move(r);
}

BigInt BigInt::operator/(const BigInt& other) const {
  BigInt q;
  DivMod(*this, other, &q, nullptr);
  return q;
}

BigInt BigInt::operator%(const BigInt& other) const {
  BigInt r;
  DivMod(*this, other, nullptr, &r);
  return r;
}

void BigInt::ShiftLeftInPlace(uint64_t bits) {
  if (IsZero() || bits == 0) return;
  const size_t limb_shift = static_cast<size_t>(bits / 32);
  const int small = static_cast<int>(bits % 32);
  const size_t old_size = limbs_.size();
  limbs_.resize(old_size + limb_shift + (small != 0 ? 1 : 0));
  uint32_t* d = limbs_.data();
  if (small != 0) {
    uint32_t carry = 0;
    // Walk high-to-low so each source limb is read before its slot range is
    // overwritten.
    d[old_size + limb_shift] = static_cast<uint32_t>(
        static_cast<uint64_t>(d[old_size - 1]) >> (32 - small));
    for (size_t i = old_size; i-- > 0;) {
      carry = i > 0 ? static_cast<uint32_t>(
                          static_cast<uint64_t>(d[i - 1]) >> (32 - small))
                    : 0;
      d[i + limb_shift] = (d[i] << small) | carry;
    }
  } else if (limb_shift != 0) {
    std::memmove(d + limb_shift, d, old_size * sizeof(uint32_t));
  }
  std::memset(d, 0, limb_shift * sizeof(uint32_t));
  Normalize();
}

void BigInt::ShiftRightInPlace(uint64_t bits) {
  if (IsZero() || bits == 0) return;
  const size_t limb_shift = static_cast<size_t>(bits / 32);
  if (limb_shift >= limbs_.size()) {
    limbs_.clear();
    sign_ = 0;
    return;
  }
  const int small = static_cast<int>(bits % 32);
  uint32_t* d = limbs_.data();
  const size_t new_size = limbs_.size() - limb_shift;
  if (small != 0) {
    for (size_t i = 0; i < new_size; ++i) {
      const uint32_t low = d[i + limb_shift] >> small;
      const uint32_t high =
          i + limb_shift + 1 < limbs_.size()
              ? d[i + limb_shift + 1] << (32 - small)
              : 0;
      d[i] = low | high;
    }
  } else {
    std::memmove(d, d + limb_shift, new_size * sizeof(uint32_t));
  }
  limbs_.resize(new_size);
  Normalize();
}

BigInt BigInt::ShiftLeft(uint64_t bits) const {
  BigInt out = *this;
  out.ShiftLeftInPlace(bits);
  return out;
}

BigInt BigInt::ShiftRight(uint64_t bits) const {
  BigInt out = *this;
  out.ShiftRightInPlace(bits);
  return out;
}

uint64_t BigInt::TrailingZeroBits() const {
  return TrailingZeroBitsOf(limbs_);
}

BigInt BigInt::Gcd(const BigInt& a_in, const BigInt& b_in) {
  if (a_in.IsZero()) return b_in.Abs();
  if (b_in.IsZero()) return a_in.Abs();
  // The reduced-fraction arithmetic of Rational calls Gcd constantly with a
  // unit operand; Stein's subtract-and-shift loop degenerates to O(bits)
  // iterations there, so answer directly.
  if (a_in.limbs_.size() == 1 && a_in.limbs_[0] == 1) return BigInt(1);
  if (b_in.limbs_.size() == 1 && b_in.limbs_[0] == 1) return BigInt(1);
  // Both magnitudes fit in 64 bits (the common case by far): run the whole
  // binary gcd in registers.
  if (a_in.limbs_.size() <= 2 && b_in.limbs_.size() <= 2) {
    auto to_u64 = [](const BigInt& x) {
      uint64_t v = x.limbs_[0];
      if (x.limbs_.size() == 2) v |= static_cast<uint64_t>(x.limbs_[1]) << 32;
      return v;
    };
    uint64_t a = to_u64(a_in);
    uint64_t b = to_u64(b_in);
    const int za = std::countr_zero(a);
    const int zb = std::countr_zero(b);
    const int common = std::min(za, zb);
    a >>= za;
    do {
      b >>= std::countr_zero(b);
      if (a > b) std::swap(a, b);
      b -= a;
    } while (b != 0);
    BigInt out;
    out.sign_ = 1;
    out.limbs_.push_back(static_cast<uint32_t>(a & 0xffffffffu));
    if (a >> 32) out.limbs_.push_back(static_cast<uint32_t>(a >> 32));
    out.ShiftLeftInPlace(common);
    return out;
  }
  BigInt a = a_in.Abs();
  BigInt b = b_in.Abs();
  // Binary (Stein) GCD: strips common factors of two, then subtract-and-shift.
  const uint64_t za = TrailingZeroBitsOf(a.limbs_);
  const uint64_t zb = TrailingZeroBitsOf(b.limbs_);
  const uint64_t common_twos = std::min(za, zb);
  a.ShiftRightInPlace(za);
  b.ShiftRightInPlace(zb);
  while (true) {
    const int cmp = CompareMagnitude(a.limbs_, b.limbs_);
    if (cmp == 0) break;
    if (cmp < 0) std::swap(a, b);
    SubMagnitudeInPlace(&a.limbs_, b.limbs_);
    a.ShiftRightInPlace(TrailingZeroBitsOf(a.limbs_));
  }
  a.ShiftLeftInPlace(common_twos);
  return a;
}

BigInt BigInt::Pow(uint64_t exponent) const {
  BigInt result(1);
  BigInt base = *this;
  while (exponent > 0) {
    if (exponent & 1) result *= base;
    base *= base;
    exponent >>= 1;
  }
  return result;
}

uint64_t BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  return (limbs_.size() - 1) * 32ull +
         (32 - static_cast<uint64_t>(std::countl_zero(limbs_.back())));
}

uint64_t BigInt::Bits64At(uint64_t offset) const {
  const uint64_t first = offset / 32;
  const unsigned shift = static_cast<unsigned>(offset % 32);
  auto limb = [this](uint64_t i) -> uint64_t {
    return i < limbs_.size() ? limbs_[i] : 0;
  };
  // Three 32-bit limbs cover any 64-bit window at an unaligned offset.
  uint64_t word = limb(first) | (limb(first + 1) << 32);
  if (shift != 0) {
    word = (word >> shift) | (limb(first + 2) << (64 - shift));
  }
  return word;
}

BigInt BigInt::ISqrt() const {
  GMC_CHECK_MSG(sign_ >= 0, "ISqrt of negative number");
  if (IsZero()) return BigInt(0);
  // Newton's method with a power-of-two seed above the true root.
  BigInt x = BigInt(1).ShiftLeft(BitLength() / 2 + 1);
  while (true) {
    BigInt next = (x + *this / x).ShiftRight(1);
    if (next >= x) break;
    x = next;
  }
  return x;
}

bool BigInt::IsPerfectSquare() const {
  if (sign_ < 0) return false;
  BigInt root = ISqrt();
  return root * root == *this;
}

bool BigInt::operator==(const BigInt& other) const {
  return sign_ == other.sign_ && limbs_ == other.limbs_;
}

bool BigInt::operator<(const BigInt& other) const {
  if (sign_ != other.sign_) return sign_ < other.sign_;
  int cmp = CompareMagnitude(limbs_, other.limbs_);
  return sign_ >= 0 ? cmp < 0 : cmp > 0;
}

BigInt BigInt::FromDecimal(const std::string& text) {
  GMC_CHECK_MSG(!text.empty(), "empty decimal string");
  size_t pos = 0;
  int sign = 1;
  if (text[0] == '-') {
    sign = -1;
    pos = 1;
  } else if (text[0] == '+') {
    pos = 1;
  }
  GMC_CHECK_MSG(pos < text.size(), "decimal string has no digits");
  BigInt out;
  size_t i = pos;
  while (i < text.size()) {
    size_t take = std::min<size_t>(9, text.size() - i);
    uint64_t chunk = 0;
    for (size_t k = 0; k < take; ++k) {
      GMC_CHECK_MSG(std::isdigit(static_cast<unsigned char>(text[i + k])),
                    "non-digit in decimal string");
      chunk = chunk * 10 + static_cast<uint64_t>(text[i + k] - '0');
    }
    out = out * BigInt(10).Pow(take) + BigInt(static_cast<int64_t>(chunk));
    i += take;
  }
  if (sign < 0) out = -out;
  return out;
}

std::string BigInt::ToString() const {
  if (IsZero()) return "0";
  LimbVec mag = limbs_;
  std::string digits;
  // Repeatedly divide by 1e9 and emit 9-digit groups.
  while (!mag.empty()) {
    uint64_t rem = 0;
    for (size_t i = mag.size(); i-- > 0;) {
      const uint64_t cur = (rem << 32) | mag[i];
      mag[i] = static_cast<uint32_t>(cur / 1000000000ull);
      rem = cur % 1000000000ull;
    }
    mag.TrimZeros();
    for (int k = 0; k < 9; ++k) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (sign_ < 0) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

double BigInt::ToDouble() const {
  double out = 0.0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    out = out * 4294967296.0 + static_cast<double>(limbs_[i]);
  }
  return sign_ < 0 ? -out : out;
}

int64_t BigInt::ToInt64() const {
  GMC_CHECK_MSG(limbs_.size() <= 2, "BigInt out of int64 range");
  uint64_t magnitude = 0;
  if (limbs_.size() >= 1) magnitude = limbs_[0];
  if (limbs_.size() == 2) magnitude |= static_cast<uint64_t>(limbs_[1]) << 32;
  if (sign_ >= 0) {
    GMC_CHECK_MSG(magnitude <= static_cast<uint64_t>(INT64_MAX),
                  "BigInt out of int64 range");
    return static_cast<int64_t>(magnitude);
  }
  GMC_CHECK_MSG(magnitude <= static_cast<uint64_t>(INT64_MAX) + 1,
                "BigInt out of int64 range");
  return -static_cast<int64_t>(magnitude - 1) - 1;
}

size_t BigInt::Hash() const {
  size_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<uint64_t>(sign_ + 1));
  for (size_t i = 0; i < limbs_.size(); ++i) mix(limbs_[i]);
  return h;
}

}  // namespace gmc
