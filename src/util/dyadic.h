// Dyadic fixed-point numbers: mantissa · 2^-exponent over BigInt mantissas.
//
// The interpolation sweeps of the hardness reductions evaluate gadget
// lineages at tuple probabilities whose denominators are all powers of two
// (the Type-I sweep probes p/2^n grids; GFOMC instances use {0, 1/2, 1}).
// Inside a circuit evaluation those values stay dyadic: products multiply
// mantissas and ADD exponents, sums align exponents with a shift — so the
// whole exact pass needs no gcd and no per-operation canonicalization,
// unlike Rational, whose every operator re-reduces. The representation is
// deliberately non-canonical (8·2^-3 and 1·2^0 are the same value); batch
// code normalizes at batch granularity (AlignExponents up front, Normalize
// on the way out), and ToRational produces the canonical reduced Rational
// by stripping the common factors of two — an O(shift) operation, not a
// gcd.
//
// Exactness contract: every Dyadic is an exact rational with a power-of-two
// denominator; FromRational is fallible (nullopt for non-dyadic inputs) and
// ToRational(FromRational(r)) == r bit-for-bit.

#ifndef GMC_UTIL_DYADIC_H_
#define GMC_UTIL_DYADIC_H_

#include <cstdint>
#include <optional>
#include <string>

#include "util/bigint.h"
#include "util/rational.h"

namespace gmc {

class Dyadic {
 public:
  // Zero (0 · 2^0).
  Dyadic() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): integers embed exactly.
  Dyadic(int64_t value) : mantissa_(value) {}
  // mantissa · 2^-exponent, kept as given (no canonicalization).
  Dyadic(BigInt mantissa, uint64_t exponent);

  static Dyadic Zero() { return Dyadic(); }
  static Dyadic One() { return Dyadic(1); }
  static Dyadic Half() { return Dyadic(BigInt(1), 1); }

  // Exact conversion from a reduced rational; nullopt unless the
  // denominator is a power of two.
  static std::optional<Dyadic> FromRational(const Rational& value);
  // Exact conversion to the canonical reduced Rational. Strips the common
  // factors of two (a shift) instead of running gcd.
  Rational ToRational() const;

  const BigInt& mantissa() const { return mantissa_; }
  uint64_t exponent() const { return exponent_; }

  bool IsZero() const { return mantissa_.IsZero(); }
  int sign() const { return mantissa_.sign(); }

  Dyadic operator-() const;
  // 1 − *this, at this value's exponent (the decision-node complement).
  Dyadic OneMinus() const;

  // Shift-aligned add/sub: the result exponent is max(e1, e2) and only the
  // smaller-exponent mantissa shifts. In-place on the left operand.
  Dyadic& operator+=(const Dyadic& other);
  Dyadic& operator-=(const Dyadic& other);
  // Exponent-summing multiply: one BigInt multiplication, no reduction.
  Dyadic& operator*=(const Dyadic& other);

  Dyadic operator+(const Dyadic& other) const;
  Dyadic operator-(const Dyadic& other) const;
  Dyadic operator*(const Dyadic& other) const;

  // a·b + c·d in one shot — the decision-node update p·high + (1−p)·low,
  // fused so the intermediate products never round-trip through *this.
  static Dyadic MulAdd(const Dyadic& a, const Dyadic& b, const Dyadic& c,
                       const Dyadic& d);

  // Canonicalizes in place: moves trailing zero bits of the mantissa into
  // the exponent (min'd against it), so e.g. 8·2^-3 becomes 1·2^0. Zero
  // resets to 0·2^0.
  void Normalize();

  // Batch-level common-exponent normalization: raises every value to the
  // block's maximum exponent, so subsequent adds across the block need no
  // per-op alignment shift (and complements share one 2^E). The batched
  // circuit evaluator applies this per weight-matrix column.
  static void AlignExponents(Dyadic* values, size_t count);

  // Value equality (alignment-insensitive): 1·2^0 == 8·2^-3.
  bool operator==(const Dyadic& other) const;
  bool operator!=(const Dyadic& other) const { return !(*this == other); }

  // Rendered via the canonical rational, e.g. "3/8".
  std::string ToString() const;
  double ToDouble() const;

 private:
  BigInt mantissa_;        // carries the sign
  uint64_t exponent_ = 0;  // value = mantissa_ · 2^-exponent_
};

}  // namespace gmc

#endif  // GMC_UTIL_DYADIC_H_
