// Cooperative cancellation with an optional steady-clock deadline.
//
// One CancelToken is shared by every worker participating in a request:
// the compiler's recursion, the column-parallel arena slices, the sampler
// loop, and store I/O all poll the same token, so a single deadline bounds
// the whole pipeline instead of one stage. The contract mirrors the thread
// pool's determinism rule (util/parallel.h): cancellation changes WHEN a
// pass stops, never what a completed pass computes — a pass that runs to
// completion under a token is bit-identical to one run without, and a
// cancelled pass's partial output must be discarded by the caller (check
// cancelled() after the pass returns, not the pass's return value).
//
// Polling discipline: cancelled() is one relaxed atomic load — cheap
// enough for any loop. Poll() additionally reads the steady clock when a
// deadline is armed, so hot loops amortize it (the arena passes poll every
// 64 nodes, the compiler every 256 recursive calls, the sampler every 64
// samples); once any poller observes the deadline expired it latches the
// shared flag and every other worker converges on the next flag check.

#ifndef GMC_UTIL_CANCEL_H_
#define GMC_UTIL_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace gmc {

class CancelToken {
 public:
  // No deadline; fires only on an explicit Cancel().
  CancelToken() = default;
  // Fires once `deadline_ms` milliseconds of steady-clock time elapse
  // (0 keeps the token deadline-free). Tokens are pinned to their storage
  // (workers hold pointers), hence neither copyable nor movable.
  explicit CancelToken(uint64_t deadline_ms) {
    if (deadline_ms > 0) {
      has_deadline_ = true;
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(deadline_ms);
    }
  }
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() const { cancelled_.store(true, std::memory_order_relaxed); }

  // True once Cancel() was called or any poller observed the deadline
  // expired. One relaxed load; never reads the clock.
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  // The full check: flag first, then the deadline (latching the flag on
  // expiry so other workers stop on their next cancelled() check). Reads
  // the clock when a deadline is armed — amortize calls in hot loops.
  bool Poll() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (!has_deadline_) return false;
    if (std::chrono::steady_clock::now() < deadline_) return false;
    cancelled_.store(true, std::memory_order_relaxed);
    return true;
  }

  bool has_deadline() const { return has_deadline_; }

 private:
  mutable std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace gmc

#endif  // GMC_UTIL_CANCEL_H_
