// Deterministic, always-compiled fault injection.
//
// Every failure path the robustness layer promises to survive — a store
// read that returns garbage, a store write that never lands, a cache
// insert that is lost, a socket write to a vanished peer — is guarded by a
// named fault point that CI can fire on demand. The points are compiled
// into every build (no #ifdef forks: the code CI exercises is the code
// production runs); when no spec is installed the cost of a point is one
// relaxed atomic load and a predictable branch, cheap enough to leave on
// the store/serve paths permanently (bench_robust pins this).
//
// Activation comes from the GMC_FAULT environment variable (read once) or
// from Configure() in tests. Spec grammar, comma-separated:
//
//   GMC_FAULT="store.write=0.1,cache.insert=0.01,seed=42"
//
//   point := store.read | store.write | cache.insert | socket.write
//          | serve.accept | store.scrub | approx.plan
//   rate  := decimal in [0, 1] (probability that one crossing fires)
//   seed  := uint64 (default 0) — decisions are a pure function of
//            (seed, point, per-point crossing index), so a given seed
//            fires the exact same crossings in every run and on every
//            machine, regardless of thread interleaving.
//
// A fired point must surface as a typed error on the normal failure path
// of its call site — never a crash, never a silently wrong answer. The
// call sites (circuit_io.cc, circuit_cache.cc, serve.cc, karp_luby.cc)
// each document which existing failure they alias to.

#ifndef GMC_UTIL_FAULT_H_
#define GMC_UTIL_FAULT_H_

#include <cstdint>
#include <string>

namespace gmc {
namespace fault {

enum class Point : int {
  kStoreRead = 0,   // LoadCircuit: the image fails to read back
  kStoreWrite,      // SaveCircuit: the write is lost before rename
  kCacheInsert,     // CircuitCache: a compiled circuit misses the cache
  kSocketWrite,     // serve reply: the peer vanished mid-send
  kServeAccept,     // accept(2): a transient ECONNABORTED-class failure
  kStoreScrub,      // scrub: the quarantine rename fails
  kApproxPlan,      // KarpLubyPlanCache: the cached plan is lost
  kNumPoints,
};

const char* PointName(Point point);

// Installs a spec (see grammar above), replacing any active one; the empty
// string disables every point and zeroes the counters. Returns false and
// fills *error on a malformed spec, leaving the previous spec active.
bool Configure(const std::string& spec, std::string* error = nullptr);

// True if this crossing of `point` should fail. The first call anywhere
// lazily installs GMC_FAULT (malformed env specs disable injection rather
// than abort: the variable is operator input, not programmer error).
bool ShouldFail(Point point);

// Crossings of `point` that fired since the last Configure/Reset.
uint64_t InjectedCount(Point point);
// Total crossings of `point` (fired or not) — lets tests assert a point
// was actually exercised even at rate 0.
uint64_t CrossingCount(Point point);

// Disables every point and zeroes all counters (tests).
void Reset();

}  // namespace fault
}  // namespace gmc

#endif  // GMC_UTIL_FAULT_H_
