#include "util/rational.h"

#include <utility>

#include "util/check.h"

namespace gmc {

Rational::Rational(int64_t numerator, int64_t denominator)
    : numerator_(numerator), denominator_(denominator) {
  GMC_CHECK_MSG(denominator != 0, "zero denominator");
  Reduce();
}

Rational::Rational(BigInt numerator, BigInt denominator)
    : numerator_(std::move(numerator)), denominator_(std::move(denominator)) {
  GMC_CHECK_MSG(!denominator_.IsZero(), "zero denominator");
  Reduce();
}

Rational Rational::FromBigInt(BigInt value) {
  return Rational(std::move(value), BigInt(1));
}

Rational Rational::FromReducedParts(BigInt numerator, BigInt denominator) {
  GMC_DCHECK(denominator.sign() > 0);
  GMC_DCHECK(BigInt::Gcd(numerator, denominator).IsOne() ||
             numerator.IsZero());
  Rational out;
  out.numerator_ = std::move(numerator);
  out.denominator_ = std::move(denominator);
  if (out.numerator_.IsZero()) out.denominator_ = BigInt(1);
  return out;
}

Rational Rational::Dyadic(BigInt numerator, uint64_t log2_denominator) {
  return Rational(std::move(numerator), BigInt(1).ShiftLeft(log2_denominator));
}

Rational Rational::FromString(const std::string& text) {
  size_t slash = text.find('/');
  if (slash == std::string::npos) {
    return FromBigInt(BigInt::FromDecimal(text));
  }
  return Rational(BigInt::FromDecimal(text.substr(0, slash)),
                  BigInt::FromDecimal(text.substr(slash + 1)));
}

void Rational::Reduce() {
  if (denominator_.IsNegative()) {
    numerator_ = -numerator_;
    denominator_ = -denominator_;
  }
  if (numerator_.IsZero()) {
    denominator_ = BigInt(1);
    return;
  }
  BigInt g = BigInt::Gcd(numerator_, denominator_);
  if (!g.IsOne()) {
    numerator_ /= g;
    denominator_ /= g;
  }
}

Rational Rational::operator-() const {
  Rational out = *this;
  out.numerator_ = -out.numerator_;
  return out;
}

// The sum of reduced fractions n1/d1 ± n2/d2 needs no gcd at all when either
// side is integral or when the denominators are coprime, and otherwise only
// gcd(t, g) for g = gcd(d1, d2) — never a gcd over the full-width products.
// Every branch below mutates the existing numerator/denominator buffers in
// place (BigInt's compound operators reuse their limb storage).
void Rational::AddImpl(const Rational& other, bool subtract) {
  if (other.IsZero()) return;
  if (IsZero()) {
    numerator_ = other.numerator_;
    if (subtract) numerator_ = -numerator_;
    denominator_ = other.denominator_;
    return;
  }
  if (this == &other) {
    const Rational copy = other;
    AddImpl(copy, subtract);
    return;
  }
  if (other.IsInteger()) {
    // gcd(n1 ± k·d1, d1) == gcd(n1, d1) == 1: still reduced.
    BigInt t = other.numerator_ * denominator_;
    if (subtract) {
      numerator_ -= t;
    } else {
      numerator_ += t;
    }
    if (numerator_.IsZero()) denominator_ = BigInt(1);
    return;
  }
  if (IsInteger()) {
    // (n1·d2 ± n2) / d2 shares no factor with d2 (n2 doesn't).
    numerator_ *= other.denominator_;
    if (subtract) {
      numerator_ -= other.numerator_;
    } else {
      numerator_ += other.numerator_;
    }
    denominator_ = other.denominator_;
    return;
  }
  const BigInt g = BigInt::Gcd(denominator_, other.denominator_);
  if (g.IsOne()) {
    // Coprime denominators: any prime of d1·d2 divides exactly one of the
    // two summand terms, so the result is already reduced.
    numerator_ *= other.denominator_;
    BigInt t = other.numerator_ * denominator_;
    if (subtract) {
      numerator_ -= t;
    } else {
      numerator_ += t;
    }
    denominator_ *= other.denominator_;
    if (numerator_.IsZero()) denominator_ = BigInt(1);
    return;
  }
  // t / (d1·(d2/g)) with gcd(t, d1·(d2/g)) == gcd(t, g).
  const BigInt d2_over_g = other.denominator_ / g;
  BigInt t = numerator_ * d2_over_g;
  BigInt u = other.numerator_ * (denominator_ / g);
  if (subtract) {
    t -= u;
  } else {
    t += u;
  }
  if (t.IsZero()) {
    numerator_ = BigInt(0);
    denominator_ = BigInt(1);
    return;
  }
  const BigInt g2 = BigInt::Gcd(t, g);
  if (g2.IsOne()) {
    numerator_ = std::move(t);
    denominator_ *= d2_over_g;
  } else {
    numerator_ = t / g2;
    denominator_ /= g2;
    denominator_ *= d2_over_g;
  }
}

Rational& Rational::operator+=(const Rational& other) {
  AddImpl(other, /*subtract=*/false);
  return *this;
}

Rational& Rational::operator-=(const Rational& other) {
  AddImpl(other, /*subtract=*/true);
  return *this;
}

Rational& Rational::operator*=(const Rational& other) {
  if (IsZero()) return *this;
  if (other.IsZero()) {
    numerator_ = BigInt(0);
    denominator_ = BigInt(1);
    return *this;
  }
  if (this == &other) {
    // Squares of reduced fractions stay reduced.
    numerator_ *= numerator_;
    denominator_ *= denominator_;
    return *this;
  }
  if (other.IsInteger()) {
    // Only the integer factor can meet the denominator.
    const BigInt g = BigInt::Gcd(other.numerator_, denominator_);
    if (g.IsOne()) {
      numerator_ *= other.numerator_;
    } else {
      numerator_ *= other.numerator_ / g;
      denominator_ /= g;
    }
    return *this;
  }
  if (IsInteger()) {
    const BigInt g = BigInt::Gcd(numerator_, other.denominator_);
    if (g.IsOne()) {
      numerator_ *= other.numerator_;
      denominator_ = other.denominator_;
    } else {
      numerator_ /= g;
      numerator_ *= other.numerator_;
      denominator_ = other.denominator_ / g;
    }
    return *this;
  }
  // Cross-reduce before multiplying to keep intermediates small; inputs are
  // reduced, so the cross-reduced product is reduced.
  const BigInt g1 = BigInt::Gcd(numerator_, other.denominator_);
  const BigInt g2 = BigInt::Gcd(other.numerator_, denominator_);
  if (!g1.IsOne()) numerator_ /= g1;
  numerator_ *= g2.IsOne() ? other.numerator_ : other.numerator_ / g2;
  if (!g2.IsOne()) denominator_ /= g2;
  denominator_ *= g1.IsOne() ? other.denominator_ : other.denominator_ / g1;
  return *this;
}

Rational& Rational::operator/=(const Rational& other) {
  GMC_CHECK_MSG(!other.IsZero(), "division by zero rational");
  if (this == &other) {
    numerator_ = BigInt(1);
    denominator_ = BigInt(1);
    return *this;
  }
  return *this *= other.Inverse();
}

Rational Rational::operator+(const Rational& other) const {
  Rational out = *this;
  out.AddImpl(other, /*subtract=*/false);
  return out;
}

Rational Rational::operator-(const Rational& other) const {
  Rational out = *this;
  out.AddImpl(other, /*subtract=*/true);
  return out;
}

Rational Rational::operator*(const Rational& other) const {
  Rational out = *this;
  out *= other;
  return out;
}

Rational Rational::operator/(const Rational& other) const {
  Rational out = *this;
  out /= other;
  return out;
}

Rational Rational::Inverse() const {
  GMC_CHECK_MSG(!IsZero(), "inverse of zero");
  Rational out;
  out.numerator_ = denominator_;
  out.denominator_ = numerator_;
  if (out.denominator_.IsNegative()) {
    out.numerator_ = -out.numerator_;
    out.denominator_ = -out.denominator_;
  }
  return out;
}

Rational Rational::Abs() const {
  Rational out = *this;
  out.numerator_ = out.numerator_.Abs();
  return out;
}

Rational Rational::Pow(int64_t exponent) const {
  if (exponent == 0) return One();
  if (exponent < 0) return Inverse().Pow(-exponent);
  Rational out;
  out.numerator_ = numerator_.Pow(static_cast<uint64_t>(exponent));
  out.denominator_ = denominator_.Pow(static_cast<uint64_t>(exponent));
  return out;  // powers of a reduced fraction stay reduced
}

bool Rational::operator==(const Rational& other) const {
  return numerator_ == other.numerator_ && denominator_ == other.denominator_;
}

bool Rational::operator<(const Rational& other) const {
  return numerator_ * other.denominator_ < other.numerator_ * denominator_;
}

std::string Rational::ToString() const {
  if (denominator_.IsOne()) return numerator_.ToString();
  return numerator_.ToString() + "/" + denominator_.ToString();
}

double Rational::ToDouble() const {
  // Scale to keep precision when both parts are huge.
  const uint64_t nbits = numerator_.BitLength();
  const uint64_t dbits = denominator_.BitLength();
  if (nbits > 900 || dbits > 900) {
    const uint64_t shift =
        (nbits > dbits ? nbits : dbits) > 900
            ? (nbits > dbits ? nbits : dbits) - 512
            : 0;
    return numerator_.ShiftRight(shift).ToDouble() /
           denominator_.ShiftRight(shift).ToDouble();
  }
  return numerator_.ToDouble() / denominator_.ToDouble();
}

size_t Rational::Hash() const {
  size_t h = numerator_.Hash();
  h ^= denominator_.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

}  // namespace gmc
