#include "util/rational.h"

#include <utility>

#include "util/check.h"

namespace gmc {

Rational::Rational(int64_t numerator, int64_t denominator)
    : numerator_(numerator), denominator_(denominator) {
  GMC_CHECK_MSG(denominator != 0, "zero denominator");
  Reduce();
}

Rational::Rational(BigInt numerator, BigInt denominator)
    : numerator_(std::move(numerator)), denominator_(std::move(denominator)) {
  GMC_CHECK_MSG(!denominator_.IsZero(), "zero denominator");
  Reduce();
}

Rational Rational::FromBigInt(BigInt value) {
  return Rational(std::move(value), BigInt(1));
}

Rational Rational::Dyadic(BigInt numerator, uint64_t log2_denominator) {
  return Rational(std::move(numerator), BigInt(1).ShiftLeft(log2_denominator));
}

Rational Rational::FromString(const std::string& text) {
  size_t slash = text.find('/');
  if (slash == std::string::npos) {
    return FromBigInt(BigInt::FromDecimal(text));
  }
  return Rational(BigInt::FromDecimal(text.substr(0, slash)),
                  BigInt::FromDecimal(text.substr(slash + 1)));
}

void Rational::Reduce() {
  if (denominator_.IsNegative()) {
    numerator_ = -numerator_;
    denominator_ = -denominator_;
  }
  if (numerator_.IsZero()) {
    denominator_ = BigInt(1);
    return;
  }
  BigInt g = BigInt::Gcd(numerator_, denominator_);
  if (!g.IsOne()) {
    numerator_ /= g;
    denominator_ /= g;
  }
}

Rational Rational::operator-() const {
  Rational out = *this;
  out.numerator_ = -out.numerator_;
  return out;
}

Rational Rational::operator+(const Rational& other) const {
  return Rational(numerator_ * other.denominator_ +
                      other.numerator_ * denominator_,
                  denominator_ * other.denominator_);
}

Rational Rational::operator-(const Rational& other) const {
  return Rational(numerator_ * other.denominator_ -
                      other.numerator_ * denominator_,
                  denominator_ * other.denominator_);
}

Rational Rational::operator*(const Rational& other) const {
  // Cross-reduce before multiplying to keep intermediates small.
  BigInt g1 = BigInt::Gcd(numerator_, other.denominator_);
  BigInt g2 = BigInt::Gcd(other.numerator_, denominator_);
  BigInt num = (g1.IsOne() ? numerator_ : numerator_ / g1) *
               (g2.IsOne() ? other.numerator_ : other.numerator_ / g2);
  BigInt den = (g2.IsOne() ? denominator_ : denominator_ / g2) *
               (g1.IsOne() ? other.denominator_ : other.denominator_ / g1);
  Rational out;
  out.numerator_ = std::move(num);
  out.denominator_ = std::move(den);
  // Inputs were reduced and cross-reduced, so the product is reduced, except
  // for sign normalization (inputs have positive denominators, so none
  // needed). Re-normalize zero for safety.
  if (out.numerator_.IsZero()) out.denominator_ = BigInt(1);
  return out;
}

Rational Rational::operator/(const Rational& other) const {
  GMC_CHECK_MSG(!other.IsZero(), "division by zero rational");
  return *this * other.Inverse();
}

Rational Rational::Inverse() const {
  GMC_CHECK_MSG(!IsZero(), "inverse of zero");
  Rational out;
  out.numerator_ = denominator_;
  out.denominator_ = numerator_;
  if (out.denominator_.IsNegative()) {
    out.numerator_ = -out.numerator_;
    out.denominator_ = -out.denominator_;
  }
  return out;
}

Rational Rational::Abs() const {
  Rational out = *this;
  out.numerator_ = out.numerator_.Abs();
  return out;
}

Rational Rational::Pow(int64_t exponent) const {
  if (exponent == 0) return One();
  if (exponent < 0) return Inverse().Pow(-exponent);
  Rational out;
  out.numerator_ = numerator_.Pow(static_cast<uint64_t>(exponent));
  out.denominator_ = denominator_.Pow(static_cast<uint64_t>(exponent));
  return out;  // powers of a reduced fraction stay reduced
}

bool Rational::operator==(const Rational& other) const {
  return numerator_ == other.numerator_ && denominator_ == other.denominator_;
}

bool Rational::operator<(const Rational& other) const {
  return numerator_ * other.denominator_ < other.numerator_ * denominator_;
}

std::string Rational::ToString() const {
  if (denominator_.IsOne()) return numerator_.ToString();
  return numerator_.ToString() + "/" + denominator_.ToString();
}

double Rational::ToDouble() const {
  // Scale to keep precision when both parts are huge.
  const uint64_t nbits = numerator_.BitLength();
  const uint64_t dbits = denominator_.BitLength();
  if (nbits > 900 || dbits > 900) {
    const uint64_t shift =
        (nbits > dbits ? nbits : dbits) > 900
            ? (nbits > dbits ? nbits : dbits) - 512
            : 0;
    return numerator_.ShiftRight(shift).ToDouble() /
           denominator_.ShiftRight(shift).ToDouble();
  }
  return numerator_.ToDouble() / denominator_.ToDouble();
}

size_t Rational::Hash() const {
  size_t h = numerator_.Hash();
  h ^= denominator_.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

}  // namespace gmc
