#include "util/parallel.h"

#include <algorithm>
#include <cstdlib>

#include "util/check.h"

namespace gmc {

namespace internal {

int ParseThreadsSpec(const char* spec) {
  if (spec == nullptr || *spec == '\0') return 0;
  int value = 0;
  for (const char* p = spec; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return 0;
    if (value > kMaxThreads) break;  // saturate; clamp below
    value = value * 10 + (*p - '0');
  }
  if (value <= 0) return 0;
  return std::min(value, kMaxThreads);
}

}  // namespace internal

namespace {

// True while the current thread is executing pool tasks (worker or
// participating caller); nested Run calls go inline instead of deadlocking
// on the single-job-in-flight mutex.
thread_local bool tl_in_parallel_region = false;

int HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::atomic<int> g_default_num_threads{0};  // 0 = resolve env/hardware

int EnvNumThreads() {
  static const int env = internal::ParseThreadsSpec(std::getenv("GMC_THREADS"));
  return env;
}

}  // namespace

int DefaultNumThreads() {
  const int override = g_default_num_threads.load(std::memory_order_relaxed);
  if (override > 0) return override;
  const int env = EnvNumThreads();
  if (env > 0) return env;
  return HardwareThreads();
}

void SetDefaultNumThreads(int num_threads) {
  g_default_num_threads.store(
      std::clamp(num_threads, 0, internal::kMaxThreads),
      std::memory_order_relaxed);
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

ThreadPool& ThreadPool::Shared() {
  // Leaked on purpose: workers park when idle, and tearing the pool down
  // during static destruction would race exiting threads.
  static ThreadPool* pool =
      new ThreadPool(std::max(HardwareThreads(), 8));
  return *pool;
}

void ThreadPool::WorkOn(Job* job) {
  tl_in_parallel_region = true;
  for (;;) {
    const int index = job->next.fetch_add(1, std::memory_order_relaxed);
    if (index >= job->num_tasks) break;
    (*job->task)(index);
  }
  tl_in_parallel_region = false;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    wake_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    Job* job = job_;
    if (job == nullptr) continue;  // woke after the job was retired
    ++active_workers_;
    lock.unlock();
    WorkOn(job);
    lock.lock();
    if (--active_workers_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::Run(int num_tasks, const std::function<void(int)>& task) {
  GMC_CHECK(num_tasks >= 0);
  if (num_tasks == 0) return;
  if (num_threads_ <= 1 || num_tasks == 1 || tl_in_parallel_region) {
    const bool was_nested = tl_in_parallel_region;
    tl_in_parallel_region = true;
    for (int i = 0; i < num_tasks; ++i) task(i);
    tl_in_parallel_region = was_nested;
    return;
  }
  std::lock_guard<std::mutex> run_lock(run_mu_);
  Job job;
  job.task = &task;
  job.num_tasks = num_tasks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
    ++generation_;
  }
  wake_cv_.notify_all();
  // The caller is a participant too, so the pool is never idle-waiting on
  // a loaded machine and a 1-worker pool still makes progress.
  WorkOn(&job);
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Retire the job first so late-waking workers skip it, then wait for
    // the workers already inside it to drain; job lives on this stack
    // frame, so nobody may touch it after Run returns.
    job_ = nullptr;
    done_cv_.wait(lock, [&] { return active_workers_ == 0; });
  }
}

void ParallelFor(int64_t n, int num_threads, int64_t min_grain,
                 const std::function<void(int64_t, int64_t, int)>& body) {
  if (n <= 0) return;
  if (num_threads <= 0) num_threads = DefaultNumThreads();
  min_grain = std::max<int64_t>(1, min_grain);
  const int64_t max_chunks = std::max<int64_t>(1, n / min_grain);
  const int num_chunks = static_cast<int>(
      std::min<int64_t>(std::min<int64_t>(num_threads, max_chunks), n));
  if (num_chunks <= 1) {
    body(0, n, 0);
    return;
  }
  ThreadPool::Shared().Run(num_chunks, [&](int chunk) {
    const int64_t begin = n * chunk / num_chunks;
    const int64_t end = n * (chunk + 1) / num_chunks;
    body(begin, end, chunk);
  });
}

}  // namespace gmc
