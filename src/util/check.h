// Lightweight checked-assertion macros.
//
// Library code does not use exceptions (Google style); internal invariants
// abort with a source location and message instead. GMC_CHECK is always on
// (the reductions' correctness claims are exact, so silently continuing after
// a violated invariant would be worse than stopping); GMC_DCHECK compiles out
// in NDEBUG builds and is reserved for hot paths.

#ifndef GMC_UTIL_CHECK_H_
#define GMC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace gmc {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "GMC_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace internal
}  // namespace gmc

#define GMC_CHECK(cond)                                            \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::gmc::internal::CheckFailed(__FILE__, __LINE__, #cond, ""); \
    }                                                              \
  } while (0)

#define GMC_CHECK_MSG(cond, msg)                                      \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::gmc::internal::CheckFailed(__FILE__, __LINE__, #cond, (msg)); \
    }                                                                 \
  } while (0)

#ifdef NDEBUG
#define GMC_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define GMC_DCHECK(cond) GMC_CHECK(cond)
#endif

#endif  // GMC_UTIL_CHECK_H_
