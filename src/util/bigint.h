// Arbitrary-precision signed integers.
//
// The hardness reductions in this library recover integer model counts by
// exact Gaussian elimination over rationals whose numerators/denominators
// grow to thousands of bits, so an exact big-integer type is the foundation
// of everything else. Representation is sign-magnitude with little-endian
// 32-bit limbs. Multiplication switches to Karatsuba above a threshold;
// division is Knuth's Algorithm D; gcd is binary (Stein), which avoids
// divisions entirely.
//
// Two properties matter for the evaluate-many hot loops (EvaluateBatch /
// EvaluateBatchDyadic, which stream millions of small additions and
// multiplications per sweep):
//   * small-value optimization — magnitudes of up to two limbs (all 64-bit
//     values, the common case for sweep mantissas) are stored inline in the
//     BigInt itself and never touch the heap;
//   * true in-place compound operators — += / -= / *= mutate the existing
//     limb buffer instead of building a temporary and copy-assigning it.

#ifndef GMC_UTIL_BIGINT_H_
#define GMC_UTIL_BIGINT_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace gmc {
namespace internal {

// Small-vector of 32-bit limbs. Magnitudes of up to kInlineLimbs limbs live
// inside the object (no heap allocation); larger ones spill to a
// geometrically grown heap buffer, like std::vector. Only the operations
// the BigInt kernels need are provided; new limbs introduced by resize()
// are zero-filled (limb buffers are always dense).
class LimbVec {
 public:
  static constexpr uint32_t kInlineLimbs = 2;

  LimbVec() = default;
  LimbVec(const LimbVec& other) { *this = other; }
  LimbVec& operator=(const LimbVec& other) {
    if (this == &other) return *this;
    if (other.size_ > capacity_) Grow(other.size_, /*preserve=*/false);
    std::memcpy(data_, other.data_, other.size_ * sizeof(uint32_t));
    size_ = other.size_;
    return *this;
  }
  LimbVec(LimbVec&& other) noexcept { MoveFrom(&other); }
  LimbVec& operator=(LimbVec&& other) noexcept {
    if (this == &other) return *this;
    if (data_ != inline_) delete[] data_;
    MoveFrom(&other);
    return *this;
  }
  ~LimbVec() {
    if (data_ != inline_) delete[] data_;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint32_t* data() { return data_; }
  const uint32_t* data() const { return data_; }
  uint32_t& operator[](size_t i) { return data_[i]; }
  uint32_t operator[](size_t i) const { return data_[i]; }
  uint32_t back() const { return data_[size_ - 1]; }

  void clear() { size_ = 0; }
  void pop_back() { --size_; }
  void push_back(uint32_t value) {
    if (size_ == capacity_) Grow(size_ + 1, /*preserve=*/true);
    data_[size_++] = value;
  }
  // Grows with zero-fill or shrinks; never reallocates on shrink.
  void resize(size_t n) {
    if (n > size_) {
      if (n > capacity_) Grow(n, /*preserve=*/true);
      std::memset(data_ + size_, 0, (n - size_) * sizeof(uint32_t));
    }
    size_ = static_cast<uint32_t>(n);
  }
  void TrimZeros() {
    while (size_ > 0 && data_[size_ - 1] == 0) --size_;
  }

  bool operator==(const LimbVec& other) const {
    return size_ == other.size_ &&
           std::memcmp(data_, other.data_, size_ * sizeof(uint32_t)) == 0;
  }

 private:
  void MoveFrom(LimbVec* other) {
    if (other->data_ == other->inline_) {
      data_ = inline_;
      capacity_ = kInlineLimbs;
      std::memcpy(inline_, other->inline_, sizeof(inline_));
    } else {
      data_ = other->data_;
      capacity_ = other->capacity_;
      other->data_ = other->inline_;
      other->capacity_ = kInlineLimbs;
    }
    size_ = other->size_;
    other->size_ = 0;
  }
  void Grow(size_t need, bool preserve) {
    size_t cap = capacity_;
    while (cap < need) cap *= 2;
    uint32_t* heap = new uint32_t[cap];
    if (preserve) std::memcpy(heap, data_, size_ * sizeof(uint32_t));
    if (data_ != inline_) delete[] data_;
    data_ = heap;
    capacity_ = static_cast<uint32_t>(cap);
  }

  uint32_t* data_ = inline_;
  uint32_t size_ = 0;
  uint32_t capacity_ = kInlineLimbs;
  uint32_t inline_[kInlineLimbs] = {};
};

}  // namespace internal

class BigInt {
 public:
  // Zero.
  BigInt() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): ints are the same value set.
  BigInt(int64_t value);

  BigInt(const BigInt&) = default;
  BigInt& operator=(const BigInt&) = default;
  BigInt(BigInt&&) = default;
  BigInt& operator=(BigInt&&) = default;

  // Parses a decimal string with optional leading '-'. Aborts on malformed
  // input; use FromString for fallible parsing.
  static BigInt FromDecimal(const std::string& text);

  // -1, 0, +1.
  int sign() const { return sign_; }
  bool IsZero() const { return sign_ == 0; }
  bool IsOne() const { return sign_ == 1 && limbs_.size() == 1 && limbs_[0] == 1; }
  bool IsNegative() const { return sign_ < 0; }
  // True iff |*this| is a power of two (and *this != 0).
  bool IsPowerOfTwo() const;

  BigInt operator-() const;
  BigInt Abs() const;

  BigInt operator+(const BigInt& other) const;
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;
  // Truncated division (C++ semantics): quotient rounds toward zero and the
  // remainder has the sign of the dividend. Aborts on division by zero.
  BigInt operator/(const BigInt& other) const;
  BigInt operator%(const BigInt& other) const;

  // In-place forms; += / -= / *= mutate the limb buffer directly (no
  // temporary BigInt) and are safe under self-aliasing (a += a, a *= a).
  BigInt& operator+=(const BigInt& other);
  BigInt& operator-=(const BigInt& other);
  BigInt& operator*=(const BigInt& other);
  BigInt& operator/=(const BigInt& other) { return *this = *this / other; }
  BigInt& operator%=(const BigInt& other) { return *this = *this % other; }

  // Computes quotient and remainder in one pass.
  static void DivMod(const BigInt& numerator, const BigInt& denominator,
                     BigInt* quotient, BigInt* remainder);

  // Left/right shift by an arbitrary bit count (logical, on the magnitude).
  BigInt ShiftLeft(uint64_t bits) const;
  BigInt ShiftRight(uint64_t bits) const;
  // In-place shifts (the dyadic exponent-alignment hot path).
  void ShiftLeftInPlace(uint64_t bits);
  void ShiftRightInPlace(uint64_t bits);

  // Greatest common divisor of magnitudes; Gcd(0, 0) == 0.
  static BigInt Gcd(const BigInt& a, const BigInt& b);

  // *this raised to a non-negative power (Pow(0) == 1, including 0^0).
  BigInt Pow(uint64_t exponent) const;

  // Number of bits in the magnitude (BitLength(0) == 0).
  uint64_t BitLength() const;
  // Number of trailing zero bits in the magnitude (0 for zero).
  uint64_t TrailingZeroBits() const;
  // The 64 magnitude bits starting at bit `offset` (little-endian),
  // zero-padded past the top — the fixed-width dyadic kernels' word
  // extraction, O(1) with no allocation.
  uint64_t Bits64At(uint64_t offset) const;

  // Floor square root of the magnitude (requires *this >= 0).
  BigInt ISqrt() const;
  // True iff *this is a perfect square (0 and 1 included).
  bool IsPerfectSquare() const;

  bool operator==(const BigInt& other) const;
  bool operator!=(const BigInt& other) const { return !(*this == other); }
  bool operator<(const BigInt& other) const;
  bool operator<=(const BigInt& other) const { return !(other < *this); }
  bool operator>(const BigInt& other) const { return other < *this; }
  bool operator>=(const BigInt& other) const { return !(*this < other); }

  // Decimal representation (with '-' for negatives).
  std::string ToString() const;

  // Best-effort conversion to double (may overflow to +/-inf).
  double ToDouble() const;

  // Exact conversion to int64_t; aborts if out of range.
  int64_t ToInt64() const;

  // FNV-style hash of the canonical representation.
  size_t Hash() const;

 private:
  using LimbVec = internal::LimbVec;

  // Invariant: limbs_ has no trailing zero limbs; sign_ == 0 iff limbs_ empty.
  int sign_ = 0;
  LimbVec limbs_;

  void Normalize();
  // *this ± other with `other`'s sign multiplied by `other_sign` (+1 / −1);
  // shared body of += and -=.
  void AddSigned(const BigInt& other, int other_sign);
  static int CompareMagnitude(const LimbVec& a, const LimbVec& b);
  static LimbVec MulMagnitude(const LimbVec& a, const LimbVec& b);
  static LimbVec MulSchoolbook(const LimbVec& a, const LimbVec& b);
  static LimbVec MulKaratsuba(const LimbVec& a, const LimbVec& b);
  static void DivModMagnitude(const LimbVec& u, const LimbVec& v,
                              LimbVec* quotient, LimbVec* remainder);
};

}  // namespace gmc

#endif  // GMC_UTIL_BIGINT_H_
