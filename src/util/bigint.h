// Arbitrary-precision signed integers.
//
// The hardness reductions in this library recover integer model counts by
// exact Gaussian elimination over rationals whose numerators/denominators
// grow to thousands of bits, so an exact big-integer type is the foundation
// of everything else. Representation is sign-magnitude with little-endian
// 32-bit limbs. Multiplication switches to Karatsuba above a threshold;
// division is Knuth's Algorithm D; gcd is binary (Stein), which avoids
// divisions entirely.

#ifndef GMC_UTIL_BIGINT_H_
#define GMC_UTIL_BIGINT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gmc {

class BigInt {
 public:
  // Zero.
  BigInt() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): ints are the same value set.
  BigInt(int64_t value);

  BigInt(const BigInt&) = default;
  BigInt& operator=(const BigInt&) = default;
  BigInt(BigInt&&) = default;
  BigInt& operator=(BigInt&&) = default;

  // Parses a decimal string with optional leading '-'. Aborts on malformed
  // input; use FromString for fallible parsing.
  static BigInt FromDecimal(const std::string& text);

  // -1, 0, +1.
  int sign() const { return sign_; }
  bool IsZero() const { return sign_ == 0; }
  bool IsOne() const { return sign_ == 1 && limbs_.size() == 1 && limbs_[0] == 1; }
  bool IsNegative() const { return sign_ < 0; }
  // True iff |*this| is a power of two (and *this != 0).
  bool IsPowerOfTwo() const;

  BigInt operator-() const;
  BigInt Abs() const;

  BigInt operator+(const BigInt& other) const;
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;
  // Truncated division (C++ semantics): quotient rounds toward zero and the
  // remainder has the sign of the dividend. Aborts on division by zero.
  BigInt operator/(const BigInt& other) const;
  BigInt operator%(const BigInt& other) const;

  BigInt& operator+=(const BigInt& other) { return *this = *this + other; }
  BigInt& operator-=(const BigInt& other) { return *this = *this - other; }
  BigInt& operator*=(const BigInt& other) { return *this = *this * other; }
  BigInt& operator/=(const BigInt& other) { return *this = *this / other; }
  BigInt& operator%=(const BigInt& other) { return *this = *this % other; }

  // Computes quotient and remainder in one pass.
  static void DivMod(const BigInt& numerator, const BigInt& denominator,
                     BigInt* quotient, BigInt* remainder);

  // Left/right shift by an arbitrary bit count (logical, on the magnitude).
  BigInt ShiftLeft(uint64_t bits) const;
  BigInt ShiftRight(uint64_t bits) const;

  // Greatest common divisor of magnitudes; Gcd(0, 0) == 0.
  static BigInt Gcd(const BigInt& a, const BigInt& b);

  // *this raised to a non-negative power (Pow(0) == 1, including 0^0).
  BigInt Pow(uint64_t exponent) const;

  // Number of bits in the magnitude (BitLength(0) == 0).
  uint64_t BitLength() const;

  // Floor square root of the magnitude (requires *this >= 0).
  BigInt ISqrt() const;
  // True iff *this is a perfect square (0 and 1 included).
  bool IsPerfectSquare() const;

  bool operator==(const BigInt& other) const;
  bool operator!=(const BigInt& other) const { return !(*this == other); }
  bool operator<(const BigInt& other) const;
  bool operator<=(const BigInt& other) const { return !(other < *this); }
  bool operator>(const BigInt& other) const { return other < *this; }
  bool operator>=(const BigInt& other) const { return !(*this < other); }

  // Decimal representation (with '-' for negatives).
  std::string ToString() const;

  // Best-effort conversion to double (may overflow to +/-inf).
  double ToDouble() const;

  // Exact conversion to int64_t; aborts if out of range.
  int64_t ToInt64() const;

  // FNV-style hash of the canonical representation.
  size_t Hash() const;

 private:
  // Invariant: limbs_ has no trailing zero limbs; sign_ == 0 iff limbs_ empty.
  int sign_ = 0;
  std::vector<uint32_t> limbs_;

  void Normalize();
  static int CompareMagnitude(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b);
  static std::vector<uint32_t> AddMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  // Requires |a| >= |b|.
  static std::vector<uint32_t> SubMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  static std::vector<uint32_t> MulMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  static std::vector<uint32_t> MulSchoolbook(const std::vector<uint32_t>& a,
                                             const std::vector<uint32_t>& b);
  static std::vector<uint32_t> MulKaratsuba(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  static void DivModMagnitude(const std::vector<uint32_t>& u,
                              const std::vector<uint32_t>& v,
                              std::vector<uint32_t>* quotient,
                              std::vector<uint32_t>* remainder);
};

}  // namespace gmc

#endif  // GMC_UTIL_BIGINT_H_
