// Chunked thread pool for the batched evaluation hot paths.
//
// The pool is deliberately minimal: persistent workers, one task batch in
// flight at a time, and a claim-counter distribution scheme. Determinism is
// by construction, not by scheduling discipline — every task writes to
// disjoint, caller-owned slots and reads only shared immutable state, so
// the pool decides WHEN a task runs but never what it computes or where the
// result goes. Callers that need an ordered reduction (the batch evaluators
// collecting K root values) perform it on the caller thread, in slot order,
// after Run returns; results are therefore bit-identical at any thread
// count, which the thread-count-invariance tests pin down.
//
// Nesting: a Run issued from inside a pool task executes inline on the
// calling worker (no new tasks are enqueued), so composed parallel layers
// degrade to the outer layer's partitioning instead of deadlocking.

#ifndef GMC_UTIL_PARALLEL_H_
#define GMC_UTIL_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gmc {

namespace internal {
// Parses a thread-count spec (the GMC_THREADS environment variable):
// a positive decimal integer, clamped to [1, kMaxThreads]. Returns 0 for
// null, empty, or malformed input ("use the hardware default").
int ParseThreadsSpec(const char* spec);
inline constexpr int kMaxThreads = 256;
}  // namespace internal

// Process-wide default worker count for parallel batch passes. Resolution
// order: SetDefaultNumThreads override if set, else the GMC_THREADS
// environment variable (read once), else std::thread::hardware_concurrency.
// Always >= 1; 1 means every batch pass runs serially.
int DefaultNumThreads();
// Overrides the process default (0 restores env/hardware resolution).
// GfomcSession::set_num_threads and CircuitCache::set_num_threads override
// per instance; this is the knob for whole-process A/B runs and tests.
void SetDefaultNumThreads(int num_threads);

class ThreadPool {
 public:
  // Spawns num_threads - 1 persistent workers (the caller thread is the
  // remaining participant; num_threads <= 1 spawns none and Run degrades
  // to an inline loop).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Runs task(0) .. task(num_tasks - 1), each exactly once, distributed
  // over the workers and the calling thread; returns when all are done.
  // Tasks must not block on each other. Thread-safe: concurrent Run calls
  // from different threads serialize on an internal mutex. A Run from
  // inside a pool task executes inline (see header comment).
  void Run(int num_tasks, const std::function<void(int)>& task);

  // The shared process-wide pool, lazily constructed on first use and
  // never destroyed (workers park on a condition variable when idle).
  // Sized generously — max(hardware_concurrency, 8) workers — so
  // invariance tests can exercise more chunks than cores; Run's num_tasks
  // caps the parallelism actually used per call.
  static ThreadPool& Shared();

 private:
  struct Job {
    const std::function<void(int)>* task = nullptr;
    int num_tasks = 0;
    std::atomic<int> next{0};
  };

  void WorkerLoop();
  // Claims and executes tasks until the job is drained.
  static void WorkOn(Job* job);

  const int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex run_mu_;  // one job in flight at a time

  std::mutex mu_;
  std::condition_variable wake_cv_;
  std::condition_variable done_cv_;
  uint64_t generation_ = 0;   // bumped per job; workers wake on change
  Job* job_ = nullptr;        // non-null while a job accepts workers
  int active_workers_ = 0;    // workers currently inside WorkOn
  bool stop_ = false;
};

// Splits [0, n) into at most `num_threads` contiguous chunks of at least
// `min_grain` elements each and runs body(begin, end, chunk_index) for
// every chunk over the shared pool (num_threads <= 0 resolves to
// DefaultNumThreads()). Chunk boundaries depend only on (n, num_threads,
// min_grain) — never on timing — and chunks are disjoint, so any body
// that writes chunk-local slots is deterministic at every thread count.
void ParallelFor(int64_t n, int num_threads, int64_t min_grain,
                 const std::function<void(int64_t, int64_t, int)>& body);

}  // namespace gmc

#endif  // GMC_UTIL_PARALLEL_H_
