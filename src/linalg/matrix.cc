#include "linalg/matrix.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace gmc {

RationalMatrix::RationalMatrix(int rows, int cols)
    : rows_(rows), cols_(cols), entries_(rows * cols) {
  GMC_CHECK(rows > 0 && cols > 0);
}

RationalMatrix RationalMatrix::Identity(int n) {
  RationalMatrix out(n, n);
  for (int i = 0; i < n; ++i) out.At(i, i) = Rational::One();
  return out;
}

RationalMatrix RationalMatrix::Vandermonde(
    const std::vector<Rational>& values) {
  const int n = static_cast<int>(values.size());
  GMC_CHECK(n > 0);
  RationalMatrix out(n, n);
  for (int i = 0; i < n; ++i) {
    Rational power = Rational::One();
    for (int j = 0; j < n; ++j) {
      out.At(i, j) = power;
      power *= values[i];
    }
  }
  return out;
}

RationalMatrix RationalMatrix::Kronecker(const RationalMatrix& a,
                                         const RationalMatrix& b) {
  RationalMatrix out(a.rows_ * b.rows_, a.cols_ * b.cols_);
  for (int i = 0; i < a.rows_; ++i) {
    for (int j = 0; j < a.cols_; ++j) {
      for (int k = 0; k < b.rows_; ++k) {
        for (int l = 0; l < b.cols_; ++l) {
          out.At(i * b.rows_ + k, j * b.cols_ + l) = a.At(i, j) * b.At(k, l);
        }
      }
    }
  }
  return out;
}

Rational& RationalMatrix::At(int r, int c) {
  GMC_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return entries_[r * cols_ + c];
}

const Rational& RationalMatrix::At(int r, int c) const {
  GMC_CHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return entries_[r * cols_ + c];
}

RationalMatrix RationalMatrix::operator*(const RationalMatrix& other) const {
  GMC_CHECK(cols_ == other.rows_);
  RationalMatrix out(rows_, other.cols_);
  for (int i = 0; i < rows_; ++i) {
    for (int k = 0; k < cols_; ++k) {
      const Rational& aik = At(i, k);
      if (aik.IsZero()) continue;
      for (int j = 0; j < other.cols_; ++j) {
        if (other.At(k, j).IsZero()) continue;
        out.At(i, j) += aik * other.At(k, j);
      }
    }
  }
  return out;
}

RationalMatrix RationalMatrix::operator+(const RationalMatrix& other) const {
  GMC_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  RationalMatrix out(rows_, cols_);
  for (size_t i = 0; i < entries_.size(); ++i) {
    out.entries_[i] = entries_[i] + other.entries_[i];
  }
  return out;
}

RationalMatrix RationalMatrix::operator-(const RationalMatrix& other) const {
  GMC_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  RationalMatrix out(rows_, cols_);
  for (size_t i = 0; i < entries_.size(); ++i) {
    out.entries_[i] = entries_[i] - other.entries_[i];
  }
  return out;
}

RationalMatrix RationalMatrix::ScaledBy(const Rational& factor) const {
  RationalMatrix out(rows_, cols_);
  for (size_t i = 0; i < entries_.size(); ++i) {
    out.entries_[i] = entries_[i] * factor;
  }
  return out;
}

RationalMatrix RationalMatrix::Transposed() const {
  RationalMatrix out(cols_, rows_);
  for (int i = 0; i < rows_; ++i) {
    for (int j = 0; j < cols_; ++j) out.At(j, i) = At(i, j);
  }
  return out;
}

RationalMatrix RationalMatrix::Pow(uint64_t exponent) const {
  GMC_CHECK(rows_ == cols_);
  RationalMatrix result = Identity(rows_);
  RationalMatrix base = *this;
  while (exponent > 0) {
    if (exponent & 1) result = result * base;
    base = base * base;
    exponent >>= 1;
  }
  return result;
}

Rational RationalMatrix::Determinant() const {
  GMC_CHECK(rows_ == cols_);
  RationalMatrix work = *this;
  Rational det = Rational::One();
  for (int col = 0; col < cols_; ++col) {
    int pivot = -1;
    for (int row = col; row < rows_; ++row) {
      if (!work.At(row, col).IsZero()) {
        pivot = row;
        break;
      }
    }
    if (pivot == -1) return Rational::Zero();
    if (pivot != col) {
      for (int j = 0; j < cols_; ++j) {
        std::swap(work.At(pivot, j), work.At(col, j));
      }
      det = -det;
    }
    const Rational pivot_value = work.At(col, col);
    det *= pivot_value;
    for (int row = col + 1; row < rows_; ++row) {
      if (work.At(row, col).IsZero()) continue;
      const Rational factor = work.At(row, col) / pivot_value;
      work.At(row, col) = Rational::Zero();
      for (int j = col + 1; j < cols_; ++j) {
        work.At(row, j) -= factor * work.At(col, j);
      }
    }
  }
  return det;
}

int RationalMatrix::Rank() const {
  RationalMatrix work = *this;
  int rank = 0;
  int pivot_row = 0;
  for (int col = 0; col < cols_ && pivot_row < rows_; ++col) {
    int pivot = -1;
    for (int row = pivot_row; row < rows_; ++row) {
      if (!work.At(row, col).IsZero()) {
        pivot = row;
        break;
      }
    }
    if (pivot == -1) continue;
    for (int j = 0; j < cols_; ++j) {
      std::swap(work.At(pivot, j), work.At(pivot_row, j));
    }
    const Rational pivot_value = work.At(pivot_row, col);
    for (int row = pivot_row + 1; row < rows_; ++row) {
      if (work.At(row, col).IsZero()) continue;
      const Rational factor = work.At(row, col) / pivot_value;
      for (int j = col; j < cols_; ++j) {
        work.At(row, j) -= factor * work.At(pivot_row, j);
      }
    }
    ++rank;
    ++pivot_row;
  }
  return rank;
}

std::optional<std::vector<Rational>> RationalMatrix::Solve(
    const std::vector<Rational>& rhs) const {
  GMC_CHECK(rows_ == cols_);
  GMC_CHECK(static_cast<int>(rhs.size()) == rows_);
  RationalMatrix work = *this;
  std::vector<Rational> b = rhs;
  for (int col = 0; col < cols_; ++col) {
    int pivot = -1;
    for (int row = col; row < rows_; ++row) {
      if (!work.At(row, col).IsZero()) {
        pivot = row;
        break;
      }
    }
    if (pivot == -1) return std::nullopt;
    if (pivot != col) {
      for (int j = 0; j < cols_; ++j) {
        std::swap(work.At(pivot, j), work.At(col, j));
      }
      std::swap(b[pivot], b[col]);
    }
    const Rational pivot_value = work.At(col, col);
    for (int row = col + 1; row < rows_; ++row) {
      if (work.At(row, col).IsZero()) continue;
      const Rational factor = work.At(row, col) / pivot_value;
      work.At(row, col) = Rational::Zero();
      for (int j = col + 1; j < cols_; ++j) {
        work.At(row, j) -= factor * work.At(col, j);
      }
      b[row] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<Rational> x(cols_);
  for (int row = rows_ - 1; row >= 0; --row) {
    Rational acc = b[row];
    for (int j = row + 1; j < cols_; ++j) {
      acc -= work.At(row, j) * x[j];
    }
    x[row] = acc / work.At(row, row);
  }
  return x;
}

std::optional<RationalMatrix> RationalMatrix::Inverse() const {
  GMC_CHECK(rows_ == cols_);
  RationalMatrix out(rows_, cols_);
  // Solve column by column against unit vectors.
  for (int c = 0; c < cols_; ++c) {
    std::vector<Rational> unit(rows_);
    unit[c] = Rational::One();
    std::optional<std::vector<Rational>> column = Solve(unit);
    if (!column.has_value()) return std::nullopt;
    for (int r = 0; r < rows_; ++r) out.At(r, c) = (*column)[r];
  }
  return out;
}

std::string RationalMatrix::ToString() const {
  std::string out;
  for (int i = 0; i < rows_; ++i) {
    out += "[ ";
    for (int j = 0; j < cols_; ++j) {
      out += At(i, j).ToString() + " ";
    }
    out += "]\n";
  }
  return out;
}

}  // namespace gmc
