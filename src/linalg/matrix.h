// Dense exact-rational linear algebra.
//
// The Cook reduction of §3.2 recovers the signature counts #k′ by solving a
// linear system whose matrix (Theorem 3.6's "big matrix") must be inverted
// exactly — the unknowns are integers obtained from rationals with huge
// numerators, so floating point is useless here. Plain Gaussian elimination
// over Rational suffices at the sizes the reductions produce ((m+1)² rows).

#ifndef GMC_LINALG_MATRIX_H_
#define GMC_LINALG_MATRIX_H_

#include <optional>
#include <string>
#include <vector>

#include "util/rational.h"

namespace gmc {

class RationalMatrix {
 public:
  RationalMatrix(int rows, int cols);
  static RationalMatrix Identity(int n);
  // Square Vandermonde matrix: entry (i, j) = values[i]^j.
  static RationalMatrix Vandermonde(const std::vector<Rational>& values);
  static RationalMatrix Kronecker(const RationalMatrix& a,
                                  const RationalMatrix& b);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  Rational& At(int r, int c);
  const Rational& At(int r, int c) const;

  RationalMatrix operator*(const RationalMatrix& other) const;
  RationalMatrix operator+(const RationalMatrix& other) const;
  RationalMatrix operator-(const RationalMatrix& other) const;
  RationalMatrix ScaledBy(const Rational& factor) const;
  RationalMatrix Transposed() const;
  RationalMatrix Pow(uint64_t exponent) const;

  bool operator==(const RationalMatrix& other) const = default;

  // Exact determinant (square matrices) via fraction-preserving Gaussian
  // elimination with pivoting.
  Rational Determinant() const;

  int Rank() const;
  bool IsSingular() const { return Rank() < std::min(rows_, cols_); }

  // Solves A·x = b for square non-singular A; nullopt when singular.
  std::optional<std::vector<Rational>> Solve(
      const std::vector<Rational>& rhs) const;

  // Exact inverse; nullopt when singular.
  std::optional<RationalMatrix> Inverse() const;

  std::string ToString() const;

 private:
  int rows_;
  int cols_;
  std::vector<Rational> entries_;  // row-major
};

}  // namespace gmc

#endif  // GMC_LINALG_MATRIX_H_
