#!/usr/bin/env python3
"""Fail on dead intra-repo markdown links.

Scans every tracked-looking markdown file in the repository (skipping build
directories and .git), extracts inline links/images `[text](target)`, and
checks that every RELATIVE target resolves to an existing file or directory
relative to the file that contains it. External links (http/https/mailto)
and pure in-page anchors (#heading) are ignored; a `target#fragment` link is
checked against `target` only. Fenced code blocks are stripped first so
markdown examples inside ``` fences never count.

CI runs this as the `docs` job; locally:

    python3 tools/check_docs_links.py [repo_root]

Exit status 0 iff every link resolves; dead links are listed one per line
as `file:line: target`.
"""

import os
import re
import sys

SKIP_DIRS = {".git", "build", "node_modules", "__pycache__"}
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
FENCE_RE = re.compile(r"^(```|~~~)")


def iter_markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in sorted(dirnames)
            if d not in SKIP_DIRS and not d.startswith("build")
        ]
        for name in sorted(filenames):
            if name.lower().endswith(".md"):
                yield os.path.join(dirpath, name)


def iter_links(path):
    """Yields (line_number, target) for every inline link outside fences."""
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            if FENCE_RE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in LINK_RE.finditer(line):
                yield line_number, match.group(1)


def is_external(target):
    return (
        target.startswith("http://")
        or target.startswith("https://")
        or target.startswith("mailto:")
        or target.startswith("#")
    )


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else
                           os.path.join(os.path.dirname(__file__), ".."))
    checked = 0
    dead = []
    for path in iter_markdown_files(root):
        base = os.path.dirname(path)
        for line_number, target in iter_links(path):
            if is_external(target):
                continue
            resolved = target.split("#", 1)[0]
            if not resolved:
                continue
            checked += 1
            if not os.path.exists(os.path.join(base, resolved)):
                dead.append(
                    f"{os.path.relpath(path, root)}:{line_number}: {target}")
    if dead:
        print(f"{len(dead)} dead intra-repo markdown link(s):")
        for entry in dead:
            print(f"  {entry}")
        return 1
    print(f"OK: {checked} intra-repo markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
