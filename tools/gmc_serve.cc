// gmc_serve — a long-lived GFOMC evaluation server.
//
// Wraps serve::GmcServer (see src/serve/serve.h for the wire protocol)
// around one query: compile-once / evaluate-many across PROCESSES, with
// optional circuit persistence so restarts and replicas warm-start from
// disk instead of recompiling.
//
// Usage:
//   gmc_serve --socket=/tmp/gmc.sock --query='Ax Ay (R(x) | S(x,y))' \
//             [--store=DIR] [--threads=N] [--max-pending=N] [--no-warm] \
//             [--read-idle-ms=N] [--write-timeout-ms=N] [--backlog=N] \
//             [--max-connections=N] [--max-inflight-per-conn=N]
//
// --max-connections defaults from the GMC_MAX_CONNECTIONS environment
// variable (the flag wins when both are set); 0 means unlimited. Clients
// accepted past the cap get one typed "ERR - BUSY retry_after_ms=<n>"
// greeting and are closed.
//
// Talk to it with any line client, e.g.:
//   printf 'EVAL q1 2 2 1/2\nQUIT\n' | nc -U /tmp/gmc.sock
//
// SIGINT/SIGTERM trigger a graceful shutdown: queued requests are
// answered, the write-through store is flushed, then the process exits.

#include <signal.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "logic/parser.h"
#include "serve/serve.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

// --flag=value extraction; returns true and fills *value on match.
bool FlagValue(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket=PATH --query=QUERY [--store=DIR] "
               "[--threads=N] [--max-pending=N] [--max-domain=N] "
               "[--no-warm] [--read-idle-ms=N] [--write-timeout-ms=N] "
               "[--backlog=N] [--max-connections=N] "
               "[--max-inflight-per-conn=N]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string query_text;
  gmc::serve::GmcServerOptions options;

  // Environment default for deployments that cannot edit the command line
  // (service managers with fixed unit files); the flag overrides it.
  if (const char* env = std::getenv("GMC_MAX_CONNECTIONS")) {
    options.max_connections = static_cast<size_t>(std::atol(env));
  }

  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (FlagValue(argv[i], "--socket", &value)) {
      socket_path = value;
    } else if (FlagValue(argv[i], "--query", &value)) {
      query_text = value;
    } else if (FlagValue(argv[i], "--store", &value)) {
      options.store_directory = value;
    } else if (FlagValue(argv[i], "--threads", &value)) {
      options.num_threads = std::atoi(value.c_str());
    } else if (FlagValue(argv[i], "--max-pending", &value)) {
      options.max_pending = static_cast<size_t>(std::atol(value.c_str()));
    } else if (FlagValue(argv[i], "--max-domain", &value)) {
      options.max_domain = std::atoi(value.c_str());
    } else if (FlagValue(argv[i], "--read-idle-ms", &value)) {
      // 0 = never reap idle connections (the default).
      options.read_idle_ms = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (FlagValue(argv[i], "--write-timeout-ms", &value)) {
      // 0 = block forever on a stalled peer.
      options.write_timeout_ms =
          static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (FlagValue(argv[i], "--backlog", &value)) {
      options.listen_backlog = std::atoi(value.c_str());
    } else if (FlagValue(argv[i], "--max-connections", &value)) {
      // 0 = unlimited.
      options.max_connections = static_cast<size_t>(std::atol(value.c_str()));
    } else if (FlagValue(argv[i], "--max-inflight-per-conn", &value)) {
      // 0 = unlimited.
      options.max_inflight_per_connection =
          static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (std::strcmp(argv[i], "--no-warm") == 0) {
      options.warm_start = false;
    } else {
      return Usage(argv[0]);
    }
  }
  if (socket_path.empty() || query_text.empty()) return Usage(argv[0]);
  options.socket_path = socket_path;

  // A client that disconnects mid-write must surface as EPIPE from send,
  // never as process death; GmcServer::Start ignores SIGPIPE too, but the
  // disposition belongs to the process and is set before any socket exists.
  std::signal(SIGPIPE, SIG_IGN);

  // Block the shutdown signals BEFORE installing handlers or spawning the
  // server threads (which inherit the mask): delivery can then only happen
  // inside sigsuspend below, closing the window where a signal lands
  // between the g_stop check and the suspend and is lost forever.
  sigset_t shutdown_signals;
  sigemptyset(&shutdown_signals);
  sigaddset(&shutdown_signals, SIGINT);
  sigaddset(&shutdown_signals, SIGTERM);
  ::sigprocmask(SIG_BLOCK, &shutdown_signals, nullptr);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  gmc::serve::GmcServer server(gmc::ParseQueryOrDie(query_text),
                               std::move(options));
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "gmc_serve: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr, "gmc_serve: listening on %s\n", socket_path.c_str());

  sigset_t wait_mask;
  ::sigprocmask(SIG_SETMASK, nullptr, &wait_mask);
  sigdelset(&wait_mask, SIGINT);
  sigdelset(&wait_mask, SIGTERM);
  while (!g_stop) sigsuspend(&wait_mask);  // wait for a shutdown signal

  std::fprintf(stderr, "gmc_serve: shutting down\n");
  server.Stop();
  const gmc::serve::GmcServer::Stats stats = server.stats();
  std::fprintf(stderr,
               "gmc_serve: served %llu requests in %llu batches "
               "(max batch %llu, shed %llu)\n",
               static_cast<unsigned long long>(stats.responses),
               static_cast<unsigned long long>(stats.batches),
               static_cast<unsigned long long>(stats.max_batch),
               static_cast<unsigned long long>(stats.shed));
  return 0;
}
