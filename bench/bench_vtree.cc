// E17: vtree-guided compilation orders — circuit size and
// compile+evaluate throughput vs the legacy most-occurring order.
//
// The order heuristic moves circuit SIZE (and with it every later
// evaluation pass), not correctness. The headline family is the Type-II
// Möbius gadget (Example C9), whose grid-shaped lineage explodes under
// the legacy order as the domain grows — at domain 4 the min-fill vtree
// circuit is ~12× fewer edges after minimization — while the Type-I
// path-shaped gadgets shrink a steady 7–10%. BM_VtreeOrderCrossCheck
// fails the run loudly if any heuristic's probabilities deviate, or if
// min-fill ever produces a LARGER Type-II circuit than the legacy order —
// the acceptance bar of the vtree work, enforced on every CI run.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "compile/compiler.h"
#include "compile/nnf.h"
#include "compile/vtree.h"
#include "hardness/p2cnf.h"
#include "hardness/reduction_type1.h"
#include "lineage/grounder.h"
#include "logic/parser.h"
#include "prob/tid.h"
#include "util/rational.h"

namespace {

gmc::Query H1() {
  return gmc::ParseQueryOrDie(
      "Ax Ay (R(x) | S(x,y)) & Ax Ay (S(x,y) | T(y))");
}

gmc::Query ExampleC9() {
  return gmc::ParseQueryOrDie(
      "Ax (Ay (S1(x,y)) | Ay (S2(x,y))) & Ax Ay (S1(x,y) | S3(x,y)) & "
      "Ay (Ax (S3(x,y)) | Ax (S4(x,y)))");
}

// The Type-II Möbius gadget lineage at domain d×d — the family where the
// order matters most (the legacy circuit grows super-linearly in d).
gmc::Lineage Type2Lineage(int domain) {
  gmc::Query q = ExampleC9();
  gmc::Tid tid(q.vocab_ptr(), domain, domain, gmc::Rational::Half());
  return gmc::Ground(q, tid);
}

// The Type-I interpolation gadget lineage (path-shaped).
gmc::Lineage Type1Lineage() {
  gmc::Type1Reduction reduction(H1());
  gmc::P2Cnf phi = gmc::P2Cnf::Random(5, 5, /*seed=*/42);
  gmc::Tid tid = reduction.BuildTid(phi, 2, 2);
  return gmc::Ground(reduction.query(), tid);
}

// K all-dyadic weight vectors (the interpolation-grid shape), so the
// sweep exercises the production dyadic batch path.
gmc::WeightMatrix SweepWeights(const gmc::Lineage& lineage, int k) {
  gmc::WeightMatrix weights(k, lineage.cnf.num_vars);
  for (int column = 0; column < k; ++column) {
    const gmc::Rational value(column + 1, 128);
    for (int v = 0; v < lineage.cnf.num_vars; ++v) {
      weights.Set(column, v, value);
    }
  }
  return weights;
}

void CompileBench(benchmark::State& state, const gmc::Lineage& lineage,
                  gmc::OrderHeuristic order) {
  size_t edges = 0, nodes = 0;
  for (auto _ : state) {
    gmc::Compiler compiler;
    compiler.set_order(order);
    gmc::NnfCircuit circuit = compiler.Compile(lineage);
    gmc::NnfCircuit::Stats stats = circuit.ComputeStats();
    edges = stats.edges;
    nodes = stats.num_nodes;
    benchmark::DoNotOptimize(circuit.root());
  }
  state.counters["circuit_edges"] = static_cast<double>(edges);
  state.counters["circuit_nodes"] = static_cast<double>(nodes);
  state.counters["lineage_vars"] =
      static_cast<double>(lineage.variables.size());
}

void BM_CompileType2Default(benchmark::State& state) {
  CompileBench(state, Type2Lineage(static_cast<int>(state.range(0))),
               gmc::OrderHeuristic::kDefault);
}
BENCHMARK(BM_CompileType2Default)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_CompileType2MinFill(benchmark::State& state) {
  CompileBench(state, Type2Lineage(static_cast<int>(state.range(0))),
               gmc::OrderHeuristic::kMinFill);
}
BENCHMARK(BM_CompileType2MinFill)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_CompileType2Balanced(benchmark::State& state) {
  CompileBench(state, Type2Lineage(static_cast<int>(state.range(0))),
               gmc::OrderHeuristic::kBalanced);
}
BENCHMARK(BM_CompileType2Balanced)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_CompileType1Default(benchmark::State& state) {
  CompileBench(state, Type1Lineage(), gmc::OrderHeuristic::kDefault);
}
BENCHMARK(BM_CompileType1Default)->Unit(benchmark::kMillisecond);

void BM_CompileType1MinFill(benchmark::State& state) {
  CompileBench(state, Type1Lineage(), gmc::OrderHeuristic::kMinFill);
}
BENCHMARK(BM_CompileType1MinFill)->Unit(benchmark::kMillisecond);

// Compile once + K-vector dyadic sweep: the end-to-end evaluate-many
// workload. The smaller ordered circuit pays off on every pass, so the
// gap over the legacy order grows with K.
void SweepBench(benchmark::State& state, gmc::OrderHeuristic order) {
  const int k = static_cast<int>(state.range(0));
  gmc::Lineage lineage = Type2Lineage(4);
  gmc::WeightMatrix weights = SweepWeights(lineage, k);
  size_t edges = 0;
  for (auto _ : state) {
    gmc::Compiler compiler;
    compiler.set_order(order);
    gmc::NnfCircuit circuit = compiler.Compile(lineage);
    edges = circuit.ComputeStats().edges;
    benchmark::DoNotOptimize(circuit.EvaluateBatchDyadic(weights));
  }
  state.counters["sweep_points"] = k;
  state.counters["circuit_edges"] = static_cast<double>(edges);
}

void BM_Type2SweepDefault(benchmark::State& state) {
  SweepBench(state, gmc::OrderHeuristic::kDefault);
}
BENCHMARK(BM_Type2SweepDefault)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_Type2SweepMinFill(benchmark::State& state) {
  SweepBench(state, gmc::OrderHeuristic::kMinFill);
}
BENCHMARK(BM_Type2SweepMinFill)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_Type2SweepBalanced(benchmark::State& state) {
  SweepBench(state, gmc::OrderHeuristic::kBalanced);
}
BENCHMARK(BM_Type2SweepBalanced)->Arg(64)->Unit(benchmark::kMillisecond);

// Correctness + acceptance guard, CI-enforced: every heuristic agrees
// bit-for-bit on both gadget families, and min-fill never emits a larger
// Type-II circuit than the legacy order.
void BM_VtreeOrderCrossCheck(benchmark::State& state) {
  std::vector<gmc::Lineage> corpus = {Type1Lineage(), Type2Lineage(3),
                                      Type2Lineage(4)};
  for (auto _ : state) {
    for (size_t i = 0; i < corpus.size(); ++i) {
      const gmc::Lineage& lineage = corpus[i];
      gmc::WeightMatrix weights = SweepWeights(lineage, 8);
      std::vector<gmc::Rational> reference;
      size_t default_edges = 0;
      for (gmc::OrderHeuristic order :
           {gmc::OrderHeuristic::kDefault, gmc::OrderHeuristic::kMinFill,
            gmc::OrderHeuristic::kBalanced}) {
        gmc::Compiler compiler;
        compiler.set_order(order);
        gmc::NnfCircuit circuit = compiler.Compile(lineage);
        const size_t edges = circuit.ComputeStats().edges;
        if (order == gmc::OrderHeuristic::kDefault) default_edges = edges;
        if (order == gmc::OrderHeuristic::kMinFill && i > 0 &&
            edges > default_edges) {
          state.SkipWithError(
              "min-fill produced a LARGER Type-II circuit than the legacy "
              "order");
          return;
        }
        std::vector<gmc::Rational> values = circuit.EvaluateBatch(weights);
        if (reference.empty()) {
          reference = std::move(values);
        } else if (values != reference) {
          state.SkipWithError(
              "order heuristics disagree on gadget probabilities");
          return;
        }
      }
    }
  }
}
BENCHMARK(BM_VtreeOrderCrossCheck)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
