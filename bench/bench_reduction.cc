// E1: the Cook reduction #P2CNF ≤P FOMC(Q) of Theorem 3.1, end to end.
//
// The reduction's own work (building the z-series, the C(m+2,2)-sized big
// matrix, and the exact solve) is polynomial in m; the oracle is the
// expensive part, exactly as the theory says. Series: reduction time vs m
// with the Theorem-3.4 factorized oracle, and with the honest WMC oracle on
// the real gadget TIDs for small instances.

#include <benchmark/benchmark.h>

#include "hardness/p2cnf.h"
#include "hardness/reduction_type1.h"
#include "logic/parser.h"

namespace {

gmc::Query H1() {
  return gmc::ParseQueryOrDie(
      "Ax Ay (R(x) | S(x,y)) & Ax Ay (S(x,y) | T(y))");
}

void BM_Type1ReductionFactorized(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  gmc::Type1Reduction reduction(H1());
  gmc::P2Cnf phi = gmc::P2Cnf::Random(5, m, /*seed=*/99 + m);
  gmc::BigInt expected = gmc::CountSatisfying(phi);
  int calls = 0;
  for (auto _ : state) {
    gmc::Type1ReductionResult result = reduction.Run(phi);
    calls = result.oracle_calls;
    if (result.model_count != expected) state.SkipWithError("wrong count");
  }
  state.counters["oracle_calls"] = calls;
  state.counters["unknowns"] = (m + 1) * (m + 2) / 2;
}
BENCHMARK(BM_Type1ReductionFactorized)->DenseRange(1, 5)
    ->Unit(benchmark::kMillisecond);

void BM_Type1ReductionWmcOracle(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  gmc::Type1Reduction reduction(H1());
  gmc::P2Cnf phi = gmc::P2Cnf::Random(3, m, /*seed=*/7 + m);
  gmc::BigInt expected = gmc::CountSatisfying(phi);
  for (auto _ : state) {
    gmc::WmcOracle oracle;
    gmc::Type1ReductionResult result = reduction.Run(phi, &oracle);
    if (result.model_count != expected) state.SkipWithError("wrong count");
  }
}
BENCHMARK(BM_Type1ReductionWmcOracle)->DenseRange(1, 2)
    ->Unit(benchmark::kMillisecond);

void BM_ReductionChainQuery(benchmark::State& state) {
  // Same pipeline for the length-2 final query (two S symbols): the gadget
  // blocks are twice as wide.
  const int m = static_cast<int>(state.range(0));
  gmc::Query chain = gmc::ParseQueryOrDie(
      "Ax Ay (R(x) | S1(x,y)) & Ax Ay (S1(x,y) | S2(x,y)) & "
      "Ax Ay (S2(x,y) | T(y))");
  gmc::Type1Reduction reduction(chain);
  gmc::P2Cnf phi = gmc::P2Cnf::Random(5, m, /*seed=*/31 + m);
  gmc::BigInt expected = gmc::CountSatisfying(phi);
  for (auto _ : state) {
    gmc::Type1ReductionResult result = reduction.Run(phi);
    if (result.model_count != expected) state.SkipWithError("wrong count");
  }
}
BENCHMARK(BM_ReductionChainQuery)->DenseRange(1, 4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
