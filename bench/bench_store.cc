// E18: circuit persistence — what a warm start is worth.
//
// The store turns a restart from "recompile everything" into "read a
// file": BM_ColdCompile is the price the first process pays for the
// Type-II Möbius gadget, BM_WarmLoad is the price every later process
// pays for the same circuit (read + checksum + structural validation +
// fingerprint + rebuild), and BM_MmapOpen skips even the rebuild —
// validate in place and evaluate straight off the page cache, the
// N-replicas-one-copy serving shape. BM_StoreCrossCheck is the CI-
// enforced acceptance bar: the warm paths must answer bit-identically
// to the compiled circuit AND LoadCircuit must beat the cold compile by
// ≥10× on the headline domain-4 gadget, or the run fails loudly.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include <unistd.h>

#include "compile/compiler.h"
#include "compile/nnf.h"
#include "compile/vtree.h"
#include "lineage/grounder.h"
#include "logic/parser.h"
#include "prob/tid.h"
#include "store/circuit_io.h"
#include "util/rational.h"

namespace {

gmc::Query ExampleC9() {
  return gmc::ParseQueryOrDie(
      "Ax (Ay (S1(x,y)) | Ay (S2(x,y))) & Ax Ay (S1(x,y) | S3(x,y)) & "
      "Ay (Ax (S3(x,y)) | Ax (S4(x,y)))");
}

// The Type-II Möbius gadget lineage at domain d×d — the circuits worth
// persisting are exactly the ones that are expensive to compile.
gmc::Lineage Type2Lineage(int domain) {
  gmc::Query q = ExampleC9();
  gmc::Tid tid(q.vocab_ptr(), domain, domain, gmc::Rational::Half());
  return gmc::Ground(q, tid);
}

gmc::NnfCircuit CompileDefault(const gmc::Lineage& lineage) {
  gmc::Compiler compiler;
  compiler.set_order(gmc::OrderHeuristic::kDefault);
  return compiler.Compile(lineage);
}

// K all-dyadic weight vectors (the interpolation-grid shape).
gmc::WeightMatrix SweepWeights(const gmc::Lineage& lineage, int k) {
  gmc::WeightMatrix weights(k, lineage.cnf.num_vars);
  for (int column = 0; column < k; ++column) {
    const gmc::Rational value(column + 1, 128);
    for (int v = 0; v < lineage.cnf.num_vars; ++v) {
      weights.Set(column, v, value);
    }
  }
  return weights;
}

// One saved gadget circuit on disk, shared by the warm benchmarks; the
// file lives in /tmp and is removed when the process exits.
class SavedCircuit {
 public:
  explicit SavedCircuit(int domain)
      : lineage_(Type2Lineage(domain)),
        path_("/tmp/gmc_bench_store_" + std::to_string(::getpid()) + "_" +
              std::to_string(domain) + ".gmcc") {
    gmc::NnfCircuit circuit = CompileDefault(lineage_);
    std::string error;
    ok_ = gmc::store::SaveCircuit(circuit, lineage_.cnf,
                                  gmc::OrderHeuristic::kDefault, path_,
                                  &error);
  }
  ~SavedCircuit() { ::unlink(path_.c_str()); }

  bool ok() const { return ok_; }
  const gmc::Lineage& lineage() const { return lineage_; }
  const std::string& path() const { return path_; }

 private:
  gmc::Lineage lineage_;
  std::string path_;
  bool ok_ = false;
};

SavedCircuit& Saved(int domain) {
  static SavedCircuit* d3 = new SavedCircuit(3);
  static SavedCircuit* d4 = new SavedCircuit(4);
  return domain == 3 ? *d3 : *d4;
}

// The cold path: what every process without a store pays per structure.
void BM_ColdCompile(benchmark::State& state) {
  const gmc::Lineage lineage = Type2Lineage(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    gmc::NnfCircuit circuit = CompileDefault(lineage);
    benchmark::DoNotOptimize(circuit.root());
  }
}
BENCHMARK(BM_ColdCompile)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

// The warm path: full read + validation + owning rebuild.
void BM_WarmLoad(benchmark::State& state) {
  SavedCircuit& saved = Saved(static_cast<int>(state.range(0)));
  if (!saved.ok()) {
    state.SkipWithError("failed to save the gadget circuit");
    return;
  }
  for (auto _ : state) {
    gmc::store::LoadedCircuit loaded;
    std::string error;
    if (!gmc::store::LoadCircuit(saved.path(), &loaded, &error)) {
      state.SkipWithError(("LoadCircuit: " + error).c_str());
      return;
    }
    benchmark::DoNotOptimize(loaded.circuit.root());
  }
}
BENCHMARK(BM_WarmLoad)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

// The zero-copy path: validate the mapping, no rebuild at all. Open cost
// only — the evaluate benches below measure the steady state.
void BM_MmapOpen(benchmark::State& state) {
  SavedCircuit& saved = Saved(static_cast<int>(state.range(0)));
  if (!saved.ok()) {
    state.SkipWithError("failed to save the gadget circuit");
    return;
  }
  for (auto _ : state) {
    gmc::store::MappedCircuitView mapped;
    std::string error;
    if (!mapped.Open(saved.path(), &error)) {
      state.SkipWithError(("Open: " + error).c_str());
      return;
    }
    benchmark::DoNotOptimize(mapped.view().root);
  }
}
BENCHMARK(BM_MmapOpen)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

// Steady-state serving off the mapping: open once, K-vector dyadic sweep
// per iteration — identical inner kernel to the owning circuit, so this
// pins "mmap costs nothing per evaluation".
void BM_MmapSweep(benchmark::State& state) {
  SavedCircuit& saved = Saved(4);
  if (!saved.ok()) {
    state.SkipWithError("failed to save the gadget circuit");
    return;
  }
  gmc::store::MappedCircuitView mapped;
  std::string error;
  if (!mapped.Open(saved.path(), &error)) {
    state.SkipWithError(("Open: " + error).c_str());
    return;
  }
  const int k = static_cast<int>(state.range(0));
  const gmc::WeightMatrix weights = SweepWeights(saved.lineage(), k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapped.EvaluateBatchDyadic(weights));
  }
  state.counters["sweep_points"] = k;
}
BENCHMARK(BM_MmapSweep)->Arg(64)->Unit(benchmark::kMillisecond);

// Save throughput (encode + temp file + fsync + rename), bytes/s.
void BM_SaveCircuit(benchmark::State& state) {
  const gmc::Lineage lineage = Type2Lineage(static_cast<int>(state.range(0)));
  const gmc::NnfCircuit circuit = CompileDefault(lineage);
  const std::string path = "/tmp/gmc_bench_store_save_" +
                           std::to_string(::getpid()) + ".gmcc";
  size_t bytes = 0;
  for (auto _ : state) {
    std::string error;
    if (!gmc::store::SaveCircuit(circuit, lineage.cnf,
                                 gmc::OrderHeuristic::kDefault, path,
                                 &error)) {
      state.SkipWithError(("SaveCircuit: " + error).c_str());
      return;
    }
    if (bytes == 0) {
      bytes = gmc::store::EncodeCircuit(circuit, lineage.cnf,
                                        gmc::OrderHeuristic::kDefault)
                  .size();
    }
  }
  ::unlink(path.c_str());
  state.SetBytesProcessed(static_cast<int64_t>(bytes) * state.iterations());
}
BENCHMARK(BM_SaveCircuit)->Arg(4)->Unit(benchmark::kMillisecond);

// Acceptance bar, CI-enforced on every run: warm answers are bit-
// identical to the compiled circuit through BOTH read paths, and the
// warm load beats the cold compile by ≥10× on the domain-4 gadget.
void BM_StoreCrossCheck(benchmark::State& state) {
  const gmc::Lineage lineage = Type2Lineage(4);
  const gmc::NnfCircuit circuit = CompileDefault(lineage);
  const std::string path = "/tmp/gmc_bench_store_check_" +
                           std::to_string(::getpid()) + ".gmcc";
  std::string error;
  if (!gmc::store::SaveCircuit(circuit, lineage.cnf,
                               gmc::OrderHeuristic::kDefault, path, &error)) {
    state.SkipWithError(("SaveCircuit: " + error).c_str());
    return;
  }
  const gmc::WeightMatrix weights = SweepWeights(lineage, 8);
  const std::vector<gmc::Rational> want = circuit.EvaluateBatchDyadic(weights);

  for (auto _ : state) {
    // Bit-identity through the owning load and the mapping.
    gmc::store::LoadedCircuit loaded;
    gmc::store::MappedCircuitView mapped;
    if (!gmc::store::LoadCircuit(path, &loaded, &error) ||
        !mapped.Open(path, &error)) {
      state.SkipWithError(("warm read failed: " + error).c_str());
      return;
    }
    if (loaded.circuit.EvaluateBatchDyadic(weights) != want ||
        mapped.EvaluateBatchDyadic(weights) != want ||
        loaded.circuit.Fingerprint() != circuit.Fingerprint()) {
      state.SkipWithError("store round-trip is not bit-identical");
      return;
    }

    // The ≥10× speedup floor, measured inline: time N warm loads against
    // one cold compile (N generous so timer noise cannot flake CI).
    const auto t0 = std::chrono::steady_clock::now();
    gmc::NnfCircuit cold = CompileDefault(lineage);
    const auto t1 = std::chrono::steady_clock::now();
    constexpr int kWarmLoads = 10;
    for (int i = 0; i < kWarmLoads; ++i) {
      gmc::store::LoadedCircuit again;
      if (!gmc::store::LoadCircuit(path, &again, &error)) {
        state.SkipWithError(("LoadCircuit: " + error).c_str());
        return;
      }
      benchmark::DoNotOptimize(again.circuit.root());
    }
    const auto t2 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(cold.root());
    const double cold_ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count();
    const double warm_ns =
        std::chrono::duration<double, std::nano>(t2 - t1).count() /
        kWarmLoads;
    state.counters["cold_vs_warm"] = cold_ns / warm_ns;
    if (cold_ns < 10.0 * warm_ns) {
      state.SkipWithError(
          "warm LoadCircuit is not >=10x faster than the cold compile");
      return;
    }
  }
  ::unlink(path.c_str());
}
BENCHMARK(BM_StoreCrossCheck)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
