// The robustness layer's overhead contract: deadlines and fault points are
// always compiled in, so their dormant cost must be unmeasurable.
//
// Two always-on costs are pinned here:
//   - cancel polling: every batch arena slice calls CancelToken::Poll()
//     every 64 nodes. With an armed-but-distant deadline that is one
//     relaxed load plus a steady-clock read per 64 nodes; with no token it
//     is a null-pointer test. Design target: an armed token that never
//     fires costs < 2% over the no-token pass (BM_BatchEvalNoToken vs
//     BM_BatchEvalArmedToken). BM_RobustCrossCheck enforces a generous
//     hard cap (25%, min-of-7 runs) so CI noise cannot flake the job while
//     a real regression — an accidental clock read per node, a poll in the
//     inner BigInt loop — still fails loudly.
//   - dormant fault points: fault::ShouldFail with no spec installed is
//     one relaxed atomic load and a predictable branch; with a spec armed
//     on a DIFFERENT point it additionally pays the crossing counter.
//     Both are measured per call (BM_FaultPointDormant / Armed) so the
//     baselines pin them at nanoseconds, not microseconds.
//   - the brownout governor: every admission pays one RecordQueueDepth,
//     every drain one RecordQueueWait, every shed/degrade decision one
//     level()+retry_after_ms() read (BM_Governor*). All lock-free; the
//     baselines pin them at nanoseconds alongside the fault points.
//
// BM_RobustCrossCheck also pins the cancellation semantics the overhead
// numbers depend on: a pass completed under an unfired token is
// bit-identical to the no-token pass, and a pre-fired token still returns
// a full-size (discardable) result without crashing.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <vector>

#include "compile/compiler.h"
#include "compile/nnf.h"
#include "hardness/p2cnf.h"
#include "hardness/reduction_type1.h"
#include "lineage/grounder.h"
#include "logic/parser.h"
#include "serve/overload.h"
#include "util/cancel.h"
#include "util/fault.h"
#include "util/rational.h"

namespace {

gmc::Query H1() {
  return gmc::ParseQueryOrDie(
      "Ax Ay (R(x) | S(x,y)) & Ax Ay (S(x,y) | T(y))");
}

gmc::Lineage SweepLineage() {
  gmc::Type1Reduction reduction(H1());
  gmc::P2Cnf phi = gmc::P2Cnf::Random(5, 5, /*seed=*/42);
  gmc::Tid tid = reduction.BuildTid(phi, 2, 2);
  return gmc::Ground(reduction.query(), tid);
}

gmc::NnfCircuit SweepCircuit(const gmc::Lineage& lineage) {
  gmc::Compiler compiler;
  compiler.set_minimize(true);
  return compiler.Compile(lineage);
}

gmc::WeightMatrix SweepWeights(const gmc::Lineage& lineage, int num_k) {
  std::vector<std::vector<gmc::Rational>> rows;
  for (int k = 1; k <= num_k; ++k) {
    rows.emplace_back(lineage.probabilities.size(),
                      gmc::Rational(k, num_k + 1));
  }
  return gmc::WeightMatrix::FromRows(rows);
}

// A deadline far enough out that the token never fires inside a bench
// iteration, so the pass pays the full armed polling cost end to end.
constexpr uint64_t kDistantDeadlineMs = 3600ull * 1000ull;

// Single-threaded passes throughout: the pin is per-node polling cost, and
// one slice per pass keeps the measurement free of pool-scheduling noise.

void BM_BatchEvalNoToken(benchmark::State& state) {
  const int num_k = static_cast<int>(state.range(0));
  gmc::Lineage lineage = SweepLineage();
  gmc::NnfCircuit circuit = SweepCircuit(lineage);
  gmc::WeightMatrix weights = SweepWeights(lineage, num_k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        circuit.EvaluateBatch(weights, /*num_threads=*/1));
  }
  state.counters["weight_vectors"] = num_k;
  state.counters["circuit_nodes"] = static_cast<double>(circuit.num_nodes());
}
BENCHMARK(BM_BatchEvalNoToken)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_BatchEvalArmedToken(benchmark::State& state) {
  const int num_k = static_cast<int>(state.range(0));
  gmc::Lineage lineage = SweepLineage();
  gmc::NnfCircuit circuit = SweepCircuit(lineage);
  gmc::WeightMatrix weights = SweepWeights(lineage, num_k);
  for (auto _ : state) {
    // A fresh token per pass: real requests arm one token per deadline,
    // and constructing it (one clock read) is part of the cost.
    gmc::CancelToken token(kDistantDeadlineMs);
    benchmark::DoNotOptimize(
        circuit.EvaluateBatch(weights, /*num_threads=*/1, &token));
  }
  state.counters["weight_vectors"] = num_k;
  state.counters["circuit_nodes"] = static_cast<double>(circuit.num_nodes());
}
BENCHMARK(BM_BatchEvalArmedToken)->Arg(64)->Unit(benchmark::kMillisecond);

// One dormant crossing: no spec installed anywhere, so this is the exact
// cost every store read/write and cache insert pays in production.
void BM_FaultPointDormant(benchmark::State& state) {
  gmc::fault::Reset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gmc::fault::ShouldFail(gmc::fault::Point::kStoreWrite));
  }
  state.counters["injected"] = static_cast<double>(
      gmc::fault::InjectedCount(gmc::fault::Point::kStoreWrite));
  gmc::fault::Reset();
}
BENCHMARK(BM_FaultPointDormant);

// A spec armed on a DIFFERENT point: the crossing pays the enabled path
// (counter bump + hash + compare against a zero threshold) but never
// fires — the worst case for a point that is merely near active faults.
void BM_FaultPointArmed(benchmark::State& state) {
  gmc::fault::Configure("cache.insert=0.5,seed=1");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gmc::fault::ShouldFail(gmc::fault::Point::kStoreWrite));
  }
  state.counters["injected"] = static_cast<double>(
      gmc::fault::InjectedCount(gmc::fault::Point::kStoreWrite));
  gmc::fault::Reset();
}
BENCHMARK(BM_FaultPointArmed);

// The brownout governor's hot-admission cost: every admitted request pays
// one RecordQueueDepth (an atomic load, a handful of float ops, and a
// level CAS that almost never moves) inside the queue critical section.
// Pinned here next to the fault-point budget: both must stay nanoseconds,
// or admission — the path every request crosses — inherits the cost.
void BM_GovernorRecordDepth(benchmark::State& state) {
  gmc::serve::OverloadOptions options;
  options.capacity = 64;
  gmc::serve::LoadGovernor governor(options);
  uint64_t depth = 0;
  for (auto _ : state) {
    // Sweep depths below yellow_exit so the level never transitions —
    // the steady-state (GREEN, no CAS retry) cost the admission path
    // pays on every request.
    governor.RecordQueueDepth(depth);
    depth = (depth + 1) & 7;
  }
  state.counters["transitions"] =
      static_cast<double>(governor.transitions());
}
BENCHMARK(BM_GovernorRecordDepth);

// The per-request drain-side feed: one EWMA fold (CAS loop, uncontended
// here) plus the same recompute.
void BM_GovernorRecordWait(benchmark::State& state) {
  gmc::serve::OverloadOptions options;
  options.wait_budget_ms = 250;
  gmc::serve::LoadGovernor governor(options);
  uint64_t wait_ms = 0;
  for (auto _ : state) {
    governor.RecordQueueWait(wait_ms);
    wait_ms = (wait_ms + 1) & 15;  // well under the budget: stays GREEN
  }
  state.counters["transitions"] =
      static_cast<double>(governor.transitions());
}
BENCHMARK(BM_GovernorRecordWait);

// The read everyone else pays: level() + retry_after_ms() on a shed or
// degrade decision — two relaxed loads and a shift.
void BM_GovernorDecision(benchmark::State& state) {
  gmc::serve::LoadGovernor governor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(governor.level());
    benchmark::DoNotOptimize(governor.retry_after_ms());
  }
}
BENCHMARK(BM_GovernorDecision);

// Correctness + overhead guard, registered as a benchmark so a violation
// fails the bench run loudly:
//   - armed-but-unfired pass is bit-identical to the no-token pass;
//   - a pre-fired token returns a full-size result (discardable, but
//     well-formed) and reports cancelled;
//   - min-of-7 armed wall time stays within 25% of min-of-7 baseline
//     (design target < 2%; the cap is generous because CI runners are
//     noisy, while a poll misplaced into the per-node inner loop costs
//     well over 25% and still trips it).
void BM_RobustCrossCheck(benchmark::State& state) {
  const int num_k = 64;
  gmc::Lineage lineage = SweepLineage();
  gmc::NnfCircuit circuit = SweepCircuit(lineage);
  gmc::WeightMatrix weights = SweepWeights(lineage, num_k);
  using Clock = std::chrono::steady_clock;
  double ratio = 0.0;
  for (auto _ : state) {
    const std::vector<gmc::Rational> baseline =
        circuit.EvaluateBatch(weights, /*num_threads=*/1);
    gmc::CancelToken distant(kDistantDeadlineMs);
    const std::vector<gmc::Rational> armed =
        circuit.EvaluateBatch(weights, /*num_threads=*/1, &distant);
    if (distant.cancelled() || armed != baseline) {
      state.SkipWithError("armed-but-unfired pass is not bit-identical");
      return;
    }
    gmc::CancelToken fired;
    fired.Cancel();
    const std::vector<gmc::Rational> discarded =
        circuit.EvaluateBatch(weights, /*num_threads=*/1, &fired);
    if (!fired.cancelled() || discarded.size() != baseline.size()) {
      state.SkipWithError("cancelled pass lost its output shape");
      return;
    }

    double best_base = 1e300;
    double best_armed = 1e300;
    for (int rep = 0; rep < 7; ++rep) {
      auto t0 = Clock::now();
      benchmark::DoNotOptimize(
          circuit.EvaluateBatch(weights, /*num_threads=*/1));
      auto t1 = Clock::now();
      gmc::CancelToken token(kDistantDeadlineMs);
      benchmark::DoNotOptimize(
          circuit.EvaluateBatch(weights, /*num_threads=*/1, &token));
      auto t2 = Clock::now();
      best_base =
          std::min(best_base, std::chrono::duration<double>(t1 - t0).count());
      best_armed =
          std::min(best_armed, std::chrono::duration<double>(t2 - t1).count());
    }
    ratio = best_armed / best_base;
    if (ratio > 1.25) {
      state.SkipWithError("armed cancel polling costs >25% over baseline");
      return;
    }
  }
  state.counters["armed_over_baseline"] = ratio;
  state.counters["weight_vectors"] = num_k;
}
BENCHMARK(BM_RobustCrossCheck)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
