// E18: the parallel evaluation engine and the fixed-width dyadic kernels.
//
// Two questions, both on the Type-I gadget sweeps the hardness reductions
// actually run (see bench_batch_eval.cc for the batching-vs-looping story
// this builds on):
//
//   1. Fixed width: what do the uint64 / UInt128 mantissa kernels buy over
//      the BigInt Dyadic arena on the SAME weights? The width classes are
//      picked by the sweep's exponent grid — a 31-variable gadget on the
//      1/4-grid folds to a 62-bit bound (uint64 kernel), the 75-variable
//      gadget on the reduction's own {1/2, 1}-style grid folds to 75 bits
//      (UInt128 kernel). Acceptance bar: the fixed-width path is ≥4× the
//      BigInt dyadic path single-threaded at K = 64.
//
//   2. Thread scaling: the column-partitioned batch pass at 1/2/4/8
//      threads, for both the Rational arena (heavy per column — the
//      near-linear-scaling candidate) and the uint64 kernel (light per
//      column — the case where slicing overhead must stay negligible).
//      Wall-clock scaling is hardware-dependent (a 2-core CI runner tops
//      out at 2×), so CI gates these configs only through the
//      median-normalized regression check; the correctness claim —
//      bit-identical results at every thread count — is enforced here by
//      BM_ParallelCrossCheck, which fails the run loudly on any mismatch.
//
// All configurations run the public EvaluateBatch* entry points, so they
// measure exactly what CircuitCache::ProbabilityBatch traffic pays.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "compile/compiler.h"
#include "compile/nnf.h"
#include "hardness/p2cnf.h"
#include "hardness/reduction_type1.h"
#include "lineage/grounder.h"
#include "logic/parser.h"
#include "util/parallel.h"
#include "util/rational.h"

namespace {

gmc::Query H1() {
  return gmc::ParseQueryOrDie(
      "Ax Ay (R(x) | S(x,y)) & Ax Ay (S(x,y) | T(y))");
}

struct Gadget {
  gmc::Lineage lineage;
  gmc::NnfCircuit circuit;
};

// Type-I reduction gadget for an (n, m) random P2CNF, compiled once.
Gadget MakeGadget(int n, int m) {
  gmc::Type1Reduction reduction(H1());
  gmc::P2Cnf phi = gmc::P2Cnf::Random(n, m, /*seed=*/42);
  gmc::Tid tid = reduction.BuildTid(phi, 2, 2);
  Gadget out;
  out.lineage = gmc::Ground(reduction.query(), tid);
  gmc::Compiler compiler;
  out.circuit = compiler.Compile(out.lineage);
  return out;
}

// K weight vectors on the 2^-e dyadic grid (entries vary per variable so
// columns are not all identical work).
gmc::WeightMatrix GridWeights(const Gadget& gadget, int num_k, int exponent) {
  std::vector<std::vector<gmc::Rational>> rows;
  for (int k = 1; k <= num_k; ++k) {
    std::vector<gmc::Rational> row;
    for (size_t v = 0; v < gadget.lineage.probabilities.size(); ++v) {
      row.emplace_back(1 + ((k + v) % (int64_t{1} << exponent)),
                       int64_t{1} << exponent);
    }
    rows.push_back(std::move(row));
  }
  return gmc::WeightMatrix::FromRows(rows);
}

// The uint64-class sweep: 31-variable gadget, 1/4-grid (fold bound 62).
Gadget& SmallGadget() {
  static Gadget gadget = MakeGadget(3, 2);
  return gadget;
}
// The UInt128-class sweep: 75-variable gadget, 1/2-grid (fold bound 75).
Gadget& LargeGadget() {
  static Gadget gadget = MakeGadget(5, 5);
  return gadget;
}

// ------------------------------------------------ fixed width vs BigInt

void BM_Fixed64Sweep(benchmark::State& state) {
  const int num_k = static_cast<int>(state.range(0));
  Gadget& gadget = SmallGadget();
  gmc::WeightMatrix weights = GridWeights(gadget, num_k, /*exponent=*/2);
  gmc::NnfCircuit::SetFixedWidthDefaultEnabled(true);
  gmc::DyadicBatchStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gadget.circuit.EvaluateBatchDyadic(weights, /*num_threads=*/1,
                                           &stats));
  }
  state.counters["weight_vectors"] = num_k;
  state.counters["fixed64_share"] =
      stats.fixed64_vectors /
      static_cast<double>(stats.fixed64_vectors + stats.fixed128_vectors +
                          stats.bigint_vectors);
}
BENCHMARK(BM_Fixed64Sweep)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_BigIntDyadicSweepSmall(benchmark::State& state) {
  // The comparator: identical weights and circuit, BigInt Dyadic arena.
  const int num_k = static_cast<int>(state.range(0));
  Gadget& gadget = SmallGadget();
  gmc::WeightMatrix weights = GridWeights(gadget, num_k, /*exponent=*/2);
  gmc::NnfCircuit::SetFixedWidthDefaultEnabled(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gadget.circuit.EvaluateBatchDyadic(weights, /*num_threads=*/1));
  }
  gmc::NnfCircuit::SetFixedWidthDefaultEnabled(true);
  state.counters["weight_vectors"] = num_k;
}
BENCHMARK(BM_BigIntDyadicSweepSmall)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_Fixed128Sweep(benchmark::State& state) {
  const int num_k = static_cast<int>(state.range(0));
  Gadget& gadget = LargeGadget();
  gmc::WeightMatrix weights = GridWeights(gadget, num_k, /*exponent=*/1);
  gmc::NnfCircuit::SetFixedWidthDefaultEnabled(true);
  gmc::DyadicBatchStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gadget.circuit.EvaluateBatchDyadic(weights, /*num_threads=*/1,
                                           &stats));
  }
  state.counters["weight_vectors"] = num_k;
  state.counters["fixed128_share"] =
      stats.fixed128_vectors /
      static_cast<double>(stats.fixed64_vectors + stats.fixed128_vectors +
                          stats.bigint_vectors);
}
BENCHMARK(BM_Fixed128Sweep)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_BigIntDyadicSweepLarge(benchmark::State& state) {
  const int num_k = static_cast<int>(state.range(0));
  Gadget& gadget = LargeGadget();
  gmc::WeightMatrix weights = GridWeights(gadget, num_k, /*exponent=*/1);
  gmc::NnfCircuit::SetFixedWidthDefaultEnabled(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gadget.circuit.EvaluateBatchDyadic(weights, /*num_threads=*/1));
  }
  gmc::NnfCircuit::SetFixedWidthDefaultEnabled(true);
  state.counters["weight_vectors"] = num_k;
}
BENCHMARK(BM_BigIntDyadicSweepLarge)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------- thread scaling

void BM_RationalSweepThreads(benchmark::State& state) {
  // The Rational arena at K = 256: heaviest per-column work, the
  // near-linear scaling candidate. Arg = thread bound.
  const int num_threads = static_cast<int>(state.range(0));
  Gadget& gadget = LargeGadget();
  gmc::WeightMatrix weights = GridWeights(gadget, 256, /*exponent=*/7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gadget.circuit.EvaluateBatch(weights,
                                                          num_threads));
  }
  state.counters["threads"] = num_threads;
  state.counters["weight_vectors"] = 256;
}
BENCHMARK(BM_RationalSweepThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_Fixed128SweepThreads(benchmark::State& state) {
  // The UInt128 kernel at K = 256: light per-column work — measures that
  // slicing overhead stays small even when columns are cheap.
  const int num_threads = static_cast<int>(state.range(0));
  Gadget& gadget = LargeGadget();
  gmc::WeightMatrix weights = GridWeights(gadget, 256, /*exponent=*/1);
  gmc::NnfCircuit::SetFixedWidthDefaultEnabled(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gadget.circuit.EvaluateBatchDyadic(weights, num_threads));
  }
  state.counters["threads"] = num_threads;
  state.counters["weight_vectors"] = 256;
}
BENCHMARK(BM_Fixed128SweepThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// -------------------------------------------------------- cross-check

// The loud exact cross-check: every path (Rational, BigInt dyadic,
// fixed-width dyadic) at every thread count must agree bit-for-bit —
// Rational equality is structural, so == means identical reduced
// fractions. Registered as a benchmark so a mismatch fails the bench run.
void BM_ParallelCrossCheck(benchmark::State& state) {
  Gadget& small = SmallGadget();
  Gadget& large = LargeGadget();
  for (auto _ : state) {
    for (Gadget* gadget : {&small, &large}) {
      for (int exponent : {1, 2, 7}) {
        gmc::WeightMatrix weights = GridWeights(*gadget, 16, exponent);
        const std::vector<gmc::Rational> reference =
            gadget->circuit.EvaluateBatch(weights, 1);
        for (int threads : {1, 2, 8}) {
          if (gadget->circuit.EvaluateBatch(weights, threads) != reference) {
            state.SkipWithError("Rational batch varies with thread count");
            return;
          }
          gmc::NnfCircuit::SetFixedWidthDefaultEnabled(true);
          if (gadget->circuit.EvaluateBatchDyadic(weights, threads) !=
              reference) {
            state.SkipWithError("fixed-width dyadic disagrees");
            return;
          }
          gmc::NnfCircuit::SetFixedWidthDefaultEnabled(false);
          if (gadget->circuit.EvaluateBatchDyadic(weights, threads) !=
              reference) {
            state.SkipWithError("BigInt dyadic disagrees");
            return;
          }
          gmc::NnfCircuit::SetFixedWidthDefaultEnabled(true);
        }
      }
    }
  }
  state.counters["configs_checked"] = 2 * 3 * 3 * 3;
}
BENCHMARK(BM_ParallelCrossCheck)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
