// E18: BigInt hot-loop microbenchmarks, gated in CI like the macro benches.
//
// The batched evaluators stream millions of BigInt adds and multiplies per
// sweep, so regressions here surface everywhere. Coverage is deliberately
// shaped like the hot paths: in-place compound operators (which must not
// allocate for small values — the small-value optimization keeps ≤2-limb
// magnitudes inline), the out-of-place operators they replaced, the shift
// primitives the dyadic layer aligns exponents with, and gcd (the cost the
// dyadic path exists to avoid, with its own fast paths for unit and 64-bit
// operands). Limb sizes span the SVO boundary (1, 2) and the heap regime
// (4, 16, 64).
//
// JSON output (--benchmark_format=json) feeds bench/check_regression.py
// against bench/baselines/BENCH_bigint.json.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <random>
#include <vector>

#include "util/bigint.h"

namespace {

gmc::BigInt RandomBigInt(std::mt19937_64& rng, int limbs) {
  gmc::BigInt out;
  for (int i = 0; i < limbs; ++i) {
    out = out.ShiftLeft(32) +
          gmc::BigInt(static_cast<int64_t>(rng() | 1) & 0xffffffff);
  }
  return out;
}

std::vector<gmc::BigInt> RandomOperands(int limbs, int count, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<gmc::BigInt> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i) out.push_back(RandomBigInt(rng, limbs));
  return out;
}

constexpr int kOperands = 64;

void BM_AddInPlace(benchmark::State& state) {
  const int limbs = static_cast<int>(state.range(0));
  const std::vector<gmc::BigInt> operands =
      RandomOperands(limbs, kOperands, 11);
  for (auto _ : state) {
    gmc::BigInt acc;
    for (const gmc::BigInt& x : operands) acc += x;
    benchmark::DoNotOptimize(acc);
  }
  state.counters["limbs"] = limbs;
}
BENCHMARK(BM_AddInPlace)->Arg(1)->Arg(2)->Arg(4)->Arg(16)->Arg(64);

void BM_AddOutOfPlace(benchmark::State& state) {
  const int limbs = static_cast<int>(state.range(0));
  const std::vector<gmc::BigInt> operands =
      RandomOperands(limbs, kOperands, 11);
  for (auto _ : state) {
    gmc::BigInt acc;
    for (const gmc::BigInt& x : operands) acc = acc + x;
    benchmark::DoNotOptimize(acc);
  }
  state.counters["limbs"] = limbs;
}
BENCHMARK(BM_AddOutOfPlace)->Arg(1)->Arg(2)->Arg(4)->Arg(16)->Arg(64);

void BM_SubInPlace(benchmark::State& state) {
  const int limbs = static_cast<int>(state.range(0));
  const std::vector<gmc::BigInt> operands =
      RandomOperands(limbs, kOperands, 13);
  // Start high so the running difference stays positive-ish and multi-limb.
  std::mt19937_64 start_rng(7);
  const gmc::BigInt start = RandomBigInt(start_rng, limbs + 2);
  for (auto _ : state) {
    gmc::BigInt acc = start;
    for (const gmc::BigInt& x : operands) acc -= x;
    benchmark::DoNotOptimize(acc);
  }
  state.counters["limbs"] = limbs;
}
BENCHMARK(BM_SubInPlace)->Arg(1)->Arg(2)->Arg(4)->Arg(16)->Arg(64);

void BM_MulInPlaceSmall(benchmark::State& state) {
  // Accumulator × 1-limb factors: the sweep-mantissa shape (MulSmallInPlace).
  const std::vector<gmc::BigInt> factors = RandomOperands(1, 16, 17);
  for (auto _ : state) {
    gmc::BigInt acc(1);
    for (const gmc::BigInt& x : factors) acc *= x;
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_MulInPlaceSmall);

void BM_MulPairs(benchmark::State& state) {
  const int limbs = static_cast<int>(state.range(0));
  const std::vector<gmc::BigInt> a = RandomOperands(limbs, 16, 19);
  const std::vector<gmc::BigInt> b = RandomOperands(limbs, 16, 23);
  for (auto _ : state) {
    for (size_t i = 0; i < a.size(); ++i) {
      benchmark::DoNotOptimize(a[i] * b[i]);
    }
  }
  state.counters["limbs"] = limbs;
}
BENCHMARK(BM_MulPairs)->Arg(1)->Arg(2)->Arg(4)->Arg(16)->Arg(64);

void BM_ShiftAlign(benchmark::State& state) {
  // The dyadic exponent-alignment primitive: shift-left in place, then back.
  const int limbs = static_cast<int>(state.range(0));
  const std::vector<gmc::BigInt> operands =
      RandomOperands(limbs, kOperands, 29);
  for (auto _ : state) {
    for (const gmc::BigInt& x : operands) {
      gmc::BigInt y = x;
      y.ShiftLeftInPlace(37);
      y.ShiftRightInPlace(37);
      benchmark::DoNotOptimize(y);
    }
  }
  state.counters["limbs"] = limbs;
}
BENCHMARK(BM_ShiftAlign)->Arg(1)->Arg(4)->Arg(16);

void BM_GcdSmall(benchmark::State& state) {
  // ≤2-limb operands: the register-width binary gcd fast path that carries
  // Rational's Reduce on sweep-sized values.
  const std::vector<gmc::BigInt> a = RandomOperands(2, kOperands, 31);
  const std::vector<gmc::BigInt> b = RandomOperands(2, kOperands, 37);
  for (auto _ : state) {
    for (size_t i = 0; i < a.size(); ++i) {
      benchmark::DoNotOptimize(gmc::BigInt::Gcd(a[i], b[i]));
    }
  }
}
BENCHMARK(BM_GcdSmall);

void BM_GcdLarge(benchmark::State& state) {
  // Multi-limb Stein: the cost the dyadic path avoids entirely.
  const int limbs = static_cast<int>(state.range(0));
  const std::vector<gmc::BigInt> a = RandomOperands(limbs, 8, 41);
  const std::vector<gmc::BigInt> b = RandomOperands(limbs, 8, 43);
  for (auto _ : state) {
    for (size_t i = 0; i < a.size(); ++i) {
      benchmark::DoNotOptimize(gmc::BigInt::Gcd(a[i], b[i]));
    }
  }
  state.counters["limbs"] = limbs;
}
BENCHMARK(BM_GcdLarge)->Arg(8)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
