// Anytime-tier benchmarks: the certified interval walk and the Karp–Luby
// sampler against the exact passes they bound, on the gadget corpus.
//
// Headline numbers: the directed-rounding interval pass runs at
// double-batch speed (orders of magnitude under the exact BigInt pass on
// non-dyadic weights) while still carrying a guarantee; the sampler's cost
// is linear in its (ε, δ)-derived sample count, independent of circuit
// size. BM_RouterOverBudget times the full degraded path through
// GfomcSession — probe, budget exhaustion, sampler — the latency a serving
// client sees when an instance blows its compile budget.
//
// BM_KarpLubyParallel scales the chunk-parallel sampler across worker
// counts on one plan (substreams are indexed by sample chunk, so every
// thread count draws the SAME samples — the bench refuses to report a
// number that isn't bit-identical to serial), and BM_SessionSampledBatch
// times the batched serving shape: K same-structure sampled requests
// through one EvaluateAnswers call, where the session's plan cache pays
// the disjunct-weight setup once (plan_hits/plan_misses ride as counters).
//
// BM_AnytimeCrossCheck fails the run loudly if any certified answer is
// wrong: an interval that does not enclose the exact probability (checked
// with exact rational arithmetic), interval results that differ across
// thread counts, a fixed-seed estimate outside its ε certificate — or not
// bit-identical between the serial and 8-worker sampler — or an
// over-budget instance that fails to come back certified. This is the
// acceptance bar of the anytime tier, enforced on every CI run.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "approx/karp_luby.h"
#include "compile/compiler.h"
#include "compile/gmc_options.h"
#include "compile/nnf.h"
#include "compile/nnf_walk.h"
#include "core/dichotomy.h"
#include "lineage/grounder.h"
#include "logic/parser.h"
#include "prob/tid.h"
#include "util/bigint.h"
#include "util/rational.h"

namespace {

gmc::Query H1() {
  return gmc::ParseQueryOrDie(
      "Ax Ay (R(x) | S(x,y)) & Ax Ay (S(x,y) | T(y))");
}

gmc::Query ExampleC9() {
  return gmc::ParseQueryOrDie(
      "Ax (Ay (S1(x,y)) | Ay (S2(x,y))) & Ax Ay (S1(x,y) | S3(x,y)) & "
      "Ay (Ax (S3(x,y)) | Ax (S4(x,y)))");
}

// Unsafe gadget lineages with a NON-dyadic default weight, so the exact
// batch pass pays full BigInt cost — the workload the interval tier is for.
gmc::Lineage H1Lineage(int domain) {
  gmc::Query q = H1();
  gmc::Tid tid(q.vocab_ptr(), domain, domain, gmc::Rational(3, 7));
  return gmc::Ground(q, tid);
}

gmc::Lineage Type2Lineage(int domain) {
  gmc::Query q = ExampleC9();
  gmc::Tid tid(q.vocab_ptr(), domain, domain, gmc::Rational(3, 7));
  return gmc::Ground(q, tid);
}

// K weight columns with varied non-dyadic entries (denominator 11), so
// neither the dyadic fast path nor weight-sharing shortcuts kick in.
gmc::WeightMatrix SweepWeights(const gmc::Lineage& lineage, int k) {
  gmc::WeightMatrix weights(k, lineage.cnf.num_vars);
  for (int column = 0; column < k; ++column) {
    for (int v = 0; v < lineage.cnf.num_vars; ++v) {
      weights.Set(column, v, gmc::Rational(1 + (column + v) % 9, 11));
    }
  }
  return weights;
}

// Exact dyadic bracket of a double in [0, 1] — the same construction the
// enclosure tests use, so the cross-check compares rationals, not floats.
gmc::Rational RationalOfDouble(double value) {
  if (value == 0.0) return gmc::Rational::Zero();
  int exponent = 0;
  const double fraction = std::frexp(value, &exponent);
  const double scaled = std::ldexp(fraction, 53);  // integral, < 2^53
  return gmc::Rational::Dyadic(gmc::BigInt(static_cast<int64_t>(scaled)),
                               static_cast<uint64_t>(53 - exponent));
}

bool Encloses(const gmc::ProbInterval& interval, const gmc::Rational& exact) {
  return !(exact < RationalOfDouble(interval.lo)) &&
         !(RationalOfDouble(interval.hi) < exact);
}

// --- The three batch passes over one compiled circuit -----------------

void BatchBench(benchmark::State& state, int mode) {
  const int k = static_cast<int>(state.range(0));
  gmc::Lineage lineage = Type2Lineage(3);
  gmc::Compiler compiler;
  gmc::NnfCircuit circuit = compiler.Compile(lineage);
  gmc::WeightMatrix weights = SweepWeights(lineage, k);
  double max_width = 0.0;
  for (auto _ : state) {
    switch (mode) {
      case 0:
        benchmark::DoNotOptimize(circuit.EvaluateBatch(weights));
        break;
      case 1: {
        std::vector<gmc::ProbInterval> intervals =
            circuit.EvaluateBatchInterval(weights);
        for (const gmc::ProbInterval& interval : intervals) {
          max_width = std::max(max_width, interval.hi - interval.lo);
        }
        benchmark::DoNotOptimize(intervals.data());
        break;
      }
      default:
        benchmark::DoNotOptimize(circuit.EvaluateBatchDouble(weights));
        break;
    }
  }
  state.counters["sweep_points"] = k;
  state.counters["circuit_nodes"] =
      static_cast<double>(circuit.num_nodes());
  if (mode == 1) state.counters["max_width"] = max_width;
}

void BM_ExactBatch(benchmark::State& state) { BatchBench(state, 0); }
BENCHMARK(BM_ExactBatch)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_IntervalBatch(benchmark::State& state) { BatchBench(state, 1); }
BENCHMARK(BM_IntervalBatch)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_DoubleBatch(benchmark::State& state) { BatchBench(state, 2); }
BENCHMARK(BM_DoubleBatch)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

// --- The sampler ------------------------------------------------------

// Cost scales with the (ε, δ)-derived sample target (ε halves → 4×), not
// with circuit size: the sampler never compiles anything.
void BM_KarpLuby(benchmark::State& state) {
  gmc::Lineage lineage = H1Lineage(static_cast<int>(state.range(0)));
  gmc::KarpLubyParams params;
  params.epsilon = 0.1;
  params.delta = 0.01;
  params.max_samples = 0;  // run to the (ε, δ) target
  params.seed = 0x1234abcdull;
  uint64_t samples = 0;
  for (auto _ : state) {
    gmc::KarpLubyResult result = gmc::KarpLubyEstimate(lineage, params);
    samples = result.samples;
    benchmark::DoNotOptimize(result.estimate);
  }
  state.counters["samples"] = static_cast<double>(samples);
  state.counters["lineage_clauses"] =
      static_cast<double>(lineage.cnf.clauses.size());
}
BENCHMARK(BM_KarpLuby)->Arg(3)->Arg(4)->Unit(benchmark::kMillisecond);

// The chunk-parallel sampler on the Type-II d=4 gadget, one shared plan,
// Arg = worker count. The wall-clock ratio Arg(1)/Arg(8) is the headline
// speedup; the bench aborts rather than time a wrong answer — every
// thread count must reproduce the serial run bit for bit (that is the
// whole determinism contract, so a scheduling bug can never hide behind a
// throughput win).
void BM_KarpLubyParallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  gmc::Lineage lineage = Type2Lineage(4);
  const std::shared_ptr<const gmc::KarpLubyPlan> plan =
      gmc::BuildKarpLubyPlan(lineage.cnf, lineage.probabilities);
  gmc::KarpLubyParams params;
  params.epsilon = 0.1;
  params.delta = 0.01;
  params.max_samples = 0;  // run to the (ε, δ) target
  params.seed = 0x1234abcdull;
  params.num_threads = 1;
  const gmc::KarpLubyResult serial = gmc::KarpLubyEstimate(*plan, params);
  params.num_threads = threads;
  uint64_t total_samples = 0;
  for (auto _ : state) {
    gmc::KarpLubyResult result = gmc::KarpLubyEstimate(*plan, params);
    if (result.estimate != serial.estimate ||
        result.successes != serial.successes ||
        result.samples != serial.samples) {
      state.SkipWithError(
          "parallel sampler diverged from the serial fixed-seed run");
      return;
    }
    total_samples += result.samples;
    benchmark::DoNotOptimize(result.estimate);
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["samples_per_sec"] = benchmark::Counter(
      static_cast<double>(total_samples), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_KarpLubyParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->UseRealTime()  // wall-clock rate: the speedup a caller observes
    ->Unit(benchmark::kMillisecond);

// The batched serving shape: K same-structure sampled requests through ONE
// EvaluateAnswers call — what a serve coalescing round runs. The session's
// plan cache pays the per-instance setup once per structure (the counters
// prove it: misses stay at 1 while hits grow with K × iterations).
void BM_SessionSampledBatch(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  gmc::Query query = ExampleC9();
  gmc::Tid tid(query.vocab_ptr(), 4, 4, gmc::Rational(3, 7));
  const std::vector<gmc::Tid> tids(static_cast<size_t>(k), tid);
  gmc::GfomcSession session;
  gmc::GmcOptions options = session.options();
  options.routing_mode = gmc::RoutingMode::kSample;
  options.epsilon = 0.2;
  options.delta = 0.05;
  session.Configure(options);
  for (auto _ : state) {
    std::vector<gmc::GmcAnswer> answers;
    const gmc::GmcStatus status =
        session.EvaluateAnswers(query, tids, &answers);
    if (!status.ok() || answers.size() != tids.size()) {
      state.SkipWithError("sampled batch failed to answer");
      return;
    }
    benchmark::DoNotOptimize(answers.data());
  }
  const gmc::GfomcSession::Stats stats = session.stats();
  state.counters["requests"] = static_cast<double>(k);
  state.counters["plan_hits"] = static_cast<double>(stats.plan_hits);
  state.counters["plan_misses"] = static_cast<double>(stats.plan_misses);
}
BENCHMARK(BM_SessionSampledBatch)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// --- End-to-end degraded routing --------------------------------------

// The serving-path latency of an over-budget instance in kAuto: compile
// probe, budget exhaustion (memoized after the first miss), Karp–Luby
// fallback, certified answer.
void BM_RouterOverBudget(benchmark::State& state) {
  gmc::Query query = H1();
  gmc::Tid tid(query.vocab_ptr(), 3, 3, gmc::Rational(3, 7));
  gmc::GfomcSession session;
  gmc::GmcOptions options = session.options();
  options.routing_mode = gmc::RoutingMode::kAuto;
  options.compile_budget.max_calls = 2;  // every probe exhausts
  options.epsilon = 0.1;
  options.delta = 0.01;
  session.Configure(options);
  uint64_t samples = 0;
  for (auto _ : state) {
    gmc::GmcAnswer answer;
    gmc::GmcStatus status = session.EvaluateAnswer(query, tid, &answer);
    if (!status.ok() || answer.tier != gmc::AnswerTier::kSampled) {
      state.SkipWithError(
          "over-budget instance did not route to the sampler");
      return;
    }
    samples = answer.samples;
    benchmark::DoNotOptimize(answer.estimate);
  }
  state.counters["samples"] = static_cast<double>(samples);
}
BENCHMARK(BM_RouterOverBudget)->Unit(benchmark::kMillisecond);

// --- Correctness guard, CI-enforced -----------------------------------

void BM_AnytimeCrossCheck(benchmark::State& state) {
  std::vector<gmc::Lineage> corpus = {H1Lineage(3), Type2Lineage(3)};
  for (auto _ : state) {
    for (const gmc::Lineage& lineage : corpus) {
      gmc::Compiler compiler;
      gmc::NnfCircuit circuit = compiler.Compile(lineage);
      gmc::WeightMatrix weights = SweepWeights(lineage, 8);
      const std::vector<gmc::Rational> exact = circuit.EvaluateBatch(weights);
      const std::vector<gmc::ProbInterval> serial =
          circuit.EvaluateBatchInterval(weights, /*num_threads=*/1);
      const std::vector<gmc::ProbInterval> parallel =
          circuit.EvaluateBatchInterval(weights, /*num_threads=*/8);
      for (size_t i = 0; i < exact.size(); ++i) {
        if (serial[i].lo != parallel[i].lo ||
            serial[i].hi != parallel[i].hi) {
          state.SkipWithError(
              "interval results differ across thread counts");
          return;
        }
        if (!Encloses(serial[i], exact[i])) {
          state.SkipWithError(
              "certified interval EXCLUDES the exact probability");
          return;
        }
        if (serial[i].hi - serial[i].lo > 1e-6) {
          state.SkipWithError("interval width blew past 1e-6 on a gadget");
          return;
        }
      }
      // The sampler's certificate at a fixed seed: |est − p| ≤ ε on the
      // single-column lineage weights.
      gmc::KarpLubyParams params;
      params.epsilon = 0.1;
      params.delta = 0.01;
      params.max_samples = 0;
      params.seed = 0x1234abcdull;
      const gmc::KarpLubyResult sampled =
          gmc::KarpLubyEstimate(lineage, params);
      const double truth =
          circuit.Evaluate(lineage.probabilities).ToDouble();
      if (std::fabs(sampled.estimate - truth) > params.epsilon) {
        state.SkipWithError(
            "fixed-seed Karp–Luby estimate missed its epsilon certificate");
        return;
      }
      // The parallel sampler is the SAME sampler: 8 workers, same seed,
      // bit-identical estimate/successes/count or the run fails.
      params.num_threads = 8;
      const gmc::KarpLubyResult resampled =
          gmc::KarpLubyEstimate(lineage, params);
      params.num_threads = 0;
      if (resampled.estimate != sampled.estimate ||
          resampled.successes != sampled.successes ||
          resampled.samples != sampled.samples) {
        state.SkipWithError(
            "parallel Karp–Luby diverged from the serial fixed-seed run");
        return;
      }
    }
    // An over-budget instance must still come back certified through the
    // session — the anytime tier's contract end to end.
    gmc::Query query = H1();
    gmc::Tid tid(query.vocab_ptr(), 3, 3, gmc::Rational(3, 7));
    gmc::GmcAnswer reference = {};
    reference.exact = gmc::Gfomc(query, tid).probability;
    gmc::GmcOptions options;
    options.routing_mode = gmc::RoutingMode::kAuto;
    options.compile_budget.max_calls = 2;
    options.epsilon = 0.1;
    options.delta = 0.01;
    gmc::GmcAnswer answer;
    gmc::GmcStatus status = gmc::GfomcChecked(query, tid, options, &answer);
    if (!status.ok() || answer.tier != gmc::AnswerTier::kSampled ||
        std::fabs(answer.estimate - reference.exact.ToDouble()) >
            answer.epsilon) {
      state.SkipWithError(
          "over-budget routing failed to produce a certified estimate");
      return;
    }
  }
}
BENCHMARK(BM_AnytimeCrossCheck)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
