// E2/E3: the algebraic lemmas of §1.
//
// Lemma 1.1 — finding a {0, 1/2, 1} non-root of a degree-≤2 polynomial —
// and Lemma 1.2 — the small-matrix determinant test versus the syntactic
// connectivity test — over randomly generated inputs of growing size.

#include <random>

#include <benchmark/benchmark.h>

#include "poly/lemmas.h"

namespace {

gmc::Polynomial RandomDegreeTwo(int num_vars, std::mt19937_64* rng) {
  auto multilinear = [&]() {
    gmc::Polynomial p = gmc::Polynomial::Constant(
        gmc::Rational(static_cast<int64_t>((*rng)() % 3) - 1));
    for (int v = 0; v < num_vars; ++v) {
      if ((*rng)() % 2) {
        p += gmc::Polynomial::Variable(v).ScaledBy(
            gmc::Rational(static_cast<int64_t>((*rng)() % 5) - 2));
      }
    }
    return p;
  };
  gmc::Polynomial f = multilinear() * multilinear();
  if (f.IsZero()) f = gmc::Polynomial::Variable(0);
  return f;
}

void BM_Lemma11NonRoot(benchmark::State& state) {
  const int num_vars = static_cast<int>(state.range(0));
  std::mt19937_64 rng(42);
  std::vector<gmc::Polynomial> inputs;
  for (int i = 0; i < 16; ++i) {
    inputs.push_back(RandomDegreeTwo(num_vars, &rng));
  }
  size_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        gmc::FindNonRoot(inputs[index++ % inputs.size()], gmc::Rational(0),
                         gmc::Rational::Half(), gmc::Rational(1)));
  }
}
BENCHMARK(BM_Lemma11NonRoot)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

void BM_Lemma12Determinant(benchmark::State& state) {
  // Arithmetize a random monotone CNF and test the small-matrix det.
  const int num_vars = static_cast<int>(state.range(0));
  std::mt19937_64 rng(7);
  gmc::Cnf cnf;
  cnf.num_vars = num_vars;
  for (int c = 0; c < num_vars; ++c) {
    std::vector<int> clause;
    for (int l = 0; l < 2; ++l) {
      clause.push_back(static_cast<int>(rng() % num_vars));
    }
    cnf.AddClause(std::move(clause));
  }
  cnf.RemoveSubsumed();
  for (auto _ : state) {
    gmc::Polynomial y = gmc::ArithmetizeCnf(cnf);
    bool singular = gmc::SmallMatrixSingular(y, 0, num_vars - 1);
    bool disconnected = cnf.Disconnects({0}, {num_vars - 1});
    if (singular != disconnected) state.SkipWithError("Lemma 1.2 violated");
  }
}
BENCHMARK(BM_Lemma12Determinant)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

}  // namespace

BENCHMARK_MAIN();
