// E11: the PTIME side of the dichotomy.
//
// The lifted evaluator scales polynomially with the domain while generic
// exact WMC on the same safe queries grows exponentially; the series below
// regenerate the crossover. The paper's claim being exercised: safe ⇒
// GFOMC ∈ PTIME (Theorem 2.1 / 2.2), with the Möbius machinery of §C.2 for
// Type-II left parts.

#include <benchmark/benchmark.h>

#include "logic/parser.h"
#include "safe/safe_eval.h"
#include "wmc/wmc.h"

namespace {

gmc::Tid HalfTid(const gmc::Query& q, int n) {
  gmc::Tid tid(q.vocab_ptr(), n, n, gmc::Rational::One());
  const gmc::Vocabulary& vocab = q.vocab();
  for (gmc::SymbolId s = 0; s < vocab.size(); ++s) {
    switch (vocab.kind(s)) {
      case gmc::SymbolKind::kUnaryLeft:
        for (int u = 0; u < n; ++u) {
          tid.SetUnaryLeft(s, u, gmc::Rational::Half());
        }
        break;
      case gmc::SymbolKind::kUnaryRight:
        for (int v = 0; v < n; ++v) {
          tid.SetUnaryRight(s, v, gmc::Rational::Half());
        }
        break;
      case gmc::SymbolKind::kBinary:
        for (int u = 0; u < n; ++u) {
          for (int v = 0; v < n; ++v) {
            tid.SetBinary(s, u, v, gmc::Rational::Half());
          }
        }
        break;
    }
  }
  return tid;
}

constexpr const char* kTypeIiLeft =
    "Ax (Ay (S1(x,y)) | Ay (S2(x,y))) & Ax (Ay (S1(x,y)) | Ay (S3(x,y)))";

void BM_LiftedSafeEval(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  gmc::Query q = gmc::ParseQueryOrDie(kTypeIiLeft);
  gmc::Tid tid = HalfTid(q, n);
  for (auto _ : state) {
    gmc::SafeEvaluator evaluator;
    auto result = evaluator.Evaluate(q, tid);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_LiftedSafeEval)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_WmcOnSafeQuery(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  gmc::Query q = gmc::ParseQueryOrDie(kTypeIiLeft);
  gmc::Tid tid = HalfTid(q, n);
  for (auto _ : state) {
    gmc::WmcEngine engine;
    benchmark::DoNotOptimize(engine.QueryProbability(q, tid));
  }
}
BENCHMARK(BM_WmcOnSafeQuery)->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Arg(6);

void BM_LiftedTypeILeft(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  gmc::Query q = gmc::ParseQueryOrDie(
      "Ax Ay (R(x) | S1(x,y) | S2(x,y)) & Ax Ay (S1(x,y) | S2(x,y))");
  gmc::Tid tid = HalfTid(q, n);
  for (auto _ : state) {
    gmc::SafeEvaluator evaluator;
    auto result = evaluator.Evaluate(q, tid);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_LiftedTypeILeft)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
