// E6: Theorem 3.6's big matrix — exact build, determinant, and solve cost
// as m (the number of P2CNF clauses) grows. The determinant is verified
// non-zero on every run: that is the theorem's content for these series.

#include <benchmark/benchmark.h>

#include "hardness/big_matrix.h"
#include "hardness/small_matrix.h"
#include "logic/parser.h"

namespace {

std::vector<std::vector<gmc::Rational>> H1Series(int max_p) {
  gmc::Query q = gmc::ParseQueryOrDie(
      "Ax Ay (R(x) | S(x,y)) & Ax Ay (S(x,y) | T(y))");
  return gmc::ZSeries(gmc::ComputeA1(q), max_p);
}

void BM_BuildSymmetricBigMatrix(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  auto z = H1Series(m + 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gmc::BuildSymmetricBigMatrix(z, m));
  }
  state.counters["size"] = (m + 1) * (m + 2) / 2;
}
BENCHMARK(BM_BuildSymmetricBigMatrix)->DenseRange(1, 6);

void BM_BigMatrixDeterminant(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  auto z = H1Series(m + 1);
  gmc::SymmetricBigMatrix big = gmc::BuildSymmetricBigMatrix(z, m);
  for (auto _ : state) {
    gmc::Rational det = big.matrix.Determinant();
    if (det.IsZero()) state.SkipWithError("singular (contradicts Thm 3.6)");
    benchmark::DoNotOptimize(det);
  }
  state.counters["size"] = big.matrix.rows();
}
BENCHMARK(BM_BigMatrixDeterminant)->DenseRange(1, 5)
    ->Unit(benchmark::kMillisecond);

void BM_BigMatrixSolve(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  auto z = H1Series(m + 1);
  gmc::SymmetricBigMatrix big = gmc::BuildSymmetricBigMatrix(z, m);
  // rhs = M · 1 so the solve has a known answer.
  std::vector<gmc::Rational> rhs(big.matrix.rows(), gmc::Rational::Zero());
  for (int r = 0; r < big.matrix.rows(); ++r) {
    for (int c = 0; c < big.matrix.cols(); ++c) {
      rhs[r] += big.matrix.At(r, c);
    }
  }
  for (auto _ : state) {
    auto solution = big.matrix.Solve(rhs);
    if (!solution.has_value()) state.SkipWithError("singular");
    benchmark::DoNotOptimize(solution);
  }
  state.counters["size"] = big.matrix.rows();
}
BENCHMARK(BM_BigMatrixSolve)->DenseRange(1, 5)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
