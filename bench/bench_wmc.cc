// E15: the exact WMC engine on the paper's gadget lineages.
//
// Path blocks B_p(u,v) have tree-like lineage; component decomposition plus
// caching keeps the engine effectively linear in p, while brute-force
// enumeration is exponential in the number of tuples (2 + 4p variables for
// H1). The crossover is the reason the engine exists.

#include <benchmark/benchmark.h>

#include "lineage/grounder.h"
#include "logic/parser.h"
#include "prob/block.h"
#include "wmc/brute_force.h"
#include "wmc/wmc.h"

namespace {

gmc::Query H1() {
  return gmc::ParseQueryOrDie(
      "Ax Ay (R(x) | S(x,y)) & Ax Ay (S(x,y) | T(y))");
}

void BM_WmcPathBlock(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  gmc::Query q = H1();
  gmc::IsolatedBlock block = gmc::MakeIsolatedBlock(q.vocab_ptr(), {p});
  gmc::Lineage lineage = gmc::Ground(q, block.tid);
  for (auto _ : state) {
    gmc::WmcEngine engine;
    benchmark::DoNotOptimize(engine.Probability(lineage));
  }
  state.counters["lineage_vars"] =
      static_cast<double>(lineage.variables.size());
}
BENCHMARK(BM_WmcPathBlock)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_BruteForcePathBlock(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  gmc::Query q = H1();
  gmc::IsolatedBlock block = gmc::MakeIsolatedBlock(q.vocab_ptr(), {p});
  gmc::Lineage lineage = gmc::Ground(q, block.tid);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gmc::BruteForceProbability(lineage));
  }
  state.counters["lineage_vars"] =
      static_cast<double>(lineage.variables.size());
}
BENCHMARK(BM_BruteForcePathBlock)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_WmcGraphTid(benchmark::State& state) {
  // The reduction's actual oracle workload: a block TID over a small graph.
  const int n = static_cast<int>(state.range(0));
  gmc::Query q = H1();
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  gmc::Tid tid = gmc::MakeBlockTidForGraph(q.vocab_ptr(), n, edges, 1, 2);
  for (auto _ : state) {
    gmc::WmcEngine engine;
    benchmark::DoNotOptimize(engine.QueryProbability(q, tid));
  }
}
BENCHMARK(BM_WmcGraphTid)->Arg(2)->Arg(3)->Arg(4)->Arg(5);

}  // namespace

BENCHMARK_MAIN();
