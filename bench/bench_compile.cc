// E16: compile-once / evaluate-many vs re-running the WMC recursion.
//
// The Type-I interpolation workload evaluates one grounded gadget lineage
// at many tuple-probability settings. The knowledge-compilation subsystem
// pays the Shannon/component recursion once (compile) and then a linear
// circuit pass per weight vector; WmcEngine pays the full recursion every
// time because its memo is only valid for one weight vector. The sweep
// benchmarks below run the identical N-point sweep (N = 16/32/64) both
// ways and cross-check every value — the compiled series should win from
// the first repetition.

#include <benchmark/benchmark.h>

#include <vector>

#include "compile/compiler.h"
#include "compile/nnf.h"
#include "hardness/p2cnf.h"
#include "hardness/reduction_type1.h"
#include "lineage/grounder.h"
#include "logic/parser.h"
#include "util/rational.h"
#include "wmc/wmc.h"

namespace {

gmc::Query H1() {
  return gmc::ParseQueryOrDie(
      "Ax Ay (R(x) | S(x,y)) & Ax Ay (S(x,y) | T(y))");
}

// The gadget lineage the sweep probes: a Type-I reduction TID for a random
// P2CNF, grounded once.
gmc::Lineage SweepLineage() {
  gmc::Type1Reduction reduction(H1());
  gmc::P2Cnf phi = gmc::P2Cnf::Random(5, 5, /*seed=*/42);
  gmc::Tid tid = reduction.BuildTid(phi, 2, 2);
  return gmc::Ground(reduction.query(), tid);
}

// N weight vectors: probe point k perturbs every tuple weight to k/(N+1),
// the classic interpolation grid.
std::vector<std::vector<gmc::Rational>> SweepWeights(const gmc::Lineage& l,
                                                     int n) {
  std::vector<std::vector<gmc::Rational>> sweeps;
  for (int k = 1; k <= n; ++k) {
    sweeps.emplace_back(l.probabilities.size(), gmc::Rational(k, n + 1));
  }
  return sweeps;
}

void BM_Type1SweepCompiled(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  gmc::Lineage lineage = SweepLineage();
  std::vector<std::vector<gmc::Rational>> sweeps = SweepWeights(lineage, n);
  size_t circuit_nodes = 0;
  for (auto _ : state) {
    gmc::Compiler compiler;
    gmc::NnfCircuit circuit = compiler.Compile(lineage);  // compile once
    circuit_nodes = circuit.num_nodes();
    for (const auto& weights : sweeps) {                  // evaluate many
      benchmark::DoNotOptimize(circuit.Evaluate(weights));
    }
  }
  state.counters["sweep_points"] = n;
  state.counters["circuit_nodes"] = static_cast<double>(circuit_nodes);
  state.counters["lineage_vars"] =
      static_cast<double>(lineage.variables.size());
}
BENCHMARK(BM_Type1SweepCompiled)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_Type1SweepWmc(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  gmc::Lineage lineage = SweepLineage();
  std::vector<std::vector<gmc::Rational>> sweeps = SweepWeights(lineage, n);
  for (auto _ : state) {
    gmc::WmcEngine engine;
    for (const auto& weights : sweeps) {
      benchmark::DoNotOptimize(engine.Probability(lineage.cnf, weights));
    }
  }
  state.counters["sweep_points"] = n;
}
BENCHMARK(BM_Type1SweepWmc)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// Correctness guard for the two series above: identical values point by
// point. Registered as a benchmark so a mismatch fails the run loudly.
void BM_Type1SweepCrossCheck(benchmark::State& state) {
  const int n = 16;
  gmc::Lineage lineage = SweepLineage();
  std::vector<std::vector<gmc::Rational>> sweeps = SweepWeights(lineage, n);
  gmc::Compiler compiler;
  gmc::NnfCircuit circuit = compiler.Compile(lineage);
  for (auto _ : state) {
    gmc::WmcEngine engine;
    for (const auto& weights : sweeps) {
      if (circuit.Evaluate(weights) !=
          engine.Probability(lineage.cnf, weights)) {
        state.SkipWithError("compiled sweep disagrees with WmcEngine");
        return;
      }
    }
  }
  state.counters["sweep_points"] = n;
}
BENCHMARK(BM_Type1SweepCrossCheck)->Unit(benchmark::kMillisecond);

// Compilation cost alone, for the amortization story: compile time is one
// WmcEngine run plus node construction.
void BM_CompileType1Lineage(benchmark::State& state) {
  gmc::Lineage lineage = SweepLineage();
  for (auto _ : state) {
    gmc::Compiler compiler;
    gmc::NnfCircuit circuit = compiler.Compile(lineage);
    benchmark::DoNotOptimize(circuit.num_nodes());
  }
}
BENCHMARK(BM_CompileType1Lineage)->Unit(benchmark::kMillisecond);

// Evaluation cost alone: the per-point marginal cost after compilation.
void BM_EvaluateCompiledType1Lineage(benchmark::State& state) {
  gmc::Lineage lineage = SweepLineage();
  gmc::Compiler compiler;
  gmc::NnfCircuit circuit = compiler.Compile(lineage);
  std::vector<gmc::Rational> weights(lineage.probabilities.size(),
                                     gmc::Rational(3, 7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit.Evaluate(weights));
  }
  state.counters["circuit_nodes"] =
      static_cast<double>(circuit.num_nodes());
}
BENCHMARK(BM_EvaluateCompiledType1Lineage);

}  // namespace

BENCHMARK_MAIN();
