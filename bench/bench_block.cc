// E4/E5/E7/E8: the gadget-block small matrix.
//
// Lemma 3.19 (A(p) = A(1)^p / 2^{p-1}) turns the per-block probabilities
// into 2×2 matrix powers; the series below compare it against the direct
// WMC definition, whose cost grows with the block. Also timed: the exact
// ℚ(√d) design-condition verification (Theorem 3.14) and Corollary 3.18's
// determinant-polynomial computation.

#include <benchmark/benchmark.h>

#include "hardness/small_matrix.h"
#include "logic/parser.h"

namespace {

gmc::Query H1() {
  return gmc::ParseQueryOrDie(
      "Ax Ay (R(x) | S(x,y)) & Ax Ay (S(x,y) | T(y))");
}

void BM_TransferMatrixAp(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  gmc::RationalMatrix a1 = gmc::ComputeA1(H1());
  for (auto _ : state) {
    benchmark::DoNotOptimize(gmc::ComputeAp(a1, p));
  }
}
BENCHMARK(BM_TransferMatrixAp)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_DirectWmcAp(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  gmc::Query q = H1();
  for (auto _ : state) {
    benchmark::DoNotOptimize(gmc::ComputeApDirect(q, p));
  }
}
BENCHMARK(BM_DirectWmcAp)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_DesignConditions(benchmark::State& state) {
  gmc::RationalMatrix a1 = gmc::ComputeA1(H1());
  for (auto _ : state) {
    gmc::DesignConditionReport report = gmc::CheckDesignConditions(a1);
    if (!report.AllHold()) state.SkipWithError("conditions failed");
  }
}
BENCHMARK(BM_DesignConditions);

void BM_DetPolynomial(benchmark::State& state) {
  gmc::Query q = H1();
  for (auto _ : state) {
    benchmark::DoNotOptimize(gmc::SmallMatrixDetPolynomial(q));
  }
}
BENCHMARK(BM_DetPolynomial);

}  // namespace

BENCHMARK_MAIN();
