// E12/E13/E14: Type-II machinery — lattice construction with Möbius
// function, the inversion formula of Theorem C.19 (verified against direct
// WMC inside the loop), the Q_αβ invertibility check of Lemma C.10, and
// CCP coloring counts with Theorem C.3's #PP2CNF extraction.

#include <benchmark/benchmark.h>

#include "hardness/ccp.h"
#include "hardness/type2.h"
#include "logic/parser.h"

namespace {

gmc::Query ExampleC9() {
  return gmc::ParseQueryOrDie(
      "Ax (Ay (S1(x,y)) | Ay (S2(x,y))) & Ax Ay (S1(x,y) | S3(x,y)) & "
      "Ay (Ax (S3(x,y)) | Ax (S4(x,y)))");
}

void BM_TypeIiAnalysis(benchmark::State& state) {
  gmc::Query q = ExampleC9();
  for (auto _ : state) {
    gmc::TypeIIStructure structure = gmc::AnalyzeTypeII(q);
    benchmark::DoNotOptimize(structure.m_bar);
  }
}
BENCHMARK(BM_TypeIiAnalysis);

void BM_MobiusInversion(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  gmc::Query q = ExampleC9();
  gmc::TypeIIStructure structure = gmc::AnalyzeTypeII(q);
  gmc::Tid delta(q.vocab_ptr(), n, n, gmc::Rational::Half());
  for (auto _ : state) {
    gmc::MobiusInversionCheck check =
        gmc::VerifyMobiusInversion(structure, delta);
    if (check.direct != check.via_inversion) {
      state.SkipWithError("Theorem C.19 violated");
    }
  }
}
BENCHMARK(BM_MobiusInversion)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_InvertibilityLemmaC10(benchmark::State& state) {
  gmc::Query q = gmc::ParseQueryOrDie(
      "Ax (Ay (S1(x,y)) | Ay (S2(x,y))) & Ax Ay (S1(x,y) | S3(x,y)) & "
      "Ax Ay (S3(x,y) | S4(x,y)) & Ax Ay (S4(x,y) | S5(x,y)) & "
      "Ax Ay (S5(x,y) | S6(x,y)) & Ay (Ax (S6(x,y)) | Ax (S7(x,y)))");
  gmc::TypeIIStructure structure = gmc::AnalyzeTypeII(q);
  for (auto _ : state) {
    if (!gmc::CheckInvertibility(structure)) {
      state.SkipWithError("Lemma C.10 violated");
    }
  }
}
BENCHMARK(BM_InvertibilityLemmaC10)->Unit(benchmark::kMillisecond);

void BM_CcpColoringCounts(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  gmc::BipartiteGraph graph =
      gmc::BipartiteGraph::Random(nodes, nodes, nodes + 1, 5);
  gmc::BigInt expected = gmc::CountPP2Cnf(graph);
  for (auto _ : state) {
    auto counts = gmc::ColoringCounts(graph, 3, 3);
    if (gmc::PP2CnfFromColoringCounts(graph, counts, 3, 3) != expected) {
      state.SkipWithError("Theorem C.3 violated");
    }
  }
}
BENCHMARK(BM_CcpColoringCounts)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
