// E10: static analysis — parsing, safety (Def. 2.4), finality (Def. 2.8),
// and the MakeFinal simplification walk, over the paper's query suite.

#include <benchmark/benchmark.h>

#include "core/dichotomy.h"
#include "logic/parser.h"

namespace {

const char* const kSuite[] = {
    "Ax Ay (R(x) | S(x,y) | T(y))",
    "Ax Ay (R(x) | S(x,y)) & Ax Ay (S(x,y) | T(y))",
    "Ax Ay (R(x) | S1(x,y)) & Ax Ay (S1(x,y) | S2(x,y)) & "
    "Ax Ay (S2(x,y) | T(y))",
    "Ax (Ay (S1(x,y)) | Ay (S2(x,y))) & Ax Ay (S1(x,y) | S3(x,y)) & "
    "Ay (Ax (S3(x,y)) | Ax (S4(x,y)))",
    "Ax Ay (R(x) | S1(x,y)) & Ax Ay (S2(x,y) | T(y))",
    "Ax Ay (R(x) | S1(x,y) | S2(x,y)) & Ax Ay (S1(x,y) | T(y))",
};

void BM_ParseAndClassify(benchmark::State& state) {
  for (auto _ : state) {
    for (const char* text : kSuite) {
      gmc::Query q = gmc::ParseQueryOrDie(text);
      benchmark::DoNotOptimize(gmc::Classify(q));
    }
  }
  state.counters["queries"] = std::size(kSuite);
}
BENCHMARK(BM_ParseAndClassify);

void BM_FinalityCheck(benchmark::State& state) {
  // IsFinal tries all 2·|symbols| substitutions.
  gmc::Query q = gmc::ParseQueryOrDie(
      "Ax Ay (R(x) | S1(x,y)) & Ax Ay (S1(x,y) | S2(x,y)) & "
      "Ax Ay (S2(x,y) | T(y))");
  for (auto _ : state) {
    benchmark::DoNotOptimize(gmc::IsFinal(q));
  }
}
BENCHMARK(BM_FinalityCheck);

void BM_MakeFinalWalk(benchmark::State& state) {
  gmc::Query q = gmc::ParseQueryOrDie(
      "Ax Ay (R(x) | S1(x,y) | S2(x,y) | S3(x,y)) & "
      "Ax Ay (S1(x,y) | T(y))");
  for (auto _ : state) {
    benchmark::DoNotOptimize(gmc::MakeFinal(q));
  }
}
BENCHMARK(BM_MakeFinalWalk);

}  // namespace

BENCHMARK_MAIN();
