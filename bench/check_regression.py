#!/usr/bin/env python3
"""Gate CI on benchmark regressions against a checked-in baseline.

Compares a google-benchmark JSON run (--benchmark_format=json) against a
baseline JSON recorded on some other machine. Raw times are not comparable
across machines, so the comparator normalizes by the *median* time ratio
across all matched benchmarks: the median absorbs the overall speed
difference between the baseline machine and the CI runner, and a benchmark
only fails if it got more than --threshold-pct slower *relative to the
others*. A real regression (one code path got slower) shows up as an
outlier above the median; a slow runner moves every ratio equally and
trips nothing.

Known blind spot of the normalization: a change that slows *every*
benchmark in a suite by the same factor raises the median itself and
passes. That is the price of cross-machine comparability without
dedicated, identical hardware; a suite-wide slowdown still shows up in
the printed median ratio (and in the other suites' comparisons), so
review the table when the median drifts far from earlier runs.

Exit status: 0 = no regression, 1 = regression or benchmark error,
2 = usage / malformed input.

Refreshing the baseline after an intentional performance change:
    ./build/bench_foo --benchmark_format=json > bench/baselines/BENCH_foo.json
and commit the file (see README, "CI bench gating").
"""

import argparse
import json
import statistics
import sys

_TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_times(path):
    """benchmark name -> real_time in ns; aborts on reported errors."""
    with open(path) as f:
        doc = json.load(f)
    times = {}
    for bench in doc.get("benchmarks", []):
        name = bench.get("name", "?")
        if bench.get("error_occurred"):
            print(f"FAIL {path}: benchmark '{name}' reported an error: "
                  f"{bench.get('error_message', 'unknown')}")
            sys.exit(1)
        # Skip aggregate rows (mean/median/stddev of repetitions).
        if bench.get("run_type") == "aggregate":
            continue
        unit = _TIME_UNIT_NS.get(bench.get("time_unit", "ns"))
        if unit is None or "real_time" not in bench:
            print(f"ERROR {path}: cannot read benchmark '{name}'")
            sys.exit(2)
        times[name] = bench["real_time"] * unit
    if not times:
        print(f"ERROR {path}: no benchmarks found")
        sys.exit(2)
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="checked-in baseline JSON")
    parser.add_argument("--current", required=True,
                        help="JSON from this run")
    parser.add_argument("--threshold-pct", type=float, default=25.0,
                        help="allowed slowdown relative to the median ratio "
                             "(default: 25)")
    args = parser.parse_args()

    baseline = load_times(args.baseline)
    current = load_times(args.current)

    matched = sorted(set(baseline) & set(current))
    for name in sorted(set(baseline) ^ set(current)):
        side = "baseline" if name in baseline else "current"
        print(f"note: '{name}' only in {side}; skipped "
              f"(new/removed benchmark — refresh the baseline to track it)")
    if len(matched) < 2:
        print("ERROR: fewer than 2 matched benchmarks; cannot normalize")
        sys.exit(2)

    ratios = {name: current[name] / baseline[name] for name in matched}
    median = statistics.median(ratios.values())
    limit = 1.0 + args.threshold_pct / 100.0

    print(f"{len(matched)} benchmarks matched; median machine-speed ratio "
          f"{median:.3f}; failing above {limit:.2f}x of it")
    print(f"{'benchmark':<45} {'baseline':>12} {'current':>12} "
          f"{'normalized':>10}")
    regressions = []
    for name in matched:
        normalized = ratios[name] / median
        marker = ""
        if normalized > limit:
            marker = "  << REGRESSION"
            regressions.append((name, normalized))
        print(f"{name:<45} {baseline[name]:>10.0f}ns {current[name]:>10.0f}ns "
              f"{normalized:>9.3f}x{marker}")

    if regressions:
        # Every offender with its normalized ratio, worst first — a
        # multi-config suite must be debuggable from the CI log alone.
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold_pct:.0f}% relative to the run median "
              f"(limit {limit:.2f}x):")
        for name, normalized in sorted(regressions, key=lambda r: -r[1]):
            print(f"  {name}: {normalized:.3f}x normalized "
                  f"({(normalized - 1.0) * 100.0:+.0f}% vs median)")
        sys.exit(1)
    print("\nOK: no benchmark regressed beyond the threshold")


if __name__ == "__main__":
    main()
