// E17: batched vs looped circuit evaluation on Type-I gadget lineages.
//
// The interpolation workload knows its whole weight set up front, so the
// question is what one topological pass over all K vectors buys over K
// independent Evaluate walks. Three answers, all measured at K = 16/64/256
// with minimization on and off:
//   - exact batch (EvaluateBatch): same Rational arithmetic, one arena and
//     one traversal decode instead of K — a modest constant-factor win,
//     because BigInt arithmetic dominates and is identical in both paths;
//   - fast batch (EvaluateBatchDouble with recheck_stride = 8): doubles in
//     the arena, every 8th vector re-verified exactly — this is the ≥2×
//     (in practice ~8×) win for sweeps that only need interpolation-grade
//     inputs, and the re-check knob keeps it honest;
//   - unchecked fast batch: the pure double pass, bounding what SIMD-grade
//     evaluation could reach.
// The dyadic configurations measure the EXACT fast path: weights on the
// power-of-two grid the paper's reductions actually sweep (k/2^⌈lg K+1⌉),
// evaluated through EvaluateBatchDyadic (mantissa·2^-exp streaming, no
// gcd) vs the same weights through the Rational EvaluateBatch. The
// acceptance bar is ≥5× at K = 64 with bit-identical results
// (BM_DyadicCrossCheck fails the run loudly on any mismatch).
// BM_BatchCrossCheck pins correctness: batch equals loop point by point
// (exactly for the Rational path, to 1e-9 relative for the double path).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "compile/compiler.h"
#include "compile/nnf.h"
#include "hardness/p2cnf.h"
#include "hardness/reduction_type1.h"
#include "lineage/grounder.h"
#include "logic/parser.h"
#include "util/rational.h"

namespace {

gmc::Query H1() {
  return gmc::ParseQueryOrDie(
      "Ax Ay (R(x) | S(x,y)) & Ax Ay (S(x,y) | T(y))");
}

// The gadget lineage the sweep probes: a Type-I reduction TID for a random
// P2CNF, grounded once.
gmc::Lineage SweepLineage() {
  gmc::Type1Reduction reduction(H1());
  gmc::P2Cnf phi = gmc::P2Cnf::Random(5, 5, /*seed=*/42);
  gmc::Tid tid = reduction.BuildTid(phi, 2, 2);
  return gmc::Ground(reduction.query(), tid);
}

gmc::NnfCircuit CompileSweepCircuit(const gmc::Lineage& lineage,
                                    bool minimize) {
  gmc::Compiler compiler;
  compiler.set_minimize(minimize);
  return compiler.Compile(lineage);
}

// K weight vectors on the classic interpolation grid: vector k sets every
// tuple weight to k/(K+1).
gmc::WeightMatrix SweepWeights(const gmc::Lineage& lineage, int num_k) {
  std::vector<std::vector<gmc::Rational>> rows;
  for (int k = 1; k <= num_k; ++k) {
    rows.emplace_back(lineage.probabilities.size(),
                      gmc::Rational(k, num_k + 1));
  }
  return gmc::WeightMatrix::FromRows(rows);
}

// K weight vectors on the dyadic interpolation grid the reductions sweep:
// vector k sets every tuple weight to k/2^e with 2^e the first power of two
// above K (all denominators dyadic, so the batch routes to the dyadic exact
// path; the Rational comparator benches run on the SAME weights).
gmc::WeightMatrix SweepWeightsDyadic(const gmc::Lineage& lineage, int num_k) {
  int exponent = 1;
  while ((int64_t{1} << exponent) <= num_k) ++exponent;
  std::vector<std::vector<gmc::Rational>> rows;
  for (int k = 1; k <= num_k; ++k) {
    rows.emplace_back(lineage.probabilities.size(),
                      gmc::Rational(k, int64_t{1} << exponent));
  }
  return gmc::WeightMatrix::FromRows(rows);
}

constexpr int kRecheckStride = 8;

void BM_LoopedEvaluateExact(benchmark::State& state) {
  const int num_k = static_cast<int>(state.range(0));
  gmc::Lineage lineage = SweepLineage();
  gmc::NnfCircuit circuit = CompileSweepCircuit(lineage, /*minimize=*/true);
  gmc::WeightMatrix weights = SweepWeights(lineage, num_k);
  // Rows materialized outside the timed loop: the baseline measures only
  // the K Evaluate walks, not vector assembly.
  std::vector<std::vector<gmc::Rational>> rows;
  for (int k = 0; k < num_k; ++k) rows.push_back(weights.Row(k));
  for (auto _ : state) {
    for (const auto& row : rows) {
      benchmark::DoNotOptimize(circuit.Evaluate(row));
    }
  }
  state.counters["weight_vectors"] = num_k;
  state.counters["circuit_nodes"] = static_cast<double>(circuit.num_nodes());
}
BENCHMARK(BM_LoopedEvaluateExact)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_BatchEvaluateExact(benchmark::State& state) {
  const int num_k = static_cast<int>(state.range(0));
  gmc::Lineage lineage = SweepLineage();
  gmc::NnfCircuit circuit = CompileSweepCircuit(lineage, /*minimize=*/true);
  gmc::WeightMatrix weights = SweepWeights(lineage, num_k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit.EvaluateBatch(weights));
  }
  state.counters["weight_vectors"] = num_k;
  state.counters["circuit_nodes"] = static_cast<double>(circuit.num_nodes());
}
BENCHMARK(BM_BatchEvaluateExact)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_BatchEvaluateExactUnminimized(benchmark::State& state) {
  const int num_k = static_cast<int>(state.range(0));
  gmc::Lineage lineage = SweepLineage();
  gmc::NnfCircuit circuit = CompileSweepCircuit(lineage, /*minimize=*/false);
  gmc::WeightMatrix weights = SweepWeights(lineage, num_k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit.EvaluateBatch(weights));
  }
  state.counters["weight_vectors"] = num_k;
  state.counters["circuit_nodes"] = static_cast<double>(circuit.num_nodes());
}
BENCHMARK(BM_BatchEvaluateExactUnminimized)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// The exact-path comparator: the Rational arena on the dyadic weight grid.
// This is what the sweep paid before the dyadic layer existed.
void BM_BatchEvaluateExactDyadicGrid(benchmark::State& state) {
  const int num_k = static_cast<int>(state.range(0));
  gmc::Lineage lineage = SweepLineage();
  gmc::NnfCircuit circuit = CompileSweepCircuit(lineage, /*minimize=*/true);
  gmc::WeightMatrix weights = SweepWeightsDyadic(lineage, num_k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit.EvaluateBatch(weights));
  }
  state.counters["weight_vectors"] = num_k;
  state.counters["circuit_nodes"] = static_cast<double>(circuit.num_nodes());
}
BENCHMARK(BM_BatchEvaluateExactDyadicGrid)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// The exact-path headline: same weights, same circuit, dyadic fixed-point
// arena — bignum integer streaming with no gcd anywhere. Must beat
// BM_BatchEvaluateExactDyadicGrid by ≥5× at K = 64.
void BM_BatchEvaluateDyadic(benchmark::State& state) {
  const int num_k = static_cast<int>(state.range(0));
  gmc::Lineage lineage = SweepLineage();
  gmc::NnfCircuit circuit = CompileSweepCircuit(lineage, /*minimize=*/true);
  gmc::WeightMatrix weights = SweepWeightsDyadic(lineage, num_k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit.EvaluateBatchDyadic(weights));
  }
  state.counters["weight_vectors"] = num_k;
  state.counters["circuit_nodes"] = static_cast<double>(circuit.num_nodes());
}
BENCHMARK(BM_BatchEvaluateDyadic)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_BatchEvaluateDyadicUnminimized(benchmark::State& state) {
  const int num_k = static_cast<int>(state.range(0));
  gmc::Lineage lineage = SweepLineage();
  gmc::NnfCircuit circuit = CompileSweepCircuit(lineage, /*minimize=*/false);
  gmc::WeightMatrix weights = SweepWeightsDyadic(lineage, num_k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(circuit.EvaluateBatchDyadic(weights));
  }
  state.counters["weight_vectors"] = num_k;
  state.counters["circuit_nodes"] = static_cast<double>(circuit.num_nodes());
}
BENCHMARK(BM_BatchEvaluateDyadicUnminimized)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// The headline: the double arena with every 8th vector re-verified against
// the exact evaluator. Cost ≈ loop / recheck_stride, i.e. ~8× at any K.
void BM_BatchEvaluateFast(benchmark::State& state) {
  const int num_k = static_cast<int>(state.range(0));
  gmc::Lineage lineage = SweepLineage();
  gmc::NnfCircuit circuit = CompileSweepCircuit(lineage, /*minimize=*/true);
  gmc::WeightMatrix weights = SweepWeights(lineage, num_k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        circuit.EvaluateBatchDouble(weights, kRecheckStride));
  }
  state.counters["weight_vectors"] = num_k;
  state.counters["recheck_stride"] = kRecheckStride;
}
BENCHMARK(BM_BatchEvaluateFast)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_BatchEvaluateFastUnchecked(benchmark::State& state) {
  const int num_k = static_cast<int>(state.range(0));
  gmc::Lineage lineage = SweepLineage();
  gmc::NnfCircuit circuit = CompileSweepCircuit(lineage, /*minimize=*/true);
  gmc::WeightMatrix weights = SweepWeights(lineage, num_k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        circuit.EvaluateBatchDouble(weights, /*recheck_stride=*/0));
  }
  state.counters["weight_vectors"] = num_k;
}
BENCHMARK(BM_BatchEvaluateFastUnchecked)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// Correctness guard: batch equals loop point by point, on both the
// minimized and the unminimized circuit, for both precisions. Registered
// as a benchmark so a mismatch fails the bench run loudly.
void BM_BatchCrossCheck(benchmark::State& state) {
  const int num_k = 16;
  gmc::Lineage lineage = SweepLineage();
  gmc::NnfCircuit minimized = CompileSweepCircuit(lineage, true);
  gmc::NnfCircuit raw = CompileSweepCircuit(lineage, false);
  gmc::WeightMatrix weights = SweepWeights(lineage, num_k);
  for (auto _ : state) {
    const std::vector<gmc::Rational> batched =
        minimized.EvaluateBatch(weights);
    const std::vector<gmc::Rational> raw_batched = raw.EvaluateBatch(weights);
    const std::vector<double> fast =
        minimized.EvaluateBatchDouble(weights, /*recheck_stride=*/1);
    for (int k = 0; k < num_k; ++k) {
      const gmc::Rational looped = minimized.Evaluate(weights.Row(k));
      const double exact = looped.ToDouble();
      const double scale = std::max(1.0, std::abs(exact));
      if (batched[k] != looped || raw_batched[k] != looped ||
          std::abs(fast[k] - exact) > 1e-9 * scale) {
        state.SkipWithError("batched evaluation disagrees with looped");
        return;
      }
    }
  }
  state.counters["weight_vectors"] = num_k;
  state.counters["nodes_minimized"] =
      static_cast<double>(minimized.num_nodes());
  state.counters["nodes_raw"] = static_cast<double>(raw.num_nodes());
}
BENCHMARK(BM_BatchCrossCheck)->Unit(benchmark::kMillisecond);

// Dyadic correctness guard: on the dyadic grid, EvaluateBatchDyadic must
// equal the Rational EvaluateBatch point by point — Rational equality is
// structural (lowest terms), so == here means bit-identical. Registered as
// a benchmark so a mismatch fails the bench run loudly.
void BM_DyadicCrossCheck(benchmark::State& state) {
  const int num_k = 16;
  gmc::Lineage lineage = SweepLineage();
  gmc::NnfCircuit minimized = CompileSweepCircuit(lineage, true);
  gmc::NnfCircuit raw = CompileSweepCircuit(lineage, false);
  gmc::WeightMatrix weights = SweepWeightsDyadic(lineage, num_k);
  for (auto _ : state) {
    const std::vector<gmc::Rational> rational =
        minimized.EvaluateBatch(weights);
    const std::vector<gmc::Rational> dyadic =
        minimized.EvaluateBatchDyadic(weights);
    const std::vector<gmc::Rational> raw_dyadic =
        raw.EvaluateBatchDyadic(weights);
    for (int k = 0; k < num_k; ++k) {
      if (dyadic[k] != rational[k] || raw_dyadic[k] != rational[k]) {
        state.SkipWithError("dyadic evaluation disagrees with Rational");
        return;
      }
    }
  }
  state.counters["weight_vectors"] = num_k;
}
BENCHMARK(BM_DyadicCrossCheck)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
