// E9: the zig-zag rewriting (Lemma 2.6) — query construction cost and the
// full Lemma A.1 equivalence check (both probabilities computed exactly).

#include <benchmark/benchmark.h>

#include "hardness/zigzag.h"
#include "logic/parser.h"
#include "wmc/wmc.h"

namespace {

void BM_MakeZigzagQuery(benchmark::State& state) {
  gmc::Query q = gmc::ParseQueryOrDie(
      "Ax Ay (R(x) | S(x,y)) & Ax Ay (S(x,y) | T(y))");
  for (auto _ : state) {
    benchmark::DoNotOptimize(gmc::MakeZigzagQuery(q));
  }
}
BENCHMARK(BM_MakeZigzagQuery);

void BM_MakeZigzagQueryTypeII(benchmark::State& state) {
  gmc::Query q = gmc::ParseQueryOrDie(
      "Ax (Ay (S1(x,y)) | Ay (S2(x,y))) & Ax Ay (S1(x,y) | S3(x,y)) & "
      "Ay (Ax (S3(x,y)) | Ax (S4(x,y)))");
  for (auto _ : state) {
    benchmark::DoNotOptimize(gmc::MakeZigzagQuery(q));
  }
}
BENCHMARK(BM_MakeZigzagQueryTypeII);

void BM_ZigzagEquivalence(benchmark::State& state) {
  // Both sides of Lemma A.1 on a domain of the given size.
  const int n = static_cast<int>(state.range(0));
  gmc::Query q = gmc::ParseQueryOrDie(
      "Ax Ay (R(x) | S(x,y)) & Ax Ay (S(x,y) | T(y))");
  gmc::ZigzagQuery zg = gmc::MakeZigzagQuery(q);
  gmc::Tid delta(zg.query.vocab_ptr(), n, n, gmc::Rational::Half());
  gmc::Tid zg_delta = gmc::MakeZigzagTid(zg, delta);
  for (auto _ : state) {
    gmc::WmcEngine engine1, engine2;
    gmc::Rational lhs = engine1.QueryProbability(zg.query, delta);
    gmc::Rational rhs = engine2.QueryProbability(q, zg_delta);
    if (lhs != rhs) state.SkipWithError("Lemma A.1 violated");
  }
  state.counters["zg_left_constants"] = zg_delta.num_left();
}
BENCHMARK(BM_ZigzagEquivalence)->Arg(1)->Arg(2)->Arg(3);

}  // namespace

BENCHMARK_MAIN();
