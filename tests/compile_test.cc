// The knowledge-compilation subsystem: d-DNNF circuits must agree exactly
// with the recursive WMC engine and with brute-force enumeration on every
// formula, structural invariants (decomposability, determinism) must hold
// on every emitted circuit, and compiled circuits must be reusable across
// weight vectors — the compile-once / evaluate-many contract.

#include <random>

#include <gtest/gtest.h>

#include "compile/circuit_cache.h"
#include "compile/compiler.h"
#include "compile/nnf.h"
#include "hardness/p2cnf.h"
#include "hardness/reduction_type1.h"
#include "hardness/type2.h"
#include "logic/parser.h"
#include "prob/tid.h"
#include "wmc/brute_force.h"
#include "wmc/wmc.h"

namespace gmc {
namespace {

Query H1() {
  return ParseQueryOrDie("Ax Ay (R(x) | S(x,y)) & Ax Ay (S(x,y) | T(y))");
}

Query ExampleC9() {
  return ParseQueryOrDie(
      "Ax (Ay (S1(x,y)) | Ay (S2(x,y))) & Ax Ay (S1(x,y) | S3(x,y)) & "
      "Ay (Ax (S3(x,y)) | Ax (S4(x,y)))");
}

std::vector<Rational> RandomProbabilities(int num_vars, std::mt19937_64& rng) {
  std::vector<Rational> probs;
  for (int v = 0; v < num_vars; ++v) {
    switch (rng() % 5) {
      case 0:
        probs.push_back(Rational::Zero());
        break;
      case 1:
        probs.push_back(Rational::One());
        break;
      case 2:
        probs.push_back(Rational(1 + static_cast<int64_t>(rng() % 6),
                                 7));
        break;
      default:
        probs.push_back(Rational::Half());
        break;
    }
  }
  return probs;
}

TEST(NnfCircuitTest, ConstantsAndFolding) {
  NnfCircuit circuit;
  EXPECT_EQ(circuit.And({}), circuit.True());
  EXPECT_EQ(circuit.And({circuit.True(), circuit.False()}), circuit.False());
  const int x = circuit.Var(3);
  EXPECT_EQ(circuit.Var(3), x);  // hash-consed
  EXPECT_EQ(circuit.And({x, circuit.True()}), x);
  EXPECT_EQ(circuit.And({x, x}), x);
  EXPECT_EQ(circuit.Decision(5, x, x), x);
  EXPECT_EQ(circuit.Decision(5, circuit.True(), circuit.False()),
            circuit.Var(5));
  circuit.SetRoot(x);
  std::vector<Rational> probs(6, Rational::Zero());
  probs[3] = Rational(1, 3);
  EXPECT_EQ(circuit.Evaluate(probs), Rational(1, 3));
}

TEST(CompilerTest, ConstantFormulas) {
  Compiler compiler;
  Cnf empty;
  empty.num_vars = 0;
  NnfCircuit true_circuit = compiler.Compile(empty);
  EXPECT_EQ(true_circuit.root(), true_circuit.True());
  EXPECT_EQ(true_circuit.Evaluate({}), Rational::One());

  Cnf contradiction;
  contradiction.num_vars = 1;
  contradiction.clauses.push_back({});
  NnfCircuit false_circuit = compiler.Compile(contradiction);
  EXPECT_EQ(false_circuit.root(), false_circuit.False());
  EXPECT_EQ(false_circuit.Evaluate({Rational::Half()}), Rational::Zero());
}

TEST(CompilerTest, SingleClause) {
  // Pr(a ∨ b) with Pr(a)=1/2, Pr(b)=1/3: 2/3.
  Cnf cnf;
  cnf.num_vars = 2;
  cnf.AddClause({0, 1});
  Compiler compiler;
  NnfCircuit circuit = compiler.Compile(cnf);
  EXPECT_EQ(circuit.Evaluate({Rational(1, 2), Rational(1, 3)}),
            Rational(2, 3));
  EXPECT_TRUE(circuit.CheckDecomposable());
  EXPECT_TRUE(circuit.CheckDeterministic());
}

TEST(CompilerTest, ComponentsBecomeDecomposableAnd) {
  Cnf cnf;
  cnf.num_vars = 4;
  cnf.AddClause({0, 1});
  cnf.AddClause({2, 3});
  Compiler compiler;
  NnfCircuit circuit = compiler.Compile(cnf);
  EXPECT_GE(compiler.stats().component_splits, 1u);
  std::vector<Rational> probs(4, Rational::Half());
  EXPECT_EQ(circuit.Evaluate(probs), Rational(9, 16));
  NnfCircuit::Stats stats = circuit.ComputeStats();
  EXPECT_GE(stats.and_nodes, 1u);
  EXPECT_TRUE(circuit.CheckDecomposable());
}

TEST(CompilerTest, CompilationIsDeterministic) {
  Cnf cnf;
  cnf.num_vars = 5;
  cnf.AddClause({0, 1, 2});
  cnf.AddClause({1, 3});
  cnf.AddClause({2, 4});
  Compiler compiler;
  NnfCircuit a = compiler.Compile(cnf);
  NnfCircuit b = compiler.Compile(cnf);
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.root(), b.root());
  for (size_t i = 0; i < a.num_nodes(); ++i) {
    EXPECT_EQ(a.nodes()[i].kind, b.nodes()[i].kind);
    EXPECT_EQ(a.nodes()[i].var, b.nodes()[i].var);
    EXPECT_EQ(a.nodes()[i].high, b.nodes()[i].high);
    EXPECT_EQ(a.nodes()[i].low, b.nodes()[i].low);
    EXPECT_EQ(a.nodes()[i].children, b.nodes()[i].children);
  }
}

TEST(CompilerTest, DotDumpMentionsEveryReachableKind) {
  Cnf cnf;
  cnf.num_vars = 4;
  cnf.AddClause({0, 1});
  cnf.AddClause({1, 2});
  cnf.AddClause({3});
  Compiler compiler;
  NnfCircuit circuit = compiler.Compile(cnf);
  const std::string dot = circuit.ToDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("AND"), std::string::npos);
  EXPECT_NE(dot.find("shape=diamond"), std::string::npos);
}

// The heart of the satellite-test task: ~100 random monotone CNFs, three
// evaluators, exact agreement — and each circuit re-evaluated at a second
// weight vector to exercise evaluate-many.
class CompileRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(CompileRandomTest, AgreesWithWmcAndBruteForce) {
  std::mt19937_64 rng(GetParam());
  Compiler compiler;
  WmcEngine engine;
  for (int trial = 0; trial < 25; ++trial) {
    const int num_vars = 3 + static_cast<int>(rng() % 10);
    const int num_clauses = 1 + static_cast<int>(rng() % 12);
    Cnf cnf;
    cnf.num_vars = num_vars;
    for (int c = 0; c < num_clauses; ++c) {
      const int len = 1 + static_cast<int>(rng() % 4);
      std::vector<int> clause;
      for (int l = 0; l < len; ++l) {
        clause.push_back(static_cast<int>(rng() % num_vars));
      }
      cnf.AddClause(std::move(clause));
    }
    cnf.RemoveSubsumed();
    NnfCircuit circuit = compiler.Compile(cnf);
    EXPECT_TRUE(circuit.CheckDecomposable())
        << "seed " << GetParam() << " trial " << trial;
    EXPECT_TRUE(circuit.CheckDeterministic())
        << "seed " << GetParam() << " trial " << trial;
    for (int sweep = 0; sweep < 2; ++sweep) {
      std::vector<Rational> probs = RandomProbabilities(num_vars, rng);
      const Rational compiled = circuit.Evaluate(probs);
      EXPECT_EQ(compiled, engine.Probability(cnf, probs))
          << "seed " << GetParam() << " trial " << trial;
      EXPECT_EQ(compiled, BruteForceProbability(cnf, probs))
          << "seed " << GetParam() << " trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompileRandomTest,
                         ::testing::Values(101, 202, 303, 404));

TEST(CompileGadgetTest, TypeIGadgetLineages) {
  // The actual TIDs the Type-I reduction sends to its oracle. The (1,1)
  // gadget (15 lineage variables) is additionally brute-forced; the larger
  // ones are checked circuit-vs-engine only (brute force is 2^vars).
  Type1Reduction reduction(H1());
  P2Cnf phi = P2Cnf::Random(3, 2, /*seed=*/17);
  WmcEngine engine;
  Compiler compiler;
  for (int p1 = 1; p1 <= 2; ++p1) {
    for (int p2 = p1; p2 <= 2; ++p2) {
      Tid tid = reduction.BuildTid(phi, p1, p2);
      Lineage lineage = Ground(reduction.query(), tid);
      NnfCircuit circuit = compiler.Compile(lineage);
      EXPECT_TRUE(circuit.CheckDecomposable());
      EXPECT_TRUE(circuit.CheckDeterministic());
      const Rational compiled = circuit.Evaluate(lineage.probabilities);
      EXPECT_EQ(compiled, engine.Probability(lineage))
          << "p1=" << p1 << " p2=" << p2;
      if (lineage.variables.size() <= 16) {
        EXPECT_EQ(compiled, BruteForceProbability(lineage))
            << "p1=" << p1 << " p2=" << p2;
      }
    }
  }
}

TEST(CompileGadgetTest, TypeIiGadgetLineage) {
  Query q = ExampleC9();
  Tid tid(q.vocab_ptr(), 2, 2, Rational::Half());
  Lineage lineage = Ground(q, tid);
  Compiler compiler;
  NnfCircuit circuit = compiler.Compile(lineage);
  EXPECT_TRUE(circuit.CheckDecomposable());
  EXPECT_TRUE(circuit.CheckDeterministic());
  WmcEngine engine;
  const Rational compiled = circuit.Evaluate(lineage.probabilities);
  EXPECT_EQ(compiled, engine.Probability(lineage));
  EXPECT_EQ(compiled, BruteForceProbability(lineage));
}

TEST(CircuitCacheTest, CompilesOncePerStructure) {
  // Same CNF structure at many weight vectors: one compile, many hits.
  Cnf cnf;
  cnf.num_vars = 3;
  cnf.AddClause({0, 1});
  cnf.AddClause({1, 2});
  CircuitCache cache;
  WmcEngine engine;
  for (int k = 1; k <= 8; ++k) {
    std::vector<Rational> probs = {Rational(k, 9), Rational(1, 2),
                                   Rational(9 - k, 9)};
    EXPECT_EQ(cache.Probability(cnf, probs), engine.Probability(cnf, probs));
  }
  EXPECT_EQ(cache.stats().compiles, 1u);
  EXPECT_EQ(cache.stats().hits, 7u);
}

TEST(CircuitCacheTest, WmcEngineCompiledPathMatchesRecursive) {
  Query q = H1();
  const Vocabulary& v = q.vocab();
  Tid tid(q.vocab_ptr(), 2, 2);
  for (int u = 0; u < 2; ++u) tid.SetUnaryLeft(v.Find("R"), u, Rational::Half());
  for (int w = 0; w < 2; ++w) tid.SetUnaryRight(v.Find("T"), w, Rational::Half());
  for (int u = 0; u < 2; ++u) {
    for (int w = 0; w < 2; ++w) {
      tid.SetBinary(v.Find("S"), u, w, Rational(1, 3));
    }
  }
  WmcEngine engine;
  EXPECT_EQ(engine.CompiledQueryProbability(q, tid),
            engine.QueryProbability(q, tid));
  EXPECT_EQ(engine.circuits().stats().compiles, 1u);
}

TEST(CompiledOracleTest, DrivesTheType1ReductionExactly) {
  // End-to-end: the Cook reduction recovers #Φ through the compiled oracle.
  Type1Reduction reduction(H1());
  P2Cnf phi = P2Cnf::Random(3, 2, /*seed=*/5);
  CompiledOracle oracle;
  Type1ReductionResult result = reduction.Run(phi, &oracle);
  EXPECT_EQ(result.model_count, CountSatisfying(phi));
  EXPECT_TRUE(result.solution_integral);
  EXPECT_EQ(oracle.calls(), result.oracle_calls);
}

TEST(CompiledOracleTest, MobiusInversionSharesCircuitsAcrossBlocks) {
  Query q = ExampleC9();
  TypeIIStructure structure = AnalyzeTypeII(q);
  Tid delta(q.vocab_ptr(), 2, 2, Rational::One());
  const Vocabulary& vocab = q.vocab();
  for (SymbolId s = 0; s < vocab.size(); ++s) {
    if (vocab.kind(s) != SymbolKind::kBinary) continue;
    for (int u = 0; u < 2; ++u) {
      for (int v = 0; v < 2; ++v) {
        delta.SetBinary(s, u, v, Rational::Half());
      }
    }
  }
  MobiusInversionCheck check = VerifyMobiusInversion(structure, delta);
  EXPECT_EQ(check.direct, check.via_inversion);
  // 4 uniform blocks per (α, β): one compile per lineage structure, every
  // other block evaluation reuses a cached circuit.
  EXPECT_GT(check.circuit_compiles, 0);
  EXPECT_GT(check.circuit_hits, 0);
  EXPECT_GE(check.circuit_hits, 3 * check.circuit_compiles);
}

}  // namespace
}  // namespace gmc
