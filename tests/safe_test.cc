#include <random>

#include <gtest/gtest.h>

#include "logic/parser.h"
#include "safe/lattice.h"
#include "safe/safe_eval.h"
#include "wmc/brute_force.h"
#include "wmc/wmc.h"

namespace gmc {
namespace {

// --- Lattice / Möbius (Example C.7) ----------------------------------------

TEST(LatticeTest, PaperExampleC7First) {
  // Y1 = Z1Z2, Y2 = Z1Z3, Y3 = Z2Z3 (symbols 0,1,2):
  // Lˆ = {∅, 1, 2, 3, 123}, µ = 1, −1, −1, −1, 2.
  SymbolCnf y1 = SymbolCnf::FromClauses({{0}, {1}});
  SymbolCnf y2 = SymbolCnf::FromClauses({{0}, {2}});
  SymbolCnf y3 = SymbolCnf::FromClauses({{1}, {2}});
  ImplicationLattice lattice({y1, y2, y3});
  ASSERT_EQ(lattice.elements().size(), 5u);
  EXPECT_EQ(lattice.elements()[0].mobius, 1);   // 1̂
  EXPECT_EQ(lattice.elements()[1].mobius, -1);  // {1}
  EXPECT_EQ(lattice.elements()[2].mobius, -1);  // {2}
  EXPECT_EQ(lattice.elements()[3].mobius, -1);  // {3}
  EXPECT_EQ(lattice.elements()[4].subset, 0b111u);
  EXPECT_EQ(lattice.elements()[4].mobius, 2);
  EXPECT_EQ(lattice.MobiusSum(), 0);
}

TEST(LatticeTest, PaperExampleC7Second) {
  // Y1 = Z1Z2, Y2 = Z2Z3, Y3 = Z3Z4: support drops 123 (µ = 0).
  SymbolCnf y1 = SymbolCnf::FromClauses({{0}, {1}});
  SymbolCnf y2 = SymbolCnf::FromClauses({{1}, {2}});
  SymbolCnf y3 = SymbolCnf::FromClauses({{2}, {3}});
  ImplicationLattice lattice({y1, y2, y3});
  ASSERT_EQ(lattice.elements().size(), 7u);
  int64_t mu_123 = -999;
  for (const auto& element : lattice.elements()) {
    if (element.subset == 0b111u) mu_123 = element.mobius;
  }
  EXPECT_EQ(mu_123, 0);
  EXPECT_EQ(lattice.StrictSupport().size(), 5u);  // 1,2,3,12,23
  EXPECT_EQ(lattice.MobiusSum(), 0);
}

TEST(LatticeTest, ImplicationIsSubsumption) {
  SymbolCnf strong = SymbolCnf::FromClauses({{0}});
  SymbolCnf weak = SymbolCnf::FromClauses({{0, 1}});
  EXPECT_TRUE(SymbolCnf::Implies(strong, weak));
  EXPECT_FALSE(SymbolCnf::Implies(weak, strong));
  SymbolCnf conj = SymbolCnf::And(strong, weak);
  EXPECT_EQ(conj, strong);  // absorbed
}

// --- Safe evaluation ---------------------------------------------------------

Tid RandomTid(const Query& q, int nu, int nv, uint64_t seed) {
  std::mt19937_64 rng(seed);
  Tid tid(q.vocab_ptr(), nu, nv);
  const Vocabulary& vocab = q.vocab();
  auto random_probability = [&rng]() {
    switch (rng() % 6) {
      case 0:
        return Rational::Zero();
      case 1:
        return Rational::One();
      case 2:
        return Rational(1, 3);
      case 3:
        return Rational(2, 5);
      default:
        return Rational::Half();
    }
  };
  for (SymbolId s = 0; s < vocab.size(); ++s) {
    switch (vocab.kind(s)) {
      case SymbolKind::kUnaryLeft:
        for (int u = 0; u < nu; ++u) {
          tid.SetUnaryLeft(s, u, random_probability());
        }
        break;
      case SymbolKind::kUnaryRight:
        for (int v = 0; v < nv; ++v) {
          tid.SetUnaryRight(s, v, random_probability());
        }
        break;
      case SymbolKind::kBinary:
        for (int u = 0; u < nu; ++u) {
          for (int v = 0; v < nv; ++v) {
            tid.SetBinary(s, u, v, random_probability());
          }
        }
        break;
    }
  }
  return tid;
}

void ExpectMatchesWmc(const std::string& text, int nu, int nv,
                      uint64_t seed) {
  Query q = ParseQueryOrDie(text);
  Tid tid = RandomTid(q, nu, nv, seed);
  SafeEvaluator evaluator;
  auto lifted = evaluator.Evaluate(q, tid);
  ASSERT_TRUE(lifted.has_value()) << text;
  WmcEngine engine;
  EXPECT_EQ(*lifted, engine.QueryProbability(q, tid)) << text << "\nseed "
                                                      << seed;
}

TEST(SafeEvalTest, UnsafeReturnsNullopt) {
  Query h1 =
      ParseQueryOrDie("Ax Ay (R(x) | S(x,y)) & Ax Ay (S(x,y) | T(y))");
  Tid tid(h1.vocab_ptr(), 2, 2);
  SafeEvaluator evaluator;
  EXPECT_FALSE(evaluator.Evaluate(h1, tid).has_value());
}

TEST(SafeEvalTest, LeftOnlyTypeI) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    ExpectMatchesWmc("Ax Ay (R(x) | S(x,y))", 3, 3, seed);
  }
}

TEST(SafeEvalTest, RightOnlyTypeI) {
  for (uint64_t seed : {4u, 5u, 6u}) {
    ExpectMatchesWmc("Ax Ay (S(x,y) | T(y))", 3, 3, seed);
  }
}

TEST(SafeEvalTest, MiddleOnly) {
  for (uint64_t seed : {7u, 8u}) {
    ExpectMatchesWmc("Ax Ay (S(x,y))", 3, 4, seed);
  }
}

TEST(SafeEvalTest, PureUnaryClauses) {
  for (uint64_t seed : {9u, 10u}) {
    ExpectMatchesWmc("Ax (R(x)) & Ay (B(y))", 3, 3, seed);
  }
}

TEST(SafeEvalTest, DisconnectedLeftAndRight) {
  for (uint64_t seed : {11u, 12u, 13u}) {
    ExpectMatchesWmc("Ax Ay (R(x) | S1(x,y)) & Ax Ay (S2(x,y) | T(y))", 3,
                     3, seed);
  }
}

TEST(SafeEvalTest, TypeIiLeftMobius) {
  for (uint64_t seed : {14u, 15u, 16u}) {
    ExpectMatchesWmc("Ax (Ay (S1(x,y)) | Ay (S2(x,y)))", 2, 3, seed);
  }
}

TEST(SafeEvalTest, TypeIiSharedSymbols) {
  // Two Type-II left clauses sharing S1: the per-u lattice has non-trivial
  // closures (G_{S1,S2} etc.).
  for (uint64_t seed : {17u, 18u, 19u}) {
    ExpectMatchesWmc(
        "Ax (Ay (S1(x,y)) | Ay (S2(x,y))) & Ax (Ay (S1(x,y)) | Ay "
        "(S3(x,y)))",
        2, 3, seed);
  }
}

TEST(SafeEvalTest, TypeIiRight) {
  for (uint64_t seed : {20u, 21u}) {
    ExpectMatchesWmc("Ay (Ax (S1(x,y)) | Ax (S2(x,y)))", 3, 2, seed);
  }
}

TEST(SafeEvalTest, MixedSafeConjunction) {
  for (uint64_t seed : {22u, 23u}) {
    ExpectMatchesWmc(
        "Ax Ay (R(x) | S1(x,y)) & Ax Ay (S1(x,y) | S2(x,y)) & "
        "Ax (Ay (S1(x,y)) | Ay (S2(x,y)))",
        2, 3, seed);
  }
}

class SafeEvalRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SafeEvalRandomTest, AgainstBruteForceOnManyTids) {
  // The whole safe suite at growing domain sizes.
  const char* kQueries[] = {
      "Ax Ay (R(x) | S(x,y))",
      "Ax Ay (S(x,y) | T(y))",
      "Ax (Ay (S1(x,y)) | Ay (S2(x,y)))",
      "Ax Ay (R(x) | S1(x,y)) & Ax Ay (S2(x,y) | T(y))",
      "Ax Ay (R(x) | S1(x,y) | S2(x,y)) & Ax Ay (S1(x,y) | S2(x,y))",
  };
  std::mt19937_64 rng(GetParam());
  for (const char* text : kQueries) {
    Query q = ParseQueryOrDie(text);
    const int nu = 1 + static_cast<int>(rng() % 3);
    const int nv = 1 + static_cast<int>(rng() % 3);
    Tid tid = RandomTid(q, nu, nv, rng());
    SafeEvaluator evaluator;
    auto lifted = evaluator.Evaluate(q, tid);
    ASSERT_TRUE(lifted.has_value()) << text;
    EXPECT_EQ(*lifted, BruteForceQueryProbability(q, tid))
        << text << " nu=" << nu << " nv=" << nv;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SafeEvalRandomTest,
                         ::testing::Values(31, 32, 33, 34, 35, 36));

}  // namespace
}  // namespace gmc
