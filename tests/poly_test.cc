#include <random>

#include <gtest/gtest.h>

#include "lineage/boolean_formula.h"
#include "poly/lemmas.h"
#include "poly/poly_matrix.h"
#include "poly/polynomial.h"

namespace gmc {
namespace {

TEST(PolynomialTest, BasicArithmetic) {
  Polynomial x = Polynomial::Variable(0);
  Polynomial y = Polynomial::Variable(1);
  Polynomial p = x * y + Polynomial::Constant(Rational(2)) * x;
  EXPECT_EQ(p.DegreeIn(0), 1);
  EXPECT_EQ(p.DegreeIn(1), 1);
  Polynomial q = p - p;
  EXPECT_TRUE(q.IsZero());
  Polynomial square = (x + y) * (x + y);
  EXPECT_EQ(square.DegreeIn(0), 2);
  // (x+y)^2 at x=2, y=3 is 25.
  EXPECT_EQ(square.Evaluate({{0, Rational(2)}, {1, Rational(3)}}),
            Rational(25));
}

TEST(PolynomialTest, SubstituteValue) {
  // x^2*y + x at x := 1/2 gives y/4 + 1/2.
  Polynomial x = Polynomial::Variable(0);
  Polynomial y = Polynomial::Variable(1);
  Polynomial p = x * x * y + x;
  Polynomial sub = p.SubstituteValue(0, Rational::Half());
  EXPECT_EQ(sub.Evaluate({{1, Rational(1)}}), Rational(3, 4));
  EXPECT_EQ(sub.DegreeIn(0), 0);
}

TEST(PolynomialTest, SubstituteVariableMergesExponents) {
  // x*y with y := x becomes x^2.
  Polynomial p = Polynomial::Variable(0) * Polynomial::Variable(1);
  Polynomial merged = p.SubstituteVariable(1, 0);
  EXPECT_EQ(merged.DegreeIn(0), 2);
  EXPECT_EQ(merged.Evaluate({{0, Rational(3)}}), Rational(9));
}

TEST(ArithmetizeTest, PaperSection16) {
  // Y = (R ∨ S) ∧ (S ∨ T) over vars r=0, s=1, t=2:
  // y = rt + s − rst (§1.6), and y(1/2,1/2,1/2) = 5/8.
  Cnf cnf;
  cnf.num_vars = 3;
  cnf.AddClause({0, 1});
  cnf.AddClause({1, 2});
  Polynomial y = ArithmetizeCnf(cnf);
  Polynomial expected =
      Polynomial::Variable(0) * Polynomial::Variable(2) +
      Polynomial::Variable(1) -
      Polynomial::Variable(0) * Polynomial::Variable(1) *
          Polynomial::Variable(2);
  EXPECT_EQ(y, expected);
  EXPECT_EQ(y.Evaluate({{0, Rational::Half()},
                        {1, Rational::Half()},
                        {2, Rational::Half()}}),
            Rational(5, 8));
}

TEST(ArithmetizeTest, AgreesWithFormulaOnBooleanPoints) {
  Cnf cnf;
  cnf.num_vars = 4;
  cnf.AddClause({0, 1});
  cnf.AddClause({1, 2, 3});
  cnf.AddClause({0, 3});
  Polynomial y = ArithmetizeCnf(cnf);
  for (int mask = 0; mask < 16; ++mask) {
    std::unordered_map<int, Rational> point;
    for (int v = 0; v < 4; ++v) point[v] = Rational((mask >> v) & 1);
    bool satisfied = true;
    for (const auto& clause : cnf.clauses) {
      bool clause_sat = false;
      for (int v : clause) clause_sat |= ((mask >> v) & 1) != 0;
      satisfied &= clause_sat;
    }
    EXPECT_EQ(y.Evaluate(point), Rational(satisfied ? 1 : 0)) << mask;
  }
}

TEST(Lemma11Test, SimpleWitness) {
  // f = x(1-x): roots at 0 and 1, so the witness must pick 1/2.
  Polynomial x = Polynomial::Variable(0);
  Polynomial f = x * (Polynomial::Constant(Rational::One()) - x);
  auto theta = FindNonRoot(f, Rational(0), Rational::Half(), Rational(1));
  EXPECT_EQ(theta.at(0), Rational::Half());
  EXPECT_NE(f.Evaluate({{0, theta.at(0)}}), Rational::Zero());
}

class Lemma11RandomTest : public ::testing::TestWithParam<int> {};

TEST_P(Lemma11RandomTest, RandomDegreeTwoPolynomials) {
  std::mt19937_64 rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    const int num_vars = 2 + static_cast<int>(rng() % 6);
    // Build f as a product of two random multilinear polynomials, so each
    // variable has degree ≤ 2 — mirroring det(A) = y00·y11 − y01·y10.
    auto random_multilinear = [&rng, num_vars]() {
      Polynomial p = Polynomial::Constant(
          Rational(static_cast<int64_t>(rng() % 3) - 1));
      for (int v = 0; v < num_vars; ++v) {
        if (rng() % 2) {
          int64_t coeff = static_cast<int64_t>(rng() % 5) - 2;
          p += Polynomial::Variable(v).ScaledBy(Rational(coeff));
        }
      }
      return p;
    };
    Polynomial f = random_multilinear() * random_multilinear();
    if (f.IsZero()) continue;
    auto theta =
        FindNonRoot(f, Rational(0), Rational::Half(), Rational(1));
    std::unordered_map<int, Rational> full = theta;
    for (int v = 0; v < num_vars; ++v) {
      if (full.find(v) == full.end()) full[v] = Rational(0);
    }
    EXPECT_NE(f.Evaluate(full), Rational::Zero())
        << "seed " << GetParam() << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma11RandomTest,
                         ::testing::Values(101, 202, 303, 404));

TEST(Lemma12Test, ConnectedPaperExample) {
  // Y = (R ∨ S) ∧ (S ∨ T): connected, so det ≢ 0; indeed det = s(1−s).
  Cnf cnf;
  cnf.num_vars = 3;
  cnf.AddClause({0, 1});
  cnf.AddClause({1, 2});
  Polynomial y = ArithmetizeCnf(cnf);
  EXPECT_FALSE(SmallMatrixSingular(y, 0, 2));
  Polynomial det = SmallMatrix(y, 0, 2).Determinant();
  Polynomial s = Polynomial::Variable(1);
  EXPECT_EQ(det, s - s * s);
}

TEST(Lemma12Test, DisconnectedFormula) {
  // Y = R ∧ T: disconnects {r}, {t}; det ≡ 0.
  Cnf cnf;
  cnf.num_vars = 2;
  cnf.AddClause({0});
  cnf.AddClause({1});
  Polynomial y = ArithmetizeCnf(cnf);
  EXPECT_TRUE(SmallMatrixSingular(y, 0, 1));
  EXPECT_TRUE(cnf.Disconnects({0}, {1}));
}

// E3: the algebraic test (det ≡ 0) coincides with the syntactic component
// test on canonical monotone CNFs — both directions of Lemma 1.2.
class Lemma12EquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(Lemma12EquivalenceTest, DetZeroIffDisconnects) {
  std::mt19937_64 rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    const int num_vars = 3 + static_cast<int>(rng() % 5);
    Cnf cnf;
    cnf.num_vars = num_vars;
    const int num_clauses = 1 + static_cast<int>(rng() % 6);
    for (int c = 0; c < num_clauses; ++c) {
      std::vector<int> clause;
      const int len = 1 + static_cast<int>(rng() % 3);
      for (int l = 0; l < len; ++l) {
        clause.push_back(static_cast<int>(rng() % num_vars));
      }
      cnf.AddClause(std::move(clause));
    }
    cnf.RemoveSubsumed();
    const int r = 0;
    const int t = num_vars - 1;
    Polynomial y = ArithmetizeCnf(cnf);
    EXPECT_EQ(SmallMatrixSingular(y, r, t), cnf.Disconnects({r}, {t}))
        << "seed " << GetParam() << " trial " << trial << "\n"
        << cnf.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma12EquivalenceTest,
                         ::testing::Values(7, 17, 27, 37, 47));

TEST(PolyMatrixTest, MultiplyAndDeterminant) {
  PolyMatrix a = PolyMatrix::Identity(2);
  a.At(0, 1) = Polynomial::Variable(0);
  PolyMatrix b = PolyMatrix::Identity(2);
  b.At(1, 0) = Polynomial::Variable(1);
  PolyMatrix product = a * b;
  // [[1+xy, x], [y, 1]]: det = 1 + xy − xy = 1.
  Polynomial det = product.Determinant();
  EXPECT_EQ(det, Polynomial::Constant(Rational::One()));
  // 3×3 determinant sanity.
  PolyMatrix c(3, 3);
  for (int i = 0; i < 3; ++i) {
    c.At(i, i) = Polynomial::Constant(Rational(i + 1));
  }
  EXPECT_EQ(c.Determinant(), Polynomial::Constant(Rational(6)));
}

}  // namespace
}  // namespace gmc
