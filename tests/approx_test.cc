// The certified anytime tier: directed-rounding interval enclosures,
// Karp–Luby (ε, δ) sampling, compile budgets, and the three-way router.
// Everything here is deterministic — the sampler runs fixed seeds, the
// budgets use the node/call caps (never wall clock) — so every pin is a
// hard equality or containment, not a flaky tolerance.

#include <cmath>
#include <cstdlib>

#include <gtest/gtest.h>

#include "approx/karp_luby.h"
#include "compile/circuit_cache.h"
#include "compile/compiler.h"
#include "compile/nnf.h"
#include "core/dichotomy.h"
#include "lineage/grounder.h"
#include "logic/parser.h"
#include "prob/tid.h"
#include "util/cancel.h"
#include "util/fault.h"
#include "util/rational.h"
#include "wmc/wmc.h"

namespace gmc {
namespace {

Query H1() {
  return ParseQueryOrDie("Ax Ay (R(x) | S(x,y)) & Ax Ay (S(x,y) | T(y))");
}

Query H1Wide() {
  return ParseQueryOrDie(
      "Ax Ay (R(x) | S1(x,y) | S2(x,y)) & Ax Ay (S1(x,y) | T(y))");
}

Query ExampleC9() {
  return ParseQueryOrDie(
      "Ax (Ay (S1(x,y)) | Ay (S2(x,y))) & Ax Ay (S1(x,y) | S3(x,y)) & "
      "Ay (Ax (S3(x,y)) | Ax (S4(x,y)))");
}

// A finite double as the exact rational it denotes (doubles are dyadic).
// Only needed for values in [0, 2), where the dyadic exponent is
// non-negative; that covers every probability bound in these tests.
Rational RationalOfDouble(double value) {
  if (value == 0.0) return Rational::Zero();
  int exponent = 0;
  const double fraction = std::frexp(value, &exponent);
  const double scaled = std::ldexp(fraction, 53);  // integral, < 2^53
  EXPECT_LE(exponent, 53);
  return Rational::Dyadic(BigInt(static_cast<int64_t>(scaled)),
                          static_cast<uint64_t>(53 - exponent));
}

// The enclosure contract, checked exactly: lo <= p <= hi as rationals.
void ExpectEncloses(const ProbInterval& interval, const Rational& exact) {
  EXPECT_LE(RationalOfDouble(interval.lo), exact)
      << "lo=" << interval.lo << " exact=" << exact.ToDouble();
  EXPECT_LE(exact, RationalOfDouble(interval.hi))
      << "hi=" << interval.hi << " exact=" << exact.ToDouble();
}

// A TID over the query's vocabulary with varied non-dyadic weights.
Tid CorpusTid(const Query& query, int num_left, int num_right, int salt) {
  Tid tid(query.vocab_ptr(), num_left, num_right, Rational::Half());
  const Vocabulary& vocab = query.vocab();
  for (SymbolId s = 0; s < vocab.size(); ++s) {
    switch (vocab.kind(s)) {
      case SymbolKind::kUnaryLeft:
        tid.SetUnaryLeft(s, 0, Rational(1 + (salt % 6), 7));
        break;
      case SymbolKind::kUnaryRight:
        tid.SetUnaryRight(s, 0, Rational(2 + (salt % 5), 9));
        break;
      case SymbolKind::kBinary:
        tid.SetBinary(s, 0, 0, Rational(1 + (salt % 10), 11));
        if (num_left > 1 && num_right > 1) {
          tid.SetBinary(s, 1, 1, Rational(3, 13));
        }
        break;
    }
  }
  return tid;
}

TEST(ProbIntervalTest, Basics) {
  ProbInterval interval{0.25, 0.75};
  EXPECT_DOUBLE_EQ(interval.width(), 0.5);
  EXPECT_DOUBLE_EQ(interval.midpoint(), 0.5);
  EXPECT_TRUE(interval.Contains(0.25));
  EXPECT_TRUE(interval.Contains(0.75));
  EXPECT_FALSE(interval.Contains(0.76));
}

TEST(IntervalEvalTest, EnclosesExactAcrossCorpusOrdersAndThreads) {
  const Query queries[] = {H1(), H1Wide(), ExampleC9()};
  int checked = 0;
  for (const Query& query : queries) {
    for (int salt = 0; salt < 3; ++salt) {
      const Lineage lineage = Ground(query, CorpusTid(query, 3, 3, salt));
      if (lineage.is_false || lineage.cnf.clauses.empty()) continue;
      const WeightMatrix weights =
          WeightMatrix::FromRows({lineage.probabilities});
      for (OrderHeuristic order :
           {OrderHeuristic::kDefault, OrderHeuristic::kMinFill,
            OrderHeuristic::kBalanced}) {
        CircuitCache cache;
        cache.set_order(order);
        const NnfCircuit& circuit = cache.Get(lineage.cnf);
        const Rational exact = circuit.EvaluateBatch(weights, 1)[0];
        for (int threads : {1, 8}) {
          const std::vector<ProbInterval> intervals =
              circuit.EvaluateBatchInterval(weights, threads);
          ASSERT_EQ(intervals.size(), 1u);
          ExpectEncloses(intervals[0], exact);
          // Rounding error grows per node, not per magnitude: these
          // gadget circuits stay far inside a comfortable bound.
          EXPECT_LT(intervals[0].width(), 1e-9);
          ++checked;
        }
      }
    }
  }
  EXPECT_GE(checked, 3 * 3 * 2);  // the corpus actually exercised
}

TEST(IntervalEvalTest, MultiColumnBatchEnclosesEveryColumn) {
  const Lineage lineage = Ground(H1(), CorpusTid(H1(), 3, 3, 0));
  std::vector<std::vector<Rational>> rows;
  for (int k = 0; k <= 8; ++k) {
    std::vector<Rational> row = lineage.probabilities;
    row[0] = Rational(k, 8);  // sweep one weight across [0, 1]
    rows.push_back(std::move(row));
  }
  const WeightMatrix weights = WeightMatrix::FromRows(rows);
  CircuitCache cache;
  const NnfCircuit& circuit = cache.Get(lineage.cnf);
  const std::vector<Rational> exact = circuit.EvaluateBatch(weights, 1);
  const std::vector<ProbInterval> intervals =
      circuit.EvaluateBatchInterval(weights, 4);
  ASSERT_EQ(intervals.size(), exact.size());
  for (size_t i = 0; i < exact.size(); ++i) {
    ExpectEncloses(intervals[i], exact[i]);
  }
}

TEST(IntervalEvalTest, EndpointWeightsStayEnclosedAndClamped) {
  // Probabilities 0 and 1 bracket exactly; the walk still rounds each
  // product outward (one ulp per node), and the clamp pins the enclosure
  // inside [0, 1] — so a formula forced true encloses 1 with hi == 1.
  Cnf cnf;
  cnf.num_vars = 2;
  cnf.clauses = {{0}, {1}};
  NnfCircuit circuit = Compiler().Compile(cnf);
  const WeightMatrix weights =
      WeightMatrix::FromRows({{Rational::One(), Rational::One()}});
  const ProbInterval interval =
      circuit.EvaluateBatchInterval(weights, 1)[0];
  ExpectEncloses(interval, Rational::One());
  EXPECT_EQ(interval.hi, 1.0);  // the clamp: never past the unit interval
  EXPECT_LT(interval.width(), 1e-15);
}

TEST(KarpLubyTest, TrivialInstancesAreExact) {
  KarpLubyParams params;
  Cnf empty;  // no clauses: always true
  empty.num_vars = 1;
  KarpLubyResult r = KarpLubyEstimate(empty, {Rational::Half()}, params);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.estimate, 1.0);
  EXPECT_EQ(r.epsilon, 0.0);

  Cnf falsy;
  falsy.num_vars = 1;
  falsy.clauses = {{}};
  r = KarpLubyEstimate(falsy, {Rational::Half()}, params);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.estimate, 0.0);

  // A single clause: Pr = 1 − Π(1 − p_v), no sampling needed.
  Cnf single;
  single.num_vars = 2;
  single.clauses = {{0, 1}};
  r = KarpLubyEstimate(single, {Rational::Half(), Rational(1, 4)}, params);
  EXPECT_TRUE(r.exact);
  EXPECT_DOUBLE_EQ(r.estimate, 1.0 - 0.5 * 0.75);

  // Zero failure weight: some variable in every clause has p = 1.
  Cnf certain;
  certain.num_vars = 1;
  certain.clauses = {{0}, {0}};
  r = KarpLubyEstimate(certain, {Rational::One()}, params);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.estimate, 1.0);
}

TEST(KarpLubyTest, SampleTargetMatchesTheFormula) {
  const double eps = 0.1;
  const double delta = 0.05;
  const uint64_t m = 10;
  const uint64_t expected = static_cast<uint64_t>(
      std::ceil(3.0 * m * std::log(2.0 / delta) / (eps * eps)));
  EXPECT_EQ(KarpLubySampleTarget(m, eps, delta), expected);
  EXPECT_EQ(KarpLubySampleTarget(0, eps, delta), 0u);
}

TEST(KarpLubyTest, CalibratesAgainstExactWmc) {
  // The grounded H1 gadget at two weight profiles: the fixed-seed estimate
  // must land within the certified epsilon of the exact probability.
  for (int salt : {0, 1}) {
    const Lineage lineage = Ground(H1(), CorpusTid(H1(), 3, 3, salt));
    ASSERT_FALSE(lineage.is_false);
    const Rational exact = WmcEngine().Probability(lineage);
    KarpLubyParams params;
    params.epsilon = 0.05;
    params.delta = 0.01;
    params.max_samples = 0;  // run the full (ε, δ) target
    params.seed = 0x1234abcd + salt;
    const KarpLubyResult r = KarpLubyEstimate(lineage, params);
    EXPECT_FALSE(r.exact);
    EXPECT_EQ(r.samples, KarpLubySampleTarget(lineage.cnf.clauses.size(),
                                              params.epsilon, params.delta));
    EXPECT_EQ(r.epsilon, params.epsilon);
    EXPECT_LE(std::abs(r.estimate - exact.ToDouble()), params.epsilon)
        << "estimate=" << r.estimate << " exact=" << exact.ToDouble();
  }
}

TEST(KarpLubyTest, FixedSeedReproducesExactly) {
  const Lineage lineage = Ground(H1(), CorpusTid(H1(), 3, 3, 2));
  KarpLubyParams params;
  params.max_samples = 4096;
  params.seed = 99;
  const KarpLubyResult a = KarpLubyEstimate(lineage, params);
  const KarpLubyResult b = KarpLubyEstimate(lineage, params);
  EXPECT_EQ(a.estimate, b.estimate);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.samples, b.samples);
}

TEST(KarpLubyTest, SampleCapReportsTheAchievedEpsilon) {
  const Lineage lineage = Ground(H1(), CorpusTid(H1(), 3, 3, 0));
  const size_t m = lineage.cnf.clauses.size();
  KarpLubyParams params;
  params.epsilon = 0.01;  // target far beyond the cap
  params.max_samples = 500;
  const KarpLubyResult r = KarpLubyEstimate(lineage, params);
  ASSERT_GT(KarpLubySampleTarget(m, params.epsilon, params.delta), 500u);
  EXPECT_EQ(r.samples, 500u);
  // The anytime contract: the certificate is the epsilon 500 samples buy.
  const double achieved =
      std::sqrt(3.0 * static_cast<double>(m) * std::log(2.0 / params.delta) /
                500.0);
  EXPECT_DOUBLE_EQ(r.epsilon, achieved);
  EXPECT_GT(r.epsilon, params.epsilon);
}

TEST(CompileBudgetTest, TryCompileRefusesAndRecovers) {
  const Lineage lineage = Ground(H1(), CorpusTid(H1(), 3, 3, 0));
  Compiler compiler;
  CompileBudget tiny;
  tiny.max_calls = 2;
  EXPECT_FALSE(compiler.TryCompile(lineage.cnf, tiny).has_value());
  EXPECT_EQ(compiler.stats().budget_exhausted, 1u);
  // The budget state must not leak: an unbudgeted Compile afterwards
  // produces the real circuit, and a generous budget succeeds.
  NnfCircuit full = compiler.Compile(lineage.cnf);
  EXPECT_GT(full.num_nodes(), 1u);
  Compiler fresh;
  std::optional<NnfCircuit> budgeted =
      fresh.TryCompile(lineage.cnf, DefaultCompileBudget());
  ASSERT_TRUE(budgeted.has_value());
  const WeightMatrix weights =
      WeightMatrix::FromRows({lineage.probabilities});
  EXPECT_EQ(full.EvaluateBatch(weights, 1)[0],
            budgeted->EvaluateBatch(weights, 1)[0]);
}

TEST(CompileBudgetTest, CacheTryGetMemoizesFailuresUntilABiggerBudget) {
  const Lineage lineage = Ground(H1(), CorpusTid(H1(), 3, 3, 1));
  CircuitCache cache;
  CompileBudget tiny;
  tiny.max_calls = 2;
  EXPECT_EQ(cache.TryGet(lineage.cnf, tiny), nullptr);
  EXPECT_EQ(cache.stats().budget_exhausted, 1u);
  EXPECT_EQ(cache.stats().compiles, 0u);
  // Same (or smaller) budget: refused from the failure memo, no recompile.
  EXPECT_EQ(cache.TryGet(lineage.cnf, tiny), nullptr);
  EXPECT_EQ(cache.stats().budget_exhausted, 2u);
  EXPECT_EQ(cache.stats().compiles, 0u);
  // Strictly more budget: the retry rule compiles for real.
  const NnfCircuit* circuit =
      cache.TryGet(lineage.cnf, DefaultCompileBudget());
  ASSERT_NE(circuit, nullptr);
  EXPECT_EQ(cache.stats().compiles, 1u);
  // Once cached, even the tiny budget is served from the cache.
  EXPECT_EQ(cache.TryGet(lineage.cnf, tiny), circuit);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(GmcOptionsTest, ConfigureRoundTripsThroughTheStack) {
  GmcOptions options;
  options.num_threads = 3;
  options.order = OrderHeuristic::kMinFill;
  options.dyadic_enabled = false;
  options.routing_mode = RoutingMode::kInterval;
  options.compile_budget.max_calls = 123;
  options.epsilon = 0.25;
  options.delta = 0.125;
  options.max_samples = 777;
  options.sample_seed = 42;

  CircuitCache cache;
  cache.Configure(options);
  EXPECT_EQ(cache.options().num_threads, 3);
  EXPECT_EQ(cache.options().order, OrderHeuristic::kMinFill);
  EXPECT_FALSE(cache.options().dyadic_enabled);

  GfomcSession session;
  session.Configure(options);
  const GmcOptions got = session.options();
  EXPECT_EQ(got.routing_mode, RoutingMode::kInterval);
  EXPECT_EQ(got.compile_budget.max_calls, 123u);
  EXPECT_EQ(got.epsilon, 0.25);
  EXPECT_EQ(got.delta, 0.125);
  EXPECT_EQ(got.max_samples, 777u);
  EXPECT_EQ(got.sample_seed, 42u);
  EXPECT_EQ(got.num_threads, 3);
}

TEST(GmcOptionsTest, LegacySettersAreThinWrappers) {
  GfomcSession by_setter;
  by_setter.set_num_threads(2);
  by_setter.set_order(OrderHeuristic::kBalanced);

  GfomcSession by_configure;
  GmcOptions options = by_configure.options();
  options.num_threads = 2;
  options.order = OrderHeuristic::kBalanced;
  by_configure.Configure(options);

  EXPECT_EQ(by_setter.options().num_threads,
            by_configure.options().num_threads);
  EXPECT_EQ(by_setter.options().order, by_configure.options().order);
}

TEST(GmcOptionsTest, FromEnvReadsTheRoutingKnobs) {
  ::setenv("GMC_ROUTING", "sample", 1);
  ::setenv("GMC_BUDGET_CALLS", "77", 1);
  ::setenv("GMC_EPSILON", "0.125", 1);
  ::setenv("GMC_MAX_SAMPLES", "1000", 1);
  const GmcOptions options = GmcOptions::FromEnv();
  ::unsetenv("GMC_ROUTING");
  ::unsetenv("GMC_BUDGET_CALLS");
  ::unsetenv("GMC_EPSILON");
  ::unsetenv("GMC_MAX_SAMPLES");
  EXPECT_EQ(options.routing_mode, RoutingMode::kSample);
  EXPECT_EQ(options.compile_budget.max_calls, 77u);
  EXPECT_EQ(options.epsilon, 0.125);
  EXPECT_EQ(options.max_samples, 1000u);
  // Unset again: back to the struct defaults.
  const GmcOptions defaults = GmcOptions::FromEnv();
  EXPECT_EQ(defaults.routing_mode, RoutingMode::kAuto);
  EXPECT_EQ(defaults.compile_budget.max_calls,
            DefaultCompileBudget().max_calls);
}

TEST(RoutingPolicyTest, TierSelectionPins) {
  GmcOptions options;

  options.routing_mode = RoutingMode::kAuto;
  RoutingPolicy auto_policy(options);
  EXPECT_TRUE(auto_policy.WantsCompileProbe());
  EXPECT_EQ(auto_policy.TierForCompiled(), AnswerTier::kCompiledExact);
  EXPECT_EQ(auto_policy.TierForExhausted(), AnswerTier::kSampled);
  EXPECT_FALSE(auto_policy.ExhaustedIsError());

  options.routing_mode = RoutingMode::kInterval;
  RoutingPolicy interval_policy(options);
  EXPECT_TRUE(interval_policy.WantsCompileProbe());
  EXPECT_EQ(interval_policy.TierForCompiled(),
            AnswerTier::kCertifiedInterval);
  EXPECT_EQ(interval_policy.TierForExhausted(), AnswerTier::kSampled);

  options.routing_mode = RoutingMode::kSample;
  RoutingPolicy sample_policy(options);
  EXPECT_FALSE(sample_policy.WantsCompileProbe());
  EXPECT_EQ(sample_policy.TierForExhausted(), AnswerTier::kSampled);

  options.routing_mode = RoutingMode::kExact;  // finite default budget
  RoutingPolicy exact_policy(options);
  EXPECT_EQ(exact_policy.TierForExhausted(), AnswerTier::kRecursiveExact);
  EXPECT_TRUE(exact_policy.ExhaustedIsError());
  options.compile_budget = CompileBudget{};  // unlimited
  RoutingPolicy legacy_policy(options);
  EXPECT_FALSE(legacy_policy.ExhaustedIsError());
}

TEST(SessionRouterTest, SafeQueriesStayExactInEveryMode) {
  const Query safe = ParseQueryOrDie("Ax Ay (R(x) | S(x,y))");
  Tid tid = CorpusTid(safe, 2, 2, 0);
  const Rational exact = Gfomc(safe, tid).probability;
  for (RoutingMode mode : {RoutingMode::kExact, RoutingMode::kAuto,
                           RoutingMode::kInterval, RoutingMode::kSample}) {
    GfomcSession session;
    GmcOptions options = session.options();
    options.routing_mode = mode;
    session.Configure(options);
    GmcAnswer answer;
    ASSERT_TRUE(session.EvaluateAnswer(safe, tid, &answer).ok());
    EXPECT_TRUE(answer.IsExact());
    EXPECT_EQ(answer.tier, AnswerTier::kLifted);
    EXPECT_EQ(answer.exact, exact);
  }
}

TEST(SessionRouterTest, AutoCompilesInsideTheBudgetBitIdentically) {
  const Query h1 = H1();
  std::vector<Tid> tids;
  for (int salt = 0; salt < 4; ++salt) {
    tids.push_back(CorpusTid(h1, 2, 2, salt));
  }
  GfomcSession legacy;
  const std::vector<GfomcResult> expected = legacy.EvaluateMany(h1, tids);

  GfomcSession session;  // default mode is kAuto with the default budget
  ASSERT_EQ(session.options().routing_mode, RoutingMode::kAuto);
  std::vector<GmcAnswer> answers;
  ASSERT_TRUE(session.EvaluateAnswers(h1, tids, &answers).ok());
  ASSERT_EQ(answers.size(), tids.size());
  for (size_t i = 0; i < answers.size(); ++i) {
    EXPECT_EQ(answers[i].tier, AnswerTier::kCompiledExact);
    EXPECT_EQ(answers[i].exact, expected[i].probability);  // bit-identical
  }
  EXPECT_EQ(session.stats().unsafe_compiled, tids.size());
  EXPECT_EQ(session.stats().anytime_sampled, 0u);
}

TEST(SessionRouterTest, IntervalModeCertifiablyEnclosesTheExactAnswer) {
  const Query h1 = H1();
  const Tid tid = CorpusTid(h1, 3, 3, 0);
  const Rational exact = Gfomc(h1, tid).probability;

  GfomcSession session;
  GmcOptions options = session.options();
  options.routing_mode = RoutingMode::kInterval;
  session.Configure(options);
  GmcAnswer answer;
  ASSERT_TRUE(session.EvaluateAnswer(h1, tid, &answer).ok());
  EXPECT_EQ(answer.tier, AnswerTier::kCertifiedInterval);
  EXPECT_FALSE(answer.IsExact());
  ExpectEncloses(answer.interval, exact);
  EXPECT_LT(answer.interval.width(), 1e-9);
  EXPECT_EQ(session.stats().anytime_interval, 1u);
}

TEST(SessionRouterTest, SampleModeSkipsTheProbeAndCertifies) {
  const Query h1 = H1();
  const Tid tid = CorpusTid(h1, 3, 3, 1);
  const Rational exact = Gfomc(h1, tid).probability;

  GfomcSession session;
  GmcOptions options = session.options();
  options.routing_mode = RoutingMode::kSample;
  options.sample_seed = 7;
  session.Configure(options);
  GmcAnswer answer;
  ASSERT_TRUE(session.EvaluateAnswer(h1, tid, &answer).ok());
  EXPECT_EQ(answer.tier, AnswerTier::kSampled);
  EXPECT_GT(answer.samples, 0u);
  EXPECT_EQ(answer.delta, options.delta);
  EXPECT_LE(std::abs(answer.estimate - exact.ToDouble()), answer.epsilon);
  const GfomcSession::Stats stats = session.stats();
  EXPECT_EQ(stats.anytime_sampled, 1u);
  EXPECT_EQ(stats.circuit_compiles, 0u);  // no probe, no compile
  EXPECT_EQ(stats.budget_exhausted, 0u);
}

TEST(SessionRouterTest, OverBudgetInstanceDegradesToTheSampler) {
  // The headline contract: an unsafe instance whose compile probe exceeds
  // the budget still gets a certified answer, never an unbounded compile.
  const Query h1 = H1();
  const Tid tid = CorpusTid(h1, 3, 3, 0);
  const Rational exact = Gfomc(h1, tid).probability;

  GfomcSession session;
  GmcOptions options = session.options();
  options.routing_mode = RoutingMode::kAuto;
  options.compile_budget = CompileBudget{};
  options.compile_budget.max_calls = 2;  // guaranteed exhaustion
  session.Configure(options);
  GmcAnswer answer;
  ASSERT_TRUE(session.EvaluateAnswer(h1, tid, &answer).ok());
  EXPECT_EQ(answer.tier, AnswerTier::kSampled);
  EXPECT_LE(std::abs(answer.estimate - exact.ToDouble()), answer.epsilon);
  const GfomcSession::Stats stats = session.stats();
  EXPECT_EQ(stats.budget_exhausted, 1u);
  EXPECT_EQ(stats.anytime_sampled, 1u);
  EXPECT_EQ(stats.unsafe_compiled, 0u);
}

TEST(SessionRouterTest, ExactModeRefusesOverBudgetWithATypedStatus) {
  GfomcSession session;
  GmcOptions options = session.options();
  options.routing_mode = RoutingMode::kExact;
  options.compile_budget = CompileBudget{};
  options.compile_budget.max_calls = 2;
  session.Configure(options);
  GmcAnswer answer;
  const GmcStatus status =
      session.EvaluateAnswer(H1(), CorpusTid(H1(), 3, 3, 0), &answer);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code, GmcStatusCode::kBudgetExhausted);
  EXPECT_NE(status.message.find("budget"), std::string::npos);
}

TEST(SessionRouterTest, ExactModeUnlimitedReproducesLegacyRouting) {
  const Query h1 = H1();
  const Tid tid = CorpusTid(h1, 2, 2, 0);
  GfomcSession legacy;
  const GfomcResult expected = legacy.Evaluate(h1, tid);

  GfomcSession session;
  GmcOptions options = session.options();
  options.routing_mode = RoutingMode::kExact;
  options.compile_budget = CompileBudget{};  // unlimited, like the legacy path
  session.Configure(options);
  GmcAnswer answer;
  ASSERT_TRUE(session.EvaluateAnswer(h1, tid, &answer).ok());
  EXPECT_EQ(answer.tier, AnswerTier::kCompiledExact);
  EXPECT_EQ(answer.exact, expected.probability);
  EXPECT_EQ(answer.PointEstimate(), expected.probability.ToDouble());
}

TEST(SessionRouterTest, ExactModeUnlimitedRecursesPastTheVarGate) {
  // Oversized lineage (> kMaxCompiledLineageVars): the legacy gate sends
  // it to the recursive engine, and kExact + unlimited budget must do the
  // same — tier kRecursiveExact, value bit-identical to EvaluateMany.
  const Query h1 = H1();
  Tid tid(h1.vocab_ptr(), 5, 20, Rational::Half());
  GfomcSession legacy;
  const GfomcResult expected = legacy.Evaluate(h1, tid);
  EXPECT_EQ(legacy.stats().unsafe_recursive, 1u);

  GfomcSession session;
  GmcOptions options = session.options();
  options.routing_mode = RoutingMode::kExact;
  options.compile_budget = CompileBudget{};  // unlimited
  session.Configure(options);
  GmcAnswer answer;
  ASSERT_TRUE(session.EvaluateAnswer(h1, tid, &answer).ok());
  EXPECT_EQ(answer.tier, AnswerTier::kRecursiveExact);
  EXPECT_EQ(answer.exact, expected.probability);
  EXPECT_EQ(session.stats().unsafe_recursive, 1u);
}

TEST(SessionRouterTest, InvalidOptionsComeBackTyped) {
  GfomcSession session;
  GmcOptions options = session.options();
  options.epsilon = 1.5;  // outside (0, 1)
  session.Configure(options);
  GmcAnswer answer;
  const GmcStatus status =
      session.EvaluateAnswer(H1(), CorpusTid(H1(), 2, 2, 0), &answer);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code, GmcStatusCode::kInvalidOptions);
  EXPECT_EQ(session.stats().invalid_requests, 1u);
  EXPECT_EQ(session.stats().queries, 0u);  // rejected before evaluation
}

TEST(SessionRouterTest, ValidateTidAcceptsWellFormedInputs) {
  const GmcStatus status = ValidateTid(CorpusTid(H1(), 2, 2, 0));
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code, GmcStatusCode::kOk);
}

TEST(SessionRouterTest, AnswerTierNamesAreTheWireVocabulary) {
  EXPECT_STREQ(AnswerTierName(AnswerTier::kLifted), "lifted");
  EXPECT_STREQ(AnswerTierName(AnswerTier::kCompiledExact), "compiled");
  EXPECT_STREQ(AnswerTierName(AnswerTier::kRecursiveExact), "recursive");
  EXPECT_STREQ(AnswerTierName(AnswerTier::kCertifiedInterval), "interval");
  EXPECT_STREQ(AnswerTierName(AnswerTier::kSampled), "sampled");
}

TEST(SessionRouterTest, GfomcCheckedOneShotMatchesTheSession) {
  const Query h1 = H1();
  const Tid tid = CorpusTid(h1, 2, 2, 1);
  GmcOptions options;
  GmcAnswer answer;
  ASSERT_TRUE(GfomcChecked(h1, tid, options, &answer).ok());
  EXPECT_EQ(answer.tier, AnswerTier::kCompiledExact);
  EXPECT_EQ(answer.exact, Gfomc(h1, tid).probability);
}

TEST(AnytimeDefaultsTest, ParamsAndOptionsShareOneSourceOfTruth) {
  // Satellite contract: KarpLubyParams and GmcOptions must not drift —
  // both default from approx/anytime_defaults.h (precedence documented in
  // approx/karp_luby.h: FromEnv per process, session per request, explicit
  // KarpLubyParams per call).
  const KarpLubyParams params;
  const GmcOptions options;
  EXPECT_EQ(params.epsilon, options.epsilon);
  EXPECT_EQ(params.delta, options.delta);
  EXPECT_EQ(params.max_samples, options.max_samples);
  EXPECT_EQ(params.seed, options.sample_seed);
  EXPECT_EQ(params.epsilon, kDefaultSampleEpsilon);
  EXPECT_EQ(params.delta, kDefaultSampleDelta);
  EXPECT_EQ(params.max_samples, kDefaultMaxSamples);
  EXPECT_EQ(params.seed, kDefaultSampleSeed);
  EXPECT_EQ(options.sample_plan_entries, kDefaultSamplePlanEntries);
  EXPECT_EQ(params.num_threads, 0);   // both follow the process default
  EXPECT_EQ(options.sample_threads, 0);
}

// The tentpole's headline pin: the reproducibility matrix. Fixed-seed
// estimates must be bit-identical at EVERY thread count, across the gadget
// corpus, with and without a binding sample cap — substreams are indexed
// by sample chunk, never by worker, so the schedule cannot leak into the
// arithmetic.
TEST(KarpLubyParallelTest, FixedSeedIsBitIdenticalAtEveryThreadCount) {
  const Query queries[] = {H1(), ExampleC9()};
  int checked = 0;
  for (const Query& query : queries) {
    for (int salt : {0, 2}) {
      const Lineage lineage = Ground(query, CorpusTid(query, 3, 3, salt));
      if (lineage.is_false || lineage.cnf.clauses.empty()) continue;
      for (uint64_t cap : {uint64_t{0}, uint64_t{500}}) {
        KarpLubyParams params;
        params.epsilon = 0.2;  // keeps the uncapped target test-sized
        params.delta = 0.05;
        params.max_samples = cap;
        params.seed = 0x5eed0000u + static_cast<uint64_t>(salt);
        params.num_threads = 1;
        const KarpLubyResult serial = KarpLubyEstimate(lineage, params);
        EXPECT_FALSE(serial.exact);
        for (int threads : {2, 4, 8}) {
          params.num_threads = threads;
          const KarpLubyResult r = KarpLubyEstimate(lineage, params);
          EXPECT_EQ(r.estimate, serial.estimate)
              << "threads=" << threads << " cap=" << cap;
          EXPECT_EQ(r.successes, serial.successes);
          EXPECT_EQ(r.samples, serial.samples);
          EXPECT_EQ(r.epsilon, serial.epsilon);
          ++checked;
        }
      }
    }
  }
  EXPECT_GE(checked, 12);  // at least one query × both caps × all counts
}

TEST(KarpLubyParallelTest, PreFiredDeadlineIsThreadCountInvariant) {
  // A token fired before sampling begins is observed at the SAME point at
  // every thread count: chunk 0 always runs (its claim skips the poll) and
  // its first in-chunk poll sits at local index 64, while every other
  // chunk's pre-claim poll refuses — so exactly 64 samples are drawn and
  // the achieved-ε certificate is identical no matter the worker count.
  const Lineage lineage = Ground(H1(), CorpusTid(H1(), 3, 3, 0));
  ASSERT_FALSE(lineage.is_false);
  CancelToken token;
  token.Cancel();
  KarpLubyParams params;
  params.max_samples = 0;
  params.seed = 77;
  params.cancel = &token;
  params.num_threads = 1;
  const KarpLubyResult serial = KarpLubyEstimate(lineage, params);
  const uint64_t target = KarpLubySampleTarget(
      lineage.cnf.clauses.size(), params.epsilon, params.delta);
  EXPECT_EQ(serial.samples, 64u);
  EXPECT_LT(serial.samples, target);
  EXPECT_GT(serial.epsilon, params.epsilon);  // the anytime degradation
  const double achieved = std::sqrt(
      3.0 * static_cast<double>(lineage.cnf.clauses.size()) *
      std::log(2.0 / params.delta) / 64.0);
  EXPECT_DOUBLE_EQ(serial.epsilon, achieved);
  for (int threads : {2, 4, 8}) {
    params.num_threads = threads;
    const KarpLubyResult r = KarpLubyEstimate(lineage, params);
    EXPECT_EQ(r.samples, serial.samples) << "threads=" << threads;
    EXPECT_EQ(r.estimate, serial.estimate);
    EXPECT_EQ(r.successes, serial.successes);
    EXPECT_EQ(r.epsilon, serial.epsilon);
  }
}

// Every test below that pins plan hit/miss counts calls fault::Reset()
// first: an ambient GMC_FAULT spec (the CI faults job arms approx.plan)
// would perturb the counters, and a Reset must stay reset — so these are
// declared at the tail of the file to leave as much of the suite as
// possible running under the env faults before the first Reset lands.
TEST(KarpLubyPlanTest, CacheSharesOneBuildAndKeysOnWeights) {
  fault::Reset();
  const Lineage lineage = Ground(H1(), CorpusTid(H1(), 3, 3, 1));
  ASSERT_FALSE(lineage.is_false);
  KarpLubyPlanCache cache;
  const std::shared_ptr<const KarpLubyPlan> a =
      cache.Get(lineage.cnf, lineage.probabilities);
  const std::shared_ptr<const KarpLubyPlan> b =
      cache.Get(lineage.cnf, lineage.probabilities);
  EXPECT_EQ(a.get(), b.get());  // pointer identity: one build served both
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);

  // Same structure, different marginals: a DIFFERENT plan — the key covers
  // the weights, not just the CNF.
  std::vector<Rational> other = lineage.probabilities;
  other[0] = Rational(1, 3);
  const std::shared_ptr<const KarpLubyPlan> c =
      cache.Get(lineage.cnf, other);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.stats().misses, 2u);

  // Plan-based estimation is the primary path; the (cnf, probabilities)
  // overload must be a thin wrapper over it — bit-identical.
  KarpLubyParams params;
  params.max_samples = 2048;
  params.seed = 5;
  const KarpLubyResult via_plan = KarpLubyEstimate(*a, params);
  const KarpLubyResult one_shot =
      KarpLubyEstimate(lineage.cnf, lineage.probabilities, params);
  EXPECT_EQ(via_plan.estimate, one_shot.estimate);
  EXPECT_EQ(via_plan.successes, one_shot.successes);
  EXPECT_EQ(via_plan.samples, one_shot.samples);

  // Capacity 0 disables: every Get builds fresh, nothing is retained.
  cache.set_max_entries(0);
  const std::shared_ptr<const KarpLubyPlan> d =
      cache.Get(lineage.cnf, lineage.probabilities);
  EXPECT_NE(d.get(), a.get());
}

TEST(KarpLubyPlanTest, DroppedPlanFaultRebuildsIdentically) {
  fault::Reset();
  const Lineage lineage = Ground(H1(), CorpusTid(H1(), 3, 3, 1));
  KarpLubyPlanCache cache;
  const std::shared_ptr<const KarpLubyPlan> a =
      cache.Get(lineage.cnf, lineage.probabilities);
  KarpLubyParams params;
  params.max_samples = 1024;
  params.seed = 9;
  const KarpLubyResult before = KarpLubyEstimate(*a, params);
  // approx.plan at rate 1: every Get loses the cached plan and rebuilds —
  // the answer must not change (self-healing by construction).
  std::string error;
  ASSERT_TRUE(fault::Configure("approx.plan=1", &error)) << error;
  const std::shared_ptr<const KarpLubyPlan> b =
      cache.Get(lineage.cnf, lineage.probabilities);
  EXPECT_NE(a.get(), b.get());  // rebuilt, not served from cache
  EXPECT_GT(fault::InjectedCount(fault::Point::kApproxPlan), 0u);
  const KarpLubyResult after = KarpLubyEstimate(*b, params);
  EXPECT_EQ(after.estimate, before.estimate);
  EXPECT_EQ(after.successes, before.successes);
  fault::Reset();
}

TEST(SessionRouterTest, SampledRequestsShareOnePlanBuildPerStructure) {
  fault::Reset();
  const Query h1 = H1();
  const Tid tid = CorpusTid(h1, 3, 3, 1);
  const std::vector<Tid> tids = {tid, tid, tid};

  GfomcSession session;
  GmcOptions options = session.options();
  options.routing_mode = RoutingMode::kSample;
  options.max_samples = 2048;
  session.Configure(options);
  std::vector<GmcAnswer> answers;
  ASSERT_TRUE(session.EvaluateAnswers(h1, tids, &answers).ok());
  ASSERT_EQ(answers.size(), 3u);
  EXPECT_EQ(answers[0].tier, AnswerTier::kSampled);
  // Same structure + same weights + same per-instance seed: identical
  // answers, ONE plan build, one sampler batch.
  EXPECT_EQ(answers[1].estimate, answers[0].estimate);
  EXPECT_EQ(answers[2].estimate, answers[0].estimate);
  const GfomcSession::Stats stats = session.stats();
  EXPECT_EQ(stats.anytime_sampled, 3u);
  EXPECT_EQ(stats.plan_misses, 1u);
  EXPECT_EQ(stats.plan_hits, 2u);
  EXPECT_EQ(stats.sampler_batches, 1u);

  // A disabled plan cache (sample_plan_entries = 0) must not change a
  // single bit of the answers — only the setup cost.
  GfomcSession uncached;
  GmcOptions plain = uncached.options();
  plain.routing_mode = RoutingMode::kSample;
  plain.max_samples = 2048;
  plain.sample_plan_entries = 0;
  uncached.Configure(plain);
  std::vector<GmcAnswer> fresh;
  ASSERT_TRUE(uncached.EvaluateAnswers(h1, tids, &fresh).ok());
  for (size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(fresh[i].estimate, answers[i].estimate);
    EXPECT_EQ(fresh[i].samples, answers[i].samples);
  }
  EXPECT_EQ(uncached.stats().plan_hits, 0u);
}

}  // namespace
}  // namespace gmc
