#include <memory>

#include <gtest/gtest.h>

#include "lineage/boolean_formula.h"
#include "lineage/grounder.h"
#include "logic/parser.h"
#include "prob/tid.h"

namespace gmc {
namespace {

// --- Cnf -------------------------------------------------------------------

TEST(CnfTest, ConditionTrueRemovesClause) {
  Cnf cnf;
  cnf.num_vars = 3;
  cnf.AddClause({0, 1});
  cnf.AddClause({1, 2});
  Cnf high = cnf.Condition(1, true);
  EXPECT_TRUE(high.IsTrue());
  Cnf low = cnf.Condition(1, false);
  ASSERT_EQ(low.clauses.size(), 2u);
  EXPECT_EQ(low.clauses[0], (std::vector<int>{0}));
  EXPECT_EQ(low.clauses[1], (std::vector<int>{2}));
}

TEST(CnfTest, RemoveSubsumed) {
  Cnf cnf;
  cnf.num_vars = 3;
  cnf.AddClause({0, 1, 2});
  cnf.AddClause({0, 1});
  cnf.AddClause({0, 1});  // duplicate
  cnf.AddClause({2});
  cnf.RemoveSubsumed();
  ASSERT_EQ(cnf.clauses.size(), 2u);
  EXPECT_EQ(cnf.clauses[0], (std::vector<int>{0, 1}));
  EXPECT_EQ(cnf.clauses[1], (std::vector<int>{2}));
}

TEST(CnfTest, Components) {
  Cnf cnf;
  cnf.num_vars = 5;
  cnf.AddClause({0, 1});
  cnf.AddClause({1, 2});
  cnf.AddClause({3, 4});
  std::vector<int> comp = cnf.ClauseComponents();
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_FALSE(cnf.IsConnected());
  EXPECT_TRUE(cnf.Disconnects({0}, {3}));
  EXPECT_FALSE(cnf.Disconnects({0}, {2}));
}

// --- Grounding -------------------------------------------------------------

TEST(GrounderTest, DefaultProbabilityOneGivesTrueLineage) {
  Query h0 = ParseQueryOrDie("Ax Ay (R(x) | S(x,y) | T(y))");
  Tid tid(h0.vocab_ptr(), 3, 3);  // default probability 1
  Lineage lineage = Ground(h0, tid);
  EXPECT_TRUE(lineage.cnf.IsTrue());
  EXPECT_FALSE(lineage.is_false);
}

TEST(GrounderTest, PaperSection16Lineage) {
  // §1.6: Q = (R ∨ S) ∧ (S ∨ T) on one pair has lineage (R∨S)∧(S∨T).
  Query q =
      ParseQueryOrDie("Ax Ay (R(x) | S(x,y)) & Ax Ay (S(x,y) | T(y))");
  const Vocabulary& v = q.vocab();
  Tid tid(q.vocab_ptr(), 1, 1);
  tid.SetUnaryLeft(v.Find("R"), 0, Rational::Half());
  tid.SetBinary(v.Find("S"), 0, 0, Rational::Half());
  tid.SetUnaryRight(v.Find("T"), 0, Rational::Half());
  Lineage lineage = Ground(q, tid);
  EXPECT_EQ(lineage.variables.size(), 3u);
  EXPECT_EQ(lineage.cnf.clauses.size(), 2u);
  EXPECT_TRUE(lineage.cnf.IsConnected());
}

TEST(GrounderTest, ZeroProbabilityDropsLiteral) {
  Query q = ParseQueryOrDie("Ax Ay (R(x) | S(x,y))");
  const Vocabulary& v = q.vocab();
  Tid tid(q.vocab_ptr(), 1, 1);
  tid.SetUnaryLeft(v.Find("R"), 0, Rational::Zero());
  tid.SetBinary(v.Find("S"), 0, 0, Rational::Half());
  Lineage lineage = Ground(q, tid);
  ASSERT_EQ(lineage.cnf.clauses.size(), 1u);
  EXPECT_EQ(lineage.cnf.clauses[0].size(), 1u);
  EXPECT_EQ(lineage.variables[lineage.cnf.clauses[0][0]].symbol,
            v.Find("S"));
}

TEST(GrounderTest, AllZeroMakesFalse) {
  Query q = ParseQueryOrDie("Ax Ay (S(x,y))");
  Tid tid(q.vocab_ptr(), 1, 1, Rational::Zero());
  Lineage lineage = Ground(q, tid);
  EXPECT_TRUE(lineage.is_false);
}

TEST(GrounderTest, TypeIiDistribution) {
  // ∀x(∀yS1 ∨ ∀yS2) over a 1×2 domain:
  // (S1(0,0)∧S1(0,1)) ∨ (S2(0,0)∧S2(0,1)) → 4 CNF clauses.
  Query q = ParseQueryOrDie("Ax (Ay (S1(x,y)) | Ay (S2(x,y)))");
  Tid tid(q.vocab_ptr(), 1, 2, Rational::Half());
  Lineage lineage = Ground(q, tid);
  EXPECT_EQ(lineage.variables.size(), 4u);
  EXPECT_EQ(lineage.cnf.clauses.size(), 4u);
  for (const auto& clause : lineage.cnf.clauses) {
    EXPECT_EQ(clause.size(), 2u);
  }
}

TEST(GrounderTest, PinnedBaseConstant) {
  // Grounding a clause only at u = 1 leaves u = 0 unconstrained.
  Query q = ParseQueryOrDie("Ax Ay (S(x,y))");
  Tid tid(q.vocab_ptr(), 2, 2, Rational::Half());
  Grounder grounder(&tid);
  grounder.AddClause(q.clauses()[0], /*only_base=*/1);
  Lineage lineage = grounder.Take();
  EXPECT_EQ(lineage.cnf.clauses.size(), 2u);
  for (const TupleKey& key : lineage.variables) {
    EXPECT_EQ(key.left, 1);
  }
}

TEST(TidTest, GfomcAndFomcInstances) {
  auto vocab = std::make_shared<Vocabulary>();
  SymbolId s = vocab->Add("S", SymbolKind::kBinary);
  Tid tid(vocab, 2, 2);
  EXPECT_TRUE(tid.IsGfomcInstance());
  EXPECT_TRUE(tid.IsFomcInstance());
  tid.SetBinary(s, 0, 0, Rational::Zero());
  EXPECT_TRUE(tid.IsGfomcInstance());
  EXPECT_FALSE(tid.IsFomcInstance());  // 0 not allowed for FOMC (∀CNF side)
  tid.SetBinary(s, 1, 1, Rational(1, 3));
  EXPECT_FALSE(tid.IsGfomcInstance());
  EXPECT_EQ(tid.NumGroundTuples(), 4);
}

}  // namespace
}  // namespace gmc
